// Command hotspotexport writes HotSpot 6.0 grid-model input files (.lcf,
// per-layer .flp, and a .ptrace) for a chiplet organization running a
// benchmark, for cross-validation against the real HotSpot simulator the
// paper used.
//
// Usage:
//
//	hotspotexport -chiplets 16 -s1 1 -s2 0.5 -s3 2 -bench shock -out hotspot/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	chiplet "chiplet25d"
	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/hotspotio"
	"chiplet25d/internal/noc"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
)

func main() {
	var (
		n     = flag.Int("chiplets", 16, "chiplet count: 1, 4 or 16")
		s1    = flag.Float64("s1", 0, "spacing s1 (mm)")
		s2    = flag.Float64("s2", 0, "spacing s2 (mm)")
		s3    = flag.Float64("s3", 0, "spacing s3 (mm)")
		bench = flag.String("bench", "cholesky", "benchmark ("+strings.Join(chiplet.BenchmarkNames(), ", ")+")")
		freq  = flag.Float64("freq", 1000, "frequency (MHz)")
		cores = flag.Int("cores", 256, "active cores (MinTemp)")
		out   = flag.String("out", "hotspot-export", "output directory")
	)
	flag.Parse()

	var (
		pl  chiplet.Placement
		err error
	)
	if *n == 1 {
		pl = chiplet.SingleChip()
	} else {
		pl, err = chiplet.PaperOrg(*n, *s1, *s2, *s3)
	}
	if err != nil {
		fatal(err)
	}
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		fatal(err)
	}
	bundle, err := hotspotio.ExportStack(stack)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(*out, "stack.lcf"), []byte(bundle.LCF), 0o644); err != nil {
		fatal(err)
	}
	for name, content := range bundle.Floorplans {
		if err := os.WriteFile(filepath.Join(*out, name), []byte(content), 0o644); err != nil {
			fatal(err)
		}
	}

	// Power trace: one steady sample of per-core power at the requested
	// operating point with leakage at the 60 °C reference.
	b, err := perf.ByName(*bench)
	if err != nil {
		fatal(err)
	}
	op, err := chiplet.OperatingPoint(*freq)
	if err != nil {
		fatal(err)
	}
	active, err := power.MintempActive(*cores)
	if err != nil {
		fatal(err)
	}
	mesh, err := noc.MeshPower(pl, op, *cores, b.Traffic, noc.DefaultLinkParams(), noc.DefaultRouterParams())
	if err != nil {
		fatal(err)
	}
	nocPerCore := 0.0
	if *cores > 0 {
		nocPerCore = mesh.TotalW() / float64(*cores)
	}
	coreList, err := pl.Cores()
	if err != nil {
		fatal(err)
	}
	lm := power.DefaultLeakage()
	names := make([]string, 0, len(coreList))
	row := make([]float64, 0, len(coreList))
	for _, c := range coreList {
		names = append(names, fmt.Sprintf("core_%d_%d", c.Row, c.Col))
		p := 0.0
		if active[c.Row*floorplan.CoresPerEdge+c.Col] {
			p = power.CorePower(b.RefCoreW, op, lm.RefC, lm) + nocPerCore
		}
		row = append(row, p)
	}
	var ptrace strings.Builder
	if err := hotspotio.WritePTrace(&ptrace, names, [][]float64{row}); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(*out, *bench+".ptrace"), []byte(ptrace.String()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: stack.lcf, %d floorplans, %s.ptrace (%d cores, %d active)\n",
		*out, len(bundle.Floorplans), *bench, len(coreList), *cores)
	fmt.Println("note: filler blocks in the per-core power trace carry 0 W; HotSpot units absent from the trace default to 0")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hotspotexport:", err)
	os.Exit(1)
}
