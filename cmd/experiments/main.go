// Command experiments regenerates the paper's tables and figures. Each
// experiment prints an aligned text table (and optionally CSV files) whose
// rows are the data series of the corresponding figure.
//
// Usage:
//
//	experiments -list
//	experiments -run fig5 -scale reduced
//	experiments -run all -scale full -out results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"chiplet25d/internal/expt"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		run     = flag.String("run", "", "experiment name, comma-separated list, or 'all'")
		scale   = flag.String("scale", "reduced", "experiment scale: reduced or full")
		grid    = flag.Int("grid", 0, "thermal grid override (0 = scale default)")
		benches = flag.String("bench", "", "comma-separated benchmark subset (default: scale default)")
		outDir  = flag.String("out", "", "directory for CSV output (optional)")
		mdPath  = flag.String("md", "", "append all tables as markdown to this file (optional)")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "concurrent sweep units in the figure experiments (0/1 = serial; tables are identical at any count)")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range expt.Registry() {
			fmt.Printf("  %-20s %s\n", e.Name, e.Description)
		}
		if *run == "" && !*list {
			fmt.Println("\nrun with: experiments -run <name>|all [-scale full] [-out dir]")
		}
		return
	}

	opts := expt.DefaultOptions()
	if *scale == "full" {
		opts.Scale = expt.Full
	}
	opts.ThermalGridN = *grid
	opts.Seed = *seed
	opts.Workers = *workers
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}

	var names []string
	if *run == "all" {
		for _, e := range expt.Registry() {
			names = append(names, e.Name)
		}
	} else {
		names = strings.Split(*run, ",")
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}
	var md *os.File
	if *mdPath != "" {
		f, err := os.OpenFile(*mdPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		md = f
		defer md.Close()
	}
	for _, name := range names {
		e, err := expt.ByName(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		tb, err := e.Run(opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.Name, err))
		}
		if err := tb.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Printf("(%s completed in %s at %s scale)\n\n", e.Name, time.Since(start).Round(time.Millisecond), opts.Scale)
		if md != nil {
			if err := tb.WriteMarkdown(md); err != nil {
				fatal(err)
			}
		}
		if *outDir != "" {
			f, err := os.Create(filepath.Join(*outDir, e.Name+".csv"))
			if err != nil {
				fatal(err)
			}
			if err := tb.WriteCSV(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
