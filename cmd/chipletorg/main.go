// Command chipletorg runs the thermally-aware chiplet organization
// optimization (Eq. (5)) for one benchmark and prints the chosen
// organization, its metrics, and an ASCII placement map.
//
// Usage:
//
//	chipletorg -bench cholesky -alpha 1 -beta 0 -threshold 85
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	chiplet "chiplet25d"
	"chiplet25d/internal/config"
	"chiplet25d/internal/org"
)

// writeConfig archives the effective configuration next to the results.
func writeConfig(path string, cfg org.Config) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return config.Save(f, cfg)
}

func main() {
	var (
		bench     = flag.String("bench", "cholesky", "benchmark name ("+strings.Join(chiplet.BenchmarkNames(), ", ")+")")
		alpha     = flag.Float64("alpha", 1, "objective weight on inverse normalized performance")
		beta      = flag.Float64("beta", 0, "objective weight on normalized cost")
		threshold = flag.Float64("threshold", 85, "peak temperature threshold (°C)")
		grid      = flag.Int("grid", 32, "thermal grid resolution (NxN, divisible by 4)")
		starts    = flag.Int("starts", 10, "multi-start greedy start count m")
		step      = flag.Float64("step", 0.5, "interposer size step (mm)")
		seed      = flag.Int64("seed", 1, "random seed for the greedy search")
		sworkers  = flag.Int("search-workers", 0, "concurrent greedy restarts (0/1 = serial; results are identical at any count)")
		maxCost   = flag.Float64("maxcost", 0, "cap on cost relative to the single chip (0 = uncapped, 1 = iso-cost)")
		spatial   = flag.Bool("spatial", false, "enable the spatial compact-model surrogate tier (decides clear evaluations without a full simulation)")
		smargin   = flag.Float64("spatial-margin", 0, "extra spatial escalation margin in °C (the calibration bound is always the floor)")
		cfgPath   = flag.String("config", "", "JSON configuration file (overrides the other flags)")
		saveCfg   = flag.String("savecfg", "", "write the effective configuration as JSON to this path")
	)
	flag.Parse()

	var (
		res chiplet.OptimizeResult
		err error
	)
	if *cfgPath != "" {
		cfg, cerr := config.LoadFile(*cfgPath)
		if cerr != nil {
			fmt.Fprintln(os.Stderr, "chipletorg:", cerr)
			os.Exit(1)
		}
		*bench = cfg.Benchmark.Name
		*threshold = cfg.ThresholdC
		*alpha, *beta = cfg.Objective.Alpha, cfg.Objective.Beta
		if *sworkers > 0 {
			cfg.SearchWorkers = *sworkers
		}
		if *spatial {
			cfg.SpatialSurrogate = true
			cfg.SpatialMarginC = *smargin
		}
		if *saveCfg != "" {
			if err := writeConfig(*saveCfg, cfg); err != nil {
				fmt.Fprintln(os.Stderr, "chipletorg:", err)
				os.Exit(1)
			}
		}
		s, serr := org.NewSearcher(cfg)
		if serr != nil {
			fmt.Fprintln(os.Stderr, "chipletorg:", serr)
			os.Exit(1)
		}
		res, err = s.Optimize()
	} else {
		res, err = chiplet.Optimize(*bench, func(c *chiplet.OptimizeConfig) {
			c.Objective = chiplet.Objective{Alpha: *alpha, Beta: *beta}
			c.ThresholdC = *threshold
			c.Thermal.Nx, c.Thermal.Ny = *grid, *grid
			c.Starts = *starts
			c.InterposerStepMM = *step
			c.Seed = *seed
			c.SearchWorkers = *sworkers
			c.MaxNormCost = *maxCost
			c.SpatialSurrogate = *spatial
			c.SpatialMarginC = *smargin
			if *saveCfg != "" {
				if err := writeConfig(*saveCfg, *c); err != nil {
					fmt.Fprintln(os.Stderr, "chipletorg:", err)
					os.Exit(1)
				}
			}
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "chipletorg:", err)
		os.Exit(1)
	}

	b := res.Baseline
	fmt.Printf("benchmark      %s\n", *bench)
	fmt.Printf("threshold      %.0f °C   objective α=%.2f β=%.2f\n", *threshold, *alpha, *beta)
	fmt.Printf("2D baseline    f=%.0f MHz  p=%d  IPS=%.1f G  peak=%.1f °C  cost=$%.1f\n",
		b.Op.FreqMHz, b.ActiveCores, b.BestIPS, b.PeakC, b.CostUSD)
	if !res.Feasible {
		fmt.Println("result         no feasible 2.5D organization under the threshold")
		return
	}
	o := res.Best
	fmt.Printf("2.5D optimum   n=%d  interposer=%.1f mm  s1=%.1f s2=%.1f s3=%.1f mm\n",
		o.N, o.InterposerMM, o.S1, o.S2, o.S3)
	fmt.Printf("               f=%.0f MHz  p=%d  peak=%.1f °C\n", o.Op.FreqMHz, o.ActiveCores, o.PeakC)
	fmt.Printf("               IPS=%.1f G (%.2fx baseline)  cost=$%.1f (%.2fx baseline)\n",
		o.IPS, o.NormPerf, o.CostUSD, o.NormCost)
	fmt.Printf("               objective value %.4f\n", o.ObjValue)
	fmt.Printf("search         %d thermal simulations, %d surrogate decisions (%d scalar, %d spatial), %d combinations tried\n",
		res.ThermalSims, res.SurrogateHits, res.ScalarSurrogateHits, res.SpatialSurrogateHits, res.CombosTried)
	m, err := chiplet.PlacementMap(o.Placement, o.ActiveCores)
	if err == nil {
		fmt.Printf("\norganization map (#=active core, .=dark core):\n%s\n", m)
	}
}
