package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestDaemonSmoke is the end-to-end daemon check the CI script leans on: it
// builds the real binary, starts it on an ephemeral port with JSON logs,
// discovers the bound address from the "listening" log record, exercises a
// traced solve plus every observability endpoint, and verifies a clean
// SIGTERM drain.
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon smoke test builds and runs the binary; skipped with -short")
	}

	bin := filepath.Join(t.TempDir(), "chipletd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// OTLP sink: the daemon exports its traces here; the SIGTERM drain must
	// flush whatever the batch timer has not yet shipped.
	var sinkMu sync.Mutex
	var sinkBodies []string
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/traces" {
			return
		}
		b, _ := io.ReadAll(r.Body)
		sinkMu.Lock()
		sinkBodies = append(sinkBodies, string(b))
		sinkMu.Unlock()
	}))
	defer sink.Close()

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-workers", "2",
		"-log-format", "json",
		"-slow-trace", "1ns", // everything lands in the slow ring too
		"-otlp-endpoint", sink.URL,
		"-trace-sample", "1",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()

	// Every stderr line must be a JSON object (that's the -log-format json
	// contract); the "listening" record carries the bound address.
	addrCh := make(chan string, 1)
	logDone := make(chan []string, 1)
	go func() {
		var lines []string
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			lines = append(lines, line)
			var rec map[string]any
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				continue
			}
			if rec["msg"] == "listening" {
				if a, ok := rec["addr"].(string); ok {
					select {
					case addrCh <- a:
					default:
					}
				}
			}
		}
		logDone <- lines
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never logged a listening record")
	}
	base := "http://" + addr

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	// Traced solve: span tree inline, request ID echoed, and the inbound
	// W3C trace context adopted and echoed back.
	const remoteTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	body := `{"placement": {"chiplets": 4, "s3_mm": 1}, "benchmark": "cholesky",
	          "freq_mhz": 533, "cores": 128, "grid_n": 8}`
	solveReq, err := http.NewRequest(http.MethodPost, base+"/v1/thermal/solve?trace=1", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	solveReq.Header.Set("Content-Type", "application/json")
	solveReq.Header.Set("traceparent", "00-"+remoteTrace+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(solveReq)
	if err != nil {
		t.Fatal(err)
	}
	solveBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve = %d: %s", resp.StatusCode, solveBytes)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("solve response missing X-Request-Id")
	}
	if tp := resp.Header.Get("Traceparent"); !strings.HasPrefix(tp, "00-"+remoteTrace+"-") {
		t.Errorf("solve response traceparent %q does not join the caller's trace", tp)
	}
	var solve struct {
		PeakC float64 `json:"peak_c"`
		Trace *struct {
			RequestID string `json:"request_id"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(solveBytes, &solve); err != nil {
		t.Fatalf("solve response: %v\n%s", err, solveBytes)
	}
	if solve.PeakC <= 0 {
		t.Errorf("peak_c = %g", solve.PeakC)
	}
	if solve.Trace == nil || solve.Trace.RequestID != resp.Header.Get("X-Request-Id") {
		t.Errorf("trace missing or id mismatch: %+v", solve.Trace)
	}
	for _, span := range []string{"cache.lookup", "pool.queue_wait", "thermal.cg", "power.leakage_loop"} {
		if !bytes.Contains(solveBytes, []byte(fmt.Sprintf("%q", span))) {
			t.Errorf("solve trace missing span %q", span)
		}
	}

	// Healthz: JSON with build info and uptime.
	code, hb := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	var hz map[string]any
	if err := json.Unmarshal(hb, &hz); err != nil || hz["status"] != "ok" {
		t.Fatalf("healthz body: %s", hb)
	}
	for _, k := range []string{"version", "revision", "go_version", "uptime_seconds"} {
		if _, ok := hz[k]; !ok {
			t.Errorf("healthz missing %q: %s", k, hb)
		}
	}

	// Metrics: the new observability families are exposed.
	code, mb := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"chipletd_cg_iterations_bucket",
		"chipletd_leakage_iterations_bucket",
		"chipletd_stage_duration_seconds_bucket",
		"chipletd_build_info{",
		"chipletd_inflight_requests{",
	} {
		if !bytes.Contains(mb, []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Flight recorder: the solve's trace is retrievable.
	code, db := get("/debug/solves")
	if code != http.StatusOK {
		t.Fatalf("debug/solves = %d", code)
	}
	var dbg struct {
		Recent []json.RawMessage `json:"recent"`
		Slow   []json.RawMessage `json:"slow"`
	}
	if err := json.Unmarshal(db, &dbg); err != nil {
		t.Fatalf("debug/solves body: %v", err)
	}
	if len(dbg.Recent) == 0 {
		t.Error("debug/solves recent is empty after a solve")
	}
	if len(dbg.Slow) == 0 {
		t.Error("debug/solves slow is empty despite -slow-trace 1ns")
	}

	// pprof stays off without -pprof.
	if code, _ := get("/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof should be 404 when disabled, got %d", code)
	}

	// Clean SIGTERM drain. The stderr scanner must reach EOF before
	// cmd.Wait (Wait closes the pipe and would race the final log lines).
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var lines []string
	select {
	case lines = <-logDone:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not close its log stream within 30s of SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly after SIGTERM: %v", err)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{`"msg":"draining"`, `"msg":"drained"`, `"clean":true`} {
		if !strings.Contains(joined, want) {
			t.Errorf("daemon logs missing %s:\n%s", want, joined)
		}
	}
	// Request logs are structured and carry the request id.
	if !strings.Contains(joined, `"msg":"request"`) || !strings.Contains(joined, `"request_id"`) {
		t.Errorf("daemon logs missing structured request record:\n%s", joined)
	}

	// The drain flushed the exporter queue: by the time the process has
	// exited, the sink must hold the solve's trace under the propagated
	// trace ID. Shutdown posts synchronously before exit, so a short bounded
	// wait is only slack for the sink handler to return.
	deadline := time.Now().Add(5 * time.Second)
	for {
		sinkMu.Lock()
		all := strings.Join(sinkBodies, "\n")
		sinkMu.Unlock()
		if strings.Contains(all, remoteTrace) && strings.Contains(all, `"thermal_solve"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("OTLP sink missing the drained solve trace; got %d exports:\n%.2000s", len(sinkBodies), all)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// freePort reserves an ephemeral 127.0.0.1 port and releases it for the
// daemon to claim. Sharded nodes must know each other's URLs before either
// binds, so the usual ":0 + listening record" discovery cannot work here.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// TestShardedSmoke is the two-node scale-out check the CI script leans on:
// two real daemons as mutual peers plus a standalone reference node. It
// asserts that both shards and the reference agree bit-for-bit on solve and
// search results, that the non-owner answered its memo miss from the owner
// (>= 1 peer-fetch hit in /metrics), and that /v1/batch coalesces across the
// sharded fleet.
func TestShardedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded smoke test builds and runs three daemons; skipped with -short")
	}

	bin := filepath.Join(t.TempDir(), "chipletd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	portA, portB, portC := freePort(t), freePort(t), freePort(t)
	urlA := fmt.Sprintf("http://127.0.0.1:%d", portA)
	urlB := fmt.Sprintf("http://127.0.0.1:%d", portB)
	urlC := fmt.Sprintf("http://127.0.0.1:%d", portC)

	var logMu sync.Mutex
	logs := map[string]*bytes.Buffer{}
	start := func(port int, extra ...string) {
		t.Helper()
		args := append([]string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", port),
			"-workers", "2", "-log-format", "json",
		}, extra...)
		cmd := exec.Command(bin, args...)
		buf := &bytes.Buffer{}
		logMu.Lock()
		logs[fmt.Sprintf("127.0.0.1:%d", port)] = buf
		logMu.Unlock()
		cmd.Stderr = &lockedWriter{mu: &logMu, w: buf}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		})
	}
	start(portA, "-self", urlA, "-peers", urlB, "-peer-timeout", "2s")
	start(portB, "-self", urlB, "-peers", urlA, "-peer-timeout", "2s")
	start(portC) // standalone reference: no peers, must agree anyway

	dumpLogs := func() string {
		logMu.Lock()
		defer logMu.Unlock()
		var sb strings.Builder
		for addr, buf := range logs {
			fmt.Fprintf(&sb, "--- %s ---\n%s\n", addr, buf.String())
		}
		return sb.String()
	}
	waitReady := func(url string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := http.Get(url + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %s never became healthy\n%s", url, dumpLogs())
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	waitReady(urlA)
	waitReady(urlB)
	waitReady(urlC)

	post := func(url, path, body string) []byte {
		t.Helper()
		resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s%s: %v", url, path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s%s = %d: %s\n%s", url, path, resp.StatusCode, b, dumpLogs())
		}
		return b
	}
	getJSON := func(url, path string, out any) {
		t.Helper()
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatalf("GET %s%s: %v", url, path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if err := json.Unmarshal(b, out); err != nil {
			t.Fatalf("GET %s%s: %v\n%s", url, path, err, b)
		}
	}

	// Warm node A, then learn from its shard view which node owns the
	// engine fingerprint every node derives from this workload.
	solveBody := `{"placement": {"chiplets": 4, "s3_mm": 1}, "benchmark": "cholesky",
	               "freq_mhz": 533, "cores": 128, "grid_n": 8}`
	post(urlA, "/v1/thermal/solve", solveBody)
	var shard struct {
		Enabled bool     `json:"enabled"`
		Nodes   []string `json:"nodes"`
		Engines []struct {
			FingerprintHash string `json:"fingerprint_hash"`
			Owner           string `json:"owner"`
		} `json:"engines"`
	}
	getJSON(urlA, "/debug/shard", &shard)
	if !shard.Enabled || len(shard.Nodes) != 2 || len(shard.Engines) != 1 {
		t.Fatalf("node A shard view = %+v, want 2-node ring with one engine", shard)
	}
	owner := shard.Engines[0].Owner
	other := urlA
	if owner == urlA {
		other = urlB
	}

	// Owner computes an operating point; the non-owner must then answer the
	// same point via peer fetch, bit-for-bit, as must the standalone node.
	// Cross-evaluation warm starts make a solve depend on the engine's prior
	// solves, so the reference node must replay the owner's exact compute
	// sequence (warm-up first, then the varied point) for bitwise parity.
	post(owner, "/v1/thermal/solve", solveBody)
	post(urlC, "/v1/thermal/solve", solveBody)
	vary := strings.Replace(solveBody, `"cores": 128`, `"cores": 256`, 1)
	type solveOut struct {
		PeakC        float64 `json:"peak_c"`
		TotalPowerW  float64 `json:"total_power_w"`
		CGIterations int     `json:"cg_iterations"`
	}
	var fromOwner, fromOther, fromRef solveOut
	mustJSON := func(b []byte, out any) {
		t.Helper()
		if err := json.Unmarshal(b, out); err != nil {
			t.Fatal(err)
		}
	}
	mustJSON(post(owner, "/v1/thermal/solve", vary), &fromOwner)
	mustJSON(post(other, "/v1/thermal/solve", vary), &fromOther)
	mustJSON(post(urlC, "/v1/thermal/solve", vary), &fromRef)
	if fromOther != fromOwner || fromRef != fromOwner {
		t.Fatalf("sharded answers diverged: owner %+v, non-owner %+v, standalone %+v",
			fromOwner, fromOther, fromRef)
	}

	// Winner parity: the same organization search run on a shard and on the
	// standalone node must pick the identical winner.
	searchBody := `{"benchmark": "swaptions", "threshold_c": 85, "chiplet_counts": [4],
	                "interposer_min_mm": 30, "interposer_max_mm": 30, "starts": 1,
	                "thermal_grid_n": 8, "surrogate_margin_c": -1}`
	var searchShard, searchRef struct {
		Feasible bool            `json:"feasible"`
		Best     json.RawMessage `json:"best"`
	}
	mustJSON(post(other, "/v1/org/search", searchBody), &searchShard)
	mustJSON(post(urlC, "/v1/org/search", searchBody), &searchRef)
	if !searchShard.Feasible || !bytes.Equal(searchShard.Best, searchRef.Best) {
		t.Fatalf("search winner diverged:\nshard: %s\nref:   %s", searchShard.Best, searchRef.Best)
	}

	// A coalescing batch against the non-owner: two spacings on the same
	// half-millimeter canonical cell collapse to one computation.
	batchBody := `{"sweep": {"solve": ` + solveBody + `, "spacing_mm": [1.0, 1.1]}}`
	var batch struct {
		Total     int `json:"total"`
		Coalesced int `json:"coalesced"`
		Items     []struct {
			Status int `json:"status"`
		} `json:"items"`
	}
	mustJSON(post(other, "/v1/batch", batchBody), &batch)
	if batch.Total != 2 || batch.Coalesced != 1 {
		t.Fatalf("batch = %+v, want 2 items with 1 coalesced", batch)
	}
	for i, it := range batch.Items {
		if it.Status != http.StatusOK {
			t.Fatalf("batch item %d status = %d", i, it.Status)
		}
	}

	// The non-owner's metrics must prove the peer exchange actually ran.
	resp, err := http.Get(other + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	peerHits := 0.0
	for _, line := range strings.Split(string(mb), "\n") {
		if strings.HasPrefix(line, "chipletd_eval_peer_hits_total") {
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &peerHits)
		}
	}
	if peerHits < 1 {
		t.Fatalf("non-owner chipletd_eval_peer_hits_total = %g, want >= 1\n%s", peerHits, dumpLogs())
	}
}

// lockedWriter serializes daemon stderr appends with the test's log reads.
type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// TestBuildLogger covers the format/level matrix and rejection of unknowns.
func TestBuildLogger(t *testing.T) {
	for _, ok := range []struct{ format, level string }{
		{"", ""}, {"text", "debug"}, {"json", "warn"}, {"JSON", "ERROR"},
	} {
		if _, err := buildLogger(ok.format, ok.level); err != nil {
			t.Errorf("buildLogger(%q, %q): %v", ok.format, ok.level, err)
		}
	}
	if _, err := buildLogger("xml", ""); err == nil {
		t.Error("buildLogger accepted format xml")
	}
	if _, err := buildLogger("", "loud"); err == nil {
		t.Error("buildLogger accepted level loud")
	}
}
