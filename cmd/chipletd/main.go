// Command chipletd serves the paper's models over HTTP/JSON: thermal
// solves, organization searches, cost queries, and server TCO
// elaborations, with a content-addressed result cache, a bounded worker
// pool, request-scoped span traces, and Prometheus metrics. See
// internal/serve for the endpoint reference.
//
// Usage:
//
//	chipletd [-addr :8080] [-workers N] [-kernel-threads N]
//	         [-search-workers N] [-queue N] [-cache N] [-timeout 60s]
//	         [-grid-max 128] [-spatial] [-precond mg] [-warm-start]
//	         [-tco-node 7nm]
//	         [-config file.json]
//	         [-log-format text|json] [-log-level info] [-pprof]
//	         [-trace-ring 64] [-slow-trace 2s]
//	         [-otlp-endpoint http://host:4318] [-trace-sample 1.0]
//	         [-audit-ring 256]
//	         [-peers http://h2:8080,http://h3:8080] [-self http://h1:8080]
//	         [-peer-timeout 500ms]
//
// -peers and -self enable the sharding layer: nodes rendezvous-hash engine
// physics fingerprints over the (identical) fleet list, and a non-owner
// pulls memoized simulation results from the owner over GET /v1/memo
// before simulating locally. See internal/serve/shard.go.
//
// Flags override the optional "server" section of -config. Logs are
// structured (log/slog); -log-format json emits one JSON object per line,
// including a "listening" record carrying the bound address so ":0" runs
// are scriptable. SIGINT/SIGTERM triggers a graceful drain: the listener
// closes and in-flight solves run to completion before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"chiplet25d/internal/config"
	"chiplet25d/internal/cost"
	"chiplet25d/internal/serve"
)

// buildLogger assembles the daemon logger from the format/level settings.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", level)
	}
	ho := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, ho)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, ho)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

func main() {
	var (
		addr       = flag.String("addr", "", "listen address (default :8080)")
		workers    = flag.Int("workers", 0, "max concurrent solves (default GOMAXPROCS)")
		kthreads   = flag.Int("kernel-threads", 0, "thermal-kernel worker goroutines per solve (default GOMAXPROCS/workers, min 1)")
		sworkers   = flag.Int("search-workers", 0, "greedy-restart worker goroutines per org search (default GOMAXPROCS/workers, min 1)")
		queue      = flag.Int("queue", 0, "admission queue depth; beyond it requests get 503 (default 64)")
		cacheCap   = flag.Int("cache", 0, "result cache capacity in entries (default 512)")
		timeout    = flag.Duration("timeout", 0, "per-request deadline (default 60s)")
		gridMax    = flag.Int("grid-max", 0, "largest thermal grid a request may ask for (default 128)")
		tcoNode    = flag.String("tco-node", "", "default tech node for /v1/cost/tco requests that do not set tech_node (45nm, 28nm, 16nm, 7nm)")
		spatial    = flag.Bool("spatial", false, "default org searches to the spatial surrogate tier (requests may still opt out)")
		precond    = flag.String("precond", "mg", "thermal CG preconditioner: mg (multigrid) or ic0; results agree to the solver tolerance")
		warmStart  = flag.Bool("warm-start", true, "seed escalated solves from retained neighbor temperature fields (cross-evaluation warm starts)")
		configPath = flag.String("config", "", "JSON config file with an optional \"server\" section")
		logFormat  = flag.String("log-format", "", "log encoding: text or json (default text)")
		logLevel   = flag.String("log-level", "", "minimum log level: debug, info, warn, error (default info)")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		traceRing  = flag.Int("trace-ring", 0, "flight-recorder capacity in traces (default 64)")
		slowTrace  = flag.Duration("slow-trace", 0, "also retain traces at least this slow (default 2s)")
		otlp       = flag.String("otlp-endpoint", "", "OTLP/HTTP collector base URL; empty disables export")
		traceRate  = flag.Float64("trace-sample", 0, "tail-sampling rate for unremarkable traces; slow/error traces always export (default 1.0, negative = slow/error only)")
		auditRing  = flag.Int("audit-ring", 0, "search audit-trail capacity in events (default 256, negative disables)")
		peers      = flag.String("peers", "", "comma-separated base URLs of the other chipletd nodes (enables sharding; requires -self)")
		selfURL    = flag.String("self", "", "this node's own base URL as peers address it (required with -peers)")
		peerTO     = flag.Duration("peer-timeout", 0, "memo peer-fetch deadline; misses fall back to local compute (default 500ms)")
	)
	flag.Parse()

	fatal := func(err error) {
		fmt.Fprintf(os.Stderr, "chipletd: %v\n", err)
		os.Exit(1)
	}

	opts := serve.DefaultOptions()
	format, level := "", ""
	warmFromConfig := false
	if *configPath != "" {
		sc, err := config.LoadServerFile(*configPath)
		if err != nil {
			fatal(err)
		}
		if sc.Addr != "" {
			opts.Addr = sc.Addr
		}
		if sc.Workers != nil {
			opts.Workers = *sc.Workers
		}
		if sc.KernelThreads != nil {
			opts.KernelThreads = *sc.KernelThreads
		}
		if sc.SearchWorkers != nil {
			opts.SearchWorkers = *sc.SearchWorkers
		}
		if sc.QueueDepth != nil {
			opts.QueueDepth = *sc.QueueDepth
		}
		if sc.CacheCapacity != nil {
			opts.CacheCapacity = *sc.CacheCapacity
		}
		if sc.RequestTimeoutSec != nil {
			opts.RequestTimeout = time.Duration(*sc.RequestTimeoutSec * float64(time.Second))
		}
		if sc.Pprof != nil {
			opts.EnablePprof = *sc.Pprof
		}
		if sc.TraceRing != nil {
			opts.TraceRingSize = *sc.TraceRing
		}
		if sc.SlowTraceMS != nil {
			opts.SlowTraceThreshold = time.Duration(*sc.SlowTraceMS * float64(time.Millisecond))
		}
		if sc.OTLPEndpoint != "" {
			opts.OTLPEndpoint = sc.OTLPEndpoint
		}
		if sc.TraceSample != nil {
			opts.TraceSampleRate = *sc.TraceSample
		}
		if sc.AuditRing != nil {
			opts.AuditRingSize = *sc.AuditRing
		}
		if sc.Preconditioner != "" {
			opts.Preconditioner = sc.Preconditioner
		}
		if sc.WarmStart != nil {
			opts.WarmStart = *sc.WarmStart
			warmFromConfig = true
		}
		if len(sc.Peers) > 0 {
			opts.Peers = sc.Peers
		}
		if sc.SelfURL != "" {
			opts.SelfURL = sc.SelfURL
		}
		if sc.PeerTimeoutMS != nil {
			opts.PeerTimeout = time.Duration(*sc.PeerTimeoutMS * float64(time.Millisecond))
		}
		format, level = sc.LogFormat, sc.LogLevel
	}
	if *addr != "" {
		opts.Addr = *addr
	}
	if *workers > 0 {
		opts.Workers = *workers
	}
	if *kthreads > 0 {
		opts.KernelThreads = *kthreads
	}
	if *sworkers > 0 {
		opts.SearchWorkers = *sworkers
	}
	if *queue > 0 {
		opts.QueueDepth = *queue
	}
	if *cacheCap > 0 {
		opts.CacheCapacity = *cacheCap
	}
	if *timeout > 0 {
		opts.RequestTimeout = *timeout
	}
	if *gridMax > 0 {
		opts.MaxGridN = *gridMax
	}
	if *spatial {
		opts.SpatialSurrogate = true
	}
	if *tcoNode != "" {
		if _, err := cost.NodeByName(*tcoNode); err != nil {
			fatal(err)
		}
		opts.TCONode = *tcoNode
	}
	// -precond and -warm-start default to the accelerated path (mg + warm
	// starts; results agree with ic0/cold to the solver tolerance). An
	// explicit flag beats the config file; an absent flag defers to a
	// config-file setting before falling back to the flag default.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if explicit["precond"] || opts.Preconditioner == "" {
		opts.Preconditioner = *precond
	}
	if p := opts.Preconditioner; p != "ic0" && p != "mg" {
		fatal(fmt.Errorf("unknown preconditioner %q (want ic0 or mg)", p))
	}
	if explicit["warm-start"] || !warmFromConfig {
		opts.WarmStart = *warmStart
	}
	if *pprofOn {
		opts.EnablePprof = true
	}
	if *traceRing > 0 {
		opts.TraceRingSize = *traceRing
	}
	if *slowTrace > 0 {
		opts.SlowTraceThreshold = *slowTrace
	}
	if *otlp != "" {
		opts.OTLPEndpoint = *otlp
	}
	if *traceRate != 0 {
		opts.TraceSampleRate = *traceRate
	}
	if *auditRing != 0 {
		opts.AuditRingSize = *auditRing
	}
	if *peers != "" {
		var list []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				list = append(list, p)
			}
		}
		opts.Peers = list
	}
	if *selfURL != "" {
		opts.SelfURL = *selfURL
	}
	if *peerTO > 0 {
		opts.PeerTimeout = *peerTO
	}
	if len(opts.Peers) > 0 && opts.SelfURL == "" {
		fatal(fmt.Errorf("-peers requires -self (this node's own base URL)"))
	}
	if *logFormat != "" {
		format = *logFormat
	}
	if *logLevel != "" {
		level = *logLevel
	}

	logger, err := buildLogger(format, level)
	if err != nil {
		fatal(err)
	}
	// Components that log without a request context (and anything else in
	// the process using slog) share the daemon handler.
	slog.SetDefault(logger)
	opts.Logger = logger

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s := serve.New(opts)
	if err := s.Run(ctx); err != nil {
		logger.Error("chipletd exiting", "error", err.Error())
		os.Exit(1)
	}
	logger.Info("chipletd: drained, bye")
}
