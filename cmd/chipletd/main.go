// Command chipletd serves the paper's models over HTTP/JSON: thermal
// solves, organization searches, and cost queries, with a content-addressed
// result cache, a bounded worker pool, and Prometheus metrics. See
// internal/serve for the endpoint reference.
//
// Usage:
//
//	chipletd [-addr :8080] [-workers N] [-queue N] [-cache N]
//	         [-timeout 60s] [-grid-max 128] [-config file.json]
//
// Flags override the optional "server" section of -config. SIGINT/SIGTERM
// triggers a graceful drain: the listener closes and in-flight solves run
// to completion before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chiplet25d/internal/config"
	"chiplet25d/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "", "listen address (default :8080)")
		workers    = flag.Int("workers", 0, "max concurrent solves (default GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "admission queue depth; beyond it requests get 503 (default 64)")
		cacheCap   = flag.Int("cache", 0, "result cache capacity in entries (default 512)")
		timeout    = flag.Duration("timeout", 0, "per-request deadline (default 60s)")
		gridMax    = flag.Int("grid-max", 0, "largest thermal grid a request may ask for (default 128)")
		configPath = flag.String("config", "", "JSON config file with an optional \"server\" section")
	)
	flag.Parse()

	opts := serve.DefaultOptions()
	if *configPath != "" {
		sc, err := config.LoadServerFile(*configPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chipletd: %v\n", err)
			os.Exit(1)
		}
		if sc.Addr != "" {
			opts.Addr = sc.Addr
		}
		if sc.Workers != nil {
			opts.Workers = *sc.Workers
		}
		if sc.QueueDepth != nil {
			opts.QueueDepth = *sc.QueueDepth
		}
		if sc.CacheCapacity != nil {
			opts.CacheCapacity = *sc.CacheCapacity
		}
		if sc.RequestTimeoutSec != nil {
			opts.RequestTimeout = time.Duration(*sc.RequestTimeoutSec * float64(time.Second))
		}
	}
	if *addr != "" {
		opts.Addr = *addr
	}
	if *workers > 0 {
		opts.Workers = *workers
	}
	if *queue > 0 {
		opts.QueueDepth = *queue
	}
	if *cacheCap > 0 {
		opts.CacheCapacity = *cacheCap
	}
	if *timeout > 0 {
		opts.RequestTimeout = *timeout
	}
	if *gridMax > 0 {
		opts.MaxGridN = *gridMax
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s := serve.New(opts)
	log.Printf("chipletd: listening on %s (workers=%d queue=%d cache=%d timeout=%s)",
		opts.Addr, opts.Workers, opts.QueueDepth, opts.CacheCapacity, opts.RequestTimeout)
	if err := s.Run(ctx); err != nil {
		log.Fatalf("chipletd: %v", err)
	}
	log.Printf("chipletd: drained, bye")
}
