// Command thermalsim runs one steady-state thermal simulation of a chiplet
// organization running a benchmark, and prints the converged peak
// temperature, power, and placement map.
//
// Usage:
//
//	thermalsim -chiplets 16 -s1 1 -s2 0.5 -s3 2 -bench shock -freq 1000 -cores 256
//	thermalsim -chiplets 4 -spacing 6 -bench canneal
//	thermalsim -chiplets 1 -bench cholesky -freq 533
//	thermalsim -chiplets 16 -s1 1 -s2 1 -s3 2 -surrogate    # spatial model vs. simulation
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	chiplet "chiplet25d"
	"chiplet25d/internal/org"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
)

func main() {
	var (
		n       = flag.Int("chiplets", 1, "chiplet count: 1 (single chip), 4, 16, or a square r*r for -spacing mode")
		spacing = flag.Float64("spacing", -1, "uniform spacing (mm); if set, places chiplets in a uniform matrix")
		s1      = flag.Float64("s1", 0, "paper spacing s1 (mm), 16-chiplet organizations")
		s2      = flag.Float64("s2", 0, "paper spacing s2 (mm), 16-chiplet organizations")
		s3      = flag.Float64("s3", 0, "paper spacing s3 (mm)")
		bench   = flag.String("bench", "cholesky", "benchmark ("+strings.Join(chiplet.BenchmarkNames(), ", ")+")")
		freq    = flag.Float64("freq", 1000, "frequency (MHz) from the DVFS table")
		cores   = flag.Int("cores", 256, "active core count (MinTemp allocation)")
		grid    = flag.Int("grid", 64, "thermal grid resolution")
		showMap = flag.Bool("map", true, "print the placement map")
		heat    = flag.Bool("heatmap", false, "print the ASCII temperature heatmap")
		pgm     = flag.String("pgm", "", "write the temperature field as a PGM image to this path")
		csv     = flag.String("fieldcsv", "", "write the temperature field as CSV to this path")
		surr    = flag.Bool("surrogate", false, "also run the spatial surrogate and print predicted vs. simulated peak")
		precond = flag.String("precond", "mg", "thermal CG preconditioner: mg (multigrid) or ic0 (results agree to the solver tolerance)")
	)
	flag.Parse()

	var (
		pl  chiplet.Placement
		err error
	)
	switch {
	case *n == 1:
		pl = chiplet.SingleChip()
	case *spacing >= 0:
		r := 1
		for r*r < *n {
			r++
		}
		if r*r != *n {
			fatal(fmt.Errorf("chiplet count %d is not a square", *n))
		}
		pl, err = chiplet.UniformGrid(r, *spacing)
	default:
		pl, err = chiplet.PaperOrg(*n, *s1, *s2, *s3)
	}
	if err != nil {
		fatal(err)
	}

	if *precond != "ic0" && *precond != "mg" {
		fatal(fmt.Errorf("unknown preconditioner %q (want ic0 or mg)", *precond))
	}
	res, err := chiplet.PeakTemperature(pl, *bench, *freq, *cores, &chiplet.SimOptions{GridN: *grid, Preconditioner: *precond})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("placement      %d chiplet(s), footprint %.1f x %.1f mm\n", pl.NumChiplets(), pl.W, pl.H)
	if !pl.Is2D() {
		fmt.Printf("spacings       s1=%.1f s2=%.1f s3=%.1f mm\n", pl.S1, pl.S2, pl.S3)
		fmt.Printf("cost           $%.1f (%.2fx the single chip)\n",
			chiplet.SystemCost(pl), chiplet.NormalizedCost(pl))
	} else {
		fmt.Printf("cost           $%.1f\n", chiplet.SystemCost(pl))
	}
	fmt.Printf("workload       %s at %.0f MHz, %d active cores\n", *bench, *freq, *cores)
	fmt.Printf("peak           %.1f °C (ambient 45 °C)\n", res.PeakC)
	fmt.Printf("power          %.1f W total, %.1f W mesh NoC\n", res.TotalPowerW, res.MeshPowerW)
	if *surr {
		if err := printSurrogate(pl, *bench, *freq, *cores, *grid, res.PeakC); err != nil {
			fatal(err)
		}
	}
	if *showMap {
		m, err := chiplet.PlacementMap(pl, *cores)
		if err == nil {
			fmt.Printf("\n%s\n", m)
		}
	}
	if *heat {
		fmt.Printf("\n%s", res.HeatmapASCII())
	}
	if *pgm != "" {
		f, err := os.Create(*pgm)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteHeatmapPGM(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote heatmap to %s\n", *pgm)
	}
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteFieldCSV(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote field CSV to %s\n", *csv)
	}
}

// printSurrogate calibrates the spatial compact model on this placement's
// chiplet class (running its design-of-experiments simulations at the same
// grid resolution) and prints the model's peak prediction next to the full
// simulation — a quick operator check of the fidelity tier's accuracy.
func printSurrogate(pl chiplet.Placement, bench string, freq float64, cores, grid int, simPeakC float64) error {
	b, err := perf.ByName(bench)
	if err != nil {
		return err
	}
	var op power.DVFSPoint
	found := false
	for _, o := range power.FrequencySet {
		if o.FreqMHz == freq {
			op, found = o, true
			break
		}
	}
	if !found {
		return fmt.Errorf("freq %g MHz not in the DVFS table", freq)
	}
	cfg := org.DefaultConfig(b)
	cfg.Thermal.Nx, cfg.Thermal.Ny = grid, grid
	eng, err := org.NewEngine(cfg)
	if err != nil {
		return err
	}
	ctx := context.Background()
	cal, err := eng.SpatialCalibration(ctx, b, pl.NumChiplets())
	if err != nil {
		return err
	}
	pred, err := eng.SpatialPredictPeakC(ctx, b, pl, op, cores)
	if err != nil {
		return err
	}
	fmt.Printf("surrogate      calibrated on %d+%d DoE points, spread %.2f mm, bound ±%.2f °C\n",
		cal.Samples, cal.HoldoutSamples, cal.Params.SpreadMM, cal.WorstCaseErrC)
	fmt.Printf("               predicted %.1f °C, simulated %.1f °C, error %+.2f °C\n",
		pred, simPeakC, pred-simPeakC)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thermalsim:", err)
	os.Exit(1)
}
