// Command chipletverify runs the physics verification harness from a bare
// binary: analytic oracles, randomized physics invariants, differential
// checks against the dumb-but-obviously-correct reference path, the golden
// regression corpus (embedded in the binary), and the mutation smoke test.
// Exit status is non-zero if any selected check fails.
//
// Usage:
//
//	chipletverify               # fast + standard tiers (~1 s)
//	chipletverify -long         # add paper-scale grids and figure goldens
//	chipletverify -quick        # fast tier only (CI gate)
//	chipletverify -list         # list checks without running
//	chipletverify -run golden   # run checks whose name contains "golden"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"chiplet25d/internal/verify"
)

func main() {
	var (
		long    = flag.Bool("long", false, "run the full tier (paper-scale grids, figure goldens)")
		quick   = flag.Bool("quick", false, "run only the fast-tier checks")
		list    = flag.Bool("list", false, "list checks and tiers without running")
		runPat  = flag.String("run", "", "run only checks whose name contains this substring")
		verbose = flag.Bool("v", false, "print per-check diagnostics (worst errors, iteration counts)")
	)
	flag.Parse()
	if *long && *quick {
		fmt.Fprintln(os.Stderr, "chipletverify: -long and -quick are mutually exclusive")
		os.Exit(2)
	}

	checks := verify.Checks()
	if *list {
		fmt.Printf("%-32s %-8s %s\n", "check", "tier", "description")
		for _, c := range checks {
			fmt.Printf("%-32s %-8s %s\n", c.Name, tier(c), c.Description)
		}
		return
	}

	failed := 0
	ran := 0
	start := time.Now()
	for _, c := range checks {
		if *runPat != "" && !strings.Contains(c.Name, *runPat) {
			continue
		}
		if c.Long && !*long {
			continue
		}
		if *quick && !c.Quick {
			continue
		}
		ran++
		ctx := &verify.Context{Long: *long}
		if *verbose {
			ctx.Logf = func(format string, args ...any) {
				fmt.Printf("        %s\n", fmt.Sprintf(format, args...))
			}
		}
		t0 := time.Now()
		if err := c.Run(ctx); err != nil {
			failed++
			fmt.Printf("FAIL    %-32s %v\n", c.Name, err)
			continue
		}
		fmt.Printf("ok      %-32s %s\n", c.Name, time.Since(t0).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "chipletverify: no checks matched")
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Printf("\n%d of %d checks FAILED in %s\n", failed, ran, time.Since(start).Round(time.Millisecond))
		os.Exit(1)
	}
	fmt.Printf("\nall %d checks passed in %s\n", ran, time.Since(start).Round(time.Millisecond))
}

func tier(c verify.Check) string {
	switch {
	case c.Long:
		return "long"
	case c.Quick:
		return "fast"
	default:
		return "std"
	}
}
