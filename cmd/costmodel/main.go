// Command costmodel prints 2.5D manufacturing cost curves (Eqs. (1)-(4)):
// absolute and normalized cost of 4- and 16-chiplet systems across
// interposer sizes, for a configurable defect density. With -tco it instead
// elaborates a full server TCO sweep: lane silicon + heatsink cost, lanes
// packed per server, and $/GIPS-year across chiplet counts for one tech
// node (see internal/cost's elaboration model).
//
// Usage:
//
//	costmodel -d0 0.25 -step 2
//	costmodel -tco -node 7nm -lane-power 220 -lane-gips 180
package main

import (
	"flag"
	"fmt"
	"os"

	"chiplet25d/internal/cost"
	"chiplet25d/internal/floorplan"
)

func main() {
	var (
		d0        = flag.Float64("d0", 0.25, "defect density (defects/cm²)")
		step      = flag.Float64("step", 2, "interposer edge step (mm)")
		bond      = flag.Float64("bond", 0.2, "per-chiplet bonding cost ($)")
		tco       = flag.Bool("tco", false, "print a server TCO sweep across chiplet counts instead of cost curves")
		node      = flag.String("node", "45nm", "tech node for -tco (45nm, 28nm, 16nm, 7nm)")
		lanePower = flag.Float64("lane-power", 220, "lane power draw at the base node for -tco (W)")
		laneGIPS  = flag.Float64("lane-gips", 180, "lane throughput for -tco (GIPS)")
	)
	flag.Parse()
	if *step <= 0 {
		fmt.Fprintln(os.Stderr, "costmodel: step must be positive")
		os.Exit(1)
	}

	p := cost.DefaultParams()
	p.D0PerCM2 = *d0
	p.BondCost = *bond
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "costmodel:", err)
		os.Exit(1)
	}
	if *tco {
		if err := printTCOSweep(p, *node, *lanePower, *laneGIPS); err != nil {
			fmt.Fprintln(os.Stderr, "costmodel:", err)
			os.Exit(1)
		}
		return
	}
	c2d := p.SingleChipCost(floorplan.ChipEdgeMM, floorplan.ChipEdgeMM)
	fmt.Printf("defect density %.2f /cm², single chip (18x18 mm): $%.2f (yield %.1f%%)\n\n",
		*d0, c2d, 100*p.CMOSYield(floorplan.ChipEdgeMM*floorplan.ChipEdgeMM))
	fmt.Printf("%-8s  %-10s %-10s  %-10s %-10s\n", "edge_mm", "cost_n4_$", "norm_n4", "cost_n16_$", "norm_n16")
	for edge := 20.0; edge <= floorplan.MaxInterposerEdgeMM+1e-9; edge += *step {
		c4 := p.Cost25DForInterposer(4, edge)
		c16 := p.Cost25DForInterposer(16, edge)
		fmt.Printf("%-8.1f  %-10.2f %-10.3f  %-10.2f %-10.3f\n", edge, c4, c4/c2d, c16, c16/c2d)
	}
	fmt.Printf("\nchiplet yields: 4-chiplet die %.1f%%, 16-chiplet die %.1f%%\n",
		100*p.CMOSYield(81), 100*p.CMOSYield(20.25))
}

// printTCOSweep elaborates the lane design at each square chiplet count and
// prints the fleet economics: heatsink capacity, per-lane cost, server
// packing, and the $/GIPS-year objective, marking the minimum.
func printTCOSweep(p cost.Params, node string, lanePowerW, laneGIPS float64) error {
	tp := cost.DefaultTCOParams()
	tp.Node = node
	lane := cost.LaneDesign{LanePowerW: lanePowerW, LaneGIPS: laneGIPS}
	counts := []int{1, 4, 9, 16, 25, 36, 64}
	elabs, err := tp.SweepChiplets(p, lane, counts)
	if err != nil {
		return err
	}
	nd, err := cost.NodeByName(node)
	if err != nil {
		return err
	}
	fmt.Printf("server TCO sweep: node %s, lane %.0f W (x%.2f scaled) / %.0f GIPS, budget %.0f W, PUE %.2f, $%.2f/kWh\n\n",
		nd.Name, lanePowerW, nd.PowerScale, laneGIPS, tp.ServerPowerBudgetW, tp.PUE, tp.EnergyUSDPerKWH)
	fmt.Printf("%-9s %-9s %-9s %-10s %-10s %-7s %-11s %-13s %s\n",
		"chiplets", "lane_w", "max_w", "silicon_$", "heatsink_$", "lanes", "server_$", "$/gips-year", "status")
	best := -1
	for i, e := range elabs {
		if e.Feasible && (best < 0 || e.TCOPerGIPSYear < elabs[best].TCOPerGIPSYear) {
			best = i
		}
	}
	for i, e := range elabs {
		status := e.Reason
		if i == best {
			status = "ok  <-- min"
		}
		tcoStr := "-"
		if e.Feasible {
			tcoStr = fmt.Sprintf("%.5f", e.TCOPerGIPSYear)
		}
		fmt.Printf("%-9d %-9.1f %-9.1f %-10.2f %-10.2f %-7d %-11.2f %-13s %s\n",
			e.Chiplets, e.LanePowerW, e.MaxLanePowerW, e.SiliconUSD, e.HeatsinkUSD,
			e.LanesPerServer, e.ServerUSD, tcoStr, status)
	}
	return nil
}
