// Command costmodel prints 2.5D manufacturing cost curves (Eqs. (1)-(4)):
// absolute and normalized cost of 4- and 16-chiplet systems across
// interposer sizes, for a configurable defect density.
//
// Usage:
//
//	costmodel -d0 0.25 -step 2
package main

import (
	"flag"
	"fmt"
	"os"

	"chiplet25d/internal/cost"
	"chiplet25d/internal/floorplan"
)

func main() {
	var (
		d0   = flag.Float64("d0", 0.25, "defect density (defects/cm²)")
		step = flag.Float64("step", 2, "interposer edge step (mm)")
		bond = flag.Float64("bond", 0.2, "per-chiplet bonding cost ($)")
	)
	flag.Parse()
	if *step <= 0 {
		fmt.Fprintln(os.Stderr, "costmodel: step must be positive")
		os.Exit(1)
	}

	p := cost.DefaultParams()
	p.D0PerCM2 = *d0
	p.BondCost = *bond
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "costmodel:", err)
		os.Exit(1)
	}
	c2d := p.SingleChipCost(floorplan.ChipEdgeMM, floorplan.ChipEdgeMM)
	fmt.Printf("defect density %.2f /cm², single chip (18x18 mm): $%.2f (yield %.1f%%)\n\n",
		*d0, c2d, 100*p.CMOSYield(floorplan.ChipEdgeMM*floorplan.ChipEdgeMM))
	fmt.Printf("%-8s  %-10s %-10s  %-10s %-10s\n", "edge_mm", "cost_n4_$", "norm_n4", "cost_n16_$", "norm_n16")
	for edge := 20.0; edge <= floorplan.MaxInterposerEdgeMM+1e-9; edge += *step {
		c4 := p.Cost25DForInterposer(4, edge)
		c16 := p.Cost25DForInterposer(16, edge)
		fmt.Printf("%-8.1f  %-10.2f %-10.3f  %-10.2f %-10.3f\n", edge, c4, c4/c2d, c16, c16/c2d)
	}
	fmt.Printf("\nchiplet yields: 4-chiplet die %.1f%%, 16-chiplet die %.1f%%\n",
		100*p.CMOSYield(81), 100*p.CMOSYield(20.25))
}
