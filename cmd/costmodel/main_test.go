package main

import (
	"testing"

	"chiplet25d/internal/cost"
)

func TestPrintTCOSweep(t *testing.T) {
	p := cost.DefaultParams()
	if err := printTCOSweep(p, "28nm", 220, 180); err != nil {
		t.Fatalf("printTCOSweep(28nm): %v", err)
	}
	// A hot lane exercises the infeasible "-" rendering alongside the
	// feasible rows.
	if err := printTCOSweep(p, "45nm", 300, 180); err != nil {
		t.Fatalf("printTCOSweep(45nm, 300 W): %v", err)
	}
}

func TestPrintTCOSweepUnknownNode(t *testing.T) {
	if err := printTCOSweep(cost.DefaultParams(), "3nm", 220, 180); err == nil {
		t.Fatal("printTCOSweep accepted an unknown tech node")
	}
}
