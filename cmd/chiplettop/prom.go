package main

import (
	"sort"
	"strconv"
	"strings"
)

// A minimal Prometheus text-format (0.0.4) reader: enough to pull scalar
// values, label-summed families, and histogram bucket vectors out of
// chipletd's own exposition. It is a consumer for one known producer, not a
// general parser — unknown syntax is skipped, never fatal.

// sample is one exposition line: name, parsed labels, value.
type sample struct {
	name   string
	labels map[string]string
	value  float64
}

// promDump indexes samples by metric name.
type promDump struct {
	byName map[string][]sample
}

// parseProm reads an exposition body.
func parseProm(text string) *promDump {
	d := &promDump{byName: make(map[string][]sample)}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, ok := parseLine(line)
		if !ok {
			continue
		}
		d.byName[s.name] = append(d.byName[s.name], s)
	}
	return d
}

// parseLine parses `name{l1="v1",...} value [exemplar...]`.
func parseLine(line string) (sample, bool) {
	s := sample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, false
	} else if rest[i] == '{' {
		s.name = rest[:i]
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, false
		}
		parseLabels(rest[i+1:end], s.labels)
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		s.name = rest[:i]
		rest = strings.TrimSpace(rest[i+1:])
	}
	// Value is the first field; anything after (timestamp, OpenMetrics
	// exemplar) is ignored.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, false
	}
	s.value = v
	return s, true
}

// parseLabels parses `k1="v1",k2="v2"` handling escaped quotes.
func parseLabels(body string, into map[string]string) {
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			return
		}
		key := body[:eq]
		rest := body[eq+2:]
		var val strings.Builder
		i := 0
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		into[key] = val.String()
		body = strings.TrimPrefix(strings.TrimPrefix(rest[min(i+1, len(rest)):], ","), " ")
	}
}

// value returns the single (or first) sample's value, 0 when absent.
func (d *promDump) value(name string) float64 {
	ss := d.byName[name]
	if len(ss) == 0 {
		return 0
	}
	return ss[0].value
}

// firstWithLabels returns the first sample of a family (for label reads).
func (d *promDump) firstWithLabels(name string) *sample {
	ss := d.byName[name]
	if len(ss) == 0 {
		return nil
	}
	return &ss[0]
}

// sumPrefix sums every sample of a family across its label sets.
func (d *promDump) sumPrefix(name string) float64 {
	var sum float64
	for _, s := range d.byName[name] {
		sum += s.value
	}
	return sum
}

// sumMatching sums the samples whose labels satisfy the predicate.
func (d *promDump) sumMatching(name string, keep func(map[string]string) bool) float64 {
	var sum float64
	for _, s := range d.byName[name] {
		if keep(s.labels) {
			sum += s.value
		}
	}
	return sum
}

// hist is a cumulative bucket vector for quantile estimation.
type hist struct {
	uppers []float64 // ascending bucket upper bounds (le), +Inf last
	counts []float64 // cumulative counts, parallel to uppers
	count  float64
}

// histogram assembles a plain (unlabeled) histogram family from its
// _bucket/_count samples; nil when absent.
func (d *promDump) histogram(name string) *hist {
	buckets := d.byName[name+"_bucket"]
	if len(buckets) == 0 {
		return nil
	}
	h := &hist{count: d.value(name + "_count")}
	for _, s := range buckets {
		le := s.labels["le"]
		u, err := strconv.ParseFloat(le, 64)
		if err != nil {
			// strconv parses "+Inf" natively; anything else is malformed.
			continue
		}
		h.uppers = append(h.uppers, u)
		h.counts = append(h.counts, s.value)
	}
	sort.Sort(byUpper{h})
	return h
}

type byUpper struct{ *hist }

func (b byUpper) Len() int           { return len(b.uppers) }
func (b byUpper) Less(i, j int) bool { return b.uppers[i] < b.uppers[j] }
func (b byUpper) Swap(i, j int) {
	b.uppers[i], b.uppers[j] = b.uppers[j], b.uppers[i]
	b.counts[i], b.counts[j] = b.counts[j], b.counts[i]
}

// quantile estimates q ∈ [0,1] by linear interpolation within the bucket
// that crosses the rank, the standard Prometheus histogram_quantile
// approximation. Returns -1 when the histogram is empty.
func (h *hist) quantile(q float64) float64 {
	if h == nil || h.count == 0 || len(h.uppers) == 0 {
		return -1
	}
	rank := q * h.count
	var lower, prevCount float64
	for i, c := range h.counts {
		if c >= rank {
			upper := h.uppers[i]
			if i == len(h.uppers)-1 {
				// +Inf bucket: report the highest finite bound.
				if i > 0 {
					return h.uppers[i-1]
				}
				return -1
			}
			width := upper - lower
			inBucket := c - prevCount
			if inBucket <= 0 {
				return upper
			}
			return lower + width*(rank-prevCount)/inBucket
		}
		lower = h.uppers[i]
		prevCount = c
	}
	return h.uppers[len(h.uppers)-1]
}
