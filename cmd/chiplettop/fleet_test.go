package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

func TestFleetTargets(t *testing.T) {
	got := fleetTargets(" host1:9090 ,, http://host2:8080, https://host3 ")
	want := []string{"http://host1:9090", "http://host2:8080", "https://host3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fleetTargets = %v, want %v", got, want)
	}
	if out := fleetTargets(""); out != nil {
		t.Fatalf("empty -targets parsed to %v", out)
	}
}

// fleetStub serves the two endpoints the fleet poller reads.
func fleetStub(t *testing.T, metrics, shard string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/metrics":
			w.Write([]byte(metrics))
		case "/debug/shard":
			w.Write([]byte(shard))
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

const stubMetrics = `# HELP chipletd_inflight_requests In-flight requests.
chipletd_inflight_requests{route="thermal_solve"} 2
chipletd_inflight_requests{route="org_search"} 1
chipletd_busy_workers 1
chipletd_eval_memo_hits_total 30
chipletd_eval_memo_misses_total 10
chipletd_eval_peer_hits_total 4
chipletd_memo_requests_total{result="hit"} 7
chipletd_memo_requests_total{result="miss"} 3
`

const stubShard = `{"enabled": true, "self": "http://a:8080",
  "nodes": ["http://a:8080", "http://b:8080"],
  "engines": [
    {"fingerprint_hash": "aa", "owner": "http://a:8080", "owned": true, "memo_entries": 5},
    {"fingerprint_hash": "bb", "owner": "http://b:8080", "owned": false, "memo_entries": 2}
  ]}`

func TestPollNode(t *testing.T) {
	srv := fleetStub(t, stubMetrics, stubShard)
	row := pollNode(context.Background(), srv.Client(), srv.URL)
	if row.err != nil {
		t.Fatal(row.err)
	}
	if row.inflight != 3 || row.busy != 1 {
		t.Errorf("inflight=%g busy=%g, want 3 and 1", row.inflight, row.busy)
	}
	if row.memoHitPct != "75%" {
		t.Errorf("memoHitPct = %q, want 75%%", row.memoHitPct)
	}
	if row.peerHits != 4 || row.memoServed != 7 {
		t.Errorf("peerHits=%g memoServed=%g, want 4 and 7 (hit label only)", row.peerHits, row.memoServed)
	}
	if !row.shardOn || row.engines != 2 || row.owned != 1 {
		t.Errorf("shard view: on=%v engines=%d owned=%d, want true/2/1", row.shardOn, row.engines, row.owned)
	}
}

func TestRenderFleetMergesLiveAndDownNodes(t *testing.T) {
	live := fleetStub(t, stubMetrics, stubShard)
	down := httptest.NewServer(nil)
	down.Close() // refused: the row must render DOWN, not abort the frame

	out := renderFleet(context.Background(), live.Client(), []string{live.URL, down.URL})
	if !strings.Contains(out, "2 nodes") {
		t.Errorf("header missing node count:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	liveLine, downLine := "", ""
	for _, l := range lines {
		if strings.HasPrefix(l, trimScheme(live.URL)) {
			liveLine = l
		}
		if strings.HasPrefix(l, trimScheme(down.URL)) {
			downLine = l
		}
	}
	if liveLine == "" || !strings.Contains(liveLine, "ok") ||
		!strings.Contains(liveLine, "75%") || !strings.Contains(liveLine, "1/2") {
		t.Errorf("live row wrong: %q", liveLine)
	}
	if downLine == "" || !strings.Contains(downLine, "DOWN") {
		t.Errorf("down row wrong: %q", downLine)
	}
}

func TestRenderFleetWithoutRing(t *testing.T) {
	srv := fleetStub(t, stubMetrics, `{"enabled": false, "engines": []}`)
	out := renderFleet(context.Background(), srv.Client(), []string{srv.URL})
	if !strings.Contains(out, "(no ring)") {
		t.Errorf("standalone node should render engines without ownership:\n%s", out)
	}
}
