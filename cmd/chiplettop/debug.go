package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// Renderers for chipletd's debug endpoints. Both degrade to a one-line
// note on error: the fleet view stays useful even when a daemon predates
// an endpoint or auditing is disabled.

// traceLine mirrors the fields of obs.TraceJSON the view renders.
type traceLine struct {
	RequestID  string         `json:"request_id"`
	Route      string         `json:"route"`
	TraceID    string         `json:"trace_id"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs"`
}

const maxRows = 5

func renderSolves(ctx context.Context, client *http.Client, base string) string {
	raw, err := fetch(ctx, client, base, "/debug/solves")
	if err != nil {
		return fmt.Sprintf("  (unavailable: %v)\n", err)
	}
	var body struct {
		Recent []traceLine `json:"recent"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		return fmt.Sprintf("  (bad payload: %v)\n", err)
	}
	if len(body.Recent) == 0 {
		return "  (none yet)\n"
	}
	var b strings.Builder
	for i, t := range body.Recent {
		if i == maxRows {
			fmt.Fprintf(&b, "  … %d more\n", len(body.Recent)-maxRows)
			break
		}
		status, cache := "?", "-"
		if v, ok := t.Attrs["status"]; ok {
			status = fmt.Sprintf("%v", v)
		}
		if v, ok := t.Attrs["cache"]; ok {
			cache = fmt.Sprintf("%v", v)
		}
		fmt.Fprintf(&b, "  %-14s %4s  %8.1fms  cache=%-4s  %s  %s\n",
			t.Route, status, t.DurationMS, cache, shortID(t.TraceID), t.Start.Format("15:04:05"))
	}
	return b.String()
}

// searchLine mirrors the fields of serve's auditRecord the view renders.
type searchLine struct {
	RequestID string    `json:"request_id"`
	Start     time.Time `json:"start"`
	ElapsedMS float64   `json:"elapsed_ms"`
	Feasible  bool      `json:"feasible"`
	Trail     *struct {
		Events []struct {
			Kind string `json:"kind"`
		} `json:"events"`
		Dropped uint64 `json:"dropped"`
	} `json:"trail"`
}

func renderSearches(ctx context.Context, client *http.Client, base string) string {
	raw, err := fetch(ctx, client, base, "/debug/search")
	if err != nil {
		return fmt.Sprintf("  (unavailable: %v)\n", err)
	}
	var body struct {
		Searches []searchLine `json:"searches"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		return fmt.Sprintf("  (bad payload: %v)\n", err)
	}
	if len(body.Searches) == 0 {
		return "  (none yet)\n"
	}
	var b strings.Builder
	for i, s := range body.Searches {
		if i == maxRows {
			fmt.Fprintf(&b, "  … %d more\n", len(body.Searches)-maxRows)
			break
		}
		feas := "infeasible"
		if s.Feasible {
			feas = "feasible"
		}
		evts, kinds := 0, ""
		if s.Trail != nil {
			evts = len(s.Trail.Events)
			kinds = kindSummary(s.Trail.Events)
			if s.Trail.Dropped > 0 {
				kinds += fmt.Sprintf(" (+%d dropped)", s.Trail.Dropped)
			}
		}
		fmt.Fprintf(&b, "  %-10s %10.1fms  %4d events  %s  %s  %s\n",
			feas, s.ElapsedMS, evts, kinds, shortID(s.RequestID), s.Start.Format("15:04:05"))
	}
	return b.String()
}

// kindSummary compresses an event list into "eval×120 accept×9 ...".
func kindSummary(events []struct {
	Kind string `json:"kind"`
}) string {
	counts := map[string]int{}
	for _, e := range events {
		counts[e.Kind]++
	}
	parts := make([]string, 0, len(counts))
	for _, k := range sortedKeys(counts) {
		parts = append(parts, fmt.Sprintf("%s×%d", strings.TrimPrefix(k, "move_"), counts[k]))
	}
	return strings.Join(parts, " ")
}

func shortID(id string) string {
	if len(id) > 8 {
		return id[:8]
	}
	return id
}
