// Command chiplettop renders a live, single-screen fleet view of a running
// chipletd: request/cache/engine counters from GET /metrics, the most
// recent request traces from GET /debug/solves, and the latest search
// convergence audits from GET /debug/search, refreshed in place like top.
//
// Usage:
//
//	chiplettop [-addr http://localhost:8080] [-interval 2s] [-once]
//	chiplettop -targets host1:8080,host2:8080 [-interval 2s] [-once]
//
// -once renders a single frame without clearing the screen and exits (for
// scripts and tests). Interactive runs clear and redraw every interval
// until interrupted. -targets switches to the merged fleet view: one row
// per node with liveness, load, memo hit ratio, and the sharding layer's
// ownership and peer-fetch traffic.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "chipletd base URL")
		targets  = flag.String("targets", "", "comma-separated chipletd nodes for the merged fleet view (overrides -addr)")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval")
		once     = flag.Bool("once", false, "render one frame and exit (no screen clearing)")
	)
	flag.Parse()
	if !strings.Contains(*addr, "://") {
		*addr = "http://" + *addr
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := &http.Client{Timeout: 5 * time.Second}

	if *targets != "" {
		nodes := fleetTargets(*targets)
		if *once {
			fmt.Print(renderFleet(ctx, client, nodes))
			return
		}
		tick := time.NewTicker(*interval)
		defer tick.Stop()
		for {
			fmt.Print("\x1b[2J\x1b[H" + renderFleet(ctx, client, nodes))
			select {
			case <-ctx.Done():
				fmt.Println()
				return
			case <-tick.C:
			}
		}
	}

	if *once {
		frame, err := render(ctx, client, *addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chiplettop: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(frame)
		return
	}

	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		frame, err := render(ctx, client, *addr)
		if err != nil {
			frame = fmt.Sprintf("chiplettop: %s unreachable: %v\n", *addr, err)
		}
		// Clear screen + home cursor, then draw the frame in one write so a
		// slow terminal never shows a half-rendered screen.
		fmt.Print("\x1b[2J\x1b[H" + frame)
		select {
		case <-ctx.Done():
			fmt.Println()
			return
		case <-tick.C:
		}
	}
}

// fetch GETs a path and returns the body (bounded).
func fetch(ctx context.Context, client *http.Client, base, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(base, "/")+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 4<<20))
}

// render assembles one full frame from the three endpoints. /metrics is
// required; the debug endpoints degrade to empty sections on error.
func render(ctx context.Context, client *http.Client, base string) (string, error) {
	raw, err := fetch(ctx, client, base, "/metrics")
	if err != nil {
		return "", err
	}
	m := parseProm(string(raw))
	var b strings.Builder

	version, revision := "?", "?"
	if s := m.firstWithLabels("chipletd_build_info"); s != nil {
		version, revision = s.labels["version"], s.labels["revision"]
	}
	uptime := "?"
	if start := m.value("chipletd_process_start_time_seconds"); start > 0 {
		uptime = (time.Duration(time.Now().Unix()-int64(start)) * time.Second).String()
	}
	fmt.Fprintf(&b, "chipletd @ %s   up %s   %s (%s)\n\n", base, uptime, version, shortRev(revision))

	req := m.sumPrefix("chipletd_requests_total")
	errs := m.sumMatching("chipletd_requests_total", func(l map[string]string) bool {
		return strings.HasPrefix(l["code"], "5")
	})
	inflight := m.sumPrefix("chipletd_inflight_requests")
	fmt.Fprintf(&b, "requests  total %.0f   5xx %.0f   inflight %.0f   queue %.0f   busy %.0f\n",
		req, errs, inflight, m.value("chipletd_queue_depth"), m.value("chipletd_busy_workers"))

	hits, misses := m.sumPrefix("chipletd_cache_hits_total"), m.sumPrefix("chipletd_cache_misses_total")
	fmt.Fprintf(&b, "cache     hits %s (%.0f/%.0f)   entries %.0f\n",
		pct(hits, hits+misses), hits, hits+misses, m.value("chipletd_cache_entries"))

	fmt.Fprintf(&b, "engine    memo hits %.0f   dedup %.0f   sims %.0f   cg iters %s\n",
		m.value("chipletd_eval_memo_hits_total"), m.value("chipletd_eval_dedup_waits_total"),
		m.value("chipletd_thermal_sims_total"), human(m.value("chipletd_cg_iterations_total")))

	scalar, spatial := m.value("chipletd_eval_scalar_hits_total"), m.value("chipletd_eval_spatial_hits_total")
	full := m.value("chipletd_thermal_sims_total")
	tot := scalar + spatial + full
	fmt.Fprintf(&b, "fidelity  spatial %s   scalar %s   full %s   calibrations %.0f   worst err %.2f°C\n",
		pct(spatial, tot), pct(scalar, tot), pct(full, tot),
		m.value("chipletd_eval_spatial_calibrations_total"), m.value("chipletd_eval_spatial_cal_worst_err_c"))

	fmt.Fprintf(&b, "export    exported %.0f   dropped %.0f   sampled-out %.0f   errors %.0f   queued %.0f\n",
		m.value("chipletd_otlp_exported_traces_total"), m.value("chipletd_otlp_dropped_traces_total"),
		m.value("chipletd_otlp_sampled_out_traces_total"), m.value("chipletd_otlp_export_errors_total"),
		m.value("chipletd_otlp_queue_depth"))

	fmt.Fprintf(&b, "runtime   goroutines %.0f   heap %s   gc cycles %.0f\n",
		m.value("chipletd_go_goroutines"), bytesHuman(m.value("chipletd_go_heap_bytes")),
		m.value("chipletd_go_gc_cycles_total"))

	if h := m.histogram("chipletd_solve_latency_seconds"); h != nil {
		fmt.Fprintf(&b, "latency   p50 %s   p90 %s   p99 %s   (n=%.0f)\n",
			secsHuman(h.quantile(0.50)), secsHuman(h.quantile(0.90)), secsHuman(h.quantile(0.99)), h.count)
	}

	b.WriteString("\nrecent solves\n")
	b.WriteString(renderSolves(ctx, client, base))
	b.WriteString("\nrecent searches\n")
	b.WriteString(renderSearches(ctx, client, base))
	return b.String(), nil
}

func shortRev(rev string) string {
	if i := strings.IndexByte(rev, '-'); i > 12 { // keep "-dirty" suffix readable
		return rev[:12] + rev[i:]
	}
	if len(rev) > 12 {
		return rev[:12]
	}
	return rev
}

func pct(part, whole float64) string {
	if whole <= 0 {
		return "–"
	}
	return fmt.Sprintf("%.0f%%", 100*part/whole)
}

func human(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func bytesHuman(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

func secsHuman(s float64) string {
	switch {
	case s < 0:
		return "–"
	case s < 1:
		return fmt.Sprintf("%.0fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

// sortedKeys returns the map keys sorted, for deterministic rendering.
func sortedKeys[M map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
