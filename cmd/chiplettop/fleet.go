package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// Fleet view: -targets host1,host2 polls several chipletd nodes and renders
// one merged table — per-node liveness, load, memo effectiveness, and the
// sharding layer's ownership/peer-fetch traffic — reusing the same
// Prometheus text parser as the single-node view. Nodes are polled
// sequentially per frame (the fleet sizes this tool is for are single
// digits; a frame stays well under the refresh interval).

// shardDebug mirrors chipletd's GET /debug/shard payload.
type shardDebug struct {
	Enabled bool     `json:"enabled"`
	Self    string   `json:"self"`
	Nodes   []string `json:"nodes"`
	Engines []struct {
		FingerprintHash string `json:"fingerprint_hash"`
		Owner           string `json:"owner"`
		Owned           bool   `json:"owned"`
		MemoEntries     int    `json:"memo_entries"`
	} `json:"engines"`
}

// nodeRow is one node's slice of the fleet table.
type nodeRow struct {
	target string
	err    error

	inflight   float64
	busy       float64
	memoHitPct string
	peerHits   float64 // memo misses answered by a peer fetch
	memoServed float64 // GET /v1/memo hits served to peers
	engines    int
	owned      int
	shardOn    bool
}

// fleetTargets parses the -targets flag into base URLs.
func fleetTargets(raw string) []string {
	var out []string
	for _, t := range strings.Split(raw, ",") {
		if t = strings.TrimSpace(t); t == "" {
			continue
		}
		if !strings.Contains(t, "://") {
			t = "http://" + t
		}
		out = append(out, t)
	}
	return out
}

// pollNode collects one node's row from /metrics and /debug/shard.
func pollNode(ctx context.Context, client *http.Client, target string) nodeRow {
	row := nodeRow{target: target}
	raw, err := fetch(ctx, client, target, "/metrics")
	if err != nil {
		row.err = err
		return row
	}
	m := parseProm(string(raw))
	row.inflight = m.sumPrefix("chipletd_inflight_requests")
	row.busy = m.value("chipletd_busy_workers")
	hits := m.value("chipletd_eval_memo_hits_total")
	misses := m.value("chipletd_eval_memo_misses_total")
	row.memoHitPct = pct(hits, hits+misses)
	row.peerHits = m.value("chipletd_eval_peer_hits_total")
	row.memoServed = m.sumMatching("chipletd_memo_requests_total", func(l map[string]string) bool {
		return l["result"] == "hit"
	})
	// Ownership comes from /debug/shard; a node without the endpoint (or
	// with sharding off) still renders its metrics row.
	if body, err := fetch(ctx, client, target, "/debug/shard"); err == nil {
		var sd shardDebug
		if json.Unmarshal(body, &sd) == nil {
			row.shardOn = sd.Enabled
			row.engines = len(sd.Engines)
			for _, e := range sd.Engines {
				if e.Owned {
					row.owned++
				}
			}
		}
	}
	return row
}

// renderFleet assembles the merged multi-node frame.
func renderFleet(ctx context.Context, client *http.Client, targets []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "chipletd fleet   %d nodes\n\n", len(targets))
	fmt.Fprintf(&b, "%-28s %-5s %8s %6s %9s %10s %11s %13s\n",
		"node", "up", "inflight", "busy", "memo-hit", "peer-hits", "memo-served", "engines-owned")
	for _, t := range targets {
		row := pollNode(ctx, client, t)
		if row.err != nil {
			fmt.Fprintf(&b, "%-28s %-5s %s\n", trimScheme(t), "DOWN", row.err)
			continue
		}
		owned := fmt.Sprintf("%d/%d", row.owned, row.engines)
		if !row.shardOn {
			owned = fmt.Sprintf("%d (no ring)", row.engines)
		}
		fmt.Fprintf(&b, "%-28s %-5s %8.0f %6.0f %9s %10.0f %11.0f %13s\n",
			trimScheme(t), "ok", row.inflight, row.busy, row.memoHitPct,
			row.peerHits, row.memoServed, owned)
	}
	return b.String()
}

func trimScheme(u string) string {
	u = strings.TrimPrefix(u, "http://")
	return strings.TrimPrefix(u, "https://")
}
