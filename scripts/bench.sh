#!/usr/bin/env sh
# bench.sh - record solver benchmark results as a numbered JSON artifact.
#
# Usage: scripts/bench.sh
#   BENCHTIME=3x scripts/bench.sh   # quicker smoke-quality numbers
#
# Runs the thermal solve benchmarks (the root harness plus the kernel
# thread variants in internal/thermal) and the org multi-start search
# benchmarks (serial vs restart workers, warm shared-engine search, memoized
# engine lookup) and writes BENCH_<n>.json at the repository root, where n
# counts the BENCH_*.json artifacts already present — so successive runs
# line up as a series (BENCH_0.json is the pre-CSR seed baseline). Each
# record carries ns/op (plus B/op, allocs/op, and memo-hit-ratio where the
# benchmark emits them); the summary derives speedup_vs_serial for the
# kernel thread variants, search_speedup_vs_serial for the restart-worker
# variants, warm_shared_engine_speedup for a search over an already-warm
# process-wide engine (the chipletd steady state), and — from the fidelity
# benchmarks — full_cg_solve_reduction (full-fidelity CG solves divided by
# spatial-tier CG solves, DoE calibration sims included), the spatial-tier
# hit ratio, and the warm per-prediction latency of the spatial model. The
# telemetry benchmarks add export_overhead_ratio (traced+exporting solve over
# the untraced baseline) and audit_overhead_ratio (audited greedy search over
# the unaudited one). The preconditioner benchmarks add cold_solve_speedup
# (IC(0) cold 64x64 solve over the multigrid one), warm_neighbor_solve_ns
# (multigrid solve seeded from a same-operator neighbor field),
# cg_iters_{ic0,mg} (the machine-independent halves of those claims), and
# two end-to-end search ratios at a 32x32 grid (at the multigrid
# crossover): mg_warm_search_speedup with the fidelity ladder on and
# mg_warm_fullfid_search_speedup with every evaluation simulating (the
# paper's original workflow). Expect the end-to-end ratios near 1.0 at this
# reduced scale — the surrogate ladder already removes most repeated sims,
# so the cold-solve win shows up per solve, not per search; see
# EXPERIMENTS.md. The scale-out benchmarks add batch_vs_sequential_speedup
# (64 sequential warm HTTP solves over one warm /v1/batch sweep of the same
# 64 candidates), coalesce_hit_ratio (computations the sweep's canonical-form
# coalescing removed on the cold pass), and peer_fetch_hit_ns (one memoized
# simulation pulled over GET /v1/memo, the sharded alternative to
# re-simulating).
#
# Every record is annotated with gomaxprocs and num_cpu so a series mixing
# host sizes stays interpretable; on boxes with fewer than 4 CPUs the
# workers-8 search benchmark is skipped (it can only measure oversubscription
# noise there).
set -eu

cd "$(dirname "$0")/.."

n=0
for f in BENCH_*.json; do
    [ -e "$f" ] && n=$((n + 1))
done
out="BENCH_${n}.json"

ncpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
gmp="${GOMAXPROCS:-$ncpu}"

search_bench='BenchmarkMultiStartSearch|BenchmarkEngineLookupHit'
if [ "$ncpu" -lt 4 ]; then
    echo "bench.sh: $ncpu CPU(s) online; skipping the workers-8 search benchmark"
    search_bench='BenchmarkMultiStartSearchSerial$|BenchmarkMultiStartSearchWorkers[24]$|BenchmarkMultiStartSearchWarmShared$|BenchmarkMultiStartSearchSerial32$|BenchmarkMultiStartSearchMGWarm32$|BenchmarkEngineLookupHit'
fi

bench_out=$(
    go test -run '^$' -bench 'BenchmarkThermalSolve64$|BenchmarkThermalSolve64MG$|BenchmarkThermalSolveWarmNeighbor64MG$|BenchmarkLeakageCoupledSim$|BenchmarkTransientStep$' \
        -benchmem -benchtime "${BENCHTIME:-1s}" . &&
        go test -run '^$' -bench 'BenchmarkSolveWarmGrid64' \
            -benchmem -benchtime "${BENCHTIME:-1s}" ./internal/thermal &&
        go test -run '^$' -bench "$search_bench" \
            -benchtime "${SEARCHBENCHTIME:-3x}" ./internal/org &&
        go test -run '^$' -bench 'BenchmarkSearchFullFidelity|BenchmarkSearchSpatialTier|BenchmarkSpatialPredict' \
            -benchtime "${SEARCHBENCHTIME:-3x}" ./internal/org &&
        go test -run '^$' -bench 'BenchmarkSolveUntraced$|BenchmarkSolveTracedExporting$|BenchmarkGreedyPlacementSearch$|BenchmarkGreedyPlacementSearchAudited$' \
            -benchtime "${SEARCHBENCHTIME:-3x}" . &&
        go test -run '^$' -bench 'BenchmarkChipletdBatchSweep64Warm$|BenchmarkChipletdSequentialSweep64Warm$|BenchmarkChipletdPeerFetchHit$' \
            -benchtime "${BATCHBENCHTIME:-20x}" .
)
echo "$bench_out"

echo "$bench_out" | awk -v out="$out" -v gmp="$gmp" -v ncpu="$ncpu" '
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        for (i = 3; i <= NF; i++) {
            if ($i == "ns/op") ns[name] = $(i - 1)
            else if ($i == "B/op") by[name] = $(i - 1)
            else if ($i == "allocs/op") al[name] = $(i - 1)
            else if ($i == "memo-hit-ratio") hr[name] = $(i - 1)
            else if ($i == "full-sims/op") fs[name] = $(i - 1)
            else if ($i == "spatial-hit-ratio") sh[name] = $(i - 1)
            else if ($i == "cg-iters/op") cg[name] = $(i - 1)
            else if ($i == "warm-seeds/op") ws[name] = $(i - 1)
            else if ($i == "coalesce-hit-ratio") ch[name] = $(i - 1)
        }
        if (!(name in seen)) { order[++cnt] = name; seen[name] = 1 }
    }
    END {
        if (!cnt) { print "bench.sh: no benchmark output" > "/dev/stderr"; exit 1 }
        printf "{\n  \"gomaxprocs\": %d,\n  \"num_cpu\": %d,\n  \"benchmarks\": [\n", gmp, ncpu > out
        for (i = 1; i <= cnt; i++) {
            name = order[i]
            printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns[name] > out
            if (name in by) printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", by[name], al[name] > out
            if (name in hr) printf ", \"memo_hit_ratio\": %s", hr[name] > out
            if (name in fs) printf ", \"full_sims_per_op\": %s", fs[name] > out
            if (name in sh) printf ", \"spatial_hit_ratio\": %s", sh[name] > out
            if (name in cg) printf ", \"cg_iters_per_op\": %s", cg[name] > out
            if (name in ws) printf ", \"warm_seeds_per_op\": %s", ws[name] > out
            if (name in ch) printf ", \"coalesce_hit_ratio\": %s", ch[name] > out
            printf "}%s\n", (i < cnt ? "," : "") > out
        }
        printf "  ],\n  \"speedup_vs_serial\": {" > out
        serial = ns["BenchmarkSolveWarmGrid64Serial"]
        first = 1
        for (i = 1; i <= cnt; i++) {
            name = order[i]
            if (name ~ /^BenchmarkSolveWarmGrid64Threads/ && serial > 0) {
                printf "%s\"%s\": %.3f", (first ? "" : ", "), name, serial / ns[name] > out
                first = 0
            }
        }
        printf "},\n" > out
        printf "  \"search_speedup_vs_serial\": {" > out
        sserial = ns["BenchmarkMultiStartSearchSerial"]
        first = 1
        for (i = 1; i <= cnt; i++) {
            name = order[i]
            if (name ~ /^BenchmarkMultiStartSearchWorkers/ && sserial > 0) {
                printf "%s\"%s\": %.3f", (first ? "" : ", "), name, sserial / ns[name] > out
                first = 0
            }
        }
        printf "}" > out
        warm = ns["BenchmarkMultiStartSearchWarmShared"]
        if (sserial > 0 && warm > 0)
            printf ",\n  \"warm_shared_engine_speedup\": %.1f", sserial / warm > out
        if ("BenchmarkMultiStartSearchSerial" in hr)
            printf ",\n  \"engine_memo_hit_ratio\": %s", hr["BenchmarkMultiStartSearchSerial"] > out
        if ("BenchmarkEngineLookupHit" in ns)
            printf ",\n  \"engine_lookup_ns\": %s", ns["BenchmarkEngineLookupHit"] > out
        ffull = fs["BenchmarkSearchFullFidelity"]
        fsp = fs["BenchmarkSearchSpatialTier"]
        if (ffull > 0 && fsp > 0) {
            printf ",\n  \"full_cg_solve_reduction\": %.2f", ffull / fsp > out
            printf ",\n  \"spatial_search_speedup\": %.2f", ns["BenchmarkSearchFullFidelity"] / ns["BenchmarkSearchSpatialTier"] > out
        }
        if ("BenchmarkSearchSpatialTier" in sh)
            printf ",\n  \"spatial_hit_ratio\": %s", sh["BenchmarkSearchSpatialTier"] > out
        if ("BenchmarkSpatialPredict" in ns)
            printf ",\n  \"spatial_predict_ns\": %s", ns["BenchmarkSpatialPredict"] > out
        unt = ns["BenchmarkSolveUntraced"]
        xp = ns["BenchmarkSolveTracedExporting"]
        if (unt > 0 && xp > 0)
            printf ",\n  \"export_overhead_ratio\": %.3f", xp / unt > out
        plain = ns["BenchmarkGreedyPlacementSearch"]
        aud = ns["BenchmarkGreedyPlacementSearchAudited"]
        if (plain > 0 && aud > 0)
            printf ",\n  \"audit_overhead_ratio\": %.3f", aud / plain > out
        ic0 = ns["BenchmarkThermalSolve64"]
        mg = ns["BenchmarkThermalSolve64MG"]
        if (ic0 > 0 && mg > 0)
            printf ",\n  \"cold_solve_speedup\": %.2f", ic0 / mg > out
        if ("BenchmarkThermalSolveWarmNeighbor64MG" in ns)
            printf ",\n  \"warm_neighbor_solve_ns\": %s", ns["BenchmarkThermalSolveWarmNeighbor64MG"] > out
        if ("BenchmarkThermalSolve64" in cg)
            printf ",\n  \"cg_iters_ic0\": %s", cg["BenchmarkThermalSolve64"] > out
        if ("BenchmarkThermalSolve64MG" in cg)
            printf ",\n  \"cg_iters_mg\": %s", cg["BenchmarkThermalSolve64MG"] > out
        s32 = ns["BenchmarkMultiStartSearchSerial32"]
        mgwarm = ns["BenchmarkMultiStartSearchMGWarm32"]
        if (s32 > 0 && mgwarm > 0)
            printf ",\n  \"mg_warm_search_speedup\": %.2f", s32 / mgwarm > out
        ff32 = ns["BenchmarkSearchFullFidelity32"]
        ffmg = ns["BenchmarkSearchFullFidelity32MGWarm"]
        if (ff32 > 0 && ffmg > 0)
            printf ",\n  \"mg_warm_fullfid_search_speedup\": %.2f", ff32 / ffmg > out
        bat = ns["BenchmarkChipletdBatchSweep64Warm"]
        seq = ns["BenchmarkChipletdSequentialSweep64Warm"]
        if (bat > 0 && seq > 0)
            printf ",\n  \"batch_vs_sequential_speedup\": %.2f", seq / bat > out
        if ("BenchmarkChipletdBatchSweep64Warm" in ch)
            printf ",\n  \"coalesce_hit_ratio\": %s", ch["BenchmarkChipletdBatchSweep64Warm"] > out
        if ("BenchmarkChipletdPeerFetchHit" in ns)
            printf ",\n  \"peer_fetch_hit_ns\": %s", ns["BenchmarkChipletdPeerFetchHit"] > out
        printf "\n}\n" > out
    }'

echo "bench.sh: wrote $out"
