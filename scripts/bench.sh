#!/usr/bin/env sh
# bench.sh - record solver benchmark results as a numbered JSON artifact.
#
# Usage: scripts/bench.sh
#   BENCHTIME=3x scripts/bench.sh   # quicker smoke-quality numbers
#
# Runs the thermal solve benchmarks (the root harness plus the kernel
# thread variants in internal/thermal) with -benchmem and writes
# BENCH_<n>.json at the repository root, where n counts the BENCH_*.json
# artifacts already present — so successive runs line up as a series
# (BENCH_0.json is the pre-CSR seed baseline). Each record carries ns/op,
# B/op, and allocs/op; the summary derives speedup_vs_serial for every
# kernel thread variant against BenchmarkSolveWarmGrid64Serial.
set -eu

cd "$(dirname "$0")/.."

n=0
for f in BENCH_*.json; do
    [ -e "$f" ] && n=$((n + 1))
done
out="BENCH_${n}.json"

bench_out=$(
    go test -run '^$' -bench 'BenchmarkThermalSolve64$|BenchmarkLeakageCoupledSim$|BenchmarkTransientStep$' \
        -benchmem -benchtime "${BENCHTIME:-1s}" . &&
        go test -run '^$' -bench 'BenchmarkSolveWarmGrid64' \
            -benchmem -benchtime "${BENCHTIME:-1s}" ./internal/thermal
)
echo "$bench_out"

echo "$bench_out" | awk -v out="$out" '
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns[name] = $3
        by[name] = $5
        al[name] = $7
        if (!(name in seen)) { order[++cnt] = name; seen[name] = 1 }
    }
    END {
        if (!cnt) { print "bench.sh: no benchmark output" > "/dev/stderr"; exit 1 }
        printf "{\n  \"benchmarks\": [\n" > out
        for (i = 1; i <= cnt; i++) {
            name = order[i]
            printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
                name, ns[name], by[name], al[name], (i < cnt ? "," : "") > out
        }
        printf "  ],\n  \"speedup_vs_serial\": {" > out
        serial = ns["BenchmarkSolveWarmGrid64Serial"]
        first = 1
        for (i = 1; i <= cnt; i++) {
            name = order[i]
            if (name ~ /^BenchmarkSolveWarmGrid64Threads/ && serial > 0) {
                printf "%s\"%s\": %.3f", (first ? "" : ", "), name, serial / ns[name] > out
                first = 0
            }
        }
        printf "}\n}\n" > out
    }'

echo "bench.sh: wrote $out"
