#!/usr/bin/env sh
# bench.sh - record solver benchmark results as a numbered JSON artifact.
#
# Usage: scripts/bench.sh
#   BENCHTIME=3x scripts/bench.sh   # quicker smoke-quality numbers
#
# Runs the thermal solve benchmarks (the root harness plus the kernel
# thread variants in internal/thermal) and the org multi-start search
# benchmarks (serial vs restart workers, warm shared-engine search, memoized
# engine lookup) and writes BENCH_<n>.json at the repository root, where n
# counts the BENCH_*.json artifacts already present — so successive runs
# line up as a series (BENCH_0.json is the pre-CSR seed baseline). Each
# record carries ns/op (plus B/op, allocs/op, and memo-hit-ratio where the
# benchmark emits them); the summary derives speedup_vs_serial for the
# kernel thread variants, search_speedup_vs_serial for the restart-worker
# variants, warm_shared_engine_speedup for a search over an already-warm
# process-wide engine (the chipletd steady state), and — from the fidelity
# benchmarks — full_cg_solve_reduction (full-fidelity CG solves divided by
# spatial-tier CG solves, DoE calibration sims included), the spatial-tier
# hit ratio, and the warm per-prediction latency of the spatial model. The
# telemetry benchmarks add export_overhead_ratio (traced+exporting solve over
# the untraced baseline) and audit_overhead_ratio (audited greedy search over
# the unaudited one).
set -eu

cd "$(dirname "$0")/.."

n=0
for f in BENCH_*.json; do
    [ -e "$f" ] && n=$((n + 1))
done
out="BENCH_${n}.json"

bench_out=$(
    go test -run '^$' -bench 'BenchmarkThermalSolve64$|BenchmarkLeakageCoupledSim$|BenchmarkTransientStep$' \
        -benchmem -benchtime "${BENCHTIME:-1s}" . &&
        go test -run '^$' -bench 'BenchmarkSolveWarmGrid64' \
            -benchmem -benchtime "${BENCHTIME:-1s}" ./internal/thermal &&
        go test -run '^$' -bench 'BenchmarkMultiStartSearch|BenchmarkEngineLookupHit' \
            -benchtime "${SEARCHBENCHTIME:-3x}" ./internal/org &&
        go test -run '^$' -bench 'BenchmarkSearchFullFidelity|BenchmarkSearchSpatialTier|BenchmarkSpatialPredict' \
            -benchtime "${SEARCHBENCHTIME:-3x}" ./internal/org &&
        go test -run '^$' -bench 'BenchmarkSolveUntraced$|BenchmarkSolveTracedExporting$|BenchmarkGreedyPlacementSearch$|BenchmarkGreedyPlacementSearchAudited$' \
            -benchtime "${SEARCHBENCHTIME:-3x}" .
)
echo "$bench_out"

echo "$bench_out" | awk -v out="$out" '
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        for (i = 3; i <= NF; i++) {
            if ($i == "ns/op") ns[name] = $(i - 1)
            else if ($i == "B/op") by[name] = $(i - 1)
            else if ($i == "allocs/op") al[name] = $(i - 1)
            else if ($i == "memo-hit-ratio") hr[name] = $(i - 1)
            else if ($i == "full-sims/op") fs[name] = $(i - 1)
            else if ($i == "spatial-hit-ratio") sh[name] = $(i - 1)
        }
        if (!(name in seen)) { order[++cnt] = name; seen[name] = 1 }
    }
    END {
        if (!cnt) { print "bench.sh: no benchmark output" > "/dev/stderr"; exit 1 }
        printf "{\n  \"benchmarks\": [\n" > out
        for (i = 1; i <= cnt; i++) {
            name = order[i]
            printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns[name] > out
            if (name in by) printf ", \"bytes_per_op\": %s, \"allocs_per_op\": %s", by[name], al[name] > out
            if (name in hr) printf ", \"memo_hit_ratio\": %s", hr[name] > out
            if (name in fs) printf ", \"full_sims_per_op\": %s", fs[name] > out
            if (name in sh) printf ", \"spatial_hit_ratio\": %s", sh[name] > out
            printf "}%s\n", (i < cnt ? "," : "") > out
        }
        printf "  ],\n  \"speedup_vs_serial\": {" > out
        serial = ns["BenchmarkSolveWarmGrid64Serial"]
        first = 1
        for (i = 1; i <= cnt; i++) {
            name = order[i]
            if (name ~ /^BenchmarkSolveWarmGrid64Threads/ && serial > 0) {
                printf "%s\"%s\": %.3f", (first ? "" : ", "), name, serial / ns[name] > out
                first = 0
            }
        }
        printf "},\n" > out
        printf "  \"search_speedup_vs_serial\": {" > out
        sserial = ns["BenchmarkMultiStartSearchSerial"]
        first = 1
        for (i = 1; i <= cnt; i++) {
            name = order[i]
            if (name ~ /^BenchmarkMultiStartSearchWorkers/ && sserial > 0) {
                printf "%s\"%s\": %.3f", (first ? "" : ", "), name, sserial / ns[name] > out
                first = 0
            }
        }
        printf "}" > out
        warm = ns["BenchmarkMultiStartSearchWarmShared"]
        if (sserial > 0 && warm > 0)
            printf ",\n  \"warm_shared_engine_speedup\": %.1f", sserial / warm > out
        if ("BenchmarkMultiStartSearchSerial" in hr)
            printf ",\n  \"engine_memo_hit_ratio\": %s", hr["BenchmarkMultiStartSearchSerial"] > out
        if ("BenchmarkEngineLookupHit" in ns)
            printf ",\n  \"engine_lookup_ns\": %s", ns["BenchmarkEngineLookupHit"] > out
        ffull = fs["BenchmarkSearchFullFidelity"]
        fsp = fs["BenchmarkSearchSpatialTier"]
        if (ffull > 0 && fsp > 0) {
            printf ",\n  \"full_cg_solve_reduction\": %.2f", ffull / fsp > out
            printf ",\n  \"spatial_search_speedup\": %.2f", ns["BenchmarkSearchFullFidelity"] / ns["BenchmarkSearchSpatialTier"] > out
        }
        if ("BenchmarkSearchSpatialTier" in sh)
            printf ",\n  \"spatial_hit_ratio\": %s", sh["BenchmarkSearchSpatialTier"] > out
        if ("BenchmarkSpatialPredict" in ns)
            printf ",\n  \"spatial_predict_ns\": %s", ns["BenchmarkSpatialPredict"] > out
        unt = ns["BenchmarkSolveUntraced"]
        xp = ns["BenchmarkSolveTracedExporting"]
        if (unt > 0 && xp > 0)
            printf ",\n  \"export_overhead_ratio\": %.3f", xp / unt > out
        plain = ns["BenchmarkGreedyPlacementSearch"]
        aud = ns["BenchmarkGreedyPlacementSearchAudited"]
        if (plain > 0 && aud > 0)
            printf ",\n  \"audit_overhead_ratio\": %.3f", aud / plain > out
        printf "\n}\n" > out
    }'

echo "bench.sh: wrote $out"
