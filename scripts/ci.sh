#!/usr/bin/env sh
# ci.sh - the repository's full verification gate.
#
# Usage: scripts/ci.sh [-short]
#   -short   pass -short to the race run (skips the slowest tests)
#
# Steps: gofmt (fails on any unformatted file), go vet, go build,
# the physics verification fast gate (chipletverify -quick: analytic
# oracles, randomized invariants, mutation smoke — see internal/verify),
# the spatial-surrogate drift gate (chipletverify -run drift: calibration
# bound re-measured at fresh non-DoE points, golden-corpus winner parity),
# go test -race with a coverage profile, the coverage gate (total must not
# fall below the recorded baseline; skipped under -short because -short
# skips tests), the fuzz smoke (a few seconds per target; skipped under
# -short), the chipletd daemon smoke test (real binary over HTTP:
# traced solve, /healthz build info, /metrics histograms, /debug/solves,
# clean SIGTERM drain), the two-node sharded smoke test (mutual -peers
# daemons plus a standalone reference: bit-identical solve and search
# answers, at least one memo peer-fetch hit), a smoke run of the chipletd
# cache benchmarks,
# the tracer-overhead guard (BenchmarkSolveTraced vs BenchmarkSolveUntraced),
# the export-overhead guard (BenchmarkSolveTracedExporting vs untraced, plus
# the disabled-exporter zero-allocation test),
# the thermal kernel-correctness gate (serial vs parallel bit-equality and
# the concurrent-solve stress, under -race), the org parallel-search
# determinism gate (parallel multi-start ≡ serial bit-for-bit over a shared
# engine, under -race), the cost Monte Carlo determinism gate (same seed →
# bit-identical yield quantiles at any worker count, under -race), the
# warm-solve allocation budget (zero large
# allocations per steady-state solve), and the multigrid CG-iteration gate
# (the 64x64 production solve must stay within its committed iteration
# budget — the machine-independent form of the cold-solve speedup claim).
#
# The full verification tier (paper-scale grids, figure goldens) is not run
# here; run it explicitly with `go test ./internal/verify -long` or
# `go run ./cmd/chipletverify -long`.
set -eu

cd "$(dirname "$0")/.."

short=""
if [ "${1:-}" = "-short" ]; then
    short="-short"
fi

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> physics verification fast gate (chipletverify -quick)"
# Analytic oracles, randomized physics invariants, and the mutation smoke
# test (a seeded 1% conductivity perturbation must be caught twice over).
# Runs in well under a second; the std tier runs inside the -race suite
# below, and the long tier is an explicit developer command.
go run ./cmd/chipletverify -quick

echo "==> spatial-surrogate drift gate (chipletverify -run drift)"
# The spatial fidelity tier decides evaluations on its calibration's
# recorded worst-case error. Re-measure that bound at fresh non-DoE points
# and pin winner parity on the golden-corpus search, so a physics or fit
# change cannot silently leave the tier escalating on stale error bars.
go run ./cmd/chipletverify -run drift

echo "==> go test -race -coverprofile $short ./..."
go test -race -coverprofile=coverage.out $short ./...

if [ -z "$short" ]; then
    echo "==> coverage gate"
    # Total statement coverage must not fall below the recorded baseline
    # (80.4% measured 2026-08 after the TCO elaborator landed; the floor at
    # 80.0% leaves headroom for new command mains, which are smoke-tested
    # rather than unit-tested). Per-package numbers are printed by the test
    # run above.
    go tool cover -func=coverage.out | awk '
        END {
            sub(/%$/, "", $NF); total = $NF + 0
            if (total < 80.0) {
                printf "coverage gate: total %.1f%% below the 80.0%% baseline\n", total > "/dev/stderr"
                exit 1
            }
            printf "coverage gate: total %.1f%% >= 80.0%% baseline\n", total
        }'

    echo "==> fuzz smoke (3s per target)"
    # Each parser/decoder fuzz target gets a short randomized shake. Real
    # fuzzing campaigns run longer out-of-band; this catches panics
    # introduced by the current change. (Skipped under -short.)
    go test -fuzz 'FuzzReadFLP' -fuzztime 3s -run '^$' ./internal/hotspotio
    go test -fuzz 'FuzzReadPTrace' -fuzztime 3s -run '^$' ./internal/hotspotio
    go test -fuzz 'FuzzLoad$' -fuzztime 3s -run '^$' ./internal/config
    go test -fuzz 'FuzzLoadServer' -fuzztime 3s -run '^$' ./internal/config
    go test -fuzz 'FuzzSolveRequestDecode' -fuzztime 3s -run '^$' ./internal/serve
    go test -fuzz 'FuzzSearchRequestDecode' -fuzztime 3s -run '^$' ./internal/serve
    go test -fuzz 'FuzzTCORequestDecode' -fuzztime 3s -run '^$' ./internal/serve
fi

echo "==> chipletd daemon smoke (build binary, drive endpoints, SIGTERM drain)"
# Redundant under a full (non-short) test run above, but cheap, and it keeps
# the daemon check explicit when CI runs with -short.
go test -run 'TestDaemonSmoke' -count 1 ./cmd/chipletd

echo "==> chipletd two-node sharded smoke (winner parity + peer-fetch hit)"
# Two real daemons as mutual -peers plus a standalone reference: solve and
# search answers must agree bit-for-bit across all three, and the non-owner
# must report >= 1 chipletd_eval_peer_hits_total (it answered its memo miss
# from the owner instead of re-simulating).
go test -run 'TestShardedSmoke' -count 1 ./cmd/chipletd

echo "==> chipletd cache benchmarks (smoke)"
go test -run '^$' -bench 'BenchmarkChipletdSolve' -benchtime 3x .

echo "==> tracer overhead guard"
# The serving path traces every request, so span creation must stay nearly
# free. Compare the best-of-3 traced vs untraced solve; fail above +5%
# (the acceptance bound; the per-span cost is a mutex'd append, and at
# best-of-3 the residual benchmark noise sits well inside the margin).
bench_out=$(go test -run '^$' -bench 'BenchmarkSolve(Traced|Untraced)$' -benchtime 3x -count 3 .)
echo "$bench_out"
echo "$bench_out" | awk '
    /^BenchmarkSolveUntraced/ { if (!u || $3 < u) u = $3 }
    /^BenchmarkSolveTraced/   { if (!t || $3 < t) t = $3 }
    END {
        if (!u || !t) { print "tracer guard: missing benchmark output" > "/dev/stderr"; exit 1 }
        ratio = t / u
        printf "tracer overhead: traced %.0f ns/op vs untraced %.0f ns/op (%.2fx)\n", t, u, ratio
        if (ratio > 1.05) { print "tracer guard: overhead above 5%" > "/dev/stderr"; exit 1 }
    }'

echo "==> export overhead guard"
# The OTLP exporter must keep export off the solve path: enqueue is a
# bounded, drop-oldest append behind a mutex and all POSTs happen on the
# background worker. Compare the best-of-3 traced+exporting solve against
# the untraced baseline; fail above +5% (same bound as the tracer guard).
bench_out=$(go test -run '^$' -bench 'BenchmarkSolve(TracedExporting|Untraced)$' -benchtime 3x -count 3 .)
echo "$bench_out"
echo "$bench_out" | awk '
    /^BenchmarkSolveUntraced/        { if (!u || $3 < u) u = $3 }
    /^BenchmarkSolveTracedExporting/ { if (!t || $3 < t) t = $3 }
    END {
        if (!u || !t) { print "export guard: missing benchmark output" > "/dev/stderr"; exit 1 }
        ratio = t / u
        printf "export overhead: exporting %.0f ns/op vs untraced %.0f ns/op (%.2fx)\n", t, u, ratio
        if (ratio > 1.05) { print "export guard: overhead above 5%" > "/dev/stderr"; exit 1 }
    }'

echo "==> disabled-exporter zero-allocation gate"
# With no -otlp-endpoint the exporter is a nil receiver; the per-request
# cost on the serving path must be exactly zero allocations.
go test -count 1 -run 'TestDisabledExporterZeroAlloc' ./internal/obs/export

echo "==> thermal kernel correctness (serial vs parallel bit-equality, -race)"
# Redundant under the full -race run above, but explicit and cheap: the
# determinism contract (kernel.go) is what keeps chipletd's content-
# addressed cache honest, so it gets its own named gate.
go test -race -count 1 \
    -run 'TestKernelSerialParallelEquality|TestTransientSerialParallelEquality|TestConcurrentSolves' \
    ./internal/thermal

echo "==> org parallel-search determinism (golden parallel≡serial, -race)"
# The parallel multi-start search promises bit-identical results to the
# serial path at any worker count, with many goroutines hammering one shared
# engine. That contract is what lets chipletd share a process-wide memo and
# content-address searches independently of their worker knobs, so it gets
# its own named gate under -race.
go test -race -count 1 \
    -run 'TestParallelRestartsMatchSerial|TestParallelFindPlacementMatchesSerial|TestSharedEngineSearchersMatchPrivate|TestEngineConcurrentStress' \
    ./internal/org

echo "==> org package under -race"
# Cache-friendly form (no -count): reuses the full -race run's cached result
# when nothing changed, and re-runs the whole package otherwise.
go test -race ./internal/org/...

echo "==> cost Monte Carlo determinism gate (-race)"
# The yield/cost quantile simulation promises the same seed produces
# bit-identical quantiles at any worker count — the property that keeps TCO
# sweeps memoizable and this suite deflaked. Pin it by name under -race so a
# scheduling-dependent reduction cannot slip in.
go test -race -count 1 -run 'TestYieldQuantilesDeterministic' ./internal/cost

echo "==> thermal warm-solve allocation budget"
# Steady-state serving must not allocate vectors: a warm SolveWarm is
# bounded at a few objects per op (Result header + pool boxing).
go test -count 1 -run 'TestSolveWarmSteadyStateAllocBudget' ./internal/thermal

echo "==> multigrid CG-iteration gate"
# The machine-independent half of the cold-solve speedup claim: the
# multigrid-preconditioned production 64x64 solve must converge within its
# committed iteration budget (IC(0) needs ~80 iterations on the same
# system). A wall-clock gate would flake with host load; the iteration
# count is deterministic, so a regression here is a real preconditioner
# regression.
go test -count 1 -run 'TestMGIterationBudget64' ./internal/thermal

echo "==> ci.sh: all green"
