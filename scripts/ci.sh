#!/usr/bin/env sh
# ci.sh - the repository's full verification gate.
#
# Usage: scripts/ci.sh [-short]
#   -short   pass -short to the race run (skips the slowest tests)
#
# Steps: gofmt (fails on any unformatted file), go vet, go build,
# go test -race, and a smoke run of the chipletd cache benchmarks.
set -eu

cd "$(dirname "$0")/.."

short=""
if [ "${1:-}" = "-short" ]; then
    short="-short"
fi

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race $short ./..."
go test -race $short ./...

echo "==> chipletd cache benchmarks (smoke)"
go test -run '^$' -bench 'BenchmarkChipletdSolve' -benchtime 3x .

echo "==> ci.sh: all green"
