#!/usr/bin/env sh
# ci.sh - the repository's full verification gate.
#
# Usage: scripts/ci.sh [-short]
#   -short   pass -short to the race run (skips the slowest tests)
#
# Steps: gofmt (fails on any unformatted file), go vet, go build,
# go test -race, the chipletd daemon smoke test (real binary over HTTP:
# traced solve, /healthz build info, /metrics histograms, /debug/solves,
# clean SIGTERM drain), a smoke run of the chipletd cache benchmarks,
# the tracer-overhead guard (BenchmarkSolveTraced vs BenchmarkSolveUntraced),
# the thermal kernel-correctness gate (serial vs parallel bit-equality and
# the concurrent-solve stress, under -race), the org parallel-search
# determinism gate (parallel multi-start ≡ serial bit-for-bit over a shared
# engine, under -race), and the warm-solve allocation budget (zero large
# allocations per steady-state solve).
set -eu

cd "$(dirname "$0")/.."

short=""
if [ "${1:-}" = "-short" ]; then
    short="-short"
fi

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race $short ./..."
go test -race $short ./...

echo "==> chipletd daemon smoke (build binary, drive endpoints, SIGTERM drain)"
# Redundant under a full (non-short) test run above, but cheap, and it keeps
# the daemon check explicit when CI runs with -short.
go test -run 'TestDaemonSmoke' -count 1 ./cmd/chipletd

echo "==> chipletd cache benchmarks (smoke)"
go test -run '^$' -bench 'BenchmarkChipletdSolve' -benchtime 3x .

echo "==> tracer overhead guard"
# The serving path traces every request, so span creation must stay nearly
# free. Compare the best-of-3 traced vs untraced solve; fail above +5%
# (the acceptance bound; the per-span cost is a mutex'd append, and at
# best-of-3 the residual benchmark noise sits well inside the margin).
bench_out=$(go test -run '^$' -bench 'BenchmarkSolve(Traced|Untraced)$' -benchtime 3x -count 3 .)
echo "$bench_out"
echo "$bench_out" | awk '
    /^BenchmarkSolveUntraced/ { if (!u || $3 < u) u = $3 }
    /^BenchmarkSolveTraced/   { if (!t || $3 < t) t = $3 }
    END {
        if (!u || !t) { print "tracer guard: missing benchmark output" > "/dev/stderr"; exit 1 }
        ratio = t / u
        printf "tracer overhead: traced %.0f ns/op vs untraced %.0f ns/op (%.2fx)\n", t, u, ratio
        if (ratio > 1.05) { print "tracer guard: overhead above 5%" > "/dev/stderr"; exit 1 }
    }'

echo "==> thermal kernel correctness (serial vs parallel bit-equality, -race)"
# Redundant under the full -race run above, but explicit and cheap: the
# determinism contract (kernel.go) is what keeps chipletd's content-
# addressed cache honest, so it gets its own named gate.
go test -race -count 1 \
    -run 'TestKernelSerialParallelEquality|TestTransientSerialParallelEquality|TestConcurrentSolves' \
    ./internal/thermal

echo "==> org parallel-search determinism (golden parallel≡serial, -race)"
# The parallel multi-start search promises bit-identical results to the
# serial path at any worker count, with many goroutines hammering one shared
# engine. That contract is what lets chipletd share a process-wide memo and
# content-address searches independently of their worker knobs, so it gets
# its own named gate under -race.
go test -race -count 1 \
    -run 'TestParallelRestartsMatchSerial|TestParallelFindPlacementMatchesSerial|TestSharedEngineSearchersMatchPrivate|TestEngineConcurrentStress' \
    ./internal/org

echo "==> org package under -race"
# Cache-friendly form (no -count): reuses the full -race run's cached result
# when nothing changed, and re-runs the whole package otherwise.
go test -race ./internal/org/...

echo "==> thermal warm-solve allocation budget"
# Steady-state serving must not allocate vectors: a warm SolveWarm is
# bounded at a few objects per op (Result header + pool boxing).
go test -count 1 -run 'TestSolveWarmSteadyStateAllocBudget' ./internal/thermal

echo "==> ci.sh: all green"
