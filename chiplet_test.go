package chiplet25d

import (
	"bytes"
	"strings"
	"testing"
)

func TestBenchmarkAccessors(t *testing.T) {
	if len(Benchmarks()) != 8 {
		t.Fatalf("expected 8 benchmarks")
	}
	if len(BenchmarkNames()) != 8 {
		t.Fatalf("expected 8 names")
	}
	if _, err := BenchmarkByName("cholesky"); err != nil {
		t.Fatal(err)
	}
	if _, err := BenchmarkByName("quake"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestPlacementConstructors(t *testing.T) {
	if !SingleChip().Is2D() {
		t.Errorf("SingleChip should be 2D")
	}
	pl, err := UniformGrid(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumChiplets() != 16 {
		t.Errorf("UniformGrid(4) chiplets = %d", pl.NumChiplets())
	}
	if _, err := PaperOrg(16, 1, 0.5, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := PaperOrg(9, 0, 0, 0); err == nil {
		t.Errorf("expected error for unsupported chiplet count")
	}
}

func TestOperatingPoint(t *testing.T) {
	op, err := OperatingPoint(533)
	if err != nil {
		t.Fatal(err)
	}
	if op.VoltageV != 0.71 {
		t.Errorf("533 MHz voltage = %v", op.VoltageV)
	}
	if _, err := OperatingPoint(999); err == nil {
		t.Errorf("expected error for off-table frequency")
	}
	if got := FrequenciesMHz(); len(got) != 5 || got[0] != 1000 {
		t.Errorf("frequencies = %v", got)
	}
	if got := ActiveCoreCounts(); len(got) != 8 || got[7] != 256 {
		t.Errorf("core counts = %v", got)
	}
}

func TestSystemCost(t *testing.T) {
	chip := SystemCost(SingleChip())
	if chip <= 0 {
		t.Fatalf("chip cost = %v", chip)
	}
	pl, err := PaperOrg(16, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if nc := NormalizedCost(pl); nc <= 0 || nc >= 1 {
		t.Errorf("minimal 16-chiplet normalized cost = %v, want in (0,1)", nc)
	}
}

func TestPeakTemperatureFacade(t *testing.T) {
	res, err := PeakTemperature(SingleChip(), "shock", 1000, 256, &SimOptions{GridN: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakC < 95 {
		t.Errorf("shock at full throttle should exceed 95 °C, got %.1f", res.PeakC)
	}
	if res.TotalPowerW < 400 {
		t.Errorf("total power %.1f suspiciously low", res.TotalPowerW)
	}
	if res.MeshPowerW <= 0 {
		t.Errorf("mesh power missing")
	}
	if _, err := PeakTemperature(SingleChip(), "shock", 777, 256, nil); err == nil {
		t.Errorf("expected error for bad frequency")
	}
	if _, err := PeakTemperature(SingleChip(), "nope", 1000, 256, nil); err == nil {
		t.Errorf("expected error for bad benchmark")
	}
}

func TestOptimizeFacade(t *testing.T) {
	res, err := Optimize("canneal", func(c *OptimizeConfig) {
		c.Thermal.Nx, c.Thermal.Ny = 16, 16
		c.InterposerStepMM = 2
		c.Starts = 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("canneal optimization should be feasible")
	}
	if res.Best.PeakC > 85 {
		t.Errorf("organization violates the default threshold")
	}
	if _, err := Optimize("nope", nil); err == nil {
		t.Errorf("expected error for unknown benchmark")
	}
}

func TestPlacementMapFacade(t *testing.T) {
	m, err := PlacementMap(SingleChip(), 128)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(m, "#") != 128 {
		t.Errorf("map shows %d active cores, want 128", strings.Count(m, "#"))
	}
}

func TestOptimizeMultiAppFacade(t *testing.T) {
	res, err := OptimizeMultiApp(map[string]float64{"canneal": 1, "lu.cont": 2}, func(c *OptimizeConfig) {
		c.Thermal.Nx, c.Thermal.Ny = 16, 16
		c.InterposerStepMM = 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || len(res.PerApp) != 2 {
		t.Fatalf("unexpected multi-app result: %+v", res)
	}
	if _, err := OptimizeMultiApp(nil, nil); err == nil {
		t.Errorf("expected error for empty mix")
	}
	if _, err := OptimizeMultiApp(map[string]float64{"doom": 1}, nil); err == nil {
		t.Errorf("expected error for unknown benchmark")
	}
}

func TestSprintTimeFacade(t *testing.T) {
	opts := &SimOptions{GridN: 16}
	single, err := SprintTime(SingleChip(), "shock", 85, 30, opts)
	if err != nil {
		t.Fatal(err)
	}
	if single.Sustained {
		t.Fatal("single chip cannot sustain shock at full throttle")
	}
	if single.SprintSeconds <= 0 || single.SprintSeconds > 30 {
		t.Fatalf("sprint time %.2f out of range", single.SprintSeconds)
	}
	pl, err := UniformGrid(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	spread, err := SprintTime(pl, "shock", 85, 30, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !spread.Sustained && spread.SprintSeconds <= single.SprintSeconds {
		t.Fatalf("spread organization should sprint longer: %.2f vs %.2f",
			spread.SprintSeconds, single.SprintSeconds)
	}
	if _, err := SprintTime(SingleChip(), "nope", 85, 10, nil); err == nil {
		t.Errorf("expected error for unknown benchmark")
	}
}

func TestParetoFrontFacade(t *testing.T) {
	front, err := ParetoFront("swaptions", func(c *OptimizeConfig) {
		c.Thermal.Nx, c.Thermal.Ny = 16, 16
		c.InterposerStepMM = 5
		c.Starts = 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	for i := 1; i < len(front); i++ {
		if front[i].CostUSD <= front[i-1].CostUSD || front[i].IPS <= front[i-1].IPS {
			t.Fatalf("front not strictly improving at %d", i)
		}
	}
	if _, err := ParetoFront("nope", nil); err == nil {
		t.Errorf("expected error for unknown benchmark")
	}
}

func TestSimResultHeatmapFacade(t *testing.T) {
	res, err := PeakTemperature(SingleChip(), "cholesky", 1000, 256, &SimOptions{GridN: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.HeatmapASCII() == "" {
		t.Errorf("missing heatmap")
	}
	var pgm bytes.Buffer
	if err := res.WriteHeatmapPGM(&pgm); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(pgm.String(), "P5\n") {
		t.Errorf("bad PGM output")
	}
	var csv bytes.Buffer
	if err := res.WriteFieldCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "x_mm,y_mm,temp_C") {
		t.Errorf("bad CSV output")
	}
	// Zero-value SimResult degrades gracefully.
	var empty SimResult
	if empty.HeatmapASCII() != "" {
		t.Errorf("zero result should have no heatmap")
	}
	if err := empty.WriteHeatmapPGM(&pgm); err == nil {
		t.Errorf("expected error on zero result")
	}
	if err := empty.WriteFieldCSV(&csv); err == nil {
		t.Errorf("expected error on zero result")
	}
}

func TestRunExperimentFacade(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("fig3a", "reduced", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 3(a)") {
		t.Errorf("experiment output missing title:\n%s", buf.String())
	}
	if err := RunExperiment("nope", "reduced", &buf); err == nil {
		t.Errorf("expected error for unknown experiment")
	}
	if len(ExperimentNames()) < 10 {
		t.Errorf("experiment registry too small: %v", ExperimentNames())
	}
}
