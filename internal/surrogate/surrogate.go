// Package surrogate implements the spatial compact thermal model behind
// the organizer's lowest fidelity tier: the per-chiplet peak-temperature
// vector of a 2.5D system predicted as a superposition of analytic
// four-term heat-spread kernels (the closed-form corner integral of a
// rectangular source diffusing through an effective medium, as used by
// analytic thermal placers), with per-chiplet amplitude and spread-length
// parameters plus a uniform background-rise coefficient, fitted by least
// squares against a small design-of-experiments set of real CG solves.
//
// The parameterization is deliberately minimal. The corner integral
// F(a, b, c) is homogeneous of degree one, so a global spread length is
// indistinguishable from the amplitude; what actually varies across a
// floorplan is how strongly each chiplet's heat localizes (frame vs inner
// positions see different spreader boundary conditions). Hence one spread
// length and one amplitude per chiplet slot, shared across all samples of
// a chiplet-count class, and a single bias absorbing the far-field
// heat-sink rise. A fit is a deterministic grid-initialized coordinate
// descent with a closed-form ridge-regularized linear solve for the
// amplitudes, a prediction is a dot product against a cached kernel matrix
// (zero allocations), and the whole calibration is summarized by one
// Calibration record whose WorstCaseErrC drives conservative escalation to
// higher fidelity tiers.
package surrogate

import (
	"fmt"
	"math"
)

// Params are the fitted kernel parameters of one chiplet-count class.
// Lengths are in millimeters on the interposer plane; amplitudes and the
// bias convert watts into degrees Celsius of rise over ambient.
type Params struct {
	// SpreadMM is the per-chiplet spread length: the depth argument of the
	// analytic kernel for heat sourced in that chiplet slot. Small values
	// concentrate the rise over the source, large values flatten it.
	SpreadMM []float64 `json:"spread_mm"`
	// AmpCPerW is the per-chiplet kernel amplitude.
	AmpCPerW []float64 `json:"amp_c_per_w"`
	// BiasCPerW is the uniform rise per total injected watt — the
	// far-field/heat-sink term the localized kernels cannot express.
	BiasCPerW float64 `json:"bias_c_per_w"`
}

// Chiplets returns the chiplet-count class the parameters describe.
func (p Params) Chiplets() int { return len(p.SpreadMM) }

// Sample is one design-of-experiments observation: a floorplan's chiplet
// centers and footprint, the converged per-chiplet powers of a real
// leakage-coupled simulation, and the observed per-chiplet peak rises over
// ambient.
type Sample struct {
	// CentersMM holds the chiplet center coordinates.
	CentersMM [][2]float64
	// ChipWMM, ChipHMM are the (uniform) chiplet footprint dimensions.
	ChipWMM, ChipHMM float64
	// PowersW is the converged total power injected in each chiplet.
	PowersW []float64
	// RiseC is the observed per-chiplet peak temperature rise over ambient.
	RiseC []float64
}

// Calibration records one fitted class: the parameters, how much data
// produced them, and the error statistics that bound how far a prediction
// may be trusted.
type Calibration struct {
	Params Params `json:"params"`
	// Samples is the number of DoE solves in the training partition;
	// HoldoutSamples were withheld from the fit and only scored.
	Samples        int `json:"samples"`
	HoldoutSamples int `json:"holdout_samples"`
	// Rows is the number of per-chiplet observations the fit minimized over.
	Rows int `json:"rows"`
	// RMSFitErrC and WorstFitErrC summarize the training residual.
	RMSFitErrC   float64 `json:"rms_fit_err_c"`
	WorstFitErrC float64 `json:"worst_fit_err_c"`
	// WorstHoldoutErrC is the largest error on the withheld solves (zero
	// when nothing was withheld).
	WorstHoldoutErrC float64 `json:"worst_holdout_err_c"`
	// WorstCaseErrC is the safety-inflated bound used for escalation: a
	// prediction within WorstCaseErrC of a decision threshold must defer
	// to a higher fidelity tier.
	WorstCaseErrC float64 `json:"worst_case_err_c"`
}

// Safety inflation applied to the observed worst error when deriving
// WorstCaseErrC: the DoE set is small, so the escalation bound must assume
// unseen points are somewhat worse than the worst seen one.
const (
	SafetyFactor = 1.5
	SafetyPadC   = 0.25
)

const twoOverSqrtPi = 2 / math.SqrtPi

// fterm is the closed-form corner integral F(a, b, c) of the analytic
// heat-spread kernel. For a > 0 every logarithm argument is strictly
// positive (the square roots dominate |b| and |c|), so the function is
// finite for all b, c.
func fterm(a, b, c float64) float64 {
	d := math.Sqrt(a*a + b*b + c*c)
	return twoOverSqrtPi * (b*math.Log((c+d)/math.Sqrt(a*a+b*b)) +
		c*math.Log((b+d)/math.Sqrt(a*a+c*c)) -
		a*math.Atan(b*c/(a*d)))
}

// KernelSum evaluates the four-term kernel of a wMM x hMM rectangular
// source with spread length spreadMM at a field point offset
// (dxMM, dyMM) from the source center: the rectangle decomposes into four
// corner integrals with sign-split edge distances, so the same closed form
// covers points inside and outside the footprint.
func KernelSum(spreadMM, dxMM, dyMM, wMM, hMM float64) float64 {
	w2, h2 := wMM/2, hMM/2
	s := 0.0
	for _, sx := range [2]float64{1, -1} {
		for _, sy := range [2]float64{1, -1} {
			s += fterm(spreadMM, w2-sx*dxMM, h2-sy*dyMM)
		}
	}
	return s
}

// KernelMatrix fills dst with the n x n source-to-target kernel table for
// one floorplan: dst[j*n+i] is the kernel of source chiplet i (with its
// spread length) at the center of target chiplet j. dst must have length
// n*n (it is returned for convenience); no allocations are performed.
func (p Params) KernelMatrix(centersMM [][2]float64, wMM, hMM float64, dst []float64) []float64 {
	n := len(centersMM)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			dx := centersMM[j][0] - centersMM[i][0]
			dy := centersMM[j][1] - centersMM[i][1]
			dst[j*n+i] = KernelSum(p.SpreadMM[i], dx, dy, wMM, hMM)
		}
	}
	return dst
}

// PredictRise fills riseC with the predicted per-chiplet peak rise over
// ambient: riseC[j] = Σ_i A_i P_i K[j*n+i] + Bias * ΣP. k is a
// KernelMatrix for the same floorplan; len(powersW) = len(riseC) = n.
// Zero allocations.
func (p Params) PredictRise(k []float64, powersW, riseC []float64) {
	n := len(powersW)
	total := 0.0
	for i := 0; i < n; i++ {
		total += powersW[i]
	}
	for j := 0; j < n; j++ {
		s := 0.0
		row := k[j*n : j*n+n]
		for i := 0; i < n; i++ {
			s += p.AmpCPerW[i] * powersW[i] * row[i]
		}
		riseC[j] = s + p.BiasCPerW*total
	}
}

// Predict is the allocating convenience form of KernelMatrix+PredictRise
// for tools and tests.
func (p Params) Predict(centersMM [][2]float64, wMM, hMM float64, powersW []float64) []float64 {
	n := len(centersMM)
	k := p.KernelMatrix(centersMM, wMM, hMM, make([]float64, n*n))
	rise := make([]float64, n)
	p.PredictRise(k, powersW, rise)
	return rise
}

// spreadGridMM is the candidate grid for the spread lengths, spanning
// thin-die local heating through sink-dominated flat fields, in
// millimeters. Fixed so a fit is a pure function of its samples.
var spreadGridMM = []float64{0.25, 0.5, 1, 2, 3, 4, 6, 9, 13, 18}

// fitSweeps is the number of coordinate-descent passes over the per-chiplet
// spread lengths after each uniform-grid initialization.
const fitSweeps = 2

// Fit calibrates Params against DoE samples: from every uniform-spread
// initialization on the candidate grid, a fixed number of coordinate-
// descent sweeps refines the spread lengths chiplet by chiplet over the
// same grid (the SSE surface over spreads is multimodal, so the descent is
// multi-start), and each candidate is scored with a closed-form
// ridge-regularized linear solve for the amplitudes and bias. The global
// minimum sum-of-squares wins with first-candidate tie-breaking, so the
// result is deterministic.
//
// When holdoutEvery >= 2, every holdoutEvery-th sample is withheld from
// the fit and scored afterwards; WorstCaseErrC inflates the worst observed
// error (training or holdout) by the package safety margin.
func Fit(samples []Sample, holdoutEvery int) (Calibration, error) {
	if len(samples) == 0 {
		return Calibration{}, fmt.Errorf("surrogate: no samples to fit")
	}
	n := len(samples[0].CentersMM)
	for si, s := range samples {
		if len(s.CentersMM) != n || len(s.PowersW) != n || len(s.RiseC) != n || n == 0 {
			return Calibration{}, fmt.Errorf("surrogate: sample %d malformed: %d centers, %d powers, %d rises (class %d)",
				si, len(s.CentersMM), len(s.PowersW), len(s.RiseC), n)
		}
		if s.ChipWMM <= 0 || s.ChipHMM <= 0 {
			return Calibration{}, fmt.Errorf("surrogate: sample %d has non-positive chiplet footprint %gx%g",
				si, s.ChipWMM, s.ChipHMM)
		}
	}
	var train, hold []Sample
	if holdoutEvery >= 2 && len(samples) > 1 {
		for i, s := range samples {
			if (i+1)%holdoutEvery == 0 {
				hold = append(hold, s)
			} else {
				train = append(train, s)
			}
		}
	} else {
		train = samples
	}

	tab := newColumnTable(train)
	// Multi-start coordinate descent over spread-grid indices: every
	// uniform initialization descends independently; the best endpoint
	// wins (ties keep the earliest start, so the result is deterministic).
	best := make([]int, n)
	bestSSE := math.Inf(1)
	idx := make([]int, n)
	for start := range spreadGridMM {
		for i := range idx {
			idx[i] = start
		}
		sse := tab.solve(idx)
		for sweep := 0; sweep < fitSweeps; sweep++ {
			for i := 0; i < n; i++ {
				bi := idx[i]
				for li := range spreadGridMM {
					if li == bi {
						continue
					}
					idx[i] = li
					if s := tab.solve(idx); s < sse {
						sse = s
						bi = li
					}
				}
				idx[i] = bi
			}
		}
		if sse < bestSSE {
			bestSSE = sse
			copy(best, idx)
		}
	}
	spreads := make([]float64, n)
	for i, li := range best {
		spreads[i] = spreadGridMM[li]
	}

	amps, bias, _ := solveAmps(spreads, train)
	fitted := Params{SpreadMM: spreads, AmpCPerW: amps, BiasCPerW: bias}

	cal := Calibration{Params: fitted, Samples: len(train), HoldoutSamples: len(hold)}
	_, cal.RMSFitErrC, cal.WorstFitErrC = score(fitted, train)
	for _, s := range train {
		cal.Rows += len(s.RiseC)
	}
	if len(hold) > 0 {
		_, _, cal.WorstHoldoutErrC = score(fitted, hold)
	}
	cal.WorstCaseErrC = SafetyFactor*math.Max(cal.WorstFitErrC, cal.WorstHoldoutErrC) + SafetyPadC
	return cal, nil
}

// columnTable precomputes, for every training sample, the kernel column of
// every (source chiplet, candidate spread) pair, so each descent candidate
// is scored by indexing rather than by re-evaluating the closed form.
type columnTable struct {
	n   int
	dim int
	ss  []tabSample
	ata []float64
	aty []float64
	x   []float64
}

type tabSample struct {
	// cols[(li*n+i)*n+j] is the kernel of source i with spread
	// spreadGridMM[li] at target j.
	cols   []float64
	powers []float64
	rise   []float64
	total  float64
}

func newColumnTable(train []Sample) *columnTable {
	n := len(train[0].CentersMM)
	t := &columnTable{n: n, dim: n + 1}
	t.ata = make([]float64, t.dim*t.dim)
	t.aty = make([]float64, t.dim)
	t.x = make([]float64, t.dim)
	nl := len(spreadGridMM)
	for _, s := range train {
		ts := tabSample{powers: s.PowersW, rise: s.RiseC, cols: make([]float64, nl*n*n)}
		for _, w := range s.PowersW {
			ts.total += w
		}
		for li, l := range spreadGridMM {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					dx := s.CentersMM[j][0] - s.CentersMM[i][0]
					dy := s.CentersMM[j][1] - s.CentersMM[i][1]
					ts.cols[(li*n+i)*n+j] = KernelSum(l, dx, dy, s.ChipWMM, s.ChipHMM)
				}
			}
		}
		t.ss = append(t.ss, ts)
	}
	return t
}

// solve fits amplitudes and bias for one spread-index assignment (via the
// same ridge normal equations as solveAmps) and returns the training SSE.
func (t *columnTable) solve(idx []int) float64 {
	n, dim := t.n, t.dim
	for a := range t.ata {
		t.ata[a] = 0
	}
	for a := range t.aty {
		t.aty[a] = 0
	}
	for si := range t.ss {
		s := &t.ss[si]
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				t.x[i] = s.powers[i] * s.cols[(idx[i]*n+i)*n+j]
			}
			t.x[n] = s.total
			y := s.rise[j]
			for a := 0; a < dim; a++ {
				xa := t.x[a]
				row := t.ata[a*dim:]
				for b := a; b < dim; b++ {
					row[b] += xa * t.x[b]
				}
				t.aty[a] += xa * y
			}
		}
	}
	w := solveRidge(t.ata, t.aty, dim)
	sse := 0.0
	for si := range t.ss {
		s := &t.ss[si]
		for j := 0; j < n; j++ {
			pred := w[n] * s.total
			for i := 0; i < n; i++ {
				pred += w[i] * s.powers[i] * s.cols[(idx[i]*n+i)*n+j]
			}
			e := pred - s.rise[j]
			sse += e * e
		}
	}
	return sse
}

// solveAmps solves the ridge-regularized normal equations for the
// amplitudes and bias at fixed spread lengths: each per-chiplet
// observation contributes a row rise = Σ_i A_i·(P_i·K_ij) + B·ΣP. The
// tiny relative ridge keeps exactly collinear systems (a single-chiplet
// class, or a chiplet slot idle in every sample) deterministic and finite
// without perturbing well-conditioned fits.
func solveAmps(spreadsMM []float64, samples []Sample) (amps []float64, bias, sse float64) {
	n := len(spreadsMM)
	dim := n + 1
	ata := make([]float64, dim*dim)
	aty := make([]float64, dim)
	x := make([]float64, dim)
	p := Params{SpreadMM: spreadsMM}
	k := make([]float64, n*n)
	for _, s := range samples {
		p.KernelMatrix(s.CentersMM, s.ChipWMM, s.ChipHMM, k)
		t := 0.0
		for _, w := range s.PowersW {
			t += w
		}
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				x[i] = s.PowersW[i] * k[j*n+i]
			}
			x[n] = t
			y := s.RiseC[j]
			for a := 0; a < dim; a++ {
				for b := a; b < dim; b++ {
					ata[a*dim+b] += x[a] * x[b]
				}
				aty[a] += x[a] * y
			}
		}
	}
	w := solveRidge(ata, aty, dim)
	amps = w[:n]
	bias = w[n]
	sse, _, _ = score(Params{SpreadMM: spreadsMM, AmpCPerW: amps, BiasCPerW: bias}, samples)
	return amps, bias, sse
}

// solveRidge mirrors an upper-triangle-assembled normal matrix, adds the
// relative ridge (1e-8 of the mean diagonal — enough to keep exactly
// collinear systems determinate and finite, far too small to perturb a
// well-conditioned fit), and solves. Both fit paths share it so their
// results are bit-identical.
func solveRidge(ata, aty []float64, dim int) []float64 {
	trace := 0.0
	for a := 0; a < dim; a++ {
		for b := 0; b < a; b++ {
			ata[a*dim+b] = ata[b*dim+a]
		}
		trace += ata[a*dim+a]
	}
	ridge := 1e-8 * trace / float64(dim)
	if ridge <= 0 {
		ridge = 1e-12
	}
	for a := 0; a < dim; a++ {
		ata[a*dim+a] += ridge
	}
	return solveSPD(ata, aty, dim)
}

// solveSPD solves the dim x dim symmetric positive-definite system a·x = b
// by Gaussian elimination with partial pivoting (the ridge guarantees
// definiteness; pivoting adds robustness at negligible cost for dim <= 17).
func solveSPD(a, b []float64, dim int) []float64 {
	m := make([]float64, len(a))
	copy(m, a)
	x := make([]float64, dim)
	copy(x, b)
	for col := 0; col < dim; col++ {
		piv := col
		for r := col + 1; r < dim; r++ {
			if math.Abs(m[r*dim+col]) > math.Abs(m[piv*dim+col]) {
				piv = r
			}
		}
		if piv != col {
			for c := 0; c < dim; c++ {
				m[col*dim+c], m[piv*dim+c] = m[piv*dim+c], m[col*dim+c]
			}
			x[col], x[piv] = x[piv], x[col]
		}
		d := m[col*dim+col]
		if d == 0 {
			continue // ridge makes this unreachable; keep the solve total
		}
		for r := col + 1; r < dim; r++ {
			f := m[r*dim+col] / d
			if f == 0 {
				continue
			}
			for c := col; c < dim; c++ {
				m[r*dim+c] -= f * m[col*dim+c]
			}
			x[r] -= f * x[col]
		}
	}
	for col := dim - 1; col >= 0; col-- {
		s := x[col]
		for c := col + 1; c < dim; c++ {
			s -= m[col*dim+c] * x[c]
		}
		if d := m[col*dim+col]; d != 0 {
			x[col] = s / d
		} else {
			x[col] = 0
		}
	}
	return x
}

// score evaluates parameters over samples: the sum of squared errors, the
// RMS error, and the worst absolute error across every per-chiplet row.
func score(p Params, samples []Sample) (sse, rms, worst float64) {
	rows := 0
	for _, s := range samples {
		n := len(s.CentersMM)
		pred := p.Predict(s.CentersMM, s.ChipWMM, s.ChipHMM, s.PowersW)
		for j := 0; j < n; j++ {
			e := pred[j] - s.RiseC[j]
			sse += e * e
			if a := math.Abs(e); a > worst {
				worst = a
			}
			rows++
		}
	}
	if rows > 0 {
		rms = math.Sqrt(sse / float64(rows))
	}
	return sse, rms, worst
}
