package surrogate

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// fourGrid is a 2x2 chiplet layout (9 mm chiplets, 2 mm gaps) used by the
// synthetic fits below.
func fourGrid() ([][2]float64, float64, float64) {
	centers := [][2]float64{
		{5.5, 5.5}, {16.5, 5.5},
		{5.5, 16.5}, {16.5, 16.5},
	}
	return centers, 9, 9
}

// fourTruth is an on-grid ground-truth model with per-chiplet variation.
func fourTruth() Params {
	return Params{
		SpreadMM:  []float64{4, 4, 2, 6},
		AmpCPerW:  []float64{0.09, 0.07, 0.08, 0.075},
		BiasCPerW: 0.05,
	}
}

func TestKernelCenterPositiveAndSymmetric(t *testing.T) {
	c := KernelSum(0.4, 0, 0, 9, 9)
	if !(c > 0) || math.IsNaN(c) || math.IsInf(c, 0) {
		t.Fatalf("center kernel = %g, want finite positive", c)
	}
	for _, off := range [][2]float64{{1.5, 0.25}, {7, 3}, {20, 11}} {
		ref := KernelSum(0.4, off[0], off[1], 9, 9)
		for _, m := range [][2]float64{{-off[0], off[1]}, {off[0], -off[1]}, {-off[0], -off[1]}} {
			got := KernelSum(0.4, m[0], m[1], 9, 9)
			if math.Abs(got-ref) > 1e-9*math.Abs(ref) {
				t.Fatalf("kernel not mirror symmetric at %v vs %v: %g vs %g", off, m, ref, got)
			}
		}
	}
}

func TestKernelDecaysWithDistance(t *testing.T) {
	prev := math.Inf(1)
	for _, d := range []float64{0, 3, 6, 12, 24, 48} {
		v := KernelSum(0.4, d, 0, 9, 9)
		if v < 0 || v >= prev && d > 0 {
			t.Fatalf("kernel at distance %g = %g, want positive and decreasing (prev %g)", d, v, prev)
		}
		prev = v
	}
}

// syntheticSamples draws power vectors and labels them with the ground
// truth model plus optional noise.
func syntheticSamples(truth Params, rng *rand.Rand, count int, noiseC float64) []Sample {
	centers, w, h := fourGrid()
	out := make([]Sample, 0, count)
	for s := 0; s < count; s++ {
		powers := make([]float64, len(centers))
		for i := range powers {
			if rng.Intn(4) == 0 {
				continue // exercise zero-power chiplets
			}
			powers[i] = 5 + 45*rng.Float64()
		}
		rise := truth.Predict(centers, w, h, powers)
		for j := range rise {
			rise[j] += noiseC * (2*rng.Float64() - 1)
		}
		out = append(out, Sample{CentersMM: centers, ChipWMM: w, ChipHMM: h, PowersW: powers, RiseC: rise})
	}
	return out
}

func TestFitRecoversSyntheticModel(t *testing.T) {
	truth := fourTruth()
	rng := rand.New(rand.NewSource(7))
	cal, err := Fit(syntheticSamples(truth, rng, 12, 0), 3)
	if err != nil {
		t.Fatal(err)
	}
	if cal.WorstFitErrC > 1e-4 || cal.WorstHoldoutErrC > 1e-4 {
		t.Fatalf("noise-free fit has errors (%g, %g), want ~0", cal.WorstFitErrC, cal.WorstHoldoutErrC)
	}
	if cal.Samples != 8 || cal.HoldoutSamples != 4 || cal.Rows != 32 {
		t.Fatalf("partition: %d train / %d holdout / %d rows, want 8/4/32",
			cal.Samples, cal.HoldoutSamples, cal.Rows)
	}
	// The fitted model must reproduce the truth on unseen power vectors,
	// whatever internal parameterization the descent settled on.
	centers, w, h := fourGrid()
	for trial := 0; trial < 5; trial++ {
		powers := make([]float64, len(centers))
		for i := range powers {
			powers[i] = 60 * rng.Float64()
		}
		want := truth.Predict(centers, w, h, powers)
		got := cal.Params.Predict(centers, w, h, powers)
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-3 {
				t.Fatalf("trial %d chiplet %d: predicted rise %g, truth %g", trial, j, got[j], want[j])
			}
		}
	}
}

func TestFitDeterministic(t *testing.T) {
	mk := func() []Sample {
		return syntheticSamples(fourTruth(), rand.New(rand.NewSource(11)), 9, 0.3)
	}
	a, err := Fit(mk(), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(mk(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fit not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestFitSingleChiplet(t *testing.T) {
	// One chiplet: the kernel regressor is proportional to total power, so
	// the linear system is collinear and only the ridge keeps it
	// determinate; the fitted model must still predict the (linear)
	// rise-per-watt relation.
	centers := [][2]float64{{10, 10}}
	var samples []Sample
	for _, w := range []float64{10, 20, 40, 80, 160, 240} {
		samples = append(samples, Sample{
			CentersMM: centers, ChipWMM: 18, ChipHMM: 18,
			PowersW: []float64{w}, RiseC: []float64{0.2 * w},
		})
	}
	cal, err := Fit(samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := cal.Params
	if len(p.AmpCPerW) != 1 || math.IsNaN(p.AmpCPerW[0]) || math.IsInf(p.AmpCPerW[0], 0) {
		t.Fatalf("single-chiplet fit params %+v, want one finite amplitude", p)
	}
	pred := p.Predict(centers, 18, 18, []float64{100})[0]
	if math.Abs(pred-20) > 1e-3 {
		t.Fatalf("single-chiplet prediction at 100 W = %g °C rise, want 20", pred)
	}
	if cal.WorstCaseErrC < SafetyPadC {
		t.Fatalf("WorstCaseErrC %g below the safety pad %g", cal.WorstCaseErrC, SafetyPadC)
	}
}

func TestZeroPowerChipletStillWarms(t *testing.T) {
	p := fourTruth()
	centers, w, h := fourGrid()
	rise := p.Predict(centers, w, h, []float64{40, 0, 0, 0})
	if !(rise[1] > 0) || !(rise[2] > 0) || !(rise[3] > 0) {
		t.Fatalf("idle chiplets predicted at rises %v, want positive coupling from the hot one", rise)
	}
	if !(rise[0] > rise[3]) {
		t.Fatalf("powered chiplet rise %g not above far idle chiplet %g", rise[0], rise[3])
	}
	all := p.Predict(centers, w, h, []float64{0, 0, 0, 0})
	for j, r := range all {
		if r != 0 {
			t.Fatalf("zero power map predicts nonzero rise %g at chiplet %d", r, j)
		}
	}
}

func TestHeldOutErrorUnderWorstCaseBound(t *testing.T) {
	// Seeded property: for noisy synthetic DoE sets, every held-out
	// observation's error stays under the recorded WorstCaseErrC bound.
	truth := fourTruth()
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		samples := syntheticSamples(truth, rng, 12, 0.5)
		cal, err := Fit(samples, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range samples {
			if (i+1)%3 != 0 {
				continue // training sample
			}
			pred := cal.Params.Predict(s.CentersMM, s.ChipWMM, s.ChipHMM, s.PowersW)
			for j := range pred {
				if e := math.Abs(pred[j] - s.RiseC[j]); e > cal.WorstCaseErrC {
					t.Fatalf("seed %d holdout sample %d chiplet %d: error %g exceeds recorded bound %g",
						seed, i, j, e, cal.WorstCaseErrC)
				}
			}
		}
		if cal.WorstCaseErrC < SafetyFactor*cal.WorstHoldoutErrC {
			t.Fatalf("seed %d: bound %g below safety-inflated holdout error", seed, cal.WorstCaseErrC)
		}
	}
}

func TestPredictZeroAlloc(t *testing.T) {
	p := fourTruth()
	centers, w, h := fourGrid()
	n := len(centers)
	k := make([]float64, n*n)
	powers := []float64{30, 0, 12, 45}
	rise := make([]float64, n)
	allocs := testing.AllocsPerRun(100, func() {
		p.KernelMatrix(centers, w, h, k)
		p.PredictRise(k, powers, rise)
	})
	if allocs != 0 {
		t.Fatalf("prediction allocates %.1f objects per run, want 0", allocs)
	}
}

func TestFitRejectsMalformedSamples(t *testing.T) {
	if _, err := Fit(nil, 3); err == nil {
		t.Fatal("empty sample set: want error")
	}
	bad := []Sample{{CentersMM: [][2]float64{{1, 1}}, ChipWMM: 9, ChipHMM: 9, PowersW: []float64{1, 2}, RiseC: []float64{1}}}
	if _, err := Fit(bad, 3); err == nil {
		t.Fatal("mismatched sample lengths: want error")
	}
	neg := []Sample{{CentersMM: [][2]float64{{1, 1}}, ChipWMM: 0, ChipHMM: 9, PowersW: []float64{1}, RiseC: []float64{1}}}
	if _, err := Fit(neg, 3); err == nil {
		t.Fatal("non-positive footprint: want error")
	}
	mixed := []Sample{
		{CentersMM: [][2]float64{{1, 1}}, ChipWMM: 9, ChipHMM: 9, PowersW: []float64{1}, RiseC: []float64{1}},
		{CentersMM: [][2]float64{{1, 1}, {2, 2}}, ChipWMM: 9, ChipHMM: 9, PowersW: []float64{1, 2}, RiseC: []float64{1, 2}},
	}
	if _, err := Fit(mixed, 3); err == nil {
		t.Fatal("mixed chiplet-count classes: want error")
	}
}
