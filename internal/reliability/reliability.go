// Package reliability quantifies the lifetime benefit of running cooler,
// backing the paper's observation that even when 2.5D integration brings no
// performance gain (lu.cont), the thermally-aware organization "can still
// provide lower operating temperature, which improves transistor lifetime
// and reliability."
//
// The model is the standard Arrhenius acceleration used for
// temperature-driven wear-out mechanisms (electromigration per Black's
// equation, TDDB, NBTI to first order): mean time to failure scales as
// exp(Ea / (k·T)), so the lifetime ratio between two operating temperatures
// T_hot and T_cool (in kelvin) is exp(Ea/k · (1/T_cool − 1/T_hot)).
package reliability

import (
	"fmt"
	"math"
)

const (
	// BoltzmannEV is Boltzmann's constant in eV/K.
	BoltzmannEV = 8.617333262e-5
	// DefaultActivationEV is a typical electromigration activation energy.
	DefaultActivationEV = 0.7
)

// Model parameterizes the Arrhenius lifetime model.
type Model struct {
	// ActivationEV is the activation energy Ea in electron-volts.
	ActivationEV float64
}

// DefaultModel returns the 0.7 eV electromigration model.
func DefaultModel() Model { return Model{ActivationEV: DefaultActivationEV} }

// Validate checks the model.
func (m Model) Validate() error {
	if m.ActivationEV <= 0 || m.ActivationEV > 3 {
		return fmt.Errorf("reliability: activation energy %g eV implausible", m.ActivationEV)
	}
	return nil
}

// AccelerationFactor returns how much faster wear-out proceeds at tHotC
// than at tRefC (both °C). Values above 1 mean the hot part ages faster.
func (m Model) AccelerationFactor(tRefC, tHotC float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	tRef := tRefC + 273.15
	tHot := tHotC + 273.15
	if tRef <= 0 || tHot <= 0 {
		return 0, fmt.Errorf("reliability: temperatures below absolute zero")
	}
	return math.Exp(m.ActivationEV / BoltzmannEV * (1/tRef - 1/tHot)), nil
}

// LifetimeRatio returns MTTF(cool) / MTTF(hot): how many times longer a
// device operating at tCoolC lasts versus one at tHotC.
func (m Model) LifetimeRatio(tCoolC, tHotC float64) (float64, error) {
	return m.AccelerationFactor(tCoolC, tHotC)
}

// WeightedLifetimeRatio aggregates per-core temperatures: wear-out is
// dominated by the hottest structures, so the ratio uses a soft-max of the
// fields (log-sum-exp of the per-core acceleration relative to the
// reference temperature), which reduces to the peak-temperature ratio when
// one core dominates and to the mean when the field is uniform.
func (m Model) WeightedLifetimeRatio(coolTempsC, hotTempsC []float64, refC float64) (float64, error) {
	accCool, err := m.meanAcceleration(coolTempsC, refC)
	if err != nil {
		return 0, err
	}
	accHot, err := m.meanAcceleration(hotTempsC, refC)
	if err != nil {
		return 0, err
	}
	if accCool <= 0 {
		return 0, fmt.Errorf("reliability: degenerate acceleration")
	}
	return accHot / accCool, nil
}

func (m Model) meanAcceleration(tempsC []float64, refC float64) (float64, error) {
	if len(tempsC) == 0 {
		return 0, fmt.Errorf("reliability: empty temperature field")
	}
	sum := 0.0
	for _, t := range tempsC {
		af, err := m.AccelerationFactor(refC, t)
		if err != nil {
			return 0, err
		}
		sum += af
	}
	return sum / float64(len(tempsC)), nil
}
