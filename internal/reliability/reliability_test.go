package reliability

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultModelValidates(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Model{ActivationEV: 0}).Validate(); err == nil {
		t.Errorf("expected error for zero activation energy")
	}
	if err := (Model{ActivationEV: 5}).Validate(); err == nil {
		t.Errorf("expected error for implausible activation energy")
	}
}

func TestAccelerationFactorIdentity(t *testing.T) {
	m := DefaultModel()
	af, err := m.AccelerationFactor(85, 85)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(af-1) > 1e-12 {
		t.Fatalf("equal temperatures must give factor 1, got %v", af)
	}
}

func TestAccelerationFactorKnownValue(t *testing.T) {
	// Classic rule of thumb: with Ea ≈ 0.7 eV, +10 °C near 85 °C roughly
	// halves the lifetime (factor ≈ 1.7-2.0).
	m := DefaultModel()
	af, err := m.AccelerationFactor(85, 95)
	if err != nil {
		t.Fatal(err)
	}
	if af < 1.5 || af > 2.2 {
		t.Fatalf("85->95 °C acceleration %.3f outside the rule-of-thumb band", af)
	}
}

func TestLifetimeRatioMonotone(t *testing.T) {
	m := DefaultModel()
	f := func(aRaw, bRaw float64) bool {
		a := 45 + math.Abs(math.Mod(aRaw, 60))
		b := 45 + math.Abs(math.Mod(bRaw, 60))
		if a > b {
			a, b = b, a
		}
		r, err := m.LifetimeRatio(a, b)
		if err != nil {
			return false
		}
		return r >= 1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAccelerationErrors(t *testing.T) {
	m := DefaultModel()
	if _, err := m.AccelerationFactor(-300, 85); err == nil {
		t.Errorf("expected error below absolute zero")
	}
	bad := Model{}
	if _, err := bad.AccelerationFactor(60, 85); err == nil {
		t.Errorf("expected validation error")
	}
}

func TestWeightedLifetimeRatio(t *testing.T) {
	m := DefaultModel()
	cool := []float64{60, 62, 64}
	hot := []float64{80, 82, 84}
	r, err := m.WeightedLifetimeRatio(cool, hot, 60)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 1 {
		t.Fatalf("cooler field must last longer, ratio %v", r)
	}
	// Uniform identical fields: ratio 1.
	same, err := m.WeightedLifetimeRatio(cool, cool, 60)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(same-1) > 1e-12 {
		t.Fatalf("identical fields must give ratio 1, got %v", same)
	}
	if _, err := m.WeightedLifetimeRatio(nil, hot, 60); err == nil {
		t.Errorf("expected error for empty field")
	}
}

// A hotspot dominates: one very hot core should pull the effective
// lifetime down much more than the mean temperature suggests.
func TestHotspotDominates(t *testing.T) {
	m := DefaultModel()
	uniform := []float64{70, 70, 70, 70}
	spiky := []float64{60, 60, 60, 100} // same mean
	rUniform, err := m.WeightedLifetimeRatio(uniform, spiky, 60)
	if err != nil {
		t.Fatal(err)
	}
	if rUniform <= 1 {
		t.Fatalf("spiky field should age faster than uniform field at equal mean: %v", rUniform)
	}
}
