package geom

import "fmt"

// Grid is a uniform rectangular discretization of a layer footprint into
// Nx x Ny cells. It is the common coordinate system shared by the floorplan
// rasterizer and the thermal solver.
type Grid struct {
	Nx, Ny int     // number of cells in x and y
	W, H   float64 // footprint size in mm
}

// NewGrid builds a grid over a w x h mm footprint with nx x ny cells.
func NewGrid(nx, ny int, w, h float64) (Grid, error) {
	if nx <= 0 || ny <= 0 {
		return Grid{}, fmt.Errorf("geom: grid dimensions must be positive, got %dx%d", nx, ny)
	}
	if w <= 0 || h <= 0 {
		return Grid{}, fmt.Errorf("geom: grid footprint must be positive, got %.3fx%.3f mm", w, h)
	}
	return Grid{Nx: nx, Ny: ny, W: w, H: h}, nil
}

// CellW returns the cell width in mm.
func (g Grid) CellW() float64 { return g.W / float64(g.Nx) }

// CellH returns the cell height in mm.
func (g Grid) CellH() float64 { return g.H / float64(g.Ny) }

// CellArea returns the area of one cell in mm².
func (g Grid) CellArea() float64 { return g.CellW() * g.CellH() }

// NumCells returns the total number of cells.
func (g Grid) NumCells() int { return g.Nx * g.Ny }

// Index converts cell coordinates (ix, iy) to a flat index. Row-major with
// ix varying fastest.
func (g Grid) Index(ix, iy int) int { return iy*g.Nx + ix }

// Coords converts a flat index back to cell coordinates.
func (g Grid) Coords(idx int) (ix, iy int) { return idx % g.Nx, idx / g.Nx }

// CellRect returns the rectangle occupied by cell (ix, iy).
func (g Grid) CellRect(ix, iy int) Rect {
	cw, ch := g.CellW(), g.CellH()
	return Rect{X: float64(ix) * cw, Y: float64(iy) * ch, W: cw, H: ch}
}

// CellAt returns the coordinates of the cell containing point (x, y),
// clamped to the grid.
func (g Grid) CellAt(x, y float64) (ix, iy int) {
	ix = int(x / g.CellW())
	iy = int(y / g.CellH())
	if ix < 0 {
		ix = 0
	}
	if ix >= g.Nx {
		ix = g.Nx - 1
	}
	if iy < 0 {
		iy = 0
	}
	if iy >= g.Ny {
		iy = g.Ny - 1
	}
	return ix, iy
}

// cellRange returns the half-open ranges of cell indices whose cells
// intersect rectangle r.
func (g Grid) cellRange(r Rect) (ix0, ix1, iy0, iy1 int) {
	cw, ch := g.CellW(), g.CellH()
	ix0 = int((r.X + Eps) / cw)
	iy0 = int((r.Y + Eps) / ch)
	ix1 = int((r.MaxX() - Eps) / cw)
	iy1 = int((r.MaxY() - Eps) / ch)
	if ix0 < 0 {
		ix0 = 0
	}
	if iy0 < 0 {
		iy0 = 0
	}
	if ix1 >= g.Nx {
		ix1 = g.Nx - 1
	}
	if iy1 >= g.Ny {
		iy1 = g.Ny - 1
	}
	return ix0, ix1 + 1, iy0, iy1 + 1
}

// RasterizeAdd distributes the scalar `total` (e.g. watts of a power block)
// over the grid cells that rectangle r covers, proportionally to covered
// area, adding into dst (len dst == NumCells). Rectangles reaching outside
// the grid footprint deposit only the inside fraction; the caller is
// responsible for validating floorplans beforehand if that matters.
func (g Grid) RasterizeAdd(dst []float64, r Rect, total float64) {
	if r.Empty() || total == 0 {
		return
	}
	area := r.Area()
	ix0, ix1, iy0, iy1 := g.cellRange(r)
	for iy := iy0; iy < iy1; iy++ {
		for ix := ix0; ix < ix1; ix++ {
			ov := g.CellRect(ix, iy).OverlapArea(r)
			if ov > 0 {
				dst[g.Index(ix, iy)] += total * ov / area
			}
		}
	}
}

// CoverageFraction fills dst with the fraction (0..1) of each cell covered
// by rectangle r, adding into any prior coverage. Used to blend material
// properties of overlapping floorplan fills.
func (g Grid) CoverageFraction(dst []float64, r Rect) {
	if r.Empty() {
		return
	}
	cellArea := g.CellArea()
	ix0, ix1, iy0, iy1 := g.cellRange(r)
	for iy := iy0; iy < iy1; iy++ {
		for ix := ix0; ix < ix1; ix++ {
			ov := g.CellRect(ix, iy).OverlapArea(r)
			if ov > 0 {
				dst[g.Index(ix, iy)] += ov / cellArea
			}
		}
	}
}
