// Package geom provides the small set of 2D geometry primitives used by the
// floorplanner and the thermal grid: axis-aligned rectangles in millimeters
// and area-weighted rasterization of rectangles onto uniform grids.
//
// All coordinates are in millimeters with the origin at the lower-left
// corner of the enclosing layer. Rectangles are half-open in spirit: a zero
// width or height rectangle has zero area and intersects nothing.
package geom

import (
	"fmt"
	"math"
)

// Eps is the geometric tolerance (in mm) used when comparing coordinates.
// Placement granularity in the paper is 0.5 mm, so 1e-9 mm is far below any
// meaningful feature size.
const Eps = 1e-9

// Rect is an axis-aligned rectangle: [X, X+W) x [Y, Y+H), in millimeters.
type Rect struct {
	X, Y float64 // lower-left corner
	W, H float64 // width (x extent) and height (y extent)
}

// NewRect returns a rectangle with the given lower-left corner and size.
// Negative sizes are normalized so that W and H are always non-negative.
func NewRect(x, y, w, h float64) Rect {
	if w < 0 {
		x, w = x+w, -w
	}
	if h < 0 {
		y, h = y+h, -h
	}
	return Rect{X: x, Y: y, W: w, H: h}
}

// Area returns the rectangle area in mm².
func (r Rect) Area() float64 { return r.W * r.H }

// Empty reports whether the rectangle has (near-)zero area.
func (r Rect) Empty() bool { return r.W < Eps || r.H < Eps }

// MaxX returns the x coordinate of the right edge.
func (r Rect) MaxX() float64 { return r.X + r.W }

// MaxY returns the y coordinate of the top edge.
func (r Rect) MaxY() float64 { return r.Y + r.H }

// Center returns the rectangle center point.
func (r Rect) Center() (x, y float64) { return r.X + r.W/2, r.Y + r.H/2 }

// Translate returns the rectangle moved by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{X: r.X + dx, Y: r.Y + dy, W: r.W, H: r.H}
}

// Intersect returns the overlapping region of r and s. If the rectangles do
// not overlap the result is an empty rectangle (zero W or H).
func (r Rect) Intersect(s Rect) Rect {
	x0 := math.Max(r.X, s.X)
	y0 := math.Max(r.Y, s.Y)
	x1 := math.Min(r.MaxX(), s.MaxX())
	y1 := math.Min(r.MaxY(), s.MaxY())
	if x1-x0 < Eps || y1-y0 < Eps {
		return Rect{}
	}
	return Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

// Overlaps reports whether r and s share positive area (touching edges do
// not count as overlap).
func (r Rect) Overlaps(s Rect) bool {
	return !r.Intersect(s).Empty()
}

// OverlapArea returns the area shared by r and s in mm².
func (r Rect) OverlapArea(s Rect) float64 { return r.Intersect(s).Area() }

// Contains reports whether r fully contains s (with tolerance Eps).
func (r Rect) Contains(s Rect) bool {
	return s.X >= r.X-Eps && s.Y >= r.Y-Eps &&
		s.MaxX() <= r.MaxX()+Eps && s.MaxY() <= r.MaxY()+Eps
}

// ContainsPoint reports whether the point (x, y) lies inside r.
func (r Rect) ContainsPoint(x, y float64) bool {
	return x >= r.X-Eps && x <= r.MaxX()+Eps && y >= r.Y-Eps && y <= r.MaxY()+Eps
}

// Union returns the bounding box of r and s. Empty rectangles are ignored.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	x0 := math.Min(r.X, s.X)
	y0 := math.Min(r.Y, s.Y)
	x1 := math.Max(r.MaxX(), s.MaxX())
	y1 := math.Max(r.MaxY(), s.MaxY())
	return Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

// String formats the rectangle for diagnostics.
func (r Rect) String() string {
	return fmt.Sprintf("[%.3f,%.3f %.3fx%.3f]", r.X, r.Y, r.W, r.H)
}

// BoundingBox returns the bounding box of all given rectangles; the zero
// Rect if the slice is empty.
func BoundingBox(rects []Rect) Rect {
	var bb Rect
	for _, r := range rects {
		bb = bb.Union(r)
	}
	return bb
}

// AnyOverlap reports whether any pair of rectangles in the slice overlaps,
// returning the first overlapping pair's indices. It is O(n²), which is fine
// for floorplans with tens of blocks.
func AnyOverlap(rects []Rect) (i, j int, overlap bool) {
	for a := 0; a < len(rects); a++ {
		for b := a + 1; b < len(rects); b++ {
			if rects[a].Overlaps(rects[b]) {
				return a, b, true
			}
		}
	}
	return 0, 0, false
}
