package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewRectNormalizesNegativeSizes(t *testing.T) {
	r := NewRect(5, 5, -2, -3)
	if r.X != 3 || r.Y != 2 || r.W != 2 || r.H != 3 {
		t.Fatalf("got %v, want [3,2 2x3]", r)
	}
}

func TestRectArea(t *testing.T) {
	cases := []struct {
		r    Rect
		want float64
	}{
		{Rect{0, 0, 2, 3}, 6},
		{Rect{1, 1, 0, 5}, 0},
		{Rect{-1, -1, 2, 2}, 4},
	}
	for _, c := range cases {
		if got := c.r.Area(); !almostEq(got, c.want) {
			t.Errorf("Area(%v) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestIntersectDisjoint(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{2, 2, 1, 1}
	if !a.Intersect(b).Empty() {
		t.Errorf("disjoint rects should have empty intersection")
	}
	if a.Overlaps(b) {
		t.Errorf("disjoint rects should not overlap")
	}
}

func TestIntersectTouchingEdgesIsEmpty(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{1, 0, 1, 1} // shares the x=1 edge
	if a.Overlaps(b) {
		t.Errorf("edge-touching rects must not count as overlapping")
	}
}

func TestIntersectPartial(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{1, 1, 2, 2}
	got := a.Intersect(b)
	if !almostEq(got.X, 1) || !almostEq(got.Y, 1) || !almostEq(got.W, 1) || !almostEq(got.H, 1) {
		t.Errorf("Intersect = %v, want [1,1 1x1]", got)
	}
	if !almostEq(a.OverlapArea(b), 1) {
		t.Errorf("OverlapArea = %v, want 1", a.OverlapArea(b))
	}
}

func TestContains(t *testing.T) {
	outer := Rect{0, 0, 10, 10}
	if !outer.Contains(Rect{1, 1, 2, 2}) {
		t.Errorf("outer should contain inner")
	}
	if !outer.Contains(outer) {
		t.Errorf("a rect should contain itself")
	}
	if outer.Contains(Rect{9, 9, 2, 2}) {
		t.Errorf("partially outside rect must not be contained")
	}
}

func TestUnion(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{2, 3, 1, 1}
	u := a.Union(b)
	if !almostEq(u.W, 3) || !almostEq(u.H, 4) {
		t.Errorf("Union = %v, want 3x4 box", u)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("union with empty should be identity, got %v", got)
	}
}

func TestBoundingBox(t *testing.T) {
	bb := BoundingBox([]Rect{{0, 0, 1, 1}, {5, 5, 1, 2}})
	if !almostEq(bb.MaxX(), 6) || !almostEq(bb.MaxY(), 7) {
		t.Errorf("BoundingBox = %v", bb)
	}
	if !BoundingBox(nil).Empty() {
		t.Errorf("bounding box of nothing should be empty")
	}
}

func TestAnyOverlap(t *testing.T) {
	rects := []Rect{{0, 0, 1, 1}, {2, 0, 1, 1}, {2.5, 0.5, 1, 1}}
	i, j, ov := AnyOverlap(rects)
	if !ov || i != 1 || j != 2 {
		t.Errorf("AnyOverlap = (%d,%d,%v), want (1,2,true)", i, j, ov)
	}
	if _, _, ov := AnyOverlap(rects[:2]); ov {
		t.Errorf("disjoint set flagged as overlapping")
	}
}

// Property: intersection is commutative and its area never exceeds either
// operand's area.
func TestIntersectionProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := NewRect(clamp(ax), clamp(ay), clampSize(aw), clampSize(ah))
		b := NewRect(clamp(bx), clamp(by), clampSize(bw), clampSize(bh))
		ab := a.Intersect(b)
		ba := b.Intersect(a)
		if !almostEq(ab.Area(), ba.Area()) {
			return false
		}
		return ab.Area() <= a.Area()+1e-9 && ab.Area() <= b.Area()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: union bounding box contains both operands.
func TestUnionContainsOperands(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := NewRect(clamp(ax), clamp(ay), clampSize(aw), clampSize(ah))
		b := NewRect(clamp(bx), clamp(by), clampSize(bw), clampSize(bh))
		u := a.Union(b)
		if a.Empty() || b.Empty() {
			return true
		}
		return u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func clamp(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 100)
}

func clampSize(v float64) float64 {
	return math.Abs(clamp(v))
}
