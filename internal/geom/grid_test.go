package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func mustGrid(t *testing.T, nx, ny int, w, h float64) Grid {
	t.Helper()
	g, err := NewGrid(nx, ny, w, h)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	return g
}

func TestNewGridRejectsBadArgs(t *testing.T) {
	if _, err := NewGrid(0, 4, 1, 1); err == nil {
		t.Errorf("expected error for zero nx")
	}
	if _, err := NewGrid(4, 4, -1, 1); err == nil {
		t.Errorf("expected error for negative width")
	}
}

func TestGridCellGeometry(t *testing.T) {
	g := mustGrid(t, 4, 2, 8, 4)
	if !almostEq(g.CellW(), 2) || !almostEq(g.CellH(), 2) {
		t.Fatalf("cell size = %vx%v, want 2x2", g.CellW(), g.CellH())
	}
	if g.NumCells() != 8 {
		t.Fatalf("NumCells = %d, want 8", g.NumCells())
	}
	r := g.CellRect(3, 1)
	if !almostEq(r.X, 6) || !almostEq(r.Y, 2) {
		t.Fatalf("CellRect(3,1) = %v", r)
	}
}

func TestGridIndexRoundTrip(t *testing.T) {
	g := mustGrid(t, 7, 5, 7, 5)
	for iy := 0; iy < g.Ny; iy++ {
		for ix := 0; ix < g.Nx; ix++ {
			gx, gy := g.Coords(g.Index(ix, iy))
			if gx != ix || gy != iy {
				t.Fatalf("round trip (%d,%d) -> (%d,%d)", ix, iy, gx, gy)
			}
		}
	}
}

func TestCellAtClamps(t *testing.T) {
	g := mustGrid(t, 4, 4, 4, 4)
	if ix, iy := g.CellAt(-5, -5); ix != 0 || iy != 0 {
		t.Errorf("CellAt below range = (%d,%d)", ix, iy)
	}
	if ix, iy := g.CellAt(100, 100); ix != 3 || iy != 3 {
		t.Errorf("CellAt above range = (%d,%d)", ix, iy)
	}
	if ix, iy := g.CellAt(2.5, 1.5); ix != 2 || iy != 1 {
		t.Errorf("CellAt interior = (%d,%d)", ix, iy)
	}
}

// RasterizeAdd must conserve the deposited total when the rectangle lies
// fully inside the grid.
func TestRasterizeConservesTotal(t *testing.T) {
	g := mustGrid(t, 16, 16, 18, 18)
	dst := make([]float64, g.NumCells())
	g.RasterizeAdd(dst, Rect{X: 1.3, Y: 2.7, W: 5.1, H: 3.9}, 42.5)
	sum := 0.0
	for _, v := range dst {
		sum += v
	}
	if math.Abs(sum-42.5) > 1e-9 {
		t.Fatalf("rasterized sum = %v, want 42.5", sum)
	}
}

func TestRasterizeAlignedRect(t *testing.T) {
	g := mustGrid(t, 4, 4, 4, 4)
	dst := make([]float64, g.NumCells())
	// One exact cell.
	g.RasterizeAdd(dst, Rect{X: 1, Y: 2, W: 1, H: 1}, 8)
	for i, v := range dst {
		want := 0.0
		if i == g.Index(1, 2) {
			want = 8
		}
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("cell %d = %v, want %v", i, v, want)
		}
	}
}

func TestRasterizeOutsidePartlyDeposits(t *testing.T) {
	g := mustGrid(t, 2, 2, 2, 2)
	dst := make([]float64, g.NumCells())
	// Half the rect is outside the grid: only half the total lands.
	g.RasterizeAdd(dst, Rect{X: 1, Y: 0, W: 2, H: 2}, 10)
	sum := 0.0
	for _, v := range dst {
		sum += v
	}
	if math.Abs(sum-5) > 1e-9 {
		t.Fatalf("sum = %v, want 5 (half inside)", sum)
	}
}

func TestCoverageFractionFullLayer(t *testing.T) {
	g := mustGrid(t, 8, 8, 10, 10)
	cov := make([]float64, g.NumCells())
	g.CoverageFraction(cov, Rect{X: 0, Y: 0, W: 10, H: 10})
	for i, v := range cov {
		if math.Abs(v-1) > 1e-9 {
			t.Fatalf("cell %d coverage = %v, want 1", i, v)
		}
	}
}

// Property: rasterizing any in-bounds rectangle conserves its total.
func TestRasterizeConservationProperty(t *testing.T) {
	g := mustGrid(t, 12, 10, 24, 20)
	f := func(x, y, w, h, p float64) bool {
		r := NewRect(mod(x, 20), mod(y, 16), 0.1+mod(w, 3.9), 0.1+mod(h, 3.9))
		total := 1 + mod(p, 100)
		dst := make([]float64, g.NumCells())
		g.RasterizeAdd(dst, r, total)
		sum := 0.0
		for _, v := range dst {
			sum += v
		}
		return math.Abs(sum-total) < 1e-6*total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func mod(v, m float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Abs(math.Mod(v, m))
}
