package thermal

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/obs"
)

// gridModel builds a model over the paper's 4x4 uniform-grid organization
// at the given resolution, with the power map driving it.
func gridModel(t testing.TB, nx, kernelThreads int) (*Model, []float64) {
	t.Helper()
	pl, err := floorplan.UniformGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Nx, cfg.Ny = nx, nx
	cfg.KernelThreads = kernelThreads
	m, err := NewModel(stack, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pmap := make([]float64, m.Grid().NumCells())
	for _, c := range pl.Chiplets {
		m.Grid().RasterizeAdd(pmap, c, 25)
	}
	return m, pmap
}

// forceStriping shrinks the stripe size and parallel gate so small test
// grids exercise multi-stripe scheduling, restoring both on cleanup.
func forceStriping(t testing.TB, stripeRows, minNodes int) {
	t.Helper()
	oldStripe, oldGate := kernelStripeRows, parallelMinNodes
	kernelStripeRows, parallelMinNodes = stripeRows, minNodes
	t.Cleanup(func() { kernelStripeRows, parallelMinNodes = oldStripe, oldGate })
}

// TestKernelSerialParallelEquality is the golden determinism test: the
// temperature field must be bit-identical across every kernel thread
// count — including more workers than stripes — at several grid sizes.
func TestKernelSerialParallelEquality(t *testing.T) {
	forceStriping(t, 8, 1)
	for _, nx := range []int{8, 16, 32} {
		serial, pmap := gridModel(t, nx, 1)
		ref, err := serial.Solve(pmap)
		if err != nil {
			t.Fatalf("nx=%d serial solve: %v", nx, err)
		}
		for _, threads := range []int{2, 3, 5, 64} {
			m, _ := gridModel(t, nx, threads)
			got, err := m.Solve(pmap)
			if err != nil {
				t.Fatalf("nx=%d threads=%d solve: %v", nx, threads, err)
			}
			if got.Iterations != ref.Iterations {
				t.Errorf("nx=%d threads=%d: %d iterations, serial took %d",
					nx, threads, got.Iterations, ref.Iterations)
			}
			for i := range ref.T {
				if got.T[i] != ref.T[i] { // bitwise, not approximate
					t.Fatalf("nx=%d threads=%d: T[%d] = %v, serial %v",
						nx, threads, i, got.T[i], ref.T[i])
				}
			}
		}
	}
}

// TestTransientSerialParallelEquality extends the golden contract to the
// shifted-diagonal transient stepper, which shares the striped kernels.
func TestTransientSerialParallelEquality(t *testing.T) {
	forceStriping(t, 8, 1)
	run := func(threads int) []float64 {
		m, pmap := gridModel(t, 16, threads)
		ts, err := m.NewTransientSolver(1e-3)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := ts.Step(pmap); err != nil {
				t.Fatalf("threads=%d step %d: %v", threads, i, err)
			}
		}
		out := make([]float64, len(ts.T))
		copy(out, ts.T)
		return out
	}
	ref := run(1)
	for _, threads := range []int{2, 7} {
		got := run(threads)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("threads=%d: T[%d] = %v, serial %v", threads, i, got[i], ref[i])
			}
		}
	}
}

// TestConcurrentSolves hammers one model from many goroutines (run under
// -race in CI): the workspace and solution pools must isolate concurrent
// solves, and every result must match the single-threaded reference
// bit-for-bit.
func TestConcurrentSolves(t *testing.T) {
	forceStriping(t, 16, 1)
	m, pmap := gridModel(t, 16, 2)
	ref, err := m.Solve(pmap)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				res, err := m.Solve(pmap)
				if err != nil {
					errs <- err
					return
				}
				for i := range ref.T {
					if res.T[i] != ref.T[i] {
						errs <- fmt.Errorf("T[%d] = %v, want %v", i, res.T[i], ref.T[i])
						return
					}
				}
				res.Recycle()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSolveWarmSteadyStateAllocBudget pins the zero-alloc claim: once the
// pools are primed, a warm solve allocates only the Result header and the
// pool boxing — no vectors.
func TestSolveWarmSteadyStateAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; budget holds only uninstrumented")
	}
	m, pmap := gridModel(t, 32, 1)
	prev, err := m.Solve(pmap)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		res, err := m.SolveWarm(pmap, prev)
		if err != nil {
			t.Fatal(err)
		}
		prev.Recycle()
		prev = res
	})
	// Result struct, pool interface boxing, span attributes; anything near
	// a vector's worth of allocations means a workspace leaked out of the
	// pool.
	if allocs > 10 {
		t.Fatalf("warm solve allocated %.0f objects/op, want <= 10", allocs)
	}
}

// TestSolveMultiCtx covers the satellite path: cancellation propagates and
// the solve runs under a "thermal.cg" span like SolveWarmCtx does.
func TestSolveMultiCtx(t *testing.T) {
	m, pmap := gridModel(t, 16, 1)
	chipLayer := m.ChipLayerOffset() / m.nCells
	perLayer := map[int][]float64{chipLayer: pmap}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.SolveMultiCtx(canceled, perLayer); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveMultiCtx with canceled context: got %v, want context.Canceled", err)
	}

	tr := obs.NewTrace("test", "kernel_test")
	ctx := obs.WithTrace(context.Background(), tr)
	res, err := m.SolveMultiCtx(ctx, perLayer)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakC() <= m.cfg.AmbientC {
		t.Errorf("peak %.2f not above ambient %.2f", res.PeakC(), m.cfg.AmbientC)
	}
	tr.Finish()
	found := false
	tr.Snapshot().Walk(func(sp *obs.SpanJSON) {
		if sp.Name == "thermal.cg" {
			found = true
		}
	})
	if !found {
		t.Error("SolveMultiCtx left no thermal.cg span in the trace")
	}

	// Single-layer multi must agree with the plain solve bit-for-bit (same
	// RHS, same cold start).
	ref, err := m.Solve(pmap)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.T {
		if res.T[i] != ref.T[i] {
			t.Fatalf("T[%d] = %v, Solve gives %v", i, res.T[i], ref.T[i])
		}
	}
}

// TestSolveMultiCtxRejectsBadInput keeps the validation of the old
// SolveMulti path intact after the ctx rewiring.
func TestSolveMultiCtxRejectsBadInput(t *testing.T) {
	m, pmap := gridModel(t, 16, 1)
	ctx := context.Background()
	if _, err := m.SolveMultiCtx(ctx, map[int][]float64{-1: pmap}); err == nil {
		t.Error("expected error for negative layer")
	}
	if _, err := m.SolveMultiCtx(ctx, map[int][]float64{99: pmap}); err == nil {
		t.Error("expected error for out-of-range layer")
	}
	if _, err := m.SolveMultiCtx(ctx, map[int][]float64{0: pmap[:3]}); err == nil {
		t.Error("expected error for short power map")
	}
	bad := make([]float64, len(pmap))
	bad[0] = -1
	if _, err := m.SolveMultiCtx(ctx, map[int][]float64{0: bad}); err == nil {
		t.Error("expected error for negative power")
	}
}

// TestRecycleTwice guards the at-most-once contract.
func TestRecycleTwice(t *testing.T) {
	m, pmap := gridModel(t, 16, 1)
	res, err := m.Solve(pmap)
	if err != nil {
		t.Fatal(err)
	}
	res.Recycle()
	res.Recycle() // must be a no-op, not a double pool put
	if res.T != nil {
		t.Error("Recycle left T non-nil")
	}
}

func benchSolveWarm(b *testing.B, nx, threads int) {
	m, pmap := gridModel(b, nx, threads)
	prev, err := m.Solve(pmap)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.SolveWarm(pmap, prev)
		if err != nil {
			b.Fatal(err)
		}
		prev.Recycle()
		prev = res
	}
}

func BenchmarkSolveWarmGrid64Serial(b *testing.B)   { benchSolveWarm(b, 64, 1) }
func BenchmarkSolveWarmGrid64Threads2(b *testing.B) { benchSolveWarm(b, 64, 2) }
func BenchmarkSolveWarmGrid64Threads4(b *testing.B) { benchSolveWarm(b, 64, 4) }

// BenchmarkSpmvStriped times one serial pass of the CSR SpMV at the
// production grid — the bandwidth-bound inner kernel of every CG
// iteration.
func BenchmarkSpmvStriped(b *testing.B) {
	m, _ := gridModel(b, 64, 1)
	x := make([]float64, m.nNodes)
	y := make([]float64, m.nNodes)
	for i := range x {
		x[i] = float64(i%7) * 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spmvStriped(1, m.diag, m.csr, y, x, nil, nil)
	}
}

// BenchmarkICApply times one IC(0) forward+backward substitution, the
// serial latency-bound half of a CG iteration.
func BenchmarkICApply(b *testing.B) {
	m, _ := gridModel(b, 64, 1)
	r := make([]float64, m.nNodes)
	z := make([]float64, m.nNodes)
	for i := range r {
		r[i] = float64(i%5) * 0.25
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.precond.apply(z, r)
	}
}
