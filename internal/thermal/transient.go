package thermal

import (
	"context"
	"fmt"
	"math"

	"chiplet25d/internal/floorplan"
)

// Transient simulation: the steady-state conductance network is augmented
// with per-node thermal capacitances (from the layers' volumetric heat
// capacities) and integrated with the unconditionally stable backward Euler
// scheme:
//
//	(C/Δt + G) · T(t+Δt) = C/Δt · T(t) + P(t)
//
// Each step solves the shifted SPD system with the same preconditioned
// conjugate gradient machinery as the steady state (the IC(0) factors are
// rebuilt once per TransientSolver for the shifted matrix). This supports
// computational-sprinting style studies: how long a configuration may
// exceed its steady-state envelope before reaching the threshold.

// TransientSolver integrates a model's temperature field over time with a
// fixed step. It owns a persistent solver workspace, so stepping allocates
// nothing; one TransientSolver must not be stepped concurrently.
type TransientSolver struct {
	m  *Model
	dt float64 // seconds

	capOverDt []float64 // C_i/Δt per node
	diag      []float64 // shifted diagonal: G_ii + C_i/Δt
	precond   *icPreconditioner
	ws        *workspace

	// T is the current temperature field (°C).
	T []float64
	// Elapsed is the simulated time (s).
	Elapsed float64
}

// NewTransientSolver prepares a transient integration with time step dt
// (seconds), starting from the ambient temperature.
func (m *Model) NewTransientSolver(dt float64) (*TransientSolver, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("thermal: time step must be positive, got %g", dt)
	}
	ts := &TransientSolver{m: m, dt: dt}
	ts.capOverDt = m.nodeCapacitances()
	for i := range ts.capOverDt {
		ts.capOverDt[i] /= dt
	}
	ts.diag = make([]float64, m.nNodes)
	for i, d := range m.diag {
		ts.diag[i] = d + ts.capOverDt[i]
	}
	// The shifted system shares the model's CSR off-diagonals; only the
	// diagonal and its IC(0) factorization differ.
	ts.precond = newICFromCSR(m.nNodes, ts.diag, m.csr)
	ts.ws = &workspace{
		r: make([]float64, m.nNodes), z: make([]float64, m.nNodes),
		p: make([]float64, m.nNodes), ap: make([]float64, m.nNodes),
		rhs:   make([]float64, m.nNodes),
		parts: make([]float64, numStripes(m.nNodes)),
	}
	ts.T = make([]float64, m.nNodes)
	for i := range ts.T {
		ts.T[i] = m.cfg.AmbientC
	}
	return ts, nil
}

// nodeCapacitances returns the lumped thermal capacitance (J/K) of every
// node: cell volume times volumetric heat capacity for package layers, and
// copper capacitance for the spreader and sink cells.
func (m *Model) nodeCapacitances() []float64 {
	caps := make([]float64, m.nNodes)
	cw := m.grid.CellW() * 1e-3
	ch := m.grid.CellH() * 1e-3
	area := cw * ch
	for l, layer := range m.stack.Layers {
		props := floorplan.RasterizeLayer(layer, m.grid)
		for c := 0; c < m.nCells; c++ {
			caps[l*m.nCells+c] = props[c].VolHeatCap * area * layer.ThicknessM
		}
	}
	// Spreader cells: 2x2 package-cell footprint; sink cells: 4x4. Copper
	// volumetric heat capacity.
	const cuCap = 3.55e6
	sprBase := m.nLayer * m.nCells
	for c := 0; c < m.nCells; c++ {
		caps[sprBase+c] = cuCap * 4 * area * floorplan.SpreaderThicknessM
		caps[m.sinkBase+c] = cuCap * 16 * area * floorplan.SinkThicknessM
	}
	return caps
}

// Reset returns the field to ambient and zero elapsed time.
func (ts *TransientSolver) Reset() {
	for i := range ts.T {
		ts.T[i] = ts.m.cfg.AmbientC
	}
	ts.Elapsed = 0
}

// SetState copies a previously solved steady-state field as the starting
// condition (e.g. idle equilibrium before a sprint).
func (ts *TransientSolver) SetState(res *Result) error {
	if len(res.T) != len(ts.T) {
		return fmt.Errorf("thermal: state has %d nodes, solver has %d", len(res.T), len(ts.T))
	}
	copy(ts.T, res.T)
	return nil
}

// Step advances the field by one time step under the given chip-layer power
// map (watts per cell, length Nx*Ny) and returns the new peak chip
// temperature.
func (ts *TransientSolver) Step(chipPower []float64) (float64, error) {
	m := ts.m
	if len(chipPower) != m.nCells {
		return 0, fmt.Errorf("thermal: power map has %d cells, model grid has %d", len(chipPower), m.nCells)
	}
	rhs := ts.ws.rhs
	for i := range rhs {
		rhs[i] = 0
	}
	chipBase := m.ChipLayerOffset()
	for c, p := range chipPower {
		if p < 0 {
			return 0, fmt.Errorf("thermal: negative power %g at cell %d", p, c)
		}
		rhs[chipBase+c] = p
	}
	m.addBoundaryRHS(rhs)
	for i := 0; i < m.nNodes; i++ {
		rhs[i] += ts.capOverDt[i] * ts.T[i]
	}
	sys := cgSystem{
		diag: ts.diag, mat: m.csr, pre: ts.precond,
		tol: m.cfg.Tolerance, maxIter: m.cfg.MaxIterations,
		threads: m.kernelThreads(),
	}
	if _, _, err := pcgSolve(context.Background(), &sys, ts.ws, ts.T, rhs); err != nil {
		return 0, fmt.Errorf("thermal: transient step: %w", err)
	}
	ts.Elapsed += ts.dt
	return ts.PeakC(), nil
}

// PeakC returns the current peak chip-layer temperature.
func (ts *TransientSolver) PeakC() float64 {
	off := ts.m.ChipLayerOffset()
	peak := math.Inf(-1)
	for _, t := range ts.T[off : off+ts.m.nCells] {
		if t > peak {
			peak = t
		}
	}
	return peak
}

// ChipT returns the current chip-layer temperatures (aliased).
func (ts *TransientSolver) ChipT() []float64 {
	off := ts.m.ChipLayerOffset()
	return ts.T[off : off+ts.m.nCells]
}

// TimeToThreshold integrates under a constant power map until the peak
// chip temperature reaches thresholdC or maxTime (s) elapses. It returns
// the crossing time (or maxTime if never crossed) and whether the
// threshold was hit.
func (ts *TransientSolver) TimeToThreshold(chipPower []float64, thresholdC, maxTime float64) (float64, bool, error) {
	if ts.PeakC() >= thresholdC {
		return 0, true, nil
	}
	for ts.Elapsed < maxTime {
		peak, err := ts.Step(chipPower)
		if err != nil {
			return 0, false, err
		}
		if peak >= thresholdC {
			return ts.Elapsed, true, nil
		}
	}
	return maxTime, false, nil
}
