package thermal

import (
	"math"
	"testing"

	"chiplet25d/internal/floorplan"
)

// TestPerturbLinksChangesSolution pins the hook's contract: a 1% link
// perturbation leaves CG convergent (the perturbed matrix is still SPD and
// the stale IC(0) still preconditions) while shifting the solution far
// beyond any solver tolerance, and the exact same seed reproduces the exact
// same perturbed field.
func TestPerturbLinksChangesSolution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nx, cfg.Ny = 16, 16
	stack, err := floorplan.BuildStack(floorplan.SingleChip())
	if err != nil {
		t.Fatal(err)
	}
	pmap := make([]float64, cfg.Nx*cfg.Ny)
	for i := range pmap {
		pmap[i] = 80.0 / float64(len(pmap))
	}
	solve := func(perturb bool) *Result {
		m, err := NewModel(stack, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if perturb {
			m.PerturbLinksForVerify(42, 0.01)
		}
		r, err := m.Solve(pmap)
		if err != nil {
			t.Fatalf("perturb=%v: %v", perturb, err)
		}
		return r
	}
	clean := solve(false)
	mutA := solve(true)
	mutB := solve(true)
	if d := math.Abs(clean.PeakC() - mutA.PeakC()); d < 1.0 {
		t.Errorf("perturbation moved the peak by only %g °C; the mutation hook is not biting", d)
	}
	if mutA.PeakC() != mutB.PeakC() {
		t.Errorf("same seed produced different perturbed peaks: %v vs %v", mutA.PeakC(), mutB.PeakC())
	}
	if clean.PeakC() <= cfg.AmbientC {
		t.Errorf("clean peak %g °C not above ambient", clean.PeakC())
	}
}
