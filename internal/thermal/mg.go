package thermal

import (
	"math"
	"sort"
	"sync"
)

// Geometric multigrid preconditioner for the CG solve.
//
// The thermal network is a stack of structured Nx x Ny sheets (the package
// layers, the spreader, the sink), so a geometric hierarchy is available
// for free. The stack is strongly anisotropic — vertical conductances
// dwarf lateral ones — so the hierarchy treats the two directions
// differently:
//
//   - The finest level keeps the full stack and smooths with a vertical
//     line smoother: each (x,y) column's package nodes are solved exactly
//     through a per-column tridiagonal LDL' factorization (stored z-major
//     so the sweep walks memory linearly), embedded in a block
//     Gauss–Seidel ordering with the spreader and sink as trailing point
//     rows. Point-wise smoothing cannot damp errors that are smooth along
//     the strong vertical direction; the line solve removes them in one
//     sweep.
//
//   - The first transfer collapses the vertical direction and halves the
//     lateral grid in a single fused operator (composeTransfers): the
//     strongly coupled bottom package block — found by zSplits, which
//     looks for weak vertical interfaces such as the TIM gap — aggregates
//     piecewise-constant onto one coarse sheet, the weakly attached upper
//     layers interpolate between that block and the spreader with
//     harmonic (two-sided Thomas-solve) weights, and the spreader and
//     sink pass through; the whole thing is then composed with a
//     cell-centered bilinear 2x lateral coarsening. Subsequent levels
//     fold the spreader into the sink (newFoldTransfer) and halve
//     laterally (newTransferOp) until an edge would drop below mgMinEdge.
//
// Coarse operators are Galerkin products Ac = P'·A·P assembled in the same
// CSR layout the fine solve sweeps, then truncated with diagonal
// compensation (see mgDropTol) so the near-null smooth modes survive
// dropping. Coarse levels smooth with plain Gauss–Seidel (a forward sweep
// before the coarse correction, a backward sweep after), and the coarsest
// system (a few hundred nodes) is solved directly by a dense Cholesky
// factored once at model build. One V(1,1) cycle of that hierarchy is the
// preconditioner application; it converges the production 64x64 stack in
// 7 CG iterations vs ~80 for IC(0).
//
// Why this beats IC(0) here: the convection boundary is a weak anchor, so
// the conductance matrix has near-null smooth modes that IC(0)-PCG spends
// many iterations resolving on a 64x64 stack. The coarse levels solve
// exactly those modes.
//
// Determinism: the parallel vector stages of the V-cycle (residual,
// restriction, prolongation) run through the striped kernel primitives of
// kernel.go — fixed stripes, gather-only loops, writes confined to a
// stripe's own rows — while the smoother sweeps and the coarsest direct
// solve are serial loops in fixed row order (exactly like the IC(0)
// triangular solves they replace). The preconditioner therefore inherits
// the kernel's contract: bit-identical results at every kernel thread
// count.
//
// Symmetry: the post-smoother (backward sweep) is the adjoint of the
// pre-smoother (forward sweep), restriction is the transpose of
// prolongation, and the coarse operators are Galerkin — so the V(1,1)
// cycle is a symmetric positive-definite operator, a valid CG
// preconditioner.

const (
	// PrecondIC0 selects the zero-fill incomplete Cholesky preconditioner
	// (the package default; the empty string means the same).
	PrecondIC0 = "ic0"
	// PrecondMG selects the geometric multigrid V-cycle preconditioner.
	// Models whose grid cannot be coarsened (an edge below 2*mgMinEdge
	// cells) fall back to IC(0); see Model.PreconditionerName.
	PrecondMG = "mg"
)

// mgMinEdge is the smallest sheet edge the coarsener will produce:
// coarsening stops when halving would drop Nx or Ny below mgMinEdge.
const mgMinEdge = 4

// mgDropTol and mgDropTolDeep are the Galerkin truncation thresholds:
// coarse entries with |a_ij| below the threshold times the smaller of the
// two incident diagonals are dropped with diagonal compensation (see
// truncateCSR). Bilinear prolongation smears shifted cross-sheet nesting
// links into long tails of near-zero couplings — without truncation the
// deeper operators carry ~26 entries per row (4-5x the fine operator) and
// their sweeps dominate the cycle. Deep levels (the lateral chain) tolerate
// a much coarser threshold: the smeared couplings there are weak by
// construction, and dropping them with compensation perturbs only modes the
// level's own smoother resolves.
const (
	mgDropTol     = 1e-3
	mgDropTolDeep = 1e-2
)

// cgPre is what the CG iteration needs from a preconditioner: overwrite z
// with M~·r and return the fused inner product sum(r[i]*z[i]).
type cgPre interface {
	precondApply(threads int, ws *workspace, z, r []float64) float64
}

// precondApply adapts the IC(0) preconditioner to the cgPre interface. The
// triangular sweeps are inherently sequential, so the thread count and
// workspace are unused.
func (ic *icPreconditioner) precondApply(_ int, _ *workspace, z, r []float64) float64 {
	return ic.apply(z, r)
}

// transferOp is one inter-grid transfer: the cell-centered bilinear
// prolongation P stored as CSR over fine rows (ascending columns, at most
// four entries per row), plus its counting-sorted transpose so restriction
// (P') is a gather over coarse rows — no scattered writes, which is what
// lets both directions run striped without breaking determinism.
type transferOp struct {
	nFine, nCoarse int

	rowPtr []int32
	colIdx []int32
	w      []float64

	tPtr []int32
	tIdx []int32
	tW   []float64
}

// axisWeights returns the 1D cell-centered bilinear weights for fine index
// f over a coarse axis of cn cells, in ascending coarse-index order. An
// interior fine cell sees its enclosing coarse cell with weight 3/4 and
// the nearest adjacent one with 1/4; at the sheet boundary the outside
// neighbor clamps onto the enclosing cell, merging to weight 1 — row sums
// stay exactly 1, so prolongation reproduces constants.
func axisWeights(f, cn int) (idx [2]int, w [2]float64, n int) {
	c0 := f / 2
	c1 := c0 - 1
	if f&1 == 1 {
		c1 = c0 + 1
	}
	if c1 < 0 || c1 >= cn {
		return [2]int{c0}, [2]float64{1}, 1
	}
	if c1 < c0 {
		return [2]int{c1, c0}, [2]float64{0.25, 0.75}, 2
	}
	return [2]int{c0, c1}, [2]float64{0.75, 0.25}, 2
}

// mgZSplitTol is the aggregation-strength threshold for the vertical
// coarsening: a package interface whose coupling, relative to the larger
// of the two incident diagonals' shares, stays below this value separates
// layer blocks that hold independent laterally-smooth error — aggregating
// across it produces a coarse space that cannot represent those modes (the
// error propagator keeps an O(0.8) mode and CG pays for it in iterations).
// Such interfaces split the aggregation into per-block coarse sheets.
const mgZSplitTol = 0.6

// zSplits inspects the assembled matrix and returns the package interfaces
// (indices l meaning "between layer l and l+1") too weak to aggregate
// across. Strength of an interface at one column is the vertical link over
// the incident diagonal, taken from whichever side follows the other more
// strongly (one-sided following suffices for aggregation: the weak side's
// error is slaved to the strong side's). The median over columns makes the
// decision robust to floorplan material variation.
func zSplits(nLayer, nc int, diag []float64, mat *csrMatrix) []int {
	var splits []int
	ratios := make([]float64, nc)
	for l := 0; l < nLayer-1; l++ {
		for c := 0; c < nc; c++ {
			i := l*nc + c
			j := i + nc
			v := -csrAt(mat, i, j)
			s := v / diag[i]
			if r := v / diag[j]; r > s {
				s = r
			}
			ratios[c] = s
		}
		sort.Float64s(ratios)
		if ratios[nc/2] < mgZSplitTol {
			splits = append(splits, l)
		}
	}
	return splits
}

// newZAggTransfer builds the first transfer of the hierarchy, collapsing
// the package vertically in one step. Layer blocks are delimited by the
// weak interfaces zSplits found: the bottom block — connected to the
// spreader only through weak links, so its laterally-smooth error is
// independent — aggregates onto its own coarse sheet with
// piecewise-constant weights (within a block the vertical conductances
// dominate, so after the line relaxation the error is constant down the
// block and a constant-in-z space captures it exactly). All other blocks
// are slaved to the spreader through strong coupling and fold directly
// into its center block with nested bilinear weights, the same geometry
// newFoldTransfer uses. The single transfer keeps every Galerkin link as
// local as the fine operator: in-aggregate vertical links cancel outright
// and fold links land on aligned coarse cells.
func newZAggTransfer(nLayer, nx, ny int, splits []int, mat *csrMatrix) *transferOp {
	nc := nx * ny
	nPkg := nLayer * nc
	group := make([]int, nLayer)
	g := 0
	for l, s := 0, 0; l < nLayer; l++ {
		group[l] = g
		if s < len(splits) && splits[s] == l {
			g++
			s++
		}
	}
	// Layers in the bottom block (group 0) aggregate onto their own coarse
	// sheet when the aggregation is split; all layers above the first split
	// are slaved between that block and the spreader.
	nKeep, s0 := 0, 0
	if len(splits) > 0 {
		nKeep, s0 = 1, splits[0]+1
	}
	// Harmonic vertical weights for the slaved layers: each slaved column
	// segment solves its own vertical-conductance tridiagonal with unit
	// boundary values at the kept block below (weight alpha) and the
	// spreader above (weight 1-alpha). The error the line smoother leaves
	// on a slaved layer is not the spreader's value replicated — the power
	// iteration over the error propagator shows it interpolating between
	// the bottom block's amplitude and the spreader's — and the harmonic
	// profile is exactly the shape a column in equilibrium takes between
	// those two anchors, whatever the interface strengths. Lateral terms
	// are excluded from the tridiagonal so alpha + beta = 1 per layer and
	// the transfer still reproduces constants exactly. With no split there
	// is no lower anchor and the solve degenerates to alpha = 0 — the
	// plain slaved fold.
	nSlaved := nLayer - s0
	alpha := make([]float64, nSlaved*nc)
	for c := 0; c < nc; c++ {
		var d, low, ya, ys [16]float64
		for k := 0; k < nSlaved; k++ {
			l := s0 + k
			i := l*nc + c
			if l > 0 {
				low[k] = -csrAt(mat, i, i-nc)
			}
			if l < nLayer-1 {
				d[k] = low[k] - csrAt(mat, i, i+nc)
			} else {
				up := 0.0
				for idx := mat.rowPtr[i]; idx < mat.rowPtr[i+1]; idx++ {
					if int(mat.colIdx[idx]) >= nPkg {
						up -= mat.vals[idx]
					}
				}
				d[k] = low[k] + up
				ys[k] = up
			}
		}
		if nKeep == 1 {
			ya[0] = low[0]
		}
		// Thomas elimination on the symmetric tridiagonal, two right-hand
		// sides at once.
		for k := 1; k < nSlaved; k++ {
			m := low[k] / d[k-1]
			d[k] -= m * low[k]
			ya[k] += m * ya[k-1]
			ys[k] += m * ys[k-1]
		}
		ya[nSlaved-1] /= d[nSlaved-1]
		for k := nSlaved - 2; k >= 0; k-- {
			ya[k] = (ya[k] + low[k+1]*ya[k+1]) / d[k]
		}
		for k := 0; k < nSlaved; k++ {
			alpha[k*nc+c] = ya[k]
		}
	}
	nCoarseSheets := nKeep + 2
	t := &transferOp{nFine: (nLayer + 2) * nc, nCoarse: nCoarseSheets * nc}
	t.rowPtr = make([]int32, t.nFine+1)
	t.colIdx = make([]int32, 0, t.nFine+4*nLayer*nc)
	t.w = make([]float64, 0, t.nFine+4*nLayer*nc)
	sprBase := int32(nKeep * nc)
	for i := 0; i < t.nFine; i++ {
		sheet := i / nc
		c := i % nc
		switch {
		case sheet < nLayer && nKeep == 1 && group[sheet] == 0:
			t.colIdx = append(t.colIdx, int32(c))
			t.w = append(t.w, 1)
		case sheet < nLayer:
			a := alpha[(sheet-s0)*nc+c]
			if a != 0 {
				t.colIdx = append(t.colIdx, int32(c))
				t.w = append(t.w, a)
			}
			beta := 1 - a
			fy, fx := c/nx, c%nx
			cys, wys, nwy := axisWeights(fy+ny/2, ny)
			cxs, wxs, nwx := axisWeights(fx+nx/2, nx)
			for yi := 0; yi < nwy; yi++ {
				for xi := 0; xi < nwx; xi++ {
					t.colIdx = append(t.colIdx, sprBase+int32(cys[yi]*nx+cxs[xi]))
					t.w = append(t.w, beta*wys[yi]*wxs[xi])
				}
			}
		default: // spreader, sink: pass through
			t.colIdx = append(t.colIdx, sprBase+int32(sheet-nLayer)*int32(nc)+int32(c))
			t.w = append(t.w, 1)
		}
		t.rowPtr[i+1] = int32(len(t.colIdx))
	}
	t.buildTranspose()
	return t
}

// newFoldTransfer folds fine sheets nSkip..nSkip+nFold-1 into fine sheet
// nSkip+nFold (the first nSkip sheets and the sheets above the target pass
// through unchanged), exploiting the
// stack's nesting geometry: the spreader (and sink) sit at twice the lateral
// pitch of the sheet below with the finer sheet centered on them, so the
// finer sheet's cells nest exactly inside the center block of the coarser
// one — cell (ix,iy) lies inside cell ((ix+nx/2)/2, (iy+ny/2)/2), the same
// map the model's vertical nesting links use. The folded sheets' rows interpolate
// bilinearly over that aligned sub-grid (a +nx/2 index pre-shift feeds the
// standard cell-centered weights and never clamps, since the target indices
// stay interior); the remaining sheets pass through unchanged. Because the
// fold follows the physical nesting, the vertical links between sheet 0 and
// sheet 1 connect nodes whose transfer entries land on the same coarse
// cells — the Galerkin product stays as local as the fine operator instead
// of smearing the shifted links into wide stencils.
func newFoldTransfer(nSkip, nFold, nSheets, nx, ny int) *transferOp {
	nc := nx * ny
	t := &transferOp{nFine: nSheets * nc, nCoarse: (nSheets - nFold) * nc}
	t.rowPtr = make([]int32, t.nFine+1)
	t.colIdx = make([]int32, 0, (4*nFold+nSheets-nFold)*nc)
	t.w = make([]float64, 0, (4*nFold+nSheets-nFold)*nc)
	for i := 0; i < nSkip*nc; i++ {
		t.colIdx = append(t.colIdx, int32(i))
		t.w = append(t.w, 1)
		t.rowPtr[i+1] = int32(len(t.colIdx))
	}
	tgt := int32(nSkip * nc) // the fold target sheet's coarse base
	for s := nSkip; s < nSkip+nFold; s++ {
		for fy := 0; fy < ny; fy++ {
			cys, wys, nwy := axisWeights(fy+ny/2, ny)
			for fx := 0; fx < nx; fx++ {
				cxs, wxs, nwx := axisWeights(fx+nx/2, nx)
				for yi := 0; yi < nwy; yi++ {
					for xi := 0; xi < nwx; xi++ {
						t.colIdx = append(t.colIdx, tgt+int32(cys[yi]*nx+cxs[xi]))
						t.w = append(t.w, wys[yi]*wxs[xi])
					}
				}
				t.rowPtr[s*nc+fy*nx+fx+1] = int32(len(t.colIdx))
			}
		}
	}
	for i := (nSkip + nFold) * nc; i < t.nFine; i++ {
		t.colIdx = append(t.colIdx, int32(i-nFold*nc))
		t.w = append(t.w, 1)
		t.rowPtr[i+1] = int32(len(t.colIdx))
	}
	t.buildTranspose()
	return t
}

// newTransferOp builds the prolongation from an nSheets-sheet stack of
// (fnx/2 x fny/2) coarse sheets to (fnx x fny) fine sheets. Sheets are
// independent blocks: inter-sheet (vertical) coupling is left entirely to
// the Galerkin product, which folds the fine vertical links into coarse
// ones algebraically.
func newTransferOp(nSheets, fnx, fny int) *transferOp {
	cnx, cny := fnx/2, fny/2
	fnc, cnc := fnx*fny, cnx*cny
	t := &transferOp{nFine: nSheets * fnc, nCoarse: nSheets * cnc}
	t.rowPtr = make([]int32, t.nFine+1)
	t.colIdx = make([]int32, 0, 4*t.nFine)
	t.w = make([]float64, 0, 4*t.nFine)
	for s := 0; s < nSheets; s++ {
		cBase := int32(s * cnc)
		for fy := 0; fy < fny; fy++ {
			cys, wys, ny := axisWeights(fy, cny)
			for fx := 0; fx < fnx; fx++ {
				cxs, wxs, nx := axisWeights(fx, cnx)
				for yi := 0; yi < ny; yi++ {
					for xi := 0; xi < nx; xi++ {
						t.colIdx = append(t.colIdx, cBase+int32(cys[yi]*cnx+cxs[xi]))
						t.w = append(t.w, wys[yi]*wxs[xi])
					}
				}
				t.rowPtr[s*fnc+fy*fnx+fx+1] = int32(len(t.colIdx))
			}
		}
	}
	t.buildTranspose()
	return t
}

// buildTranspose counting-sorts the prolongation entries by coarse row so
// restriction can gather.
func (t *transferOp) buildTranspose() {
	t.tPtr = make([]int32, t.nCoarse+1)
	for _, c := range t.colIdx {
		t.tPtr[c+1]++
	}
	for j := 0; j < t.nCoarse; j++ {
		t.tPtr[j+1] += t.tPtr[j]
	}
	t.tIdx = make([]int32, len(t.colIdx))
	t.tW = make([]float64, len(t.w))
	off := make([]int32, t.nCoarse)
	copy(off, t.tPtr[:t.nCoarse])
	for i := 0; i < t.nFine; i++ {
		for e := t.rowPtr[i]; e < t.rowPtr[i+1]; e++ {
			j := t.colIdx[e]
			q := off[j]
			off[j]++
			t.tIdx[q] = int32(i)
			t.tW[q] = t.w[e]
		}
	}
}

// galerkinCoarse assembles Ac = P'·A·P row by row: for coarse row jc it
// walks the fine rows restricting into jc (the transpose of P), scatters
// each fine row of A through P into a dense accumulator, and compacts the
// touched columns into the same split diag + off-diagonal CSR layout the
// fine operator uses, so the coarse SpMV reuses spmvStriped unchanged.
// composeTransfers returns the product transfer a then b: fine rows of a
// mapped through b's coarsening, so two geometric coarsenings collapse into
// a single level. The hierarchy uses it to fuse the vertical aggregation
// with the first lateral halving — the intermediate grid would cost a full
// smooth-residual-transfer pass per cycle while contributing nothing the
// combined coarse space does not already span (the line smoother leaves
// laterally-smooth error, which survives a 2x lateral coarsening).
func composeTransfers(a, b *transferOp) *transferOp {
	t := &transferOp{nFine: a.nFine, nCoarse: b.nCoarse}
	t.rowPtr = make([]int32, t.nFine+1)
	mark := make([]int32, b.nCoarse)
	for i := range mark {
		mark[i] = -1
	}
	acc := make([]float64, b.nCoarse)
	touched := make([]int32, 0, 16)
	for i := 0; i < t.nFine; i++ {
		touched = touched[:0]
		for e := a.rowPtr[i]; e < a.rowPtr[i+1]; e++ {
			k, wa := a.colIdx[e], a.w[e]
			for f := b.rowPtr[k]; f < b.rowPtr[k+1]; f++ {
				j := b.colIdx[f]
				if mark[j] != int32(i) {
					mark[j] = int32(i)
					acc[j] = 0
					touched = append(touched, j)
				}
				acc[j] += wa * b.w[f]
			}
		}
		sort.Slice(touched, func(p, q int) bool { return touched[p] < touched[q] })
		for _, j := range touched {
			t.colIdx = append(t.colIdx, j)
			t.w = append(t.w, acc[j])
		}
		t.rowPtr[i+1] = int32(len(t.colIdx))
	}
	t.buildTranspose()
	return t
}

func galerkinCoarse(fDiag []float64, fMat *csrMatrix, t *transferOp) ([]float64, *csrMatrix) {
	nc := t.nCoarse
	cDiag := make([]float64, nc)
	rowPtr := make([]int32, nc+1)
	var colIdx []int32
	var vals []float64
	acc := make([]float64, nc)
	touched := make([]bool, nc)
	cols := make([]int32, 0, 64)

	scatter := func(k int32, scale float64) {
		end := t.rowPtr[k+1]
		for e := t.rowPtr[k]; e < end; e++ {
			lc := t.colIdx[e]
			if !touched[lc] {
				touched[lc] = true
				cols = append(cols, lc)
			}
			acc[lc] += scale * t.w[e]
		}
	}

	for jc := 0; jc < nc; jc++ {
		cols = cols[:0]
		for q := t.tPtr[jc]; q < t.tPtr[jc+1]; q++ {
			i := t.tIdx[q]
			wi := t.tW[q]
			scatter(i, wi*fDiag[i])
			end := fMat.rowPtr[i+1]
			for idx := fMat.rowPtr[i]; idx < end; idx++ {
				scatter(fMat.colIdx[idx], wi*fMat.vals[idx])
			}
		}
		sort.Slice(cols, func(a, b int) bool { return cols[a] < cols[b] })
		for _, lc := range cols {
			if int(lc) == jc {
				cDiag[jc] = acc[lc]
			} else {
				colIdx = append(colIdx, lc)
				vals = append(vals, acc[lc])
			}
			acc[lc] = 0
			touched[lc] = false
		}
		rowPtr[jc+1] = int32(len(colIdx))
	}
	return cDiag, &csrMatrix{n: nc, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
}

// symmetrizeCSR averages every (i,j)/(j,i) pair in place. The Galerkin
// product is symmetric in exact arithmetic but its floating-point
// accumulation order is not, and CG assumes an exactly symmetric operator;
// the sparsity pattern is symmetric by construction, so each mirror entry
// is found by binary search within its (column-sorted) row.
func symmetrizeCSR(mat *csrMatrix) {
	for i := 0; i < mat.n; i++ {
		end := mat.rowPtr[i+1]
		for idx := mat.rowPtr[i]; idx < end; idx++ {
			j := mat.colIdx[idx]
			if int(j) <= i {
				continue
			}
			lo, hi := mat.rowPtr[j], mat.rowPtr[j+1]
			for lo < hi {
				mid := (lo + hi) / 2
				if mat.colIdx[mid] < int32(i) {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < mat.rowPtr[j+1] && mat.colIdx[lo] == int32(i) {
				v := 0.5 * (mat.vals[idx] + mat.vals[lo])
				mat.vals[idx] = v
				mat.vals[lo] = v
			}
		}
	}
}

// truncateCSR drops every symmetric off-diagonal pair whose magnitude is
// below mgDropTol times the smaller incident diagonal, compensating both
// diagonals by the dropped value (d_i += v, d_j += v). Dropping a pair
// with compensation perturbs the operator by v·(e_i−e_j)(e_i−e_j)', which
// for the positive entries a Galerkin product picks up adds a PSD term
// (always safe) and for negative entries removes a conductance link whose
// magnitude the threshold bounds to a small fraction of the diagonal — the
// operator stays comfortably positive definite, and the coarsest-level
// Cholesky verifies that outright. Thresholds are taken against a snapshot
// of the pre-compensation diagonal so the drop decision is symmetric.
// diag is adjusted in place; the returned matrix replaces mat.
func truncateCSR(diag []float64, mat *csrMatrix, tol float64) *csrMatrix {
	n := mat.n
	ref := make([]float64, n)
	copy(ref, diag)
	rowPtr := make([]int32, n+1)
	colIdx := make([]int32, 0, len(mat.colIdx))
	vals := make([]float64, 0, len(mat.vals))
	for i := 0; i < n; i++ {
		end := mat.rowPtr[i+1]
		for idx := mat.rowPtr[i]; idx < end; idx++ {
			j := int(mat.colIdx[idx])
			v := mat.vals[idx]
			d := ref[i]
			if ref[j] < d {
				d = ref[j]
			}
			if math.Abs(v) <= tol*d {
				if j > i { // compensate once per pair
					diag[i] += v
					diag[j] += v
				}
				continue
			}
			colIdx = append(colIdx, int32(j))
			vals = append(vals, v)
		}
		rowPtr[i+1] = int32(len(colIdx))
	}
	return &csrMatrix{n: n, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
}

// mgLevel is one grid of the hierarchy (excluding the coarsest, which is
// held by the direct solver instead).
type mgLevel struct {
	n    int
	diag []float64
	dinv []float64
	mat  *csrMatrix
	down *transferOp   // transfer to the next-coarser level
	line *lineSmoother // level 0 of a multi-layer stack; nil = point GS
}

// finishLevel precomputes the reciprocal diagonal the Gauss–Seidel sweeps
// multiply by (an FP divide in a loop-carried chain costs ~10x a multiply,
// same reasoning as the IC(0) solves).
func finishLevel(lv *mgLevel) {
	lv.dinv = make([]float64, lv.n)
	for i := 0; i < lv.n; i++ {
		lv.dinv[i] = 1 / lv.diag[i]
	}
}

// lineSmoother is the level-0 smoother for the full stack: block
// Gauss–Seidel whose blocks are the vertical package columns (solved
// exactly as tridiagonal systems via a precomputed LDL' factorization),
// followed by the spreader and sink rows as point blocks. Point smoothing
// stalls on this stack because the package's vertical interfaces span three
// orders of magnitude in strength — some layers follow the die, one
// follows the spreader — so no single sweep direction relaxes every
// column mode, and the column-constant coarse space of the z-aggregation
// misses whatever survives. An exact column solve eliminates all
// vertically-varying error in one sweep no matter how the interface
// strengths fall, leaving exactly the laterally-smooth, column-constant
// error the z-aggregated coarse grid is built to correct.
type lineSmoother struct {
	nLayer, nc int
	nPkg       int // nLayer*nc: first spreader row
	// The column sweeps run in a z-major scratch layout — node (l, c) at
	// index c*nLayer+l — because in the model's sheet-major layout the six
	// package entries of one column sit exactly 8*nx*ny bytes apart: a
	// large power-of-2 stride that maps every layer of a column (plus the
	// matching right-hand-side reads) onto a single L1 set and thrashes
	// it. In z-major order a column is contiguous, its lateral neighbors
	// are a few cache lines away, and the factors and matrix entries
	// below stream sequentially. mz holds the unit-bidiagonal elimination
	// multipliers (l >= 1) and dinvz the inverse LDL' pivots, both
	// z-major.
	mz, dinvz []float64
	// lbz/ubz are the package rows of lb/ub in z-major order with
	// pre-translated column indices; uez holds ub's package-to-spreader
	// entries separately, indexed into the sheet-major iterate (only the
	// backward sweep needs them — on the forward sweep from zero the
	// spreader is a later block and still zero).
	lbzPtr, lbzIdx []int32
	lbzVal         []float64
	ubzPtr, ubzIdx []int32
	ubzVal         []float64
	uezPtr, uezIdx []int32
	uezVal         []float64
	// lb and ub split the level's off-diagonal operator by block order:
	// lb holds couplings to earlier blocks (package columns to the left,
	// or rows below for the point blocks), ub to later ones. In-block
	// vertical links are in neither — the LDL' solve owns them. The split
	// is built once so the sweeps and the post-smoothing residual stream
	// exactly the entries they need, with no per-entry block test and no
	// gathers of known-zero values.
	lb, ub *csrMatrix
}

// csrAt returns A[i][j] from the off-diagonal CSR (0 when absent), by
// binary search within row i's sorted columns.
func csrAt(mat *csrMatrix, i, j int) float64 {
	lo, hi := mat.rowPtr[i], mat.rowPtr[i+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if mat.colIdx[mid] < int32(j) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < mat.rowPtr[i+1] && mat.colIdx[lo] == int32(j) {
		return mat.vals[lo]
	}
	return 0
}

func newLineSmoother(nLayer, nc int, diag []float64, mat *csrMatrix) *lineSmoother {
	ls := &lineSmoother{nLayer: nLayer, nc: nc, nPkg: nLayer * nc}
	ls.mz = make([]float64, ls.nPkg)
	ls.dinvz = make([]float64, ls.nPkg)
	ls.lb, ls.ub = ls.splitBlocks(mat)
	for c := 0; c < nc; c++ {
		zi := c * nLayer
		d := diag[c]
		ls.dinvz[zi] = 1 / d
		for l := 1; l < nLayer; l++ {
			v := csrAt(mat, l*nc+c, (l-1)*nc+c) // vertical in-column link
			mult := v / d
			ls.mz[zi+l] = mult
			d = diag[l*nc+c] - mult*v
			ls.dinvz[zi+l] = 1 / d
		}
	}
	// Re-key the package rows of the split matrices into the z-major
	// sweep streams.
	ls.lbzPtr = make([]int32, ls.nPkg+1)
	ls.ubzPtr = make([]int32, ls.nPkg+1)
	ls.uezPtr = make([]int32, ls.nPkg+1)
	for c := 0; c < nc; c++ {
		for l := 0; l < nLayer; l++ {
			i := l*nc + c
			zi := c*nLayer + l
			for idx := ls.lb.rowPtr[i]; idx < ls.lb.rowPtr[i+1]; idx++ {
				j := int(ls.lb.colIdx[idx])
				ls.lbzIdx = append(ls.lbzIdx, int32((j%nc)*nLayer+j/nc))
				ls.lbzVal = append(ls.lbzVal, ls.lb.vals[idx])
			}
			for idx := ls.ub.rowPtr[i]; idx < ls.ub.rowPtr[i+1]; idx++ {
				j := int(ls.ub.colIdx[idx])
				if j < ls.nPkg {
					ls.ubzIdx = append(ls.ubzIdx, int32((j%nc)*nLayer+j/nc))
					ls.ubzVal = append(ls.ubzVal, ls.ub.vals[idx])
				} else {
					ls.uezIdx = append(ls.uezIdx, int32(j))
					ls.uezVal = append(ls.uezVal, ls.ub.vals[idx])
				}
			}
			ls.lbzPtr[zi+1] = int32(len(ls.lbzIdx))
			ls.ubzPtr[zi+1] = int32(len(ls.ubzIdx))
			ls.uezPtr[zi+1] = int32(len(ls.uezIdx))
		}
	}
	return ls
}

// packZ transposes the package part of a sheet-major vector into z-major
// scratch; unpackZ is the inverse. Each is one strided pass over the
// package — two orders of magnitude cheaper than letting every gather of
// the column sweeps pay the stride instead.
func (ls *lineSmoother) packZ(dst, src []float64) {
	nLayer, nc := ls.nLayer, ls.nc
	for l := 0; l < nLayer; l++ {
		sheet := src[l*nc : (l+1)*nc]
		for c, v := range sheet {
			dst[c*nLayer+l] = v
		}
	}
}

func (ls *lineSmoother) unpackZ(dst, src []float64) {
	nLayer, nc := ls.nLayer, ls.nc
	for l := 0; l < nLayer; l++ {
		sheet := dst[l*nc : (l+1)*nc]
		for c := range sheet {
			sheet[c] = src[c*nLayer+l]
		}
	}
}

// splitBlocks partitions the off-diagonal operator into lb (couplings to
// earlier blocks in the sweep order) and ub (later blocks). A package
// node's block is its column index; spreader and sink rows follow as point
// blocks in row order, so for them the split is the plain strict triangle.
// A package row's in-column vertical links (j == i±nc inside the package —
// lateral neighbors live on the same sheet and the spreader link uses the
// nesting map, so only a top-layer cell whose nested spreader index lands
// on its own column can collide, and that j >= nPkg entry belongs in ub)
// go to neither side: the column's LDL' solve owns them.
func (ls *lineSmoother) splitBlocks(mat *csrMatrix) (lb, ub *csrMatrix) {
	n := mat.n
	nc, nPkg := ls.nc, ls.nPkg
	lb = &csrMatrix{n: n, rowPtr: make([]int32, n+1)}
	ub = &csrMatrix{n: n, rowPtr: make([]int32, n+1)}
	for i := 0; i < n; i++ {
		end := mat.rowPtr[i+1]
		for idx := mat.rowPtr[i]; idx < end; idx++ {
			j := int(mat.colIdx[idx])
			v := mat.vals[idx]
			var side *csrMatrix
			switch {
			case i < nPkg && j < nPkg:
				switch {
				case j%nc < i%nc:
					side = lb
				case j%nc > i%nc:
					side = ub
				default:
					continue // in-column vertical link
				}
			case j < i:
				side = lb
			default:
				side = ub
			}
			side.colIdx = append(side.colIdx, int32(j))
			side.vals = append(side.vals, v)
		}
		lb.rowPtr[i+1] = int32(len(lb.colIdx))
		ub.rowPtr[i+1] = int32(len(ub.colIdx))
	}
	return lb, ub
}

// gatherRow accumulates −Σ a_ij·x_j over row i of one split matrix.
func gatherRow(mat *csrMatrix, i int, x []float64) float64 {
	s := 0.0
	end := mat.rowPtr[i+1]
	for idx := mat.rowPtr[i]; idx < end; idx++ {
		s -= mat.vals[idx] * x[mat.colIdx[idx]]
	}
	return s
}

// sweepColumn solves column c's tridiagonal block exactly against the
// z-major right-hand side and current iterate: gather, then the
// precomputed LDL' substitutions. On the forward sweep from zero only the
// earlier-column couplings (lbz) carry non-zeros; the backward sweep adds
// the later columns (ubz) and the spreader entries (uez, sheet-major x).
func (ls *lineSmoother) sweepColumn(c int, withUpper bool, xz, bz, x []float64) {
	nLayer := ls.nLayer
	zi := c * nLayer
	var y [16]float64
	for l := 0; l < nLayer; l++ {
		s := bz[zi+l]
		for e := ls.lbzPtr[zi+l]; e < ls.lbzPtr[zi+l+1]; e++ {
			s -= ls.lbzVal[e] * xz[ls.lbzIdx[e]]
		}
		if withUpper {
			for e := ls.ubzPtr[zi+l]; e < ls.ubzPtr[zi+l+1]; e++ {
				s -= ls.ubzVal[e] * xz[ls.ubzIdx[e]]
			}
			for e := ls.uezPtr[zi+l]; e < ls.uezPtr[zi+l+1]; e++ {
				s -= ls.uezVal[e] * x[ls.uezIdx[e]]
			}
		}
		y[l] = s
	}
	for l := 1; l < nLayer; l++ {
		y[l] -= ls.mz[zi+l] * y[l-1]
	}
	for l := 0; l < nLayer; l++ {
		y[l] *= ls.dinvz[zi+l]
	}
	xz[zi+nLayer-1] = y[nLayer-1]
	for l := nLayer - 2; l >= 0; l-- {
		y[l] -= ls.mz[zi+l+1] * y[l+1]
		xz[zi+l] = y[l]
	}
}

// forwardZero runs one forward block Gauss–Seidel sweep from a zero
// iterate: package columns in ascending column order (in the z-major
// scratch — no explicit zeroing needed, the gathers only touch columns the
// sweep already wrote), then spreader and sink rows pointwise in ascending
// row order. bz keeps the transposed right-hand side for the matching
// backward sweep of the same cycle.
func (ls *lineSmoother) forwardZero(pointDinv, bz, xz, x, b []float64) {
	ls.packZ(bz, b)
	for c := 0; c < ls.nc; c++ {
		ls.sweepColumn(c, false, xz, bz, nil)
	}
	ls.unpackZ(x, xz)
	n := len(x)
	for i := ls.nPkg; i < n; i++ {
		x[i] = (b[i] + gatherRow(ls.lb, i, x)) * pointDinv[i]
	}
}

// backward runs the adjoint sweep — reversed block order, same exact block
// solves — making the level-0 smoothing pair symmetric. bz must still hold
// forwardZero's transposed right-hand side.
func (ls *lineSmoother) backward(pointDinv, bz, xz, x, b []float64) {
	n := len(x)
	for i := n - 1; i >= ls.nPkg; i-- {
		x[i] = (b[i] + gatherRow(ls.lb, i, x) + gatherRow(ls.ub, i, x)) * pointDinv[i]
	}
	ls.packZ(xz, x)
	for c := ls.nc - 1; c >= 0; c-- {
		ls.sweepColumn(c, true, xz, bz, x)
	}
	ls.unpackZ(x, xz)
}

// blockUpperResidualStriped computes the residual after forwardZero. Each
// block is solved exactly against the earlier blocks' final values, so the
// residual reduces to the later-block couplings alone: r = −ub·x, a plain
// branch-free gather over the prebuilt split. Gather-only over a stripe's
// own rows.
func blockUpperResidualStriped(threads int, ls *lineSmoother, r, x []float64) {
	n := ls.ub.n
	runStriped(threads, numStripes(n), func(st int) {
		lo, hi := stripeBounds(st, n)
		r, x := r, x
		for i := lo; i < hi; i++ {
			r[i] = gatherRow(ls.ub, i, x)
		}
	})
}

// gsForwardZero runs one forward Gauss–Seidel sweep from a zero initial
// guess: ascending rows, x[i] = (b[i] − Σ_{j<i} a_ij·x[j]) / a_ii. Entries
// with j > i multiply a still-zero x[j], and the CSR columns are sorted,
// so the sweep stops at each row's lower-triangle prefix. Serial in fixed
// row order — deterministic at every kernel thread count.
func gsForwardZero(dinv []float64, mat *csrMatrix, x, b []float64) {
	n := mat.n
	rowPtr, colIdx, vals := mat.rowPtr, mat.colIdx, mat.vals
	for i := 0; i < n; i++ {
		s := b[i]
		end := rowPtr[i+1]
		for idx := rowPtr[i]; idx < end; idx++ {
			j := colIdx[idx]
			if int(j) >= i {
				break
			}
			s -= vals[idx] * x[j]
		}
		x[i] = s * dinv[i]
	}
}

// gsBackward runs one backward Gauss–Seidel sweep on the current iterate:
// descending rows, x[i] = (b[i] − Σ_{j≠i} a_ij·x[j]) / a_ii. As the
// adjoint of gsForwardZero it makes the V-cycle symmetric.
func gsBackward(dinv []float64, mat *csrMatrix, x, b []float64) {
	n := mat.n
	rowPtr, colIdx, vals := mat.rowPtr, mat.colIdx, mat.vals
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		end := rowPtr[i+1]
		for idx := rowPtr[i]; idx < end; idx++ {
			s -= vals[idx] * x[colIdx[idx]]
		}
		x[i] = s * dinv[i]
	}
}

// denseChol is the direct solver for the coarsest level: a dense lower
// Cholesky factor, built once at model build (the coarsest system is
// nSheets*mgMinEdge^2 nodes — a few hundred at most).
type denseChol struct {
	n int
	l []float64 // row-major; lower triangle holds L, diagonal included
}

func newDenseChol(diag []float64, mat *csrMatrix) *denseChol {
	n := mat.n
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = diag[i]
		end := mat.rowPtr[i+1]
		for idx := mat.rowPtr[i]; idx < end; idx++ {
			a[i*n+int(mat.colIdx[idx])] = mat.vals[idx]
		}
	}
	for j := 0; j < n; j++ {
		d := a[j*n+j]
		for k := 0; k < j; k++ {
			d -= a[j*n+k] * a[j*n+k]
		}
		if d <= 0 {
			return nil // not positive definite; caller falls back to IC(0)
		}
		d = math.Sqrt(d)
		a[j*n+j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := a[i*n+j]
			for k := 0; k < j; k++ {
				s -= a[i*n+k] * a[j*n+k]
			}
			a[i*n+j] = s * inv
		}
	}
	return &denseChol{n: n, l: a}
}

// solve overwrites x with A~·b by forward and backward substitution. Both
// sweeps are serial in fixed row order, so the coarse solve never threatens
// the determinism contract.
func (c *denseChol) solve(x, b []float64) {
	n, l := c.n, c.l
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i*n+k] * x[k]
		}
		x[i] = s / l[i*n+i]
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= l[k*n+i] * x[k]
		}
		x[i] = s / l[i*n+i]
	}
}

// mgScratch holds one V-cycle's per-level vectors. Level 0's solution and
// right-hand side alias the caller's z and r, so only ax is allocated
// there; index len(levels) is the coarsest grid.
type mgScratch struct {
	ax [][]float64
	b  [][]float64
	x  [][]float64
	// z-major package scratch for the level-0 line smoother (nil when the
	// stack has no line level).
	bz, xz []float64
}

// mgPreconditioner is the assembled hierarchy. It is immutable after
// construction; concurrent solves share it and draw scratch from the pool,
// so a steady-state apply allocates nothing.
type mgPreconditioner struct {
	levels  []mgLevel
	coarse  *denseChol
	scratch sync.Pool // *mgScratch
}

// newMultigrid builds the hierarchy for an nSheets-sheet stack on an
// nx x ny sheet grid. Returns nil when no coarse level can be built — the
// grid too small or odd-edged to halve, or the coarsest Galerkin operator
// not positive definite — in which case the model keeps IC(0).
func newMultigrid(nSheets, nx, ny int, diag []float64, mat *csrMatrix) *mgPreconditioner {
	if nx%2 != 0 || ny%2 != 0 || nx < 2*mgMinEdge || ny < 2*mgMinEdge {
		return nil
	}
	mg := &mgPreconditioner{}
	lv := mgLevel{n: nSheets * nx * ny, diag: diag, mat: mat}
	addLevel := func(t *transferOp, tol float64) {
		lv.down = t
		finishLevel(&lv)
		mg.levels = append(mg.levels, lv)
		cDiag, cMat := galerkinCoarse(lv.diag, lv.mat, t)
		symmetrizeCSR(cMat)
		cMat = truncateCSR(cDiag, cMat, tol)
		lv = mgLevel{n: t.nCoarse, diag: cDiag, mat: cMat}
	}
	// First coarsening: collapse the package vertically in one transfer —
	// the bottom layer block (independent across its weak interfaces) onto
	// its own coarse sheet, the slaved blocks folded into the spreader. The
	// line smoother solves each package column exactly, so what survives
	// level-0 smoothing is exactly the error this coarse space spans.
	nKeep := 0
	if nSheets > 3 {
		nLayer := nSheets - 2
		if nLayer > 16 { // sweepColumn's stack buffer
			return nil
		}
		lv.line = newLineSmoother(nLayer, nx*ny, diag, mat)
		splits := zSplits(nLayer, nx*ny, diag, mat)
		if len(splits) > 0 {
			nKeep = 1
		}
		t := newZAggTransfer(nLayer, nx, ny, splits, mat)
		nSheets = nKeep + 2
		// Fuse the first lateral halving into the same transfer: the line
		// smoother's surviving error is laterally smooth, so the combined
		// coarse space loses nothing, and the fused level replaces an
		// intermediate grid 4x the size of the one it lands on.
		t = composeTransfers(t, newTransferOp(nSheets, nx, ny))
		nx, ny = nx/2, ny/2
		addLevel(t, mgDropTolDeep)
	}
	// Fold the spreader (and, for a single-layer stack, the package sheet)
	// into the sink along the nesting maps. The bottom layer block stays
	// out of the folds: every path from it to the spreader crosses a weak
	// interface, so its laterally-smooth error is independent of the
	// spreader's and a shared coarse variable cannot represent both (the
	// coarsest direct solve couples the sheets exactly instead).
	for nSheets > nKeep+1 {
		addLevel(newFoldTransfer(nKeep, 1, nSheets, nx, ny), mgDropTolDeep)
		nSheets--
	}
	// Then halve the remaining sheets laterally until an edge would drop
	// below mgMinEdge. The smeared weak cross-sheet couplings down here are
	// cut by the coarse truncation threshold.
	for nx%2 == 0 && ny%2 == 0 && nx >= 2*mgMinEdge && ny >= 2*mgMinEdge {
		addLevel(newTransferOp(nSheets, nx, ny), mgDropTolDeep)
		nx, ny = nx/2, ny/2
	}
	mg.coarse = newDenseChol(lv.diag, lv.mat)
	if mg.coarse == nil {
		return nil
	}
	return mg
}

func (mg *mgPreconditioner) getScratch() *mgScratch {
	if v := mg.scratch.Get(); v != nil {
		return v.(*mgScratch)
	}
	L := len(mg.levels)
	sc := &mgScratch{
		ax: make([][]float64, L),
		b:  make([][]float64, L+1),
		x:  make([][]float64, L+1),
	}
	for k := range mg.levels {
		sc.ax[k] = make([]float64, mg.levels[k].n)
		if k > 0 {
			sc.b[k] = make([]float64, mg.levels[k].n)
			sc.x[k] = make([]float64, mg.levels[k].n)
		}
	}
	cn := mg.levels[L-1].down.nCoarse
	sc.b[L] = make([]float64, cn)
	sc.x[L] = make([]float64, cn)
	if ls := mg.levels[0].line; ls != nil {
		sc.bz = make([]float64, ls.nPkg)
		sc.xz = make([]float64, ls.nPkg)
	}
	return sc
}

// vcycle runs one V(1,1) cycle at level k, overwriting x with the cycle's
// approximation to A~·b (x needs no zeroing: the pre-smooth from a zero
// initial guess writes every entry).
func (mg *mgPreconditioner) vcycle(th, k int, sc *mgScratch, x, b []float64) {
	if k == len(mg.levels) {
		mg.coarse.solve(x, b)
		return
	}
	lv := &mg.levels[k]
	r := sc.ax[k]
	if lv.line != nil {
		lv.line.forwardZero(lv.dinv, sc.bz, sc.xz, x, b)
		blockUpperResidualStriped(th, lv.line, r, x)
	} else {
		gsForwardZero(lv.dinv, lv.mat, x, b)
		upperResidualStriped(th, lv.mat, r, x)
	}
	bc, xc := sc.b[k+1], sc.x[k+1]
	restrictStriped(th, lv.down, bc, r)
	mg.vcycle(th, k+1, sc, xc, bc)
	prolongAddStriped(th, lv.down, x, xc)
	if lv.line != nil {
		lv.line.backward(lv.dinv, sc.bz, sc.xz, x, b)
	} else {
		gsBackward(lv.dinv, lv.mat, x, b)
	}
}

// precondApply runs one V-cycle (z = M~·r) and returns the fused r·z inner
// product through the workspace's per-stripe slots, mirroring the IC(0)
// apply contract.
func (mg *mgPreconditioner) precondApply(threads int, ws *workspace, z, r []float64) float64 {
	sc := mg.getScratch()
	mg.vcycle(threads, 0, sc, z, r)
	mg.scratch.Put(sc)
	dotStriped(threads, r, z, ws.parts)
	return reduceParts(ws.parts)
}

// upperResidualStriped computes the residual after a forward Gauss–Seidel
// sweep from zero. That sweep makes every lower-triangle-plus-diagonal row
// sum land exactly on b[i], so the residual collapses to r = −U·x, the
// strict upper triangle alone — half an SpMV instead of a full one, at
// every level of the cycle. Gather-only over a stripe's own rows, like the
// other striped stages.
func upperResidualStriped(threads int, mat *csrMatrix, r, x []float64) {
	n := mat.n
	runStriped(threads, numStripes(n), func(st int) {
		lo, hi := stripeBounds(st, n)
		rowPtr, colIdx, vals := mat.rowPtr, mat.colIdx, mat.vals
		r, x := r, x
		for i := lo; i < hi; i++ {
			s := 0.0
			end := rowPtr[i+1]
			for idx := rowPtr[i]; idx < end; idx++ {
				j := colIdx[idx]
				if int(j) <= i {
					continue
				}
				s -= vals[idx] * x[j]
			}
			r[i] = s
		}
	})
}

// restrictStriped computes the full-weighting restriction rc = P'·r,
// gathering through the transpose arrays so each stripe writes only its
// own coarse rows.
func restrictStriped(threads int, t *transferOp, rc, r []float64) {
	n := t.nCoarse
	runStriped(threads, numStripes(n), func(st int) {
		lo, hi := stripeBounds(st, n)
		tPtr, tIdx, tW := t.tPtr, t.tIdx, t.tW
		rc, r := rc, r
		for j := lo; j < hi; j++ {
			s := 0.0
			end := tPtr[j+1]
			for q := tPtr[j]; q < end; q++ {
				s += tW[q] * r[tIdx[q]]
			}
			rc[j] = s
		}
	})
}

// prolongAddStriped adds the bilinear prolongation of the coarse
// correction, x += P·e — a gather over fine rows.
func prolongAddStriped(threads int, t *transferOp, x, e []float64) {
	n := t.nFine
	runStriped(threads, numStripes(n), func(st int) {
		lo, hi := stripeBounds(st, n)
		rowPtr, colIdx, w := t.rowPtr, t.colIdx, t.w
		x, e := x, e
		for i := lo; i < hi; i++ {
			s := 0.0
			end := rowPtr[i+1]
			for idx := rowPtr[i]; idx < end; idx++ {
				s += w[idx] * e[colIdx[idx]]
			}
			x[i] += s
		}
	})
}
