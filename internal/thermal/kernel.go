package thermal

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel kernel primitives for the bandwidth-bound stages of the CG
// solve: CSR SpMV, dot products, and the axpy-style vector updates. The
// IC(0) triangular solves are inherently sequential and stay serial.
//
// Determinism contract: the temperature field produced by a solve is
// bit-identical for every kernel thread count, including 1. Two rules
// enforce this:
//
//   - fixed striping: vectors are cut into stripes of kernelStripeRows
//     rows, a function of the problem size only. Any worker may compute any
//     stripe (work is handed out through an atomic counter), but a stripe's
//     arithmetic is a fixed sequential loop and writes only its own rows or
//     its own partial-sum slot, so the assignment of stripes to workers
//     cannot influence any result bit.
//   - deterministic reduction: dot products accumulate one partial sum per
//     stripe into a fixed slot, and the partials are folded by a pairwise
//     halving reduction on the calling goroutine — a fixed tree shape per
//     stripe count, never "whoever finishes first".
//
// The serial path runs the identical striped code on the caller, so serial
// and parallel solves agree bit-for-bit, which keeps chipletd's
// content-addressed cache and the golden tests valid regardless of the
// -kernel-threads setting.

// kernelStripeRows is the stripe granularity. A var, not a const, so the
// equality tests can shrink it and exercise multi-stripe scheduling on the
// small grids the test suite can afford.
var kernelStripeRows = 1024

// parallelMinNodes gates the worker team: systems smaller than this solve
// serially, where the dispatch overhead would dominate. Small test grids
// (16x16: ~1.5k nodes) stay serial; the paper's production 64x64 stack
// (~25k nodes) engages the team.
var parallelMinNodes = 4096

var kernelThreadsDefault atomic.Int32

func init() {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8 // past ~8 threads the kernel is memory-bandwidth bound
	}
	kernelThreadsDefault.Store(int32(n))
}

// SetKernelThreads sets the package-default worker count for the parallel
// solver kernel (clamped to >= 1). Models whose Config.KernelThreads is 0
// pick this default up at solve time. It can be changed at any moment —
// the thread count never affects results, only wall-clock time.
func SetKernelThreads(n int) {
	if n < 1 {
		n = 1
	}
	kernelThreadsDefault.Store(int32(n))
}

// KernelThreads returns the package-default kernel worker count.
func KernelThreads() int { return int(kernelThreadsDefault.Load()) }

// kernelJob is one helper's share of a striped operation.
type kernelJob struct {
	fn func()
	wg *sync.WaitGroup
}

// The persistent worker team. Workers are spawned lazily up to the largest
// helper count ever requested and live for the process lifetime, so
// steady-state solves pay one channel send per helper per operation and
// never a goroutine spawn.
var kernelTeam struct {
	mu   sync.Mutex
	size int
	jobs chan kernelJob
}

func kernelWorker(jobs <-chan kernelJob) {
	for j := range jobs {
		j.fn()
		j.wg.Done()
	}
}

// teamJobs returns the shared job channel, growing the team to at least n
// workers.
func teamJobs(n int) chan kernelJob {
	kernelTeam.mu.Lock()
	defer kernelTeam.mu.Unlock()
	if kernelTeam.jobs == nil {
		kernelTeam.jobs = make(chan kernelJob)
	}
	for kernelTeam.size < n {
		go kernelWorker(kernelTeam.jobs)
		kernelTeam.size++
	}
	return kernelTeam.jobs
}

// numStripes returns the stripe count for an n-row vector.
func numStripes(n int) int {
	return (n + kernelStripeRows - 1) / kernelStripeRows
}

// stripeBounds returns the [lo, hi) row range of stripe s.
func stripeBounds(s, n int) (int, int) {
	lo := s * kernelStripeRows
	hi := lo + kernelStripeRows
	if hi > n {
		hi = n
	}
	return lo, hi
}

// runStriped executes body(s) for every stripe s in [0, nStripes) using up
// to threads goroutines (the caller included). Stripes are handed out
// through an atomic counter; body must be safe to run concurrently for
// distinct stripes.
func runStriped(threads, nStripes int, body func(s int)) {
	if threads > nStripes {
		threads = nStripes
	}
	if threads <= 1 {
		for s := 0; s < nStripes; s++ {
			body(s)
		}
		return
	}
	var next atomic.Int32
	loop := func() {
		for {
			s := int(next.Add(1)) - 1
			if s >= nStripes {
				return
			}
			body(s)
		}
	}
	helpers := threads - 1
	jobs := teamJobs(helpers)
	var wg sync.WaitGroup
	wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		jobs <- kernelJob{fn: loop, wg: &wg}
	}
	loop() // the caller works too
	wg.Wait()
}

// reduceParts folds per-stripe partial sums with a pairwise halving tree —
// a fixed reduction order for a given stripe count. It consumes parts.
func reduceParts(parts []float64) float64 {
	n := len(parts)
	if n == 0 {
		return 0
	}
	for n > 1 {
		half := (n + 1) / 2
		for i := 0; i+half < n; i++ {
			parts[i] += parts[i+half]
		}
		n = half
	}
	return parts[0]
}

// spmvStriped computes y = A·x for A = diag(diag) + mat, one row sweep per
// stripe. When w is non-nil it also accumulates parts[s] = Σ w[i]·y[i]
// over the stripe's rows, fusing the dot product CG needs right after the
// SpMV (pᵀ·A·p) into the same memory pass.
// The stripe bodies below shadow their captures into closure-local
// variables before the hot loops: closed-over slices live in a heap context
// the compiler must conservatively reload around stores, and on these
// bandwidth-bound loops the reloads cost ~40%.
func spmvStriped(threads int, diag []float64, mat *csrMatrix, y, x, w, parts []float64) {
	n := len(y)
	runStriped(threads, numStripes(n), func(st int) {
		lo, hi := stripeBounds(st, n)
		rowPtr, colIdx, vals := mat.rowPtr, mat.colIdx, mat.vals
		diag, x, y := diag, x, y
		if w == nil {
			for i := lo; i < hi; i++ {
				s := diag[i] * x[i]
				end := rowPtr[i+1]
				for idx := rowPtr[i]; idx < end; idx++ {
					s += vals[idx] * x[colIdx[idx]]
				}
				y[i] = s
			}
			return
		}
		w, acc := w, 0.0
		for i := lo; i < hi; i++ {
			s := diag[i] * x[i]
			end := rowPtr[i+1]
			for idx := rowPtr[i]; idx < end; idx++ {
				s += vals[idx] * x[colIdx[idx]]
			}
			y[i] = s
			acc += w[i] * s
		}
		parts[st] = acc
	})
}

// residualStriped computes r = b - ap and parts[s] = Σ b[i]² per stripe.
func residualStriped(threads int, r, b, ap, parts []float64) {
	n := len(r)
	runStriped(threads, numStripes(n), func(st int) {
		lo, hi := stripeBounds(st, n)
		r, b, ap := r, b, ap
		acc := 0.0
		for i := lo; i < hi; i++ {
			r[i] = b[i] - ap[i]
			acc += b[i] * b[i]
		}
		parts[st] = acc
	})
}

// updateStriped applies the fused CG step x += α·p, r -= α·ap and
// accumulates parts[s] = Σ r[i]² in the same pass.
func updateStriped(threads int, alpha float64, x, p, r, ap, parts []float64) {
	n := len(x)
	runStriped(threads, numStripes(n), func(st int) {
		lo, hi := stripeBounds(st, n)
		x, p, r, ap := x, p, r, ap
		acc := 0.0
		for i := lo; i < hi; i++ {
			x[i] += alpha * p[i]
			ri := r[i] - alpha*ap[i]
			r[i] = ri
			acc += ri * ri
		}
		parts[st] = acc
	})
}

// dotStriped accumulates parts[s] = Σ a[i]·b[i] per stripe.
func dotStriped(threads int, a, b, parts []float64) {
	n := len(a)
	runStriped(threads, numStripes(n), func(st int) {
		lo, hi := stripeBounds(st, n)
		a, b := a, b
		acc := 0.0
		for i := lo; i < hi; i++ {
			acc += a[i] * b[i]
		}
		parts[st] = acc
	})
}

// combineStriped computes the CG direction update p = z + β·p.
func combineStriped(threads int, beta float64, p, z []float64) {
	n := len(p)
	runStriped(threads, numStripes(n), func(st int) {
		lo, hi := stripeBounds(st, n)
		p, z := p, z
		for i := lo; i < hi; i++ {
			p[i] = z[i] + beta*p[i]
		}
	})
}
