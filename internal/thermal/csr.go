package thermal

// Compressed sparse row storage for the assembled conductance matrix.
//
// Assembly produces an unordered symmetric edge list (one `link` per
// conductance). The edge-list matvec updates two scattered rows per link,
// which defeats both the cache and any attempt at row parallelism (write
// conflicts). finalize therefore expands the list once into a fully
// symmetric CSR structure: every row holds its off-diagonal entries with
// column indices sorted ascending, so the matvec becomes a gather-only row
// sweep — sequential reads of rowPtr/colIdx/vals, one sequential write per
// row, no write sharing between rows. The diagonal stays in its own dense
// array so the transient solver can reuse the same CSR off-diagonals under
// a shifted diagonal.

// csrMatrix holds the strictly off-diagonal entries of a symmetric matrix
// in row-major CSR form with ascending column indices per row. Values are
// the matrix entries themselves (for a conductance matrix: -g).
type csrMatrix struct {
	n      int
	rowPtr []int32
	colIdx []int32
	vals   []float64
}

// newCSR expands a symmetric edge list into full CSR form. Both directed
// copies of every link are materialized and ordered by (row, col) with two
// stable counting-sort passes — O(nnz), no per-row comparison sort. The
// resulting column ordering is what the IC(0) preconditioner consumes too,
// replacing its former per-row sort.Sort.
func newCSR(n int, links []link) *csrMatrix {
	nnz := 2 * len(links)

	// Pass 1: stable counting sort of the directed entries by column. The
	// bucket an entry lands in is its column, so only (row, value) are
	// carried explicitly.
	colPtr := make([]int32, n+1)
	for _, l := range links {
		colPtr[l.b+1]++ // entry (row=a, col=b)
		colPtr[l.a+1]++ // entry (row=b, col=a)
	}
	for c := 0; c < n; c++ {
		colPtr[c+1] += colPtr[c]
	}
	off := make([]int32, n)
	copy(off, colPtr[:n])
	rowTmp := make([]int32, nnz)
	valTmp := make([]float64, nnz)
	for _, l := range links {
		p := off[l.b]
		off[l.b]++
		rowTmp[p] = l.a
		valTmp[p] = -l.g
		p = off[l.a]
		off[l.a]++
		rowTmp[p] = l.b
		valTmp[p] = -l.g
	}

	// Pass 2: stable counting sort by row. Stability preserves the pass-1
	// column order, so each row ends up with ascending columns.
	rowPtr := make([]int32, n+1)
	for _, r := range rowTmp {
		rowPtr[r+1]++
	}
	for r := 0; r < n; r++ {
		rowPtr[r+1] += rowPtr[r]
	}
	copy(off, rowPtr[:n])
	colIdx := make([]int32, nnz)
	vals := make([]float64, nnz)
	for c := 0; c < n; c++ {
		for p := colPtr[c]; p < colPtr[c+1]; p++ {
			r := rowTmp[p]
			q := off[r]
			off[r]++
			colIdx[q] = int32(c)
			vals[q] = valTmp[p]
		}
	}
	return &csrMatrix{n: n, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
}
