package thermal

import (
	"math"
	"testing"
)

// applyMatrix computes y = A·x for a diag/links representation.
func applyMatrix(diag []float64, links []link, x []float64) []float64 {
	y := make([]float64, len(diag))
	for i, d := range diag {
		y[i] = d * x[i]
	}
	for _, l := range links {
		y[l.a] -= l.g * x[l.b]
		y[l.b] -= l.g * x[l.a]
	}
	return y
}

// On a tree-structured (here: chain) conductance matrix, zero-fill
// incomplete Cholesky is an exact factorization, so M⁻¹·A·x must return x.
func TestICExactOnChain(t *testing.T) {
	const n = 12
	diag := make([]float64, n)
	var links []link
	for i := 0; i < n; i++ {
		diag[i] = 0.5 // grounding term keeps the matrix SPD
	}
	for i := 0; i+1 < n; i++ {
		g := 1.0 + float64(i)*0.3
		links = append(links, link{a: int32(i), b: int32(i + 1), g: g})
		diag[i] += g
		diag[i+1] += g
	}
	ic := newICPreconditioner(n, diag, links)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i) + 1)
	}
	ax := applyMatrix(diag, links, x)
	z := make([]float64, n)
	ic.apply(z, ax)
	for i := range x {
		if math.Abs(z[i]-x[i]) > 1e-10 {
			t.Fatalf("IC not exact on a chain: z[%d]=%.12f want %.12f", i, z[i], x[i])
		}
	}
}

// On a general grid IC(0) is inexact but must still be symmetric positive
// definite as an operator: zᵀ·M⁻¹·z > 0 for z ≠ 0, and applying it twice in
// the PCG never produces NaNs.
func TestICPositiveDefiniteOnGrid(t *testing.T) {
	// 4x4 grid graph.
	const nx, ny = 4, 4
	n := nx * ny
	diag := make([]float64, n)
	var links []link
	for i := range diag {
		diag[i] = 0.1
	}
	add := func(a, b int, g float64) {
		links = append(links, link{a: int32(a), b: int32(b), g: g})
		diag[a] += g
		diag[b] += g
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			c := y*nx + x
			if x+1 < nx {
				add(c, c+1, 2.0)
			}
			if y+1 < ny {
				add(c, c+nx, 0.5)
			}
		}
	}
	ic := newICPreconditioner(n, diag, links)
	r := make([]float64, n)
	for i := range r {
		r[i] = float64((i*7)%5) - 2
	}
	z := make([]float64, n)
	ic.apply(z, r)
	dot := 0.0
	for i := range r {
		if math.IsNaN(z[i]) || math.IsInf(z[i], 0) {
			t.Fatalf("non-finite preconditioned value at %d", i)
		}
		dot += r[i] * z[i]
	}
	if dot <= 0 {
		t.Fatalf("rᵀM⁻¹r = %g, preconditioner not positive definite", dot)
	}
}

// The preconditioner must reduce CG iteration counts versus plain Jacobi
// would — proxy: the high-contrast 2.5D stack solve stays under a small
// iteration budget.
func TestSolverIterationBudget(t *testing.T) {
	m := singleChipModel(t, 32)
	res, err := m.Solve(uniformChipPower(m, 400))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 200 {
		t.Fatalf("solve took %d iterations; preconditioner regressed", res.Iterations)
	}
}
