package thermal

import (
	"context"
	"fmt"
	"math"
	"sort"

	"chiplet25d/internal/geom"
	"chiplet25d/internal/obs"
)

// Result is a solved steady-state temperature field.
type Result struct {
	// T holds all node temperatures in °C, ordered as in the model
	// (package layers bottom-up, then spreader, then sink).
	T []float64
	// Iterations is the number of CG iterations the solve used.
	Iterations int
	// Residual is the final relative residual.
	Residual float64

	model *Model
}

// ChipT returns the chip-layer cell temperatures (length Nx*Ny), aliasing
// the result's storage.
func (r *Result) ChipT() []float64 {
	off := r.model.ChipLayerOffset()
	return r.T[off : off+r.model.nCells]
}

// PeakC returns the maximum chip-layer temperature, the quantity constrained
// by Eq. (6).
func (r *Result) PeakC() float64 {
	peak := math.Inf(-1)
	for _, t := range r.ChipT() {
		if t > peak {
			peak = t
		}
	}
	return peak
}

// MaxOverRect returns the maximum chip-layer temperature over the cells
// whose centers fall inside the given rectangle (mm, package coordinates).
func (r *Result) MaxOverRect(rc geom.Rect) float64 {
	return r.overRect(rc, true)
}

// AvgOverRect returns the mean chip-layer temperature over the cells whose
// centers fall inside the given rectangle.
func (r *Result) AvgOverRect(rc geom.Rect) float64 {
	return r.overRect(rc, false)
}

func (r *Result) overRect(rc geom.Rect, max bool) float64 {
	g := r.model.grid
	chip := r.ChipT()
	best := math.Inf(-1)
	sum, n := 0.0, 0
	for iy := 0; iy < g.Ny; iy++ {
		for ix := 0; ix < g.Nx; ix++ {
			cx, cy := g.CellRect(ix, iy).Center()
			if !rc.ContainsPoint(cx, cy) {
				continue
			}
			t := chip[g.Index(ix, iy)]
			if t > best {
				best = t
			}
			sum += t
			n++
		}
	}
	if n == 0 {
		// Rectangle smaller than a cell: fall back to the containing cell.
		cx, cy := rc.Center()
		ix, iy := g.CellAt(cx, cy)
		return chip[g.Index(ix, iy)]
	}
	if max {
		return best
	}
	return sum / float64(n)
}

// HeatOutW returns the total heat leaving through the sink's convection
// boundary, which at steady state must equal the injected power.
func (r *Result) HeatOutW() float64 {
	m := r.model
	out := 0.0
	for c := 0; c < m.nCells; c++ {
		out += m.convG[c] * (r.T[m.sinkBase+c] - m.cfg.AmbientC)
	}
	for c, g := range m.boardG {
		out += g * (r.T[c] - m.cfg.AmbientC)
	}
	return out
}

// Solve computes the steady-state temperature field for the given
// chip-layer power map (watts per package-grid cell, length Nx*Ny).
func (m *Model) Solve(chipPower []float64) (*Result, error) {
	return m.SolveWarm(chipPower, nil)
}

// SolveCtx is Solve with cooperative cancellation: the CG iteration checks
// ctx periodically and aborts with ctx's error once it is done.
func (m *Model) SolveCtx(ctx context.Context, chipPower []float64) (*Result, error) {
	return m.SolveWarmCtx(ctx, chipPower, nil)
}

// SolveMulti solves with power injected into several package layers at
// once — the 3D-stacking case, where more than one CMOS layer dissipates.
// Keys are layer indices (bottom-up, as in the stack); values are
// per-cell watts (length Nx*Ny).
func (m *Model) SolveMulti(perLayer map[int][]float64) (*Result, error) {
	rhs := make([]float64, m.nNodes)
	for l, pmap := range perLayer {
		if l < 0 || l >= m.nLayer {
			return nil, fmt.Errorf("thermal: power layer %d out of range [0,%d)", l, m.nLayer)
		}
		if len(pmap) != m.nCells {
			return nil, fmt.Errorf("thermal: layer %d power map has %d cells, model grid has %d", l, len(pmap), m.nCells)
		}
		for c, p := range pmap {
			if p < 0 {
				return nil, fmt.Errorf("thermal: negative power %g at layer %d cell %d", p, l, c)
			}
			rhs[l*m.nCells+c] += p
		}
	}
	for c := 0; c < m.nCells; c++ {
		rhs[m.sinkBase+c] += m.convG[c] * m.cfg.AmbientC
	}
	for c, g := range m.boardG {
		rhs[c] += g * m.cfg.AmbientC
	}
	x := make([]float64, m.nNodes)
	for i := range x {
		x[i] = m.cfg.AmbientC
	}
	iters, res, err := m.pcg(context.Background(), x, rhs)
	if err != nil {
		return nil, err
	}
	return &Result{T: x, Iterations: iters, Residual: res, model: m}, nil
}

// LayerT returns the temperatures of one package layer's cells (aliasing
// the result's storage).
func (r *Result) LayerT(layer int) ([]float64, error) {
	if layer < 0 || layer >= r.model.nLayer {
		return nil, fmt.Errorf("thermal: layer %d out of range [0,%d)", layer, r.model.nLayer)
	}
	return r.T[layer*r.model.nCells : (layer+1)*r.model.nCells], nil
}

// PeakOverLayers returns the maximum temperature over the given package
// layers (e.g. all CMOS levels of a 3D stack).
func (r *Result) PeakOverLayers(layers []int) (float64, error) {
	peak := math.Inf(-1)
	for _, l := range layers {
		lt, err := r.LayerT(l)
		if err != nil {
			return 0, err
		}
		for _, t := range lt {
			if t > peak {
				peak = t
			}
		}
	}
	return peak, nil
}

// SolveWarm is Solve with a warm start from a previous result for the same
// model (pass nil for a cold start from ambient).
func (m *Model) SolveWarm(chipPower []float64, prev *Result) (*Result, error) {
	return m.SolveWarmCtx(context.Background(), chipPower, prev)
}

// SolveWarmCtx is SolveWarm with cooperative cancellation (see SolveCtx).
func (m *Model) SolveWarmCtx(ctx context.Context, chipPower []float64, prev *Result) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("thermal: solve abandoned before starting: %w", err)
	}
	if len(chipPower) != m.nCells {
		return nil, fmt.Errorf("thermal: power map has %d cells, model grid has %d", len(chipPower), m.nCells)
	}
	rhs := make([]float64, m.nNodes)
	chipBase := m.ChipLayerOffset()
	for c, p := range chipPower {
		if p < 0 {
			return nil, fmt.Errorf("thermal: negative power %g at cell %d", p, c)
		}
		rhs[chipBase+c] = p
	}
	for c := 0; c < m.nCells; c++ {
		rhs[m.sinkBase+c] += m.convG[c] * m.cfg.AmbientC
	}
	for c, g := range m.boardG {
		rhs[c] += g * m.cfg.AmbientC
	}
	x := make([]float64, m.nNodes)
	warm := prev != nil && len(prev.T) == m.nNodes
	if warm {
		copy(x, prev.T)
	} else {
		for i := range x {
			x[i] = m.cfg.AmbientC
		}
	}
	ctx, sp := obs.Start(ctx, "thermal.cg")
	iters, res, err := m.pcg(ctx, x, rhs)
	sp.SetAttr("iterations", iters)
	if !math.IsNaN(res) { // NaN (abandoned solve) is not JSON-encodable
		sp.SetAttr("residual", res)
	}
	sp.SetAttr("grid_n", m.grid.Nx)
	sp.SetAttr("warm_start", warm)
	sp.End()
	if err != nil {
		return nil, err
	}
	return &Result{T: x, Iterations: iters, Residual: res, model: m}, nil
}

// matvec computes y = A·x for the assembled conductance matrix.
func (m *Model) matvec(y, x []float64) {
	for i, d := range m.diag {
		y[i] = d * x[i]
	}
	for _, l := range m.links {
		y[l.a] -= l.g * x[l.b]
		y[l.b] -= l.g * x[l.a]
	}
}

// pcg runs preconditioned conjugate gradients, overwriting x with the
// solution of A·x = b. Returns iterations used and the final relative
// residual. ctx is checked every few iterations so long solves can be
// abandoned (e.g. when an HTTP client disconnects).
func (m *Model) pcg(ctx context.Context, x, b []float64) (int, float64, error) {
	n := m.nNodes
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	m.matvec(ap, x)
	bnorm := 0.0
	for i := 0; i < n; i++ {
		r[i] = b[i] - ap[i]
		bnorm += b[i] * b[i]
	}
	bnorm = math.Sqrt(bnorm)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return 0, 0, nil
	}
	m.precond.apply(z, r)
	copy(p, z)
	rz := dot(r, z)
	for it := 1; it <= m.cfg.MaxIterations; it++ {
		if it&0x1f == 0 {
			select {
			case <-ctx.Done():
				return it, math.NaN(), fmt.Errorf("thermal: solve abandoned after %d CG iterations: %w", it, ctx.Err())
			default:
			}
		}
		m.matvec(ap, p)
		pap := dot(p, ap)
		if pap <= 0 {
			return it, math.NaN(), fmt.Errorf("thermal: CG breakdown (pAp = %g); matrix not SPD", pap)
		}
		alpha := rz / pap
		for i := 0; i < n; i++ {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rnorm := math.Sqrt(dot(r, r))
		if rnorm/bnorm < m.cfg.Tolerance {
			return it, rnorm / bnorm, nil
		}
		m.precond.apply(z, r)
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := 0; i < n; i++ {
			p[i] = z[i] + beta*p[i]
		}
	}
	rnorm := math.Sqrt(dot(r, r))
	return m.cfg.MaxIterations, rnorm / bnorm, fmt.Errorf(
		"thermal: CG did not converge in %d iterations (residual %.3g)",
		m.cfg.MaxIterations, rnorm/bnorm)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// icPreconditioner is a zero-fill incomplete Cholesky factorization
// A ≈ L·Lᵀ restricted to A's sparsity pattern. Thermal conductance matrices
// are symmetric M-matrices, for which IC(0) exists and is stable; a
// diagonal-shift fallback guards against rounding-induced breakdown.
type icPreconditioner struct {
	n      int
	rowPtr []int32   // CSR row pointers for the strict lower triangle
	colIdx []int32   // column indices (sorted ascending per row)
	lval   []float64 // factor values for the strict lower triangle
	d      []float64 // diagonal of L
}

func newICPreconditioner(n int, diag []float64, links []link) *icPreconditioner {
	// Build the strict lower triangle in CSR form.
	counts := make([]int32, n+1)
	for _, l := range links {
		hi := l.a
		if l.b > hi {
			hi = l.b
		}
		counts[hi+1]++
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	rowPtr := counts
	colIdx := make([]int32, rowPtr[n])
	aval := make([]float64, rowPtr[n])
	next := make([]int32, n)
	copy(next, rowPtr[:n])
	for _, l := range links {
		lo, hi := l.a, l.b
		if lo > hi {
			lo, hi = hi, lo
		}
		pos := next[hi]
		next[hi]++
		colIdx[pos] = lo
		aval[pos] = -l.g // off-diagonal entries of the conductance matrix
	}
	// Sort the column indices within each row.
	for i := 0; i < n; i++ {
		lo, hi := rowPtr[i], rowPtr[i+1]
		row := rowSorter{cols: colIdx[lo:hi], vals: aval[lo:hi]}
		sort.Sort(row)
	}

	ic := &icPreconditioner{
		n: n, rowPtr: rowPtr, colIdx: colIdx,
		lval: make([]float64, len(aval)),
		d:    make([]float64, n),
	}
	ic.factor(diag, aval)
	return ic
}

type rowSorter struct {
	cols []int32
	vals []float64
}

func (r rowSorter) Len() int           { return len(r.cols) }
func (r rowSorter) Less(i, j int) bool { return r.cols[i] < r.cols[j] }
func (r rowSorter) Swap(i, j int) {
	r.cols[i], r.cols[j] = r.cols[j], r.cols[i]
	r.vals[i], r.vals[j] = r.vals[j], r.vals[i]
}

func (ic *icPreconditioner) factor(diag, aval []float64) {
	n := ic.n
	for i := 0; i < n; i++ {
		ri0, ri1 := ic.rowPtr[i], ic.rowPtr[i+1]
		for idx := ri0; idx < ri1; idx++ {
			k := ic.colIdx[idx]
			s := aval[idx]
			// s -= Σ_m L[i][m]·L[k][m] over shared columns m < k.
			a, aEnd := ri0, idx
			b, bEnd := ic.rowPtr[k], ic.rowPtr[k+1]
			for a < aEnd && b < bEnd {
				ca, cb := ic.colIdx[a], ic.colIdx[b]
				switch {
				case ca == cb:
					s -= ic.lval[a] * ic.lval[b]
					a++
					b++
				case ca < cb:
					a++
				default:
					b++
				}
			}
			ic.lval[idx] = s / ic.d[k]
		}
		dv := diag[i]
		for idx := ri0; idx < ri1; idx++ {
			dv -= ic.lval[idx] * ic.lval[idx]
		}
		if dv <= 0 {
			// Breakdown guard: fall back to the (always positive) original
			// diagonal, locally degrading toward Jacobi.
			dv = diag[i]
		}
		ic.d[i] = math.Sqrt(dv)
	}
}

// apply computes z = M⁻¹·r via forward (L·y = r) and backward (Lᵀ·z = y)
// substitution.
func (ic *icPreconditioner) apply(z, r []float64) {
	n := ic.n
	copy(z, r)
	for i := 0; i < n; i++ {
		s := z[i]
		for idx := ic.rowPtr[i]; idx < ic.rowPtr[i+1]; idx++ {
			s -= ic.lval[idx] * z[ic.colIdx[idx]]
		}
		z[i] = s / ic.d[i]
	}
	for i := n - 1; i >= 0; i-- {
		z[i] /= ic.d[i]
		zi := z[i]
		for idx := ic.rowPtr[i]; idx < ic.rowPtr[i+1]; idx++ {
			z[ic.colIdx[idx]] -= ic.lval[idx] * zi
		}
	}
}
