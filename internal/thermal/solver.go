package thermal

import (
	"context"
	"fmt"
	"math"

	"chiplet25d/internal/geom"
	"chiplet25d/internal/obs"
)

// Result is a solved steady-state temperature field.
type Result struct {
	// T holds all node temperatures in °C, ordered as in the model
	// (package layers bottom-up, then spreader, then sink).
	T []float64
	// Iterations is the number of CG iterations the solve used.
	Iterations int
	// Residual is the final relative residual.
	Residual float64

	model *Model
}

// Recycle returns the result's temperature buffer to the model's solution
// pool so a later solve can reuse it without allocating. The result must
// not be used afterward. Steady-state serving loops (the leakage fixed
// point, chipletd's solve path) call this on every superseded result to
// keep warm solves allocation-free; callers that retain the result simply
// never recycle it. Safe to call at most once; nil-model (already
// recycled) calls are no-ops.
func (r *Result) Recycle() {
	m := r.model
	if m == nil || r.T == nil {
		return
	}
	t := r.T
	r.model = nil
	r.T = nil
	if len(t) == m.nNodes {
		m.xPool.Put(&t)
	}
}

// ChipT returns the chip-layer cell temperatures (length Nx*Ny), aliasing
// the result's storage.
func (r *Result) ChipT() []float64 {
	off := r.model.ChipLayerOffset()
	return r.T[off : off+r.model.nCells]
}

// PeakC returns the maximum chip-layer temperature, the quantity constrained
// by Eq. (6).
func (r *Result) PeakC() float64 {
	peak := math.Inf(-1)
	for _, t := range r.ChipT() {
		if t > peak {
			peak = t
		}
	}
	return peak
}

// MaxOverRect returns the maximum chip-layer temperature over the cells
// whose centers fall inside the given rectangle (mm, package coordinates).
func (r *Result) MaxOverRect(rc geom.Rect) float64 {
	return r.overRect(rc, true)
}

// AvgOverRect returns the mean chip-layer temperature over the cells whose
// centers fall inside the given rectangle.
func (r *Result) AvgOverRect(rc geom.Rect) float64 {
	return r.overRect(rc, false)
}

func (r *Result) overRect(rc geom.Rect, max bool) float64 {
	g := r.model.grid
	chip := r.ChipT()
	best := math.Inf(-1)
	sum, n := 0.0, 0
	for iy := 0; iy < g.Ny; iy++ {
		for ix := 0; ix < g.Nx; ix++ {
			cx, cy := g.CellRect(ix, iy).Center()
			if !rc.ContainsPoint(cx, cy) {
				continue
			}
			t := chip[g.Index(ix, iy)]
			if t > best {
				best = t
			}
			sum += t
			n++
		}
	}
	if n == 0 {
		// Rectangle smaller than a cell: fall back to the containing cell.
		cx, cy := rc.Center()
		ix, iy := g.CellAt(cx, cy)
		return chip[g.Index(ix, iy)]
	}
	if max {
		return best
	}
	return sum / float64(n)
}

// HeatOutW returns the total heat leaving through the sink's convection
// boundary, which at steady state must equal the injected power.
func (r *Result) HeatOutW() float64 {
	m := r.model
	out := 0.0
	for c := 0; c < m.nCells; c++ {
		out += m.convG[c] * (r.T[m.sinkBase+c] - m.cfg.AmbientC)
	}
	for c, g := range m.boardG {
		out += g * (r.T[c] - m.cfg.AmbientC)
	}
	return out
}

// LayerT returns the temperatures of one package layer's cells (aliasing
// the result's storage).
func (r *Result) LayerT(layer int) ([]float64, error) {
	if layer < 0 || layer >= r.model.nLayer {
		return nil, fmt.Errorf("thermal: layer %d out of range [0,%d)", layer, r.model.nLayer)
	}
	return r.T[layer*r.model.nCells : (layer+1)*r.model.nCells], nil
}

// PeakOverLayers returns the maximum temperature over the given package
// layers (e.g. all CMOS levels of a 3D stack).
func (r *Result) PeakOverLayers(layers []int) (float64, error) {
	peak := math.Inf(-1)
	for _, l := range layers {
		lt, err := r.LayerT(l)
		if err != nil {
			return 0, err
		}
		for _, t := range lt {
			if t > peak {
				peak = t
			}
		}
	}
	return peak, nil
}

// workspace holds the per-solve scratch vectors of the CG iteration plus
// the RHS assembly buffer and the per-stripe partial-sum slots. Workspaces
// are pooled per model so steady-state serving does zero large allocations
// per solve.
type workspace struct {
	r, z, p, ap []float64
	rhs         []float64
	parts       []float64
}

// getWorkspace fetches a pooled workspace (or allocates the first one).
func (m *Model) getWorkspace() *workspace {
	if v := m.wsPool.Get(); v != nil {
		return v.(*workspace)
	}
	n := m.nNodes
	return &workspace{
		r: make([]float64, n), z: make([]float64, n),
		p: make([]float64, n), ap: make([]float64, n),
		rhs:   make([]float64, n),
		parts: make([]float64, numStripes(n)),
	}
}

func (m *Model) putWorkspace(ws *workspace) { m.wsPool.Put(ws) }

// getX fetches a solution vector from the pool fed by Result.Recycle.
func (m *Model) getX() []float64 {
	if v := m.xPool.Get(); v != nil {
		return *(v.(*[]float64))
	}
	return make([]float64, m.nNodes)
}

// kernelThreads resolves the worker count for this model's solves: the
// config override, else the package default, gated to serial for systems
// too small to amortize dispatch.
func (m *Model) kernelThreads() int {
	if m.nNodes < parallelMinNodes {
		return 1
	}
	t := m.cfg.KernelThreads
	if t <= 0 {
		t = KernelThreads()
	}
	return t
}

// Solve computes the steady-state temperature field for the given
// chip-layer power map (watts per package-grid cell, length Nx*Ny).
func (m *Model) Solve(chipPower []float64) (*Result, error) {
	return m.SolveWarm(chipPower, nil)
}

// SolveCtx is Solve with cooperative cancellation: the CG iteration checks
// ctx periodically and aborts with ctx's error once it is done.
func (m *Model) SolveCtx(ctx context.Context, chipPower []float64) (*Result, error) {
	return m.SolveWarmCtx(ctx, chipPower, nil)
}

// SolveWarm is Solve with a warm start from a previous result for the same
// model (pass nil for a cold start from ambient).
func (m *Model) SolveWarm(chipPower []float64, prev *Result) (*Result, error) {
	return m.SolveWarmCtx(context.Background(), chipPower, prev)
}

// SolveWarmCtx is SolveWarm with cooperative cancellation (see SolveCtx).
func (m *Model) SolveWarmCtx(ctx context.Context, chipPower []float64, prev *Result) (*Result, error) {
	var seed []float64
	if prev != nil {
		seed = prev.T
	}
	return m.SolveSeededCtx(ctx, chipPower, seed)
}

// SolveSeeded is Solve with the CG iteration seeded from an arbitrary
// temperature field (length NumNodes) — typically a retained field from a
// neighboring evaluation rather than this model's own previous result.
// Seeds that cannot safely start an iteration (wrong length, or holding
// NaN/Inf entries) are ignored and the solve cold-starts from ambient, so
// a bad seed can cost time but never correctness.
func (m *Model) SolveSeeded(chipPower, seed []float64) (*Result, error) {
	return m.SolveSeededCtx(context.Background(), chipPower, seed)
}

// SolveSeededCtx is SolveSeeded with cooperative cancellation (see SolveCtx).
func (m *Model) SolveSeededCtx(ctx context.Context, chipPower, seed []float64) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("thermal: solve abandoned before starting: %w", err)
	}
	if len(chipPower) != m.nCells {
		return nil, fmt.Errorf("thermal: power map has %d cells, model grid has %d", len(chipPower), m.nCells)
	}
	ws := m.getWorkspace()
	defer m.putWorkspace(ws)
	rhs := ws.rhs
	for i := range rhs {
		rhs[i] = 0
	}
	chipBase := m.ChipLayerOffset()
	for c, p := range chipPower {
		if p < 0 {
			return nil, fmt.Errorf("thermal: negative power %g at cell %d", p, c)
		}
		rhs[chipBase+c] = p
	}
	m.addBoundaryRHS(rhs)
	x := m.getX()
	warm := validSeed(seed, m.nNodes)
	if warm {
		copy(x, seed)
	} else {
		for i := range x {
			x[i] = m.cfg.AmbientC
		}
	}
	return m.runPCG(ctx, ws, x, warm)
}

// validSeed reports whether a seed field can start a CG iteration: exactly
// one value per node and every value finite. A NaN or Inf anywhere would
// poison the Krylov recurrence and surface as a spurious non-convergence
// (or worse, a NaN field), so such seeds are rejected up front.
func validSeed(seed []float64, n int) bool {
	if len(seed) != n {
		return false
	}
	for _, v := range seed {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// SolveMulti solves with power injected into several package layers at
// once — the 3D-stacking case, where more than one CMOS layer dissipates.
// Keys are layer indices (bottom-up, as in the stack); values are
// per-cell watts (length Nx*Ny).
func (m *Model) SolveMulti(perLayer map[int][]float64) (*Result, error) {
	return m.SolveMultiCtx(context.Background(), perLayer)
}

// SolveMultiCtx is SolveMulti with cooperative cancellation; like
// SolveWarmCtx it runs the CG under a "thermal.cg" span, so multi-layer
// solves show up in request traces too.
func (m *Model) SolveMultiCtx(ctx context.Context, perLayer map[int][]float64) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("thermal: solve abandoned before starting: %w", err)
	}
	ws := m.getWorkspace()
	defer m.putWorkspace(ws)
	rhs := ws.rhs
	for i := range rhs {
		rhs[i] = 0
	}
	for l, pmap := range perLayer {
		if l < 0 || l >= m.nLayer {
			return nil, fmt.Errorf("thermal: power layer %d out of range [0,%d)", l, m.nLayer)
		}
		if len(pmap) != m.nCells {
			return nil, fmt.Errorf("thermal: layer %d power map has %d cells, model grid has %d", l, len(pmap), m.nCells)
		}
		for c, p := range pmap {
			if p < 0 {
				return nil, fmt.Errorf("thermal: negative power %g at layer %d cell %d", p, l, c)
			}
			rhs[l*m.nCells+c] += p
		}
	}
	m.addBoundaryRHS(rhs)
	x := m.getX()
	for i := range x {
		x[i] = m.cfg.AmbientC
	}
	return m.runPCG(ctx, ws, x, false)
}

// addBoundaryRHS adds the ambient boundary terms (sink convection and the
// optional board path) to an assembled right-hand side.
func (m *Model) addBoundaryRHS(rhs []float64) {
	for c := 0; c < m.nCells; c++ {
		rhs[m.sinkBase+c] += m.convG[c] * m.cfg.AmbientC
	}
	for c, g := range m.boardG {
		rhs[c] += g * m.cfg.AmbientC
	}
}

// runPCG runs the preconditioned CG under a span, assembling the Result.
// On error the solution buffer goes back to the pool.
func (m *Model) runPCG(ctx context.Context, ws *workspace, x []float64, warm bool) (*Result, error) {
	ctx, sp := obs.Start(ctx, "thermal.cg")
	var pre cgPre = m.precond
	if m.mg != nil {
		pre = m.mg
	}
	sys := cgSystem{
		diag: m.diag, mat: m.csr, pre: pre,
		tol: m.cfg.Tolerance, maxIter: m.cfg.MaxIterations,
		threads: m.kernelThreads(),
	}
	iters, res, err := pcgSolve(ctx, &sys, ws, x, ws.rhs)
	sp.SetAttr("iterations", iters)
	if !math.IsNaN(res) { // NaN (abandoned solve) is not JSON-encodable
		sp.SetAttr("residual", res)
	}
	sp.SetAttr("grid_n", m.grid.Nx)
	sp.SetAttr("warm_start", warm)
	sp.SetAttr("precond", m.precondName)
	sp.End()
	if err != nil {
		m.xPool.Put(&x)
		return nil, err
	}
	return &Result{T: x, Iterations: iters, Residual: res, model: m}, nil
}

// cgSystem bundles the SPD system one PCG run solves: the (possibly
// shifted) diagonal, the shared CSR off-diagonals, a matching
// preconditioner (IC(0) or the multigrid V-cycle), and the iteration
// controls.
type cgSystem struct {
	diag    []float64
	mat     *csrMatrix
	pre     cgPre
	tol     float64
	maxIter int
	threads int
}

// pcgSolve runs preconditioned conjugate gradients, overwriting x with the
// solution of A·x = b. Returns iterations used and the final relative
// residual. ctx is checked every few iterations so long solves can be
// abandoned (e.g. when an HTTP client disconnects). All vector stages run
// through the striped kernel, so the result is bit-identical for every
// thread count (see kernel.go for the determinism contract).
func pcgSolve(ctx context.Context, sys *cgSystem, ws *workspace, x, b []float64) (int, float64, error) {
	th := sys.threads
	r, z, p, ap, parts := ws.r, ws.z, ws.p, ws.ap, ws.parts

	spmvStriped(th, sys.diag, sys.mat, ap, x, nil, nil)
	residualStriped(th, r, b, ap, parts)
	bnorm := math.Sqrt(reduceParts(parts))
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return 0, 0, nil
	}
	// Convergence is relative to ‖b‖ (residualStriped's parts accumulate
	// Σb², not Σr²), so a warm start's head start is banked rather than
	// re-normalized away — and a seed already inside tolerance must return
	// before paying for a single iteration, preconditioner application
	// included. That early exit is what makes same-operator warm starts
	// (leakage passes, repeated search points) nearly free.
	dotStriped(th, r, r, parts)
	r0norm := math.Sqrt(reduceParts(parts))
	if r0norm/bnorm < sys.tol {
		return 0, r0norm / bnorm, nil
	}
	rz := sys.pre.precondApply(th, ws, z, r)
	copy(p, z)
	for it := 1; it <= sys.maxIter; it++ {
		if it&0x1f == 0 {
			select {
			case <-ctx.Done():
				return it, math.NaN(), fmt.Errorf("thermal: solve abandoned after %d CG iterations: %w", it, ctx.Err())
			default:
			}
		}
		spmvStriped(th, sys.diag, sys.mat, ap, p, p, parts)
		pap := reduceParts(parts)
		if pap <= 0 {
			return it, math.NaN(), fmt.Errorf("thermal: CG breakdown (pAp = %g); matrix not SPD", pap)
		}
		alpha := rz / pap
		updateStriped(th, alpha, x, p, r, ap, parts)
		rnorm := math.Sqrt(reduceParts(parts))
		if rnorm/bnorm < sys.tol {
			return it, rnorm / bnorm, nil
		}
		rzNew := sys.pre.precondApply(th, ws, z, r)
		beta := rzNew / rz
		rz = rzNew
		combineStriped(th, beta, p, z)
	}
	dotStriped(th, r, r, parts)
	rnorm := math.Sqrt(reduceParts(parts))
	return sys.maxIter, rnorm / bnorm, fmt.Errorf(
		"thermal: CG did not converge in %d iterations (residual %.3g)",
		sys.maxIter, rnorm/bnorm)
}

// icPreconditioner is a zero-fill incomplete Cholesky factorization
// A ≈ L·Lᵀ restricted to A's sparsity pattern. Thermal conductance matrices
// are symmetric M-matrices, for which IC(0) exists and is stable; a
// diagonal-shift fallback guards against rounding-induced breakdown.
//
// Both triangular solves are gather-only: the forward pass reads the lower
// factor row-wise, and the backward pass reads a precomputed transpose of
// it (upPtr/upCol/upVal), so neither loop scatters writes across rows and
// each fuses its division into the single sweep.
type icPreconditioner struct {
	n      int
	rowPtr []int32   // CSR row pointers for the strict lower triangle
	colIdx []int32   // column indices (sorted ascending per row)
	lval   []float64 // factor values for the strict lower triangle
	d      []float64 // diagonal of L
	dinv   []float64 // 1/d: the solves multiply, since an FP divide in a
	// loop-carried dependency chain costs ~10x a multiply

	upPtr []int32   // CSR of the strict upper triangle (Lᵀ's rows)
	upCol []int32   // for row i: the rows j > i with L[j][i] ≠ 0
	upVal []float64 // L[j][i], mirrored from lval after factorization
	upPos []int32   // lval index backing each upVal entry
}

// newICPreconditioner builds the factorization from an edge list (test
// entry point); production models pass their CSR via newICFromCSR.
func newICPreconditioner(n int, diag []float64, links []link) *icPreconditioner {
	return newICFromCSR(n, diag, newCSR(n, links))
}

// newICFromCSR builds IC(0) from the full symmetric CSR structure. The CSR
// rows are already column-sorted, so the lower triangle of row i is simply
// the row's prefix with col < i — no per-row sorting remains.
func newICFromCSR(n int, diag []float64, a *csrMatrix) *icPreconditioner {
	lower := 0
	for i := 0; i < n; i++ {
		for idx := a.rowPtr[i]; idx < a.rowPtr[i+1]; idx++ {
			if a.colIdx[idx] < int32(i) {
				lower++
			}
		}
	}
	rowPtr := make([]int32, n+1)
	colIdx := make([]int32, lower)
	aval := make([]float64, lower)
	pos := int32(0)
	for i := 0; i < n; i++ {
		rowPtr[i] = pos
		for idx := a.rowPtr[i]; idx < a.rowPtr[i+1]; idx++ {
			c := a.colIdx[idx]
			if c >= int32(i) {
				break // columns are sorted; the rest is the upper triangle
			}
			colIdx[pos] = c
			aval[pos] = a.vals[idx]
			pos++
		}
	}
	rowPtr[n] = pos

	ic := &icPreconditioner{
		n: n, rowPtr: rowPtr, colIdx: colIdx,
		lval: make([]float64, lower),
		d:    make([]float64, n),
		dinv: make([]float64, n),
	}
	ic.buildTranspose()
	ic.factor(diag, aval)
	return ic
}

// buildTranspose indexes the strict upper triangle (the lower factor's
// transpose) so backward substitution can gather instead of scatter.
func (ic *icPreconditioner) buildTranspose() {
	n := ic.n
	ic.upPtr = make([]int32, n+1)
	for _, c := range ic.colIdx {
		ic.upPtr[c+1]++
	}
	for i := 0; i < n; i++ {
		ic.upPtr[i+1] += ic.upPtr[i]
	}
	ic.upCol = make([]int32, len(ic.colIdx))
	ic.upPos = make([]int32, len(ic.colIdx))
	ic.upVal = make([]float64, len(ic.colIdx))
	off := make([]int32, n)
	copy(off, ic.upPtr[:n])
	for j := 0; j < n; j++ {
		for idx := ic.rowPtr[j]; idx < ic.rowPtr[j+1]; idx++ {
			i := ic.colIdx[idx]
			q := off[i]
			off[i]++
			ic.upCol[q] = int32(j)
			ic.upPos[q] = idx
		}
	}
}

func (ic *icPreconditioner) factor(diag, aval []float64) {
	n := ic.n
	for i := 0; i < n; i++ {
		ri0, ri1 := ic.rowPtr[i], ic.rowPtr[i+1]
		for idx := ri0; idx < ri1; idx++ {
			k := ic.colIdx[idx]
			s := aval[idx]
			// s -= Σ_m L[i][m]·L[k][m] over shared columns m < k.
			a, aEnd := ri0, idx
			b, bEnd := ic.rowPtr[k], ic.rowPtr[k+1]
			for a < aEnd && b < bEnd {
				ca, cb := ic.colIdx[a], ic.colIdx[b]
				switch {
				case ca == cb:
					s -= ic.lval[a] * ic.lval[b]
					a++
					b++
				case ca < cb:
					a++
				default:
					b++
				}
			}
			ic.lval[idx] = s / ic.d[k]
		}
		dv := diag[i]
		for idx := ri0; idx < ri1; idx++ {
			dv -= ic.lval[idx] * ic.lval[idx]
		}
		if dv <= 0 {
			// Breakdown guard: fall back to the (always positive) original
			// diagonal, locally degrading toward Jacobi.
			dv = diag[i]
		}
		ic.d[i] = math.Sqrt(dv)
		ic.dinv[i] = 1 / ic.d[i]
	}
	// Mirror the factor into the transpose for the backward gather.
	for q, pos := range ic.upPos {
		ic.upVal[q] = ic.lval[pos]
	}
}

// apply computes z = M⁻¹·r via forward (L·y = r) and backward (Lᵀ·z = y)
// substitution, returning Σ r[i]·z[i] — the r·z inner product CG needs
// right after preconditioning — accumulated inside the backward sweep so
// the pair costs one memory pass instead of two. Both sweeps are fused
// gather loops: one read pass over the factor, one sequential write per
// row, the diagonal reciprocal folded in. The sweeps (and the returned
// dot) run serially in row order for every kernel thread count, so the
// fused sum never threatens the determinism contract.
func (ic *icPreconditioner) apply(z, r []float64) float64 {
	n := ic.n
	rowPtr, colIdx, lval, dinv := ic.rowPtr, ic.colIdx, ic.lval, ic.dinv
	for i := 0; i < n; i++ {
		s := r[i]
		end := rowPtr[i+1]
		for idx := rowPtr[i]; idx < end; idx++ {
			s -= lval[idx] * z[colIdx[idx]]
		}
		z[i] = s * dinv[i]
	}
	upPtr, upCol, upVal := ic.upPtr, ic.upCol, ic.upVal
	rz := 0.0
	for i := n - 1; i >= 0; i-- {
		s := z[i]
		end := upPtr[i+1]
		for idx := upPtr[i]; idx < end; idx++ {
			s -= upVal[idx] * z[upCol[idx]]
		}
		zi := s * dinv[i]
		z[i] = zi
		rz += r[i] * zi
	}
	return rz
}
