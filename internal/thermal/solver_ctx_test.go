package thermal

import (
	"context"
	"errors"
	"testing"

	"chiplet25d/internal/floorplan"
)

// TestSolveCtxCanceled verifies the CG loop aborts with the context error
// instead of running to convergence.
func TestSolveCtxCanceled(t *testing.T) {
	pl, err := floorplan.UniformGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(stack, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pmap := make([]float64, m.Grid().NumCells())
	for _, c := range pl.Chiplets {
		m.Grid().RasterizeAdd(pmap, c, 25)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.SolveCtx(ctx, pmap); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveCtx with canceled context: got %v, want context.Canceled", err)
	}
	// The context-free path must be unaffected.
	if _, err := m.Solve(pmap); err != nil {
		t.Fatalf("Solve after canceled SolveCtx: %v", err)
	}
}
