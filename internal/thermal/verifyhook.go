package thermal

// Verification-only mutation hook for internal/verify's mutation smoke
// test: the harness must be proven to fail on a model whose conductances
// are wrong, otherwise a passing suite says nothing.

// PerturbLinksForVerify scales every off-diagonal conductance of the
// finalized system by a seeded per-link factor in [1-frac, 1-frac/2),
// leaving the diagonal (and the convection/board boundary terms) untouched.
// That models the classic assembly bug — link and diagonal contributions
// computed from different conductance values — which no consistent network
// can exhibit: row sums stop telescoping, so the solved field leaks heat
// into a phantom ground and both the energy-balance invariant and the
// golden corpus must detect it.
//
// The perturbed matrix stays symmetric positive definite for any
// 0 < frac < 1: each symmetric pair (i,j)/(j,i) is scaled by the same
// factor s_ij < 1 (the factor is derived from the unordered pair, not the
// entry), so A' = A_consistent + D where A_consistent is the valid
// conductance matrix assembled from the scaled links and D is the
// non-negative diagonal left behind by the stale row sums. The stale IC(0)
// preconditioner remains a valid SPD preconditioner, so CG still converges.
//
// Test-only: callers must perturb before any solve runs and must not share
// the model. Production code never calls this.
func (m *Model) PerturbLinksForVerify(seed int64, frac float64) {
	if frac <= 0 || frac >= 1 {
		return
	}
	for i := 0; i < m.csr.n; i++ {
		for idx := m.csr.rowPtr[i]; idx < m.csr.rowPtr[i+1]; idx++ {
			j := int(m.csr.colIdx[idx])
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			h := mixForVerify(uint64(seed) ^ uint64(lo)<<32 ^ uint64(hi))
			u := float64(h>>11) / (1 << 53) // [0, 1)
			m.csr.vals[idx] *= 1 - frac + frac/2*u
		}
	}
}

// mixForVerify is the splitmix64 finalizer: a cheap, stateless way to turn
// an (seed, pair) coordinate into a reproducible factor.
func mixForVerify(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
