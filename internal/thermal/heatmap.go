package thermal

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Heatmap export: render a solved chip-layer temperature field as ASCII art
// (for terminals and logs) or as a binary PGM image (for any image viewer),
// so organizations can be inspected visually — the hot spots over chiplets
// and the cool inter-chiplet corridors are the paper's Fig. 8 intuition.

// asciiRamp orders glyphs from coolest to hottest.
const asciiRamp = " .:-=+*#%@"

// HeatmapASCII renders the chip-layer field with one character per grid
// cell, scaled between the field's min and max, with a legend.
func (r *Result) HeatmapASCII() string {
	g := r.model.grid
	chip := r.ChipT()
	lo, hi := minMax(chip)
	var sb strings.Builder
	fmt.Fprintf(&sb, "chip layer %.1f..%.1f °C (one cell per char, '%c' hottest)\n",
		lo, hi, asciiRamp[len(asciiRamp)-1])
	span := hi - lo
	for iy := g.Ny - 1; iy >= 0; iy-- {
		for ix := 0; ix < g.Nx; ix++ {
			t := chip[g.Index(ix, iy)]
			idx := 0
			if span > 1e-9 {
				idx = int((t - lo) / span * float64(len(asciiRamp)-1))
			}
			if idx < 0 {
				idx = 0
			}
			if idx >= len(asciiRamp) {
				idx = len(asciiRamp) - 1
			}
			sb.WriteByte(asciiRamp[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// WriteHeatmapPGM writes the chip-layer field as a binary 8-bit PGM image
// (P5), brightest = hottest, optionally scaled to fixed temperature bounds
// (pass loC >= hiC to auto-scale to the field's range).
func (r *Result) WriteHeatmapPGM(w io.Writer, loC, hiC float64) error {
	g := r.model.grid
	chip := r.ChipT()
	if loC >= hiC {
		loC, hiC = minMax(chip)
		if hiC-loC < 1e-9 {
			hiC = loC + 1
		}
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", g.Nx, g.Ny); err != nil {
		return err
	}
	row := make([]byte, g.Nx)
	for iy := g.Ny - 1; iy >= 0; iy-- {
		for ix := 0; ix < g.Nx; ix++ {
			t := chip[g.Index(ix, iy)]
			v := (t - loC) / (hiC - loC) * 255
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			row[ix] = byte(v)
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteFieldCSV writes the chip-layer temperatures as CSV with cell-center
// coordinates in millimeters: x_mm,y_mm,temp_C.
func (r *Result) WriteFieldCSV(w io.Writer) error {
	g := r.model.grid
	chip := r.ChipT()
	if _, err := fmt.Fprintln(w, "x_mm,y_mm,temp_C"); err != nil {
		return err
	}
	for iy := 0; iy < g.Ny; iy++ {
		for ix := 0; ix < g.Nx; ix++ {
			cx, cy := g.CellRect(ix, iy).Center()
			if _, err := fmt.Fprintf(w, "%.4f,%.4f,%.4f\n", cx, cy, chip[g.Index(ix, iy)]); err != nil {
				return err
			}
		}
	}
	return nil
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
