package thermal

import (
	"math"
	"testing"
)

// mgModel builds the same uniform-grid test model as gridModel but with the
// multigrid preconditioner selected.
func mgModel(t testing.TB, nx, kernelThreads int) (*Model, []float64) {
	t.Helper()
	m, pmap := gridModel(t, nx, kernelThreads)
	cfg := m.Config()
	cfg.Preconditioner = PrecondMG
	mg, err := NewModel(m.Stack(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return mg, pmap
}

// TestMGSelectedAndFallback pins the selection rules: multigrid engages on
// coarsenable grids, falls back to IC(0) on grids too small to halve, and
// the default config keeps IC(0).
func TestMGSelectedAndFallback(t *testing.T) {
	m, _ := mgModel(t, 16, 1)
	if got := m.PreconditionerName(); got != PrecondMG {
		t.Errorf("16x16 with Preconditioner=mg: using %q, want %q", got, PrecondMG)
	}
	m, _ = mgModel(t, 4, 1)
	if got := m.PreconditionerName(); got != PrecondIC0 {
		t.Errorf("4x4 with Preconditioner=mg: using %q, want fallback %q", got, PrecondIC0)
	}
	m, _ = gridModel(t, 16, 1)
	if got := m.PreconditionerName(); got != PrecondIC0 {
		t.Errorf("default config: using %q, want %q", got, PrecondIC0)
	}
}

func TestConfigValidatePreconditioner(t *testing.T) {
	cfg := DefaultConfig()
	for _, ok := range []string{"", PrecondIC0, PrecondMG} {
		cfg.Preconditioner = ok
		if err := cfg.Validate(); err != nil {
			t.Errorf("Preconditioner=%q: unexpected error %v", ok, err)
		}
	}
	cfg.Preconditioner = "amg"
	if err := cfg.Validate(); err == nil {
		t.Error("Preconditioner=amg: want validation error, got nil")
	}
}

// TestMGMatchesIC0 is the core differential: the multigrid-preconditioned
// solve must agree with the IC(0)-preconditioned solve node-for-node. Both
// converge the same SPD system to the same relative residual, so the
// fields differ only by the solver tolerance's error floor.
// tightTolerance rebuilds a model with the CG tolerance pinned far below
// the comparison bound: at the default 1e-7 each solver stops with ~1e-6 °C
// of leftover iteration error, so two independently-iterated fields can
// differ by twice that while both being correct. Differential comparisons
// must drive both solves well past the bound they assert.
func tightTolerance(t testing.TB, m *Model) *Model {
	t.Helper()
	cfg := m.Config()
	cfg.Tolerance = 1e-10
	tm, err := NewModel(m.Stack(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestMGMatchesIC0(t *testing.T) {
	for _, nx := range []int{16, 32} {
		ref, pmap := gridModel(t, nx, 1)
		ref = tightTolerance(t, ref)
		want, err := ref.Solve(pmap)
		if err != nil {
			t.Fatalf("nx=%d ic0 solve: %v", nx, err)
		}
		m, _ := mgModel(t, nx, 1)
		m = tightTolerance(t, m)
		got, err := m.Solve(pmap)
		if err != nil {
			t.Fatalf("nx=%d mg solve: %v", nx, err)
		}
		for i := range want.T {
			if d := math.Abs(got.T[i] - want.T[i]); d > 1e-6 {
				t.Fatalf("nx=%d: T[%d] differs by %g °C (mg %v, ic0 %v)",
					nx, i, d, got.T[i], want.T[i])
			}
		}
		if got.Iterations >= want.Iterations {
			t.Errorf("nx=%d: mg took %d iterations, ic0 %d — multigrid should cut iterations",
				nx, got.Iterations, want.Iterations)
		}
	}
}

// TestMGSerialParallelEquality extends the golden determinism test to the
// multigrid path: bit-identical fields at kernel threads {1, 2, 4} with
// striping forced on, per the kernel.go contract.
func TestMGSerialParallelEquality(t *testing.T) {
	forceStriping(t, 8, 1)
	for _, nx := range []int{16, 32} {
		serial, pmap := mgModel(t, nx, 1)
		ref, err := serial.Solve(pmap)
		if err != nil {
			t.Fatalf("nx=%d serial mg solve: %v", nx, err)
		}
		for _, threads := range []int{2, 4} {
			m, _ := mgModel(t, nx, threads)
			got, err := m.Solve(pmap)
			if err != nil {
				t.Fatalf("nx=%d threads=%d mg solve: %v", nx, threads, err)
			}
			if got.Iterations != ref.Iterations {
				t.Errorf("nx=%d threads=%d: %d iterations, serial took %d",
					nx, threads, got.Iterations, ref.Iterations)
			}
			for i := range ref.T {
				if got.T[i] != ref.T[i] { // bitwise, not approximate
					t.Fatalf("nx=%d threads=%d: T[%d] = %v, serial %v",
						nx, threads, i, got.T[i], ref.T[i])
				}
			}
		}
	}
}

// TestMGIterationBudget64 is the CG-iteration gate ci.sh runs: the cold
// 64x64 multigrid solve must converge within a pinned iteration budget.
// The hierarchy currently converges the production grid in 7 iterations
// (vs ~80 for IC(0) at the default tolerance); the budget at 12 gives
// comfortable headroom while still catching any regression that degrades
// the preconditioner (a broken transfer or smoother typically costs 5-10x,
// not 1.7x).
func TestMGIterationBudget64(t *testing.T) {
	m, pmap := mgModel(t, 64, 0)
	res, err := m.Solve(pmap)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 12
	if res.Iterations > budget {
		t.Errorf("cold 64x64 mg solve took %d CG iterations, budget is %d", res.Iterations, budget)
	}
	t.Logf("cold 64x64 mg solve: %d iterations, residual %.3g", res.Iterations, res.Residual)
}

// TestMGTransferRowSums checks prolongation reproduces constants (every
// row of P sums to exactly 1, boundary clamping included) — the property
// that keeps the coarse correction consistent with the fine equations.
func TestMGTransferRowSums(t *testing.T) {
	tr := newTransferOp(3, 16, 8)
	for i := 0; i < tr.nFine; i++ {
		s := 0.0
		for e := tr.rowPtr[i]; e < tr.rowPtr[i+1]; e++ {
			s += tr.w[e]
		}
		if math.Abs(s-1) > 1e-15 {
			t.Fatalf("P row %d sums to %v, want 1", i, s)
		}
	}
	if tr.nCoarse != 3*8*4 {
		t.Fatalf("nCoarse = %d, want %d", tr.nCoarse, 3*8*4)
	}
}

// TestMGGalerkinSymmetric checks the assembled coarse operator is exactly
// symmetric (the symmetrization pass is what CG's theory assumes).
func TestMGGalerkinSymmetric(t *testing.T) {
	m, _ := mgModel(t, 16, 1)
	if m.mg == nil {
		t.Fatal("multigrid not built")
	}
	for lvl := 1; lvl < len(m.mg.levels); lvl++ {
		mat := m.mg.levels[lvl].mat
		for i := 0; i < mat.n; i++ {
			for idx := mat.rowPtr[i]; idx < mat.rowPtr[i+1]; idx++ {
				j := int(mat.colIdx[idx])
				if j <= i {
					continue
				}
				lo, hi := mat.rowPtr[j], mat.rowPtr[j+1]
				found := false
				for e := lo; e < hi; e++ {
					if int(mat.colIdx[e]) == i {
						if mat.vals[e] != mat.vals[idx] {
							t.Fatalf("level %d: A[%d][%d]=%v != A[%d][%d]=%v",
								lvl, i, j, mat.vals[idx], j, i, mat.vals[e])
						}
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("level %d: entry (%d,%d) has no mirror", lvl, i, j)
				}
			}
		}
	}
}

// --- SolveSeeded / SolveWarm edge cases ------------------------------------

// solveCold returns the reference cold solution for comparison.
func solveCold(t *testing.T, m *Model, pmap []float64) *Result {
	t.Helper()
	res, err := m.Solve(pmap)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSolveWarmWrongGeometry feeds SolveWarm a previous result from a
// different-geometry model. The seed must be ignored (cold start), never
// used at the wrong length.
func TestSolveWarmWrongGeometry(t *testing.T) {
	small, smallPmap := gridModel(t, 16, 1)
	prev := solveCold(t, small, smallPmap)
	m, pmap := gridModel(t, 32, 1)
	want := solveCold(t, m, pmap)
	got, err := m.SolveWarm(pmap, prev)
	if err != nil {
		t.Fatalf("SolveWarm with foreign prev: %v", err)
	}
	for i := range want.T {
		if got.T[i] != want.T[i] {
			t.Fatalf("T[%d] = %v, cold solve %v", i, got.T[i], want.T[i])
		}
	}
}

// TestSolveWarmRecycledResult feeds SolveWarm an already-recycled Result
// (T == nil): it must behave exactly like a cold start.
func TestSolveWarmRecycledResult(t *testing.T) {
	m, pmap := gridModel(t, 16, 1)
	want := solveCold(t, m, pmap)
	prev := solveCold(t, m, pmap)
	prev.Recycle()
	got, err := m.SolveWarm(pmap, prev)
	if err != nil {
		t.Fatalf("SolveWarm with recycled prev: %v", err)
	}
	for i := range want.T {
		if got.T[i] != want.T[i] {
			t.Fatalf("T[%d] = %v, cold solve %v", i, got.T[i], want.T[i])
		}
	}
}

// TestSolveSeededNaNSeed poisons one seed entry with NaN (and, separately,
// Inf). The solver must reject the seed and converge from ambient — a NaN
// reaching the Krylov recurrence would otherwise poison the entire field.
func TestSolveSeededNaNSeed(t *testing.T) {
	m, pmap := gridModel(t, 16, 1)
	want := solveCold(t, m, pmap)
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		seed := make([]float64, m.NumNodes())
		copy(seed, want.T)
		seed[len(seed)/2] = bad
		got, err := m.SolveSeeded(pmap, seed)
		if err != nil {
			t.Fatalf("SolveSeeded with %v entry: %v", bad, err)
		}
		for i := range want.T {
			if got.T[i] != want.T[i] {
				t.Fatalf("seed entry %v: T[%d] = %v, cold solve %v", bad, i, got.T[i], want.T[i])
			}
		}
	}
}

// TestSolveSeededNeighborField seeds a solve with a converged field from a
// genuinely different model (same geometry, perturbed conductances): it
// must converge to the same fixed point as the cold solve within the
// tolerance error floor, in fewer iterations.
func TestSolveSeededNeighborField(t *testing.T) {
	m, pmap := gridModel(t, 32, 1)
	m = tightTolerance(t, m)
	want := solveCold(t, m, pmap)
	// The neighbor here is a search move on the same model: the operator is
	// unchanged and only the power map differs, which is exactly the
	// situation the org engine's field cache serves. (A neighbor with
	// perturbed conductances is the unrewarding case: its field difference
	// is concentrated in the solver's slowest mode and the seed saves
	// nothing — see DESIGN.md.)
	pmap2 := make([]float64, len(pmap))
	for i, p := range pmap {
		pmap2[i] = p * (1 + 0.05*float64(i%3))
	}
	seedRes, err := m.Solve(pmap2)
	if err != nil {
		t.Fatalf("neighbor-move solve: %v", err)
	}
	got, err := m.SolveSeeded(pmap, seedRes.T)
	if err != nil {
		t.Fatalf("SolveSeeded with neighbor field: %v", err)
	}
	for i := range want.T {
		if d := math.Abs(got.T[i] - want.T[i]); d > 1e-6 {
			t.Fatalf("T[%d] differs from cold solve by %g °C", i, d)
		}
	}
	if got.Iterations >= want.Iterations {
		t.Errorf("neighbor-seeded solve took %d iterations, cold took %d — a same-operator seed must save work",
			got.Iterations, want.Iterations)
	}
	// A seed that is already the solution must converge essentially
	// immediately: convergence is measured against ‖b‖, so the head start
	// is banked, not re-normalized away. One iteration of slack covers the
	// drift between the recurrence residual the solve stopped on and the
	// true residual the seeded solve recomputes.
	again, err := m.SolveSeeded(pmap, want.T)
	if err != nil {
		t.Fatalf("SolveSeeded with own solution: %v", err)
	}
	if again.Iterations > 1 {
		t.Errorf("own-solution seed took %d iterations, want <= 1", again.Iterations)
	}
}

// BenchmarkSolveColdGrid64MG times the cold production-grid solve on the
// multigrid path (the tentpole target: <10 ms vs ~70 ms for IC(0)).
func BenchmarkSolveColdGrid64MG(b *testing.B) {
	m, pmap := mgModel(b, 64, 1)
	iters := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.Solve(pmap)
		if err != nil {
			b.Fatal(err)
		}
		iters = res.Iterations
		res.Recycle()
	}
	b.ReportMetric(float64(iters), "cg-iters/op")
}

// BenchmarkSolveWarmNeighborMG times the neighbor-seeded warm solve the
// org engine's field cache serves: the same model evaluated at a nearby
// search point (the operator unchanged, the power map shifted), seeded
// with that neighbor's converged field (target: <300 µs).
func BenchmarkSolveWarmNeighborMG(b *testing.B) {
	m, pmap := mgModel(b, 64, 1)
	pmap2 := make([]float64, len(pmap))
	for i, p := range pmap {
		pmap2[i] = p * (1 + 0.05*float64(i%3))
	}
	seedRes, err := m.Solve(pmap2)
	if err != nil {
		b.Fatal(err)
	}
	iters := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.SolveSeeded(pmap, seedRes.T)
		if err != nil {
			b.Fatal(err)
		}
		iters = res.Iterations
		res.Recycle()
	}
	b.ReportMetric(float64(iters), "cg-iters/op")
}
