package thermal

import (
	"math"
	"testing"

	"chiplet25d/internal/floorplan"
)

func uniformGridPlacement(r int, spacing float64) (floorplan.Placement, error) {
	return floorplan.UniformGrid(r, spacing)
}

func modelFor(pl floorplan.Placement, cfg Config) (*Model, error) {
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		return nil, err
	}
	return NewModel(stack, cfg)
}

func TestTransientRejectsBadArgs(t *testing.T) {
	m := singleChipModel(t, 16)
	if _, err := m.NewTransientSolver(0); err == nil {
		t.Errorf("expected error for zero time step")
	}
	ts, err := m.NewTransientSolver(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Step(make([]float64, 3)); err == nil {
		t.Errorf("expected error for wrong power map length")
	}
	bad := make([]float64, m.Grid().NumCells())
	bad[0] = -1
	if _, err := ts.Step(bad); err == nil {
		t.Errorf("expected error for negative power")
	}
}

func TestTransientStartsAtAmbient(t *testing.T) {
	m := singleChipModel(t, 16)
	ts, err := m.NewTransientSolver(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ts.PeakC()-m.Config().AmbientC) > 1e-9 {
		t.Fatalf("initial peak %.3f, want ambient", ts.PeakC())
	}
}

// Temperature under constant power must rise monotonically and converge to
// the steady-state solution.
func TestTransientConvergesToSteadyState(t *testing.T) {
	m := singleChipModel(t, 16)
	p := uniformChipPower(m, 300)
	steady, err := m.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := m.NewTransientSolver(0.5)
	if err != nil {
		t.Fatal(err)
	}
	prev := ts.PeakC()
	for i := 0; i < 600; i++ {
		peak, err := ts.Step(p)
		if err != nil {
			t.Fatal(err)
		}
		if peak < prev-1e-6 {
			t.Fatalf("step %d: peak fell from %.4f to %.4f under constant power", i, prev, peak)
		}
		prev = peak
	}
	if d := math.Abs(ts.PeakC() - steady.PeakC()); d > 0.5 {
		t.Fatalf("transient peak %.2f did not converge to steady %.2f (Δ=%.2f)",
			ts.PeakC(), steady.PeakC(), d)
	}
}

// Power removed: the field must decay back toward ambient.
func TestTransientCoolsDown(t *testing.T) {
	m := singleChipModel(t, 16)
	p := uniformChipPower(m, 300)
	ts, err := m.NewTransientSolver(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := ts.Step(p); err != nil {
			t.Fatal(err)
		}
	}
	hot := ts.PeakC()
	zero := make([]float64, m.Grid().NumCells())
	for i := 0; i < 100; i++ {
		if _, err := ts.Step(zero); err != nil {
			t.Fatal(err)
		}
	}
	if ts.PeakC() >= hot {
		t.Fatalf("field did not cool: %.2f -> %.2f", hot, ts.PeakC())
	}
	for i := 0; i < 2000; i++ {
		if _, err := ts.Step(zero); err != nil {
			t.Fatal(err)
		}
	}
	if d := ts.PeakC() - m.Config().AmbientC; d > 1 {
		t.Fatalf("field stuck %.2f °C above ambient after long decay", d)
	}
}

// A smaller time step must not change the long-run answer materially
// (backward Euler consistency).
func TestTransientStepSizeConsistency(t *testing.T) {
	m := singleChipModel(t, 16)
	p := uniformChipPower(m, 250)
	peakAt := func(dt float64, steps int) float64 {
		ts, err := m.NewTransientSolver(dt)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			if _, err := ts.Step(p); err != nil {
				t.Fatal(err)
			}
		}
		return ts.PeakC()
	}
	coarse := peakAt(0.2, 50) // 10 s
	fine := peakAt(0.05, 200) // 10 s
	if d := math.Abs(coarse - fine); d > 1.5 {
		t.Fatalf("time-step sensitivity too high: %.2f vs %.2f", coarse, fine)
	}
}

// Sprinting headroom: starting from the idle state, a 2.5D spread system
// must sustain an over-envelope power burst longer than the single chip.
func TestTransientSprintHeadroom(t *testing.T) {
	sprintTime := func(m *Model) float64 {
		ts, err := m.NewTransientSolver(0.1)
		if err != nil {
			t.Fatal(err)
		}
		p := uniformChipPower(m, 500) // well above the 85 °C envelope for 2D
		tt, hit, err := ts.TimeToThreshold(p, 85, 120)
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			return 120
		}
		return tt
	}
	m2d := singleChipModel(t, 16)
	pl, err := uniformGridPlacement(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	m25, err := modelFor(pl, testConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	t2d := sprintTime(m2d)
	t25 := sprintTime(m25)
	if t25 <= t2d {
		t.Fatalf("2.5D sprint time %.1f s should exceed 2D %.1f s", t25, t2d)
	}
}

func TestTransientSetStateAndReset(t *testing.T) {
	m := singleChipModel(t, 16)
	p := uniformChipPower(m, 300)
	steady, err := m.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := m.NewTransientSolver(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.SetState(steady); err != nil {
		t.Fatal(err)
	}
	if math.Abs(ts.PeakC()-steady.PeakC()) > 1e-9 {
		t.Fatalf("SetState did not copy the field")
	}
	// Already at the threshold: TimeToThreshold returns immediately.
	tt, hit, err := ts.TimeToThreshold(p, steady.PeakC()-1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || tt != 0 {
		t.Fatalf("expected immediate threshold hit, got (%v, %v)", tt, hit)
	}
	ts.Reset()
	if math.Abs(ts.PeakC()-m.Config().AmbientC) > 1e-9 || ts.Elapsed != 0 {
		t.Fatalf("Reset did not restore ambient")
	}
	if err := ts.SetState(&Result{T: make([]float64, 3)}); err == nil {
		t.Errorf("expected error for mismatched state")
	}
}
