// Package thermal implements a steady-state grid thermal simulator for
// layered 2D/2.5D package stacks, following the modeling approach of
// HotSpot's grid model (the tool the paper uses): every layer is discretized
// on a uniform grid with per-cell heterogeneous material properties taken
// from the floorplan, cells exchange heat laterally within a layer and
// vertically with the layers above and below, and the stack is capped by a
// copper heat spreader (edge 2x the package footprint) and a finned heat
// sink (edge 2x the spreader) that convects to ambient with a fixed heat
// transfer coefficient. The resulting sparse symmetric positive-definite
// system is solved with preconditioned conjugate gradients.
//
// Temperatures are in degrees Celsius, power in watts, plan geometry in
// millimeters (converted to SI internally).
package thermal

import (
	"fmt"
	"math"
	"sync"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/geom"
)

// Config holds solver and cooling-package parameters.
type Config struct {
	// Nx, Ny are the package grid dimensions. Both must be divisible by 4
	// so the 2x-spreader and 4x-sink grids nest exactly. The paper uses a
	// 64 x 64 grid.
	Nx, Ny int
	// AmbientC is the ambient temperature (the paper uses 45 °C).
	AmbientC float64
	// HeatTransferCoeff is the effective convection coefficient h in
	// W/(m²·K) from the sink's top surface. The paper keeps h constant as
	// the sink grows with the interposer (adjusting convective resistance).
	HeatTransferCoeff float64
	// BoardHeatTransferCoeff enables the secondary heat path: convection
	// from the substrate's bottom face to ambient (W/(m²·K)). Zero (the
	// default, matching HotSpot's default and the paper's setup) makes the
	// bottom adiabatic.
	BoardHeatTransferCoeff float64
	// SpreaderK and SinkK are the spreader/sink conductivities (copper).
	SpreaderK, SinkK float64
	// Tolerance is the relative residual target for the CG solve.
	Tolerance float64
	// MaxIterations bounds the CG solve.
	MaxIterations int
	// KernelThreads overrides the package-default worker count for the
	// parallel solver kernel (SetKernelThreads) for models built from this
	// config. 0 keeps the package default; 1 forces serial — what nested
	// parallelism (org's exhaustive scan, chipletd's worker pool) sets to
	// avoid oversubscription. The thread count never changes results: the
	// kernel is bit-deterministic across worker counts (see kernel.go).
	KernelThreads int
	// Preconditioner selects the CG preconditioner: PrecondIC0 (also the
	// empty string) or PrecondMG for the geometric multigrid V-cycle (see
	// mg.go). Grids the coarsener cannot halve fall back to IC(0);
	// PreconditionerName reports what a model actually uses. Like
	// KernelThreads this is a performance knob excluded from cache
	// identity — both preconditioners converge the same system to the
	// configured Tolerance — but unlike KernelThreads the two paths agree
	// only to solver tolerance, not bit-for-bit. Within one
	// preconditioner, results stay bit-identical at every thread count.
	Preconditioner string
}

// DefaultConfig returns the evaluation configuration from Sec. IV: 64x64
// grid, 45 °C ambient, constant heat transfer coefficient. The coefficient
// is calibrated so the 256-core single chip running a high-power benchmark
// at 1 GHz lands well above the 85 °C threshold while large-interposer
// 16-chiplet organizations can pull it below (Fig. 5's shape).
func DefaultConfig() Config {
	return Config{
		Nx: 64, Ny: 64,
		AmbientC:          45,
		HeatTransferCoeff: 2800,
		SpreaderK:         400,
		SinkK:             400,
		Tolerance:         1e-7,
		MaxIterations:     20000,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nx <= 0 || c.Ny <= 0 || c.Nx%4 != 0 || c.Ny%4 != 0 {
		return fmt.Errorf("thermal: grid %dx%d must be positive and divisible by 4", c.Nx, c.Ny)
	}
	if c.HeatTransferCoeff <= 0 {
		return fmt.Errorf("thermal: heat transfer coefficient must be positive")
	}
	if c.BoardHeatTransferCoeff < 0 {
		return fmt.Errorf("thermal: board heat transfer coefficient must be non-negative")
	}
	if c.SpreaderK <= 0 || c.SinkK <= 0 {
		return fmt.Errorf("thermal: spreader/sink conductivity must be positive")
	}
	if c.Tolerance <= 0 || c.Tolerance >= 1 {
		return fmt.Errorf("thermal: tolerance %g outside (0,1)", c.Tolerance)
	}
	if c.MaxIterations <= 0 {
		return fmt.Errorf("thermal: max iterations must be positive")
	}
	if c.KernelThreads < 0 {
		return fmt.Errorf("thermal: kernel threads must be non-negative, got %d", c.KernelThreads)
	}
	switch c.Preconditioner {
	case "", PrecondIC0, PrecondMG:
	default:
		return fmt.Errorf("thermal: unknown preconditioner %q (want %q or %q)", c.Preconditioner, PrecondIC0, PrecondMG)
	}
	return nil
}

// link is one symmetric conductance between nodes a and b.
type link struct {
	a, b int32
	g    float64
}

// Model is an assembled thermal network for one stack geometry. It can be
// solved repeatedly for different power maps (e.g. across the
// leakage-temperature fixed point iteration) reusing the assembly.
type Model struct {
	cfg    Config
	stack  floorplan.Stack
	grid   geom.Grid // package grid (chip-layer coordinates)
	nLayer int       // package layers
	nCells int       // Nx*Ny
	nNodes int       // (nLayer+2)*nCells

	diag  []float64 // diagonal of the conductance matrix
	links []link    // assembly-time edge list; dropped by finalize
	// csr is the finalized off-diagonal structure the solve kernel sweeps
	// (see csr.go); built once per model from the edge list.
	csr *csrMatrix
	// convG is the per-sink-cell convection conductance (W/K); its sum
	// times (Tsink - Tamb) is the heat leaving the system.
	convG []float64
	// boardG is the per-substrate-cell conductance of the optional
	// secondary path to ambient (empty slice when disabled).
	boardG []float64

	sinkBase int // node index of the first sink node

	// precond is the IC(0) factorization, always built: it is the default
	// preconditioner, the fallback when the multigrid coarsener declines a
	// geometry, and what the transient solver derives its shifted variant
	// from. mg is non-nil only when cfg.Preconditioner selected multigrid
	// and the hierarchy was buildable; runPCG prefers it.
	precond     *icPreconditioner
	mg          *mgPreconditioner
	precondName string

	// wsPool recycles CG scratch workspaces and xPool recycled solution
	// vectors (fed by Result.Recycle), so steady-state warm solves do no
	// large allocations. Both are safe for concurrent solves.
	wsPool sync.Pool
	xPool  sync.Pool
}

// Grid returns the package grid used for chip-layer power maps.
func (m *Model) Grid() geom.Grid { return m.grid }

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// Stack returns the stack the model was assembled from.
func (m *Model) Stack() floorplan.Stack { return m.stack }

// NumNodes returns the total node count of the network.
func (m *Model) NumNodes() int { return m.nNodes }

// ChipLayerOffset returns the node index of the first chip-layer cell.
func (m *Model) ChipLayerOffset() int { return m.stack.ChipLayer * m.nCells }

// NewModel assembles the thermal network for a stack.
func NewModel(stack floorplan.Stack, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := stack.Validate(); err != nil {
		return nil, err
	}
	g, err := geom.NewGrid(cfg.Nx, cfg.Ny, stack.W, stack.H)
	if err != nil {
		return nil, err
	}
	m := &Model{
		cfg:    cfg,
		stack:  stack,
		grid:   g,
		nLayer: len(stack.Layers),
		nCells: g.NumCells(),
	}
	m.nNodes = (m.nLayer + 2) * m.nCells
	m.sinkBase = (m.nLayer + 1) * m.nCells
	m.diag = make([]float64, m.nNodes)
	m.convG = make([]float64, m.nCells)
	m.assemble()
	m.finalize()
	return m, nil
}

// finalize converts the assembled edge list into the solver's CSR layout,
// derives the preconditioner from the same (already column-sorted)
// structure, and drops the edge list — after this point every matvec is a
// gather-only row sweep over the CSR arrays.
func (m *Model) finalize() {
	m.csr = newCSR(m.nNodes, m.links)
	m.precond = newICFromCSR(m.nNodes, m.diag, m.csr)
	m.precondName = PrecondIC0
	if m.cfg.Preconditioner == PrecondMG {
		if mg := newMultigrid(m.nLayer+2, m.cfg.Nx, m.cfg.Ny, m.diag, m.csr); mg != nil {
			m.mg = mg
			m.precondName = PrecondMG
		}
	}
	m.links = nil
}

// PreconditionerName reports the preconditioner the model's solves use:
// PrecondMG when multigrid was requested and buildable, else PrecondIC0.
func (m *Model) PreconditionerName() string { return m.precondName }

// addLink registers a symmetric conductance g between nodes a and b.
func (m *Model) addLink(a, b int, g float64) {
	if g <= 0 || math.IsNaN(g) || math.IsInf(g, 0) {
		return
	}
	m.links = append(m.links, link{a: int32(a), b: int32(b), g: g})
	m.diag[a] += g
	m.diag[b] += g
}

func (m *Model) assemble() {
	nx, ny := m.cfg.Nx, m.cfg.Ny
	nc := m.nCells
	cw := m.grid.CellW() * 1e-3 // meters
	ch := m.grid.CellH() * 1e-3
	area := cw * ch

	// Rasterize every package layer's properties.
	props := make([][]floorplan.LayerProps, m.nLayer)
	for l, layer := range m.stack.Layers {
		props[l] = floorplan.RasterizeLayer(layer, m.grid)
	}

	// Lateral conduction within each package layer.
	for l := 0; l < m.nLayer; l++ {
		t := m.stack.Layers[l].ThicknessM
		base := l * nc
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				c := m.grid.Index(ix, iy)
				if ix+1 < nx {
					c2 := m.grid.Index(ix+1, iy)
					r := 0.5*cw/(props[l][c].LatK*t*ch) + 0.5*cw/(props[l][c2].LatK*t*ch)
					m.addLink(base+c, base+c2, 1/r)
				}
				if iy+1 < ny {
					c2 := m.grid.Index(ix, iy+1)
					r := 0.5*ch/(props[l][c].LatK*t*cw) + 0.5*ch/(props[l][c2].LatK*t*cw)
					m.addLink(base+c, base+c2, 1/r)
				}
			}
		}
	}

	// Vertical conduction between adjacent package layers.
	for l := 0; l+1 < m.nLayer; l++ {
		tLo := m.stack.Layers[l].ThicknessM
		tHi := m.stack.Layers[l+1].ThicknessM
		for c := 0; c < nc; c++ {
			r := 0.5*tLo/(props[l][c].VertK*area) + 0.5*tHi/(props[l+1][c].VertK*area)
			m.addLink(l*nc+c, (l+1)*nc+c, 1/r)
		}
	}

	// Spreader: 2x footprint edge, same node count, cells 2cw x 2ch. The
	// center quarter sits exactly above the package: package cell (ix, iy)
	// nests in spreader cell ((ix+nx/2)/2, (iy+ny/2)/2).
	sprBase := m.nLayer * nc
	tTop := m.stack.Layers[m.nLayer-1].ThicknessM
	kTop := props[m.nLayer-1]
	tSpr := floorplan.SpreaderThicknessM
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			c := m.grid.Index(ix, iy)
			sc := m.grid.Index((ix+nx/2)/2, (iy+ny/2)/2)
			r := 0.5*tTop/(kTop[c].VertK*area) + 0.5*tSpr/(m.cfg.SpreaderK*area)
			m.addLink((m.nLayer-1)*nc+c, sprBase+sc, 1/r)
		}
	}
	// Spreader lateral conduction (cells 2cw x 2ch).
	m.addUniformLateral(sprBase, 2*cw, 2*ch, tSpr, m.cfg.SpreaderK)

	// Sink: 4x footprint edge, same node count, cells 4cw x 4ch. Spreader
	// cell (ix, iy) nests in sink cell ((ix+nx/2)/2, (iy+ny/2)/2).
	tSink := floorplan.SinkThicknessM
	sprArea := 4 * area
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			sc := m.grid.Index(ix, iy)
			kc := m.grid.Index((ix+nx/2)/2, (iy+ny/2)/2)
			r := 0.5*tSpr/(m.cfg.SpreaderK*sprArea) + 0.5*tSink/(m.cfg.SinkK*sprArea)
			m.addLink(sprBase+sc, m.sinkBase+kc, 1/r)
		}
	}
	// Sink lateral conduction (cells 4cw x 4ch).
	m.addUniformLateral(m.sinkBase, 4*cw, 4*ch, tSink, m.cfg.SinkK)

	// Convection from the sink's top surface to ambient: applied per sink
	// cell over its full area; equivalently a convective resistance
	// 1/(h*A_sink) kept proportional to sink area as in the paper.
	sinkCellArea := 16 * area
	for c := 0; c < nc; c++ {
		g := m.cfg.HeatTransferCoeff * sinkCellArea
		m.convG[c] = g
		m.diag[m.sinkBase+c] += g
	}

	// Optional secondary path: substrate bottom to ambient through half the
	// substrate thickness in series with board convection.
	if m.cfg.BoardHeatTransferCoeff > 0 {
		m.boardG = make([]float64, nc)
		t0 := m.stack.Layers[0].ThicknessM
		for c := 0; c < nc; c++ {
			r := 0.5*t0/(props[0][c].VertK*area) + 1/(m.cfg.BoardHeatTransferCoeff*area)
			m.boardG[c] = 1 / r
			m.diag[c] += m.boardG[c]
		}
	}
}

// addUniformLateral adds lateral links for a homogeneous layer grid of
// nx x ny cells of size cw x ch (meters) starting at node index base.
func (m *Model) addUniformLateral(base int, cw, ch, t, k float64) {
	nx, ny := m.cfg.Nx, m.cfg.Ny
	gx := k * t * ch / cw
	gy := k * t * cw / ch
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			c := m.grid.Index(ix, iy)
			if ix+1 < nx {
				m.addLink(base+c, base+m.grid.Index(ix+1, iy), gx)
			}
			if iy+1 < ny {
				m.addLink(base+c, base+m.grid.Index(ix, iy+1), gy)
			}
		}
	}
}
