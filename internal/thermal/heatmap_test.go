package thermal

import (
	"bytes"
	"strings"
	"testing"

	"chiplet25d/internal/geom"
)

func hotspotResult(t *testing.T) *Result {
	t.Helper()
	m := singleChipModel(t, 16)
	p := make([]float64, m.Grid().NumCells())
	m.Grid().RasterizeAdd(p, geom.Rect{X: 2, Y: 2, W: 4, H: 4}, 150)
	res, err := m.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestHeatmapASCII(t *testing.T) {
	res := hotspotResult(t)
	art := res.HeatmapASCII()
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 17 { // legend + 16 rows
		t.Fatalf("heatmap has %d lines, want 17", len(lines))
	}
	for i, l := range lines[1:] {
		if len(l) != 16 {
			t.Fatalf("row %d has %d chars, want 16", i, len(l))
		}
	}
	// The hottest glyph must appear, and it must be in the lower-left
	// region (the hotspot at 2-6 mm).
	if !strings.Contains(art, "@") {
		t.Fatalf("no hottest glyph in heatmap:\n%s", art)
	}
	rows := lines[1:]
	found := false
	for ri := 10; ri < 16; ri++ { // printed top-down: hotspot in bottom rows
		if strings.Contains(rows[ri][:8], "@") {
			found = true
		}
	}
	if !found {
		t.Fatalf("hotspot not where expected:\n%s", art)
	}
}

func TestWriteHeatmapPGM(t *testing.T) {
	res := hotspotResult(t)
	var buf bytes.Buffer
	if err := res.WriteHeatmapPGM(&buf, 0, 0); err != nil { // auto-scale
		t.Fatal(err)
	}
	b := buf.Bytes()
	if !bytes.HasPrefix(b, []byte("P5\n16 16\n255\n")) {
		t.Fatalf("bad PGM header: %q", b[:20])
	}
	pixels := b[len("P5\n16 16\n255\n"):]
	if len(pixels) != 256 {
		t.Fatalf("PGM has %d pixels, want 256", len(pixels))
	}
	// Auto-scale must use the full dynamic range.
	lo, hi := byte(255), byte(0)
	for _, p := range pixels {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if lo != 0 || hi != 255 {
		t.Fatalf("PGM range [%d,%d], want [0,255]", lo, hi)
	}
	// Fixed bounds clamp correctly.
	buf.Reset()
	if err := res.WriteHeatmapPGM(&buf, 45, 46); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFieldCSV(t *testing.T) {
	res := hotspotResult(t)
	var buf bytes.Buffer
	if err := res.WriteFieldCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+256 {
		t.Fatalf("CSV has %d lines, want 257", len(lines))
	}
	if lines[0] != "x_mm,y_mm,temp_C" {
		t.Fatalf("bad header %q", lines[0])
	}
}
