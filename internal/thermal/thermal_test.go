package thermal

import (
	"math"
	"testing"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/geom"
)

func testConfig(nx int) Config {
	cfg := DefaultConfig()
	cfg.Nx, cfg.Ny = nx, nx
	return cfg
}

// uniformChipPower spreads total watts evenly over the chiplet silicon of
// the model's stack.
func uniformChipPower(m *Model, totalW float64) []float64 {
	p := make([]float64, m.Grid().NumCells())
	chiplets := m.Stack().Placement.Chiplets
	area := 0.0
	for _, c := range chiplets {
		area += c.Area()
	}
	for _, c := range chiplets {
		m.Grid().RasterizeAdd(p, c, totalW*c.Area()/area)
	}
	return p
}

func singleChipModel(t *testing.T, nx int) *Model {
	t.Helper()
	stack, err := floorplan.BuildStack(floorplan.SingleChip())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(stack, testConfig(nx))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Nx = 63 // not divisible by 4
	if err := bad.Validate(); err == nil {
		t.Errorf("expected error for Nx not divisible by 4")
	}
	bad = good
	bad.HeatTransferCoeff = 0
	if err := bad.Validate(); err == nil {
		t.Errorf("expected error for zero h")
	}
	bad = good
	bad.Tolerance = 2
	if err := bad.Validate(); err == nil {
		t.Errorf("expected error for tolerance >= 1")
	}
}

func TestSolveRejectsBadPower(t *testing.T) {
	m := singleChipModel(t, 16)
	if _, err := m.Solve(make([]float64, 5)); err == nil {
		t.Errorf("expected error for wrong power map length")
	}
	p := make([]float64, m.Grid().NumCells())
	p[0] = -1
	if _, err := m.Solve(p); err == nil {
		t.Errorf("expected error for negative power")
	}
}

// Energy balance: at steady state all injected power leaves via convection.
func TestEnergyBalance(t *testing.T) {
	m := singleChipModel(t, 32)
	res, err := m.Solve(uniformChipPower(m, 300))
	if err != nil {
		t.Fatal(err)
	}
	out := res.HeatOutW()
	if math.Abs(out-300) > 0.5 {
		t.Fatalf("heat out = %.3f W, want 300 W (residual %g)", out, res.Residual)
	}
}

// Zero power must return the ambient temperature everywhere.
func TestZeroPowerIsAmbient(t *testing.T) {
	m := singleChipModel(t, 16)
	res, err := m.Solve(make([]float64, m.Grid().NumCells()))
	if err != nil {
		t.Fatal(err)
	}
	for i, temp := range res.T {
		if math.Abs(temp-m.Config().AmbientC) > 1e-3 {
			t.Fatalf("node %d at %g °C with zero power, want ambient", i, temp)
		}
	}
}

// The system is linear: scaling power scales the temperature rise.
func TestLinearity(t *testing.T) {
	m := singleChipModel(t, 16)
	amb := m.Config().AmbientC
	r1, err := m.Solve(uniformChipPower(m, 100))
	if err != nil {
		t.Fatal(err)
	}
	r3, err := m.Solve(uniformChipPower(m, 300))
	if err != nil {
		t.Fatal(err)
	}
	d1 := r1.PeakC() - amb
	d3 := r3.PeakC() - amb
	if math.Abs(d3-3*d1) > 0.05*d3 {
		t.Fatalf("temperature rise not linear: ΔT(100W)=%.3f, ΔT(300W)=%.3f", d1, d3)
	}
}

// Quasi-1D analytic validation: a single homogeneous layer with uniform
// power, an (effectively isothermal) spreader and sink. The chip-node
// temperature must match ambient + P·(R_conv + R_half-layer + R_half-spreader)
// computed by hand.
func TestAnalytic1D(t *testing.T) {
	const (
		fpMM   = 16.0   // footprint edge, mm
		tChip  = 1e-3   // layer thickness, m
		kSi    = 150.0  // layer conductivity
		totalW = 100.0  // injected power
		h      = 1000.0 // convection coefficient
	)
	stack := floorplan.Stack{
		W: fpMM, H: fpMM,
		Layers: []floorplan.Layer{{
			Name: "slab", ThicknessM: tChip,
			Background: floorplan.LayerProps{VertK: kSi, LatK: kSi, VolHeatCap: 1e6},
		}},
		ChipLayer: 0,
		Placement: floorplan.Placement{R: 1, W: fpMM, H: fpMM,
			Chiplets: []geom.Rect{{X: 0, Y: 0, W: fpMM, H: fpMM}}},
	}
	cfg := testConfig(32)
	cfg.HeatTransferCoeff = h
	cfg.SpreaderK = 1e6 // isothermal spreader and sink
	cfg.SinkK = 1e6
	m, err := NewModel(stack, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, m.Grid().NumCells())
	per := totalW / float64(len(p))
	for i := range p {
		p[i] = per
	}
	res, err := m.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	aFP := (fpMM * 1e-3) * (fpMM * 1e-3)
	aSink := 16 * aFP // sink edge is 4x the footprint edge
	rConv := 1 / (h * aSink)
	rHalfLayer := (tChip / 2) / (kSi * aFP)
	rHalfSpreader := (floorplan.SpreaderThicknessM / 2) / (1e6 * aFP)
	want := cfg.AmbientC + totalW*(rConv+rHalfLayer+rHalfSpreader)
	got := res.PeakC()
	if math.Abs(got-want) > 0.02*(want-cfg.AmbientC) {
		t.Fatalf("peak = %.4f °C, analytic %.4f °C", got, want)
	}
	// With uniform power and isothermal cap the chip layer is uniform too.
	chip := res.ChipT()
	lo, hi := chip[0], chip[0]
	for _, v := range chip {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi-lo > 0.01*(want-cfg.AmbientC) {
		t.Fatalf("chip layer not uniform: spread %.4f °C", hi-lo)
	}
}

// A symmetric placement with symmetric power must produce a symmetric field.
func TestSymmetry(t *testing.T) {
	pl, err := floorplan.PaperOrg(16, 1, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(stack, testConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Solve(uniformChipPower(m, 400))
	if err != nil {
		t.Fatal(err)
	}
	g := m.Grid()
	chip := res.ChipT()
	for iy := 0; iy < g.Ny; iy++ {
		for ix := 0; ix < g.Nx; ix++ {
			a := chip[g.Index(ix, iy)]
			b := chip[g.Index(g.Nx-1-ix, iy)] // mirror in x
			c := chip[g.Index(ix, g.Ny-1-iy)] // mirror in y
			if math.Abs(a-b) > 0.05 || math.Abs(a-c) > 0.05 {
				t.Fatalf("asymmetry at (%d,%d): %g vs %g vs %g", ix, iy, a, b, c)
			}
		}
	}
}

// More spacing between chiplets must reduce the peak temperature at equal
// total power (the paper's core observation, Fig. 5).
func TestSpacingReducesPeak(t *testing.T) {
	peaks := make([]float64, 0, 3)
	for _, spacing := range []float64{0.5, 4, 8} {
		pl, err := floorplan.UniformGrid(2, spacing)
		if err != nil {
			t.Fatal(err)
		}
		stack, err := floorplan.BuildStack(pl)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewModel(stack, testConfig(32))
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Solve(uniformChipPower(m, 400))
		if err != nil {
			t.Fatal(err)
		}
		peaks = append(peaks, res.PeakC())
	}
	if !(peaks[0] > peaks[1] && peaks[1] > peaks[2]) {
		t.Fatalf("peaks not decreasing with spacing: %v", peaks)
	}
}

// More chiplets at the same interposer size must reduce peak temperature
// (Fig. 3(b) trend).
func TestMoreChipletsReducePeak(t *testing.T) {
	var peaks []float64
	for _, r := range []int{2, 4} {
		pl, err := floorplan.UniformGridForInterposer(r, 36)
		if err != nil {
			t.Fatal(err)
		}
		stack, err := floorplan.BuildStack(pl)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewModel(stack, testConfig(32))
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Solve(uniformChipPower(m, 400))
		if err != nil {
			t.Fatal(err)
		}
		peaks = append(peaks, res.PeakC())
	}
	if peaks[1] >= peaks[0] {
		t.Fatalf("4x4 at same interposer should be cooler than 2x2: %v", peaks)
	}
}

// Warm starting from a previous solution must converge to the same field,
// faster.
func TestWarmStart(t *testing.T) {
	m := singleChipModel(t, 32)
	p := uniformChipPower(m, 350)
	cold, err := m.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	p2 := uniformChipPower(m, 360)
	warm, err := m.SolveWarm(p2, cold)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.Solve(p2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.PeakC()-ref.PeakC()) > 0.05 {
		t.Fatalf("warm-start peak %.4f differs from cold %.4f", warm.PeakC(), ref.PeakC())
	}
	if warm.Iterations > ref.Iterations {
		t.Logf("note: warm start used %d iterations vs cold %d", warm.Iterations, ref.Iterations)
	}
}

// Grid refinement should change the peak only modestly (discretization
// error, not model error).
func TestGridConvergence(t *testing.T) {
	var peaks []float64
	for _, nx := range []int{32, 64} {
		m := singleChipModel(t, nx)
		res, err := m.Solve(uniformChipPower(m, 400))
		if err != nil {
			t.Fatal(err)
		}
		peaks = append(peaks, res.PeakC())
	}
	if d := math.Abs(peaks[0] - peaks[1]); d > 3 {
		t.Fatalf("32 vs 64 grid peak differs by %.2f °C: %v", d, peaks)
	}
}

// MaxOverRect/AvgOverRect must agree with direct scans and handle
// sub-cell rectangles.
func TestOverRect(t *testing.T) {
	m := singleChipModel(t, 16)
	p := make([]float64, m.Grid().NumCells())
	p[m.Grid().Index(8, 8)] = 50 // hot spot
	res, err := m.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	full := geom.Rect{X: 0, Y: 0, W: 18, H: 18}
	if got, want := res.MaxOverRect(full), res.PeakC(); math.Abs(got-want) > 1e-9 {
		t.Errorf("MaxOverRect(full) = %v, want %v", got, want)
	}
	if res.AvgOverRect(full) >= res.PeakC() {
		t.Errorf("average should be below the peak for a hotspot field")
	}
	// Sub-cell rectangle should return its containing cell's temperature.
	tiny := geom.Rect{X: 9.5, Y: 9.56, W: 0.01, H: 0.01}
	if got := res.MaxOverRect(tiny); got <= m.Config().AmbientC {
		t.Errorf("sub-cell rect lookup returned %v", got)
	}
}

func TestHotspotAboveUniform(t *testing.T) {
	// Concentrating the same power into a quarter of the chip must raise
	// the peak temperature.
	m := singleChipModel(t, 32)
	uni, err := m.Solve(uniformChipPower(m, 200))
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, m.Grid().NumCells())
	m.Grid().RasterizeAdd(p, geom.Rect{X: 0, Y: 0, W: 9, H: 9}, 200)
	conc, err := m.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if conc.PeakC() <= uni.PeakC() {
		t.Fatalf("concentrated power peak %.2f should exceed uniform peak %.2f",
			conc.PeakC(), uni.PeakC())
	}
}

// The optional secondary (board) heat path must lower the peak and still
// conserve energy.
func TestBoardSecondaryPath(t *testing.T) {
	stack, err := floorplan.BuildStack(floorplan.SingleChip())
	if err != nil {
		t.Fatal(err)
	}
	base := testConfig(16)
	mOff, err := NewModel(stack, base)
	if err != nil {
		t.Fatal(err)
	}
	withBoard := base
	withBoard.BoardHeatTransferCoeff = 500
	mOn, err := NewModel(stack, withBoard)
	if err != nil {
		t.Fatal(err)
	}
	pOff := uniformChipPower(mOff, 300)
	rOff, err := mOff.Solve(pOff)
	if err != nil {
		t.Fatal(err)
	}
	rOn, err := mOn.Solve(uniformChipPower(mOn, 300))
	if err != nil {
		t.Fatal(err)
	}
	if rOn.PeakC() >= rOff.PeakC() {
		t.Fatalf("board path should lower peak: %.2f vs %.2f", rOn.PeakC(), rOff.PeakC())
	}
	if math.Abs(rOn.HeatOutW()-300) > 0.5 {
		t.Fatalf("energy balance broken with board path: %.2f W", rOn.HeatOutW())
	}
	bad := base
	bad.BoardHeatTransferCoeff = -1
	if err := bad.Validate(); err == nil {
		t.Errorf("expected validation error for negative board coefficient")
	}
}

// The paper's Sec. I motivation, quantified: at equal total power, the 3D
// stack runs hotter than the monolithic chip, which runs hotter than a
// spread 2.5D organization; energy balance holds for multi-layer injection.
func TestStackingOrdering3DHotter(t *testing.T) {
	tc := testConfig(16)
	const totalW = 300.0

	m2d := singleChipModel(t, 16)
	r2d, err := m2d.Solve(uniformChipPower(m2d, totalW))
	if err != nil {
		t.Fatal(err)
	}

	stack3d, p3, err := floorplan.BuildStack3D(2)
	if err != nil {
		t.Fatal(err)
	}
	m3d, err := NewModel(stack3d, tc)
	if err != nil {
		t.Fatal(err)
	}
	perLayer := map[int][]float64{}
	for _, l := range p3.CMOSLayers {
		pmap := make([]float64, m3d.Grid().NumCells())
		per := totalW / 2 / float64(len(pmap))
		for i := range pmap {
			pmap[i] = per
		}
		perLayer[l] = pmap
	}
	r3d, err := m3d.SolveMulti(perLayer)
	if err != nil {
		t.Fatal(err)
	}
	peak3d, err := r3d.PeakOverLayers(p3.CMOSLayers)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r3d.HeatOutW()-totalW) > 0.5 {
		t.Fatalf("multi-layer energy balance broken: %.2f W", r3d.HeatOutW())
	}

	pl25, err := floorplan.UniformGrid(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	stack25, err := floorplan.BuildStack(pl25)
	if err != nil {
		t.Fatal(err)
	}
	m25, err := NewModel(stack25, tc)
	if err != nil {
		t.Fatal(err)
	}
	r25, err := m25.Solve(uniformChipPower(m25, totalW))
	if err != nil {
		t.Fatal(err)
	}

	if !(peak3d > r2d.PeakC() && r2d.PeakC() > r25.PeakC()) {
		t.Fatalf("expected 3D (%.1f) > 2D (%.1f) > 2.5D (%.1f)",
			peak3d, r2d.PeakC(), r25.PeakC())
	}
	// The buried die must run hotter than the top die.
	lower, err := r3d.LayerT(p3.CMOSLayers[0])
	if err != nil {
		t.Fatal(err)
	}
	upper, err := r3d.LayerT(p3.CMOSLayers[1])
	if err != nil {
		t.Fatal(err)
	}
	maxOf := func(v []float64) float64 {
		m := v[0]
		for _, x := range v {
			if x > m {
				m = x
			}
		}
		return m
	}
	if maxOf(lower) <= maxOf(upper) {
		t.Fatalf("buried die (%.1f) should run hotter than the top die (%.1f)",
			maxOf(lower), maxOf(upper))
	}
}

func TestSolveMultiErrors(t *testing.T) {
	m := singleChipModel(t, 16)
	if _, err := m.SolveMulti(map[int][]float64{99: make([]float64, m.Grid().NumCells())}); err == nil {
		t.Errorf("expected error for out-of-range layer")
	}
	if _, err := m.SolveMulti(map[int][]float64{0: make([]float64, 3)}); err == nil {
		t.Errorf("expected error for wrong map length")
	}
	bad := make([]float64, m.Grid().NumCells())
	bad[0] = -1
	if _, err := m.SolveMulti(map[int][]float64{0: bad}); err == nil {
		t.Errorf("expected error for negative power")
	}
	res, err := m.Solve(make([]float64, m.Grid().NumCells()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.LayerT(99); err == nil {
		t.Errorf("expected error for out-of-range layer read")
	}
	if _, err := res.PeakOverLayers([]int{99}); err == nil {
		t.Errorf("expected error for out-of-range peak read")
	}
}
