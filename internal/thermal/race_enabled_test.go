//go:build race

package thermal

// raceEnabled reports whether the race detector is instrumenting this test
// binary; its tracking allocates, so allocation-budget tests skip.
const raceEnabled = true
