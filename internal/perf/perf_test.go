package perf

import (
	"math"
	"testing"
	"testing/quick"

	"chiplet25d/internal/power"
)

func TestBenchmarksValidateAndSorted(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 8 {
		t.Fatalf("have %d benchmarks, want 8", len(bs))
	}
	for i, b := range bs {
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if i > 0 && bs[i-1].Name >= b.Name {
			t.Errorf("benchmarks not sorted: %q before %q", bs[i-1].Name, b.Name)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("cholesky")
	if err != nil {
		t.Fatal(err)
	}
	if b.Suite != "SPLASH-2" {
		t.Errorf("cholesky suite = %q", b.Suite)
	}
	if _, err := ByName("doom"); err == nil {
		t.Errorf("expected error for unknown benchmark")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	want := map[string]bool{
		"blackscholes": true, "canneal": true, "cholesky": true, "hpccg": true,
		"lu.cont": true, "shock": true, "streamcluster": true, "swaptions": true,
	}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected benchmark %q", n)
		}
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	good, err := ByName("shock")
	if err != nil {
		t.Fatal(err)
	}
	cases := []func(*Benchmark){
		func(b *Benchmark) { b.Name = "" },
		func(b *Benchmark) { b.RefCoreW = 0 },
		func(b *Benchmark) { b.BaseIPC = -1 },
		func(b *Benchmark) { b.MemFrac = 1 },
		func(b *Benchmark) { b.Psat = 0 },
		func(b *Benchmark) { b.Gamma = 1 },
		func(b *Benchmark) { b.Traffic = 2 },
	}
	for i, mutate := range cases {
		b := good
		mutate(&b)
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestPerCoreGIPSAtNominal(t *testing.T) {
	for _, b := range Benchmarks() {
		if got := b.PerCoreGIPS(1000); math.Abs(got-b.BaseIPC) > 1e-12 {
			t.Errorf("%s: PerCoreGIPS(1 GHz) = %v, want BaseIPC %v", b.Name, got, b.BaseIPC)
		}
	}
}

func TestFrequencySensitivityOrdering(t *testing.T) {
	// Compute-bound blackscholes must gain more from 533 MHz -> 1 GHz than
	// memory-bound canneal.
	bs, _ := ByName("blackscholes")
	cn, _ := ByName("canneal")
	gainBS := bs.PerCoreGIPS(1000) / bs.PerCoreGIPS(533)
	gainCN := cn.PerCoreGIPS(1000) / cn.PerCoreGIPS(533)
	if gainBS <= gainCN {
		t.Errorf("blackscholes frequency gain %.3f should exceed canneal's %.3f", gainBS, gainCN)
	}
	if gainCN < 1 {
		t.Errorf("even memory-bound codes should not slow down at higher frequency: %.3f", gainCN)
	}
}

// The paper reports canneal's performance saturates at 192 active cores and
// lu.cont's at 96; the rest peak at 256 within the paper's core-count set.
func TestSaturationCoresMatchPaper(t *testing.T) {
	want := map[string]int{
		"canneal": 192, "lu.cont": 96,
		"blackscholes": 256, "cholesky": 256, "shock": 256,
		"hpccg": 256, "streamcluster": 256, "swaptions": 256,
	}
	for _, b := range Benchmarks() {
		if got := b.SaturationCores(); got != want[b.Name] {
			t.Errorf("%s saturates at %d cores, want %d", b.Name, got, want[b.Name])
		}
	}
}

func TestIPSMonotoneInFrequency(t *testing.T) {
	for _, b := range Benchmarks() {
		for _, p := range power.ActiveCoreCounts {
			prev := 0.0
			for i := len(power.FrequencySet) - 1; i >= 0; i-- {
				op := power.FrequencySet[i]
				ips := b.IPS(op, p)
				if ips < prev {
					t.Fatalf("%s: IPS decreased from %.2f to %.2f raising frequency to %v MHz at p=%d",
						b.Name, prev, ips, op.FreqMHz, p)
				}
				prev = ips
			}
		}
	}
}

func TestSpeedupProperties(t *testing.T) {
	// speedup(p) <= p (no superlinear scaling) and speedup(1) ≈ 1 for
	// benchmarks with large Psat.
	f := func(pRaw uint16) bool {
		p := int(pRaw%256) + 1
		for _, b := range Benchmarks() {
			if b.Speedup(p) > float64(p)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	sh, _ := ByName("shock")
	if s := sh.Speedup(1); math.Abs(s-1) > 0.01 {
		t.Errorf("shock speedup(1) = %v, want ≈1", s)
	}
}

func TestPowerClasses(t *testing.T) {
	// The paper's classes: shock/blackscholes/cholesky high power;
	// canneal/swaptions low power.
	for _, name := range []string{"shock", "blackscholes", "cholesky"} {
		b, _ := ByName(name)
		if b.Class != HighPower {
			t.Errorf("%s should be high power", name)
		}
	}
	for _, name := range []string{"canneal", "swaptions"} {
		b, _ := ByName(name)
		if b.Class != LowPower {
			t.Errorf("%s should be low power", name)
		}
	}
	// High-power benchmarks must actually budget more watts per core than
	// low-power ones.
	sh, _ := ByName("shock")
	cn, _ := ByName("canneal")
	if sh.RefCoreW <= cn.RefCoreW {
		t.Errorf("shock per-core power %.2f should exceed canneal's %.2f", sh.RefCoreW, cn.RefCoreW)
	}
}

func TestPowerClassString(t *testing.T) {
	if LowPower.String() != "low" || MediumPower.String() != "medium" || HighPower.String() != "high" {
		t.Errorf("power class strings wrong")
	}
	if PowerClass(42).String() == "" {
		t.Errorf("unknown class should still format")
	}
}

// Total chip power at 1 GHz all-cores must span the paper's synthetic power
// density range (0.5-2.0 W/mm² over 324 mm² -> 162-648 W).
func TestChipPowerRange(t *testing.T) {
	for _, b := range Benchmarks() {
		total := b.RefCoreW * 256
		if total < 162 || total > 648 {
			t.Errorf("%s total chip power %.0f W outside the paper's density range", b.Name, total)
		}
	}
}
