// Package perf is the architectural-performance substrate standing in for
// the paper's Sniper simulations: it models IPS(f, p) — instructions per
// second at frequency f with p active cores — for the eight multi-threaded
// benchmarks the paper evaluates (SPLASH-2 cholesky and lu.cont, PARSEC
// blackscholes, swaptions, streamcluster and canneal, HPCCG hpccg, and UHPC
// shock).
//
// Each benchmark combines:
//
//   - a per-core roofline: time per instruction splits into a compute part
//     that scales with 1/f and a memory part that does not, so
//     memory-bound codes gain little from frequency;
//   - a contention-saturating parallel-scaling curve
//     speedup(p) = p / (1 + (p/Psat)^Gamma), which peaks at a finite core
//     count for codes with heavy sharing (the paper: canneal's performance
//     saturates at 192 active cores and lu.cont's at 96);
//   - a per-core power budget at the nominal DVFS point (the McPAT/Intel
//     SCC calibration substitute) spanning the paper's low/medium/high
//     power classes;
//   - a NoC traffic factor feeding the mesh power model.
//
// The parameters are calibrated so the paper's qualitative results
// reproduce: which benchmarks are thermally limited on the single chip, by
// how much 2.5D integration helps each, and where performance saturates.
package perf

import (
	"fmt"
	"math"
	"sort"

	"chiplet25d/internal/power"
)

// PowerClass buckets benchmarks the way the paper's figures do.
type PowerClass int

const (
	LowPower PowerClass = iota
	MediumPower
	HighPower
)

// String implements fmt.Stringer.
func (c PowerClass) String() string {
	switch c {
	case LowPower:
		return "low"
	case MediumPower:
		return "medium"
	case HighPower:
		return "high"
	default:
		return fmt.Sprintf("PowerClass(%d)", int(c))
	}
}

// Benchmark is one workload's performance and power model.
type Benchmark struct {
	// Name is the benchmark's paper name (e.g. "cholesky").
	Name string
	// Suite records the originating suite (SPLASH-2, PARSEC, ...).
	Suite string
	// Class is the paper's qualitative power class.
	Class PowerClass
	// RefCoreW is one active core's total power (W) at 1 GHz / 0.9 V and
	// the 60 °C leakage reference.
	RefCoreW float64
	// BaseIPC is per-core instructions per cycle at 1 GHz when the memory
	// system is not the bottleneck.
	BaseIPC float64
	// MemFrac is the fraction of per-instruction time spent waiting on
	// memory at 1 GHz; this part does not shrink with frequency.
	MemFrac float64
	// Psat and Gamma shape the parallel-scaling curve
	// speedup(p) = p / (1 + (p/Psat)^Gamma).
	Psat  float64
	Gamma float64
	// Traffic is the mean NoC flit injection rate per active core per cycle
	// feeding the mesh power model.
	Traffic float64
}

// Validate checks model parameters.
func (b Benchmark) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("perf: benchmark with empty name")
	}
	if b.RefCoreW <= 0 || b.BaseIPC <= 0 {
		return fmt.Errorf("perf: %s has non-positive power or IPC", b.Name)
	}
	if b.MemFrac < 0 || b.MemFrac >= 1 {
		return fmt.Errorf("perf: %s memory fraction %g outside [0,1)", b.Name, b.MemFrac)
	}
	if b.Psat <= 0 || b.Gamma <= 1 {
		return fmt.Errorf("perf: %s needs Psat > 0 and Gamma > 1", b.Name)
	}
	if b.Traffic < 0 || b.Traffic > 1 {
		return fmt.Errorf("perf: %s traffic %g outside [0,1]", b.Name, b.Traffic)
	}
	return nil
}

// PerCoreGIPS returns one core's performance in giga-instructions per
// second at the given frequency (MHz). At 1 GHz it equals BaseIPC.
func (b Benchmark) PerCoreGIPS(freqMHz float64) float64 {
	fGHz := freqMHz / 1000
	return b.BaseIPC / ((1-b.MemFrac)/fGHz + b.MemFrac)
}

// Speedup returns the parallel-scaling factor at p active cores.
func (b Benchmark) Speedup(p int) float64 {
	fp := float64(p)
	return fp / (1 + math.Pow(fp/b.Psat, b.Gamma))
}

// IPS returns total system performance in giga-instructions per second at
// the given operating point and active core count.
func (b Benchmark) IPS(op power.DVFSPoint, p int) float64 {
	return b.PerCoreGIPS(op.FreqMHz) * b.Speedup(p)
}

// SaturationCores returns the active core count from the paper's set that
// maximizes IPS (frequency does not affect the argmax over p).
func (b Benchmark) SaturationCores() int {
	best, bestIPS := 0, math.Inf(-1)
	for _, p := range power.ActiveCoreCounts {
		if s := b.Speedup(p); s > bestIPS {
			best, bestIPS = p, s
		}
	}
	return best
}

// Benchmarks returns the paper's eight workloads, sorted by name. The slice
// is freshly allocated; callers may modify it.
func Benchmarks() []Benchmark {
	list := []Benchmark{
		{Name: "shock", Suite: "UHPC", Class: HighPower,
			RefCoreW: 1.82, BaseIPC: 1.20, MemFrac: 0.24, Psat: 900, Gamma: 2.0, Traffic: 0.08},
		{Name: "blackscholes", Suite: "PARSEC", Class: HighPower,
			RefCoreW: 1.75, BaseIPC: 1.30, MemFrac: 0.12, Psat: 1200, Gamma: 2.0, Traffic: 0.03},
		{Name: "cholesky", Suite: "SPLASH-2", Class: HighPower,
			RefCoreW: 1.75, BaseIPC: 1.10, MemFrac: 0.15, Psat: 800, Gamma: 2.0, Traffic: 0.06},
		{Name: "hpccg", Suite: "HPCCG", Class: MediumPower,
			RefCoreW: 1.40, BaseIPC: 0.90, MemFrac: 0.25, Psat: 500, Gamma: 2.0, Traffic: 0.10},
		{Name: "streamcluster", Suite: "PARSEC", Class: MediumPower,
			RefCoreW: 1.20, BaseIPC: 0.80, MemFrac: 0.55, Psat: 500, Gamma: 2.5, Traffic: 0.12},
		{Name: "swaptions", Suite: "PARSEC", Class: LowPower,
			RefCoreW: 1.10, BaseIPC: 1.00, MemFrac: 0.10, Psat: 600, Gamma: 2.0, Traffic: 0.02},
		{Name: "lu.cont", Suite: "SPLASH-2", Class: LowPower,
			RefCoreW: 1.05, BaseIPC: 0.90, MemFrac: 0.30, Psat: 121, Gamma: 3.0, Traffic: 0.07},
		{Name: "canneal", Suite: "PARSEC", Class: LowPower,
			RefCoreW: 1.26, BaseIPC: 0.50, MemFrac: 0.65, Psat: 270, Gamma: 4.0, Traffic: 0.15},
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	return list
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range Benchmarks() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("perf: unknown benchmark %q", name)
}

// Names returns the benchmark names in sorted order.
func Names() []string {
	bs := Benchmarks()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	return names
}
