package power

import (
	"testing"

	"chiplet25d/internal/floorplan"
)

func traceWorkload(t *testing.T, refW float64, p int) Workload {
	t.Helper()
	mask, err := MintempActive(p)
	if err != nil {
		t.Fatal(err)
	}
	return Workload{RefCoreW: refW, Op: NominalPoint, Active: mask, NoCW: 4, Leakage: DefaultLeakage()}
}

func TestTraceSimulateErrors(t *testing.T) {
	m, cores := simModel(t, floorplan.SingleChip())
	if _, err := TraceSimulate(m, cores, nil, 0.1, 85); err == nil {
		t.Errorf("expected error for empty trace")
	}
	w := traceWorkload(t, 1.8, 256)
	phases := []TracePhase{{DurationS: 1, Workload: w}}
	if _, err := TraceSimulate(m, cores, phases, 0, 85); err == nil {
		t.Errorf("expected error for zero step")
	}
	bad := []TracePhase{{DurationS: -1, Workload: w}}
	if _, err := TraceSimulate(m, cores, bad, 0.1, 85); err == nil {
		t.Errorf("expected error for negative duration")
	}
	badW := w
	badW.Active = make([]bool, 4)
	if _, err := TraceSimulate(m, cores, []TracePhase{{DurationS: 1, Workload: badW}}, 0.1, 85); err == nil {
		t.Errorf("expected error for invalid workload")
	}
}

func TestTraceSimulateThresholdCrossing(t *testing.T) {
	m, cores := simModel(t, floorplan.SingleChip())
	w := traceWorkload(t, 1.8, 256) // well above the 85 °C envelope
	phases := []TracePhase{{DurationS: 20, Workload: w}}
	res, err := TraceSimulate(m, cores, phases, 0.25, 85)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstOverS <= 0 {
		t.Fatalf("full-throttle burst should cross 85 °C, FirstOverS = %v", res.FirstOverS)
	}
	if res.MaxPeakC < 85 {
		t.Fatalf("max peak %.1f should exceed the threshold", res.MaxPeakC)
	}
	if len(res.TimesS) != len(res.PeaksC) || len(res.TimesS) != 80 {
		t.Fatalf("sample bookkeeping wrong: %d times, %d peaks", len(res.TimesS), len(res.PeaksC))
	}
	// Peaks rise monotonically under constant power from ambient.
	for i := 1; i < len(res.PeaksC); i++ {
		if res.PeaksC[i] < res.PeaksC[i-1]-1e-6 {
			t.Fatalf("peak fell at step %d under constant power", i)
		}
	}
}

// Duty cycling must cap the peak below the continuous-burst peak.
func TestDutyCycleCoolsBetweenBursts(t *testing.T) {
	m, cores := simModel(t, floorplan.SingleChip())
	w := traceWorkload(t, 1.8, 256)
	continuous := []TracePhase{{DurationS: 24, Workload: w}}
	cRes, err := TraceSimulate(m, cores, continuous, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	cycled, err := DutyCycle(w, 2, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	dRes, err := TraceSimulate(m, cores, cycled, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dRes.MaxPeakC >= cRes.MaxPeakC {
		t.Fatalf("duty cycling should cap the peak: %.1f vs continuous %.1f",
			dRes.MaxPeakC, cRes.MaxPeakC)
	}
	// The idle phases must actually cool the chip: the trace cannot be
	// monotone.
	rising := true
	for i := 1; i < len(dRes.PeaksC); i++ {
		if dRes.PeaksC[i] < dRes.PeaksC[i-1]-0.5 {
			rising = false
			break
		}
	}
	if rising {
		t.Fatalf("duty-cycled trace never cooled")
	}
}

func TestDutyCycleValidation(t *testing.T) {
	w := traceWorkload(t, 1.5, 128)
	if _, err := DutyCycle(w, 0, 1, 3); err == nil {
		t.Errorf("expected error for zero on-time")
	}
	if _, err := DutyCycle(w, 1, -1, 3); err == nil {
		t.Errorf("expected error for negative off-time")
	}
	if _, err := DutyCycle(w, 1, 1, 0); err == nil {
		t.Errorf("expected error for zero cycles")
	}
	phases, err := DutyCycle(w, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 4 {
		t.Fatalf("expected 4 phases, got %d", len(phases))
	}
	if phases[1].Workload.ActiveCount() != 0 {
		t.Fatalf("idle phase should have no active cores")
	}
}
