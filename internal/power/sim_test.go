package power

import (
	"math"
	"testing"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/thermal"
)

func simModel(t *testing.T, pl floorplan.Placement) (*thermal.Model, []floorplan.Core) {
	t.Helper()
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		t.Fatal(err)
	}
	cfg := thermal.DefaultConfig()
	cfg.Nx, cfg.Ny = 32, 32
	m, err := thermal.NewModel(stack, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cores, err := pl.Cores()
	if err != nil {
		t.Fatal(err)
	}
	return m, cores
}

func allActive(t *testing.T) []bool {
	t.Helper()
	mask, err := MintempActive(256)
	if err != nil {
		t.Fatal(err)
	}
	return mask
}

func TestSimulateSingleChipConverges(t *testing.T) {
	m, cores := simModel(t, floorplan.SingleChip())
	w := Workload{
		RefCoreW: 1.75, Op: NominalPoint,
		Active: allActive(t), NoCW: 3.9, Leakage: DefaultLeakage(),
	}
	res, err := Simulate(m, cores, w, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 2 {
		t.Errorf("leakage loop converged suspiciously fast (%d iterations)", res.Iterations)
	}
	// 448 W nominal, plus thermal leakage runaway: total must exceed the
	// nominal but stay bounded.
	nominal := TotalNominal(1.75, 256, NominalPoint, DefaultLeakage()) + 3.9
	if res.TotalPowerW <= nominal {
		t.Errorf("converged power %.1f should exceed nominal %.1f (hot silicon leaks more)",
			res.TotalPowerW, nominal)
	}
	if res.TotalPowerW > nominal*1.6 {
		t.Errorf("converged power %.1f unreasonably above nominal %.1f", res.TotalPowerW, nominal)
	}
	if res.PeakC < 85 || res.PeakC > 165 {
		t.Errorf("single-chip high-power peak %.1f outside the expected dark-silicon regime", res.PeakC)
	}
}

func TestSimulateLeakageFeedbackRaisesPeak(t *testing.T) {
	m, cores := simModel(t, floorplan.SingleChip())
	w := Workload{
		RefCoreW: 1.75, Op: NominalPoint,
		Active: allActive(t), NoCW: 3.9, Leakage: DefaultLeakage(),
	}
	withFB, err := Simulate(m, cores, w, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultSimOptions()
	opts.DisableLeakageFeedback = true
	noFB, err := Simulate(m, cores, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if withFB.PeakC <= noFB.PeakC {
		t.Errorf("leakage feedback should raise peak: with %.2f vs without %.2f",
			withFB.PeakC, noFB.PeakC)
	}
}

func TestSimulateFewerCoresRunCooler(t *testing.T) {
	m, cores := simModel(t, floorplan.SingleChip())
	base := Workload{RefCoreW: 1.75, Op: NominalPoint, NoCW: 3.9, Leakage: DefaultLeakage()}
	var peaks []float64
	for _, p := range []int{256, 128, 64} {
		w := base
		mask, err := MintempActive(p)
		if err != nil {
			t.Fatal(err)
		}
		w.Active = mask
		res, err := Simulate(m, cores, w, DefaultSimOptions())
		if err != nil {
			t.Fatal(err)
		}
		peaks = append(peaks, res.PeakC)
	}
	if !(peaks[0] > peaks[1] && peaks[1] > peaks[2]) {
		t.Fatalf("peak should fall with active cores: %v", peaks)
	}
}

func TestSimulateLowerFrequencyRunsCooler(t *testing.T) {
	m, cores := simModel(t, floorplan.SingleChip())
	var peaks []float64
	for _, op := range []DVFSPoint{FrequencySet[0], FrequencySet[2]} {
		w := Workload{RefCoreW: 1.75, Op: op, Active: allActive(t), NoCW: 3.9, Leakage: DefaultLeakage()}
		res, err := Simulate(m, cores, w, DefaultSimOptions())
		if err != nil {
			t.Fatal(err)
		}
		peaks = append(peaks, res.PeakC)
	}
	if peaks[1] >= peaks[0] {
		t.Fatalf("533 MHz should run cooler than 1 GHz: %v", peaks)
	}
}

func TestSimulate25DCoolerThan2D(t *testing.T) {
	w := Workload{RefCoreW: 1.75, Op: NominalPoint, Active: allActive(t), NoCW: 8.4, Leakage: DefaultLeakage()}
	m2d, cores2d := simModel(t, floorplan.SingleChip())
	r2d, err := Simulate(m2d, cores2d, w, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	pl, err := floorplan.UniformGrid(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	m25, cores25 := simModel(t, pl)
	r25, err := Simulate(m25, cores25, w, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r25.PeakC >= r2d.PeakC-10 {
		t.Fatalf("16 chiplets at 8 mm spacing should be much cooler: 2D %.1f vs 2.5D %.1f",
			r2d.PeakC, r25.PeakC)
	}
}

func TestSimulateMintempBeatsRowMajor(t *testing.T) {
	m, cores := simModel(t, floorplan.SingleChip())
	base := Workload{RefCoreW: 1.75, Op: NominalPoint, NoCW: 3.9, Leakage: DefaultLeakage()}
	mt, err := MintempActive(128)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := RowMajorActive(128)
	if err != nil {
		t.Fatal(err)
	}
	wMT, wRM := base, base
	wMT.Active, wRM.Active = mt, rm
	resMT, err := Simulate(m, cores, wMT, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	resRM, err := Simulate(m, cores, wRM, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if resMT.PeakC >= resRM.PeakC {
		t.Fatalf("MinTemp (%.2f °C) should beat row-major (%.2f °C) at 128 cores",
			resMT.PeakC, resRM.PeakC)
	}
}

func TestWorkloadValidate(t *testing.T) {
	good := Workload{RefCoreW: 1, Op: NominalPoint, Active: make([]bool, floorplan.NumCores), Leakage: DefaultLeakage()}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.RefCoreW = 0
	if err := bad.Validate(); err == nil {
		t.Errorf("expected error for zero core power")
	}
	bad = good
	bad.Active = make([]bool, 10)
	if err := bad.Validate(); err == nil {
		t.Errorf("expected error for short mask")
	}
	bad = good
	bad.NoCW = -1
	if err := bad.Validate(); err == nil {
		t.Errorf("expected error for negative NoC power")
	}
	bad = good
	bad.Op = DVFSPoint{}
	if err := bad.Validate(); err == nil {
		t.Errorf("expected error for zero operating point")
	}
}

func TestSimulateZeroActiveCores(t *testing.T) {
	m, cores := simModel(t, floorplan.SingleChip())
	w := Workload{RefCoreW: 1.75, Op: NominalPoint, Active: make([]bool, floorplan.NumCores), Leakage: DefaultLeakage()}
	res, err := Simulate(m, cores, w, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PeakC-thermal.DefaultConfig().AmbientC) > 0.1 {
		t.Errorf("idle system peak %.2f, want ambient", res.PeakC)
	}
	if res.TotalPowerW != 0 {
		t.Errorf("idle system power %.2f, want 0", res.TotalPowerW)
	}
}
