// Package power models the electrical power of the 256-core system: the
// DVFS operating points of Table II, a McPAT-like per-core power budget
// scaled by frequency and voltage, the paper's linear temperature-dependent
// leakage model (30% of power is leakage at 60 °C), the MinTemp workload
// allocation policy, and the leakage-temperature fixed-point iteration
// coupling the power model with the thermal solver.
package power

import "fmt"

// DVFSPoint is one frequency/voltage operating point from Table II.
type DVFSPoint struct {
	FreqMHz  float64
	VoltageV float64
}

// FrequencySet is the paper's F/V table (Table II): frequencies
// {1000, 800, 533, 400, 320} MHz with voltages {0.9, 0.87, 0.71, 0.63,
// 0.63} V.
var FrequencySet = []DVFSPoint{
	{FreqMHz: 1000, VoltageV: 0.90},
	{FreqMHz: 800, VoltageV: 0.87},
	{FreqMHz: 533, VoltageV: 0.71},
	{FreqMHz: 400, VoltageV: 0.63},
	{FreqMHz: 320, VoltageV: 0.63},
}

// ActiveCoreCounts is the paper's set of active core counts p (Table II).
var ActiveCoreCounts = []int{32, 64, 96, 128, 160, 192, 224, 256}

// NominalPoint is the reference operating point at which per-core power
// budgets are specified (1 GHz, 0.9 V).
var NominalPoint = FrequencySet[0]

// DynScale returns the dynamic-power scale factor of an operating point
// relative to the nominal 1 GHz / 0.9 V point: f·V² scaling.
func DynScale(p DVFSPoint) float64 {
	v := p.VoltageV / NominalPoint.VoltageV
	return (p.FreqMHz / NominalPoint.FreqMHz) * v * v
}

// LeakScale returns the leakage-power scale factor relative to nominal:
// leakage is roughly proportional to supply voltage.
func LeakScale(p DVFSPoint) float64 {
	return p.VoltageV / NominalPoint.VoltageV
}

// LeakageModel is the paper's linear temperature-dependent leakage model,
// extracted from published Intel 22 nm power/temperature data: a fraction
// FracAtRef of total core power is leakage at RefC, growing linearly with
// temperature at TempCoeff per °C.
type LeakageModel struct {
	FracAtRef float64 // fraction of total power that is leakage at RefC
	RefC      float64 // reference temperature, °C
	TempCoeff float64 // relative leakage growth per °C above RefC
}

// DefaultLeakage returns the paper's model: 30% leakage at 60 °C with a
// linear slope calibrated to 22 nm data (≈1%/°C).
func DefaultLeakage() LeakageModel {
	return LeakageModel{FracAtRef: 0.30, RefC: 60, TempCoeff: 0.01}
}

// Validate checks the model parameters.
func (l LeakageModel) Validate() error {
	if l.FracAtRef < 0 || l.FracAtRef >= 1 {
		return fmt.Errorf("power: leakage fraction %g outside [0,1)", l.FracAtRef)
	}
	if l.TempCoeff < 0 {
		return fmt.Errorf("power: negative leakage temperature coefficient %g", l.TempCoeff)
	}
	return nil
}

// Factor returns the leakage multiplier at temperature tC relative to the
// reference temperature. Clamped below at 0.1x so extreme extrapolation
// stays physical.
func (l LeakageModel) Factor(tC float64) float64 {
	f := 1 + l.TempCoeff*(tC-l.RefC)
	if f < 0.1 {
		f = 0.1
	}
	return f
}

// CorePower returns one active core's power (W) at the given operating
// point and temperature, given its reference total power refW at the
// nominal point and reference temperature.
func CorePower(refW float64, op DVFSPoint, tC float64, lm LeakageModel) float64 {
	dyn := refW * (1 - lm.FracAtRef) * DynScale(op)
	leak := refW * lm.FracAtRef * LeakScale(op) * lm.Factor(tC)
	return dyn + leak
}

// TotalNominal returns the total power of p active cores with reference
// per-core power refW at the given operating point and the leakage
// reference temperature (no thermal feedback).
func TotalNominal(refW float64, p int, op DVFSPoint, lm LeakageModel) float64 {
	return float64(p) * CorePower(refW, op, lm.RefC, lm)
}
