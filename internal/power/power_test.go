package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFrequencySetMatchesTableII(t *testing.T) {
	wantF := []float64{1000, 800, 533, 400, 320}
	wantV := []float64{0.90, 0.87, 0.71, 0.63, 0.63}
	if len(FrequencySet) != 5 {
		t.Fatalf("frequency set has %d points, want 5", len(FrequencySet))
	}
	for i, p := range FrequencySet {
		if p.FreqMHz != wantF[i] || p.VoltageV != wantV[i] {
			t.Errorf("point %d = %+v, want %g MHz / %g V", i, p, wantF[i], wantV[i])
		}
	}
	if len(ActiveCoreCounts) != 8 || ActiveCoreCounts[0] != 32 || ActiveCoreCounts[7] != 256 {
		t.Errorf("active core counts = %v", ActiveCoreCounts)
	}
}

func TestDynScaleNominalIsOne(t *testing.T) {
	if s := DynScale(NominalPoint); math.Abs(s-1) > 1e-12 {
		t.Errorf("DynScale(nominal) = %v", s)
	}
	if s := LeakScale(NominalPoint); math.Abs(s-1) > 1e-12 {
		t.Errorf("LeakScale(nominal) = %v", s)
	}
}

func TestDynScaleMonotonicallyDecreases(t *testing.T) {
	prev := math.Inf(1)
	for _, p := range FrequencySet {
		s := DynScale(p)
		if s > prev {
			t.Fatalf("dynamic power scale not decreasing down the DVFS table: %v", s)
		}
		prev = s
	}
	// 533 MHz / 0.71 V point: 0.533 * (0.71/0.9)^2 ≈ 0.332.
	if s := DynScale(FrequencySet[2]); math.Abs(s-0.3317) > 0.001 {
		t.Errorf("DynScale(533MHz) = %v, want ≈0.332", s)
	}
}

func TestLeakageFactor(t *testing.T) {
	lm := DefaultLeakage()
	if f := lm.Factor(60); math.Abs(f-1) > 1e-12 {
		t.Errorf("Factor(60) = %v, want 1", f)
	}
	if f := lm.Factor(100); math.Abs(f-1.4) > 1e-9 {
		t.Errorf("Factor(100) = %v, want 1.4", f)
	}
	// Extreme cold extrapolation clamps instead of going negative.
	if f := lm.Factor(-300); f < 0.099 {
		t.Errorf("Factor(-300) = %v, should clamp at 0.1", f)
	}
}

func TestLeakageValidate(t *testing.T) {
	if err := DefaultLeakage().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultLeakage()
	bad.FracAtRef = 1.0
	if err := bad.Validate(); err == nil {
		t.Errorf("expected error for leakage fraction 1.0")
	}
	bad = DefaultLeakage()
	bad.TempCoeff = -0.1
	if err := bad.Validate(); err == nil {
		t.Errorf("expected error for negative slope")
	}
}

func TestCorePowerAtReference(t *testing.T) {
	lm := DefaultLeakage()
	// At nominal point and reference temperature the core consumes exactly
	// its reference power.
	if p := CorePower(2.0, NominalPoint, 60, lm); math.Abs(p-2.0) > 1e-12 {
		t.Errorf("CorePower at reference = %v, want 2.0", p)
	}
	// Hotter silicon leaks more.
	if CorePower(2.0, NominalPoint, 100, lm) <= 2.0 {
		t.Errorf("hot core should consume more than reference")
	}
	// Lower DVFS point consumes less at equal temperature.
	if CorePower(2.0, FrequencySet[2], 60, lm) >= 2.0 {
		t.Errorf("533 MHz core should consume less than nominal")
	}
}

// Property: total power is monotone in temperature and frequency index.
func TestCorePowerMonotonicityProperty(t *testing.T) {
	lm := DefaultLeakage()
	f := func(refRaw, t1Raw, t2Raw float64) bool {
		ref := 0.5 + math.Abs(math.Mod(refRaw, 3))
		t1 := 40 + math.Abs(math.Mod(t1Raw, 80))
		t2 := 40 + math.Abs(math.Mod(t2Raw, 80))
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		for _, op := range FrequencySet {
			if CorePower(ref, op, t1, lm) > CorePower(ref, op, t2, lm)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTotalNominal(t *testing.T) {
	lm := DefaultLeakage()
	got := TotalNominal(1.95, 256, NominalPoint, lm)
	if math.Abs(got-1.95*256) > 1e-9 {
		t.Errorf("TotalNominal = %v, want %v", got, 1.95*256)
	}
}
