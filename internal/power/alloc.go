package power

import (
	"fmt"
	"sort"

	"chiplet25d/internal/floorplan"
)

// MintempOrder returns all 256 logical core mesh positions (as flat indices
// row*16+col) in MinTemp activation order [20]: threads are assigned
// starting from the outer rows/columns of the whole system and move inward,
// in a chessboard manner — within each concentric ring the checkerboard
// positions (even row+col parity) come first, then the remaining ring
// positions, so partially filled rings stay spatially interleaved and the
// hottest central region fills last.
func MintempOrder() []int {
	n := floorplan.CoresPerEdge
	type key struct {
		ring   int
		parity int
		idx    int
	}
	keys := make([]key, 0, n*n)
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			ring := min4(row, col, n-1-row, n-1-col)
			par := (row + col) % 2
			keys = append(keys, key{ring: ring, parity: par, idx: row*n + col})
		}
	}
	// Stable ordering: ring ascending, checkerboard parity first, then
	// index for determinism.
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	lt := func(a, b key) bool {
		if a.ring != b.ring {
			return a.ring < b.ring
		}
		if a.parity != b.parity {
			return a.parity < b.parity
		}
		return a.idx < b.idx
	}
	sort.Slice(order, func(i, j int) bool { return lt(keys[order[i]], keys[order[j]]) })
	out := make([]int, len(order))
	for i, o := range order {
		out[i] = keys[o].idx
	}
	return out
}

func min4(a, b, c, d int) int {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	if d < m {
		m = d
	}
	return m
}

// MintempActive returns a 256-entry mask (indexed row*16+col) with the p
// cores chosen by the MinTemp policy set active.
func MintempActive(p int) ([]bool, error) {
	if p < 0 || p > floorplan.NumCores {
		return nil, fmt.Errorf("power: active core count %d outside [0,%d]", p, floorplan.NumCores)
	}
	order := MintempOrder()
	mask := make([]bool, floorplan.NumCores)
	for i := 0; i < p; i++ {
		mask[order[i]] = true
	}
	return mask, nil
}

// ChipletBalancedActive returns an allocation mask for a 2.5D placement
// that spreads p active cores evenly across chiplets (round-robin over
// chiplets, MinTemp order within each chiplet's local core block). On
// spread organizations this beats the chip-global MinTemp policy at
// partial occupancy because no chiplet concentrates more heat than
// necessary — an extension beyond the paper's global policy.
func ChipletBalancedActive(pl floorplan.Placement, p int) ([]bool, error) {
	if p < 0 || p > floorplan.NumCores {
		return nil, fmt.Errorf("power: active core count %d outside [0,%d]", p, floorplan.NumCores)
	}
	cores, err := pl.Cores()
	if err != nil {
		return nil, err
	}
	// Per-chiplet core lists in MinTemp-like local order: ring within the
	// chiplet's local sub-grid, checkerboard first.
	per := floorplan.CoresPerEdge / pl.R
	type scored struct {
		id    int
		ring  int
		par   int
		index int
	}
	byChiplet := make([][]scored, pl.NumChiplets())
	for _, c := range cores {
		lx, ly := c.Col%per, c.Row%per
		ring := min4(lx, ly, per-1-lx, per-1-ly)
		byChiplet[c.Chiplet] = append(byChiplet[c.Chiplet], scored{
			id:   c.Row*floorplan.CoresPerEdge + c.Col,
			ring: ring, par: (lx + ly) % 2, index: c.Row*floorplan.CoresPerEdge + c.Col,
		})
	}
	for _, list := range byChiplet {
		sort.Slice(list, func(i, j int) bool {
			a, b := list[i], list[j]
			if a.ring != b.ring {
				return a.ring < b.ring
			}
			if a.par != b.par {
				return a.par < b.par
			}
			return a.index < b.index
		})
	}
	mask := make([]bool, floorplan.NumCores)
	next := make([]int, pl.NumChiplets())
	assigned := 0
	for assigned < p {
		progressed := false
		for ch := 0; ch < pl.NumChiplets() && assigned < p; ch++ {
			if next[ch] >= len(byChiplet[ch]) {
				continue
			}
			mask[byChiplet[ch][next[ch]].id] = true
			next[ch]++
			assigned++
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("power: allocation stalled at %d of %d cores", assigned, p)
		}
	}
	return mask, nil
}

// RowMajorActive returns a naive allocation mask activating the first p
// cores in row-major order. Used as the ablation baseline for MinTemp.
func RowMajorActive(p int) ([]bool, error) {
	if p < 0 || p > floorplan.NumCores {
		return nil, fmt.Errorf("power: active core count %d outside [0,%d]", p, floorplan.NumCores)
	}
	mask := make([]bool, floorplan.NumCores)
	for i := 0; i < p; i++ {
		mask[i] = true
	}
	return mask, nil
}
