package power

import (
	"fmt"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/thermal"
)

// Trace-driven transient simulation: the paper collects performance
// statistics every 1 ms and drives HotSpot with the resulting power traces.
// TraceSimulate plays a sequence of workload phases (each with its own
// operating point, active mask, and per-core power) through the transient
// solver, updating temperature-dependent leakage every step — enabling
// duty-cycling and phase-change studies on any organization.

// TracePhase is one segment of a workload trace.
type TracePhase struct {
	// DurationS is the phase length in seconds.
	DurationS float64
	// Workload describes what runs during the phase (NoCW included).
	Workload Workload
}

// TraceResult summarizes a trace playback.
type TraceResult struct {
	// TimesS and PeaksC sample the peak temperature after every step.
	TimesS []float64
	PeaksC []float64
	// MaxPeakC is the highest peak over the whole trace.
	MaxPeakC float64
	// FirstOverS is the first time the threshold was exceeded (negative if
	// never). Only tracked when thresholdC > 0.
	FirstOverS float64
}

// TraceSimulate plays the phases on an assembled model with step dt,
// starting from ambient. If thresholdC > 0 the first crossing time is
// recorded (playback continues; callers decide what a violation means).
func TraceSimulate(m *thermal.Model, cores []floorplan.Core, phases []TracePhase,
	dtS, thresholdC float64) (*TraceResult, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("power: empty trace")
	}
	if dtS <= 0 {
		return nil, fmt.Errorf("power: time step must be positive")
	}
	if len(cores) != floorplan.NumCores {
		return nil, fmt.Errorf("power: core map has %d cores, want %d", len(cores), floorplan.NumCores)
	}
	ts, err := m.NewTransientSolver(dtS)
	if err != nil {
		return nil, err
	}
	grid := m.Grid()
	res := &TraceResult{FirstOverS: -1}
	for pi, ph := range phases {
		if ph.DurationS <= 0 {
			return nil, fmt.Errorf("power: phase %d has non-positive duration", pi)
		}
		if err := ph.Workload.Validate(); err != nil {
			return nil, fmt.Errorf("power: phase %d: %w", pi, err)
		}
		active := ph.Workload.ActiveCount()
		nocPerCore := 0.0
		if active > 0 {
			nocPerCore = ph.Workload.NoCW / float64(active)
		}
		steps := int(ph.DurationS/dtS + 0.5)
		if steps < 1 {
			steps = 1
		}
		for s := 0; s < steps; s++ {
			pmap := make([]float64, grid.NumCells())
			chip := ts.ChipT()
			for _, c := range cores {
				id := c.Row*floorplan.CoresPerEdge + c.Col
				if !ph.Workload.Active[id] {
					continue
				}
				cx, cy := c.Rect.Center()
				ix, iy := grid.CellAt(cx, cy)
				tC := chip[grid.Index(ix, iy)]
				grid.RasterizeAdd(pmap, c.Rect,
					CorePower(ph.Workload.RefCoreW, ph.Workload.Op, tC, ph.Workload.Leakage)+nocPerCore)
			}
			peak, err := ts.Step(pmap)
			if err != nil {
				return nil, err
			}
			res.TimesS = append(res.TimesS, ts.Elapsed)
			res.PeaksC = append(res.PeaksC, peak)
			if peak > res.MaxPeakC {
				res.MaxPeakC = peak
			}
			if thresholdC > 0 && res.FirstOverS < 0 && peak >= thresholdC {
				res.FirstOverS = ts.Elapsed
			}
		}
	}
	return res, nil
}

// DutyCycle builds a repeating two-phase trace: burst (the given workload)
// for onS seconds, then idle for offS seconds, repeated `cycles` times.
func DutyCycle(burst Workload, onS, offS float64, cycles int) ([]TracePhase, error) {
	if onS <= 0 || offS < 0 || cycles < 1 {
		return nil, fmt.Errorf("power: invalid duty cycle (on=%g off=%g cycles=%d)", onS, offS, cycles)
	}
	idle := burst
	idle.Active = make([]bool, floorplan.NumCores)
	idle.NoCW = 0
	var phases []TracePhase
	for c := 0; c < cycles; c++ {
		phases = append(phases, TracePhase{DurationS: onS, Workload: burst})
		if offS > 0 {
			phases = append(phases, TracePhase{DurationS: offS, Workload: idle})
		}
	}
	return phases, nil
}
