package power

import (
	"context"
	"fmt"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/obs"
	"chiplet25d/internal/thermal"
)

// SimOptions controls the leakage-temperature fixed-point iteration.
type SimOptions struct {
	// MaxIterations bounds the leakage loop (the paper iterates HotSpot
	// with updated leakage until the temperature converges).
	MaxIterations int
	// ConvergenceC is the per-core temperature change threshold (°C) below
	// which the loop stops.
	ConvergenceC float64
	// DisableLeakageFeedback freezes leakage at the reference temperature
	// (used by the ablation bench).
	DisableLeakageFeedback bool
}

// DefaultSimOptions returns the standard loop settings.
func DefaultSimOptions() SimOptions {
	return SimOptions{MaxIterations: 12, ConvergenceC: 0.1}
}

// SimResult summarizes one converged steady-state power/thermal simulation.
type SimResult struct {
	// PeakC is the peak chip-layer temperature (Eq. (6)'s left side).
	PeakC float64
	// TotalPowerW is the converged total power including
	// temperature-adjusted leakage and NoC power.
	TotalPowerW float64
	// CoreTemps holds the converged per-core temperatures (°C) indexed by
	// logical core id (row*16+col); inactive cores report their tile
	// temperature too.
	CoreTemps []float64
	// Iterations is the number of leakage-loop iterations used.
	Iterations int
	// CGIterations is the total number of conjugate-gradient iterations
	// across all thermal solves of the leakage loop (the dominant cost of a
	// simulation, exported for observability).
	CGIterations int
	// Thermal is the final thermal solution.
	Thermal *thermal.Result
}

// Workload describes what runs on the machine for one simulation: the
// per-core reference power at the nominal DVFS point and 60 °C, the
// operating point, the active-core mask (length 256, logical mesh order),
// and the total NoC power, which is spread uniformly over the active cores'
// tiles (the paper: NoC power has negligible impact on the thermal profile
// but is accounted for).
type Workload struct {
	RefCoreW float64
	Op       DVFSPoint
	Active   []bool
	NoCW     float64
	Leakage  LeakageModel
}

// Validate checks the workload.
func (w Workload) Validate() error {
	if w.RefCoreW <= 0 {
		return fmt.Errorf("power: reference core power must be positive, got %g", w.RefCoreW)
	}
	if len(w.Active) != floorplan.NumCores {
		return fmt.Errorf("power: active mask has %d entries, want %d", len(w.Active), floorplan.NumCores)
	}
	if w.NoCW < 0 {
		return fmt.Errorf("power: negative NoC power %g", w.NoCW)
	}
	if w.Op.FreqMHz <= 0 || w.Op.VoltageV <= 0 {
		return fmt.Errorf("power: invalid operating point %+v", w.Op)
	}
	return w.Leakage.Validate()
}

// ActiveCount returns the number of active cores in the workload.
func (w Workload) ActiveCount() int {
	n := 0
	for _, a := range w.Active {
		if a {
			n++
		}
	}
	return n
}

// Simulate runs the coupled power/thermal fixed point on an assembled
// thermal model: per-core leakage depends on the core's temperature, which
// depends on the power map; the loop iterates, warm-starting each solve,
// until the temperature field converges.
func Simulate(m *thermal.Model, cores []floorplan.Core, w Workload, opts SimOptions) (*SimResult, error) {
	return SimulateCtx(context.Background(), m, cores, w, opts)
}

// SimulateCtx is Simulate with cooperative cancellation: ctx is checked
// between leakage-loop iterations and inside each CG solve, so abandoned
// requests stop burning CPU promptly.
func SimulateCtx(ctx context.Context, m *thermal.Model, cores []floorplan.Core, w Workload, opts SimOptions) (*SimResult, error) {
	return SimulateSeededCtx(ctx, m, cores, w, opts, nil)
}

// SimulateSeededCtx is SimulateCtx with a temperature-field seed for the
// first thermal solve of the leakage loop. Within one simulation the loop
// already warm-starts each solve from the previous iteration's field; seed
// extends that reuse across simulations — the org engine passes the
// converged field of a nearby search point so even the first solve starts
// close to the fixed point. A nil or invalid seed (wrong length, NaN) falls
// back to the ambient cold start; the seed never changes the converged
// answer, only how fast CG reaches it.
func SimulateSeededCtx(ctx context.Context, m *thermal.Model, cores []floorplan.Core, w Workload, opts SimOptions, seed []float64) (*SimResult, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if len(cores) != floorplan.NumCores {
		return nil, fmt.Errorf("power: core map has %d cores, want %d", len(cores), floorplan.NumCores)
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 1
	}
	active := w.ActiveCount()
	nocPerCore := 0.0
	if active > 0 {
		nocPerCore = w.NoCW / float64(active)
	}

	ctx, loop := obs.Start(ctx, "power.leakage_loop")
	defer loop.End()
	grid := m.Grid()
	temps := make([]float64, floorplan.NumCores)
	for i := range temps {
		temps[i] = w.Leakage.RefC
	}
	var res *thermal.Result
	var totalW float64
	cgIters := 0
	iter := 0
	// One power-map buffer for the whole fixed point; together with the
	// model's pooled solver workspaces and Recycle below, iterating the
	// loop does no per-iteration large allocations.
	pmap := make([]float64, grid.NumCells())
	for iter = 1; iter <= opts.MaxIterations; iter++ {
		for i := range pmap {
			pmap[i] = 0
		}
		totalW = 0
		for _, c := range cores {
			id := c.Row*floorplan.CoresPerEdge + c.Col
			if !w.Active[id] {
				continue // idle cores sleep at ~0 W
			}
			t := temps[id]
			if opts.DisableLeakageFeedback {
				t = w.Leakage.RefC
			}
			p := CorePower(w.RefCoreW, w.Op, t, w.Leakage) + nocPerCore
			grid.RasterizeAdd(pmap, c.Rect, p)
			totalW += p
		}
		var next *thermal.Result
		var err error
		if res == nil && seed != nil {
			next, err = m.SolveSeededCtx(ctx, pmap, seed)
		} else {
			next, err = m.SolveWarmCtx(ctx, pmap, res)
		}
		if err != nil {
			return nil, err
		}
		if res != nil {
			// The superseded field has served as the warm start; hand its
			// buffer back to the model's pool.
			res.Recycle()
		}
		res = next
		cgIters += res.Iterations
		maxDelta := 0.0
		for i, c := range cores {
			id := c.Row*floorplan.CoresPerEdge + c.Col
			t := res.AvgOverRect(c.Rect)
			if d := abs(t - temps[id]); d > maxDelta {
				maxDelta = d
			}
			temps[id] = t
			_ = i
		}
		if opts.DisableLeakageFeedback || maxDelta < opts.ConvergenceC {
			break
		}
	}
	if iter > opts.MaxIterations {
		iter = opts.MaxIterations
	}
	loop.SetAttr("iterations", iter)
	loop.SetAttr("cg_iterations", cgIters)
	loop.SetAttr("active_cores", active)
	loop.SetAttr("peak_c", res.PeakC())
	return &SimResult{
		PeakC:        res.PeakC(),
		TotalPowerW:  totalW,
		CoreTemps:    temps,
		Iterations:   iter,
		CGIterations: cgIters,
		Thermal:      res,
	}, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
