package power

import (
	"testing"

	"chiplet25d/internal/floorplan"
)

func TestMintempOrderIsPermutation(t *testing.T) {
	order := MintempOrder()
	if len(order) != floorplan.NumCores {
		t.Fatalf("order length = %d", len(order))
	}
	seen := make([]bool, floorplan.NumCores)
	for _, id := range order {
		if id < 0 || id >= floorplan.NumCores {
			t.Fatalf("id %d out of range", id)
		}
		if seen[id] {
			t.Fatalf("id %d repeated", id)
		}
		seen[id] = true
	}
}

func ring(id int) int {
	n := floorplan.CoresPerEdge
	row, col := id/n, id%n
	return min4(row, col, n-1-row, n-1-col)
}

func TestMintempOuterRingsFirst(t *testing.T) {
	order := MintempOrder()
	// Ring index must be non-decreasing along the activation order.
	prev := -1
	for _, id := range order {
		r := ring(id)
		if r < prev {
			t.Fatalf("ring order violated: ring %d after ring %d", r, prev)
		}
		prev = r
	}
	// The first core activated must be on the outermost ring.
	if ring(order[0]) != 0 {
		t.Fatalf("first activated core on ring %d, want 0", ring(order[0]))
	}
}

func TestMintempChessboardWithinRing(t *testing.T) {
	order := MintempOrder()
	n := floorplan.CoresPerEdge
	// Ring 0 has 60 cells; the first 30 activated must all be checkerboard
	// (even parity) positions.
	for i := 0; i < 30; i++ {
		id := order[i]
		row, col := id/n, id%n
		if ring(id) != 0 {
			t.Fatalf("position %d: id %d not on ring 0", i, id)
		}
		if (row+col)%2 != 0 {
			t.Fatalf("position %d: id %d is not a checkerboard cell", i, id)
		}
	}
}

func TestMintempActiveMask(t *testing.T) {
	mask, err := MintempActive(64)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, a := range mask {
		if a {
			count++
		}
	}
	if count != 64 {
		t.Fatalf("active count = %d, want 64", count)
	}
	// With 64 active cores under MinTemp, none should sit in the innermost
	// 4x4 region (rings 6-7).
	n := floorplan.CoresPerEdge
	for id, a := range mask {
		if a && ring(id) >= 6 {
			t.Fatalf("core (%d,%d) on ring %d active with only 64 threads", id/n, id%n, ring(id))
		}
	}
}

func TestMintempActiveBounds(t *testing.T) {
	if _, err := MintempActive(-1); err == nil {
		t.Errorf("expected error for negative count")
	}
	if _, err := MintempActive(257); err == nil {
		t.Errorf("expected error for count > 256")
	}
	mask, err := MintempActive(256)
	if err != nil {
		t.Fatal(err)
	}
	for id, a := range mask {
		if !a {
			t.Fatalf("core %d inactive with p=256", id)
		}
	}
}

func TestRowMajorActive(t *testing.T) {
	mask, err := RowMajorActive(20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if !mask[i] {
			t.Fatalf("core %d should be active", i)
		}
	}
	for i := 20; i < floorplan.NumCores; i++ {
		if mask[i] {
			t.Fatalf("core %d should be inactive", i)
		}
	}
	if _, err := RowMajorActive(400); err == nil {
		t.Errorf("expected error for count > 256")
	}
}

func TestChipletBalancedActiveMask(t *testing.T) {
	pl, err := floorplan.UniformGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	mask, err := ChipletBalancedActive(pl, 64)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, a := range mask {
		if a {
			count++
		}
	}
	if count != 64 {
		t.Fatalf("active count = %d, want 64", count)
	}
	// 64 cores over 16 chiplets: exactly 4 per chiplet.
	cores, err := pl.Cores()
	if err != nil {
		t.Fatal(err)
	}
	perChiplet := make(map[int]int)
	for _, c := range cores {
		if mask[c.Row*floorplan.CoresPerEdge+c.Col] {
			perChiplet[c.Chiplet]++
		}
	}
	for ch := 0; ch < 16; ch++ {
		if perChiplet[ch] != 4 {
			t.Fatalf("chiplet %d has %d active cores, want 4", ch, perChiplet[ch])
		}
	}
}

func TestChipletBalancedActiveBounds(t *testing.T) {
	pl, err := floorplan.UniformGrid(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ChipletBalancedActive(pl, -1); err == nil {
		t.Errorf("expected error for negative count")
	}
	if _, err := ChipletBalancedActive(pl, 300); err == nil {
		t.Errorf("expected error for excessive count")
	}
	mask, err := ChipletBalancedActive(pl, 256)
	if err != nil {
		t.Fatal(err)
	}
	for id, a := range mask {
		if !a {
			t.Fatalf("core %d inactive at full occupancy", id)
		}
	}
}

func TestChipletBalancedUnbalancedRemainder(t *testing.T) {
	pl, err := floorplan.UniformGrid(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 50 cores over 16 chiplets: 3 or 4 per chiplet (round-robin).
	mask, err := ChipletBalancedActive(pl, 50)
	if err != nil {
		t.Fatal(err)
	}
	cores, err := pl.Cores()
	if err != nil {
		t.Fatal(err)
	}
	perChiplet := make(map[int]int)
	for _, c := range cores {
		if mask[c.Row*floorplan.CoresPerEdge+c.Col] {
			perChiplet[c.Chiplet]++
		}
	}
	for ch, n := range perChiplet {
		if n < 3 || n > 4 {
			t.Fatalf("chiplet %d has %d active cores, want 3-4", ch, n)
		}
	}
}
