package tsp

import (
	"testing"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
	"chiplet25d/internal/thermal"
)

func modelFor(t *testing.T, pl floorplan.Placement) (*thermal.Model, []floorplan.Core) {
	t.Helper()
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		t.Fatal(err)
	}
	cfg := thermal.DefaultConfig()
	cfg.Nx, cfg.Ny = 16, 16
	m, err := thermal.NewModel(stack, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cores, err := pl.Cores()
	if err != nil {
		t.Fatal(err)
	}
	return m, cores
}

func TestSafePowerRejectsBadArgs(t *testing.T) {
	m, cores := modelFor(t, floorplan.SingleChip())
	if _, err := SafePower(m, cores, 0, 85, DefaultOptions()); err == nil {
		t.Errorf("expected error for zero cores")
	}
	if _, err := SafePower(m, cores, 64, 40, DefaultOptions()); err == nil {
		t.Errorf("expected error for threshold below ambient")
	}
}

func TestSafePowerRespectsThreshold(t *testing.T) {
	m, cores := modelFor(t, floorplan.SingleChip())
	b, err := SafePower(m, cores, 256, 85, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if b.PeakC > 85.01 {
		t.Fatalf("budget peak %.2f exceeds the threshold", b.PeakC)
	}
	if b.PerCoreW <= 0 || b.PerCoreW > 2 {
		t.Fatalf("256-core TSP %.3f W/core implausible for the single chip", b.PerCoreW)
	}
	// The single chip at 85 °C sustains roughly 230 W total.
	if b.TotalW < 150 || b.TotalW > 300 {
		t.Fatalf("256-core safe total %.1f W outside the plausible band", b.TotalW)
	}
}

// TSP's defining property: fewer active cores get a bigger per-core budget,
// and the total safe power grows with core count (spreading beats
// concentration).
func TestSafePowerCurveShape(t *testing.T) {
	m, cores := modelFor(t, floorplan.SingleChip())
	curve, err := Curve(m, cores, 85, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != len(power.ActiveCoreCounts) {
		t.Fatalf("curve has %d points", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].PerCoreW >= curve[i-1].PerCoreW {
			t.Errorf("per-core budget should fall with core count: %v -> %v",
				curve[i-1], curve[i])
		}
		// Total safe power grows toward a saturation plateau; near full
		// occupancy it may dip a few percent because MinTemp can no longer
		// keep the chip center dark.
		if curve[i].TotalW <= curve[i-1].TotalW*0.93 {
			t.Errorf("total safe power collapsed with core count: %v -> %v",
				curve[i-1], curve[i])
		}
	}
}

// A thermally-aware 2.5D organization raises TSP at every core count — the
// mechanism behind the paper's reclaimed dark silicon.
func TestSafePower25DHigher(t *testing.T) {
	m2d, cores2d := modelFor(t, floorplan.SingleChip())
	pl, err := floorplan.UniformGrid(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	m25, cores25 := modelFor(t, pl)
	for _, p := range []int{64, 256} {
		b2d, err := SafePower(m2d, cores2d, p, 85, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		b25, err := SafePower(m25, cores25, p, 85, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if b25.PerCoreW <= b2d.PerCoreW {
			t.Fatalf("p=%d: 2.5D TSP %.3f W/core should exceed 2D %.3f W/core",
				p, b25.PerCoreW, b2d.PerCoreW)
		}
	}
}

// TSP-guided operation must roughly match the exhaustive (f, p) baseline:
// both respect the same thermal constraint with the same models.
func TestGuideMatchesExhaustiveBaseline(t *testing.T) {
	bench, err := perf.ByName("cholesky")
	if err != nil {
		t.Fatal(err)
	}
	m, cores := modelFor(t, floorplan.SingleChip())
	best, all, err := Guide(m, cores, bench, 85, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !best.OK {
		t.Fatal("TSP guide found no feasible configuration")
	}
	if len(all) != len(power.ActiveCoreCounts) {
		t.Fatalf("guide returned %d entries", len(all))
	}
	// Exhaustive baseline over the same models.
	exhaustive := 0.0
	lm := power.DefaultLeakage()
	for _, op := range power.FrequencySet {
		for _, p := range power.ActiveCoreCounts {
			active, err := power.MintempActive(p)
			if err != nil {
				t.Fatal(err)
			}
			w := power.Workload{RefCoreW: bench.RefCoreW, Op: op, Active: active, Leakage: lm}
			res, err := power.Simulate(m, cores, w, power.DefaultSimOptions())
			if err != nil {
				t.Fatal(err)
			}
			if res.PeakC <= 85 {
				if ips := bench.IPS(op, p); ips > exhaustive {
					exhaustive = ips
				}
			}
		}
	}
	// TSP is conservative (leakage charged at the threshold temperature)
	// but must land within ~20% of the exhaustive optimum and never beat it
	// by more than the discretization slack.
	if best.IPS < 0.75*exhaustive {
		t.Fatalf("TSP-guided IPS %.1f too far below exhaustive %.1f", best.IPS, exhaustive)
	}
	if best.IPS > exhaustive*1.02 {
		t.Fatalf("TSP-guided IPS %.1f should not exceed the exhaustive optimum %.1f", best.IPS, exhaustive)
	}
}

func TestSafePowerUnconstrainedCap(t *testing.T) {
	// With a huge threshold the bisection hits the cap instead of looping.
	m, cores := modelFor(t, floorplan.SingleChip())
	opts := DefaultOptions()
	opts.MaxPerCoreW = 0.5
	b, err := SafePower(m, cores, 32, 500, opts)
	if err != nil {
		t.Fatal(err)
	}
	if b.PerCoreW != 0.5 {
		t.Fatalf("expected the cap to bind, got %.3f", b.PerCoreW)
	}
}
