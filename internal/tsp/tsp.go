// Package tsp implements Thermal Safe Power (Pagani et al., CODES+ISSS
// 2014), one of the dark-silicon mitigation techniques the paper cites as
// related work [6]: instead of a single constant TDP, TSP gives a per-core
// power budget as a function of the number of active cores such that the
// chip stays below the temperature threshold. Running each core count at
// its thermally safe power extracts more performance than one conservative
// TDP.
//
// The budget is computed against this library's thermal model by
// bisection on the uniform per-core power under the MinTemp mapping, with
// the temperature-dependent leakage loop active — so TSP composes with the
// paper's 2.5D organizations: a thermally-aware chiplet organization raises
// TSP at every core count, which is exactly the headroom the organizer
// exploits.
package tsp

import (
	"fmt"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
	"chiplet25d/internal/thermal"
)

// Budget is the thermally safe power at one active core count.
type Budget struct {
	// ActiveCores is the core count p the budget applies to.
	ActiveCores int
	// PerCoreW is the maximum per-core power (at the leakage reference
	// temperature) keeping the peak below the threshold.
	PerCoreW float64
	// TotalW is p times PerCoreW.
	TotalW float64
	// PeakC is the simulated peak at the budget (≈ the threshold).
	PeakC float64
}

// Options tunes the computation.
type Options struct {
	// ToleranceW is the bisection width on per-core power (default 0.01 W).
	ToleranceW float64
	// MaxPerCoreW caps the search (default 10 W).
	MaxPerCoreW float64
	// Leakage is the leakage model (default power.DefaultLeakage()).
	Leakage power.LeakageModel
	// Sim are the leakage-loop options.
	Sim power.SimOptions
}

// DefaultOptions returns the standard settings.
func DefaultOptions() Options {
	return Options{
		ToleranceW:  0.01,
		MaxPerCoreW: 10,
		Leakage:     power.DefaultLeakage(),
		Sim:         power.DefaultSimOptions(),
	}
}

// SafePower computes the thermally safe per-core power for p active cores
// (MinTemp mapping) on an assembled thermal model.
func SafePower(m *thermal.Model, cores []floorplan.Core, p int, thresholdC float64, opts Options) (Budget, error) {
	if p <= 0 || p > floorplan.NumCores {
		return Budget{}, fmt.Errorf("tsp: active core count %d out of range", p)
	}
	if thresholdC <= m.Config().AmbientC {
		return Budget{}, fmt.Errorf("tsp: threshold %.1f °C at or below ambient", thresholdC)
	}
	if opts.ToleranceW <= 0 {
		opts.ToleranceW = 0.01
	}
	if opts.MaxPerCoreW <= 0 {
		opts.MaxPerCoreW = 10
	}
	active, err := power.MintempActive(p)
	if err != nil {
		return Budget{}, err
	}
	peakAt := func(perCoreW float64) (float64, error) {
		w := power.Workload{
			RefCoreW: perCoreW,
			Op:       power.NominalPoint,
			Active:   active,
			Leakage:  opts.Leakage,
		}
		res, err := power.Simulate(m, cores, w, opts.Sim)
		if err != nil {
			return 0, err
		}
		return res.PeakC, nil
	}
	lo, hi := 0.0, opts.MaxPerCoreW
	peakHi, err := peakAt(hi)
	if err != nil {
		return Budget{}, err
	}
	if peakHi <= thresholdC {
		return Budget{ActiveCores: p, PerCoreW: hi, TotalW: hi * float64(p), PeakC: peakHi}, nil
	}
	peak := m.Config().AmbientC
	for hi-lo > opts.ToleranceW {
		mid := (lo + hi) / 2
		pm, err := peakAt(mid)
		if err != nil {
			return Budget{}, err
		}
		if pm <= thresholdC {
			lo, peak = mid, pm
		} else {
			hi = mid
		}
	}
	return Budget{ActiveCores: p, PerCoreW: lo, TotalW: lo * float64(p), PeakC: peak}, nil
}

// Curve computes the TSP curve over the paper's active-core-count set.
func Curve(m *thermal.Model, cores []floorplan.Core, thresholdC float64, opts Options) ([]Budget, error) {
	out := make([]Budget, 0, len(power.ActiveCoreCounts))
	for _, p := range power.ActiveCoreCounts {
		b, err := SafePower(m, cores, p, thresholdC, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// GuidedConfig is the operating point TSP selects for a benchmark at one
// core count: the fastest DVFS point whose per-core draw fits the budget.
type GuidedConfig struct {
	Budget Budget
	Op     power.DVFSPoint
	IPS    float64
	OK     bool
}

// Guide picks, for each active core count, the highest DVFS point whose
// per-core power (with leakage taken at the threshold temperature,
// conservatively) fits the TSP budget, and returns the best-performing
// configuration for the benchmark.
func Guide(m *thermal.Model, cores []floorplan.Core, b perf.Benchmark, thresholdC float64, opts Options) (GuidedConfig, []GuidedConfig, error) {
	curve, err := Curve(m, cores, thresholdC, opts)
	if err != nil {
		return GuidedConfig{}, nil, err
	}
	lm := opts.Leakage
	if lm.FracAtRef == 0 && lm.TempCoeff == 0 {
		lm = power.DefaultLeakage()
	}
	all := make([]GuidedConfig, 0, len(curve))
	var best GuidedConfig
	for _, bd := range curve {
		gc := GuidedConfig{Budget: bd}
		for _, op := range power.FrequencySet { // fastest first
			draw := power.CorePower(b.RefCoreW, op, thresholdC, lm)
			if draw <= bd.PerCoreW {
				gc.Op = op
				gc.IPS = b.IPS(op, bd.ActiveCores)
				gc.OK = true
				break
			}
		}
		all = append(all, gc)
		if gc.OK && (!best.OK || gc.IPS > best.IPS) {
			best = gc
		}
	}
	return best, all, nil
}
