package materials

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStandardMaterialsValidate(t *testing.T) {
	for _, m := range []Material{Silicon, Copper, Epoxy, FR4, TIM, AirGap} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestStandardCompositesValidate(t *testing.T) {
	for _, c := range []Composite{MicrobumpLayer, InterposerLayer, C4Layer} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestValidateCatchesBadMaterial(t *testing.T) {
	if err := (Material{Name: "bad", K: 0, VolHeatCap: 1}).Validate(); err == nil {
		t.Errorf("expected error for zero conductivity")
	}
	if err := (Material{Name: "bad", K: 1, VolHeatCap: -1}).Validate(); err == nil {
		t.Errorf("expected error for negative heat capacity")
	}
	bad := MicrobumpLayer
	bad.AreaFraction = 1.5
	if err := bad.Validate(); err == nil {
		t.Errorf("expected error for area fraction > 1")
	}
}

func TestSeriesKLimits(t *testing.T) {
	// Equal materials: series conductivity equals the material.
	if k := SeriesK(100, 1, 100, 3); math.Abs(k-100) > 1e-9 {
		t.Errorf("SeriesK equal = %v, want 100", k)
	}
	// Zero-thickness slab degenerates to the other material.
	if k := SeriesK(100, 0, 7, 3); math.Abs(k-7) > 1e-9 {
		t.Errorf("SeriesK zero thickness = %v, want 7", k)
	}
	// Series is dominated by the poor conductor.
	k := SeriesK(400, 1, 1, 1)
	if k > 2.1 {
		t.Errorf("series of copper+insulator should be near the insulator, got %v", k)
	}
}

func TestMixingBounds(t *testing.T) {
	// Effective conductivity of a mix lies between the constituents, and
	// parallel >= series (Wiener bounds).
	f := func(fr, kaRaw, kbRaw float64) bool {
		frac := math.Abs(math.Mod(fr, 1))
		ka := 0.1 + math.Abs(math.Mod(kaRaw, 500))
		kb := 0.1 + math.Abs(math.Mod(kbRaw, 500))
		par := ParallelMixK(ka, frac, kb)
		ser := SeriesMixK(ka, frac, kb)
		lo, hi := math.Min(ka, kb), math.Max(ka, kb)
		return par >= ser-1e-9 && par >= lo-1e-9 && par <= hi+1e-9 && ser >= lo-1e-9 && ser <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMixingPureLimits(t *testing.T) {
	if k := ParallelMixK(400, 0, 0.9); k != 0.9 {
		t.Errorf("f=0 should give matrix, got %v", k)
	}
	if k := ParallelMixK(400, 1, 0.9); k != 400 {
		t.Errorf("f=1 should give fill, got %v", k)
	}
	if k := SeriesMixK(400, 0, 0.9); k != 0.9 {
		t.Errorf("f=0 should give matrix, got %v", k)
	}
	if k := SeriesMixK(400, 1, 0.9); k != 400 {
		t.Errorf("f=1 should give fill, got %v", k)
	}
}

func TestBumpAreaFraction(t *testing.T) {
	// Table I microbumps: 25 µm diameter on 50 µm pitch ->
	// pi*12.5^2/2500 ~= 0.196.
	got := BumpAreaFraction(25, 50)
	if math.Abs(got-0.19635) > 1e-4 {
		t.Errorf("microbump fraction = %v, want ~0.19635", got)
	}
	if BumpAreaFraction(10, 0) != 0 {
		t.Errorf("zero pitch should give zero fraction")
	}
	if BumpAreaFraction(100, 10) != 1 {
		t.Errorf("oversize bumps should clamp to 1")
	}
}

func TestCompositeAnisotropy(t *testing.T) {
	// Copper columns in epoxy: vertical conduction must beat lateral.
	c := MicrobumpLayer
	if c.VerticalK() <= c.LateralK() {
		t.Errorf("vertical K (%v) should exceed lateral K (%v) for columnar fill",
			c.VerticalK(), c.LateralK())
	}
	// Microbump layer vertical conductivity should be dominated by the
	// copper fraction: ~0.196*400 + 0.804*0.9 ~= 79 W/mK.
	if v := c.VerticalK(); math.Abs(v-79.26) > 0.5 {
		t.Errorf("microbump vertical K = %v, want ~79.26", v)
	}
}

func TestInterposerCompositeCloseToSilicon(t *testing.T) {
	// TSVs occupy ~3% of the interposer; its conductivity stays near Si but
	// slightly above vertically.
	c := InterposerLayer
	if c.VerticalK() < Silicon.K || c.VerticalK() > Silicon.K*1.1 {
		t.Errorf("interposer vertical K = %v, want slightly above %v", c.VerticalK(), Silicon.K)
	}
}

func TestCompositeHeatCap(t *testing.T) {
	c := Composite{Fill: Copper, Matrix: Epoxy, AreaFraction: 0.5}
	want := 0.5*Copper.VolHeatCap + 0.5*Epoxy.VolHeatCap
	if math.Abs(c.VolHeatCap()-want) > 1e-6 {
		t.Errorf("VolHeatCap = %v, want %v", c.VolHeatCap(), want)
	}
}
