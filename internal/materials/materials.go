// Package materials provides thermal material properties for the layers of
// 2D and 2.5D package stacks (Table I of the paper): silicon, copper, epoxy
// underfill, FR-4, thermal interface material, and the heat spreader / heat
// sink metal, plus composite mixing rules for heterogeneous layers such as
// the microbump layer (copper bumps in epoxy underfill) and the interposer
// (silicon with copper TSVs).
//
// Conductivities are in W/(m·K) and volumetric heat capacities in J/(m³·K).
// The steady-state solver only needs conductivity; heat capacity is carried
// for completeness (and used by sanity checks on material definitions).
package materials

import "fmt"

// Material is a homogeneous material with isotropic thermal conductivity.
type Material struct {
	Name string
	// K is thermal conductivity in W/(m·K).
	K float64
	// VolHeatCap is volumetric heat capacity in J/(m³·K).
	VolHeatCap float64
}

// Standard materials. Values are the commonly used HotSpot defaults and
// textbook values for package materials.
var (
	// Silicon die material.
	Silicon = Material{Name: "silicon", K: 150, VolHeatCap: 1.75e6}
	// Copper: bumps, TSVs, heat spreader and sink.
	Copper = Material{Name: "copper", K: 400, VolHeatCap: 3.55e6}
	// Epoxy: flip-chip underfill resin filling the space between bumps and
	// between chiplets [21].
	Epoxy = Material{Name: "epoxy", K: 0.9, VolHeatCap: 2.0e6}
	// FR4 organic substrate.
	FR4 = Material{Name: "fr4", K: 0.3, VolHeatCap: 1.2e6}
	// TIM is the thermal interface material between die and spreader
	// (HotSpot default conductivity for the interface layer).
	TIM = Material{Name: "tim", K: 4.0, VolHeatCap: 4.0e6}
	// AirGap approximates an unfilled region (effectively adiabatic).
	AirGap = Material{Name: "air", K: 0.025, VolHeatCap: 1.2e3}
)

// Validate reports an error if the material has non-physical properties.
func (m Material) Validate() error {
	if m.K <= 0 {
		return fmt.Errorf("materials: %s has non-positive conductivity %g", m.Name, m.K)
	}
	if m.VolHeatCap <= 0 {
		return fmt.Errorf("materials: %s has non-positive heat capacity %g", m.Name, m.VolHeatCap)
	}
	return nil
}

// SeriesK returns the effective conductivity of two material slabs of
// thicknesses t1 and t2 stacked in the heat-flow direction (harmonic mean
// weighted by thickness). Used for vertical conduction across layer
// boundaries.
func SeriesK(k1, t1, k2, t2 float64) float64 {
	if t1 <= 0 {
		return k2
	}
	if t2 <= 0 {
		return k1
	}
	return (t1 + t2) / (t1/k1 + t2/k2)
}

// ParallelMixK returns the effective conductivity of a composite where a
// volume fraction f of material a is embedded in material b, for heat flow
// parallel to the inclusions (arithmetic mean). This models vertical
// conduction through bump/TSV layers: the metal columns run in the heat-flow
// direction.
func ParallelMixK(ka float64, f float64, kb float64) float64 {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return f*ka + (1-f)*kb
}

// SeriesMixK returns the effective conductivity of the same composite for
// heat flow perpendicular to the inclusions (harmonic mean). This models
// lateral conduction through bump/TSV layers.
func SeriesMixK(ka float64, f float64, kb float64) float64 {
	if f <= 0 {
		return kb
	}
	if f >= 1 {
		return ka
	}
	return 1 / (f/ka + (1-f)/kb)
}

// Composite describes a two-phase layer material: columns of Fill material
// occupying AreaFraction of the layer, surrounded by Matrix. Vertical and
// lateral effective conductivities differ (the columns are vertical).
type Composite struct {
	Name         string
	Fill         Material // the column material (copper bump/TSV)
	Matrix       Material // the surrounding material (epoxy or silicon)
	AreaFraction float64  // fraction of layer plan area occupied by Fill
}

// VerticalK returns the effective vertical (through-layer) conductivity.
func (c Composite) VerticalK() float64 {
	return ParallelMixK(c.Fill.K, c.AreaFraction, c.Matrix.K)
}

// LateralK returns the effective in-plane conductivity.
func (c Composite) LateralK() float64 {
	return SeriesMixK(c.Fill.K, c.AreaFraction, c.Matrix.K)
}

// VolHeatCap returns the area-fraction-weighted volumetric heat capacity.
func (c Composite) VolHeatCap() float64 {
	return c.AreaFraction*c.Fill.VolHeatCap + (1-c.AreaFraction)*c.Matrix.VolHeatCap
}

// Validate checks the composite is physically meaningful.
func (c Composite) Validate() error {
	if err := c.Fill.Validate(); err != nil {
		return err
	}
	if err := c.Matrix.Validate(); err != nil {
		return err
	}
	if c.AreaFraction < 0 || c.AreaFraction > 1 {
		return fmt.Errorf("materials: %s area fraction %g outside [0,1]", c.Name, c.AreaFraction)
	}
	return nil
}

// BumpAreaFraction computes the plan-area fraction occupied by circular
// bumps/vias of the given diameter on a square grid with the given pitch
// (both in the same unit). Table I: microbumps 25 µm diameter on 50 µm
// pitch, TSVs 10 µm on 50 µm, C4 bumps 250 µm on 600 µm.
func BumpAreaFraction(diameter, pitch float64) float64 {
	if pitch <= 0 {
		return 0
	}
	r := diameter / 2
	f := 3.141592653589793 * r * r / (pitch * pitch)
	if f > 1 {
		f = 1
	}
	return f
}

// Standard composites from Table I.
var (
	// MicrobumpLayer: 25 µm copper bumps on 50 µm pitch in epoxy.
	MicrobumpLayer = Composite{
		Name:         "microbump",
		Fill:         Copper,
		Matrix:       Epoxy,
		AreaFraction: BumpAreaFraction(25, 50),
	}
	// InterposerLayer: silicon with 10 µm copper TSVs on 50 µm pitch.
	InterposerLayer = Composite{
		Name:         "interposer",
		Fill:         Copper,
		Matrix:       Silicon,
		AreaFraction: BumpAreaFraction(10, 50),
	}
	// C4Layer: 250 µm copper C4 bumps on 600 µm pitch in epoxy.
	C4Layer = Composite{
		Name:         "c4",
		Fill:         Copper,
		Matrix:       Epoxy,
		AreaFraction: BumpAreaFraction(250, 600),
	}
)
