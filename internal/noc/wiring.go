package noc

import (
	"fmt"

	"chiplet25d/internal/floorplan"
)

// Interposer wiring-resource feasibility: the paper notes that 2.5D
// integration "provides additional routing resources through the
// interposer", but those resources are finite — every inter-chiplet mesh
// link must escape its chiplet through microbumps and cross the gap in an
// interposer wiring channel. This file checks both budgets for a placement:
//
//   - microbump I/O: each chiplet has (edge/pitch)² bumps; a fraction is
//     reserved for power/ground delivery, the rest is signal I/O;
//   - channel capacity: the wires of all links crossing one inter-chiplet
//     gap must fit the routing tracks available across the facing edge
//     (edge length / wire pitch, times the interposer's signal layers).
type WiringParams struct {
	// MicrobumpPitchMM is the bump pitch (Table I: 50 µm = 0.05 mm).
	MicrobumpPitchMM float64
	// PowerGroundFraction is the fraction of bumps reserved for delivery.
	PowerGroundFraction float64
	// WirePitchMM is the interposer routing pitch per track.
	WirePitchMM float64
	// SignalLayers is the number of interposer routing layers available.
	SignalLayers int
	// WiresPerLink is the link width in wires (flit width plus control).
	WiresPerLink int
}

// DefaultWiringParams returns Table-I-consistent defaults: 50 µm bump
// pitch, half the bumps for power delivery, 2 µm routing pitch on two
// signal layers, 72 wires per link (64-bit flit + flow control).
func DefaultWiringParams() WiringParams {
	return WiringParams{
		MicrobumpPitchMM:    0.05,
		PowerGroundFraction: 0.5,
		WirePitchMM:         0.002,
		SignalLayers:        2,
		WiresPerLink:        72,
	}
}

// Validate checks the parameters.
func (wp WiringParams) Validate() error {
	if wp.MicrobumpPitchMM <= 0 || wp.WirePitchMM <= 0 {
		return fmt.Errorf("noc: pitches must be positive")
	}
	if wp.PowerGroundFraction < 0 || wp.PowerGroundFraction >= 1 {
		return fmt.Errorf("noc: power/ground fraction %g outside [0,1)", wp.PowerGroundFraction)
	}
	if wp.SignalLayers < 1 || wp.WiresPerLink < 1 {
		return fmt.Errorf("noc: need at least one signal layer and one wire per link")
	}
	return nil
}

// WiringReport summarizes the resource check for a placement.
type WiringReport struct {
	// SignalBumpsPerChiplet is the per-chiplet signal microbump budget.
	SignalBumpsPerChiplet int
	// MaxBumpsNeeded is the worst chiplet's demand (its inter-chiplet
	// links times wires per link, each wire needing one bump).
	MaxBumpsNeeded int
	// TracksPerEdge is the routing capacity across one chiplet edge.
	TracksPerEdge int
	// MaxTracksNeeded is the worst facing-edge demand.
	MaxTracksNeeded int
	// Feasible reports both budgets hold for every chiplet and edge.
	Feasible bool
}

// CheckWiring verifies a 2.5D placement's mesh links fit the interposer's
// wiring resources.
func CheckWiring(pl floorplan.Placement, wp WiringParams) (WiringReport, error) {
	if err := wp.Validate(); err != nil {
		return WiringReport{}, err
	}
	if pl.Is2D() {
		return WiringReport{Feasible: true}, nil
	}
	cores, err := pl.Cores()
	if err != nil {
		return WiringReport{}, err
	}
	n := floorplan.CoresPerEdge
	coreAt := make([]floorplan.Core, len(cores))
	for _, c := range cores {
		coreAt[c.Row*n+c.Col] = c
	}
	// Count inter-chiplet links per chiplet and per ordered chiplet pair.
	linksPerChiplet := make(map[int]int)
	linksPerPair := make(map[[2]int]int)
	visit := func(a, b floorplan.Core) {
		if a.Chiplet == b.Chiplet {
			return
		}
		linksPerChiplet[a.Chiplet]++
		linksPerChiplet[b.Chiplet]++
		key := [2]int{a.Chiplet, b.Chiplet}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		linksPerPair[key]++
	}
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			if col+1 < n {
				visit(coreAt[row*n+col], coreAt[row*n+col+1])
			}
			if row+1 < n {
				visit(coreAt[row*n+col], coreAt[(row+1)*n+col])
			}
		}
	}
	var rep WiringReport
	bumpsPerEdge := int(pl.ChipletW / wp.MicrobumpPitchMM)
	totalBumps := bumpsPerEdge * int(pl.ChipletH/wp.MicrobumpPitchMM)
	rep.SignalBumpsPerChiplet = int(float64(totalBumps) * (1 - wp.PowerGroundFraction))
	for _, links := range linksPerChiplet {
		if need := links * wp.WiresPerLink; need > rep.MaxBumpsNeeded {
			rep.MaxBumpsNeeded = need
		}
	}
	rep.TracksPerEdge = int(pl.ChipletW/wp.WirePitchMM) * wp.SignalLayers
	for _, links := range linksPerPair {
		if need := links * wp.WiresPerLink; need > rep.MaxTracksNeeded {
			rep.MaxTracksNeeded = need
		}
	}
	rep.Feasible = rep.MaxBumpsNeeded <= rep.SignalBumpsPerChiplet &&
		rep.MaxTracksNeeded <= rep.TracksPerEdge
	return rep, nil
}
