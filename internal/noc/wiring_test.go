package noc

import (
	"testing"

	"chiplet25d/internal/floorplan"
)

func TestWiringParamsValidate(t *testing.T) {
	if err := DefaultWiringParams().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*WiringParams){
		func(p *WiringParams) { p.MicrobumpPitchMM = 0 },
		func(p *WiringParams) { p.WirePitchMM = -1 },
		func(p *WiringParams) { p.PowerGroundFraction = 1 },
		func(p *WiringParams) { p.SignalLayers = 0 },
		func(p *WiringParams) { p.WiresPerLink = 0 },
	}
	for i, mutate := range cases {
		p := DefaultWiringParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestCheckWiring2DTriviallyFeasible(t *testing.T) {
	rep, err := CheckWiring(floorplan.SingleChip(), DefaultWiringParams())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatal("single chip has no interposer links to route")
	}
}

func TestCheckWiringPaperSystemFeasible(t *testing.T) {
	// The paper's 16-chiplet organizations must comfortably fit Table I
	// bump pitch and interposer routing.
	pl, err := floorplan.UniformGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckWiring(pl, DefaultWiringParams())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatalf("paper system should be wiring-feasible: %+v", rep)
	}
	// 4x4 chiplets: interior chiplets face 4 neighbors x 4 links each = 16
	// inter-chiplet links -> 16*72 = 1152 bumps needed; 4.5mm/50µm = 90 per
	// edge -> 8100 bumps, 4050 for signals.
	if rep.MaxBumpsNeeded != 16*72 {
		t.Errorf("MaxBumpsNeeded = %d, want %d", rep.MaxBumpsNeeded, 16*72)
	}
	if rep.SignalBumpsPerChiplet != 4050 {
		t.Errorf("SignalBumpsPerChiplet = %d, want 4050", rep.SignalBumpsPerChiplet)
	}
	// Each facing pair shares 4 links -> 288 wires over 4500 tracks.
	if rep.MaxTracksNeeded != 4*72 {
		t.Errorf("MaxTracksNeeded = %d, want %d", rep.MaxTracksNeeded, 4*72)
	}
}

func TestCheckWiringDetectsInfeasible(t *testing.T) {
	pl, err := floorplan.UniformGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	wp := DefaultWiringParams()
	wp.WiresPerLink = 512
	wp.MicrobumpPitchMM = 0.6 // absurdly sparse bumps: 7x7=49 bumps, 24 signal
	rep, err := CheckWiring(pl, wp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible {
		t.Fatalf("expected infeasibility with sparse bumps and wide links: %+v", rep)
	}
	if _, err := CheckWiring(pl, WiringParams{}); err == nil {
		t.Errorf("expected error for zero params")
	}
}

func TestCheckWiring256Chiplets(t *testing.T) {
	// One core per chiplet: every link is an inter-chiplet link; the 1.125mm
	// chiplet edge still offers 22x22 bumps = 242 signal bumps, but an
	// interior chiplet needs 4 links x 72 = 288 -> infeasible at default
	// parameters, flagged rather than silently accepted.
	pl, err := floorplan.UniformGrid(16, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckWiring(pl, DefaultWiringParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible {
		t.Fatalf("256 single-core chiplets should exhaust default bump budget: %+v", rep)
	}
	// With a finer bump pitch it becomes feasible.
	wp := DefaultWiringParams()
	wp.MicrobumpPitchMM = 0.03
	rep, err = CheckWiring(pl, wp)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatalf("30 µm pitch should make 256 chiplets feasible: %+v", rep)
	}
}
