package noc

import (
	"testing"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/power"
)

func TestDefaultParamsValidate(t *testing.T) {
	if err := DefaultLinkParams().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultRouterParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkParamsValidateCatchesBad(t *testing.T) {
	cases := []func(*LinkParams){
		func(p *LinkParams) { p.OnChipCPerMM = 0 },
		func(p *LinkParams) { p.InterposerRPerMM = -1 },
		func(p *LinkParams) { p.DriverUnitR = 0 },
		func(p *LinkParams) { p.MaxDriverSize = 0 },
		func(p *LinkParams) { p.TimingMargin = 0 },
	}
	for i, mutate := range cases {
		p := DefaultLinkParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := (RouterParams{EnergyPerFlitJ: 0, FlitBits: 64}).Validate(); err == nil {
		t.Errorf("expected router validation error")
	}
}

func TestElmoreDelayGrowsWithLength(t *testing.T) {
	lp := DefaultLinkParams()
	prev := 0.0
	for _, l := range []float64{1, 5, 10, 20, 30} {
		d := lp.InterposerElmoreDelayNS(l, 4)
		if d <= prev {
			t.Fatalf("delay not increasing with length at %g mm: %g", l, d)
		}
		prev = d
	}
}

func TestElmoreDelayShrinksWithDriverSize(t *testing.T) {
	lp := DefaultLinkParams()
	d1 := lp.InterposerElmoreDelayNS(15, 1)
	d8 := lp.InterposerElmoreDelayNS(15, 8)
	if d8 >= d1 {
		t.Fatalf("bigger driver should be faster: size1=%g ns size8=%g ns", d1, d8)
	}
}

func TestSizeInterposerDriverSingleCycle(t *testing.T) {
	lp := DefaultLinkParams()
	// The paper's Fig. 2 link is 15 mm; it must be drivable in one cycle at
	// 1 GHz with a reasonable driver.
	size, err := lp.SizeInterposerDriver(15, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if size < 1 || size > lp.MaxDriverSize {
		t.Fatalf("driver size %d out of range", size)
	}
	if d := lp.InterposerElmoreDelayNS(15, size); d > 0.9*1.0 {
		t.Fatalf("sized link misses timing: %g ns at size %d", d, size)
	}
	// At a lower frequency the same link needs a smaller (or equal) driver.
	slow, err := lp.SizeInterposerDriver(15, 320)
	if err != nil {
		t.Fatal(err)
	}
	if slow > size {
		t.Fatalf("320 MHz driver (%d) should not exceed 1 GHz driver (%d)", slow, size)
	}
}

func TestSizeInterposerDriverErrors(t *testing.T) {
	lp := DefaultLinkParams()
	if _, err := lp.SizeInterposerDriver(0, 1000); err == nil {
		t.Errorf("expected error for zero length")
	}
	if _, err := lp.SizeInterposerDriver(10, 0); err == nil {
		t.Errorf("expected error for zero frequency")
	}
	// An absurdly long link at a tiny driver bound must fail timing.
	lp.MaxDriverSize = 1
	if _, err := lp.SizeInterposerDriver(500, 1000); err == nil {
		t.Errorf("expected timing failure for 500 mm link with unit driver")
	}
}

func TestEnergyPerBitOrdering(t *testing.T) {
	lp := DefaultLinkParams()
	on := lp.OnChipEnergyPerBitJ(1.125, 0.9)
	inter := lp.InterposerEnergyPerBitJ(11, 8, 0.9)
	if inter <= on {
		t.Fatalf("interposer bit energy (%g) should exceed on-chip (%g)", inter, on)
	}
	// Energy scales with V².
	lo := lp.InterposerEnergyPerBitJ(11, 8, 0.63)
	if lo >= inter {
		t.Fatalf("lower voltage should cost less energy")
	}
}

func TestMeshPowerSingleChipAnchor(t *testing.T) {
	// Paper anchor: the single-chip 256-core mesh consumes ≈3.9 W on the
	// busiest benchmark (canneal-class traffic 0.15 at 1 GHz).
	b, err := MeshPower(floorplan.SingleChip(), power.NominalPoint, 256, 0.15,
		DefaultLinkParams(), DefaultRouterParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := b.TotalW(); got < 3.0 || got > 4.8 {
		t.Fatalf("single-chip mesh power %.2f W, paper anchor ≈3.9 W", got)
	}
	if b.NumInterLinks != 0 || b.InterLinkW != 0 {
		t.Fatalf("single chip must have no interposer links: %+v", b)
	}
}

func TestMeshPower25DAnchor(t *testing.T) {
	// Paper anchor: the 2.5D mesh consumes up to ≈8.4 W; it must exceed the
	// single-chip mesh (drivers and longer wires) but stay the same order.
	pl, err := floorplan.UniformGrid(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeshPower(pl, power.NominalPoint, 256, 0.15,
		DefaultLinkParams(), DefaultRouterParams())
	if err != nil {
		t.Fatal(err)
	}
	got := b.TotalW()
	if got < 5.5 || got > 11 {
		t.Fatalf("2.5D mesh power %.2f W, paper anchor up to ≈8.4 W", got)
	}
	if b.NumInterLinks == 0 {
		t.Fatalf("expected inter-chiplet links in a 16-chiplet mesh")
	}
	// 16 chiplets: 3 cut lines per axis x 16 rows = 96 boundary links.
	if b.NumInterLinks != 96 {
		t.Fatalf("inter-chiplet link count = %d, want 96", b.NumInterLinks)
	}
}

func TestMeshPowerScalesWithSpacing(t *testing.T) {
	var prev float64
	for _, sp := range []float64{1, 5, 10} {
		pl, err := floorplan.UniformGrid(4, sp)
		if err != nil {
			t.Fatal(err)
		}
		b, err := MeshPower(pl, power.NominalPoint, 256, 0.10,
			DefaultLinkParams(), DefaultRouterParams())
		if err != nil {
			t.Fatal(err)
		}
		if b.TotalW() <= prev {
			t.Fatalf("mesh power should grow with spacing: %g at %g mm", b.TotalW(), sp)
		}
		prev = b.TotalW()
	}
}

func TestMeshPowerScalesWithActivity(t *testing.T) {
	pl := floorplan.SingleChip()
	lo, err := MeshPower(pl, power.NominalPoint, 64, 0.05, DefaultLinkParams(), DefaultRouterParams())
	if err != nil {
		t.Fatal(err)
	}
	hi, err := MeshPower(pl, power.NominalPoint, 256, 0.05, DefaultLinkParams(), DefaultRouterParams())
	if err != nil {
		t.Fatal(err)
	}
	ratio := hi.TotalW() / lo.TotalW()
	if ratio < 3.9 || ratio > 4.1 {
		t.Fatalf("power should scale linearly with active cores: ratio %.2f", ratio)
	}
}

func TestMeshPowerZeroCases(t *testing.T) {
	pl := floorplan.SingleChip()
	b, err := MeshPower(pl, power.NominalPoint, 0, 0.1, DefaultLinkParams(), DefaultRouterParams())
	if err != nil {
		t.Fatal(err)
	}
	if b.TotalW() != 0 {
		t.Fatalf("zero active cores should draw no mesh power")
	}
	if _, err := MeshPower(pl, power.NominalPoint, -1, 0.1, DefaultLinkParams(), DefaultRouterParams()); err == nil {
		t.Errorf("expected error for negative active cores")
	}
	if _, err := MeshPower(pl, power.NominalPoint, 10, 1.5, DefaultLinkParams(), DefaultRouterParams()); err == nil {
		t.Errorf("expected error for traffic > 1")
	}
}

func TestMeshPowerLowerFrequencyCheaper(t *testing.T) {
	pl, err := floorplan.UniformGrid(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := MeshPower(pl, power.FrequencySet[0], 256, 0.1, DefaultLinkParams(), DefaultRouterParams())
	if err != nil {
		t.Fatal(err)
	}
	slow, err := MeshPower(pl, power.FrequencySet[3], 256, 0.1, DefaultLinkParams(), DefaultRouterParams())
	if err != nil {
		t.Fatal(err)
	}
	if slow.TotalW() >= fast.TotalW() {
		t.Fatalf("400 MHz mesh should draw less power than 1 GHz")
	}
}
