package noc

import (
	"math"
	"testing"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/power"
)

func allActiveMask() []bool {
	m := make([]bool, floorplan.NumCores)
	for i := range m {
		m[i] = true
	}
	return m
}

func TestXYLinkLoadsRejectsBadMask(t *testing.T) {
	if _, err := XYLinkLoads(make([]bool, 5)); err == nil {
		t.Errorf("expected error for short mask")
	}
}

func TestXYLinkLoadsZeroForFewCores(t *testing.T) {
	loads, err := XYLinkLoads(make([]bool, floorplan.NumCores))
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range loads {
		if l != 0 {
			t.Fatalf("link %d has load %g with no active cores", i, l)
		}
	}
	one := make([]bool, floorplan.NumCores)
	one[0] = true
	loads, err = XYLinkLoads(one)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range loads {
		if l != 0 {
			t.Fatalf("single core should produce no traffic")
		}
	}
}

// Conservation: per-flit link loads must sum to the mean hop count, which
// for uniform random traffic on a full 16x16 mesh is 2·(n - 1/n)/3 = 10.625.
func TestXYLinkLoadsConservation(t *testing.T) {
	loads, err := XYLinkLoads(allActiveMask())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, l := range loads {
		sum += l
	}
	n := float64(floorplan.CoresPerEdge)
	// Mean Manhattan distance between two distinct uniform points:
	// 2 * (n²-1) * n / (3 * (n²·(n²-1)/(n²)))... computed directly instead:
	direct := 0.0
	count := 0
	for s := 0; s < floorplan.NumCores; s++ {
		for d := 0; d < floorplan.NumCores; d++ {
			if s == d {
				continue
			}
			sx, sy := s%16, s/16
			dx, dy := d%16, d/16
			direct += math.Abs(float64(sx-dx)) + math.Abs(float64(sy-dy))
			count++
		}
	}
	want := direct / float64(count)
	if math.Abs(sum-want) > 1e-9 {
		t.Fatalf("loads sum to %.6f, want mean hop count %.6f", sum, want)
	}
	_ = n
}

// Under XY routing on a symmetric mesh the central column/row links carry
// the highest load; the mesh boundary links the lowest.
func TestXYLinkLoadsCenterHotter(t *testing.T) {
	loads, err := XYLinkLoads(allActiveMask())
	if err != nil {
		t.Fatal(err)
	}
	n := floorplan.CoresPerEdge
	center := loads[linkIndex(n, LinkID{Col: 7, Row: 8, Dir: 0})]
	edge := loads[linkIndex(n, LinkID{Col: 0, Row: 8, Dir: 0})]
	if center <= edge {
		t.Fatalf("central X link load %.4f should exceed edge link %.4f", center, edge)
	}
	if center < 3*edge {
		t.Errorf("central/edge load ratio %.2f suspiciously small for XY routing", center/edge)
	}
}

// Symmetry: the full-mesh load pattern must be mirror-symmetric.
func TestXYLinkLoadsSymmetry(t *testing.T) {
	loads, err := XYLinkLoads(allActiveMask())
	if err != nil {
		t.Fatal(err)
	}
	n := floorplan.CoresPerEdge
	for row := 0; row < n; row++ {
		for col := 0; col+1 < n; col++ {
			a := loads[linkIndex(n, LinkID{Col: col, Row: row, Dir: 0})]
			b := loads[linkIndex(n, LinkID{Col: n - 2 - col, Row: row, Dir: 0})]
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("X-link loads not mirror symmetric at (%d,%d): %g vs %g", col, row, a, b)
			}
		}
	}
}

func TestMeshPowerXYAgreesWithUniformOnTotals(t *testing.T) {
	pl, err := floorplan.UniformGrid(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := MeshPower(pl, power.NominalPoint, 256, 0.1, DefaultLinkParams(), DefaultRouterParams())
	if err != nil {
		t.Fatal(err)
	}
	xy, _, err := MeshPowerXY(pl, power.NominalPoint, allActiveMask(), 0.1, DefaultLinkParams(), DefaultRouterParams())
	if err != nil {
		t.Fatal(err)
	}
	// Same total traffic and same energy model: totals agree within the
	// load-redistribution factor (XY concentrates load centrally, but both
	// integrate the same hop count).
	ratio := xy.TotalW() / uni.TotalW()
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("XY power %.2f W vs uniform %.2f W: ratio %.2f out of band",
			xy.TotalW(), uni.TotalW(), ratio)
	}
	if xy.NumInterLinks == 0 {
		t.Fatalf("expected inter-chiplet links")
	}
}

func TestMeshPowerXYUtilization(t *testing.T) {
	pl := floorplan.SingleChip()
	_, maxUtil, err := MeshPowerXY(pl, power.NominalPoint, allActiveMask(), 0.1, DefaultLinkParams(), DefaultRouterParams())
	if err != nil {
		t.Fatal(err)
	}
	if maxUtil <= 0 {
		t.Fatalf("expected positive peak utilization")
	}
	// 256 cores x 0.1 flits/cycle over 480 links averages ~0.57 flits/cycle
	// per link; the central links must be well above the average but finite.
	if maxUtil > 10 {
		t.Fatalf("peak utilization %.2f flits/cycle non-physical", maxUtil)
	}
	// Zero cases.
	b, u, err := MeshPowerXY(pl, power.NominalPoint, make([]bool, floorplan.NumCores), 0.1,
		DefaultLinkParams(), DefaultRouterParams())
	if err != nil {
		t.Fatal(err)
	}
	if b.TotalW() != 0 || u != 0 {
		t.Fatalf("idle mesh should draw nothing")
	}
	if _, _, err := MeshPowerXY(pl, power.NominalPoint, allActiveMask(), 2,
		DefaultLinkParams(), DefaultRouterParams()); err == nil {
		t.Errorf("expected error for traffic > 1")
	}
}
