// Package noc models the 256-core electrical mesh network's power and the
// inter-chiplet interposer links of the paper's 2.5D system. It substitutes
// for two of the paper's tools:
//
//   - DSENT, used for on-chip router and link power, is replaced by a
//     calibrated energy-per-flit router model and a CV² wire model;
//   - HSpice on the interconnect model of [23] (Fig. 2), used for
//     inter-chiplet links, is replaced by an Elmore-delay analysis of the
//     same RLC ladder (driver, ESD capacitance, microbump parasitics,
//     distributed interposer wire), with drivers sized up until the link
//     meets single-cycle propagation at the operating frequency.
//
// The defaults are calibrated to the paper's anchors: the single-chip mesh
// consumes ≈3.9 W and the 2.5D mesh up to ≈8.4 W on the highest-traffic
// benchmark, with negligible thermal impact either way.
package noc

import (
	"fmt"
	"math"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/power"
)

// LinkParams describes the electrical model of mesh links (Fig. 2).
type LinkParams struct {
	// OnChipCPerMM is the on-chiplet wire capacitance (F/mm).
	OnChipCPerMM float64
	// OnChipRPerMM is the on-chiplet wire resistance (Ω/mm).
	OnChipRPerMM float64
	// InterposerCPerMM and InterposerRPerMM describe the wide interposer
	// wires of the 2.5D link model [23].
	InterposerCPerMM float64
	InterposerRPerMM float64
	// MicrobumpR, MicrobumpL, MicrobumpC are the per-bump parasitics
	// (Fig. 2: ≈0.095 Ω, ≈0.053 nH).
	MicrobumpR float64
	MicrobumpL float64
	MicrobumpC float64
	// ESDC is the ESD protection capacitance at each chiplet I/O.
	ESDC float64
	// DriverUnitR and DriverUnitC are the unit inverter's output resistance
	// and self-capacitance; a size-S driver has R/S and C·S.
	DriverUnitR float64
	DriverUnitC float64
	// ReceiverC is the far-end input capacitance.
	ReceiverC float64
	// MaxDriverSize bounds driver upsizing.
	MaxDriverSize int
	// TimingMargin is the fraction of the cycle that must absorb the link
	// delay (e.g. 0.9 leaves 10% margin).
	TimingMargin float64
}

// DefaultLinkParams returns the calibrated Fig. 2 model.
func DefaultLinkParams() LinkParams {
	return LinkParams{
		OnChipCPerMM:     0.08e-12,
		OnChipRPerMM:     2.0,
		InterposerCPerMM: 0.10e-12,
		InterposerRPerMM: 10.0,
		MicrobumpR:       0.095,
		MicrobumpL:       0.053e-9,
		MicrobumpC:       0.05e-12,
		ESDC:             0.10e-12,
		DriverUnitR:      1000,
		DriverUnitC:      5e-15,
		ReceiverC:        5e-15,
		MaxDriverSize:    256,
		TimingMargin:     0.9,
	}
}

// Validate checks the parameters.
func (lp LinkParams) Validate() error {
	if lp.OnChipCPerMM <= 0 || lp.InterposerCPerMM <= 0 {
		return fmt.Errorf("noc: wire capacitances must be positive")
	}
	if lp.OnChipRPerMM <= 0 || lp.InterposerRPerMM <= 0 {
		return fmt.Errorf("noc: wire resistances must be positive")
	}
	if lp.DriverUnitR <= 0 || lp.DriverUnitC < 0 || lp.ReceiverC < 0 {
		return fmt.Errorf("noc: invalid driver/receiver parameters")
	}
	if lp.MaxDriverSize < 1 {
		return fmt.Errorf("noc: max driver size must be >= 1")
	}
	if lp.TimingMargin <= 0 || lp.TimingMargin > 1 {
		return fmt.Errorf("noc: timing margin %g outside (0,1]", lp.TimingMargin)
	}
	return nil
}

// interposerLoadC returns the total switched capacitance of an interposer
// link of the given length, excluding the driver's self-capacitance: two
// ESD caps, two microbumps, the distributed wire, and the receiver.
func (lp LinkParams) interposerLoadC(lengthMM float64) float64 {
	return 2*lp.ESDC + 2*lp.MicrobumpC + lp.InterposerCPerMM*lengthMM + lp.ReceiverC
}

// onChipLoadC returns the switched capacitance of an on-chiplet link.
func (lp LinkParams) onChipLoadC(lengthMM float64) float64 {
	return lp.OnChipCPerMM*lengthMM + lp.ReceiverC
}

// InterposerElmoreDelayNS computes the 50% Elmore delay (ns) of the Fig. 2
// ladder for an interposer link of the given length driven by a size-S
// driver: 0.69·(R_drv·C_total + R_bump·C_downstream + R_wire·C_wire/2 + …).
func (lp LinkParams) InterposerElmoreDelayNS(lengthMM float64, size int) float64 {
	if size < 1 {
		size = 1
	}
	rDrv := lp.DriverUnitR / float64(size)
	cWire := lp.InterposerCPerMM * lengthMM
	rWire := lp.InterposerRPerMM * lengthMM
	cAfterNearBump := lp.MicrobumpC + cWire + lp.MicrobumpC + lp.ESDC + lp.ReceiverC
	// Elmore sum down the ladder.
	tau := rDrv * (lp.DriverUnitC*float64(size) + lp.ESDC + cAfterNearBump)
	tau += lp.MicrobumpR * cAfterNearBump
	// Distributed wire: R_w·C_w/2 plus R_w times everything after the wire.
	tau += rWire * (cWire/2 + lp.MicrobumpC + lp.ESDC + lp.ReceiverC)
	tau += lp.MicrobumpR * (lp.ESDC + lp.ReceiverC)
	return 0.69 * tau * 1e9
}

// SizeInterposerDriver returns the smallest driver size meeting
// single-cycle propagation at the given frequency, per the paper's
// methodology ("we size up the drivers to ensure single-cycle propagation
// delay in the inter-chiplet links").
func (lp LinkParams) SizeInterposerDriver(lengthMM, freqMHz float64) (int, error) {
	if lengthMM <= 0 || freqMHz <= 0 {
		return 0, fmt.Errorf("noc: invalid link length %g mm or frequency %g MHz", lengthMM, freqMHz)
	}
	budgetNS := lp.TimingMargin * 1000 / freqMHz
	for size := 1; size <= lp.MaxDriverSize; size *= 2 {
		if lp.InterposerElmoreDelayNS(lengthMM, size) <= budgetNS {
			return size, nil
		}
	}
	if lp.InterposerElmoreDelayNS(lengthMM, lp.MaxDriverSize) <= budgetNS {
		return lp.MaxDriverSize, nil
	}
	return 0, fmt.Errorf("noc: %g mm interposer link cannot meet single-cycle at %g MHz even at max driver size %d",
		lengthMM, freqMHz, lp.MaxDriverSize)
}

// InterposerEnergyPerBitJ returns the switching energy per bit transition
// of an interposer link with a size-S driver at supply voltage v.
func (lp LinkParams) InterposerEnergyPerBitJ(lengthMM float64, size int, v float64) float64 {
	c := lp.interposerLoadC(lengthMM) + lp.DriverUnitC*float64(size)
	return c * v * v
}

// OnChipEnergyPerBitJ returns the switching energy per bit of an
// on-chiplet link.
func (lp LinkParams) OnChipEnergyPerBitJ(lengthMM float64, v float64) float64 {
	return lp.onChipLoadC(lengthMM) * v * v
}

// RouterParams is the DSENT-substitute router energy model.
type RouterParams struct {
	// EnergyPerFlitJ is the router traversal energy per flit (buffering,
	// arbitration, crossbar).
	EnergyPerFlitJ float64
	// FlitBits is the flit width.
	FlitBits int
}

// DefaultRouterParams returns the calibrated single-cycle router model.
func DefaultRouterParams() RouterParams {
	return RouterParams{EnergyPerFlitJ: 5e-12, FlitBits: 64}
}

// Validate checks the parameters.
func (rp RouterParams) Validate() error {
	if rp.EnergyPerFlitJ <= 0 || rp.FlitBits <= 0 {
		return fmt.Errorf("noc: invalid router parameters %+v", rp)
	}
	return nil
}

// PowerBreakdown decomposes mesh power.
type PowerBreakdown struct {
	RouterW    float64
	IntraLinkW float64
	InterLinkW float64
	// NumInterLinks counts mesh links crossing chiplet boundaries.
	NumInterLinks int
	// MaxDriverSize is the largest inter-chiplet driver the sizing chose.
	MaxDriverSize int
	// MaxInterLinkMM is the longest inter-chiplet link.
	MaxInterLinkMM float64
}

// TotalW returns the total mesh power.
func (b PowerBreakdown) TotalW() float64 { return b.RouterW + b.IntraLinkW + b.InterLinkW }

// avgMeshHops is the mean hop count of uniform-random traffic on an n x n
// mesh: 2n/3 per dimension summed.
func avgMeshHops(n int) float64 { return 2 * float64(n) / 3 }

// MeshPower computes the electrical mesh power for a placement at an
// operating point: activeCores cores each inject `traffic` flits per cycle;
// traffic is spread uniformly over the mesh links; links crossing chiplet
// boundaries are routed through the interposer with single-cycle-sized
// drivers (intra-chiplet links use on-chip wires).
func MeshPower(pl floorplan.Placement, op power.DVFSPoint, activeCores int, traffic float64,
	lp LinkParams, rp RouterParams) (PowerBreakdown, error) {
	if err := lp.Validate(); err != nil {
		return PowerBreakdown{}, err
	}
	if err := rp.Validate(); err != nil {
		return PowerBreakdown{}, err
	}
	if activeCores < 0 || activeCores > floorplan.NumCores {
		return PowerBreakdown{}, fmt.Errorf("noc: active core count %d outside [0,%d]", activeCores, floorplan.NumCores)
	}
	if traffic < 0 || traffic > 1 {
		return PowerBreakdown{}, fmt.Errorf("noc: traffic %g outside [0,1]", traffic)
	}
	cores, err := pl.Cores()
	if err != nil {
		return PowerBreakdown{}, err
	}
	if activeCores == 0 || traffic == 0 {
		return PowerBreakdown{}, nil
	}
	n := floorplan.CoresPerEdge
	coreAt := make([]floorplan.Core, len(cores))
	for _, c := range cores {
		coreAt[c.Row*n+c.Col] = c
	}

	fHz := op.FreqMHz * 1e6
	// Total hop traversals per second across the mesh.
	hopRate := float64(activeCores) * traffic * fHz * avgMeshHops(n)
	numLinks := 2 * n * (n - 1)
	perLinkBitRate := hopRate / float64(numLinks) * float64(rp.FlitBits)

	var b PowerBreakdown
	b.RouterW = hopRate * rp.EnergyPerFlitJ
	v := op.VoltageV
	visit := func(a, c floorplan.Core) error {
		ax, ay := a.Rect.Center()
		cx, cy := c.Rect.Center()
		length := math.Hypot(cx-ax, cy-ay)
		if a.Chiplet == c.Chiplet {
			b.IntraLinkW += perLinkBitRate * lp.OnChipEnergyPerBitJ(length, v)
			return nil
		}
		size, err := lp.SizeInterposerDriver(length, op.FreqMHz)
		if err != nil {
			return err
		}
		if size > b.MaxDriverSize {
			b.MaxDriverSize = size
		}
		if length > b.MaxInterLinkMM {
			b.MaxInterLinkMM = length
		}
		b.NumInterLinks++
		b.InterLinkW += perLinkBitRate * lp.InterposerEnergyPerBitJ(length, size, v)
		return nil
	}
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			c := coreAt[row*n+col]
			if col+1 < n {
				if err := visit(c, coreAt[row*n+col+1]); err != nil {
					return PowerBreakdown{}, err
				}
			}
			if row+1 < n {
				if err := visit(c, coreAt[(row+1)*n+col]); err != nil {
					return PowerBreakdown{}, err
				}
			}
		}
	}
	return b, nil
}
