package noc

import (
	"fmt"
	"math"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/power"
)

// Dimension-ordered XY routing on the 16x16 mesh: packets travel along X in
// the source row, then along Y in the destination column. This file
// computes exact per-link loads for uniform-random traffic among the active
// cores, refining the uniform-load approximation used by MeshPower: under
// XY routing the mesh's central links carry several times the edge links'
// load, which matters for per-link energy and for identifying the hottest
// drivers.

// LinkID identifies a mesh link by its source node and direction.
type LinkID struct {
	Col, Row int
	// Dir is 0 for the +X link (to Col+1) and 1 for the +Y link (to Row+1).
	Dir int
}

// linkIndex flattens a LinkID. X links first, then Y links.
func linkIndex(n int, l LinkID) int {
	if l.Dir == 0 {
		return l.Row*(n-1) + l.Col
	}
	return n*(n-1) + l.Col*(n-1) + l.Row
}

// NumLinks returns the number of (bidirectional) mesh links for an n x n
// mesh.
func NumLinks(n int) int { return 2 * n * (n - 1) }

// XYLinkLoads returns, for each mesh link, the expected traversals per
// injected flit under uniform-random traffic among the active cores with XY
// routing (both directions of a link aggregated). The slice is indexed by
// linkIndex; loads sum to the mean hop count.
func XYLinkLoads(active []bool) ([]float64, error) {
	n := floorplan.CoresPerEdge
	if len(active) != n*n {
		return nil, fmt.Errorf("noc: active mask has %d entries, want %d", len(active), n*n)
	}
	var cores []int
	for id, a := range active {
		if a {
			cores = append(cores, id)
		}
	}
	loads := make([]float64, NumLinks(n))
	if len(cores) < 2 {
		return loads, nil
	}
	perFlow := 1.0 / float64(len(cores)*(len(cores)-1))
	for _, s := range cores {
		sx, sy := s%n, s/n
		for _, d := range cores {
			if d == s {
				continue
			}
			dx, dy := d%n, d/n
			// X leg in the source row.
			x0, x1 := sx, dx
			if x0 > x1 {
				x0, x1 = x1, x0
			}
			for x := x0; x < x1; x++ {
				loads[linkIndex(n, LinkID{Col: x, Row: sy, Dir: 0})] += perFlow
			}
			// Y leg in the destination column.
			y0, y1 := sy, dy
			if y0 > y1 {
				y0, y1 = y1, y0
			}
			for y := y0; y < y1; y++ {
				loads[linkIndex(n, LinkID{Col: dx, Row: y, Dir: 1})] += perFlow
			}
		}
	}
	return loads, nil
}

// MeshPowerXY computes the electrical mesh power like MeshPower but with
// exact XY-routed per-link loads for the given active mask instead of the
// uniform-load approximation. The two agree on totals to within the load
// redistribution; MeshPowerXY additionally reports the most-loaded link.
func MeshPowerXY(pl floorplan.Placement, op power.DVFSPoint, active []bool, traffic float64,
	lp LinkParams, rp RouterParams) (PowerBreakdown, float64, error) {
	if err := lp.Validate(); err != nil {
		return PowerBreakdown{}, 0, err
	}
	if err := rp.Validate(); err != nil {
		return PowerBreakdown{}, 0, err
	}
	if traffic < 0 || traffic > 1 {
		return PowerBreakdown{}, 0, fmt.Errorf("noc: traffic %g outside [0,1]", traffic)
	}
	loads, err := XYLinkLoads(active)
	if err != nil {
		return PowerBreakdown{}, 0, err
	}
	cores, err := pl.Cores()
	if err != nil {
		return PowerBreakdown{}, 0, err
	}
	n := floorplan.CoresPerEdge
	activeCount := 0
	for _, a := range active {
		if a {
			activeCount++
		}
	}
	if activeCount == 0 || traffic == 0 {
		return PowerBreakdown{}, 0, nil
	}
	coreAt := make([]floorplan.Core, len(cores))
	for _, c := range cores {
		coreAt[c.Row*n+c.Col] = c
	}
	fHz := op.FreqMHz * 1e6
	injectRate := float64(activeCount) * traffic * fHz // flits/s entering the mesh
	v := op.VoltageV

	var b PowerBreakdown
	maxLoad := 0.0
	totalHops := 0.0
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			for dir := 0; dir < 2; dir++ {
				if (dir == 0 && col+1 >= n) || (dir == 1 && row+1 >= n) {
					continue
				}
				load := loads[linkIndex(n, LinkID{Col: col, Row: row, Dir: dir})]
				if load == 0 {
					continue
				}
				totalHops += load
				if load > maxLoad {
					maxLoad = load
				}
				a := coreAt[row*n+col]
				var c floorplan.Core
				if dir == 0 {
					c = coreAt[row*n+col+1]
				} else {
					c = coreAt[(row+1)*n+col]
				}
				ax, ay := a.Rect.Center()
				cx, cy := c.Rect.Center()
				length := math.Hypot(cx-ax, cy-ay)
				bitRate := injectRate * load * float64(rp.FlitBits)
				if a.Chiplet == c.Chiplet {
					b.IntraLinkW += bitRate * lp.OnChipEnergyPerBitJ(length, v)
					continue
				}
				size, err := lp.SizeInterposerDriver(length, op.FreqMHz)
				if err != nil {
					return PowerBreakdown{}, 0, err
				}
				if size > b.MaxDriverSize {
					b.MaxDriverSize = size
				}
				if length > b.MaxInterLinkMM {
					b.MaxInterLinkMM = length
				}
				b.NumInterLinks++
				b.InterLinkW += bitRate * lp.InterposerEnergyPerBitJ(length, size, v)
			}
		}
	}
	b.RouterW = injectRate * totalHops * rp.EnergyPerFlitJ
	// maxLoad is in traversals per injected flit; convert to link
	// utilization in flits per cycle.
	maxUtil := maxLoad * float64(activeCount) * traffic
	return b, maxUtil, nil
}
