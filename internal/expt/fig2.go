package expt

import (
	"fmt"

	"chiplet25d/internal/noc"
	"chiplet25d/internal/power"
)

// Fig2LinkModel characterizes the inter-chiplet interposer link model of
// Fig. 2 (the HSpice substitute): Elmore delay, the driver size required
// for single-cycle propagation at each DVFS frequency, and energy per bit,
// across link lengths. The paper's reference link is 15 mm.
func Fig2LinkModel(o Options) (*Table, error) {
	lengths := []float64{1, 5, 10, 15, 20, 25, 30}
	if o.Scale == Reduced {
		lengths = []float64{5, 15, 30}
	}
	lp := noc.DefaultLinkParams()
	t := &Table{
		Title:   "Fig. 2 link model: interposer link delay, driver sizing and energy",
		Columns: []string{"length_mm", "f_MHz", "driver_size", "delay_ns", "energy_pJ_per_bit"},
	}
	for _, l := range lengths {
		for _, op := range power.FrequencySet {
			size, err := lp.SizeInterposerDriver(l, op.FreqMHz)
			if err != nil {
				t.AddRow(f1(l), f1(op.FreqMHz), "untimable", "-", "-")
				continue
			}
			delay := lp.InterposerElmoreDelayNS(l, size)
			energy := lp.InterposerEnergyPerBitJ(l, size, op.VoltageV) * 1e12
			t.AddRow(f1(l), f1(op.FreqMHz), fmt.Sprintf("%d", size), f3(delay), f3(energy))
		}
	}
	t.Notes = append(t.Notes,
		"drivers are sized up until the Elmore delay of the Fig. 2 RLC ladder meets single-cycle timing (paper Sec. III-A)",
		"the paper's reference inter-chiplet link is 15 mm; single-cycle at 1 GHz with a modest driver")
	return t, nil
}
