package expt

import (
	"fmt"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/noc"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
	"chiplet25d/internal/thermal"
)

// Fig5 reproduces Fig. 5: peak temperature of the 256-core system with all
// cores active at 1 GHz, for the single-chip case (0 mm) and uniform-matrix
// 2.5D cases with 4, 16, 64 and 256 chiplets across chiplet spacings,
// capped by the 50 mm interposer limit. Unlike Fig. 3(b) this uses the real
// benchmark power model with the leakage-temperature loop and NoC power.
func Fig5(o Options) (*Table, error) {
	benches, err := o.benchSet("canneal", "hpccg", "shock")
	if err != nil {
		return nil, err
	}
	spacingStep := 1.0
	maxSpacing := 10.0
	counts := []int{1, 4, 16, 64, 256}
	if o.Scale == Reduced {
		spacingStep = 2.0
		counts = []int{1, 4, 16}
	}
	tc := o.thermalConfig()
	t := &Table{
		Title:   "Fig. 5: peak temperature (°C) vs chiplet spacing, all 256 cores at 1 GHz",
		Columns: []string{"benchmark", "chiplets", "spacing_mm", "peak_C", "power_W"},
	}
	for _, b := range benches {
		for _, n := range counts {
			r := 1
			for r*r < n {
				r++
			}
			spacings := []float64{0}
			if n > 1 {
				spacings = nil
				for s := 0.5; s <= maxSpacing+1e-9; s += spacingStep {
					spacings = append(spacings, s)
				}
			}
			for _, sp := range spacings {
				var pl floorplan.Placement
				if n == 1 {
					pl = floorplan.SingleChip()
				} else {
					pl, err = floorplan.UniformGrid(r, sp)
					if err != nil {
						return nil, err
					}
					if pl.Validate() != nil {
						continue // exceeds the 50 mm interposer limit
					}
				}
				peak, totalW, err := benchmarkPeak(pl, tc, b, power.NominalPoint, 256)
				if err != nil {
					return nil, err
				}
				t.AddRow(b.Name, fmt.Sprintf("%d", n), f1(sp), f1(peak), f1(totalW))
			}
		}
	}
	t.Notes = append(t.Notes,
		"paper trends: peak falls as spacing grows; high-power benchmarks need 16 chiplets at ~10 mm to reach 85 °C, low-power ones manage with 16 at 4 mm or 4 at 8 mm",
		"curves end where the interposer would exceed the 50 mm stepper limit (Eq. 7)")
	return t, nil
}

// benchmarkPeak runs the full leakage-coupled simulation of a benchmark on
// a placement at (op, p active cores under MinTemp).
func benchmarkPeak(pl floorplan.Placement, tc thermal.Config, b perf.Benchmark,
	op power.DVFSPoint, p int) (peakC, totalW float64, err error) {
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		return 0, 0, err
	}
	model, err := thermal.NewModel(stack, tc)
	if err != nil {
		return 0, 0, err
	}
	cores, err := pl.Cores()
	if err != nil {
		return 0, 0, err
	}
	active, err := power.MintempActive(p)
	if err != nil {
		return 0, 0, err
	}
	mesh, err := noc.MeshPower(pl, op, p, b.Traffic, noc.DefaultLinkParams(), noc.DefaultRouterParams())
	if err != nil {
		return 0, 0, err
	}
	w := power.Workload{
		RefCoreW: b.RefCoreW,
		Op:       op,
		Active:   active,
		NoCW:     mesh.TotalW(),
		Leakage:  power.DefaultLeakage(),
	}
	res, err := power.Simulate(model, cores, w, power.DefaultSimOptions())
	if err != nil {
		return 0, 0, err
	}
	return res.PeakC, res.TotalPowerW, nil
}
