package expt

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"chiplet25d/internal/floorplan"
)

// fastOptions returns minimal-size options so every experiment completes in
// test time; individual tests tighten the benchmark set further.
func fastOptions() Options {
	return Options{Scale: Reduced, ThermalGridN: 16, Seed: 1}
}

func cell(t *testing.T, tb *Table, row, col int) string {
	t.Helper()
	if row >= len(tb.Rows) || col >= len(tb.Rows[row]) {
		t.Fatalf("cell (%d,%d) out of range in %q", row, col, tb.Title)
	}
	return tb.Rows[row][col]
}

func cellF(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tb, row, col), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, cell(t, tb, row, col), err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tb.AddRow("1", "2")
	var text, csv bytes.Buffer
	if err := tb.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := tb.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "== demo ==") || !strings.Contains(text.String(), "note: a note") {
		t.Errorf("text rendering missing pieces:\n%s", text.String())
	}
	if got := csv.String(); got != "a,bb\n1,2\n" {
		t.Errorf("csv rendering = %q", got)
	}
}

func TestRegistryComplete(t *testing.T) {
	names := map[string]bool{}
	for _, e := range Registry() {
		if e.Name == "" || e.Description == "" || e.Run == nil {
			t.Errorf("incomplete experiment entry %+v", e)
		}
		if names[e.Name] {
			t.Errorf("duplicate experiment %q", e.Name)
		}
		names[e.Name] = true
	}
	// Every paper artifact has a regeneration entry.
	for _, want := range []string{"fig3a", "fig3b", "fig5", "fig6", "fig7", "fig8",
		"headline85", "headline105", "sensitivity", "costreduction", "validate"} {
		if !names[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
	if _, err := ByName("fig5"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Errorf("expected error for unknown experiment")
	}
}

func TestFig3aShape(t *testing.T) {
	tb, err := Fig3a(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	// First row is the minimal 20 mm interposer: every normalized cost
	// must be in the paper's 30-42%-savings band, i.e. 0.55-0.72.
	for col := 1; col < len(tb.Columns); col++ {
		v := cellF(t, tb, 0, col)
		if v < 0.5 || v > 0.78 {
			t.Errorf("minimal-interposer normalized cost %s = %v outside the paper band", tb.Columns[col], v)
		}
	}
	// Cost grows monotonically with interposer size for every series.
	for col := 1; col < len(tb.Columns); col++ {
		prev := 0.0
		for row := range tb.Rows {
			v := cellF(t, tb, row, col)
			if v <= prev {
				t.Errorf("%s not increasing at row %d", tb.Columns[col], row)
			}
			prev = v
		}
	}
}

func TestFig3bShape(t *testing.T) {
	o := fastOptions()
	tb, err := Fig3b(o)
	if err != nil {
		t.Fatal(err)
	}
	// Index rows by (density, grid) series and check each series falls
	// with interposer size; and that higher density is hotter at equal
	// geometry.
	type key struct{ d, g string }
	series := map[key][]float64{}
	for r := range tb.Rows {
		k := key{cell(t, tb, r, 0), cell(t, tb, r, 1)}
		series[k] = append(series[k], cellF(t, tb, r, 3))
	}
	if len(series) == 0 {
		t.Fatal("no series")
	}
	for k, temps := range series {
		for i := 1; i < len(temps); i++ {
			if temps[i] >= temps[i-1] {
				t.Errorf("series %v: peak not falling with interposer size: %v", k, temps)
			}
		}
	}
	// Density 2.0 hotter than 1.0 for the same grid and edge (first point).
	if a, b := series[key{"1.0", "2x2"}], series[key{"2.0", "2x2"}]; len(a) > 0 && len(b) > 0 {
		if b[0] <= a[0] {
			t.Errorf("higher density should be hotter: %v vs %v", b[0], a[0])
		}
	}
}

func TestFig5Shape(t *testing.T) {
	o := fastOptions()
	o.Benchmarks = []string{"shock", "canneal"}
	tb, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ b, n string }
	series := map[key][]float64{}
	single := map[string]float64{}
	for r := range tb.Rows {
		b, n := cell(t, tb, r, 0), cell(t, tb, r, 1)
		if n == "1" {
			single[b] = cellF(t, tb, r, 3)
			continue
		}
		series[key{b, n}] = append(series[key{b, n}], cellF(t, tb, r, 3))
	}
	for k, temps := range series {
		for i := 1; i < len(temps); i++ {
			if temps[i] >= temps[i-1]+0.2 {
				t.Errorf("series %v: peak should fall with spacing: %v", k, temps)
			}
		}
		// 2.5D with spacing must be cooler than the single chip.
		if last := temps[len(temps)-1]; last >= single[k.b] {
			t.Errorf("series %v never beats the single chip (%.1f vs %.1f)", k, last, single[k.b])
		}
	}
	// shock (high power) must run hotter than canneal (low power) on the
	// single chip.
	if single["shock"] <= single["canneal"] {
		t.Errorf("shock single-chip %.1f should exceed canneal %.1f", single["shock"], single["canneal"])
	}
	// shock's single-chip peak must be far above 85 °C (dark silicon).
	if single["shock"] < 95 {
		t.Errorf("shock single chip at %.1f °C does not exhibit dark silicon", single["shock"])
	}
}

func TestFig6Shape(t *testing.T) {
	o := fastOptions()
	o.Benchmarks = []string{"canneal"}
	tb, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	// Normalized IPS must be non-decreasing in interposer size; cost
	// strictly increasing.
	prevIPS, prevCost := 0.0, 0.0
	for r := range tb.Rows {
		if c := cell(t, tb, r, 2); c == "infeasible" {
			continue
		}
		ips := cellF(t, tb, r, 2)
		c4 := cellF(t, tb, r, 3)
		if ips < prevIPS-1e-9 {
			t.Errorf("max IPS fell with interposer size at row %d", r)
		}
		if c4 <= prevCost {
			t.Errorf("cost not increasing at row %d", r)
		}
		prevIPS, prevCost = ips, c4
	}
}

func TestFig7Shape(t *testing.T) {
	o := fastOptions()
	o.Benchmarks = []string{"canneal"}
	tb, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	// The (0,1) cost-only series must equal the normalized minimum cost and
	// hence increase with edge; the (1,0) series must be non-increasing.
	var costSeries, perfSeries []float64
	for r := range tb.Rows {
		if cell(t, tb, r, 4) == "infeasible" {
			continue
		}
		alpha := cell(t, tb, r, 1)
		v := cellF(t, tb, r, 4)
		switch alpha {
		case "0.0":
			costSeries = append(costSeries, v)
		case "1.0":
			perfSeries = append(perfSeries, v)
		}
	}
	for i := 1; i < len(costSeries); i++ {
		if costSeries[i] <= costSeries[i-1] {
			t.Errorf("cost-only objective should rise with interposer size: %v", costSeries)
		}
	}
	for i := 1; i < len(perfSeries); i++ {
		if perfSeries[i] > perfSeries[i-1]+1e-9 {
			t.Errorf("performance-only objective should not rise with interposer size: %v", perfSeries)
		}
	}
}

func TestFig8ProducesMaps(t *testing.T) {
	o := fastOptions()
	o.Benchmarks = []string{"canneal"}
	tb, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("expected one row, got %d", len(tb.Rows))
	}
	found := false
	for _, n := range tb.Notes {
		if strings.Contains(n, "organization map") && strings.Contains(n, "#") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an ASCII organization map in notes")
	}
}

func TestHeadlineReducedShape(t *testing.T) {
	o := fastOptions()
	o.Benchmarks = []string{"cholesky", "lu.cont"}
	tb, err := Headline(o, 85)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	gains := map[string]float64{}
	for r := range tb.Rows {
		gains[cell(t, tb, r, 0)] = cellF(t, tb, r, 8)
	}
	if gains["cholesky"] < 30 {
		t.Errorf("cholesky iso-cost gain %.1f%% too small", gains["cholesky"])
	}
	if gains["lu.cont"] != 0 {
		t.Errorf("lu.cont gain should be 0, got %.1f", gains["lu.cont"])
	}
}

func TestCostReductionShape(t *testing.T) {
	o := fastOptions()
	o.Benchmarks = []string{"canneal"}
	tb, err := CostReduction(o, 85)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	saving := cellF(t, tb, 0, 4)
	if saving < 25 || saving > 45 {
		t.Errorf("iso-performance saving %.1f%% outside the paper's ~36%% band", saving)
	}
	if perf := cellF(t, tb, 0, 5); perf < 1 {
		t.Errorf("iso-performance organization lost performance: %.2fx", perf)
	}
}

func TestGreedyValidationReduced(t *testing.T) {
	o := fastOptions()
	o.Benchmarks = []string{"canneal"}
	tb, err := GreedyValidation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("no validation rows")
	}
	if got := cell(t, tb, 0, 2); got != "true" {
		t.Errorf("greedy should agree with exhaustive on the reduced instance, got %q", got)
	}
}

func TestFidelityBreakdownShape(t *testing.T) {
	o := fastOptions()
	o.Benchmarks = []string{"canneal"}
	tb, err := FidelityBreakdown(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(tb.Rows))
	}
	if hits := cellF(t, tb, 0, 4); hits <= 0 {
		t.Errorf("spatial tier decided %v evaluations, want some", hits)
	}
	if share := cellF(t, tb, 0, 6); share <= 0 || share > 1 {
		t.Errorf("spatial share %v outside (0, 1]", share)
	}
	if bound := cellF(t, tb, 0, 7); bound <= 0 {
		t.Errorf("calibration bound %v, want positive", bound)
	}
	if got := cell(t, tb, 0, 9); got != "true" {
		t.Errorf("spatial tier changed the objective value on the reduced instance: same_objective = %q", got)
	}
}

func TestPlacementMapGeometry(t *testing.T) {
	// The single chip with 64 active cores: map is 18x18 characters inside
	// the border, containing exactly 256 core glyphs of which 64 active.
	m, err := PlacementMap(mustSingleChip(), 64)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(m, "\n")
	if len(lines) != 20 {
		t.Fatalf("map has %d lines, want 20 (18 + borders)", len(lines))
	}
	active := strings.Count(m, "#")
	dark := strings.Count(m, ".")
	if active != 64 {
		t.Errorf("map shows %d active cores, want 64", active)
	}
	if active+dark != 256 {
		t.Errorf("map shows %d cores, want 256", active+dark)
	}
}

func mustSingleChip() floorplan.Placement { return floorplan.SingleChip() }

func TestSprintShape(t *testing.T) {
	o := fastOptions()
	o.Benchmarks = []string{"shock"}
	tb, err := Sprint(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 3 {
		t.Fatalf("expected several organizations, got %d rows", len(tb.Rows))
	}
	// The single chip must hit the threshold quickly; at least one spread
	// organization must last longer or sustain indefinitely.
	var singleS float64
	bestS := -1.0
	sustained := false
	for r := range tb.Rows {
		name := cell(t, tb, r, 1)
		s := cell(t, tb, r, 2)
		if strings.HasPrefix(s, ">") {
			if name != "single-chip" {
				sustained = true
			}
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatal(err)
		}
		if name == "single-chip" {
			singleS = v
		} else if v > bestS {
			bestS = v
		}
	}
	if singleS <= 0 || singleS > 60 {
		t.Fatalf("single chip sprint time %.1f out of expected range", singleS)
	}
	if !sustained && bestS <= singleS {
		t.Fatalf("no 2.5D organization outlasted the single chip (%.1f s)", singleS)
	}
}

func TestTSPCurvesShape(t *testing.T) {
	o := fastOptions()
	tb, err := TSPCurves(o)
	if err != nil {
		t.Fatal(err)
	}
	// Group per-core budgets by organization; they must fall with core
	// count, and the 16-chiplet@8mm rows must beat the single chip.
	byOrg := map[string][]float64{}
	for r := range tb.Rows {
		byOrg[cell(t, tb, r, 0)] = append(byOrg[cell(t, tb, r, 0)], cellF(t, tb, r, 2))
	}
	for org, budgets := range byOrg {
		for i := 1; i < len(budgets); i++ {
			if budgets[i] >= budgets[i-1] {
				t.Errorf("%s: per-core TSP should fall with core count: %v", org, budgets)
			}
		}
	}
	single := byOrg["single-chip"]
	spread := byOrg["16-chiplet@8mm"]
	if len(single) == 0 || len(spread) == 0 {
		t.Fatalf("missing TSP series: %v", byOrg)
	}
	for i := range single {
		if spread[i] <= single[i] {
			t.Errorf("2.5D TSP %.3f should beat single chip %.3f at index %d", spread[i], single[i], i)
		}
	}
}

func TestReliabilityShape(t *testing.T) {
	o := fastOptions()
	o.Benchmarks = []string{"lu.cont"}
	tb, err := Reliability(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// lu.cont's iso-performance 2.5D organization must run cooler and last
	// longer.
	delta := cellF(t, tb, 0, 3)
	ratio := cellF(t, tb, 0, 4)
	if delta <= 0 {
		t.Errorf("2.5D should run cooler; delta %.1f", delta)
	}
	if ratio <= 1 {
		t.Errorf("lifetime ratio %.2f should exceed 1", ratio)
	}
	if cost := cellF(t, tb, 0, 5); cost >= 1 {
		t.Errorf("iso-performance organization should also be cheaper, cost %.3f", cost)
	}
}

func TestFig2LinkModelShape(t *testing.T) {
	tb, err := Fig2LinkModel(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Every timed row's delay must meet single-cycle at its frequency, and
	// longer links at equal frequency must not need smaller drivers.
	for _, row := range tb.Rows {
		if row[2] == "untimable" {
			continue
		}
		var l, f, d float64
		var size int
		if _, err := fmt.Sscanf(row[0], "%f", &l); err != nil {
			t.Fatal(err)
		}
		if _, err := fmt.Sscanf(row[1], "%f", &f); err != nil {
			t.Fatal(err)
		}
		if _, err := fmt.Sscanf(row[2], "%d", &size); err != nil {
			t.Fatal(err)
		}
		if _, err := fmt.Sscanf(row[3], "%f", &d); err != nil {
			t.Fatal(err)
		}
		if d > 1000/f {
			t.Errorf("%g mm at %g MHz: delay %g ns misses the cycle", l, f, d)
		}
		if size < 1 {
			t.Errorf("driver size %d invalid", size)
		}
	}
}

func TestScaleString(t *testing.T) {
	if Reduced.String() != "reduced" || Full.String() != "full" {
		t.Errorf("scale strings wrong")
	}
}

func TestWriteMarkdown(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Columns: []string{"a", "b"},
		Notes:   []string{"simple note", "multi\nline map"},
	}
	tb.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tb.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### demo", "| a | b |", "| --- | --- |", "| 1 | 2 |", "> simple note", "```\nmulti\nline map\n```"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

// Every registered experiment must run cleanly at reduced scale — the
// catch-all safety net for the regeneration harness.
func TestAllExperimentsRunReduced(t *testing.T) {
	if testing.Short() {
		t.Skip("slow catch-all")
	}
	o := fastOptions()
	o.Benchmarks = []string{"canneal"}
	for _, e := range Registry() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			tb, err := e.Run(o)
			if err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if len(tb.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.Name)
			}
			var buf bytes.Buffer
			if err := tb.WriteText(&buf); err != nil {
				t.Fatal(err)
			}
			if err := tb.WriteMarkdown(&buf); err != nil {
				t.Fatal(err)
			}
			if err := tb.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestStackingShape(t *testing.T) {
	tb, err := Stacking(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	peaks := map[string]float64{}
	for r := range tb.Rows {
		peaks[cell(t, tb, r, 1)] = cellF(t, tb, r, 3)
	}
	if !(peaks["3D 2-high"] > peaks["2D single chip"]) {
		t.Errorf("3D should exceed 2D: %v", peaks)
	}
	if !(peaks["3D 4-high"] > peaks["3D 2-high"]) {
		t.Errorf("more levels should run hotter: %v", peaks)
	}
	if !(peaks["2.5D 16-chiplet@8mm"] < peaks["2D single chip"]) {
		t.Errorf("2.5D should run cooler than 2D: %v", peaks)
	}
}
