package expt

import (
	"fmt"
	"sort"
)

// Experiment is a named, runnable reproduction of one paper artifact.
type Experiment struct {
	// Name is the CLI identifier (e.g. "fig5").
	Name string
	// Description says which paper artifact it regenerates.
	Description string
	// Run produces the result table.
	Run func(Options) (*Table, error)
}

// Registry returns all experiments keyed by name.
func Registry() []Experiment {
	list := []Experiment{
		{Name: "fig2", Description: "Fig. 2: interposer link model (delay, driver sizing, energy)", Run: Fig2LinkModel},
		{Name: "fig3a", Description: "Fig. 3(a): normalized 2.5D cost vs interposer size", Run: Fig3a},
		{Name: "fig3b", Description: "Fig. 3(b): peak temperature vs interposer size (synthetic densities)", Run: Fig3b},
		{Name: "fig5", Description: "Fig. 5: peak temperature vs chiplet spacing, all cores at 1 GHz", Run: Fig5},
		{Name: "fig6", Description: "Fig. 6: normalized max IPS and cost vs interposer size", Run: Fig6},
		{Name: "fig7", Description: "Fig. 7: minimum objective value vs interposer size", Run: Fig7},
		{Name: "fig8", Description: "Fig. 8: performance-optimal organizations and allocation maps", Run: Fig8},
		{Name: "headline85", Description: "Sec. V-B: iso-cost improvement at 85 °C", Run: func(o Options) (*Table, error) { return Headline(o, 85) }},
		{Name: "headline105", Description: "Sec. V-B: iso-cost improvement at 105 °C", Run: func(o Options) (*Table, error) { return Headline(o, 105) }},
		{Name: "sensitivity", Description: "Sec. V-B: threshold sensitivity (75-105 °C)", Run: Sensitivity},
		{Name: "costreduction", Description: "Sec. V-B: iso-performance cost reduction (≈36%)", Run: func(o Options) (*Table, error) { return CostReduction(o, 85) }},
		{Name: "validate", Description: "Sec. III-D: greedy vs exhaustive validation", Run: GreedyValidation},
		{Name: "fidelity", Description: "Infrastructure: fidelity-tier breakdown, spatial surrogate vs full-fidelity search", Run: FidelityBreakdown},
		{Name: "sprint", Description: "Extension: computational sprinting, time-to-threshold vs organization", Run: Sprint},
		{Name: "stacking", Description: "Extension: 2D vs 2.5D vs 3D stacking peak temperature", Run: Stacking},
		{Name: "tcosweep", Description: "Extension: server TCO elaboration, $/GIPS-year vs chiplet count across tech nodes", Run: TCOSweep},
		{Name: "tsp", Description: "Extension: Thermal Safe Power curves, single chip vs 2.5D", Run: TSPCurves},
		{Name: "reliability", Description: "Extension: lifetime gain of iso-performance 2.5D organizations", Run: Reliability},
		{Name: "ablation-search", Description: "Ablation: greedy vs annealing vs exhaustive search", Run: AblationSearch},
		{Name: "ablation-starts", Description: "Ablation: greedy start count", Run: AblationStarts},
		{Name: "ablation-cooling", Description: "Ablation: iso-cost gain vs cooling quality", Run: AblationCooling},
		{Name: "ablation-grid", Description: "Ablation: thermal grid resolution", Run: AblationGrid},
		{Name: "ablation-leakage", Description: "Ablation: leakage feedback", Run: AblationLeakage},
		{Name: "ablation-alloc", Description: "Ablation: MinTemp vs row-major allocation", Run: AblationAllocation},
		{Name: "ablation-alloc25d", Description: "Ablation: MinTemp vs chiplet-balanced allocation on 2.5D", Run: AblationAllocation25D},
		{Name: "ablation-neighbor", Description: "Ablation: random vs steepest-descent neighbor policy", Run: AblationNeighborPolicy},
		{Name: "ablation-nonuniform", Description: "Ablation: non-uniform vs uniform spacing", Run: AblationNonUniform},
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	return list
}

// ByName returns the named experiment.
func ByName(name string) (Experiment, error) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("expt: unknown experiment %q", name)
}
