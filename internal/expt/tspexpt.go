package expt

import (
	"fmt"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/thermal"
	"chiplet25d/internal/tsp"
)

// TSPCurves computes Thermal Safe Power curves (related work [6],
// implemented as a composing baseline) for the single chip and for 2.5D
// organizations: per-core and total thermally safe power versus active core
// count at 85 °C. The 2.5D rows quantify how much the thermally-aware
// organization raises the safe power budget at every occupancy — the
// headroom the paper's optimizer converts into performance.
func TSPCurves(o Options) (*Table, error) {
	type variant struct {
		name string
		pl   floorplan.Placement
	}
	variants := []variant{{"single-chip", floorplan.SingleChip()}}
	for _, spec := range []struct {
		r  int
		sp float64
	}{{2, 8}, {4, 4}, {4, 8}} {
		pl, err := floorplan.UniformGrid(spec.r, spec.sp)
		if err != nil {
			return nil, err
		}
		variants = append(variants, variant{fmt.Sprintf("%d-chiplet@%gmm", spec.r*spec.r, spec.sp), pl})
	}
	tc := o.thermalConfig()
	opts := tsp.DefaultOptions()
	if o.Scale == Reduced {
		opts.ToleranceW = 0.05
	}
	t := &Table{
		Title:   "Thermal Safe Power (TSP) curves at 85 °C: single chip vs 2.5D organizations",
		Columns: []string{"organization", "active_cores", "tsp_W_per_core", "tsp_total_W"},
	}
	for _, v := range variants {
		stack, err := floorplan.BuildStack(v.pl)
		if err != nil {
			return nil, err
		}
		m, err := thermal.NewModel(stack, tc)
		if err != nil {
			return nil, err
		}
		cores, err := v.pl.Cores()
		if err != nil {
			return nil, err
		}
		curve, err := tsp.Curve(m, cores, 85, opts)
		if err != nil {
			return nil, err
		}
		for _, b := range curve {
			t.AddRow(v.name, fmt.Sprintf("%d", b.ActiveCores), f3(b.PerCoreW), f1(b.TotalW))
		}
	}
	t.Notes = append(t.Notes,
		"TSP (Pagani et al. [6]) is a per-core power budget as a function of active core count; thermally-aware 2.5D organization raises it at every occupancy",
		"per-core budgets fall with occupancy; total safe power saturates near full occupancy")
	return t, nil
}
