package expt

import (
	"fmt"
	"math"

	"chiplet25d/internal/org"
)

// GreedyValidation reproduces the Sec. III-D validation: the multi-start
// greedy is compared against exhaustive placement search over a set of
// optimization instances (benchmark x threshold), reporting the agreement
// rate and the thermal-simulation savings (the paper reports 99% agreement
// and a ~400x reduction in thermal simulation time with 10 starts).
func GreedyValidation(o Options) (*Table, error) {
	benches, err := o.benchSet("canneal", "hpccg", "cholesky")
	if err != nil {
		return nil, err
	}
	thresholds := []float64{85, 95}
	if o.Scale == Reduced {
		thresholds = []float64{85}
	}
	t := &Table{
		Title: "Greedy vs exhaustive validation (Sec. III-D)",
		Columns: []string{"benchmark", "threshold_C", "agree", "greedy_sims", "exhaustive_sims",
			"sim_reduction_x"},
	}
	agree, total := 0, 0
	simG, simE := 0, 0
	for _, b := range benches {
		for _, th := range thresholds {
			cfg := o.orgConfig(b)
			cfg.ThresholdC = th
			g, err := org.NewSearcher(cfg)
			if err != nil {
				return nil, err
			}
			gr, err := g.Optimize()
			if err != nil {
				return nil, err
			}
			e, err := org.NewSearcher(cfg)
			if err != nil {
				return nil, err
			}
			ex, err := e.OptimizeExhaustive()
			if err != nil {
				return nil, err
			}
			same := gr.Feasible == ex.Feasible
			if same && gr.Feasible {
				same = gr.Best.Op == ex.Best.Op &&
					gr.Best.ActiveCores == ex.Best.ActiveCores &&
					gr.Best.N == ex.Best.N &&
					math.Abs(gr.Best.InterposerMM-ex.Best.InterposerMM) < 1e-9
			}
			total++
			if same {
				agree++
			}
			simG += g.ThermalSims()
			simE += e.ThermalSims()
			red := "-"
			if g.ThermalSims() > 0 {
				red = f1(float64(e.ThermalSims()) / float64(g.ThermalSims()))
			}
			t.AddRow(b.Name, f1(th), fmt.Sprintf("%v", same),
				fmt.Sprintf("%d", g.ThermalSims()), fmt.Sprintf("%d", e.ThermalSims()), red)
		}
	}
	if total > 0 {
		overall := "-"
		if simG > 0 {
			overall = f1(float64(simE) / float64(simG))
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"agreement %d/%d (%.0f%%); overall simulation reduction %sx",
			agree, total, 100*float64(agree)/float64(total), overall))
	}
	t.Notes = append(t.Notes,
		"paper: greedy with 10 starts matches exhaustive 99% of the time with ~400x less thermal simulation",
		"both searches share the memoization and surrogate, so the reduction here reflects evaluation counts, not wall-clock CPU-hours")
	return t, nil
}
