package expt

import (
	"fmt"

	"chiplet25d/internal/cost"
	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/thermal"
)

// Fig3a reproduces Fig. 3(a): manufacturing cost of 4- and 16-chiplet 2.5D
// systems across interposer sizes, normalized to the equivalent 18mm x 18mm
// single chip, for defect densities 0.20, 0.25 and 0.30 per cm².
func Fig3a(o Options) (*Table, error) {
	densities := []float64{0.20, 0.25, 0.30}
	step := 1.0
	if o.Scale == Reduced {
		step = 5.0
	}
	t := &Table{
		Title:   "Fig. 3(a): normalized 2.5D system cost vs interposer size",
		Columns: []string{"edge_mm"},
	}
	for _, d := range densities {
		for _, n := range []int{4, 16} {
			t.Columns = append(t.Columns, fmt.Sprintf("D0=%.2f_n=%d", d, n))
		}
	}
	for edge := 20.0; edge <= 50.0+1e-9; edge += step {
		row := []string{f1(edge)}
		for _, d := range densities {
			p := cost.DefaultParams()
			p.D0PerCM2 = d
			c2d := p.SingleChipCost(floorplan.ChipEdgeMM, floorplan.ChipEdgeMM)
			for _, n := range []int{4, 16} {
				row = append(row, f3(p.Cost25DForInterposer(n, edge)/c2d))
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: minimal-interposer cost saving 30-42% depending on defect density; cost rises with interposer size",
		"defect density interpreted as per-cm² (see DESIGN.md unit note)")
	return t, nil
}

// Fig3b reproduces Fig. 3(b): peak temperature of r x r-chiplet 2.5D
// systems versus interposer size for synthetic chiplet power densities,
// with chiplets placed in a uniform matrix. The paper sweeps r = 2..10 and
// densities 0.5 to 2.0 W/mm².
func Fig3b(o Options) (*Table, error) {
	rs := []int{2, 3, 4, 5, 6, 7, 8, 9, 10}
	densities := []float64{0.5, 1.0, 1.5, 2.0}
	step := 2.0
	if o.Scale == Reduced {
		rs = []int{2, 4, 8}
		densities = []float64{1.0, 2.0}
		step = 6.0
	}
	tc := o.thermalConfig()
	t := &Table{
		Title:   "Fig. 3(b): peak temperature (°C) vs interposer size (uniform matrix placement)",
		Columns: []string{"density_W/mm2", "grid", "edge_mm", "peak_C"},
	}
	for _, d := range densities {
		totalW := d * floorplan.ChipEdgeMM * floorplan.ChipEdgeMM // constant silicon area
		for _, r := range rs {
			for edge := 20.0; edge <= floorplan.MaxInterposerEdgeMM+1e-9; edge += step {
				pl, err := floorplan.UniformGridForInterposer(r, edge)
				if err != nil {
					continue // chiplets do not fit this edge
				}
				if pl.Validate() != nil {
					continue
				}
				peak, err := uniformChipletPeak(pl, tc, totalW)
				if err != nil {
					return nil, err
				}
				t.AddRow(f1(d), fmt.Sprintf("%dx%d", r, r), f1(edge), f1(peak))
			}
		}
	}
	t.Notes = append(t.Notes,
		"paper trends: peak temperature rises with power density, falls with interposer size, falls with chiplet count",
		"synthetic densities; no leakage feedback (matches the paper's synthetic sweep)")
	return t, nil
}

// uniformChipletPeak solves the steady state for a placement whose chiplets
// dissipate totalW spread uniformly over their silicon.
func uniformChipletPeak(pl floorplan.Placement, tc thermal.Config, totalW float64) (float64, error) {
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		return 0, err
	}
	m, err := thermal.NewModel(stack, tc)
	if err != nil {
		return 0, err
	}
	pmap := make([]float64, m.Grid().NumCells())
	area := 0.0
	for _, c := range pl.Chiplets {
		area += c.Area()
	}
	for _, c := range pl.Chiplets {
		m.Grid().RasterizeAdd(pmap, c, totalW*c.Area()/area)
	}
	res, err := m.Solve(pmap)
	if err != nil {
		return 0, err
	}
	return res.PeakC(), nil
}
