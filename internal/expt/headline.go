package expt

import (
	"fmt"
	"sort"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/org"
	"chiplet25d/internal/power"
)

// Headline reproduces the Sec. V-B headline: per-benchmark and average
// performance improvement of the thermally-aware 2.5D organization over the
// single-chip baseline at the same manufacturing cost (MaxNormCost = 1)
// under the given temperature threshold.
func Headline(o Options, thresholdC float64) (*Table, error) {
	benches, err := o.benchSet("cholesky", "canneal", "swaptions")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Headline: iso-cost performance improvement at %.0f °C", thresholdC),
		Columns: []string{"benchmark", "base_f_MHz", "base_p", "base_ips", "f_MHz", "p", "n",
			"edge_mm", "gain_%", "norm_cost", "peak_C", "thermal_sims"},
	}
	eng, err := o.sharedEngine(benches[0])
	if err != nil {
		return nil, err
	}
	rows := make([][]string, len(benches))
	gains := make([]float64, len(benches))
	err = o.parallelUnits(len(benches), func(i int) error {
		b := benches[i]
		cfg := o.orgConfig(b)
		cfg.ThresholdC = thresholdC
		cfg.MaxNormCost = 1.0
		s, err := org.NewSearcherWithEngine(cfg, eng)
		if err != nil {
			return err
		}
		res, err := s.Optimize()
		if err != nil {
			return err
		}
		gain := 0.0
		if res.Feasible {
			gain = (res.Best.NormPerf - 1) * 100
			if gain < 0 {
				gain = 0 // the baseline remains available at equal cost
			}
		}
		gains[i] = gain
		if res.Feasible {
			rows[i] = []string{b.Name, f1(res.Baseline.Op.FreqMHz), fmt.Sprintf("%d", res.Baseline.ActiveCores),
				f1(res.Baseline.BestIPS), f1(res.Best.Op.FreqMHz), fmt.Sprintf("%d", res.Best.ActiveCores),
				fmt.Sprintf("%d", res.Best.N), f1(res.Best.InterposerMM), f1(gain),
				f3(res.Best.NormCost), f1(res.Best.PeakC), fmt.Sprintf("%d", res.ThermalSims)}
		} else {
			rows[i] = []string{b.Name, f1(res.Baseline.Op.FreqMHz), fmt.Sprintf("%d", res.Baseline.ActiveCores),
				f1(res.Baseline.BestIPS), "-", "-", "-", "-", "0.0", "-", "-",
				fmt.Sprintf("%d", res.ThermalSims)}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	sum, maxGain := 0.0, 0.0
	for _, g := range gains {
		sum += g
		if g > maxGain {
			maxGain = g
		}
	}
	if len(benches) > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("average gain %.1f%%, max gain %.1f%% over %d benchmarks",
			sum/float64(len(benches)), maxGain, len(benches)))
	}
	t.Notes = append(t.Notes,
		"paper: +41% average / +87% max at 85 °C; +16% average / +39% max at 105 °C, at the same manufacturing cost")
	return t, nil
}

// Sensitivity reproduces the Sec. V-B threshold sensitivity study: average
// iso-cost improvement across benchmarks for thresholds 75-105 °C.
func Sensitivity(o Options) (*Table, error) {
	thresholds := []float64{75, 85, 95, 105}
	if o.Scale == Reduced {
		thresholds = []float64{85, 105}
	}
	t := &Table{
		Title:   "Sensitivity: average iso-cost improvement vs temperature threshold",
		Columns: []string{"threshold_C", "avg_gain_%", "max_gain_%", "benchmarks"},
	}
	for _, th := range thresholds {
		ht, err := Headline(o, th)
		if err != nil {
			return nil, err
		}
		// Recompute the aggregate from the headline rows.
		sum, max, n := 0.0, 0.0, 0
		for _, row := range ht.Rows {
			var g float64
			if _, err := fmt.Sscanf(row[8], "%f", &g); err != nil {
				continue
			}
			sum += g
			if g > max {
				max = g
			}
			n++
		}
		if n == 0 {
			continue
		}
		t.AddRow(f1(th), f1(sum/float64(n)), f1(max), fmt.Sprintf("%d", n))
	}
	t.Notes = append(t.Notes,
		"paper: 41%, 41%, 27%, 16% average improvement at 75, 85, 95, 105 °C")
	return t, nil
}

// CostReduction reproduces the iso-performance cost headline: the cheapest
// 2.5D organization matching the baseline's best performance (β-only
// objective), expected to save ≈36% at every threshold.
func CostReduction(o Options, thresholdC float64) (*Table, error) {
	benches, err := o.benchSet("cholesky", "canneal", "swaptions")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Iso-performance cost reduction at %.0f °C", thresholdC),
		Columns: []string{"benchmark", "n", "edge_mm", "norm_cost", "saving_%", "norm_perf"},
	}
	for _, b := range benches {
		cfg := o.orgConfig(b)
		cfg.ThresholdC = thresholdC
		s, err := org.NewSearcher(cfg)
		if err != nil {
			return nil, err
		}
		best, found, err := cheapestIsoPerf(s)
		if err != nil {
			return nil, err
		}
		if !found {
			t.AddRow(b.Name, "-", "-", "-", "-", "-")
			continue
		}
		t.AddRow(b.Name, fmt.Sprintf("%d", best.N), f1(best.InterposerMM),
			f3(best.NormCost), f1((1-best.NormCost)*100), f2(best.NormPerf))
	}
	t.Notes = append(t.Notes,
		"paper: 36% lower manufacturing cost without performance loss at all thresholds")
	return t, nil
}

// cheapestIsoPerf finds the cheapest 2.5D organization whose performance
// matches or beats the single-chip baseline's best: candidates (n, edge)
// are visited in ascending cost; for each, the (f, p) pairs that reach the
// baseline IPS are tried best-first with the greedy placement search.
func cheapestIsoPerf(s *org.Searcher) (org.Organization, bool, error) {
	base, err := s.Baseline()
	if err != nil {
		return org.Organization{}, false, err
	}
	if !base.Feasible {
		return org.Organization{}, false, nil
	}
	cfg := s.Config()
	type bucket struct {
		n    int
		edge float64
		cost float64
	}
	var buckets []bucket
	for _, n := range cfg.ChipletCounts {
		for edge := cfg.InterposerMinMM; edge <= cfg.InterposerMaxMM+1e-9; edge += cfg.InterposerStepMM {
			if floorplan.SpacingSpan(n, edge) < -1e-9 {
				continue
			}
			buckets = append(buckets, bucket{n: n, edge: edge,
				cost: cfg.CostParams.Cost25DForInterposer(n, edge)})
		}
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].cost < buckets[j].cost })
	type fp struct {
		op  power.DVFSPoint
		p   int
		ips float64
	}
	var fps []fp
	for _, op := range power.FrequencySet {
		for _, p := range power.ActiveCoreCounts {
			if ips := cfg.Benchmark.IPS(op, p); ips >= base.BestIPS-1e-9 {
				fps = append(fps, fp{op: op, p: p, ips: ips})
			}
		}
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i].ips < fps[j].ips })
	for _, bk := range buckets {
		for _, c := range fps {
			pl, peak, found, err := s.FindPlacement(bk.n, bk.edge, c.op, c.p)
			if err != nil {
				return org.Organization{}, false, err
			}
			if !found {
				continue
			}
			return org.Organization{
				N: bk.n, S1: pl.S1, S2: pl.S2, S3: pl.S3,
				InterposerMM: pl.W, Op: c.op, ActiveCores: c.p,
				PeakC: peak, IPS: c.ips, CostUSD: bk.cost,
				NormPerf: c.ips / base.BestIPS, NormCost: bk.cost / base.CostUSD,
				Placement: pl,
			}, true, nil
		}
	}
	return org.Organization{}, false, nil
}
