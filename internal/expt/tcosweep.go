package expt

import (
	"fmt"

	"chiplet25d/internal/cost"
)

// TCOSweep elaborates the fleet-design space of the TCO objective: for each
// tech node, a representative 256-core lane (220 W / 180 GIPS at the base
// node) is organized into every square chiplet count and packed into
// servers; the table reports the heatsink capacity, per-lane cost, packing,
// and the $/GIPS-year objective. The elaboration is pure arithmetic —
// bit-deterministic at any scale — so the reduced output is pinned to a
// byte-exact golden. The curve is the paper's dark-silicon argument in
// datacenter units: splitting a lane into more chiplets raises the heatsink
// capacity (more spread area) and die yield, until interposer and bonding
// overheads win — the optimum sits at an interior chiplet count.
func TCOSweep(o Options) (*Table, error) {
	nodes := []string{"45nm", "28nm", "16nm", "7nm"}
	counts := []int{1, 4, 9, 16, 25, 36, 64}
	if o.Scale == Reduced {
		nodes = []string{"45nm", "7nm"}
		counts = []int{1, 4, 16, 64}
	}
	p := cost.DefaultParams()
	tp := cost.DefaultTCOParams()
	lane := cost.LaneDesign{LanePowerW: 220, LaneGIPS: 180}
	t := &Table{
		Title: "TCO sweep: $/GIPS-year vs chiplet organization across tech nodes",
		Columns: []string{"node", "chiplets", "lane_w", "max_lane_w", "silicon_usd",
			"heatsink_usd", "lanes", "server_usd", "tco_per_gips_year", "status"},
	}
	for _, node := range nodes {
		ntp := tp
		ntp.Node = node
		elabs, err := ntp.SweepChiplets(p, lane, counts)
		if err != nil {
			return nil, err
		}
		best := -1
		for i, e := range elabs {
			if e.Feasible && (best < 0 || e.TCOPerGIPSYear < elabs[best].TCOPerGIPSYear) {
				best = i
			}
		}
		for i, e := range elabs {
			status := e.Reason
			if i == best {
				status = "min"
			}
			tcoStr := "-"
			if e.Feasible {
				tcoStr = fmt.Sprintf("%.5f", e.TCOPerGIPSYear)
			}
			t.AddRow(e.Node, fmt.Sprintf("%d", e.Chiplets), f1(e.LanePowerW),
				f1(e.MaxLanePowerW), f2(e.SiliconUSD), f2(e.HeatsinkUSD),
				fmt.Sprintf("%d", e.LanesPerServer), f2(e.ServerUSD), tcoStr, status)
		}
	}
	t.Notes = append(t.Notes,
		"lane workload fixed at 220 W / 180 GIPS (base node); newer nodes rescale power by their PowerScale",
		"status 'min' marks each node's $/GIPS-year optimum; heatsink capacity grows with chiplet count (reclaimed dark silicon), die cost falls with yield, interposer+bonding overheads eventually dominate")
	return t, nil
}
