package expt

import (
	"context"
	"fmt"
	"math"

	"chiplet25d/internal/org"
)

// FidelityBreakdown quantifies the multi-fidelity evaluation ladder: for
// each benchmark the optimization runs once at full fidelity (every
// surrogate off) and once with the spatial compact-model tier enabled, and
// the table reports how the spatial run's evaluations split across the
// three tiers (spatial prediction, scalar DVFS rescaling, full CG solve),
// the resulting reduction in full simulations (the spatial run's count
// includes its design-of-experiments calibration solves), the calibration's
// recorded worst-case error bound, and whether the two runs picked the same
// winner.
func FidelityBreakdown(o Options) (*Table, error) {
	benches, err := o.benchSet("cholesky", "streamcluster", "canneal")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Fidelity-tier breakdown: spatial surrogate vs full-fidelity search",
		Columns: []string{"benchmark", "full_sims", "spatial_sims", "sim_reduction_x",
			"spatial_hits", "scalar_hits", "spatial_share", "cal_bound_C", "same_winner", "same_objective"},
	}
	for _, b := range benches {
		base := o.orgConfig(b)
		full := base
		full.SpatialSurrogate = false
		full.SurrogateMarginC = -1
		spatial := base
		spatial.SpatialSurrogate = true

		fs, err := org.NewSearcher(full)
		if err != nil {
			return nil, err
		}
		fr, err := fs.Optimize()
		if err != nil {
			return nil, err
		}
		ss, err := org.NewSearcher(spatial)
		if err != nil {
			return nil, err
		}
		sr, err := ss.Optimize()
		if err != nil {
			return nil, err
		}

		same := fr.Feasible == sr.Feasible
		if same && fr.Feasible {
			same = fr.Best.Op == sr.Best.Op &&
				fr.Best.ActiveCores == sr.Best.ActiveCores &&
				fr.Best.N == sr.Best.N &&
				math.Abs(fr.Best.InterposerMM-sr.Best.InterposerMM) < 1e-9
		}
		sameObj := fr.Feasible == sr.Feasible &&
			(!fr.Feasible || fr.Best.ObjValue == sr.Best.ObjValue)
		evals := sr.ThermalSims + sr.SurrogateHits
		share := "-"
		if evals > 0 {
			share = f2(float64(sr.SpatialSurrogateHits) / float64(evals))
		}
		red := "-"
		if sr.ThermalSims > 0 {
			red = f1(float64(fr.ThermalSims) / float64(sr.ThermalSims))
		}
		bound := 0.0
		for _, n := range base.ChipletCounts {
			cal, err := ss.Engine().SpatialCalibration(context.Background(), b, n)
			if err != nil {
				return nil, err
			}
			if cal.WorstCaseErrC > bound {
				bound = cal.WorstCaseErrC
			}
		}
		t.AddRow(b.Name, fmt.Sprintf("%d", fr.ThermalSims), fmt.Sprintf("%d", sr.ThermalSims),
			red, fmt.Sprintf("%d", sr.SpatialSurrogateHits), fmt.Sprintf("%d", sr.ScalarSurrogateHits),
			share, f2(bound), fmt.Sprintf("%v", same), fmt.Sprintf("%v", sameObj))
	}
	t.Notes = append(t.Notes,
		"same_winner compares the exact geometry; same_objective compares the Eq. (5) value — with α=1 β=0 many geometries tie on the objective, and surrogate-steered greedy walks may pick a different member of the tie",
		"spatial_sims includes the design-of-experiments calibration solves (30 per engine fingerprint), amortized across every later search on the same physics",
		"cal_bound_C is the worst recorded class bound: safety-factored end-to-end peak error over the DoE replay; escalation never trusts the model closer to the threshold than this",
		"the scalar tier is consulted only where the spatial prediction lands inside its bound of the threshold, so spatial_share is the fraction of evaluations that never touched a CG solve")
	return t, nil
}
