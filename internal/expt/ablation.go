package expt

import (
	"fmt"
	"time"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/noc"
	"chiplet25d/internal/org"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
	"chiplet25d/internal/thermal"
)

// AblationStarts studies the greedy's start count m: agreement with the
// exhaustive optimum and thermal simulations used, for m in {1, 5, 10, 20}
// (the paper notes an accuracy/speed tradeoff and settles on 10).
func AblationStarts(o Options) (*Table, error) {
	benches, err := o.benchSet("cholesky")
	if err != nil {
		return nil, err
	}
	starts := []int{1, 5, 10, 20}
	t := &Table{
		Title:   "Ablation: greedy start count m",
		Columns: []string{"benchmark", "m", "matches_exhaustive", "thermal_sims"},
	}
	for _, b := range benches {
		refCfg := o.orgConfig(b)
		e, err := org.NewSearcher(refCfg)
		if err != nil {
			return nil, err
		}
		ex, err := e.OptimizeExhaustive()
		if err != nil {
			return nil, err
		}
		for _, m := range starts {
			cfg := o.orgConfig(b)
			cfg.Starts = m
			s, err := org.NewSearcher(cfg)
			if err != nil {
				return nil, err
			}
			res, err := s.Optimize()
			if err != nil {
				return nil, err
			}
			same := res.Feasible == ex.Feasible &&
				(!res.Feasible || (res.Best.Op == ex.Best.Op &&
					res.Best.ActiveCores == ex.Best.ActiveCores &&
					res.Best.N == ex.Best.N))
			t.AddRow(b.Name, fmt.Sprintf("%d", m), fmt.Sprintf("%v", same),
				fmt.Sprintf("%d", s.ThermalSims()))
		}
	}
	t.Notes = append(t.Notes, "paper: 10 starts balance accuracy and speed")
	return t, nil
}

// AblationSearch compares the placement search strategies — the paper's
// multi-start greedy, simulated annealing, and exhaustive scanning — on the
// same optimization instance: do they pick the same organization, and at
// what thermal-simulation cost?
func AblationSearch(o Options) (*Table, error) {
	benches, err := o.benchSet("cholesky", "canneal")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation: placement search strategy (greedy vs annealing vs exhaustive)",
		Columns: []string{"benchmark", "strategy", "matches_exhaustive", "thermal_sims"},
	}
	for _, b := range benches {
		cfg := o.orgConfig(b)
		e, err := org.NewSearcher(cfg)
		if err != nil {
			return nil, err
		}
		ex, err := e.OptimizeExhaustive()
		if err != nil {
			return nil, err
		}
		same := func(r org.Result) bool {
			if r.Feasible != ex.Feasible {
				return false
			}
			if !r.Feasible {
				return true
			}
			return r.Best.Op == ex.Best.Op && r.Best.ActiveCores == ex.Best.ActiveCores &&
				r.Best.N == ex.Best.N
		}
		t.AddRow(b.Name, "exhaustive", "true", fmt.Sprintf("%d", e.ThermalSims()))
		g, err := org.NewSearcher(cfg)
		if err != nil {
			return nil, err
		}
		gr, err := g.Optimize()
		if err != nil {
			return nil, err
		}
		t.AddRow(b.Name, "greedy", fmt.Sprintf("%v", same(gr)), fmt.Sprintf("%d", g.ThermalSims()))
		a, err := org.NewSearcher(cfg)
		if err != nil {
			return nil, err
		}
		an, err := a.OptimizeAnnealing(org.DefaultAnnealParams())
		if err != nil {
			return nil, err
		}
		t.AddRow(b.Name, "annealing", fmt.Sprintf("%v", same(an)), fmt.Sprintf("%d", a.ThermalSims()))
	}
	t.Notes = append(t.Notes,
		"the paper uses the multi-start greedy; annealing is an alternative with a comparable budget — both need far fewer simulations than exhaustive search")
	return t, nil
}

// AblationCooling studies how cooling quality changes the 2.5D benefit:
// with a stronger heat sink (higher effective heat transfer coefficient)
// the single chip is less throttled and spacing buys less; with weaker
// cooling the reclaimable gap widens. This bounds the paper's conclusion
// against the cooling assumption.
func AblationCooling(o Options) (*Table, error) {
	benches, err := o.benchSet("cholesky")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation: iso-cost gain vs cooling quality (heat transfer coefficient)",
		Columns: []string{"benchmark", "h_W_m2K", "base_f_MHz", "base_p", "gain_%"},
	}
	for _, b := range benches {
		for _, h := range []float64{2000, 2800, 4000} {
			cfg := o.orgConfig(b)
			cfg.Thermal.HeatTransferCoeff = h
			cfg.MaxNormCost = 1
			s, err := org.NewSearcher(cfg)
			if err != nil {
				return nil, err
			}
			res, err := s.Optimize()
			if err != nil {
				return nil, err
			}
			gain := 0.0
			if res.Feasible && res.Best.NormPerf > 1 {
				gain = (res.Best.NormPerf - 1) * 100
			}
			t.AddRow(b.Name, fmt.Sprintf("%.0f", h),
				f1(res.Baseline.Op.FreqMHz), fmt.Sprintf("%d", res.Baseline.ActiveCores), f1(gain))
		}
	}
	t.Notes = append(t.Notes,
		"weaker cooling throttles the single chip harder (note the baseline column); because f and p are discrete, the headline gain is robust across a wide cooling-quality band — the paper's default is h = 2800 W/(m²·K)")
	return t, nil
}

// AblationNeighborPolicy compares the paper's random-neighbor greedy walk
// (footnote 2) against steepest descent: agreement with the exhaustive
// optimum and thermal simulations used.
func AblationNeighborPolicy(o Options) (*Table, error) {
	benches, err := o.benchSet("cholesky")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation: greedy neighbor policy (random, per the paper, vs steepest descent)",
		Columns: []string{"benchmark", "policy", "matches_exhaustive", "thermal_sims"},
	}
	for _, b := range benches {
		cfg := o.orgConfig(b)
		e, err := org.NewSearcher(cfg)
		if err != nil {
			return nil, err
		}
		ex, err := e.OptimizeExhaustive()
		if err != nil {
			return nil, err
		}
		for _, pol := range []org.NeighborPolicy{org.RandomNeighbor, org.SteepestDescent} {
			c := cfg
			c.NeighborPolicy = pol
			s, err := org.NewSearcher(c)
			if err != nil {
				return nil, err
			}
			res, err := s.Optimize()
			if err != nil {
				return nil, err
			}
			same := res.Feasible == ex.Feasible &&
				(!res.Feasible || (res.Best.Op == ex.Best.Op &&
					res.Best.ActiveCores == ex.Best.ActiveCores && res.Best.N == ex.Best.N))
			t.AddRow(b.Name, pol.String(), fmt.Sprintf("%v", same), fmt.Sprintf("%d", s.ThermalSims()))
		}
	}
	t.Notes = append(t.Notes,
		"the paper picks a random neighbor to avoid fixed-order bias (footnote 2); steepest descent evaluates all six neighbors per step")
	return t, nil
}

// AblationGrid studies thermal grid resolution: peak temperature and solve
// time for the single chip and a 16-chiplet organization at 32², 64² and
// (Full scale) 128² grids.
func AblationGrid(o Options) (*Table, error) {
	b, err := perf.ByName("cholesky")
	if err != nil {
		return nil, err
	}
	grids := []int{32, 64}
	if o.Scale == Full {
		grids = append(grids, 128)
	}
	pl16, err := floorplan.UniformGrid(4, 6)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation: thermal grid resolution",
		Columns: []string{"placement", "grid", "peak_C", "solve_ms"},
	}
	for _, pl := range []floorplan.Placement{floorplan.SingleChip(), pl16} {
		name := "single-chip"
		if !pl.Is2D() {
			name = "16-chiplet@6mm"
		}
		for _, g := range grids {
			tc := thermal.DefaultConfig()
			tc.Nx, tc.Ny = g, g
			start := time.Now()
			peak, _, err := benchmarkPeak(pl, tc, b, power.NominalPoint, 256)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, fmt.Sprintf("%dx%d", g, g), f1(peak),
				fmt.Sprintf("%d", time.Since(start).Milliseconds()))
		}
	}
	t.Notes = append(t.Notes, "the paper uses a 64x64 grid; discretization error should be small versus the 85 °C margin")
	return t, nil
}

// AblationLeakage quantifies the temperature-dependent leakage loop: peak
// temperature with and without thermal-leakage feedback.
func AblationLeakage(o Options) (*Table, error) {
	benches, err := o.benchSet("shock", "canneal")
	if err != nil {
		return nil, err
	}
	tc := o.thermalConfig()
	t := &Table{
		Title:   "Ablation: temperature-dependent leakage feedback",
		Columns: []string{"benchmark", "peak_with_feedback_C", "peak_frozen_leakage_C", "delta_C"},
	}
	for _, b := range benches {
		pl := floorplan.SingleChip()
		stack, err := floorplan.BuildStack(pl)
		if err != nil {
			return nil, err
		}
		model, err := thermal.NewModel(stack, tc)
		if err != nil {
			return nil, err
		}
		cores, err := pl.Cores()
		if err != nil {
			return nil, err
		}
		active, err := power.MintempActive(256)
		if err != nil {
			return nil, err
		}
		mesh, err := noc.MeshPower(pl, power.NominalPoint, 256, b.Traffic,
			noc.DefaultLinkParams(), noc.DefaultRouterParams())
		if err != nil {
			return nil, err
		}
		w := power.Workload{RefCoreW: b.RefCoreW, Op: power.NominalPoint,
			Active: active, NoCW: mesh.TotalW(), Leakage: power.DefaultLeakage()}
		withFB, err := power.Simulate(model, cores, w, power.DefaultSimOptions())
		if err != nil {
			return nil, err
		}
		opts := power.DefaultSimOptions()
		opts.DisableLeakageFeedback = true
		noFB, err := power.Simulate(model, cores, w, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(b.Name, f1(withFB.PeakC), f1(noFB.PeakC), f1(withFB.PeakC-noFB.PeakC))
	}
	t.Notes = append(t.Notes, "ignoring leakage-temperature feedback understates hot-chip peaks by several °C")
	return t, nil
}

// AblationAllocation compares MinTemp against naive row-major allocation.
func AblationAllocation(o Options) (*Table, error) {
	b, err := perf.ByName("cholesky")
	if err != nil {
		return nil, err
	}
	tc := o.thermalConfig()
	t := &Table{
		Title:   "Ablation: MinTemp vs row-major workload allocation (single chip, 1 GHz)",
		Columns: []string{"active_cores", "mintemp_peak_C", "rowmajor_peak_C", "delta_C"},
	}
	pl := floorplan.SingleChip()
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		return nil, err
	}
	model, err := thermal.NewModel(stack, tc)
	if err != nil {
		return nil, err
	}
	cores, err := pl.Cores()
	if err != nil {
		return nil, err
	}
	counts := []int{64, 128, 192}
	for _, p := range counts {
		mt, err := power.MintempActive(p)
		if err != nil {
			return nil, err
		}
		rm, err := power.RowMajorActive(p)
		if err != nil {
			return nil, err
		}
		var peaks [2]float64
		for i, mask := range [][]bool{mt, rm} {
			w := power.Workload{RefCoreW: b.RefCoreW, Op: power.NominalPoint,
				Active: mask, NoCW: 3.9, Leakage: power.DefaultLeakage()}
			res, err := power.Simulate(model, cores, w, power.DefaultSimOptions())
			if err != nil {
				return nil, err
			}
			peaks[i] = res.PeakC
		}
		t.AddRow(fmt.Sprintf("%d", p), f1(peaks[0]), f1(peaks[1]), f1(peaks[1]-peaks[0]))
	}
	t.Notes = append(t.Notes, "MinTemp's outer-ring chessboard spreading lowers the peak at partial occupancy")
	return t, nil
}

// AblationAllocation25D compares the chip-global MinTemp policy against the
// chiplet-balanced extension on a spread 16-chiplet organization: at
// partial occupancy the global policy clusters active cores on the outer
// chiplets, while balancing across chiplets spreads the heat further.
func AblationAllocation25D(o Options) (*Table, error) {
	b, err := perf.ByName("cholesky")
	if err != nil {
		return nil, err
	}
	pl, err := floorplan.UniformGrid(4, 6)
	if err != nil {
		return nil, err
	}
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		return nil, err
	}
	model, err := thermal.NewModel(stack, o.thermalConfig())
	if err != nil {
		return nil, err
	}
	cores, err := pl.Cores()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation: MinTemp vs chiplet-balanced allocation (16 chiplets @ 6 mm, 1 GHz)",
		Columns: []string{"active_cores", "mintemp_peak_C", "balanced_peak_C", "delta_C"},
	}
	for _, p := range []int{64, 128, 192} {
		mt, err := power.MintempActive(p)
		if err != nil {
			return nil, err
		}
		cb, err := power.ChipletBalancedActive(pl, p)
		if err != nil {
			return nil, err
		}
		var peaks [2]float64
		for i, mask := range [][]bool{mt, cb} {
			w := power.Workload{RefCoreW: b.RefCoreW, Op: power.NominalPoint,
				Active: mask, NoCW: 8, Leakage: power.DefaultLeakage()}
			res, err := power.Simulate(model, cores, w, power.DefaultSimOptions())
			if err != nil {
				return nil, err
			}
			peaks[i] = res.PeakC
		}
		t.AddRow(fmt.Sprintf("%d", p), f1(peaks[0]), f1(peaks[1]), f1(peaks[0]-peaks[1]))
	}
	t.Notes = append(t.Notes,
		"positive delta: balancing active cores across chiplets runs cooler than the paper's chip-global MinTemp on spread organizations")
	return t, nil
}

// AblationNonUniform compares the best non-uniform (s1, s2, s3) placement
// against the uniform matrix at equal interposer size: the extra placement
// freedom the paper's formulation introduces.
func AblationNonUniform(o Options) (*Table, error) {
	b, err := perf.ByName("shock")
	if err != nil {
		return nil, err
	}
	cfg := o.orgConfig(b)
	tc := o.thermalConfig()
	edges := []float64{32, 40, 48}
	t := &Table{
		Title:   "Ablation: non-uniform (s1,s2,s3) vs uniform spacing at equal interposer size (shock, 1 GHz, 256 cores)",
		Columns: []string{"edge_mm", "uniform_peak_C", "best_nonuniform_peak_C", "delta_C"},
	}
	for _, edge := range edges {
		uni, err := floorplan.UniformGridForInterposer(4, edge)
		if err != nil {
			return nil, err
		}
		uniPeak, _, err := benchmarkPeak(uni, tc, b, power.NominalPoint, 256)
		if err != nil {
			return nil, err
		}
		// Exhaustive best placement at this edge (threshold set high so the
		// scan reports the coolest point rather than stopping early).
		relaxed := cfg
		relaxed.ThresholdC = 1000
		rs, err := org.NewSearcher(relaxed)
		if err != nil {
			return nil, err
		}
		_, bestPeak, found, err := rs.FindPlacementExhaustive(16, edge, power.NominalPoint, 256)
		if err != nil {
			return nil, err
		}
		if !found {
			continue
		}
		t.AddRow(f1(edge), f1(uniPeak), f1(bestPeak), f1(uniPeak-bestPeak))
	}
	t.Notes = append(t.Notes, "independently varied spacings find cooler placements than the uniform matrix at the same cost")
	return t, nil
}
