package expt

import (
	"reflect"
	"testing"
)

// TestFigureSweepsParallelMatchSerial pins the wall-clock-only contract of
// Options.Workers: the figure sweeps produce byte-identical tables at any
// worker count, because units write ordered slots and every evaluation value
// is pure (org's determinism contract).
func TestFigureSweepsParallelMatchSerial(t *testing.T) {
	serial := fastOptions()
	serial.Benchmarks = []string{"canneal", "hpccg"}
	parallel := serial
	parallel.Workers = 4

	figures := []struct {
		name string
		run  func(Options) (*Table, error)
	}{
		{"fig7", Fig7}, // three weight units over one benchmark: shared engine keys overlap
		{"fig8", Fig8},
		{"headline85", func(o Options) (*Table, error) { return Headline(o, 85) }},
	}
	for _, fig := range figures {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			t.Parallel()
			ts, err := fig.run(serial)
			if err != nil {
				t.Fatalf("serial %s: %v", fig.name, err)
			}
			tp, err := fig.run(parallel)
			if err != nil {
				t.Fatalf("parallel %s: %v", fig.name, err)
			}
			if !reflect.DeepEqual(ts, tp) {
				t.Errorf("%s: parallel table differs from serial\nserial:   %+v\nparallel: %+v", fig.name, ts, tp)
			}
		})
	}
}
