package expt

import (
	"bytes"
	"os"
	"testing"
)

// goldens maps each golden file to the experiment run that produces it.
// Only fully deterministic (pure-arithmetic) experiments belong here.
var goldens = map[string]func(Options) (*Table, error){
	"testdata/fig3a_reduced.golden.csv":    Fig3a,
	"testdata/tcosweep_reduced.golden.csv": TCOSweep,
}

// TestGenerateGoldens regenerates the golden files when run with
// -run TestGenerateGoldens and the UPDATE_GOLDENS environment variable set.
func TestGenerateGoldens(t *testing.T) {
	if os.Getenv("UPDATE_GOLDENS") == "" {
		t.Skip("set UPDATE_GOLDENS=1 to regenerate")
	}
	for path, run := range goldens {
		tb, err := run(Options{Scale: Reduced, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.WriteCSV(f); err != nil {
			f.Close()
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// checkGolden compares the experiment's reduced-scale output byte-for-byte
// against its pinned golden file.
func checkGolden(t *testing.T, path string, run func(Options) (*Table, error)) {
	t.Helper()
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := run(Options{Scale: Reduced, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := tb.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if got.String() != string(want) {
		t.Fatalf("output drifted from %s (rerun with UPDATE_GOLDENS=1 if intentional):\n--- got ---\n%s\n--- want ---\n%s",
			path, got.String(), want)
	}
}

// The cost model is fully deterministic, so its reduced-scale figure output
// is pinned to a golden file: any change to Eqs. (1)-(4), Table II
// constants, or the normalization shows up as a diff.
func TestFig3aGolden(t *testing.T) {
	checkGolden(t, "testdata/fig3a_reduced.golden.csv", Fig3a)
}

// The TCO elaboration is pure arithmetic on top of the cost model, so the
// tech-node sweep is pinned the same way: any change to the yield curves,
// node scale factors, heatsink model, or server packing shows up as a diff.
func TestTCOSweepGolden(t *testing.T) {
	checkGolden(t, "testdata/tcosweep_reduced.golden.csv", TCOSweep)
}
