package expt

import (
	"bytes"
	"os"
	"testing"
)

// TestGenerateGoldens regenerates the golden files when run with
// -run TestGenerateGoldens and the UPDATE_GOLDENS environment variable set.
func TestGenerateGoldens(t *testing.T) {
	if os.Getenv("UPDATE_GOLDENS") == "" {
		t.Skip("set UPDATE_GOLDENS=1 to regenerate")
	}
	tb, err := Fig3a(Options{Scale: Reduced, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create("testdata/fig3a_reduced.golden.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tb.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
}

// The cost model is fully deterministic, so its reduced-scale figure output
// is pinned to a golden file: any change to Eqs. (1)-(4), Table II
// constants, or the normalization shows up as a diff.
func TestFig3aGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/fig3a_reduced.golden.csv")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := Fig3a(Options{Scale: Reduced, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := tb.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	if got.String() != string(want) {
		t.Fatalf("fig3a output drifted from golden (rerun with UPDATE_GOLDENS=1 if intentional):\n--- got ---\n%s\n--- want ---\n%s",
			got.String(), want)
	}
}
