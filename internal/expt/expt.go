// Package expt defines the reproducible experiments behind every table and
// figure in the paper's evaluation (Figs. 3, 5, 6, 7, 8, the Sec. V-B
// headline and sensitivity numbers, and the Sec. III-D greedy-vs-exhaustive
// validation), plus ablation studies for the design choices DESIGN.md calls
// out. The same experiment definitions back the cmd/experiments binary and
// the root-level testing.B benchmarks; a Scale knob switches between the
// paper's full parameterization and a reduced version that completes in
// CI-friendly time.
package expt

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"chiplet25d/internal/org"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/thermal"
)

// Scale selects the experiment size.
type Scale int

const (
	// Reduced runs a coarsened version (fewer sweep points, coarser thermal
	// grid, benchmark subset) preserving every curve's shape.
	Reduced Scale = iota
	// Full runs the paper's parameterization.
	Full
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "reduced"
}

// Options configures an experiment run.
type Options struct {
	Scale Scale
	// ThermalGridN overrides the thermal grid (0 = scale default: 32
	// reduced, 64 full).
	ThermalGridN int
	// Benchmarks restricts the benchmark set (nil = scale default).
	Benchmarks []string
	// Seed for the stochastic greedy searches.
	Seed int64
	// Workers bounds concurrent per-benchmark units in the figure sweeps
	// (0/1 = serial). Purely a wall-clock knob: units write ordered result
	// slots and the evaluation engine's determinism contract keeps every
	// value bit-identical, so tables are the same at any worker count.
	Workers int
}

// DefaultOptions returns reduced-scale options.
func DefaultOptions() Options { return Options{Scale: Reduced, Seed: 1} }

func (o Options) gridN() int {
	if o.ThermalGridN > 0 {
		return o.ThermalGridN
	}
	if o.Scale == Full {
		return 64
	}
	return 32
}

func (o Options) thermalConfig() thermal.Config {
	tc := thermal.DefaultConfig()
	tc.Nx, tc.Ny = o.gridN(), o.gridN()
	return tc
}

// benchSet resolves the benchmark list for this run; defaults holds the
// reduced-scale subset.
func (o Options) benchSet(defaults ...string) ([]perf.Benchmark, error) {
	names := o.Benchmarks
	if names == nil {
		if o.Scale == Full {
			names = perf.Names()
		} else {
			names = defaults
		}
	}
	out := make([]perf.Benchmark, 0, len(names))
	for _, n := range names {
		b, err := perf.ByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// orgConfig builds the organization-search configuration for a benchmark.
func (o Options) orgConfig(b perf.Benchmark) org.Config {
	cfg := org.DefaultConfig(b)
	cfg.Thermal = o.thermalConfig()
	cfg.Seed = o.Seed
	if o.Workers > 1 && cfg.Thermal.KernelThreads == 0 {
		// Unit-level parallelism takes the worker budget; thermal kernels
		// run serial (the same hierarchy rule org.NewEngine applies for
		// restart-level parallelism).
		cfg.Thermal.KernelThreads = 1
	}
	if o.Scale == Reduced {
		cfg.InterposerStepMM = 2
		cfg.Starts = 5
	}
	return cfg
}

// sharedEngine builds one evaluation engine for this run's physics. The
// engine fingerprint is benchmark-independent, so every unit of a sweep —
// whatever its benchmark, threshold, or objective — shares the same memo
// and concurrent units dedupe overlapping simulations.
func (o Options) sharedEngine(b perf.Benchmark) (*org.Engine, error) {
	return org.NewEngine(o.orgConfig(b))
}

// parallelUnits runs unit(i) for i in [0, n), serially when o.Workers <= 1
// and on min(Workers, n) goroutines otherwise. Units must be independent and
// write only their own result slot; callers merge slots in index order, so
// output is identical at any worker count. The first error by unit index
// wins, matching what the serial loop would have returned.
func (o Options) parallelUnits(n int, unit func(i int) error) error {
	workers := o.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := unit(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = unit(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Table is a rendered experiment result: a header row plus data rows, with
// free-form notes (assumptions, paper-vs-measured commentary).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteText renders the table as aligned text.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteMarkdown renders the table as a GitHub-flavored markdown table with
// the notes as a trailing list.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | ")); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		// Multi-line notes (ASCII maps) go into fenced blocks.
		if strings.Contains(n, "\n") {
			if _, err := fmt.Fprintf(w, "\n```\n%s\n```\n", n); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "\n> %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV (simple fields; no quoting needed for
// the values these experiments produce).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(r, ",")); err != nil {
			return err
		}
	}
	return nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
