package expt

import (
	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/noc"
	"chiplet25d/internal/org"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
	"chiplet25d/internal/reliability"
	"chiplet25d/internal/thermal"
)

// Reliability quantifies the paper's lu.cont observation: at equal
// performance (and lower cost), the thermally-aware 2.5D organization runs
// cooler, which translates into longer transistor lifetime. For each
// benchmark the cheapest iso-performance organization is found, both
// systems are simulated at their operating points, and the Arrhenius
// lifetime ratio of the per-core temperature fields is reported.
func Reliability(o Options) (*Table, error) {
	benches, err := o.benchSet("lu.cont", "canneal", "cholesky")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Reliability: lifetime gain of iso-performance 2.5D organizations (Arrhenius, Ea=0.7 eV)",
		Columns: []string{"benchmark", "peak_2D_C", "peak_25D_C", "delta_C",
			"lifetime_ratio", "norm_cost"},
	}
	model := reliability.DefaultModel()
	for _, b := range benches {
		cfg := o.orgConfig(b)
		s, err := org.NewSearcher(cfg)
		if err != nil {
			return nil, err
		}
		base, err := s.Baseline()
		if err != nil {
			return nil, err
		}
		if !base.Feasible {
			t.AddRow(b.Name, "-", "-", "-", "-", "-")
			continue
		}
		best, found, err := cheapestIsoPerf(s)
		if err != nil {
			return nil, err
		}
		if !found {
			t.AddRow(b.Name, "-", "-", "-", "-", "-")
			continue
		}
		temps2D, err := coreTemps(floorplan.SingleChip(), o.thermalConfig(), b, base.Op, base.ActiveCores)
		if err != nil {
			return nil, err
		}
		temps25D, err := coreTemps(best.Placement, o.thermalConfig(), b, best.Op, best.ActiveCores)
		if err != nil {
			return nil, err
		}
		ratio, err := model.WeightedLifetimeRatio(temps25D.CoreTemps, temps2D.CoreTemps, 60)
		if err != nil {
			return nil, err
		}
		t.AddRow(b.Name, f1(temps2D.PeakC), f1(temps25D.PeakC),
			f1(temps2D.PeakC-temps25D.PeakC), f2(ratio), f3(best.NormCost))
	}
	t.Notes = append(t.Notes,
		"paper: \"our proposed thermally-aware chiplet organization can still provide lower operating temperature, which improves transistor lifetime and reliability\" (Sec. V-B, lu.cont)",
		"lifetime ratio uses per-core Arrhenius acceleration; both systems run their best iso-performance configuration")
	return t, nil
}

// coreTemps simulates a benchmark configuration and returns the converged
// result including per-core temperatures.
func coreTemps(pl floorplan.Placement, tc thermal.Config, b perf.Benchmark,
	op power.DVFSPoint, p int) (*power.SimResult, error) {
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		return nil, err
	}
	model, err := thermal.NewModel(stack, tc)
	if err != nil {
		return nil, err
	}
	cores, err := pl.Cores()
	if err != nil {
		return nil, err
	}
	active, err := power.MintempActive(p)
	if err != nil {
		return nil, err
	}
	mesh, err := noc.MeshPower(pl, op, p, b.Traffic, noc.DefaultLinkParams(), noc.DefaultRouterParams())
	if err != nil {
		return nil, err
	}
	w := power.Workload{RefCoreW: b.RefCoreW, Op: op, Active: active,
		NoCW: mesh.TotalW(), Leakage: power.DefaultLeakage()}
	return power.Simulate(model, cores, w, power.DefaultSimOptions())
}
