package expt

import (
	"fmt"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/org"
	"chiplet25d/internal/perf"
)

// Fig7 reproduces Fig. 7: the minimum objective function value (Eq. (5))
// across interposer sizes for three (α, β) choices — cost-only (0, 1),
// performance-only (1, 0), and balanced (0.5, 0.5).
func Fig7(o Options) (*Table, error) {
	benches, err := o.benchSet("canneal", "hpccg", "cholesky")
	if err != nil {
		return nil, err
	}
	weights := []org.Objective{
		{Alpha: 0, Beta: 1},
		{Alpha: 1, Beta: 0},
		{Alpha: 0.5, Beta: 0.5},
	}
	edgeStep := 2.0
	if o.Scale == Reduced {
		edgeStep = 5.0
	}
	t := &Table{
		Title:   "Fig. 7: minimum objective value vs interposer size for (α, β) choices (85 °C)",
		Columns: []string{"benchmark", "alpha", "beta", "edge_mm", "min_objective", "best_n", "best_f_MHz", "best_p"},
	}
	eng, err := o.sharedEngine(benches[0])
	if err != nil {
		return nil, err
	}
	// Units are (benchmark, weight) pairs: the three weight sweeps of one
	// benchmark revisit the same placements, so they dedupe through the
	// shared engine whichever unit gets there first.
	type unit struct {
		b perf.Benchmark
		w org.Objective
	}
	var units []unit
	for _, b := range benches {
		for _, w := range weights {
			units = append(units, unit{b: b, w: w})
		}
	}
	rowsets := make([][][]string, len(units))
	err = o.parallelUnits(len(units), func(i int) error {
		b, w := units[i].b, units[i].w
		s, err := org.NewSearcherWithEngine(o.orgConfig(b), eng)
		if err != nil {
			return err
		}
		for edge := 20.0; edge <= floorplan.MaxInterposerEdgeMM+1e-9; edge += edgeStep {
			obj, oBest, found, err := s.MinObjectiveAtEdgeWith(w, edge)
			if err != nil {
				return err
			}
			if !found {
				rowsets[i] = append(rowsets[i], []string{b.Name, f1(w.Alpha), f1(w.Beta), f1(edge), "infeasible", "-", "-", "-"})
				continue
			}
			rowsets[i] = append(rowsets[i], []string{b.Name, f1(w.Alpha), f1(w.Beta), f1(edge), f3(obj),
				fmt.Sprintf("%d", oBest.N), f1(oBest.Op.FreqMHz), fmt.Sprintf("%d", oBest.ActiveCores)})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range rowsets {
		t.Rows = append(t.Rows, rows...)
	}
	t.Notes = append(t.Notes,
		"(α,β)=(0,1) reproduces the normalized minimum-cost curve; (1,0) the inverse normalized max performance; the optimum is the curve's minimum",
		"paper example: cholesky's optimum sits near a 31 mm interposer at 1 GHz with 192 active cores")
	return t, nil
}
