package expt

import (
	"fmt"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/thermal"
)

// Stacking quantifies the paper's Sec. I motivation for choosing 2.5D over
// 3D integration: at equal total power and equal silicon, 3D die stacking
// concentrates heat (smaller footprint, buried dies far from the sink)
// while 2.5D spreading dilutes it. Peak temperatures for the monolithic
// chip, 3D stacks, and 2.5D organizations at the same total power.
func Stacking(o Options) (*Table, error) {
	powers := []float64{300, 450}
	if o.Scale == Reduced {
		powers = []float64{450}
	}
	tc := o.thermalConfig()
	t := &Table{
		Title:   "Stacking comparison: peak temperature at equal total power (uniform silicon power)",
		Columns: []string{"total_W", "organization", "footprint_mm", "peak_C"},
	}
	for _, totalW := range powers {
		// 2D monolithic baseline.
		stack2d, err := floorplan.BuildStack(floorplan.SingleChip())
		if err != nil {
			return nil, err
		}
		peak2d, err := uniformStackPeak(stack2d, tc, totalW)
		if err != nil {
			return nil, err
		}
		t.AddRow(f1(totalW), "2D single chip", "18.0x18.0", f1(peak2d))

		// 3D stacks: 2 and 4 levels.
		for _, levels := range floorplan.Stack3DLevels {
			stack3d, p3, err := floorplan.BuildStack3D(levels)
			if err != nil {
				return nil, err
			}
			m, err := thermal.NewModel(stack3d, tc)
			if err != nil {
				return nil, err
			}
			perLayer := make(map[int][]float64, levels)
			perDie := totalW / float64(levels)
			for _, l := range p3.CMOSLayers {
				pmap := make([]float64, m.Grid().NumCells())
				per := perDie / float64(len(pmap))
				for i := range pmap {
					pmap[i] = per
				}
				perLayer[l] = pmap
			}
			res, err := m.SolveMulti(perLayer)
			if err != nil {
				return nil, err
			}
			peak, err := res.PeakOverLayers(p3.CMOSLayers)
			if err != nil {
				return nil, err
			}
			t.AddRow(f1(totalW), fmt.Sprintf("3D %d-high", levels),
				fmt.Sprintf("%.1fx%.1f", p3.W, p3.H), f1(peak))
		}

		// 2.5D organizations.
		for _, spec := range []struct {
			r  int
			sp float64
		}{{2, 8}, {4, 8}} {
			pl, err := floorplan.UniformGrid(spec.r, spec.sp)
			if err != nil {
				return nil, err
			}
			stack, err := floorplan.BuildStack(pl)
			if err != nil {
				return nil, err
			}
			peak, err := uniformStackPeak(stack, tc, totalW)
			if err != nil {
				return nil, err
			}
			t.AddRow(f1(totalW), fmt.Sprintf("2.5D %d-chiplet@%gmm", spec.r*spec.r, spec.sp),
				fmt.Sprintf("%.1fx%.1f", pl.W, pl.H), f1(peak))
		}
	}
	t.Notes = append(t.Notes,
		"paper Sec. I: 3D stacking reduces footprint but exacerbates thermal issues; 2.5D is less prone to them",
		"buried dies sit far from the sink behind bond layers, so 3D peaks exceed even the monolithic chip")
	return t, nil
}

// uniformStackPeak solves a stack with totalW spread uniformly over its
// chiplet silicon.
func uniformStackPeak(stack floorplan.Stack, tc thermal.Config, totalW float64) (float64, error) {
	m, err := thermal.NewModel(stack, tc)
	if err != nil {
		return 0, err
	}
	pmap := make([]float64, m.Grid().NumCells())
	area := 0.0
	for _, c := range stack.Placement.Chiplets {
		area += c.Area()
	}
	for _, c := range stack.Placement.Chiplets {
		m.Grid().RasterizeAdd(pmap, c, totalW*c.Area()/area)
	}
	res, err := m.Solve(pmap)
	if err != nil {
		return 0, err
	}
	return res.PeakC(), nil
}
