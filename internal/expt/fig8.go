package expt

import (
	"fmt"
	"math"
	"strings"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/org"
	"chiplet25d/internal/power"
)

// Fig8 reproduces Fig. 8: the chiplet organizations that maximize
// performance under 85 °C (α = 1, β = 0) for representative benchmarks,
// comparing the single-chip baseline configuration against the chosen 2.5D
// organization, with an ASCII rendering of the placement and the MinTemp
// workload allocation standing in for the paper's diagrams.
func Fig8(o Options) (*Table, error) {
	benches, err := o.benchSet("cholesky", "hpccg", "canneal")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Fig. 8: performance-optimal organizations under 85 °C (α=1, β=0)",
		Columns: []string{"benchmark", "base_f_MHz", "base_p", "f_MHz", "p", "n",
			"edge_mm", "s1", "s2", "s3", "perf_gain_%", "cost_delta_%", "peak_C"},
	}
	eng, err := o.sharedEngine(benches[0])
	if err != nil {
		return nil, err
	}
	rows := make([][]string, len(benches))
	notes := make([]string, len(benches))
	err = o.parallelUnits(len(benches), func(i int) error {
		b := benches[i]
		s, err := org.NewSearcherWithEngine(o.orgConfig(b), eng)
		if err != nil {
			return err
		}
		res, err := s.Optimize()
		if err != nil {
			return err
		}
		if !res.Feasible {
			rows[i] = []string{b.Name, f1(res.Baseline.Op.FreqMHz), fmt.Sprintf("%d", res.Baseline.ActiveCores),
				"-", "-", "-", "-", "-", "-", "-", "-", "-", "-"}
			return nil
		}
		best := res.Best
		rows[i] = []string{b.Name,
			f1(res.Baseline.Op.FreqMHz), fmt.Sprintf("%d", res.Baseline.ActiveCores),
			f1(best.Op.FreqMHz), fmt.Sprintf("%d", best.ActiveCores),
			fmt.Sprintf("%d", best.N), f1(best.InterposerMM),
			f1(best.S1), f1(best.S2), f1(best.S3),
			f1((best.NormPerf - 1) * 100), f1((best.NormCost - 1) * 100), f1(best.PeakC)}
		m, err := PlacementMap(best.Placement, best.ActiveCores)
		if err != nil {
			return err
		}
		notes[i] = fmt.Sprintf("%s organization map (#=active core, .=dark core):\n%s", b.Name, m)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	for _, n := range notes {
		if n != "" {
			t.Notes = append(t.Notes, n)
		}
	}
	t.Notes = append(t.Notes,
		"paper examples: cholesky +80% by raising frequency 533 MHz -> 1 GHz; hpccg +40% by raising active cores 160 -> 256 (and -28% cost); canneal +7% (saturates at 192 cores) with -36% cost")
	return t, nil
}

// PlacementMap renders a placement and its MinTemp allocation of p active
// cores as ASCII art, one character per millimeter of interposer.
func PlacementMap(pl floorplan.Placement, p int) (string, error) {
	cores, err := pl.Cores()
	if err != nil {
		return "", err
	}
	active, err := power.MintempActive(p)
	if err != nil {
		return "", err
	}
	w := int(math.Ceil(pl.W))
	h := int(math.Ceil(pl.H))
	canvas := make([][]byte, h)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", w))
	}
	plot := func(x, y float64, ch byte) {
		ix := int(x)
		iy := int(y)
		if ix < 0 || ix >= w || iy < 0 || iy >= h {
			return
		}
		canvas[h-1-iy][ix] = ch // flip y so the map prints top-down
	}
	for _, c := range cores {
		cx, cy := c.Rect.Center()
		ch := byte('.')
		if active[c.Row*floorplan.CoresPerEdge+c.Col] {
			ch = '#'
		}
		plot(cx, cy, ch)
	}
	var sb strings.Builder
	border := "+" + strings.Repeat("-", w) + "+"
	sb.WriteString(border + "\n")
	for _, row := range canvas {
		sb.WriteString("|" + string(row) + "|\n")
	}
	sb.WriteString(border)
	return sb.String(), nil
}
