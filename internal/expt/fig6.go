package expt

import (
	"fmt"

	"chiplet25d/internal/cost"
	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/org"
)

// Fig6 reproduces Fig. 6: maximum IPS and cost of 2.5D systems under the
// 85 °C threshold across interposer sizes, both normalized to the
// single-chip baseline's maximum IPS and cost, using non-uniform chiplet
// spacing found by the greedy search. The paper shows three representative
// benchmarks (low/medium/high power); Full scale runs all eight.
func Fig6(o Options) (*Table, error) {
	benches, err := o.benchSet("canneal", "hpccg", "cholesky")
	if err != nil {
		return nil, err
	}
	edgeStep := 2.0
	if o.Scale == Reduced {
		edgeStep = 5.0
	}
	t := &Table{
		Title:   "Fig. 6: normalized max IPS and cost vs interposer size (85 °C)",
		Columns: []string{"benchmark", "edge_mm", "norm_max_ips", "norm_cost_n4", "norm_cost_n16", "best_n", "best_f_MHz", "best_p"},
	}
	cp := cost.DefaultParams()
	c2d := cp.SingleChipCost(floorplan.ChipEdgeMM, floorplan.ChipEdgeMM)
	eng, err := o.sharedEngine(benches[0])
	if err != nil {
		return nil, err
	}
	rowsets := make([][][]string, len(benches))
	err = o.parallelUnits(len(benches), func(i int) error {
		b := benches[i]
		s, err := org.NewSearcherWithEngine(o.orgConfig(b), eng)
		if err != nil {
			return err
		}
		base, err := s.Baseline()
		if err != nil {
			return err
		}
		if !base.Feasible {
			return fmt.Errorf("expt: %s baseline infeasible at 85 °C", b.Name)
		}
		for edge := 20.0; edge <= floorplan.MaxInterposerEdgeMM+1e-9; edge += edgeStep {
			oBest, found, err := s.MaxIPSAtEdge(edge)
			if err != nil {
				return err
			}
			nc4 := cp.Cost25DForInterposer(4, edge) / c2d
			nc16 := cp.Cost25DForInterposer(16, edge) / c2d
			if !found {
				rowsets[i] = append(rowsets[i], []string{b.Name, f1(edge), "infeasible", f3(nc4), f3(nc16), "-", "-", "-"})
				continue
			}
			rowsets[i] = append(rowsets[i], []string{b.Name, f1(edge), f3(oBest.NormPerf), f3(nc4), f3(nc16),
				fmt.Sprintf("%d", oBest.N), f1(oBest.Op.FreqMHz), fmt.Sprintf("%d", oBest.ActiveCores)})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range rowsets {
		t.Rows = append(t.Rows, rows...)
	}
	t.Notes = append(t.Notes,
		"paper trends: max IPS is a staircase in interposer size (discrete f and p); cost curves are benchmark-independent",
		"paper: with the minimum interposer size the 2.5D system costs 36% less at equal performance")
	return t, nil
}
