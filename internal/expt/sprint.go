package expt

import (
	"fmt"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/noc"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
	"chiplet25d/internal/thermal"
)

// Sprint studies computational sprinting (a related-work alternative the
// paper cites [7]) on top of the transient thermal solver: starting from
// the idle (ambient) state, all 256 cores run at 1 GHz — a power level far
// above the single chip's sustainable envelope — and we measure how long
// each organization lasts before hitting the 85 °C threshold. Thermally
// spread 2.5D organizations both extend the sprint and, for large enough
// interposers, sustain it indefinitely, which is precisely the "reclaimed
// dark silicon" of the steady-state analysis.
func Sprint(o Options) (*Table, error) {
	benches, err := o.benchSet("shock")
	if err != nil {
		return nil, err
	}
	type variant struct {
		name string
		pl   floorplan.Placement
	}
	single := floorplan.SingleChip()
	variants := []variant{{"single-chip", single}}
	for _, spec := range []struct {
		r  int
		sp float64
	}{{2, 4}, {4, 4}, {4, 8}} {
		pl, err := floorplan.UniformGrid(spec.r, spec.sp)
		if err != nil {
			return nil, err
		}
		variants = append(variants, variant{
			fmt.Sprintf("%d-chiplet@%gmm", spec.r*spec.r, spec.sp), pl})
	}
	const (
		thresholdC = 85.0
		maxSprintS = 60.0
		dtS        = 0.25
	)
	tc := o.thermalConfig()
	t := &Table{
		Title:   "Computational sprinting: time from idle to 85 °C, all 256 cores at 1 GHz",
		Columns: []string{"benchmark", "organization", "sprint_s", "sustainable", "steady_peak_C"},
	}
	for _, b := range benches {
		for _, v := range variants {
			sprintS, sustained, steadyPeak, err := sprintTime(v.pl, tc, b, thresholdC, maxSprintS, dtS)
			if err != nil {
				return nil, err
			}
			sprint := fmt.Sprintf("%.1f", sprintS)
			if sustained {
				sprint = ">" + fmt.Sprintf("%.0f", maxSprintS)
			}
			t.AddRow(b.Name, v.name, sprint, fmt.Sprintf("%v", sustained), f1(steadyPeak))
		}
	}
	t.Notes = append(t.Notes,
		"sprinting (Raghavan et al. [7]) tolerates short over-envelope bursts; thermally-aware 2.5D organization turns the burst into steady state",
		"transient integration: backward Euler with temperature-dependent leakage updated each step")
	return t, nil
}

// sprintTime integrates the transient field under full-throttle benchmark
// power (leakage updated from core temperatures each step) until the
// threshold or maxTime; it also reports the steady-state peak.
func sprintTime(pl floorplan.Placement, tc thermal.Config, b perf.Benchmark,
	thresholdC, maxTime, dt float64) (sprintS float64, sustained bool, steadyPeakC float64, err error) {
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		return 0, false, 0, err
	}
	model, err := thermal.NewModel(stack, tc)
	if err != nil {
		return 0, false, 0, err
	}
	cores, err := pl.Cores()
	if err != nil {
		return 0, false, 0, err
	}
	mesh, err := noc.MeshPower(pl, power.NominalPoint, floorplan.NumCores, b.Traffic,
		noc.DefaultLinkParams(), noc.DefaultRouterParams())
	if err != nil {
		return 0, false, 0, err
	}
	nocPerCore := mesh.TotalW() / floorplan.NumCores
	lm := power.DefaultLeakage()

	// Steady state for the "sustainable" verdict.
	active, err := power.MintempActive(floorplan.NumCores)
	if err != nil {
		return 0, false, 0, err
	}
	w := power.Workload{RefCoreW: b.RefCoreW, Op: power.NominalPoint,
		Active: active, NoCW: mesh.TotalW(), Leakage: lm}
	steady, err := power.Simulate(model, cores, w, power.DefaultSimOptions())
	if err != nil {
		return 0, false, 0, err
	}
	steadyPeakC = steady.PeakC

	ts, err := model.NewTransientSolver(dt)
	if err != nil {
		return 0, false, 0, err
	}
	grid := model.Grid()
	for ts.Elapsed < maxTime {
		// Rebuild the power map with leakage at each core's current
		// temperature.
		pmap := make([]float64, grid.NumCells())
		chip := ts.ChipT()
		for _, c := range cores {
			cx, cy := c.Rect.Center()
			ix, iy := grid.CellAt(cx, cy)
			tC := chip[grid.Index(ix, iy)]
			grid.RasterizeAdd(pmap, c.Rect, power.CorePower(b.RefCoreW, power.NominalPoint, tC, lm)+nocPerCore)
		}
		peak, err := ts.Step(pmap)
		if err != nil {
			return 0, false, 0, err
		}
		if peak >= thresholdC {
			return ts.Elapsed, false, steadyPeakC, nil
		}
	}
	return maxTime, true, steadyPeakC, nil
}
