package cost

import (
	"fmt"
	"math"

	"chiplet25d/internal/floorplan"
)

// Lane/server elaboration: one lane is one 256-core 2.5D system (or the
// monolithic 2D baseline at one chiplet) plus its heatsink; a server packs
// as many lanes as its power budget and chassis allow; TCO amortizes the
// server over its depreciation and adds energy at PUE. Everything here is
// pure arithmetic — deterministic, sub-microsecond — so fleet sweeps over
// thousands of candidates are cheap and content-addressable.

// Infeasibility reasons reported by ServerElab.Reason and carried into
// audit events.
const (
	// ReasonOK marks a feasible elaboration.
	ReasonOK = "ok"
	// ReasonHeatsink marks a lane whose workload power exceeds the
	// heatsink capacity for its chiplet organization.
	ReasonHeatsink = "heatsink"
	// ReasonPowerBudget marks a server whose budget cannot power even one
	// lane.
	ReasonPowerBudget = "power-budget"
	// ReasonThermal marks a lane rejected by a thermal-engine peak check
	// (assigned by callers that refine feasibility with a predictor; the
	// analytic elaboration never produces it).
	ReasonThermal = "thermal"
)

// LaneDesign is one candidate fleet design point: how the 256-core
// system's silicon is organized per lane and what the workload draws.
type LaneDesign struct {
	// Chiplets is the chiplet count; must be a perfect square. One chiplet
	// is the monolithic 2D baseline (no interposer, no bonding).
	Chiplets int
	// InterposerEdgeMM is the square interposer edge; zero selects the
	// smallest edge that fits the chiplets plus guard bands. Ignored for
	// the monolithic baseline.
	InterposerEdgeMM float64
	// LanePowerW is the workload's lane power draw at the base node; the
	// elaboration rescales it by the node's PowerScale.
	LanePowerW float64
	// LaneGIPS is the lane throughput (node-independent: same cores, same
	// operating point).
	LaneGIPS float64
}

// ServerElab is one fully elaborated server design.
type ServerElab struct {
	// Node is the resolved tech-node name.
	Node string `json:"node"`
	// Chiplets is the per-lane chiplet count.
	Chiplets int `json:"chiplets"`
	// ChipletAreaMM2 is the node-scaled area of one chiplet.
	ChipletAreaMM2 float64 `json:"chiplet_area_mm2"`
	// InterposerEdgeMM is the resolved interposer edge (zero for the
	// monolithic baseline).
	InterposerEdgeMM float64 `json:"interposer_edge_mm"`
	// LanePowerW is the node-scaled workload power per lane.
	LanePowerW float64 `json:"lane_power_w"`
	// MaxLanePowerW is the heatsink capacity for this organization.
	MaxLanePowerW float64 `json:"max_lane_power_w"`
	// LaneGIPS is the per-lane throughput.
	LaneGIPS float64 `json:"lane_gips"`
	// SiliconUSD is the manufactured silicon cost per lane (Eqs. (1)-(4)).
	SiliconUSD float64 `json:"silicon_usd"`
	// HeatsinkUSD is the per-lane heatsink cost.
	HeatsinkUSD float64 `json:"heatsink_usd"`
	// LanesPerServer is the packed lane count (0 when infeasible).
	LanesPerServer int `json:"lanes_per_server"`
	// ServerPowerW is the server draw: lanes plus overhead.
	ServerPowerW float64 `json:"server_power_w"`
	// ServerUSD is the server capex: overhead + PSU + lanes.
	ServerUSD float64 `json:"server_usd"`
	// CapexUSDPerYear is ServerUSD amortized over the depreciation.
	CapexUSDPerYear float64 `json:"capex_usd_per_year"`
	// EnergyUSDPerYear is the annual energy bill at PUE.
	EnergyUSDPerYear float64 `json:"energy_usd_per_year"`
	// TCOUSDPerYear is capex + energy.
	TCOUSDPerYear float64 `json:"tco_usd_per_year"`
	// ServerGIPS is the server throughput.
	ServerGIPS float64 `json:"server_gips"`
	// TCOPerGIPSYear is the objective: annual dollars per sustained GIPS.
	// Zero when infeasible (never ±Inf, so the struct is JSON-safe).
	TCOPerGIPSYear float64 `json:"tco_per_gips_year"`
	// Feasible reports whether the design survived the heatsink and
	// power-budget checks.
	Feasible bool `json:"feasible"`
	// Reason is ReasonOK or the first failed check.
	Reason string `json:"reason"`
}

// ElaborateServer elaborates one lane design into a full server TCO under
// the given manufacturing and datacenter constants. Geometry or parameter
// errors return a non-nil error; designs that are merely infeasible
// (heatsink or power budget) return Feasible=false with the costs of the
// rejected design filled in.
func (t TCOParams) ElaborateServer(p Params, lane LaneDesign) (ServerElab, error) {
	if err := t.Validate(); err != nil {
		return ServerElab{}, err
	}
	if err := p.Validate(); err != nil {
		return ServerElab{}, err
	}
	nd, err := NodeByName(t.Node)
	if err != nil {
		return ServerElab{}, err
	}
	n := lane.Chiplets
	r := int(math.Round(math.Sqrt(float64(n))))
	if n < 1 || r*r != n {
		return ServerElab{}, fmt.Errorf("cost: chiplet count %d is not a perfect square", n)
	}
	if lane.LanePowerW <= 0 || lane.LaneGIPS <= 0 {
		return ServerElab{}, fmt.Errorf("cost: lane power and throughput must be positive")
	}
	np := p.AtNode(nd)
	totalAreaMM2 := floorplan.ChipEdgeMM * floorplan.ChipEdgeMM * nd.AreaScale
	chipletAreaMM2 := totalAreaMM2 / float64(n)
	chipletEdgeMM := math.Sqrt(chipletAreaMM2)

	e := ServerElab{
		Node:           nd.Name,
		Chiplets:       n,
		ChipletAreaMM2: chipletAreaMM2,
		LanePowerW:     lane.LanePowerW * nd.PowerScale,
		LaneGIPS:       lane.LaneGIPS,
		Reason:         ReasonOK,
	}

	if n == 1 {
		e.SiliconUSD = np.CMOSDieCost(chipletAreaMM2)
	} else {
		minEdge := float64(r)*chipletEdgeMM + 2*floorplan.GuardBandMM
		edge := lane.InterposerEdgeMM
		if edge == 0 {
			edge = minEdge
		}
		if edge < minEdge {
			return ServerElab{}, fmt.Errorf("cost: interposer edge %.3f mm below the %.3f mm minimum for %d chiplets", edge, minEdge, n)
		}
		if edge > floorplan.MaxInterposerEdgeMM {
			return ServerElab{}, fmt.Errorf("cost: interposer edge %.3f mm above the %.0f mm maximum", edge, floorplan.MaxInterposerEdgeMM)
		}
		e.InterposerEdgeMM = edge
		e.SiliconUSD = np.System25DCost(n, chipletAreaMM2, edge*edge)
	}
	e.MaxLanePowerW = t.Heatsink.MaxLanePowerW(n, chipletAreaMM2)
	e.HeatsinkUSD = t.Heatsink.CostUSD(n, chipletAreaMM2)

	if e.LanePowerW > e.MaxLanePowerW {
		e.Reason = ReasonHeatsink
		return e, nil
	}
	lanes := int((t.ServerPowerBudgetW - t.ServerOverheadW) / e.LanePowerW)
	if lanes > t.MaxLanesPerServer {
		lanes = t.MaxLanesPerServer
	}
	if lanes < 1 {
		e.Reason = ReasonPowerBudget
		return e, nil
	}
	e.Feasible = true
	e.LanesPerServer = lanes
	e.ServerPowerW = float64(lanes)*e.LanePowerW + t.ServerOverheadW
	e.ServerUSD = t.ServerOverheadUSD + t.PSUUSDPerW*e.ServerPowerW +
		float64(lanes)*(e.SiliconUSD+e.HeatsinkUSD)
	e.CapexUSDPerYear = e.ServerUSD / t.DepreciationYears
	e.EnergyUSDPerYear = e.ServerPowerW * t.PUE * HoursPerYear * t.EnergyUSDPerKWH / 1000
	e.TCOUSDPerYear = e.CapexUSDPerYear + e.EnergyUSDPerYear
	e.ServerGIPS = float64(lanes) * e.LaneGIPS
	e.TCOPerGIPSYear = e.TCOUSDPerYear / e.ServerGIPS
	return e, nil
}

// SweepChiplets elaborates the lane design at each chiplet count (the
// design's Chiplets and InterposerEdgeMM fields are overridden; the
// interposer floats to its per-count minimum). Hard errors abort the
// sweep; infeasible designs are returned with Feasible=false.
func (t TCOParams) SweepChiplets(p Params, lane LaneDesign, counts []int) ([]ServerElab, error) {
	out := make([]ServerElab, 0, len(counts))
	for _, n := range counts {
		l := lane
		l.Chiplets = n
		l.InterposerEdgeMM = 0
		e, err := t.ElaborateServer(p, l)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}
