// Package cost implements the 2.5D manufacturing cost model of Stow et al.
// adopted by the paper (Eqs. (1)-(4)): dies per wafer, negative-binomial
// CMOS yield, per-die CMOS and interposer cost, and total 2.5D system cost
// including serial chiplet bonding yield.
//
// Note on units: Table II lists the defect density as "0.25/mm²", but the
// paper's own in-text numbers (a 40mm x 40mm chip costing 27x more than a
// 20mm x 20mm one, and the equivalent 4-chiplet 2.5D system being 27%
// cheaper with the interposer at 30% of system cost) only reproduce with
// D0 = 0.25/cm². We therefore interpret the figure as per-cm² — the
// conventional unit for defect density — and reproduce all three in-text
// anchors (see the tests).
package cost

import (
	"fmt"
	"math"

	"chiplet25d/internal/floorplan"
)

// Params are the cost model constants (Table II).
type Params struct {
	// WaferDiameterMM is the CMOS wafer diameter (300 mm).
	WaferDiameterMM float64
	// IntWaferDiameterMM is the interposer wafer diameter (300 mm).
	IntWaferDiameterMM float64
	// CMOSWaferCost is the cost of one CMOS wafer ($5000).
	CMOSWaferCost float64
	// IntWaferCost is the cost of one interposer wafer ($500).
	IntWaferCost float64
	// D0PerCM2 is the defect density in defects per cm² (0.25).
	D0PerCM2 float64
	// Alpha is the defect clustering parameter (3).
	Alpha float64
	// IntYield is the interposer yield (98%).
	IntYield float64
	// BondYield is the per-chiplet bonding yield (99%).
	BondYield float64
	// BondCost is the per-chiplet bonding cost in dollars.
	BondCost float64
}

// DefaultParams returns the Table II constants.
func DefaultParams() Params {
	return Params{
		WaferDiameterMM:    300,
		IntWaferDiameterMM: 300,
		CMOSWaferCost:      5000,
		IntWaferCost:       500,
		D0PerCM2:           0.25,
		Alpha:              3,
		IntYield:           0.98,
		BondYield:          0.99,
		BondCost:           0.2,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.WaferDiameterMM <= 0 || p.IntWaferDiameterMM <= 0 {
		return fmt.Errorf("cost: wafer diameters must be positive")
	}
	if p.CMOSWaferCost <= 0 || p.IntWaferCost <= 0 {
		return fmt.Errorf("cost: wafer costs must be positive")
	}
	if p.D0PerCM2 < 0 {
		return fmt.Errorf("cost: negative defect density")
	}
	if p.Alpha <= 0 {
		return fmt.Errorf("cost: clustering parameter must be positive")
	}
	if p.IntYield <= 0 || p.IntYield > 1 || p.BondYield <= 0 || p.BondYield > 1 {
		return fmt.Errorf("cost: yields must be in (0,1]")
	}
	if p.BondCost < 0 {
		return fmt.Errorf("cost: negative bonding cost")
	}
	return nil
}

// DiesPerWafer implements Eq. (1): the usable die count on a circular wafer
// accounting for edge loss.
func DiesPerWafer(waferDiameterMM, dieAreaMM2 float64) float64 {
	if dieAreaMM2 <= 0 {
		return 0
	}
	r := waferDiameterMM / 2
	n := math.Pi*r*r/dieAreaMM2 - math.Pi*waferDiameterMM/math.Sqrt(2*dieAreaMM2)
	if n < 0 {
		return 0
	}
	return n
}

// CMOSYield implements Eq. (2), the negative-binomial yield model.
func (p Params) CMOSYield(dieAreaMM2 float64) float64 {
	d0mm2 := p.D0PerCM2 / 100 // defects per mm²
	return math.Pow(1+dieAreaMM2*d0mm2/p.Alpha, -p.Alpha)
}

// CMOSDieCost implements the CMOS part of Eq. (3): good-die cost.
func (p Params) CMOSDieCost(dieAreaMM2 float64) float64 {
	n := DiesPerWafer(p.WaferDiameterMM, dieAreaMM2)
	if n <= 0 {
		return math.Inf(1)
	}
	return p.CMOSWaferCost / (n * p.CMOSYield(dieAreaMM2))
}

// InterposerCost implements the interposer part of Eq. (3).
func (p Params) InterposerCost(areaMM2 float64) float64 {
	n := DiesPerWafer(p.IntWaferDiameterMM, areaMM2)
	if n <= 0 {
		return math.Inf(1)
	}
	return p.IntWaferCost / (n * p.IntYield)
}

// SingleChipCost returns C_2D for a monolithic chip of the given dimensions
// (mm).
func (p Params) SingleChipCost(wMM, hMM float64) float64 {
	return p.CMOSDieCost(wMM * hMM)
}

// System25DCost implements Eq. (4): n known-good chiplets plus the
// interposer, bonded serially with per-bond yield.
func (p Params) System25DCost(n int, chipletAreaMM2, interposerAreaMM2 float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	chiplets := float64(n) * (p.CMOSDieCost(chipletAreaMM2) + p.BondCost)
	return (chiplets + p.InterposerCost(interposerAreaMM2)) / math.Pow(p.BondYield, float64(n))
}

// PlacementCost returns the manufacturing cost of a placement: C_2D for the
// monolithic baseline, C_2.5D otherwise.
func (p Params) PlacementCost(pl floorplan.Placement) float64 {
	if pl.Is2D() {
		return p.SingleChipCost(pl.W, pl.H)
	}
	return p.System25DCost(pl.NumChiplets(), pl.ChipletW*pl.ChipletH, pl.W*pl.H)
}

// Cost25DForInterposer returns C_2.5D for n chiplets of the standard
// 256-core system on a square interposer with the given edge (mm).
func (p Params) Cost25DForInterposer(n int, interposerEdgeMM float64) float64 {
	r := 2
	if n == 16 {
		r = 4
	} else if n != 4 {
		// Generic square split.
		r = int(math.Round(math.Sqrt(float64(n))))
		if r*r != n || r < 1 {
			return math.Inf(1)
		}
	}
	edge := floorplan.ChipEdgeMM / float64(r)
	return p.System25DCost(n, edge*edge, interposerEdgeMM*interposerEdgeMM)
}

// MinInterposerEdge returns the smallest square interposer edge (mm) that
// fits n chiplets of the 256-core system with zero spacing plus guard bands.
func MinInterposerEdge(n int) float64 {
	return floorplan.ChipEdgeMM + 2*floorplan.GuardBandMM
}
