package cost

import (
	"fmt"
	"math"
	"math/rand"
)

// Monte-Carlo validation of the negative-binomial yield model (Eq. (2)).
// The model arises from Poisson defects whose rate is itself
// gamma-distributed across dies (defect clustering): integrating the
// Poisson zero-class over a Gamma(α, D0·A/α) mixing density gives exactly
// (1 + A·D0/α)^(-α). SimulateYield samples that generative process so the
// analytic formula can be cross-checked, and so users can explore
// alternative clustering assumptions empirically.

// SimulateYield estimates the fraction of defect-free dies of the given
// area (mm²) by sampling n dies from the clustered-defect process.
func (p Params) SimulateYield(dieAreaMM2 float64, n int, seed int64) (float64, error) {
	if dieAreaMM2 <= 0 {
		return 0, fmt.Errorf("cost: die area must be positive")
	}
	if n < 1 {
		return 0, fmt.Errorf("cost: need at least one sample")
	}
	rng := rand.New(rand.NewSource(seed))
	mean := dieAreaMM2 * p.D0PerCM2 / 100 // expected defects per die
	good := 0
	for i := 0; i < n; i++ {
		// Gamma(α, mean/α)-distributed local defect rate...
		lambda := gammaSample(rng, p.Alpha) * mean / p.Alpha
		// ...feeding a Poisson defect count; a die is good with zero defects.
		if poissonSample(rng, lambda) == 0 {
			good++
		}
	}
	return float64(good) / float64(n), nil
}

// gammaSample draws from Gamma(shape, 1) via Marsaglia-Tsang.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := rng.Float64()
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// poissonSample draws from Poisson(lambda) (Knuth for small rates, normal
// approximation for large ones — die defect counts are small).
func poissonSample(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := rng.NormFloat64()*math.Sqrt(lambda) + lambda
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
