package cost

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// Monte-Carlo validation of the negative-binomial yield model (Eq. (2)).
// The model arises from Poisson defects whose rate is itself
// gamma-distributed across dies (defect clustering): integrating the
// Poisson zero-class over a Gamma(α, D0·A/α) mixing density gives exactly
// (1 + A·D0/α)^(-α). SimulateYield samples that generative process so the
// analytic formula can be cross-checked, and so users can explore
// alternative clustering assumptions empirically.

// SimulateYield estimates the fraction of defect-free dies of the given
// area (mm²) by sampling n dies from the clustered-defect process.
func (p Params) SimulateYield(dieAreaMM2 float64, n int, seed int64) (float64, error) {
	if dieAreaMM2 <= 0 {
		return 0, fmt.Errorf("cost: die area must be positive")
	}
	if n < 1 {
		return 0, fmt.Errorf("cost: need at least one sample")
	}
	rng := rand.New(rand.NewSource(seed))
	mean := dieAreaMM2 * p.D0PerCM2 / 100 // expected defects per die
	good := 0
	for i := 0; i < n; i++ {
		// Gamma(α, mean/α)-distributed local defect rate...
		lambda := gammaSample(rng, p.Alpha) * mean / p.Alpha
		// ...feeding a Poisson defect count; a die is good with zero defects.
		if poissonSample(rng, lambda) == 0 {
			good++
		}
	}
	return float64(good) / float64(n), nil
}

// yieldBlockSamples is the fixed per-block sample count of YieldQuantiles.
// Blocks are the unit of both parallelism and determinism: block i draws
// from its own RNG seeded by mixSeed(seed, i), so the result is a pure
// function of (parameters, seed, blocks) no matter how many workers run or
// how the scheduler interleaves them — the same contract the parallel
// search keeps (serial ≡ parallel, bit for bit).
const yieldBlockSamples = 1024

// YieldQuantiles runs the clustered-defect process over blocks x 1024
// sampled dies on the given number of workers and returns the requested
// quantiles (nearest-rank, probs in [0,1]) of the per-block yield-fraction
// distribution, plus the overall mean yield. Same seed → bit-identical
// results at any worker count.
func (p Params) YieldQuantiles(dieAreaMM2 float64, blocks, workers int, seed int64, probs []float64) (quantiles []float64, mean float64, err error) {
	if dieAreaMM2 <= 0 {
		return nil, 0, fmt.Errorf("cost: die area must be positive")
	}
	if blocks < 1 {
		return nil, 0, fmt.Errorf("cost: need at least one block")
	}
	if workers < 1 {
		workers = 1
	}
	for _, q := range probs {
		if q < 0 || q > 1 || math.IsNaN(q) {
			return nil, 0, fmt.Errorf("cost: quantile probabilities must lie in [0,1]")
		}
	}
	fractions := make([]float64, blocks)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mean := dieAreaMM2 * p.D0PerCM2 / 100
			for {
				i := int(next.Add(1)) - 1
				if i >= blocks {
					return
				}
				rng := rand.New(rand.NewSource(mixSeed(seed, i)))
				good := 0
				for s := 0; s < yieldBlockSamples; s++ {
					lambda := gammaSample(rng, p.Alpha) * mean / p.Alpha
					if poissonSample(rng, lambda) == 0 {
						good++
					}
				}
				fractions[i] = float64(good) / yieldBlockSamples
			}
		}()
	}
	wg.Wait()
	total := 0.0
	for _, f := range fractions {
		total += f
	}
	sorted := append([]float64(nil), fractions...)
	sort.Float64s(sorted)
	quantiles = make([]float64, len(probs))
	for i, q := range probs {
		// Nearest-rank: the smallest value with cumulative frequency >= q.
		k := int(math.Ceil(q * float64(blocks)))
		if k < 1 {
			k = 1
		}
		quantiles[i] = sorted[k-1]
	}
	return quantiles, total / float64(blocks), nil
}

// mixSeed derives block i's RNG seed from the root seed via a splitmix64
// round, decorrelating neighbouring blocks without any shared state.
func mixSeed(seed int64, block int) int64 {
	z := uint64(seed) + uint64(block+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// gammaSample draws from Gamma(shape, 1) via Marsaglia-Tsang.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := rng.Float64()
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// poissonSample draws from Poisson(lambda) (Knuth for small rates, normal
// approximation for large ones — die defect counts are small).
func poissonSample(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := rng.NormFloat64()*math.Sqrt(lambda) + lambda
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
