package cost

import (
	"math"
	"testing"
)

// TestYieldQuantilesDeterministic is the deflake guard: the block-seeded
// sampler promises bit-identical quantiles at any worker count for the
// same seed — the same contract the parallel search keeps (serial ≡
// parallel). Run under -race in CI.
func TestYieldQuantilesDeterministic(t *testing.T) {
	p := DefaultParams()
	probs := []float64{0, 0.05, 0.5, 0.95, 1}
	refQ, refMean, err := p.YieldQuantiles(324, 64, 1, 42, probs)
	if err != nil {
		t.Fatalf("serial YieldQuantiles: %v", err)
	}
	for _, workers := range []int{2, 3, 7, 16, 64, 100} {
		q, mean, err := p.YieldQuantiles(324, 64, workers, 42, probs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if mean != refMean {
			t.Fatalf("workers=%d: mean %v != serial %v", workers, mean, refMean)
		}
		for i := range q {
			if q[i] != refQ[i] {
				t.Fatalf("workers=%d: quantile p=%g: %v != serial %v", workers, probs[i], q[i], refQ[i])
			}
		}
	}
	// A different seed must actually change the draw (the guard is not
	// vacuously comparing constants).
	q2, _, err := p.YieldQuantiles(324, 64, 4, 43, probs)
	if err != nil {
		t.Fatalf("seed 43: %v", err)
	}
	same := true
	for i := range q2 {
		if q2[i] != refQ[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("seed 43 reproduced seed 42's quantiles exactly")
	}
	// Quantiles are ordered and the extremes bracket the mean.
	for i := 1; i < len(refQ); i++ {
		if refQ[i] < refQ[i-1] {
			t.Fatalf("quantiles not monotone: %v", refQ)
		}
	}
	if refMean < refQ[0] || refMean > refQ[len(refQ)-1] {
		t.Fatalf("mean %v outside quantile range %v", refMean, refQ)
	}
	// And the median sits near the analytic yield.
	if want := p.CMOSYield(324); math.Abs(refQ[2]-want) > 0.02 {
		t.Fatalf("median %v far from analytic yield %v", refQ[2], want)
	}
}

func TestYieldQuantilesErrors(t *testing.T) {
	p := DefaultParams()
	if _, _, err := p.YieldQuantiles(0, 8, 2, 1, nil); err == nil {
		t.Errorf("zero area must error")
	}
	if _, _, err := p.YieldQuantiles(81, 0, 2, 1, nil); err == nil {
		t.Errorf("zero blocks must error")
	}
	if _, _, err := p.YieldQuantiles(81, 8, 2, 1, []float64{1.5}); err == nil {
		t.Errorf("out-of-range probability must error")
	}
	if _, _, err := p.YieldQuantiles(81, 8, 2, 1, []float64{math.NaN()}); err == nil {
		t.Errorf("NaN probability must error")
	}
	// workers < 1 is clamped, not an error.
	if _, _, err := p.YieldQuantiles(81, 4, 0, 1, []float64{0.5}); err != nil {
		t.Errorf("workers=0 should clamp to 1: %v", err)
	}
}
