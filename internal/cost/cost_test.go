package cost

import (
	"math"
	"testing"
	"testing/quick"

	"chiplet25d/internal/floorplan"
)

func TestDefaultParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.WaferDiameterMM = 0 },
		func(p *Params) { p.CMOSWaferCost = -1 },
		func(p *Params) { p.D0PerCM2 = -0.1 },
		func(p *Params) { p.Alpha = 0 },
		func(p *Params) { p.IntYield = 1.5 },
		func(p *Params) { p.BondYield = 0 },
		func(p *Params) { p.BondCost = -1 },
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestDiesPerWafer(t *testing.T) {
	// 324 mm² dies on a 300 mm wafer: pi*150²/324 - pi*300/sqrt(648) ≈ 181.
	got := DiesPerWafer(300, 324)
	if math.Abs(got-181.2) > 1 {
		t.Errorf("DiesPerWafer(300, 324) = %.1f, want ≈181.2", got)
	}
	if DiesPerWafer(300, 0) != 0 {
		t.Errorf("zero-area die should give 0 dies")
	}
	// Huge dies that don't fit: clamp at 0, never negative.
	if DiesPerWafer(300, 1e6) < 0 {
		t.Errorf("dies per wafer must not be negative")
	}
}

func TestCMOSYield(t *testing.T) {
	p := DefaultParams()
	// 324 mm² at 0.25/cm², alpha 3: (1 + 0.27)^-3 ≈ 0.488.
	if y := p.CMOSYield(324); math.Abs(y-0.488) > 0.005 {
		t.Errorf("yield(324) = %.3f, want ≈0.488", y)
	}
	// Yield decreases with area and stays in (0, 1].
	if p.CMOSYield(20.25) <= p.CMOSYield(81) || p.CMOSYield(81) <= p.CMOSYield(324) {
		t.Errorf("yield should decrease with die area")
	}
	if y := p.CMOSYield(0); math.Abs(y-1) > 1e-12 {
		t.Errorf("zero-area yield = %v, want 1", y)
	}
}

// The paper's in-text anchor: growing a single chip from 20x20 to 40x40
// costs ~27x more due to yield collapse.
func TestPaperAnchor27xSingleChip(t *testing.T) {
	p := DefaultParams()
	ratio := p.SingleChipCost(40, 40) / p.SingleChipCost(20, 20)
	if ratio < 24 || ratio < 0 || ratio > 31 {
		t.Fatalf("40mm/20mm chip cost ratio = %.1f, paper says ~27x", ratio)
	}
}

// The paper's in-text anchor: a 4-chiplet 2.5D system with a 40x40
// interposer is ~27% cheaper than the equivalent 20x20 single chip, with
// the interposer at ~30% of system cost.
func TestPaperAnchor4ChipletSystem(t *testing.T) {
	p := DefaultParams()
	chip := p.SingleChipCost(20, 20)
	sys := p.System25DCost(4, 100, 1600)
	saving := 1 - sys/chip
	if saving < 0.20 || saving > 0.33 {
		t.Fatalf("4-chiplet saving = %.1f%%, paper says ~27%%", saving*100)
	}
	intFrac := p.InterposerCost(1600) / sys
	if intFrac < 0.24 || intFrac > 0.36 {
		t.Fatalf("interposer share = %.1f%%, paper says ~30%%", intFrac*100)
	}
}

// Fig. 3(a) anchor: at the minimal interposer size the 2.5D system saves
// 30-42% versus the 18x18 single chip across the paper's defect densities.
func TestFig3aMinimalInterposerSavings(t *testing.T) {
	for _, d0 := range []float64{0.20, 0.25, 0.30} {
		p := DefaultParams()
		p.D0PerCM2 = d0
		chip := p.SingleChipCost(floorplan.ChipEdgeMM, floorplan.ChipEdgeMM)
		minEdge := MinInterposerEdge(4)
		for _, n := range []int{4, 16} {
			sys := p.Cost25DForInterposer(n, minEdge)
			saving := 1 - sys/chip
			if saving < 0.25 || saving > 0.48 {
				t.Errorf("D0=%.2f n=%d: saving %.1f%% outside the paper's 30-42%% band",
					d0, n, saving*100)
			}
		}
	}
}

func TestCostIncreasesWithInterposerSize(t *testing.T) {
	p := DefaultParams()
	prev := 0.0
	for edge := 20.0; edge <= 50; edge += 5 {
		c := p.Cost25DForInterposer(16, edge)
		if c <= prev {
			t.Fatalf("2.5D cost not increasing with interposer size at %.0f mm", edge)
		}
		prev = c
	}
}

func TestCostHigherDefectDensityCostsMore(t *testing.T) {
	lo, hi := DefaultParams(), DefaultParams()
	lo.D0PerCM2, hi.D0PerCM2 = 0.20, 0.30
	if lo.SingleChipCost(18, 18) >= hi.SingleChipCost(18, 18) {
		t.Errorf("higher defect density should cost more")
	}
	// And the relative 2.5D saving grows with defect density (Fig. 3(a)).
	save := func(p Params) float64 {
		return 1 - p.Cost25DForInterposer(16, 20)/p.SingleChipCost(18, 18)
	}
	if save(hi) <= save(lo) {
		t.Errorf("2.5D saving should grow with defect density: lo=%.3f hi=%.3f", save(lo), save(hi))
	}
}

func TestPlacementCost(t *testing.T) {
	p := DefaultParams()
	chip := p.PlacementCost(floorplan.SingleChip())
	if math.Abs(chip-p.SingleChipCost(18, 18)) > 1e-9 {
		t.Errorf("2D placement cost mismatch")
	}
	pl, err := floorplan.PaperOrg(16, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := p.PlacementCost(pl)
	want := p.System25DCost(16, 4.5*4.5, pl.W*pl.W)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("placement cost = %v, want %v", got, want)
	}
}

func TestSystem25DCostEdgeCases(t *testing.T) {
	p := DefaultParams()
	if !math.IsInf(p.System25DCost(0, 81, 400), 1) {
		t.Errorf("zero chiplets should be infinite cost")
	}
	if !math.IsInf(p.Cost25DForInterposer(5, 30), 1) {
		t.Errorf("non-square chiplet count should be infinite cost")
	}
}

// Property: more chiplets of smaller area never have worse silicon yield
// cost per mm² (the economic driver of disintegration).
func TestSmallerDiesCheaperPerArea(t *testing.T) {
	p := DefaultParams()
	f := func(aRaw float64) bool {
		a := 10 + math.Abs(math.Mod(aRaw, 500))
		small := p.CMOSDieCost(a/4) / (a / 4)
		big := p.CMOSDieCost(a) / a
		return small <= big+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The headline cost anchor: minimal-interposer 2.5D saves ≈36% at default
// defect density (Sec. V-B / Fig. 8 canneal).
func TestHeadline36PercentSaving(t *testing.T) {
	p := DefaultParams()
	chip := p.SingleChipCost(18, 18)
	best := math.Inf(1)
	for _, n := range []int{4, 16} {
		if c := p.Cost25DForInterposer(n, 20); c < best {
			best = c
		}
	}
	saving := 1 - best/chip
	if math.Abs(saving-0.36) > 0.04 {
		t.Fatalf("minimal-interposer saving = %.1f%%, paper headline is 36%%", saving*100)
	}
}

// The Monte-Carlo clustered-defect process must reproduce the analytic
// negative-binomial yield (Eq. (2)) within sampling error.
func TestSimulateYieldMatchesAnalytic(t *testing.T) {
	p := DefaultParams()
	for _, area := range []float64{20.25, 81, 324} {
		want := p.CMOSYield(area)
		got, err := p.SimulateYield(area, 40000, 7)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.01 {
			t.Errorf("area %.2f: MC yield %.4f vs analytic %.4f", area, got, want)
		}
	}
}

func TestSimulateYieldErrors(t *testing.T) {
	p := DefaultParams()
	if _, err := p.SimulateYield(0, 100, 1); err == nil {
		t.Errorf("expected error for zero area")
	}
	if _, err := p.SimulateYield(100, 0, 1); err == nil {
		t.Errorf("expected error for zero samples")
	}
}

func TestSimulateYieldDeterministicSeed(t *testing.T) {
	p := DefaultParams()
	a, err := p.SimulateYield(100, 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.SimulateYield(100, 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed gave different results: %v vs %v", a, b)
	}
}
