package cost

import (
	"math"
	"testing"
)

// The tables below pin Eqs. (1)-(4) against values computed by hand from
// the formulas (independent arithmetic, not a call back into this package),
// at Table II constants: 300 mm wafers, $5000 CMOS / $500 interposer,
// D0 = 0.25/cm², α = 3, interposer yield 98%, bond yield 99%, bond $0.20.

const eqTol = 1e-9 // relative; the expected values carry 12 digits

func relClose(got, want float64) bool {
	return math.Abs(got-want) <= eqTol*math.Max(1, math.Abs(want))
}

// TestEq1DiesPerWaferHandValues: N = π(d/2)²/A − πd/√(2A).
// E.g. for A = 100 mm²: π·150²/100 − π·300/√200
// = 706.858347058 − 66.643244073 = 640.215102985.
func TestEq1DiesPerWaferHandValues(t *testing.T) {
	cases := []struct {
		name    string
		areaMM2 float64
		want    float64
	}{
		{"10x10", 100, 640.215102985},
		{"18x18 paper chip", 324, 181.142132015},
		{"9x9 quarter chiplet", 81, 798.616577028},
		{"4.5x4.5 sixteenth chiplet", 20.25, 3342.56240605},
		{"40x40 interposer", 1600, 27.517835673},
		{"zero area", 0, 0},
		{"area beyond the wafer", 1e6, 0},
	}
	for _, c := range cases {
		if got := DiesPerWafer(300, c.areaMM2); !relClose(got, c.want) {
			t.Errorf("%s: DiesPerWafer(300, %g) = %.12g, want %.12g", c.name, c.areaMM2, got, c.want)
		}
	}
}

// TestEq2CMOSYieldHandValues: Y = (1 + A·D0/α)^(−α) with D0 in defects/mm².
// E.g. for the 18x18 chip: (1 + 324·0.0025/3)^−3 = 1.27^−3 = 0.488189952758.
func TestEq2CMOSYieldHandValues(t *testing.T) {
	p := DefaultParams()
	cases := []struct {
		name    string
		areaMM2 float64
		want    float64
	}{
		{"18x18 paper chip", 324, 0.488189952758},
		{"9x9 quarter chiplet", 81, 0.822046432445},
		{"4.5x4.5 sixteenth chiplet", 20.25, 0.951036727819},
		{"40x40 interposer-sized die", 1600, 0.0787172011662},
		{"zero area yields perfectly", 0, 1},
	}
	for _, c := range cases {
		if got := p.CMOSYield(c.areaMM2); !relClose(got, c.want) {
			t.Errorf("%s: CMOSYield(%g) = %.12g, want %.12g", c.name, c.areaMM2, got, c.want)
		}
	}
}

// TestEq3DieCostHandValues: C_die = C_wafer / (N · Y), for both the CMOS
// and interposer wafers. E.g. the paper chip:
// 5000 / (181.142132015 · 0.488189952758) = $56.5407665577.
func TestEq3DieCostHandValues(t *testing.T) {
	p := DefaultParams()
	cmos := []struct {
		name    string
		areaMM2 float64
		want    float64
	}{
		{"18x18 paper chip", 324, 56.5407665577},
		{"9x9 quarter chiplet", 81, 7.61614729688},
		{"4.5x4.5 sixteenth chiplet", 20.25, 1.57287131033},
	}
	for _, c := range cmos {
		if got := p.CMOSDieCost(c.areaMM2); !relClose(got, c.want) {
			t.Errorf("%s: CMOSDieCost(%g) = %.12g, want %.12g", c.name, c.areaMM2, got, c.want)
		}
	}
	interposer := []struct {
		name    string
		areaMM2 float64
		want    float64
	}{
		{"40x40", 1600, 18.5408506576}, // 500/(27.517835673 · 0.98)
		{"20x20", 400, 3.55808308029},
	}
	for _, c := range interposer {
		if got := p.InterposerCost(c.areaMM2); !relClose(got, c.want) {
			t.Errorf("%s: InterposerCost(%g) = %.12g, want %.12g", c.name, c.areaMM2, got, c.want)
		}
	}
}

// TestEq4System25DCostHandValues:
// C_2.5D = (n·(C_chiplet + C_bond) + C_interposer) / Y_bond^n.
// E.g. 4 chiplets of 81 mm² on a 40x40 interposer:
// (4·(7.61614729688 + 0.2) + 18.5408506576) / 0.99⁴ = $51.8484767026.
func TestEq4System25DCostHandValues(t *testing.T) {
	p := DefaultParams()
	cases := []struct {
		name              string
		n                 int
		chipletAreaMM2    float64
		interposerAreaMM2 float64
		want              float64
	}{
		{"4 chiplets on 40x40", 4, 81, 1600, 51.8484767026},
		{"16 chiplets on 20x20", 16, 20.25, 400, 37.4933732821},
	}
	for _, c := range cases {
		if got := p.System25DCost(c.n, c.chipletAreaMM2, c.interposerAreaMM2); !relClose(got, c.want) {
			t.Errorf("%s: System25DCost(%d, %g, %g) = %.12g, want %.12g",
				c.name, c.n, c.chipletAreaMM2, c.interposerAreaMM2, got, c.want)
		}
	}
	// Structural identity pinning the bond-yield denominator: de-yielded
	// costs differ by exactly the four extra chiplets,
	// C(8)·Y⁸ − C(4)·Y⁴ = 4·(c_die + c_bond).
	lhs := p.System25DCost(8, 81, 1600)*math.Pow(0.99, 8) - p.System25DCost(4, 81, 1600)*math.Pow(0.99, 4)
	rhs := 4 * (p.CMOSDieCost(81) + p.BondCost)
	if !relClose(lhs, rhs) {
		t.Errorf("Eq. (4) structure: C(8)·Y⁸ − C(4)·Y⁴ = %.12g, want 4·(c_die+c_bond) = %.12g", lhs, rhs)
	}
}
