package cost

import (
	"math"
	"testing"
)

// The TCO elaboration goldens below are computed by hand from the inline
// formulas (independent arithmetic, not a call back into this package) at
// DefaultParams/DefaultTCOParams, 45nm, n = 4 chiplets on the minimum
// 20 mm interposer, lane power 220 W, lane throughput 180 GIPS:
//
//	chiplet area   324/4 = 81 mm², edge 9 mm
//	CMOS die cost  5000 / (DPW(300,81) · (1+81·0.0025/3)⁻³)   = 7.61614729688
//	interposer     500 / (DPW(300,400) · 0.98)                = 3.55808308029
//	lane silicon   (4·(7.61614729688+0.2)+3.55808308029)/0.99⁴ = 36.2511106702
//	heatsink cap   40 / (0.12 + 0.25/(4·(0.9+0.8)²))          = 282.433422917 W
//	heatsink cost  10 + 0.05·282.433422917                    = 24.1216711459
//	lanes          floor((2000−60)/220) = 8; server 8·220+60  = 1820 W
//	server capex   1200 + 0.15·1820 + 8·(36.2511…+24.1216…)   = 1955.98225453
//	capex/yr       /3                                         = 651.994084843
//	energy/yr      1820 · 1.25 · 8766 · 0.10 / 1000           = 1994.265
//	TCO/yr         651.994084843 + 1994.265                   = 2646.25908484
//	$/GIPS·yr      2646.25908484 / (8·180)                    = 1.83767992003
//
// Compared with relClose (1e-9 relative), same as the Eq. (1)-(4) goldens.

func TestElaborateServerGolden(t *testing.T) {
	e, err := DefaultTCOParams().ElaborateServer(DefaultParams(),
		LaneDesign{Chiplets: 4, LanePowerW: 220, LaneGIPS: 180})
	if err != nil {
		t.Fatalf("ElaborateServer: %v", err)
	}
	check := func(name string, got, want float64) {
		t.Helper()
		if !relClose(got, want) {
			t.Errorf("%s = %.12g, want %.12g", name, got, want)
		}
	}
	if !e.Feasible || e.Reason != ReasonOK {
		t.Fatalf("elaboration infeasible: %+v", e)
	}
	if e.Node != "45nm" || e.Chiplets != 4 || e.LanesPerServer != 8 {
		t.Fatalf("wrong shape: node %q chiplets %d lanes %d", e.Node, e.Chiplets, e.LanesPerServer)
	}
	check("ChipletAreaMM2", e.ChipletAreaMM2, 81)
	check("InterposerEdgeMM", e.InterposerEdgeMM, 20)
	check("SiliconUSD", e.SiliconUSD, 36.2511106702)
	check("MaxLanePowerW", e.MaxLanePowerW, 282.433422917)
	check("HeatsinkUSD", e.HeatsinkUSD, 24.1216711459)
	check("ServerPowerW", e.ServerPowerW, 1820)
	check("ServerUSD", e.ServerUSD, 1955.98225453)
	check("CapexUSDPerYear", e.CapexUSDPerYear, 651.994084843)
	check("EnergyUSDPerYear", e.EnergyUSDPerYear, 1994.265)
	check("TCOUSDPerYear", e.TCOUSDPerYear, 2646.25908484)
	check("ServerGIPS", e.ServerGIPS, 1440)
	check("TCOPerGIPSYear", e.TCOPerGIPSYear, 1.83767992003)
}

// TestHeatsinkMonotone pins the two monotonicity properties the verify
// suite leans on: capacity is non-decreasing in chiplet count (same total
// silicon, more spread) and in chiplet area.
func TestHeatsinkMonotone(t *testing.T) {
	h := DefaultHeatsink()
	total := 324.0
	prev := 0.0
	for _, n := range []int{1, 4, 9, 16, 25, 36, 64, 100} {
		w := h.MaxLanePowerW(n, total/float64(n))
		if w <= prev {
			t.Fatalf("capacity not increasing at n=%d: %.6g <= %.6g", n, w, prev)
		}
		prev = w
	}
	prev = 0
	for _, a := range []float64{10, 40, 81, 160, 324} {
		w := h.MaxLanePowerW(4, a)
		if w <= prev {
			t.Fatalf("capacity not increasing at area=%g: %.6g <= %.6g", a, w, prev)
		}
		prev = w
	}
	if h.MaxLanePowerW(0, 81) != 0 || h.MaxLanePowerW(4, 0) != 0 {
		t.Fatalf("degenerate inputs must cap at zero")
	}
}

func TestElaborateInfeasibleReasons(t *testing.T) {
	p, tco := DefaultParams(), DefaultTCOParams()
	// 255 W monolithic lane exceeds the n=1 heatsink cap (~254.8 W) but
	// fits once the silicon is split four ways.
	mono, err := tco.ElaborateServer(p, LaneDesign{Chiplets: 1, LanePowerW: 255, LaneGIPS: 180})
	if err != nil {
		t.Fatalf("monolithic: %v", err)
	}
	if mono.Feasible || mono.Reason != ReasonHeatsink {
		t.Fatalf("monolithic 255 W lane should be heatsink-limited, got %+v", mono)
	}
	if mono.TCOPerGIPSYear != 0 || mono.LanesPerServer != 0 {
		t.Fatalf("infeasible elaboration must not report a TCO: %+v", mono)
	}
	split, err := tco.ElaborateServer(p, LaneDesign{Chiplets: 4, LanePowerW: 255, LaneGIPS: 180})
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if !split.Feasible {
		t.Fatalf("4-chiplet 255 W lane should be feasible, got %+v", split)
	}
	// A lane hotter than the whole budget cannot be powered at all.
	tight := tco
	tight.ServerPowerBudgetW = 200
	tight.Heatsink.SinkRCPerW = 0.01
	budget, err := tight.ElaborateServer(p, LaneDesign{Chiplets: 4, LanePowerW: 250, LaneGIPS: 180})
	if err != nil {
		t.Fatalf("budget: %v", err)
	}
	if budget.Feasible || budget.Reason != ReasonPowerBudget {
		t.Fatalf("expected power-budget rejection, got %+v", budget)
	}
}

func TestElaborateErrors(t *testing.T) {
	p, tco := DefaultParams(), DefaultTCOParams()
	ok := LaneDesign{Chiplets: 4, LanePowerW: 220, LaneGIPS: 180}
	cases := []struct {
		name string
		tco  TCOParams
		lane LaneDesign
	}{
		{"non-square count", tco, LaneDesign{Chiplets: 6, LanePowerW: 220, LaneGIPS: 180}},
		{"zero count", tco, LaneDesign{Chiplets: 0, LanePowerW: 220, LaneGIPS: 180}},
		{"zero power", tco, LaneDesign{Chiplets: 4, LaneGIPS: 180}},
		{"zero throughput", tco, LaneDesign{Chiplets: 4, LanePowerW: 220}},
		{"edge below minimum", tco, LaneDesign{Chiplets: 4, InterposerEdgeMM: 19, LanePowerW: 220, LaneGIPS: 180}},
		{"edge above maximum", tco, LaneDesign{Chiplets: 4, InterposerEdgeMM: 51, LanePowerW: 220, LaneGIPS: 180}},
		{"unknown node", func() TCOParams { c := tco; c.Node = "3nm"; return c }(), ok},
		{"bad PUE", func() TCOParams { c := tco; c.PUE = 0.5; return c }(), ok},
		{"bad depreciation", func() TCOParams { c := tco; c.DepreciationYears = 0; return c }(), ok},
		{"bad heatsink", func() TCOParams { c := tco; c.Heatsink.SinkRCPerW = 0; return c }(), ok},
		{"NaN energy price", func() TCOParams { c := tco; c.EnergyUSDPerKWH = math.NaN(); return c }(), ok},
	}
	for _, c := range cases {
		if _, err := c.tco.ElaborateServer(p, c.lane); err == nil {
			t.Errorf("%s: expected an error", c.name)
		}
	}
}

// TestSweepInteriorOptimum: at the base node with a 220 W lane the
// $/throughput objective is minimized at an interior chiplet count — the
// U-shape the search exploits (yield gains beat bonding overhead at first,
// then bond yield and interposer cost win).
func TestSweepInteriorOptimum(t *testing.T) {
	counts := []int{1, 4, 9, 16, 25, 36, 64}
	elabs, err := DefaultTCOParams().SweepChiplets(DefaultParams(),
		LaneDesign{LanePowerW: 220, LaneGIPS: 180}, counts)
	if err != nil {
		t.Fatalf("SweepChiplets: %v", err)
	}
	best := 0
	for i, e := range elabs {
		if !e.Feasible {
			t.Fatalf("n=%d unexpectedly infeasible: %s", e.Chiplets, e.Reason)
		}
		if e.TCOPerGIPSYear < elabs[best].TCOPerGIPSYear {
			best = i
		}
	}
	if best == 0 || best == len(elabs)-1 {
		t.Fatalf("optimum at the boundary (n=%d); want interior", elabs[best].Chiplets)
	}
}

func TestNodeTable(t *testing.T) {
	if _, err := NodeByName("45nm"); err != nil {
		t.Fatalf("45nm: %v", err)
	}
	if nd, err := NodeByName(""); err != nil || nd.Name != "45nm" {
		t.Fatalf("empty name must alias 45nm, got %+v, %v", nd, err)
	}
	if _, err := NodeByName("90nm"); err == nil {
		t.Fatalf("unknown node must error")
	}
	p := DefaultParams()
	for _, nd := range Nodes() {
		np := p.AtNode(nd)
		if got, want := np.CMOSWaferCost, p.CMOSWaferCost*nd.WaferCostScale; !relClose(got, want) {
			t.Errorf("%s wafer cost %g want %g", nd.Name, got, want)
		}
		if got, want := np.D0PerCM2, p.D0PerCM2*nd.D0Scale; !relClose(got, want) {
			t.Errorf("%s D0 %g want %g", nd.Name, got, want)
		}
	}
}

func TestTCOParamsValidate(t *testing.T) {
	if err := DefaultTCOParams().Validate(); err != nil {
		t.Fatalf("defaults must validate: %v", err)
	}
	bad := []func(*TCOParams){
		func(c *TCOParams) { c.Node = "nope" },
		func(c *TCOParams) { c.MaxLanesPerServer = 0 },
		func(c *TCOParams) { c.ServerPowerBudgetW = 0 },
		func(c *TCOParams) { c.PUE = 0 },
		func(c *TCOParams) { c.EnergyUSDPerKWH = -1 },
		func(c *TCOParams) { c.DepreciationYears = -2 },
		func(c *TCOParams) { c.ServerOverheadUSD = -1 },
		func(c *TCOParams) { c.ServerOverheadW = math.Inf(1) },
		func(c *TCOParams) { c.Heatsink.MaxCaseC = 10 },
	}
	for i, mutate := range bad {
		c := DefaultTCOParams()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected a validation error", i)
		}
	}
}
