package cost

import (
	"fmt"
	"math"
)

// Datacenter TCO model on top of the Eqs. (1)-(4) manufacturing costs, in
// the asic-cloud elaboration style: die yield and cost per tech node →
// heatsink feasibility → lanes packed per server → capex amortization plus
// energy at PUE → a $/throughput objective the organizer can optimize
// instead of Eq. (5).

// HoursPerYear is the mean Gregorian year in hours, used to annualize
// energy cost.
const HoursPerYear = 8766.0

// TechNode describes one process node as scale factors relative to the
// base Params (the paper's Table II node, labelled "45nm"): newer nodes
// shrink area and power for the same 256-core logic but cost more per
// wafer and start at a higher defect density.
type TechNode struct {
	// Name is the stable identifier ("45nm", "28nm", "16nm", "7nm").
	Name string
	// WaferCostScale multiplies Params.CMOSWaferCost.
	WaferCostScale float64
	// D0Scale multiplies Params.D0PerCM2.
	D0Scale float64
	// AreaScale multiplies die area for the same logic.
	AreaScale float64
	// PowerScale multiplies power for the same logic at the same
	// performance.
	PowerScale float64
}

// Nodes returns the built-in tech-node table, oldest first. The "45nm"
// entry is the identity (the paper's own node); the scaling ratios for the
// newer nodes are representative industry trajectories, chosen fixed and
// documented rather than fitted, so sweeps across nodes are deterministic.
func Nodes() []TechNode {
	return []TechNode{
		{Name: "45nm", WaferCostScale: 1.0, D0Scale: 1.0, AreaScale: 1.0, PowerScale: 1.0},
		{Name: "28nm", WaferCostScale: 1.3, D0Scale: 1.2, AreaScale: 0.52, PowerScale: 0.65},
		{Name: "16nm", WaferCostScale: 1.8, D0Scale: 1.6, AreaScale: 0.27, PowerScale: 0.42},
		{Name: "7nm", WaferCostScale: 2.8, D0Scale: 2.2, AreaScale: 0.14, PowerScale: 0.28},
	}
}

// NodeByName returns the named tech node; the empty name aliases the base
// "45nm" identity node.
func NodeByName(name string) (TechNode, error) {
	if name == "" {
		name = "45nm"
	}
	for _, nd := range Nodes() {
		if nd.Name == name {
			return nd, nil
		}
	}
	return TechNode{}, fmt.Errorf("cost: unknown tech node %q", name)
}

// AtNode returns the cost parameters rescaled to the given node.
func (p Params) AtNode(nd TechNode) Params {
	p.CMOSWaferCost *= nd.WaferCostScale
	p.D0PerCM2 *= nd.D0Scale
	return p
}

// TCOParams are the server/datacenter elaboration constants. The zero
// value is invalid; start from DefaultTCOParams. All fields carry JSON
// tags so the struct can sit verbatim in a search-configuration file —
// and therefore in the search cache key: unlike wall-clock knobs, every
// TCO constant changes which organization wins.
type TCOParams struct {
	// Node selects the tech node ("" = the base "45nm").
	Node string `json:"node,omitempty"`
	// Heatsink is the per-lane heatsink feasibility model.
	Heatsink HeatsinkParams `json:"heatsink"`
	// ServerOverheadUSD is the per-server cost of everything that is not a
	// lane: chassis, motherboard, NIC, assembly.
	ServerOverheadUSD float64 `json:"server_overhead_usd"`
	// ServerOverheadW is the constant per-server power draw (fans, NIC,
	// board losses) independent of lane count.
	ServerOverheadW float64 `json:"server_overhead_w"`
	// PSUUSDPerW is the power-delivery cost per watt of server power.
	PSUUSDPerW float64 `json:"psu_usd_per_w"`
	// MaxLanesPerServer bounds how many lanes fit mechanically.
	MaxLanesPerServer int `json:"max_lanes_per_server"`
	// ServerPowerBudgetW bounds total server power (PSU + rack feed).
	ServerPowerBudgetW float64 `json:"server_power_budget_w"`
	// PUE is the datacenter power usage effectiveness multiplier applied
	// to server power when billing energy.
	PUE float64 `json:"pue"`
	// EnergyUSDPerKWH is the electricity price.
	EnergyUSDPerKWH float64 `json:"energy_usd_per_kwh"`
	// DepreciationYears amortizes server capex into $/year.
	DepreciationYears float64 `json:"depreciation_years"`
}

// DefaultTCOParams returns a representative air-cooled datacenter: 2 kW
// 10-lane servers, PUE 1.25, $0.10/kWh, 3-year straight-line depreciation.
func DefaultTCOParams() TCOParams {
	return TCOParams{
		Heatsink:           DefaultHeatsink(),
		ServerOverheadUSD:  1200,
		ServerOverheadW:    60,
		PSUUSDPerW:         0.15,
		MaxLanesPerServer:  10,
		ServerPowerBudgetW: 2000,
		PUE:                1.25,
		EnergyUSDPerKWH:    0.10,
		DepreciationYears:  3,
	}
}

// Validate checks the parameters, including the node name.
func (t TCOParams) Validate() error {
	if _, err := NodeByName(t.Node); err != nil {
		return err
	}
	if err := t.Heatsink.Validate(); err != nil {
		return err
	}
	for _, v := range []float64{t.ServerOverheadUSD, t.ServerOverheadW,
		t.PSUUSDPerW, t.ServerPowerBudgetW, t.PUE, t.EnergyUSDPerKWH,
		t.DepreciationYears} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("cost: TCO parameter not finite")
		}
	}
	if t.ServerOverheadUSD < 0 || t.ServerOverheadW < 0 || t.PSUUSDPerW < 0 {
		return fmt.Errorf("cost: server overheads must be non-negative")
	}
	if t.MaxLanesPerServer < 1 {
		return fmt.Errorf("cost: MaxLanesPerServer must be at least 1")
	}
	if t.ServerPowerBudgetW <= 0 {
		return fmt.Errorf("cost: ServerPowerBudgetW must be positive")
	}
	if t.PUE < 1 {
		return fmt.Errorf("cost: PUE must be at least 1")
	}
	if t.EnergyUSDPerKWH < 0 {
		return fmt.Errorf("cost: EnergyUSDPerKWH must be non-negative")
	}
	if t.DepreciationYears <= 0 {
		return fmt.Errorf("cost: DepreciationYears must be positive")
	}
	return nil
}
