package cost

import (
	"fmt"
	"math"
)

// Heatsink feasibility model for one server lane (one 2.5D system plus its
// air-cooled heatsink), in the asic-cloud elaboration style: a candidate
// lane design is feasible only if the power its workload dissipates fits
// under the heatsink's capacity, and that capacity depends on how the
// silicon is organized. Splitting one die into n spaced chiplets lowers the
// spreading resistance into the sink base — each chiplet couples into a
// fringe of base area beyond its own footprint — so the maximum
// dissipatable power per lane is non-decreasing in chiplet count. This is
// the fleet-level analog of the paper's dark-silicon reclamation: the same
// silicon, reorganized, is allowed to burn more watts.
//
// The capacity model is a two-resistance series stack:
//
//	T_case - T_ambient = P·R_sink + (P/n)·R_spread / A_eff(one chiplet)
//
// where R_sink (°C/W) is the bulk fin-to-air resistance of the lane's
// heatsink, R_spread (°C·cm²/W) is the area-normalized TIM + base
// spreading resistance, and A_eff = (√A_chiplet + 2·f)² is the chiplet
// footprint grown by the fringe half-width f (cm) on every side. Solving
// for P at T_case = MaxCaseC gives MaxLanePowerW.
type HeatsinkParams struct {
	// MaxCaseC is the maximum allowed case (heat-spreader) temperature, °C.
	MaxCaseC float64 `json:"max_case_c"`
	// AmbientC is the inlet air temperature, °C.
	AmbientC float64 `json:"ambient_c"`
	// SinkRCPerW is the bulk fin-to-air thermal resistance, °C/W.
	SinkRCPerW float64 `json:"sink_rc_per_w"`
	// SpreadRCCM2PerW is the area-normalized TIM + base spreading
	// resistance, °C·cm²/W, divided by the total effective footprint of the
	// lane's chiplets.
	SpreadRCCM2PerW float64 `json:"spread_rc_cm2_per_w"`
	// FringeCM is the half-width (cm) of base area beyond a chiplet's own
	// footprint that still conducts its heat — the mechanism by which more,
	// smaller, spaced chiplets see a lower spreading resistance.
	FringeCM float64 `json:"fringe_cm"`
	// BaseCostUSD is the fixed cost of one lane heatsink.
	BaseCostUSD float64 `json:"base_cost_usd"`
	// CostUSDPerW is the marginal heatsink cost per watt of capacity
	// (bigger fins, better TIM).
	CostUSDPerW float64 `json:"cost_usd_per_w"`
}

// DefaultHeatsink returns a forced-air server heatsink: 40 °C of headroom
// over a 45 °C inlet, 0.12 °C/W fins, and a spreading term that caps a
// monolithic 18x18 mm die near 255 W but lets a 16-chiplet split of the
// same silicon approach 308 W.
func DefaultHeatsink() HeatsinkParams {
	return HeatsinkParams{
		MaxCaseC:        85,
		AmbientC:        45,
		SinkRCPerW:      0.12,
		SpreadRCCM2PerW: 0.25,
		FringeCM:        0.4,
		BaseCostUSD:     10,
		CostUSDPerW:     0.05,
	}
}

// Validate checks the parameters.
func (h HeatsinkParams) Validate() error {
	for _, v := range []float64{h.MaxCaseC, h.AmbientC, h.SinkRCPerW,
		h.SpreadRCCM2PerW, h.FringeCM, h.BaseCostUSD, h.CostUSDPerW} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("cost: heatsink parameter not finite")
		}
	}
	if h.MaxCaseC <= h.AmbientC {
		return fmt.Errorf("cost: heatsink MaxCaseC must exceed AmbientC")
	}
	if h.SinkRCPerW <= 0 {
		return fmt.Errorf("cost: heatsink SinkRCPerW must be positive")
	}
	if h.SpreadRCCM2PerW < 0 || h.FringeCM < 0 {
		return fmt.Errorf("cost: heatsink spreading parameters must be non-negative")
	}
	if h.BaseCostUSD < 0 || h.CostUSDPerW < 0 {
		return fmt.Errorf("cost: heatsink costs must be non-negative")
	}
	return nil
}

// MaxLanePowerW returns the maximum power (W) one lane of n chiplets, each
// of the given area (mm²), can dissipate with the case held at MaxCaseC.
// Non-decreasing in both chiplet count and chiplet area.
func (h HeatsinkParams) MaxLanePowerW(n int, chipletAreaMM2 float64) float64 {
	if n < 1 || chipletAreaMM2 <= 0 {
		return 0
	}
	edgeCM := math.Sqrt(chipletAreaMM2) / 10
	aEff := (edgeCM + 2*h.FringeCM) * (edgeCM + 2*h.FringeCM)
	r := h.SinkRCPerW + h.SpreadRCCM2PerW/(float64(n)*aEff)
	return (h.MaxCaseC - h.AmbientC) / r
}

// CostUSD returns the cost of a heatsink sized for the given lane: the fixed
// base plus the per-watt capacity term.
func (h HeatsinkParams) CostUSD(n int, chipletAreaMM2 float64) float64 {
	return h.BaseCostUSD + h.CostUSDPerW*h.MaxLanePowerW(n, chipletAreaMM2)
}
