package org

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/noc"
	"chiplet25d/internal/obs"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
	"chiplet25d/internal/thermal"
)

// plKey identifies a placement geometry on the 0.5 mm grid.
type plKey struct {
	n               int
	edge2, s12, s22 int // edge, s1, s2 in half-millimeters
}

func keyOf(pl floorplan.Placement) plKey {
	if pl.Is2D() {
		return plKey{n: 1}
	}
	return plKey{
		n:     pl.NumChiplets(),
		edge2: int(math.Round(pl.W * 2)),
		s12:   int(math.Round(pl.S1 * 2)),
		s22:   int(math.Round(pl.S2 * 2)),
	}
}

// evalKey identifies one peak-temperature evaluation.
type evalKey struct {
	pl    plKey
	fIdx  int
	cores int
}

// refPoint calibrates the scalar surrogate for one (placement, p): a full
// leakage-coupled simulation at one DVFS point yields the effective
// thermal resistance from total power to peak temperature; because every
// active core carries the same power, the power-map *shape* is identical
// across DVFS points and the resistance transfers.
type refPoint struct {
	rEff float64 // (peak - ambient) / totalW
}

// Searcher runs peak-temperature evaluations with memoization and the
// verified scalar surrogate, and exposes the greedy and exhaustive
// placement searches.
//
// A Searcher is NOT safe for concurrent use: its memo maps, surrogate
// calibration, RNG, and counters are all mutated without locks on the
// calling goroutine (the internal prefetch workers of the exhaustive scan
// run pure simulations only and merge results back on the caller). Callers
// that serve multiple goroutines — chipletd in particular — must construct
// one Searcher per request/goroutine rather than sharing one; sequential
// handoff between goroutines is fine. A cheap runtime detector panics on
// provable concurrent entry to the mutating paths.
//
// Long searches are cancelled cooperatively through the context installed
// with WithContext: every peak-temperature evaluation checks it, and the
// cancellation propagates into the CG iterations of in-flight thermal
// solves.
type Searcher struct {
	cfg Config
	ctx context.Context
	rng *rand.Rand

	// busy is the concurrent-misuse detector: set while a mutating
	// evaluation is on the stack (see beginUse).
	busy int32

	peakMemo map[evalKey]float64
	refMemo  map[plKey]map[int]refPoint // placement -> p -> calibration

	thermalSims   int
	surrogateHits int
	cgIterations  int64

	baseline     *Baseline
	baselineErr  error
	baselineDone bool
}

// NewSearcher validates the configuration and prepares a searcher.
func NewSearcher(cfg Config) (*Searcher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Searcher{
		cfg:      cfg,
		ctx:      context.Background(),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		peakMemo: make(map[evalKey]float64),
		refMemo:  make(map[plKey]map[int]refPoint),
	}, nil
}

// WithContext installs a cancellation context and returns the receiver for
// chaining. Every subsequent peak-temperature evaluation (and hence every
// search built on them) checks the context and aborts with its error once
// it is done; in-flight CG solves abort mid-iteration. Must be called
// before the search starts, from the goroutine running it.
func (s *Searcher) WithContext(ctx context.Context) *Searcher {
	if ctx == nil {
		ctx = context.Background()
	}
	s.ctx = ctx
	return s
}

// Config returns the searcher's configuration.
func (s *Searcher) Config() Config { return s.cfg }

// ThermalSims returns the number of full thermal simulations run so far.
func (s *Searcher) ThermalSims() int { return s.thermalSims }

// SurrogateHits returns the number of evaluations the surrogate decided.
func (s *Searcher) SurrogateHits() int { return s.surrogateHits }

// CGIterations returns the total conjugate-gradient iterations spent in
// full thermal simulations so far (the searcher's dominant CPU cost,
// exported for the /metrics endpoint).
func (s *Searcher) CGIterations() int64 { return s.cgIterations }

// beginUse is the cheap runtime detector backing the type's
// single-goroutine contract: it flags the searcher as mid-evaluation and
// panics when a second goroutine provably enters a mutating path at the
// same time. Sequential use — including handoff between goroutines — never
// trips it.
func (s *Searcher) beginUse() {
	if !atomic.CompareAndSwapInt32(&s.busy, 0, 1) {
		panic("org: Searcher used concurrently from multiple goroutines; construct one Searcher per goroutine (see the Searcher doc comment)")
	}
}

func (s *Searcher) endUse() { atomic.StoreInt32(&s.busy, 0) }

// startSpan begins a tracing span on the searcher's context and swaps the
// derived context in, so child evaluations (and the thermal/power spans
// they produce) nest under it. The returned func restores the previous
// context and ends the span; call it from the same goroutine, per the
// Searcher's single-goroutine contract. On an untraced context both the
// span and the cleanup are no-ops.
func (s *Searcher) startSpan(name string) (*obs.Span, func()) {
	ctx, sp := obs.Start(s.ctx, name)
	if sp == nil {
		return nil, func() {}
	}
	prev := s.ctx
	s.ctx = ctx
	return sp, func() {
		s.ctx = prev
		sp.End()
	}
}

// fIdxOf maps an operating point to its index in the frequency set.
func fIdxOf(op power.DVFSPoint) int {
	for i, p := range power.FrequencySet {
		if p == op {
			return i
		}
	}
	return -1
}

// nocPower returns the mesh power for a placement/op/p combination.
func (s *Searcher) nocPower(pl floorplan.Placement, op power.DVFSPoint, p int) (float64, error) {
	return s.nocPowerWith(s.cfg.Benchmark, pl, op, p)
}

func (s *Searcher) nocPowerWith(b perf.Benchmark, pl floorplan.Placement, op power.DVFSPoint, p int) (float64, error) {
	mesh, err := noc.MeshPower(pl, op, p, b.Traffic, s.cfg.Link, s.cfg.Router)
	if err != nil {
		return 0, err
	}
	return mesh.TotalW(), nil
}

// totalPowerAt solves the scalar leakage fixed point: total power of p
// active cores when the silicon sits at the temperature implied by thermal
// resistance rEff. Used only by the surrogate estimate.
func (s *Searcher) totalPowerAt(op power.DVFSPoint, p int, nocW, rEff float64) (totalW, peakC float64) {
	return s.totalPowerAtWith(s.cfg.Benchmark, op, p, nocW, rEff)
}

func (s *Searcher) totalPowerAtWith(b perf.Benchmark, op power.DVFSPoint, p int, nocW, rEff float64) (totalW, peakC float64) {
	lm := s.cfg.Leakage
	dyn := float64(p)*b.RefCoreW*(1-lm.FracAtRef)*power.DynScale(op) + nocW
	l0 := float64(p) * b.RefCoreW * lm.FracAtRef * power.LeakScale(op)
	amb := s.cfg.Thermal.AmbientC
	k := lm.TempCoeff
	den := 1 - rEff*l0*k
	if den <= 0.05 {
		den = 0.05 // thermal-runaway guard; the estimate saturates high
	}
	peakC = (amb + rEff*(dyn+l0*(1-k*lm.RefC))) / den
	totalW = dyn + l0*lm.Factor(peakC)
	return totalW, peakC
}

// simulate runs a full leakage-coupled thermal simulation for a placement.
func (s *Searcher) simulate(pl floorplan.Placement, op power.DVFSPoint, p int, nocW float64) (*power.SimResult, error) {
	return s.simulateWith(s.cfg.Benchmark, pl, op, p, nocW)
}

func (s *Searcher) simulateWith(b perf.Benchmark, pl floorplan.Placement, op power.DVFSPoint, p int, nocW float64) (*power.SimResult, error) {
	s.thermalSims++
	res, err := s.simulatePureWith(b, pl, op, p, nocW)
	if err == nil {
		s.cgIterations += int64(res.CGIterations)
	}
	return res, err
}

// simulatePure is the benchmark-default pure simulation used by parallel
// scans: it mutates no Searcher state and is safe to call concurrently.
func (s *Searcher) simulatePure(pl floorplan.Placement, op power.DVFSPoint, p int, nocW float64) (*power.SimResult, error) {
	return s.simulatePureWith(s.cfg.Benchmark, pl, op, p, nocW)
}

func (s *Searcher) simulatePureWith(b perf.Benchmark, pl floorplan.Placement, op power.DVFSPoint, p int, nocW float64) (*power.SimResult, error) {
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		return nil, err
	}
	tc := s.cfg.Thermal
	if s.cfg.ParallelWorkers > 1 && tc.KernelThreads == 0 {
		// The exhaustive scan already fans this simulation out across
		// ParallelWorkers goroutines; pin each solve to a serial kernel so
		// nested parallelism doesn't oversubscribe the machine. An explicit
		// KernelThreads in the config wins.
		tc.KernelThreads = 1
	}
	model, err := thermal.NewModel(stack, tc)
	if err != nil {
		return nil, err
	}
	cores, err := pl.Cores()
	if err != nil {
		return nil, err
	}
	active, err := power.MintempActive(p)
	if err != nil {
		return nil, err
	}
	w := power.Workload{
		RefCoreW: b.RefCoreW,
		Op:       op,
		Active:   active,
		NoCW:     nocW,
		Leakage:  s.cfg.Leakage,
	}
	return power.SimulateCtx(s.ctx, model, cores, w, s.cfg.SimOpts)
}

// PeakC returns the peak temperature of a placement at an operating point
// with p active cores, using the memo and, when it is decisive, the
// calibrated surrogate.
func (s *Searcher) PeakC(pl floorplan.Placement, op power.DVFSPoint, p int) (float64, error) {
	s.beginUse()
	defer s.endUse()
	if err := s.ctx.Err(); err != nil {
		return 0, fmt.Errorf("org: search canceled: %w", err)
	}
	fIdx := fIdxOf(op)
	if fIdx < 0 {
		return 0, fmt.Errorf("org: operating point %+v not in the DVFS table", op)
	}
	if p <= 0 || p > floorplan.NumCores {
		return 0, fmt.Errorf("org: active core count %d out of range", p)
	}
	pk := keyOf(pl)
	ek := evalKey{pl: pk, fIdx: fIdx, cores: p}
	if v, ok := s.peakMemo[ek]; ok {
		return v, nil
	}
	nocW, err := s.nocPower(pl, op, p)
	if err != nil {
		return 0, err
	}
	// Surrogate: if this (placement, p) was calibrated at another DVFS
	// point and the estimate is far from the threshold, decide without a
	// full simulation.
	if s.cfg.SurrogateMarginC >= 0 {
		if byP, ok := s.refMemo[pk]; ok {
			if ref, ok := byP[p]; ok {
				_, est := s.totalPowerAt(op, p, nocW, ref.rEff)
				if math.Abs(est-s.cfg.ThresholdC) > s.cfg.SurrogateMarginC {
					s.surrogateHits++
					s.peakMemo[ek] = est
					return est, nil
				}
			}
		}
	}
	res, err := s.simulate(pl, op, p, nocW)
	if err != nil {
		return 0, err
	}
	peak := res.PeakC
	s.peakMemo[ek] = peak
	if res.TotalPowerW > 0 {
		byP := s.refMemo[pk]
		if byP == nil {
			byP = make(map[int]refPoint)
			s.refMemo[pk] = byP
		}
		if _, ok := byP[p]; !ok {
			byP[p] = refPoint{rEff: (peak - s.cfg.Thermal.AmbientC) / res.TotalPowerW}
		}
	}
	return peak, nil
}

// Feasible reports whether the placement meets Eq. (6) at (op, p).
func (s *Searcher) Feasible(pl floorplan.Placement, op power.DVFSPoint, p int) (bool, float64, error) {
	peak, err := s.PeakC(pl, op, p)
	if err != nil {
		return false, 0, err
	}
	return peak <= s.cfg.ThresholdC, peak, nil
}

// Baseline computes (and memoizes) the 2D single-chip reference: the
// maximum IPS over all 40 (f, p) pairs whose simulated peak temperature
// meets the threshold.
func (s *Searcher) Baseline() (Baseline, error) {
	if s.baselineDone {
		return derefBaseline(s.baseline), s.baselineErr
	}
	s.baselineDone = true
	sp, end := s.startSpan("org.baseline")
	defer end()
	chip := floorplan.SingleChip()
	var best Baseline
	best.CostUSD = s.cfg.CostParams.PlacementCost(chip)
	for _, op := range power.FrequencySet {
		for _, p := range power.ActiveCoreCounts {
			ok, peak, err := s.Feasible(chip, op, p)
			if err != nil {
				s.baselineErr = err
				return Baseline{}, err
			}
			if !ok {
				continue
			}
			ips := s.cfg.Benchmark.IPS(op, p)
			if !best.Feasible || ips > best.BestIPS {
				best.Feasible = true
				best.BestIPS = ips
				best.Op = op
				best.ActiveCores = p
				best.PeakC = peak
			}
		}
	}
	sp.SetAttr("feasible", best.Feasible)
	sp.SetAttr("best_gips", best.BestIPS)
	s.baseline = &best
	return best, nil
}

func derefBaseline(b *Baseline) Baseline {
	if b == nil {
		return Baseline{}
	}
	return *b
}
