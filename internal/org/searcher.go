package org

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/obs"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
)

// plKey identifies a placement geometry on the 0.5 mm grid.
type plKey struct {
	n               int
	edge2, s12, s22 int // edge, s1, s2 in half-millimeters
}

func keyOf(pl floorplan.Placement) plKey {
	if pl.Is2D() {
		return plKey{n: 1}
	}
	return plKey{
		n:     pl.NumChiplets(),
		edge2: int(math.Round(pl.W * 2)),
		s12:   int(math.Round(pl.S1 * 2)),
		s22:   int(math.Round(pl.S2 * 2)),
	}
}

// evalKey identifies one peak-temperature evaluation.
type evalKey struct {
	pl    plKey
	fIdx  int
	cores int
}

// Searcher runs peak-temperature evaluations against an Engine — the
// sharded, singleflight-deduplicated simulation memo — and exposes the
// greedy, exhaustive, and annealing placement searches on top of it.
//
// Concurrency contract: the Engine underneath is safe for unbounded
// concurrent use, and so are the Searcher's evaluation methods (PeakC,
// PeakCWith, Feasible) and read-only accessors. The high-level searches
// (Optimize, FindPlacement, Baseline, ...) may each be called from any
// goroutine and internally fan out across Config.SearchWorkers /
// ParallelWorkers; running two high-level searches on one Searcher at the
// same time is also safe, though per-search counters then interleave.
// WithContext must be called before evaluations begin (it is not
// synchronized with in-flight calls).
//
// Determinism contract: for a fixed Config (seed included), every search
// result is bit-identical regardless of SearchWorkers, ParallelWorkers,
// kernel threads, or engine sharing — evaluation values are pure functions
// of their key (see Engine), restart RNG streams derive from the root seed
// and the restart coordinates rather than a shared sequence, and winners
// are selected by restart index. Only the effort counters (ThermalSims,
// SurrogateHits, CGIterations, engine hit/dedup tallies) may vary with
// parallelism, because parallel restarts can evaluate points a serial run
// never reaches.
//
// Long searches are cancelled cooperatively through the context installed
// with WithContext: every peak-temperature evaluation checks it, and the
// cancellation propagates into the CG iterations of in-flight thermal
// solves.
type Searcher struct {
	cfg   Config
	ctx   context.Context
	eng   *Engine
	audit *AuditLog // nil unless WithAudit installed one

	// Per-search effort counters (atomic: evaluations may run concurrently).
	thermalSims      atomic.Int64
	scalarHits       atomic.Int64
	spatialHits      atomic.Int64
	cgIterations     atomic.Int64
	engineHits       atomic.Int64
	engineDedupWaits atomic.Int64

	baseMu       sync.Mutex
	baseline     *Baseline
	baselineErr  error
	baselineDone bool
}

// NewSearcher validates the configuration and prepares a searcher with its
// own private evaluation engine.
func NewSearcher(cfg Config) (*Searcher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &Searcher{cfg: cfg, ctx: context.Background(), eng: eng}, nil
}

// NewSearcherWithEngine prepares a searcher backed by a shared engine (the
// chipletd process-wide memo tier). The engine's physics fingerprint must
// match the configuration's: a mismatch would silently evaluate on the
// wrong substrate, so it is an error.
func NewSearcherWithEngine(cfg Config, eng *Engine) (*Searcher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if eng == nil {
		return NewSearcher(cfg)
	}
	if fp := physFingerprint(cfg); fp != eng.Fingerprint() {
		return nil, fmt.Errorf("org: engine fingerprint mismatch: searcher config evaluates on a different physics substrate than the shared engine")
	}
	return &Searcher{cfg: cfg, ctx: context.Background(), eng: eng}, nil
}

// WithContext installs a cancellation context and returns the receiver for
// chaining. Every subsequent peak-temperature evaluation (and hence every
// search built on them) checks the context and aborts with its error once
// it is done; in-flight CG solves abort mid-iteration. Must be called
// before the search starts.
func (s *Searcher) WithContext(ctx context.Context) *Searcher {
	if ctx == nil {
		ctx = context.Background()
	}
	s.ctx = ctx
	return s
}

// WithAudit installs a convergence audit log and returns the receiver for
// chaining: every subsequent evaluation and search step records an event.
// A nil log disables recording (the default). Must be called before the
// search starts (it is not synchronized with in-flight calls).
func (s *Searcher) WithAudit(l *AuditLog) *Searcher {
	s.audit = l
	return s
}

// Audit returns the installed audit log (nil when auditing is disabled).
func (s *Searcher) Audit() *AuditLog { return s.audit }

// Config returns the searcher's configuration.
func (s *Searcher) Config() Config { return s.cfg }

// Engine returns the evaluation engine backing this searcher.
func (s *Searcher) Engine() *Engine { return s.eng }

// ThermalSims returns the number of full thermal simulations this
// searcher's evaluations computed so far (engine memo hits excluded).
func (s *Searcher) ThermalSims() int { return int(s.thermalSims.Load()) }

// SurrogateHits returns the number of evaluations any surrogate tier
// decided (scalar + spatial).
func (s *Searcher) SurrogateHits() int { return s.ScalarSurrogateHits() + s.SpatialSurrogateHits() }

// ScalarSurrogateHits returns the number of evaluations the scalar
// surrogate decided.
func (s *Searcher) ScalarSurrogateHits() int { return int(s.scalarHits.Load()) }

// SpatialSurrogateHits returns the number of evaluations the spatial
// compact model decided.
func (s *Searcher) SpatialSurrogateHits() int { return int(s.spatialHits.Load()) }

// CGIterations returns the total conjugate-gradient iterations spent in
// full thermal simulations computed by this searcher (the dominant CPU
// cost, exported for the /metrics endpoint).
func (s *Searcher) CGIterations() int64 { return s.cgIterations.Load() }

// EngineHits returns how many of this searcher's simulation lookups were
// answered from the engine memo.
func (s *Searcher) EngineHits() int64 { return s.engineHits.Load() }

// EngineDedupWaits returns how many of this searcher's simulation lookups
// joined another caller's in-flight computation.
func (s *Searcher) EngineDedupWaits() int64 { return s.engineDedupWaits.Load() }

// record folds one evaluation's engine stats into the per-search counters.
func (s *Searcher) record(st EvalStats) {
	if st.Sims > 0 {
		s.thermalSims.Add(int64(st.Sims))
		s.cgIterations.Add(int64(st.CGIterations))
	}
	switch st.Fidelity {
	case FidelityScalar:
		s.scalarHits.Add(1)
	case FidelitySpatial:
		s.spatialHits.Add(1)
	}
	if st.MemoHits > 0 {
		s.engineHits.Add(int64(st.MemoHits))
	}
	if st.DedupWaits > 0 {
		s.engineDedupWaits.Add(int64(st.DedupWaits))
	}
}

// fIdxOf maps an operating point to its index in the frequency set.
func fIdxOf(op power.DVFSPoint) int {
	for i, p := range power.FrequencySet {
		if p == op {
			return i
		}
	}
	return -1
}

// PeakC returns the peak temperature of a placement at an operating point
// with p active cores, using the engine memo and, when it is decisive, the
// calibrated scalar surrogate.
func (s *Searcher) PeakC(pl floorplan.Placement, op power.DVFSPoint, p int) (float64, error) {
	return s.peakCtx(s.ctx, s.cfg.Benchmark, pl, op, p)
}

// PeakCWith is PeakC for an explicit benchmark, letting one searcher (and
// its engine memo) evaluate several applications on shared placements —
// the multi-application flow.
func (s *Searcher) PeakCWith(b perf.Benchmark, pl floorplan.Placement, op power.DVFSPoint, p int) (float64, error) {
	return s.peakCtx(s.ctx, b, pl, op, p)
}

func (s *Searcher) peakCtx(ctx context.Context, b perf.Benchmark, pl floorplan.Placement, op power.DVFSPoint, p int) (float64, error) {
	peak, st, err := s.eng.PeakCPolicy(ctx, b, pl, op, p, s.cfg.evalPolicy())
	s.record(st)
	s.audit.evalEvent(pl, op, p, peak, st, err)
	return peak, err
}

// Feasible reports whether the placement meets Eq. (6) at (op, p).
func (s *Searcher) Feasible(pl floorplan.Placement, op power.DVFSPoint, p int) (bool, float64, error) {
	peak, err := s.PeakC(pl, op, p)
	if err != nil {
		return false, 0, err
	}
	return peak <= s.cfg.ThresholdC, peak, nil
}

func (s *Searcher) feasibleCtx(ctx context.Context, pl floorplan.Placement, op power.DVFSPoint, p int) (bool, float64, error) {
	peak, err := s.peakCtx(ctx, s.cfg.Benchmark, pl, op, p)
	if err != nil {
		return false, 0, err
	}
	return peak <= s.cfg.ThresholdC, peak, nil
}

// Baseline computes (and memoizes) the 2D single-chip reference: the
// maximum IPS over all 40 (f, p) pairs whose simulated peak temperature
// meets the threshold. Safe for concurrent callers; the first computes.
func (s *Searcher) Baseline() (Baseline, error) {
	s.baseMu.Lock()
	defer s.baseMu.Unlock()
	if s.baselineDone {
		return derefBaseline(s.baseline), s.baselineErr
	}
	s.baselineDone = true
	ctx, sp := obs.Start(s.ctx, "org.baseline")
	defer sp.End()
	chip := floorplan.SingleChip()
	var best Baseline
	best.CostUSD = s.cfg.CostParams.PlacementCost(chip)
	for _, op := range power.FrequencySet {
		for _, p := range power.ActiveCoreCounts {
			ok, peak, err := s.feasibleCtx(ctx, chip, op, p)
			if err != nil {
				s.baselineErr = err
				return Baseline{}, err
			}
			if !ok {
				continue
			}
			ips := s.cfg.Benchmark.IPS(op, p)
			if !best.Feasible || ips > best.BestIPS {
				best.Feasible = true
				best.BestIPS = ips
				best.Op = op
				best.ActiveCores = p
				best.PeakC = peak
			}
		}
	}
	sp.SetAttr("feasible", best.Feasible)
	sp.SetAttr("best_gips", best.BestIPS)
	s.baseline = &best
	return best, nil
}

func derefBaseline(b *Baseline) Baseline {
	if b == nil {
		return Baseline{}
	}
	return *b
}
