package org

import (
	"context"
	"testing"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
	"chiplet25d/internal/thermal"
)

// benchSearchConfig is the multi-start search benchmark workload: the fast
// test geometry with more restarts so restart-level parallelism has work to
// spread. Thermal kernels are pinned serial for every variant, so the
// serial-vs-workers comparison isolates restart-level parallelism rather
// than trading it against kernel threads.
func benchSearchConfig(b *testing.B, workers int) Config {
	b.Helper()
	bench, err := perf.ByName("cholesky")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(bench)
	cfg.Thermal.Nx, cfg.Thermal.Ny = 16, 16
	cfg.Thermal.KernelThreads = 1
	cfg.InterposerStepMM = 2
	cfg.Starts = 8
	cfg.Seed = 3
	cfg.SearchWorkers = workers
	return cfg
}

// benchmarkMultiStartSearch runs a cold full optimization per iteration (a
// fresh searcher and engine, so every iteration pays the real simulation
// cost) and reports the engine's intra-search memo hit ratio alongside the
// timing.
func benchmarkMultiStartSearch(b *testing.B, workers int) {
	cfg := benchSearchConfig(b, workers)
	var hits, misses int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSearcher(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Optimize(); err != nil {
			b.Fatal(err)
		}
		st := s.Engine().Stats()
		hits += st.Hits
		misses += st.Misses
	}
	if hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses), "memo-hit-ratio")
	}
}

func BenchmarkMultiStartSearchSerial(b *testing.B)   { benchmarkMultiStartSearch(b, 1) }
func BenchmarkMultiStartSearchWorkers2(b *testing.B) { benchmarkMultiStartSearch(b, 2) }
func BenchmarkMultiStartSearchWorkers4(b *testing.B) { benchmarkMultiStartSearch(b, 4) }
func BenchmarkMultiStartSearchWorkers8(b *testing.B) { benchmarkMultiStartSearch(b, 8) }

// BenchmarkMultiStartSearchWarmShared measures the same multi-start search
// over an already-warm process-wide engine — the chipletd steady state,
// where earlier requests populated the shared memo. Every restart's
// evaluations dedupe into memo hits, so the ratio against the cold serial
// benchmark is the wall-clock win the shared memo buys repeated searches
// (it holds even on a single-CPU host, unlike restart parallelism).
func BenchmarkMultiStartSearchWarmShared(b *testing.B) {
	cfg := benchSearchConfig(b, 1)
	eng, err := NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	warm, err := NewSearcherWithEngine(cfg, eng)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := warm.Optimize(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSearcherWithEngine(cfg, eng)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Optimize(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkMultiStartSearchMG runs the cold full optimization at a 32x32
// thermal grid — at the multigrid crossover, unlike the 16x16 fast grid the
// other search benchmarks use, where V-cycle overhead and the hierarchy
// setup cost (~14 ms per model at 32x32 vs ~2 ms for IC(0) alone) outweigh
// the iteration savings. The IC(0) variant is the baseline; the MG+warm
// variant is the full preconditioner + warm-start configuration, and their
// ratio is BENCH_5's mg_warm_search_speedup. warm-seeds/op reports how many
// full simulations started from a retained neighbor field; expect the ratio
// near 1.0 — see EXPERIMENTS.md on why the win is per cold solve, not per
// search, at this scale.
func benchmarkMultiStartSearchMG(b *testing.B, mgWarm bool) {
	cfg := benchSearchConfig(b, 1)
	cfg.Thermal.Nx, cfg.Thermal.Ny = 32, 32
	if mgWarm {
		cfg.Thermal.Preconditioner = thermal.PrecondMG
		cfg.WarmStart = true
	}
	var seeds, reuses int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSearcher(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Optimize(); err != nil {
			b.Fatal(err)
		}
		st := s.Engine().Stats()
		seeds += st.WarmSeeds
		reuses += st.ModelReuses
	}
	b.ReportMetric(float64(reuses)/float64(b.N), "model-reuses/op")
	if mgWarm {
		b.ReportMetric(float64(seeds)/float64(b.N), "warm-seeds/op")
	}
}

func BenchmarkMultiStartSearchSerial32(b *testing.B) { benchmarkMultiStartSearchMG(b, false) }
func BenchmarkMultiStartSearchMGWarm32(b *testing.B) { benchmarkMultiStartSearchMG(b, true) }

// benchmarkFullFidelitySearchMG is the same comparison in the full-fidelity
// regime (surrogate ladder off, every evaluation simulates) — the paper's
// original workflow, whose CPU cost the paper counts in hours. Here each
// placement is simulated at many operating points, so the retained models
// and neighbor fields actually recur: this is the regime the
// preconditioner + warm-start work targets. With the ladder on (the
// benchmarks above) each placement simulates roughly once and surrogates
// absorb the rest, leaving multigrid's hierarchy setup nothing to amortize
// against.
func benchmarkFullFidelitySearchMG(b *testing.B, mgWarm bool) {
	cfg := benchSearchConfig(b, 1)
	cfg.Thermal.Nx, cfg.Thermal.Ny = 32, 32
	cfg.SurrogateMarginC = -1 // full fidelity: every evaluation simulates
	if mgWarm {
		cfg.Thermal.Preconditioner = thermal.PrecondMG
		cfg.WarmStart = true
	}
	var seeds, reuses, sims int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSearcher(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Optimize(); err != nil {
			b.Fatal(err)
		}
		st := s.Engine().Stats()
		seeds += st.WarmSeeds
		reuses += st.ModelReuses
		sims += st.ThermalSims
	}
	b.ReportMetric(float64(sims)/float64(b.N), "full-sims/op")
	b.ReportMetric(float64(reuses)/float64(b.N), "model-reuses/op")
	if mgWarm {
		b.ReportMetric(float64(seeds)/float64(b.N), "warm-seeds/op")
	}
}

func BenchmarkSearchFullFidelity32(b *testing.B)       { benchmarkFullFidelitySearchMG(b, false) }
func BenchmarkSearchFullFidelity32MGWarm(b *testing.B) { benchmarkFullFidelitySearchMG(b, true) }

// BenchmarkEngineLookupHit measures a memoized engine lookup — the cost a
// deduplicated evaluation pays instead of a full simulation.
func BenchmarkEngineLookupHit(b *testing.B) {
	cfg := benchSearchConfig(b, 1)
	eng, err := NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pl := floorplan.SingleChip()
	op := power.FrequencySet[0]
	ctx := context.Background()
	if _, _, err := eng.Simulate(ctx, cfg.Benchmark, pl, op, 64); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Simulate(ctx, cfg.Benchmark, pl, op, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkSearchFidelity runs a cold full optimization per iteration with
// the given fidelity policy and reports the full-simulation count and the
// spatial-tier hit ratio per run. The pair of results (spatial on vs
// surrogates off) is what scripts/bench.sh turns into the
// full-CG-solve-reduction figure; DoE calibration solves are counted
// against the spatial run, so the ratio is honest end to end.
func benchmarkSearchFidelity(b *testing.B, spatial bool) {
	cfg := benchSearchConfig(b, 1)
	cfg.SpatialSurrogate = spatial
	if !spatial {
		cfg.SurrogateMarginC = -1 // full fidelity: every evaluation simulates
	}
	var sims, spatialHits, evals int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSearcher(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Optimize(); err != nil {
			b.Fatal(err)
		}
		sims += int64(s.ThermalSims())
		spatialHits += int64(s.SpatialSurrogateHits())
		evals += int64(s.ThermalSims() + s.SurrogateHits())
	}
	b.ReportMetric(float64(sims)/float64(b.N), "full-sims/op")
	if evals > 0 {
		b.ReportMetric(float64(spatialHits)/float64(evals), "spatial-hit-ratio")
	}
}

func BenchmarkSearchFullFidelity(b *testing.B) { benchmarkSearchFidelity(b, false) }
func BenchmarkSearchSpatialTier(b *testing.B)  { benchmarkSearchFidelity(b, true) }

// BenchmarkSpatialPredict measures a warm spatial-tier evaluation: model
// calibrated, kernel matrix cached — the steady-state cost of the cheapest
// fidelity tier (compare BenchmarkEngineLookupHit and the ~ms full solve).
func BenchmarkSpatialPredict(b *testing.B) {
	cfg := benchSearchConfig(b, 1)
	eng, err := NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := floorplan.PaperOrg(16, 1, 1, 2.5)
	if err != nil {
		b.Fatal(err)
	}
	op := power.FrequencySet[2]
	ctx := context.Background()
	if _, err := eng.SpatialPredictPeakC(ctx, cfg.Benchmark, pl, op, 160); err != nil {
		b.Fatal(err)
	}
	pol := EvalPolicy{ThresholdC: cfg.ThresholdC, ScalarMarginC: cfg.SurrogateMarginC, SpatialMarginC: cfg.SpatialMarginC, Spatial: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.PeakCPolicy(ctx, cfg.Benchmark, pl, op, 160, pol); err != nil {
			b.Fatal(err)
		}
	}
}
