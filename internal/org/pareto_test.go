package org

import (
	"testing"

	"chiplet25d/internal/power"
)

func TestParetoFrontProperties(t *testing.T) {
	s, err := NewSearcher(fastConfig(t, "hpccg"))
	if err != nil {
		t.Fatal(err)
	}
	front, err := s.ParetoFront()
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty Pareto front")
	}
	// Strictly increasing cost and IPS along the front; every point
	// respects the threshold.
	for i := range front {
		if front[i].PeakC > s.cfg.ThresholdC {
			t.Errorf("front point %d violates the threshold: %.1f", i, front[i].PeakC)
		}
		if i == 0 {
			continue
		}
		if front[i].CostUSD <= front[i-1].CostUSD {
			t.Errorf("front not sorted by cost at %d", i)
		}
		if front[i].IPS <= front[i-1].IPS {
			t.Errorf("dominated point survived at %d: %v after %v", i, front[i].IPS, front[i-1].IPS)
		}
	}
	// The front must contain the cheapest feasible organization and reach
	// the unconstrained best IPS for a benchmark that 2.5D fully unlocks.
	if front[0].NormCost > 0.7 {
		t.Errorf("cheapest front point %.3f should be near the 36%% saving", front[0].NormCost)
	}
	last := front[len(front)-1]
	bestIPS := 0.0
	for _, op := range power.FrequencySet {
		for _, p := range power.ActiveCoreCounts {
			if v := s.cfg.Benchmark.IPS(op, p); v > bestIPS {
				bestIPS = v
			}
		}
	}
	if last.IPS < 0.99*bestIPS {
		t.Errorf("front should reach the unconstrained optimum: %.1f vs %.1f", last.IPS, bestIPS)
	}
}

func TestParetoFilter(t *testing.T) {
	pts := []Organization{
		{CostUSD: 10, IPS: 100},
		{CostUSD: 12, IPS: 90}, // dominated
		{CostUSD: 15, IPS: 120},
		{CostUSD: 15, IPS: 110}, // dominated (same cost, slower)
		{CostUSD: 20, IPS: 120}, // dominated (same IPS, dearer)
	}
	front := paretoFilter(pts)
	if len(front) != 2 {
		t.Fatalf("front size = %d, want 2: %+v", len(front), front)
	}
	if front[0].CostUSD != 10 || front[1].CostUSD != 15 || front[1].IPS != 120 {
		t.Fatalf("wrong front: %+v", front)
	}
}

func TestMinFeasibleEdge(t *testing.T) {
	s, err := NewSearcher(fastConfig(t, "shock"))
	if err != nil {
		t.Fatal(err)
	}
	// Full throttle needs a large interposer; half throttle a small one.
	edgeFull, plFull, found, err := s.MinFeasibleEdge(16, power.FrequencySet[0], 256)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("full-throttle shock should fit on some 16-chiplet interposer")
	}
	if err := plFull.Validate(); err != nil {
		t.Fatal(err)
	}
	edgeHalf, _, found, err := s.MinFeasibleEdge(16, power.FrequencySet[2], 128)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("half-throttle shock should fit easily")
	}
	if edgeHalf >= edgeFull {
		t.Fatalf("lighter load should need a smaller interposer: %.1f vs %.1f", edgeHalf, edgeFull)
	}
	// A hopeless load on a capped edge grid: no result, no error.
	cfg := fastConfig(t, "shock")
	cfg.InterposerMaxMM = 22
	s2, err := NewSearcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, found, err := s2.MinFeasibleEdge(16, power.FrequencySet[0], 256); err != nil || found {
		t.Fatalf("expected (not found, nil), got (%v, %v)", found, err)
	}
}
