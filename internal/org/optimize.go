package org

import (
	"fmt"
	"math"
	"sort"

	"chiplet25d/internal/cost"
	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/obs"
	"chiplet25d/internal/power"
)

// combo is one (f, p, n, interposer-edge) combination of step 2 of the
// paper's approach; its objective value uses the cost of that edge.
type combo struct {
	fIdx int
	p    int
	n    int
	edge float64
	ips  float64
	cost float64
	obj  float64
	// elab is the server elaboration behind obj under ObjectiveTCO (nil
	// under Eq. (5)); the winner's copy lands in Organization.TCO.
	elab *cost.ServerElab
}

// edges returns the discretized interposer edges for a chiplet count,
// skipping edges too small to fit the chiplets plus guard bands.
func (s *Searcher) edges(n int) []float64 {
	var out []float64
	for e := s.cfg.InterposerMinMM; e <= s.cfg.InterposerMaxMM+1e-9; e += s.cfg.InterposerStepMM {
		if floorplan.SpacingSpan(n, e) < -1e-9 {
			continue
		}
		out = append(out, e)
	}
	return out
}

// buildCombos enumerates and sorts the (f, p, C_2.5D) combinations by
// ascending objective value (step 2). Ties break toward cheaper, then
// faster, then fewer chiplets — a deterministic refinement of the paper's
// unspecified tie order.
func (s *Searcher) buildCombos(base Baseline) []combo {
	tcoMode := s.cfg.ObjectiveMode == ObjectiveTCO
	var combos []combo
	for fIdx, op := range power.FrequencySet {
		for _, p := range power.ActiveCoreCounts {
			ips := s.cfg.Benchmark.IPS(op, p)
			// Under ObjectiveTCO the lane draws the a-priori nominal power
			// of (f, p): deterministic and temperature-independent, so the
			// ranking never depends on simulation order.
			laneW := 0.0
			if tcoMode {
				laneW = power.TotalNominal(s.cfg.Benchmark.RefCoreW, p, op, s.cfg.Leakage)
			}
			for _, n := range s.cfg.ChipletCounts {
				for _, e := range s.edges(n) {
					c := s.cfg.CostParams.Cost25DForInterposer(n, e)
					if s.cfg.MaxNormCost > 0 && c/base.CostUSD > s.cfg.MaxNormCost {
						continue
					}
					cb := combo{
						fIdx: fIdx, p: p, n: n, edge: e,
						ips: ips, cost: c,
					}
					if tcoMode {
						elab, err := s.cfg.TCO.ElaborateServer(s.cfg.CostParams, cost.LaneDesign{
							Chiplets:         n,
							InterposerEdgeMM: e,
							LanePowerW:       laneW,
							LaneGIPS:         ips,
						})
						// Geometry errors and heatsink/budget rejections both
						// remove the combination; the thermal walk never sees
						// lanes the datacenter could not cool or power.
						if err != nil || !elab.Feasible {
							continue
						}
						cb.obj = elab.TCOPerGIPSYear
						cb.elab = &elab
					} else {
						cb.obj = s.cfg.Objective.Alpha*base.BestIPS/ips +
							s.cfg.Objective.Beta*c/base.CostUSD
					}
					combos = append(combos, cb)
				}
			}
		}
	}
	sort.Slice(combos, func(i, j int) bool {
		a, b := combos[i], combos[j]
		if a.obj != b.obj {
			return a.obj < b.obj
		}
		if a.cost != b.cost {
			return a.cost < b.cost
		}
		if a.ips != b.ips {
			return a.ips > b.ips
		}
		if a.n != b.n {
			return a.n < b.n
		}
		return a.edge < b.edge
	})
	return combos
}

type fpnKey struct {
	fIdx, p, n int
}

// placementFinder abstracts greedy vs exhaustive placement search.
type placementFinder func(n int, edgeMM float64, op power.DVFSPoint, p int) (floorplan.Placement, float64, bool, error)

// Optimize runs the full multi-start greedy optimization (steps 1-3) and
// returns the first — hence objective-optimal — feasible organization.
func (s *Searcher) Optimize() (Result, error) {
	return s.optimize(s.FindPlacement)
}

// OptimizeExhaustive replaces the greedy placement search with the full
// grid scan; used to validate the greedy (Sec. III-D).
func (s *Searcher) OptimizeExhaustive() (Result, error) {
	return s.optimize(s.FindPlacementExhaustive)
}

func (s *Searcher) optimize(find placementFinder) (Result, error) {
	_, osp := obs.Start(s.ctx, "org.optimize")
	defer osp.End()
	base, err := s.Baseline()
	if err != nil {
		return Result{}, err
	}
	res := Result{Baseline: base}
	if !base.Feasible {
		return Result{}, fmt.Errorf("org: baseline single chip has no feasible (f, p) under %.1f °C; cannot normalize Eq. (5)", s.cfg.ThresholdC)
	}
	combos := s.buildCombos(base)
	// Monotonicity pruning: for a fixed (f, p, n), shrinking the interposer
	// only removes spacing, so once an edge fails, all smaller edges fail.
	failEdge := make(map[fpnKey]float64)
	for _, cb := range combos {
		key := fpnKey{cb.fIdx, cb.p, cb.n}
		if fe, ok := failEdge[key]; ok && cb.edge <= fe+1e-9 {
			continue
		}
		res.CombosTried++
		op := power.FrequencySet[cb.fIdx]
		pl, peak, found, err := find(cb.n, cb.edge, op, cb.p)
		if err != nil {
			return Result{}, err
		}
		if !found {
			if fe, ok := failEdge[key]; !ok || cb.edge > fe {
				failEdge[key] = cb.edge
			}
			continue
		}
		res.Feasible = true
		res.Best = Organization{
			N:            cb.n,
			S1:           pl.S1,
			S2:           pl.S2,
			S3:           pl.S3,
			InterposerMM: pl.W,
			Op:           op,
			ActiveCores:  cb.p,
			PeakC:        peak,
			IPS:          cb.ips,
			CostUSD:      cb.cost,
			NormPerf:     cb.ips / base.BestIPS,
			NormCost:     cb.cost / base.CostUSD,
			ObjValue:     cb.obj,
			TCO:          cb.elab,
			Placement:    pl,
		}
		break
	}
	res.ThermalSims = s.ThermalSims()
	res.ScalarSurrogateHits = s.ScalarSurrogateHits()
	res.SpatialSurrogateHits = s.SpatialSurrogateHits()
	res.SurrogateHits = res.ScalarSurrogateHits + res.SpatialSurrogateHits
	osp.SetAttr("combos_tried", res.CombosTried)
	osp.SetAttr("thermal_sims", res.ThermalSims)
	osp.SetAttr("surrogate_hits", res.SurrogateHits)
	osp.SetAttr("scalar_surrogate_hits", res.ScalarSurrogateHits)
	osp.SetAttr("spatial_surrogate_hits", res.SpatialSurrogateHits)
	osp.SetAttr("engine_memo_hits", s.EngineHits())
	osp.SetAttr("engine_dedup_waits", s.EngineDedupWaits())
	osp.SetAttr("feasible", res.Feasible)
	return res, nil
}

// MaxIPSAtEdge returns the maximum feasible IPS over all (f, p, n)
// combinations at a fixed interposer edge, the Fig. 6 quantity. The second
// return is the achieving organization; found is false when nothing fits.
func (s *Searcher) MaxIPSAtEdge(edgeMM float64) (Organization, bool, error) {
	base, err := s.Baseline()
	if err != nil {
		return Organization{}, false, err
	}
	type cand struct {
		fIdx, p int
		ips     float64
	}
	var cands []cand
	for fIdx := range power.FrequencySet {
		for _, p := range power.ActiveCoreCounts {
			cands = append(cands, cand{fIdx, p, s.cfg.Benchmark.IPS(power.FrequencySet[fIdx], p)})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ips > cands[j].ips })
	for _, c := range cands {
		op := power.FrequencySet[c.fIdx]
		for _, n := range s.cfg.ChipletCounts {
			if floorplan.SpacingSpan(n, edgeMM) < -1e-9 {
				continue
			}
			pl, peak, found, err := s.FindPlacement(n, edgeMM, op, c.p)
			if err != nil {
				return Organization{}, false, err
			}
			if !found {
				continue
			}
			cst := s.cfg.CostParams.Cost25DForInterposer(n, edgeMM)
			o := Organization{
				N: n, S1: pl.S1, S2: pl.S2, S3: pl.S3,
				InterposerMM: pl.W, Op: op, ActiveCores: c.p,
				PeakC: peak, IPS: c.ips, CostUSD: cst,
				Placement: pl,
			}
			if base.Feasible {
				o.NormPerf = c.ips / base.BestIPS
				o.NormCost = cst / base.CostUSD
			}
			return o, true, nil
		}
	}
	return Organization{}, false, nil
}

// MinObjectiveAtEdge returns the minimum Eq. (5) value achievable at a
// fixed interposer edge for the configured (α, β), the Fig. 7 quantity.
func (s *Searcher) MinObjectiveAtEdge(edgeMM float64) (float64, Organization, bool, error) {
	return s.MinObjectiveAtEdgeWith(s.cfg.Objective, edgeMM)
}

// MinObjectiveAtEdgeWith is MinObjectiveAtEdge for an explicit (α, β) pair,
// letting one searcher (and its memoized simulations) serve several weight
// choices, as Fig. 7 plots.
func (s *Searcher) MinObjectiveAtEdgeWith(o Objective, edgeMM float64) (float64, Organization, bool, error) {
	if err := o.Validate(); err != nil {
		return 0, Organization{}, false, err
	}
	base, err := s.Baseline()
	if err != nil {
		return 0, Organization{}, false, err
	}
	if !base.Feasible {
		return 0, Organization{}, false, fmt.Errorf("org: infeasible baseline")
	}
	type cand struct {
		fIdx, p int
		n       int
		obj     float64
		ips     float64
		cost    float64
	}
	var cands []cand
	for fIdx, op := range power.FrequencySet {
		for _, p := range power.ActiveCoreCounts {
			ips := s.cfg.Benchmark.IPS(op, p)
			for _, n := range s.cfg.ChipletCounts {
				if floorplan.SpacingSpan(n, edgeMM) < -1e-9 {
					continue
				}
				c := s.cfg.CostParams.Cost25DForInterposer(n, edgeMM)
				cands = append(cands, cand{
					fIdx: fIdx, p: p, n: n,
					obj:  o.Alpha*base.BestIPS/ips + o.Beta*c/base.CostUSD,
					ips:  ips,
					cost: c,
				})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].obj < cands[j].obj })
	for _, c := range cands {
		op := power.FrequencySet[c.fIdx]
		pl, peak, found, err := s.FindPlacement(c.n, edgeMM, op, c.p)
		if err != nil {
			return 0, Organization{}, false, err
		}
		if !found {
			continue
		}
		return c.obj, Organization{
			N: c.n, S1: pl.S1, S2: pl.S2, S3: pl.S3,
			InterposerMM: pl.W, Op: op, ActiveCores: c.p,
			PeakC: peak, IPS: c.ips, CostUSD: c.cost,
			NormPerf: c.ips / base.BestIPS, NormCost: c.cost / base.CostUSD,
			ObjValue: c.obj, Placement: pl,
		}, true, nil
	}
	return math.Inf(1), Organization{}, false, nil
}
