package org

import (
	"math"
	"testing"

	"chiplet25d/internal/power"
)

// Parallel exhaustive scanning must agree exactly with the serial scan (the
// workers run pure simulations; merging is deterministic in effect).
func TestParallelExhaustiveMatchesSerial(t *testing.T) {
	cfg := fastConfig(t, "canneal")
	serial, err := NewSearcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plS, peakS, foundS, err := serial.FindPlacementExhaustive(16, 32, power.FrequencySet[0], 224)
	if err != nil {
		t.Fatal(err)
	}
	par := cfg
	par.ParallelWorkers = 4
	pSearcher, err := NewSearcher(par)
	if err != nil {
		t.Fatal(err)
	}
	plP, peakP, foundP, err := pSearcher.FindPlacementExhaustive(16, 32, power.FrequencySet[0], 224)
	if err != nil {
		t.Fatal(err)
	}
	if foundS != foundP {
		t.Fatalf("feasibility disagreement: serial %v, parallel %v", foundS, foundP)
	}
	if foundS {
		if math.Abs(peakS-peakP) > 1e-9 {
			t.Fatalf("peak disagreement: %.6f vs %.6f", peakS, peakP)
		}
		if plS.S1 != plP.S1 || plS.S2 != plP.S2 {
			t.Fatalf("placement disagreement: (%g,%g) vs (%g,%g)", plS.S1, plS.S2, plP.S1, plP.S2)
		}
	}
	if pSearcher.ThermalSims() == 0 {
		t.Fatalf("parallel scan ran no simulations")
	}
}

// Race check: the parallel scan must be clean under the race detector (this
// test's value is in running with -race in CI).
func TestParallelExhaustiveRepeated(t *testing.T) {
	cfg := fastConfig(t, "swaptions")
	cfg.ParallelWorkers = 3
	s, err := NewSearcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, _, err := s.FindPlacementExhaustive(16, 30, power.FrequencySet[1], 192); err != nil {
			t.Fatal(err)
		}
	}
	// Second pass must be fully memoized.
	sims := s.ThermalSims()
	if _, _, _, err := s.FindPlacementExhaustive(16, 30, power.FrequencySet[1], 192); err != nil {
		t.Fatal(err)
	}
	if s.ThermalSims() != sims {
		t.Fatalf("memoization failed across parallel scans")
	}
}
