package org

import (
	"testing"

	"chiplet25d/internal/perf"
)

func multiAppConfig(t *testing.T) Config {
	t.Helper()
	cfg := fastConfig(t, "canneal")
	cfg.InterposerStepMM = 5
	return cfg
}

func mixOf(t *testing.T, weighted map[string]float64) []AppMix {
	t.Helper()
	var mix []AppMix
	for name, w := range weighted {
		b, err := perf.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		mix = append(mix, AppMix{Benchmark: b, Weight: w})
	}
	return mix
}

func TestOptimizeMultiAppRejectsBadMix(t *testing.T) {
	cfg := multiAppConfig(t)
	if _, err := OptimizeMultiApp(cfg, nil); err == nil {
		t.Errorf("expected error for empty mix")
	}
	mix := mixOf(t, map[string]float64{"canneal": 0})
	if _, err := OptimizeMultiApp(cfg, mix); err == nil {
		t.Errorf("expected error for zero total weight")
	}
	mix = mixOf(t, map[string]float64{"canneal": 1})
	mix[0].Weight = -1
	if _, err := OptimizeMultiApp(cfg, mix); err == nil {
		t.Errorf("expected error for negative weight")
	}
}

func TestOptimizeMultiAppSingleAppMix(t *testing.T) {
	cfg := multiAppConfig(t)
	res, err := OptimizeMultiApp(cfg, mixOf(t, map[string]float64{"canneal": 1}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("single-app mix should be feasible")
	}
	if len(res.PerApp) != 1 {
		t.Fatalf("per-app entries = %d", len(res.PerApp))
	}
	ao := res.PerApp[0]
	if ao.PeakC > cfg.ThresholdC {
		t.Errorf("chosen operating point violates the threshold: %.1f", ao.PeakC)
	}
	if ao.NormPerf < 1 {
		t.Errorf("2.5D should at least match the baseline, got %.2fx", ao.NormPerf)
	}
	if err := res.Placement.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeMultiAppMixedWorkload(t *testing.T) {
	cfg := multiAppConfig(t)
	cfg.Objective = Objective{Alpha: 0.5, Beta: 0.5}
	res, err := OptimizeMultiApp(cfg, mixOf(t, map[string]float64{
		"cholesky": 2,
		"canneal":  1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("mixed workload should be feasible")
	}
	if len(res.PerApp) != 2 {
		t.Fatalf("per-app entries = %d", len(res.PerApp))
	}
	for _, ao := range res.PerApp {
		if ao.PeakC > cfg.ThresholdC {
			t.Errorf("%s violates the threshold at %.1f °C", ao.Name, ao.PeakC)
		}
	}
	if res.NormCost <= 0 {
		t.Errorf("missing cost")
	}
	if res.ObjValue <= 0 {
		t.Errorf("missing objective value")
	}
}

// Weighting a thermally demanding application more heavily must not shrink
// the chosen interposer: the organization has to serve the hot app.
func TestOptimizeMultiAppWeightSensitivity(t *testing.T) {
	cfg := multiAppConfig(t)
	cfg.Objective = Objective{Alpha: 0.7, Beta: 0.3}
	cool, err := OptimizeMultiApp(cfg, mixOf(t, map[string]float64{
		"shock": 0.1, "lu.cont": 0.9,
	}))
	if err != nil {
		t.Fatal(err)
	}
	hot, err := OptimizeMultiApp(cfg, mixOf(t, map[string]float64{
		"shock": 0.9, "lu.cont": 0.1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !cool.Feasible || !hot.Feasible {
		t.Fatal("both mixes should be feasible")
	}
	if hot.InterposerMM < cool.InterposerMM-1e-9 {
		t.Errorf("hot-weighted mix chose a smaller interposer (%.1f) than the cool-weighted one (%.1f)",
			hot.InterposerMM, cool.InterposerMM)
	}
	// The hot mix should deliver a real shock improvement.
	for _, ao := range hot.PerApp {
		if ao.Name == "shock" && ao.NormPerf < 1.2 {
			t.Errorf("shock on the hot-weighted organization gains only %.2fx", ao.NormPerf)
		}
	}
}

func TestCandidatePlacements(t *testing.T) {
	pls := candidatePlacements(16, 36)
	if len(pls) == 0 {
		t.Fatal("no candidates at a 36 mm interposer")
	}
	for _, pl := range pls {
		if err := pl.Validate(); err != nil {
			t.Errorf("invalid candidate: %v", err)
		}
		if pl.W != 36 {
			t.Errorf("candidate edge = %v, want 36", pl.W)
		}
	}
	if got := candidatePlacements(4, 26); len(got) != 1 {
		t.Errorf("4-chiplet bucket should have exactly one placement, got %d", len(got))
	}
	if got := candidatePlacements(4, 19); got != nil {
		t.Errorf("infeasible edge should yield no candidates")
	}
}
