package org

import (
	"testing"

	"chiplet25d/internal/floorplan"
)

// TestModelCacheReuse pins the model cache's contract: same geometry key
// returns the identical *thermal.Model, a different key assembles fresh,
// and the ring evicts the oldest entry at capacity.
func TestModelCacheReuse(t *testing.T) {
	cfg := fastConfig(t, "cholesky")
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.models = newModelCache(2)

	pl4 := testPlacement(t)
	k4 := keyOf(pl4)
	m1, reused, err := e.model(pl4, k4)
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatal("first build reported as a reuse")
	}
	m2, reused, err := e.model(pl4, k4)
	if err != nil {
		t.Fatal(err)
	}
	if !reused || m2 != m1 {
		t.Fatalf("second lookup: reused=%v, same model=%v; want a cache hit returning the identical model", reused, m2 == m1)
	}

	// Two more geometries overflow the 2-slot ring and evict pl4.
	plA, err := floorplan.PaperOrg(4, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	plB, err := floorplan.PaperOrg(16, 0.5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, reused, err = e.model(plA, keyOf(plA)); err != nil || reused {
		t.Fatalf("new geometry A: reused=%v err=%v", reused, err)
	}
	if _, reused, err = e.model(plB, keyOf(plB)); err != nil || reused {
		t.Fatalf("new geometry B: reused=%v err=%v", reused, err)
	}
	m3, reused, err := e.model(pl4, k4)
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatal("evicted geometry still reported as resident")
	}
	if m3 == m1 {
		t.Fatal("evicted geometry returned the stale model pointer")
	}
}
