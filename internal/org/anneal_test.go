package org

import (
	"math"
	"testing"

	"chiplet25d/internal/power"
)

func TestAnnealingFindsFeasiblePlacement(t *testing.T) {
	s, err := NewSearcher(fastConfig(t, "canneal"))
	if err != nil {
		t.Fatal(err)
	}
	pl, peak, found, err := s.FindPlacementAnnealing(16, 40, power.FrequencySet[2], 96, DefaultAnnealParams())
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("annealing should find a feasible placement for a cool workload")
	}
	if peak > s.cfg.ThresholdC {
		t.Fatalf("returned placement violates the threshold: %.1f", peak)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAnnealingInfeasibleCase(t *testing.T) {
	s, err := NewSearcher(fastConfig(t, "shock"))
	if err != nil {
		t.Fatal(err)
	}
	_, _, found, err := s.FindPlacementAnnealing(16, 20, power.FrequencySet[0], 256, DefaultAnnealParams())
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("full-throttle shock on a minimal interposer must stay infeasible")
	}
	// Edge too small for the chiplets: no placement, no error.
	_, _, found, err = s.FindPlacementAnnealing(16, 19, power.FrequencySet[4], 32, DefaultAnnealParams())
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("19 mm interposer cannot host 16 chiplets")
	}
}

func TestAnnealingDelegatesFor4Chiplets(t *testing.T) {
	s, err := NewSearcher(fastConfig(t, "canneal"))
	if err != nil {
		t.Fatal(err)
	}
	pl, _, found, err := s.FindPlacementAnnealing(4, 30, power.FrequencySet[2], 96, DefaultAnnealParams())
	if err != nil {
		t.Fatal(err)
	}
	if !found || pl.NumChiplets() != 4 {
		t.Fatalf("4-chiplet delegation failed: found=%v n=%d", found, pl.NumChiplets())
	}
}

func TestOptimizeAnnealingMatchesGreedy(t *testing.T) {
	cfgG := fastConfig(t, "cholesky")
	g, err := NewSearcher(cfgG)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := g.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewSearcher(cfgG)
	if err != nil {
		t.Fatal(err)
	}
	an, err := a.OptimizeAnnealing(DefaultAnnealParams())
	if err != nil {
		t.Fatal(err)
	}
	if gr.Feasible != an.Feasible {
		t.Fatalf("feasibility disagreement: greedy %v, annealing %v", gr.Feasible, an.Feasible)
	}
	if !gr.Feasible {
		return
	}
	if gr.Best.Op != an.Best.Op || gr.Best.ActiveCores != an.Best.ActiveCores ||
		gr.Best.N != an.Best.N || math.Abs(gr.Best.InterposerMM-an.Best.InterposerMM) > 1e-9 {
		t.Fatalf("annealing optimum %+v differs from greedy %+v", an.Best, gr.Best)
	}
}

func TestAnnealingZeroEvalBudgetUsesDefaults(t *testing.T) {
	s, err := NewSearcher(fastConfig(t, "canneal"))
	if err != nil {
		t.Fatal(err)
	}
	_, _, found, err := s.FindPlacementAnnealing(16, 40, power.FrequencySet[2], 96, AnnealParams{})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("default-parameter annealing should still find the easy placement")
	}
}
