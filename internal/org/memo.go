package org

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Engine memo export/import: the sharding layer's view of the simulation
// memo. Every memoized simulation gets a canonical, content-addressed key
// hash, and an engine can both serve its resident records to peers
// (MemoFetch) and pull records from the fingerprint's owning peer before
// simulating locally (SetPeerFetch). The exchange needs no invalidation
// protocol: a SimRecord is a pure function of its key and the engine's
// physics fingerprint (the engine's determinism contract), so a fetched
// record is bit-identical to what a local simulation would have produced,
// immutable for the life of the fingerprint.

// PeerFetchFunc asks the cluster for a memoized simulation before computing
// it locally: fpHash identifies the engine's physics substrate
// (FingerprintHash) and keyHash the simulation (the canonical memo key
// hash). Implementations return ok=false on miss, timeout, or any transport
// failure — the engine then falls back to simulating locally, so a dead
// peer degrades to correct-but-cold.
type PeerFetchFunc func(ctx context.Context, fpHash, keyHash string) (SimRecord, bool)

// memoKeyString canonicalizes an engineKey: every field that identifies a
// simulation, in a fixed order, independent of struct layout. The "v1"
// tag versions the format so nodes from mixed builds never exchange records
// under drifted addresses.
func memoKeyString(k engineKey) string {
	return fmt.Sprintf("sim|v1|bench=%s|ref=%g|traffic=%g|n=%d|edge2=%d|s12=%d|s22=%d|f=%d|p=%d",
		k.bench.name, k.bench.refCoreW, k.bench.traffic,
		k.ek.pl.n, k.ek.pl.edge2, k.ek.pl.s12, k.ek.pl.s22, k.ek.fIdx, k.ek.cores)
}

// memoKeyHash is the content address of one simulation within an engine.
func memoKeyHash(k engineKey) string {
	h := sha256.Sum256([]byte(memoKeyString(k)))
	return hex.EncodeToString(h[:])
}

// hashFingerprint content-addresses a physics fingerprint for use in URLs
// and rendezvous hashing (the raw fingerprint is a long %#v dump).
func hashFingerprint(fp string) string {
	h := sha256.Sum256([]byte(fp))
	return hex.EncodeToString(h[:])
}

// FingerprintHash returns the content address of the engine's physics
// fingerprint — the identity the sharding layer routes on.
func (e *Engine) FingerprintHash() string { return e.fpHash }

// SetPeerFetch installs (or replaces) the peer-fetch hook consulted on
// every memo miss before a local simulation runs. Safe for concurrent use;
// idempotent re-installation is the expected call pattern (the serve layer
// attaches the hook on every engine lookup).
func (e *Engine) SetPeerFetch(fn PeerFetchFunc) {
	if fn == nil {
		return
	}
	e.peerFetch.Store(&fn)
}

// MemoFetch returns the resident simulation record addressed by keyHash,
// if any. Only successfully completed entries are indexed, so a hit is
// always a finished, error-free record.
func (e *Engine) MemoFetch(keyHash string) (SimRecord, bool) {
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		k, ok := sh.hashes[keyHash]
		if !ok {
			sh.mu.Unlock()
			continue
		}
		ent := sh.sims[k]
		sh.mu.Unlock()
		if ent == nil {
			return SimRecord{}, false
		}
		select {
		case <-ent.done:
			if ent.err == nil {
				return ent.rec, true
			}
		default:
		}
		return SimRecord{}, false
	}
	return SimRecord{}, false
}

// MemoKeyHashes returns up to limit resident memo key hashes (completed
// entries only), in no particular order. Debug/benchmark plumbing for the
// GET /v1/memo peer-fetch endpoint.
func (e *Engine) MemoKeyHashes(limit int) []string {
	var out []string
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for h := range sh.hashes {
			if len(out) >= limit {
				sh.mu.Unlock()
				return out
			}
			out = append(out, h)
		}
		sh.mu.Unlock()
	}
	return out
}

// indexMemoKey records the hash → key mapping for a completed, successful
// entry so MemoFetch can answer peers in O(1) per shard.
func (e *Engine) indexMemoKey(sh *engineShard, k engineKey, keyHash string) {
	sh.mu.Lock()
	sh.hashes[keyHash] = k
	sh.mu.Unlock()
}
