package org

import (
	"testing"

	"chiplet25d/internal/cost"
	"chiplet25d/internal/power"
)

func TestObjectiveModeValidate(t *testing.T) {
	cfg := fastConfig(t, "cholesky")
	for _, mode := range []string{"", ObjectiveEq5, ObjectiveTCO} {
		c := cfg
		c.ObjectiveMode = mode
		if err := c.Validate(); err != nil {
			t.Errorf("mode %q: %v", mode, err)
		}
	}
	bad := cfg
	bad.ObjectiveMode = "dollars"
	if err := bad.Validate(); err == nil {
		t.Errorf("unknown mode must fail validation")
	}
	bad = cfg
	bad.ObjectiveMode = ObjectiveTCO
	bad.TCO.PUE = 0.3
	if err := bad.Validate(); err == nil {
		t.Errorf("tco mode must validate TCO params")
	}
}

// TestOptimizeTCOMode runs the search under the TCO objective: the winner
// must carry a feasible server elaboration whose $/GIPS matches ObjValue,
// respect the heatsink capacity for its organization, and still meet the
// thermal threshold. It must also be the minimum-TCO combination among all
// thermally feasible ones the Eq. (5) search would consider — checked
// indirectly: every strictly cheaper combination in the ranking was tried
// and rejected, which optimize's first-feasible-wins contract guarantees.
func TestOptimizeTCOMode(t *testing.T) {
	cfg := fastConfig(t, "cholesky")
	cfg.ObjectiveMode = ObjectiveTCO
	s, err := NewSearcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("TCO search found no feasible organization")
	}
	best := res.Best
	if best.TCO == nil {
		t.Fatal("TCO-mode winner must carry its server elaboration")
	}
	e := best.TCO
	if !e.Feasible || e.Reason != cost.ReasonOK {
		t.Fatalf("winner elaboration infeasible: %+v", e)
	}
	if best.ObjValue != e.TCOPerGIPSYear {
		t.Fatalf("ObjValue %v != elaboration $/GIPS %v", best.ObjValue, e.TCOPerGIPSYear)
	}
	if e.Chiplets != best.N {
		t.Fatalf("elaboration chiplets %d != winner N %d", e.Chiplets, best.N)
	}
	if best.PeakC > cfg.ThresholdC {
		t.Fatalf("winner violates the thermal threshold: %.2f > %.2f", best.PeakC, cfg.ThresholdC)
	}
	laneW := power.TotalNominal(cfg.Benchmark.RefCoreW, best.ActiveCores, best.Op, cfg.Leakage)
	nd, err := cost.NodeByName(cfg.TCO.Node)
	if err != nil {
		t.Fatal(err)
	}
	if got := laneW * nd.PowerScale; e.LanePowerW != got {
		t.Fatalf("elaboration lane power %v != nominal draw %v", e.LanePowerW, got)
	}
	if e.LanePowerW > e.MaxLanePowerW {
		t.Fatalf("winner exceeds heatsink capacity: %v > %v", e.LanePowerW, e.MaxLanePowerW)
	}

	// The Eq. (5) search over the same configuration must not carry an
	// elaboration, and its winner may differ.
	cfg2 := cfg
	cfg2.ObjectiveMode = ""
	s2, err := NewSearcher(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Best.TCO != nil {
		t.Fatalf("Eq. (5) winner must not carry a TCO elaboration")
	}
}

// TestBuildCombosTCOOrdering: under ObjectiveTCO the combo list is sorted
// by ascending $/GIPS and every entry passed the heatsink filter.
func TestBuildCombosTCOOrdering(t *testing.T) {
	cfg := fastConfig(t, "cholesky")
	cfg.ObjectiveMode = ObjectiveTCO
	s, err := NewSearcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	combos := s.buildCombos(base)
	if len(combos) == 0 {
		t.Fatal("no TCO combos")
	}
	for i, cb := range combos {
		if cb.elab == nil {
			t.Fatalf("combo %d missing elaboration", i)
		}
		if !cb.elab.Feasible {
			t.Fatalf("combo %d failed the datacenter filter: %s", i, cb.elab.Reason)
		}
		if cb.obj != cb.elab.TCOPerGIPSYear {
			t.Fatalf("combo %d obj %v != elaboration %v", i, cb.obj, cb.elab.TCOPerGIPSYear)
		}
		if i > 0 && cb.obj < combos[i-1].obj {
			t.Fatalf("combos not sorted at %d: %v < %v", i, cb.obj, combos[i-1].obj)
		}
	}
}
