package org

import (
	"sync"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/thermal"
)

// defaultModelCache is the number of assembled thermal models the engine
// retains, keyed by placement geometry. Every full simulation previously
// paid model assembly again — cheap for IC(0) (~2 ms at 32x32) but the
// dominant cost of the multigrid path, whose hierarchy setup (Galerkin
// coarse operators, coarsest-level Cholesky) runs ~7x the base assembly.
// Reuse hits whenever one placement is simulated at several operating
// points close together: the DoE calibration (three ops per geometry),
// corpus-style repeated evaluations, and the surrogate escalation pattern.
// Measured on the multi-start search itself, recurrence is inherently
// sparse (~7% of sims — restarts at different operating points walk
// largely disjoint spacing points, so raising the capacity does not raise
// the hit count), which keeps the default small; memory bounds it from
// the other side, a 64x64 multigrid model being tens of MB.
const defaultModelCache = 16

// modelCache is a bounded ring of assembled thermal models keyed by exact
// placement geometry. Unlike the warm-start field cache (warm.go), reuse
// here is bit-exact, not merely tolerance-bounded: a Model is immutable
// after assembly and fully determined by (stack, thermal config), its
// pooled workspaces isolate concurrent solves (the TestConcurrentSolves
// contract), and a freshly assembled model produces the identical factors
// and hierarchy. The cache therefore runs unconditionally — it cannot
// change any result, only skip redundant assembly.
//
// Two goroutines missing on the same key may both assemble; the duplicate
// build is wasted work, not a correctness problem, and the sim memo's
// singleflight already collapses identical evaluations upstream of here.
type modelCache struct {
	mu    sync.Mutex
	slots []modelSlot
	next  int // slot the next put overwrites (oldest entry)
}

type modelSlot struct {
	used bool
	key  plKey
	m    *thermal.Model
}

// newModelCache builds a ring of the given capacity (nil when
// non-positive, which disables reuse).
func newModelCache(capacity int) *modelCache {
	if capacity <= 0 {
		return nil
	}
	return &modelCache{slots: make([]modelSlot, capacity)}
}

// get returns the retained model for key k, or nil.
func (c *modelCache) get(k plKey) *thermal.Model {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.slots {
		if s := &c.slots[i]; s.used && s.key == k {
			return s.m
		}
	}
	return nil
}

// put retains model m for key k, overwriting the oldest slot. A concurrent
// duplicate of an already-retained key is left in place (first build wins,
// both are identical).
func (c *modelCache) put(k plKey, m *thermal.Model) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.slots {
		if s := &c.slots[i]; s.used && s.key == k {
			return
		}
	}
	s := &c.slots[c.next]
	s.used = true
	s.key = k
	s.m = m
	c.next = (c.next + 1) % len(c.slots)
}

// model returns the assembled thermal model for placement pl, reusing the
// cached one when its geometry key is resident and assembling (and
// retaining) it otherwise. The returned bool reports a cache hit.
func (e *Engine) model(pl floorplan.Placement, k plKey) (*thermal.Model, bool, error) {
	if m := e.models.get(k); m != nil {
		return m, true, nil
	}
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		return nil, false, err
	}
	m, err := thermal.NewModel(stack, e.phys.Thermal)
	if err != nil {
		return nil, false, err
	}
	e.models.put(k, m)
	return m, false, nil
}
