package org

import (
	"context"
	"math"
	"sync"
	"testing"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/power"
)

// sameResult compares everything the determinism contract covers: the
// decision outputs (feasibility, chosen organization, baseline, combos
// walked). The effort counters (ThermalSims, SurrogateHits) are explicitly
// excluded — parallel restarts may evaluate points a serial run never
// reaches, so only the *outcome* is pinned, not the work done.
func sameResult(t *testing.T, a, b Result, label string) {
	t.Helper()
	if a.Feasible != b.Feasible {
		t.Fatalf("%s: feasibility %v vs %v", label, a.Feasible, b.Feasible)
	}
	if a.Baseline != b.Baseline {
		t.Fatalf("%s: baseline %+v vs %+v", label, a.Baseline, b.Baseline)
	}
	if a.CombosTried != b.CombosTried {
		t.Fatalf("%s: combos tried %d vs %d", label, a.CombosTried, b.CombosTried)
	}
	ba, bb := a.Best, b.Best
	if ba.N != bb.N || ba.S1 != bb.S1 || ba.S2 != bb.S2 || ba.S3 != bb.S3 ||
		ba.InterposerMM != bb.InterposerMM || ba.Op != bb.Op ||
		ba.ActiveCores != bb.ActiveCores || ba.PeakC != bb.PeakC ||
		ba.IPS != bb.IPS || ba.CostUSD != bb.CostUSD ||
		ba.NormPerf != bb.NormPerf || ba.NormCost != bb.NormCost ||
		ba.ObjValue != bb.ObjValue {
		t.Fatalf("%s: best organization\n  %+v\nvs\n  %+v", label, ba, bb)
	}
}

// The headline golden test of the concurrent search: parallel multi-start
// greedy must return the bit-identical Result as the serial path for a
// fixed seed, at every worker count.
func TestParallelRestartsMatchSerial(t *testing.T) {
	cfg := fastConfig(t, "cholesky")
	serial, err := NewSearcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		pc := cfg
		pc.SearchWorkers = workers
		s, err := NewSearcher(pc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Optimize()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sameResult(t, want, got, "workers="+string(rune('0'+workers)))
	}
}

// Parallel FindPlacement must agree with serial on the found placement and
// peak for each individual (n, edge, f, p) query too, not just end to end.
func TestParallelFindPlacementMatchesSerial(t *testing.T) {
	cfg := fastConfig(t, "canneal")
	serial, err := NewSearcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par := cfg
	par.SearchWorkers = 4
	ps, err := NewSearcher(par)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		edge float64
		fIdx int
		p    int
	}{
		{32, 0, 224}, {40, 2, 96}, {26, 1, 160}, {50, 0, 256},
	}
	for _, c := range cases {
		plS, peakS, foundS, err := serial.FindPlacement(16, c.edge, power.FrequencySet[c.fIdx], c.p)
		if err != nil {
			t.Fatal(err)
		}
		plP, peakP, foundP, err := ps.FindPlacement(16, c.edge, power.FrequencySet[c.fIdx], c.p)
		if err != nil {
			t.Fatal(err)
		}
		if foundS != foundP {
			t.Fatalf("edge=%g f=%d p=%d: found %v vs %v", c.edge, c.fIdx, c.p, foundS, foundP)
		}
		if foundS && (plS.S1 != plP.S1 || plS.S2 != plP.S2 || plS.S3 != plP.S3 ||
			plS.W != plP.W || math.Abs(peakS-peakP) > 0) {
			t.Fatalf("edge=%g f=%d p=%d: placement/peak disagreement: (%+v, %v) vs (%+v, %v)",
				c.edge, c.fIdx, c.p, plS, peakS, plP, peakP)
		}
	}
}

// Searchers sharing one engine (the chipletd arrangement) must still match
// the private-engine result, even when they run concurrently.
func TestSharedEngineSearchersMatchPrivate(t *testing.T) {
	cfg := fastConfig(t, "hpccg")
	private, err := NewSearcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := private.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const searchers = 3
	results := make([]Result, searchers)
	errs := make([]error, searchers)
	var wg sync.WaitGroup
	for i := 0; i < searchers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := NewSearcherWithEngine(cfg, eng)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = s.Optimize()
		}(i)
	}
	wg.Wait()
	for i := 0; i < searchers; i++ {
		if errs[i] != nil {
			t.Fatalf("searcher %d: %v", i, errs[i])
		}
		sameResult(t, want, results[i], "shared-engine searcher")
	}
	st := eng.Stats()
	if st.Hits == 0 {
		t.Errorf("concurrent searchers over one engine recorded no memo hits: %+v", st)
	}
}

// Stress the singleflight memo from many goroutines: every caller must
// observe the identical value per key, the engine must record the expected
// hit/miss/dedup accounting, and the whole thing must be clean under -race.
func TestEngineConcurrentStress(t *testing.T) {
	cfg := fastConfig(t, "swaptions")
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := floorplan.PaperOrgForInterposer(16, 34, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		fIdx int
		p    int
	}
	keys := []key{{0, 224}, {1, 160}, {2, 96}, {0, 256}, {3, 128}}
	const goroutines = 16
	got := make([][]float64, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	ctx := context.Background()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vals := make([]float64, len(keys))
			for rep := 0; rep < 3; rep++ {
				for i, k := range keys {
					peak, _, err := eng.PeakC(ctx, cfg.Benchmark, pl, power.FrequencySet[k.fIdx], k.p, cfg.ThresholdC, cfg.SurrogateMarginC)
					if err != nil {
						errs[g] = err
						return
					}
					if rep > 0 && peak != vals[i] {
						errs[g] = errDrift{rep: rep, i: i, a: vals[i], b: peak}
						return
					}
					vals[i] = peak
				}
			}
			got[g] = vals
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g := 1; g < goroutines; g++ {
		for i := range keys {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutine %d key %d: %v != %v", g, i, got[g][i], got[0][i])
			}
		}
	}
	st := eng.Stats()
	// 5 keys on one placement: at most one full sim per key plus the
	// canonical calibration sims; everything else must be hits or dedup
	// waits, never duplicate sims.
	if st.ThermalSims > int64(2*len(keys)) {
		t.Errorf("duplicate simulations under concurrency: %d sims for %d keys", st.ThermalSims, len(keys))
	}
	if st.Hits == 0 {
		t.Errorf("no memo hits under 16 goroutines x 3 reps: %+v", st)
	}
}

type errDrift struct {
	rep, i int
	a, b   float64
}

func (e errDrift) Error() string {
	return "memoized value drifted across repetitions"
}

// A canceled waiter must not poison the memo for live callers: errors are
// never memoized, and waiters holding a live context retry after observing
// a cancellation-shaped failure.
func TestEngineCancellationDoesNotPoison(t *testing.T) {
	cfg := fastConfig(t, "canneal")
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := floorplan.PaperOrgForInterposer(16, 30, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := eng.Simulate(canceled, cfg.Benchmark, pl, power.FrequencySet[0], 192); err == nil {
		t.Fatal("expected error from canceled context")
	}
	rec, st, err := eng.Simulate(context.Background(), cfg.Benchmark, pl, power.FrequencySet[0], 192)
	if err != nil {
		t.Fatalf("live caller failed after canceled caller: %v", err)
	}
	if rec.PeakC <= cfg.Thermal.AmbientC {
		t.Fatalf("implausible peak %v", rec.PeakC)
	}
	if st.Sims != 1 {
		t.Fatalf("live caller should have computed the sim itself, stats %+v", st)
	}
}

// Engine sharing is gated on the physics fingerprint: a searcher whose
// configuration evaluates on a different substrate must be rejected.
func TestSearcherEngineFingerprintMismatch(t *testing.T) {
	cfg := fastConfig(t, "canneal")
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Thermal.Nx, other.Thermal.Ny = 32, 32
	if _, err := NewSearcherWithEngine(other, eng); err == nil {
		t.Fatal("expected fingerprint mismatch error")
	}
	// Same physics, different search knobs: shares fine.
	knobs := cfg
	knobs.Starts = 3
	knobs.Seed = 99
	knobs.Objective = Objective{Alpha: 0, Beta: 1}
	if _, err := NewSearcherWithEngine(knobs, eng); err != nil {
		t.Fatalf("search-level knobs must not fork engine identity: %v", err)
	}
	// KernelThreads is a wall-clock knob and must not fork identity either.
	kt := cfg
	kt.Thermal.KernelThreads = 4
	if _, err := NewSearcherWithEngine(kt, eng); err != nil {
		t.Fatalf("KernelThreads must not fork engine identity: %v", err)
	}
}

func TestEngineCacheSharesAndEvicts(t *testing.T) {
	cache := NewEngineCache(2)
	cfgA := fastConfig(t, "canneal")
	cfgB := fastConfig(t, "cholesky") // same physics, different benchmark
	cfgC := fastConfig(t, "canneal")
	cfgC.Thermal.Nx, cfgC.Thermal.Ny = 8, 8
	cfgD := fastConfig(t, "canneal")
	cfgD.Thermal.AmbientC = 50

	a, err := cache.Get(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.Get(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("benchmark choice must not fork engine identity")
	}
	if _, err := cache.Get(cfgC); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 2 {
		t.Fatalf("expected 2 resident engines, got %d", cache.Len())
	}
	// Touch A so C is the LRU victim when D arrives.
	if _, err := cache.Get(cfgA); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Get(cfgD); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 2 {
		t.Fatalf("expected eviction to hold the cache at 2, got %d", cache.Len())
	}
	a2, err := cache.Get(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a {
		t.Fatal("recently used engine was evicted")
	}
}

// The worker-budget hierarchy: enabling restart- or scan-level parallelism
// pins the thermal kernel serial unless explicitly configured.
func TestEngineKernelPin(t *testing.T) {
	cfg := fastConfig(t, "canneal")
	cfg.SearchWorkers = 4
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if eng.phys.Thermal.KernelThreads != 1 {
		t.Fatalf("SearchWorkers > 1 must pin kernel threads to 1, got %d", eng.phys.Thermal.KernelThreads)
	}
	cfg.Thermal.KernelThreads = 3
	eng2, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if eng2.phys.Thermal.KernelThreads != 3 {
		t.Fatalf("explicit KernelThreads must be honored, got %d", eng2.phys.Thermal.KernelThreads)
	}
	serial := fastConfig(t, "canneal")
	eng3, err := NewEngine(serial)
	if err != nil {
		t.Fatal(err)
	}
	if eng3.phys.Thermal.KernelThreads != 0 {
		t.Fatalf("serial search must leave kernel threading auto, got %d", eng3.phys.Thermal.KernelThreads)
	}
}
