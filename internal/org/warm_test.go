package org

import (
	"context"
	"math"
	"testing"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/power"
	"chiplet25d/internal/thermal"
)

// testPlacement builds one valid 4-chiplet placement for engine-level tests.
func testPlacement(t testing.TB) floorplan.Placement {
	t.Helper()
	pl, err := floorplan.PaperOrg(4, 0, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestWarmCacheNearest pins the cache's seeding discipline: only fields
// sharing the benchmark and placement geometry are candidates, the smallest
// (fIdx, cores) distance wins, and reads are copies.
func TestWarmCacheNearest(t *testing.T) {
	c := newWarmCache(4)
	bk := benchKey{name: "b", refCoreW: 1, traffic: 1}
	pk := plKey{n: 4, edge2: 60, s12: 8, s22: 8}
	key := func(f, cores int) engineKey {
		return engineKey{bench: bk, ek: evalKey{pl: pk, fIdx: f, cores: cores}}
	}
	c.put(key(0, 64), []float64{1})
	c.put(key(3, 64), []float64{2})
	otherPl := key(1, 64)
	otherPl.ek.pl.s12 = 10
	c.put(otherPl, []float64{3})

	got := c.nearest(key(1, 64))
	if got == nil || got[0] != 1 {
		t.Fatalf("nearest(f=1) = %v, want the f=0 field (same operator, distance 1)", got)
	}
	got = c.nearest(key(4, 64))
	if got == nil || got[0] != 2 {
		t.Fatalf("nearest(f=4) = %v, want the f=3 field", got)
	}
	// A different placement geometry must never serve as a seed, however
	// close: the operator differs and the seed would cost iterations.
	lonely := key(0, 64)
	lonely.ek.pl.edge2 = 90
	if got := c.nearest(lonely); got != nil {
		t.Fatalf("nearest for an unseen geometry = %v, want nil", got)
	}
	// Mutating the returned copy must not corrupt the retained field.
	got = c.nearest(key(0, 64))
	got[0] = math.NaN()
	if again := c.nearest(key(0, 64)); again[0] != 1 {
		t.Fatalf("retained field corrupted by caller mutation: %v", again)
	}
	// The ring is bounded: capacity+1 inserts for the same geometry evict
	// the oldest.
	small := newWarmCache(2)
	small.put(key(0, 64), []float64{10})
	small.put(key(1, 64), []float64{11})
	small.put(key(2, 64), []float64{12})
	if got := small.nearest(key(0, 64)); got == nil || got[0] != 11 {
		t.Fatalf("after overflow nearest(f=0) = %v, want the f=1 field (f=0 evicted)", got)
	}
}

// TestEngineWarmStartMatchesCold is the engine-level warm-start contract:
// with WarmStart on, a simulation seeded from a neighboring DVFS point's
// field converges to the same record as the cold engine within the solver
// tolerance, and the engine reports the seed in its telemetry.
func TestEngineWarmStartMatchesCold(t *testing.T) {
	cfg := fastConfig(t, "cholesky")
	cfg.Thermal.Preconditioner = thermal.PrecondMG
	warmCfg := cfg
	warmCfg.WarmStart = true

	cold, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewEngine(warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Fingerprint() != warm.Fingerprint() {
		t.Fatalf("WarmStart must not fork the physics fingerprint")
	}
	pl := testPlacement(t)
	ctx := context.Background()
	for _, fIdx := range []int{0, 1, 2} {
		op := power.FrequencySet[fIdx]
		want, _, err := cold.Simulate(ctx, cfg.Benchmark, pl, op, 128)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := warm.Simulate(ctx, cfg.Benchmark, pl, op, 128)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(got.PeakC - want.PeakC); d > 1e-5 {
			t.Errorf("fIdx %d: warm peak differs from cold by %g °C", fIdx, d)
		}
		if d := math.Abs(got.TotalPowerW - want.TotalPowerW); d > 1e-5 {
			t.Errorf("fIdx %d: warm power differs from cold by %g W", fIdx, d)
		}
	}
	st := warm.Stats()
	if st.WarmSeeds < 2 {
		t.Errorf("warm engine reported %d seeded simulations, want >= 2 (fIdx 1 and 2 both had a same-operator neighbor)", st.WarmSeeds)
	}
	if cs := cold.Stats(); cs.WarmSeeds != 0 {
		t.Errorf("cold engine reported %d warm seeds, want 0", cs.WarmSeeds)
	}
}

// TestWarmStartSearchWinnerParity runs the full multi-start search with and
// without warm starts: the chosen organization must be identical (the seed
// perturbs peak temperatures by ~1e-6 °C at most, far below any decision
// margin on the test corpus).
func TestWarmStartSearchWinnerParity(t *testing.T) {
	cfg := fastConfig(t, "cholesky")
	cfg.Thermal.Preconditioner = thermal.PrecondMG
	cold, err := NewSearcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	wc := cfg
	wc.WarmStart = true
	warm, err := NewSearcher(wc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := warm.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	b, w := got.Best, want.Best
	if got.Feasible != want.Feasible || b.N != w.N || b.S1 != w.S1 || b.S2 != w.S2 ||
		b.S3 != w.S3 || b.InterposerMM != w.InterposerMM || b.Op != w.Op ||
		b.ActiveCores != w.ActiveCores {
		t.Fatalf("warm-start search winner\n  %+v\ndiffers from cold winner\n  %+v", b, w)
	}
	if d := math.Abs(b.PeakC - w.PeakC); d > 1e-5 {
		t.Errorf("winner peak temperature differs by %g °C between warm and cold searches", d)
	}
}
