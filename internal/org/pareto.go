package org

import (
	"sort"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/power"
)

// ParetoFront computes the cost-performance Pareto frontier of 2.5D
// organizations under the configured threshold: for every (chiplet count,
// interposer size) bucket the maximum feasible IPS is found, and the
// non-dominated set (no other organization is simultaneously cheaper and
// faster) is returned sorted by ascending cost. This is the designer's view
// behind Figs. 6 and 7: every (α, β) choice of Eq. (5) selects a point on
// this frontier.
func (s *Searcher) ParetoFront() ([]Organization, error) {
	base, err := s.Baseline()
	if err != nil {
		return nil, err
	}
	type cand struct {
		fIdx, p int
		ips     float64
	}
	var cands []cand
	for fIdx, op := range power.FrequencySet {
		for _, p := range power.ActiveCoreCounts {
			cands = append(cands, cand{fIdx, p, s.cfg.Benchmark.IPS(op, p)})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ips > cands[j].ips })

	var all []Organization
	for _, n := range s.cfg.ChipletCounts {
		for _, edge := range s.edges(n) {
			cost := s.cfg.CostParams.Cost25DForInterposer(n, edge)
			if s.cfg.MaxNormCost > 0 && base.CostUSD > 0 && cost/base.CostUSD > s.cfg.MaxNormCost {
				continue
			}
			for _, c := range cands {
				op := power.FrequencySet[c.fIdx]
				pl, peak, found, err := s.FindPlacement(n, edge, op, c.p)
				if err != nil {
					return nil, err
				}
				if !found {
					continue
				}
				o := Organization{
					N: n, S1: pl.S1, S2: pl.S2, S3: pl.S3,
					InterposerMM: pl.W, Op: op, ActiveCores: c.p,
					PeakC: peak, IPS: c.ips, CostUSD: cost,
					Placement: pl,
				}
				if base.Feasible {
					o.NormPerf = c.ips / base.BestIPS
					o.NormCost = cost / base.CostUSD
				}
				all = append(all, o)
				break // max IPS for this bucket found
			}
		}
	}
	return paretoFilter(all), nil
}

// paretoFilter keeps the non-dominated organizations: sorted by ascending
// cost, an organization survives only if it is strictly faster than every
// cheaper survivor.
func paretoFilter(all []Organization) []Organization {
	sort.Slice(all, func(i, j int) bool {
		if all[i].CostUSD != all[j].CostUSD {
			return all[i].CostUSD < all[j].CostUSD
		}
		return all[i].IPS > all[j].IPS
	})
	var front []Organization
	bestIPS := 0.0
	for _, o := range all {
		if o.IPS > bestIPS+1e-9 {
			front = append(front, o)
			bestIPS = o.IPS
		}
	}
	return front
}

// MinFeasibleEdge returns the smallest configured interposer edge at which
// the benchmark can run (f, p) for the given chiplet count, using the
// greedy placement search and the monotonicity of cooling in interposer
// size (binary search over the edge grid). found is false when even the
// largest edge fails.
func (s *Searcher) MinFeasibleEdge(n int, op power.DVFSPoint, p int) (float64, floorplan.Placement, bool, error) {
	edges := s.edges(n)
	if len(edges) == 0 {
		return 0, floorplan.Placement{}, false, nil
	}
	lo, hi := 0, len(edges)-1
	// Fast reject: largest edge infeasible means everything is.
	pl, _, found, err := s.FindPlacement(n, edges[hi], op, p)
	if err != nil {
		return 0, floorplan.Placement{}, false, err
	}
	if !found {
		return 0, floorplan.Placement{}, false, nil
	}
	bestPl := pl
	bestEdge := edges[hi]
	for lo < hi {
		mid := (lo + hi) / 2
		pl, _, found, err := s.FindPlacement(n, edges[mid], op, p)
		if err != nil {
			return 0, floorplan.Placement{}, false, err
		}
		if found {
			hi = mid
			bestPl, bestEdge = pl, edges[mid]
		} else {
			lo = mid + 1
		}
	}
	return bestEdge, bestPl, true, nil
}
