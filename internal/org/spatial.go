package org

// Spatial surrogate tier: a compact thermal model (internal/surrogate)
// calibrated per (engine, benchmark) against a fixed design-of-experiments
// set of real leakage-coupled simulations. One spatialModel holds one
// fitted surrogate per chiplet-count class (1, 4, 16); prediction is
// zero-alloc once the per-placement kernel matrix is cached, so the tier
// answers clearly-feasible and clearly-infeasible evaluations in well under
// a microsecond instead of a CG solve.
//
// Determinism: the DoE set is fixed, the fit is deterministic
// (surrogate.Fit), and predictions are pure functions of (benchmark,
// placement, op, p) and the engine physics. Calibration runs under a
// singleflight keyed by benchmark, and its simulations are published into
// the ordinary sim memo, so concurrent searches sharing an engine observe
// exactly the same model a serial run would.

import (
	"context"
	"fmt"
	"math"
	"sync"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/obs"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
	"chiplet25d/internal/surrogate"
)

const (
	// spatialHoldoutEvery withholds every k-th DoE sample from the fit so
	// the calibration record carries an honest generalization error.
	spatialHoldoutEvery = 3
	// spatialKernelCap bounds the per-class cache of placement kernel
	// matrices (cleared wholesale on overflow; recomputation is pure).
	spatialKernelCap = 4096
	// spatialCalCap bounds the number of per-benchmark calibrations
	// resident on one engine.
	spatialCalCap = 64
	// maxSpatialChiplets sizes the prediction-path stack buffers (the
	// largest organization class is 4x4).
	maxSpatialChiplets = 16
	// spatialLeakIters is the fixed number of leakage-refinement passes in
	// a prediction: per-chiplet powers are evaluated at the previously
	// predicted temperatures, then rises are re-predicted. Two passes keep
	// the power estimate within the calibration's recorded error at paper
	// operating points while staying allocation- and branch-free.
	spatialLeakIters = 2
)

// calEntry is the singleflight slot for one benchmark's calibration.
type calEntry struct {
	done  chan struct{}
	model *spatialModel
	err   error
}

// spatialModel is a calibrated spatial surrogate for one benchmark on one
// engine: one fitted class per supported chiplet count.
type spatialModel struct {
	classes map[int]*spatialClass
}

// spatialClass is the fitted surrogate for one chiplet-count class plus its
// per-placement kernel-matrix cache.
type spatialClass struct {
	cal surrogate.Calibration

	mu      sync.Mutex
	kernels map[plKey][]float64
}

// doePoint is one design-of-experiments simulation: a placement and an
// operating point.
type doePoint struct {
	pl   floorplan.Placement
	fIdx int
	p    int
}

// spatialDoE returns the fixed, deterministic design-of-experiments plan,
// grouped by chiplet-count class. The plan spans the DVFS table, the
// active-core range, and (for chiplet classes) three spacing geometries;
// sample order interleaves operating points so the every-k-th holdout
// partition withholds a whole geometry, measuring exactly the
// generalization the search relies on (many spacings, few DoE solves).
func spatialDoE() (map[int][]doePoint, error) {
	ops := [][2]int{{0, 256}, {2, 160}, {4, 96}}
	plan := make(map[int][]doePoint, 3)

	// 2D baseline: a single class-1 geometry, so spread the samples over
	// extra operating points instead.
	single := floorplan.SingleChip()
	for _, op := range [][2]int{{0, 256}, {0, 128}, {1, 64}, {2, 192}, {3, 96}, {4, 32}} {
		plan[1] = append(plan[1], doePoint{pl: single, fIdx: op[0], p: op[1]})
	}

	fourSp := []float64{1, 2.5, 4, 6}
	for _, op := range ops {
		for _, s3 := range fourSp {
			pl, err := floorplan.PaperOrg(4, 0, 0, s3)
			if err != nil {
				return nil, err
			}
			plan[4] = append(plan[4], doePoint{pl: pl, fIdx: op[0], p: op[1]})
		}
	}

	sixteenSp := [][3]float64{{0.5, 0.5, 1}, {1, 1, 2}, {0.5, 1.5, 2}, {2, 0.5, 4}}
	for _, op := range ops {
		for _, sp := range sixteenSp {
			pl, err := floorplan.PaperOrg(16, sp[0], sp[1], sp[2])
			if err != nil {
				return nil, err
			}
			plan[16] = append(plan[16], doePoint{pl: pl, fIdx: op[0], p: op[1]})
		}
	}
	return plan, nil
}

// spatialFor returns the engine's calibrated spatial model for a benchmark,
// calibrating on first use. Calibration is singleflighted per benchmark;
// the winner's DoE simulations are charged to its st. Errors are never
// memoized.
func (e *Engine) spatialFor(ctx context.Context, b perf.Benchmark, st *EvalStats) (*spatialModel, error) {
	bk := benchKeyOf(b)
	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("org: search canceled: %w", err)
		}
		e.spatialMu.Lock()
		if ent, ok := e.spatials[bk]; ok {
			select {
			case <-ent.done:
				e.spatialMu.Unlock()
				return ent.model, ent.err
			default:
			}
			e.spatialMu.Unlock()
			select {
			case <-ent.done:
			case <-ctx.Done():
				return nil, fmt.Errorf("org: search canceled: %w", ctx.Err())
			}
			if ent.err == nil {
				return ent.model, nil
			}
			if ctx.Err() == nil && ctxErrLike(ent.err) {
				// The calibrating goroutine was canceled but this caller is
				// live: retry (the failed entry has been removed).
				continue
			}
			return nil, ent.err
		}
		ent := &calEntry{done: make(chan struct{})}
		if len(e.spatials) >= spatialCalCap {
			for k, old := range e.spatials {
				select {
				case <-old.done:
					delete(e.spatials, k)
				default:
				}
			}
		}
		e.spatials[bk] = ent
		e.spatialMu.Unlock()

		model, err := e.calibrate(ctx, b, st)
		ent.model, ent.err = model, err
		if err != nil {
			e.spatialMu.Lock()
			if e.spatials[bk] == ent {
				delete(e.spatials, bk)
			}
			e.spatialMu.Unlock()
		}
		close(ent.done)
		if err == nil {
			e.calibrations.Add(1)
		}
		return model, err
	}
}

// calibrate runs the DoE simulations for every class, fits the spatial
// surrogate against them, and replaces each class's worst-case error bound
// with the safety-inflated end-to-end PEAK error: every DoE point replayed
// through the actual prediction path (estimated per-chiplet powers
// included) against its full simulation's peak temperature. The per-chiplet
// kernel residuals stay in the record as diagnostics but do not enter the
// bound — the tier answers peak queries, and a cold chiplet's misprediction
// never moves the peak, so bounding on per-chiplet errors would only widen
// the escalation band without adding safety.
func (e *Engine) calibrate(ctx context.Context, b perf.Benchmark, st *EvalStats) (*spatialModel, error) {
	ctx, sp := obs.Start(ctx, "engine.spatial_calibrate")
	sp.SetAttr("bench", b.Name)
	defer sp.End()
	plan, err := spatialDoE()
	if err != nil {
		return nil, err
	}
	model := &spatialModel{classes: make(map[int]*spatialClass, len(plan))}
	worst := 0.0
	sims := 0
	for _, class := range []int{1, 4, 16} {
		points := plan[class]
		samples := make([]surrogate.Sample, 0, len(points))
		peaks := make([]float64, 0, len(points))
		for _, pt := range points {
			smp, rec, err := e.runDoESim(ctx, b, pt, st)
			if err != nil {
				return nil, err
			}
			samples = append(samples, smp)
			peaks = append(peaks, rec.PeakC)
			sims++
		}
		cal, err := surrogate.Fit(samples, spatialHoldoutEvery)
		if err != nil {
			return nil, fmt.Errorf("org: spatial calibration (%d chiplets): %w", class, err)
		}
		cls := &spatialClass{cal: cal, kernels: make(map[plKey][]float64)}
		// End-to-end replay over every DoE point (training and holdout).
		worstE2E := 0.0
		for i, pt := range points {
			k := engineKey{bench: benchKeyOf(b), ek: evalKey{pl: keyOf(pt.pl), fIdx: pt.fIdx, cores: pt.p}}
			nocW, err := e.nocPower(b, pt.pl, power.FrequencySet[pt.fIdx], pt.p, k)
			if err != nil {
				return nil, err
			}
			pred, err := cls.predictPeakC(e, b, pt.pl, power.FrequencySet[pt.fIdx], pt.p, nocW)
			if err != nil {
				return nil, err
			}
			if d := math.Abs(pred - peaks[i]); d > worstE2E {
				worstE2E = d
			}
		}
		cls.cal.WorstCaseErrC = surrogate.SafetyFactor*worstE2E + surrogate.SafetyPadC
		model.classes[class] = cls
		worst = math.Max(worst, cls.cal.WorstCaseErrC)
	}
	// Publish the worst calibration error across models on this engine
	// (monotonic max; read lock-free by the metrics gauge).
	for {
		old := e.calWorstErrBits.Load()
		if math.Float64frombits(old) >= worst {
			break
		}
		if e.calWorstErrBits.CompareAndSwap(old, math.Float64bits(worst)) {
			break
		}
	}
	sp.SetAttr("doe_sims", sims)
	sp.SetAttr("worst_case_err_c", worst)
	return model, nil
}

// runDoESim executes one design-of-experiments simulation. It mirrors
// runSim's pipeline but keeps the rich simulation result the memo discards:
// per-chiplet peak rises (from the thermal field) and per-chiplet converged
// powers, which are the surrogate's training targets. The scalar record is
// published into the sim memo so the search later hits instead of
// recomputing the same point.
func (e *Engine) runDoESim(ctx context.Context, b perf.Benchmark, pt doePoint, st *EvalStats) (surrogate.Sample, SimRecord, error) {
	op := power.FrequencySet[pt.fIdx]
	k := engineKey{bench: benchKeyOf(b), ek: evalKey{pl: keyOf(pt.pl), fIdx: pt.fIdx, cores: pt.p}}
	ctx, sp := obs.Start(ctx, "engine.doe_sim")
	sp.SetAttr("bench", b.Name)
	sp.SetAttr("chiplets", pt.pl.NumChiplets())
	sp.SetAttr("freq_mhz", op.FreqMHz)
	sp.SetAttr("active_cores", pt.p)
	sp.SetAttr("fidelity", FidelityFull.String())
	defer sp.End()

	nocW, err := e.nocPower(b, pt.pl, op, pt.p, k)
	if err != nil {
		return surrogate.Sample{}, SimRecord{}, err
	}
	cores, err := pt.pl.Cores()
	if err != nil {
		return surrogate.Sample{}, SimRecord{}, err
	}
	model, reused, err := e.model(pt.pl, k.ek.pl)
	if err != nil {
		return surrogate.Sample{}, SimRecord{}, err
	}
	if reused {
		e.modelReuses.Add(1)
	}
	active, err := power.MintempActive(pt.p)
	if err != nil {
		return surrogate.Sample{}, SimRecord{}, err
	}
	w := power.Workload{
		RefCoreW: b.RefCoreW,
		Op:       op,
		Active:   active,
		NoCW:     nocW,
		Leakage:  e.phys.Leakage,
	}
	res, err := power.SimulateCtx(ctx, model, cores, w, e.phys.SimOpts)
	if err != nil {
		return surrogate.Sample{}, SimRecord{}, err
	}

	n := pt.pl.NumChiplets()
	amb := e.phys.Thermal.AmbientC
	smp := surrogate.Sample{
		CentersMM: make([][2]float64, n),
		ChipWMM:   pt.pl.ChipletW,
		ChipHMM:   pt.pl.ChipletH,
		PowersW:   make([]float64, n),
		RiseC:     make([]float64, n),
	}
	for i, rc := range pt.pl.Chiplets {
		cx, cy := rc.Center()
		smp.CentersMM[i] = [2]float64{cx, cy}
		smp.RiseC[i] = res.Thermal.MaxOverRect(rc) - amb
	}
	nocPerCore := nocW / float64(pt.p)
	for _, c := range cores {
		id := c.Row*floorplan.CoresPerEdge + c.Col
		if !active[id] {
			continue
		}
		smp.PowersW[c.Chiplet] += power.CorePower(b.RefCoreW, op, res.CoreTemps[id], e.phys.Leakage) + nocPerCore
	}

	rec := SimRecord{
		PeakC:             res.PeakC,
		TotalPowerW:       res.TotalPowerW,
		MeshPowerW:        nocW,
		LeakageIterations: res.Iterations,
		CGIterations:      res.CGIterations,
	}
	e.insertSim(k, rec)
	st.Sims++
	st.CGIterations += rec.CGIterations
	st.LeakageIterations += rec.LeakageIterations
	e.thermalSims.Add(1)
	e.cgIterations.Add(int64(rec.CGIterations))
	return smp, rec, nil
}

// insertSim publishes a DoE-computed record into the sim memo so later
// evaluations of the same point hit instead of recomputing (purity makes
// the insert safe). Existing entries — completed or in-flight — are left
// alone.
func (e *Engine) insertSim(k engineKey, rec SimRecord) {
	sh := e.shardOf(k)
	sh.mu.Lock()
	if _, ok := sh.sims[k]; !ok {
		if len(sh.sims) >= engineShardCap {
			e.evictCompletedLocked(sh)
		}
		ent := &simEntry{done: make(chan struct{}), rec: rec}
		close(ent.done)
		sh.sims[k] = ent
	}
	sh.mu.Unlock()
}

// chipletCountsCache memoizes the per-chiplet active-core split for each
// (r, p): the mintemp allocation is a fixed order, so the split is a pure
// function shared by every engine in the process.
var chipletCountsCache sync.Map // [2]int -> *[maxSpatialChiplets]int

func chipletActiveCounts(r, p int) (*[maxSpatialChiplets]int, error) {
	key := [2]int{r, p}
	if v, ok := chipletCountsCache.Load(key); ok {
		return v.(*[maxSpatialChiplets]int), nil
	}
	if r <= 0 || r*r > maxSpatialChiplets || floorplan.CoresPerEdge%r != 0 {
		return nil, fmt.Errorf("org: no core map for %dx%d chiplet grid", r, r)
	}
	active, err := power.MintempActive(p)
	if err != nil {
		return nil, err
	}
	per := floorplan.CoresPerEdge / r
	var counts [maxSpatialChiplets]int
	for id, on := range active {
		if !on {
			continue
		}
		row, col := id/floorplan.CoresPerEdge, id%floorplan.CoresPerEdge
		counts[(row/per)*r+col/per]++
	}
	v, _ := chipletCountsCache.LoadOrStore(key, &counts)
	return v.(*[maxSpatialChiplets]int), nil
}

// kernel returns the cached kernel matrix for a placement, computing and
// caching it on first sight. The cache key is the same half-millimeter
// placement identity the sim memo uses.
func (c *spatialClass) kernel(pl floorplan.Placement) []float64 {
	key := keyOf(pl)
	c.mu.Lock()
	if k, ok := c.kernels[key]; ok {
		c.mu.Unlock()
		return k
	}
	c.mu.Unlock()
	n := pl.NumChiplets()
	centers := make([][2]float64, n)
	for i, rc := range pl.Chiplets {
		cx, cy := rc.Center()
		centers[i] = [2]float64{cx, cy}
	}
	k := c.cal.Params.KernelMatrix(centers, pl.ChipletW, pl.ChipletH, make([]float64, n*n))
	c.mu.Lock()
	if len(c.kernels) >= spatialKernelCap {
		c.kernels = make(map[plKey][]float64)
	}
	c.kernels[key] = k
	c.mu.Unlock()
	return k
}

// predictPeakC is the spatial tier's forward pass: estimate per-chiplet
// powers from the active-core split with a fixed-iteration leakage
// refinement, superpose the fitted kernels, and return ambient plus the
// hottest chiplet rise. Zero allocations once the placement's kernel matrix
// is cached.
func (c *spatialClass) predictPeakC(e *Engine, b perf.Benchmark, pl floorplan.Placement, op power.DVFSPoint, p int, nocW float64) (float64, error) {
	n := pl.NumChiplets()
	counts, err := chipletActiveCounts(pl.R, p)
	if err != nil {
		return 0, err
	}
	k := c.kernel(pl)
	lm := e.phys.Leakage
	amb := e.phys.Thermal.AmbientC
	nocPerCore := nocW / float64(p)
	var powers, rise, temps [maxSpatialChiplets]float64
	for i := 0; i < n; i++ {
		temps[i] = lm.RefC
	}
	for it := 0; it < spatialLeakIters; it++ {
		for i := 0; i < n; i++ {
			powers[i] = float64(counts[i]) * (power.CorePower(b.RefCoreW, op, temps[i], lm) + nocPerCore)
		}
		c.cal.Params.PredictRise(k, powers[:n], rise[:n])
		for i := 0; i < n; i++ {
			temps[i] = amb + rise[i]
		}
	}
	peak := amb
	for i := 0; i < n; i++ {
		if temps[i] > peak {
			peak = temps[i]
		}
	}
	return peak, nil
}

// spatialPeakC consults the spatial tier for one evaluation: calibrate the
// benchmark's model on first use, then predict. ok reports whether the
// placement's class is covered by the model.
func (e *Engine) spatialPeakC(ctx context.Context, b perf.Benchmark, pl floorplan.Placement, op power.DVFSPoint, p int, k engineKey, st *EvalStats) (predC, boundC float64, ok bool, err error) {
	model, err := e.spatialFor(ctx, b, st)
	if err != nil {
		return 0, 0, false, err
	}
	cls, covered := model.classes[pl.NumChiplets()]
	if !covered {
		return 0, 0, false, nil
	}
	nocW, err := e.nocPower(b, pl, op, p, k)
	if err != nil {
		return 0, 0, false, err
	}
	pred, err := cls.predictPeakC(e, b, pl, op, p, nocW)
	if err != nil {
		return 0, 0, false, err
	}
	return pred, cls.cal.WorstCaseErrC, true, nil
}

// SpatialCalibration returns the calibration record for one chiplet-count
// class of a benchmark's spatial surrogate, running the DoE simulations on
// first use. The record's WorstCaseErrC is the safety-inflated end-to-end
// bound the escalation margin enforces.
func (e *Engine) SpatialCalibration(ctx context.Context, b perf.Benchmark, chiplets int) (surrogate.Calibration, error) {
	var st EvalStats
	model, err := e.spatialFor(ctx, b, &st)
	if err != nil {
		return surrogate.Calibration{}, err
	}
	cls, ok := model.classes[chiplets]
	if !ok {
		return surrogate.Calibration{}, fmt.Errorf("org: no spatial surrogate class for %d chiplets", chiplets)
	}
	return cls.cal, nil
}

// SpatialPredictPeakC returns the spatial surrogate's predicted peak
// temperature for one evaluation point, calibrating on first use. Unlike
// PeakCPolicy it never escalates: tooling (thermalsim -surrogate, the
// verify drift tier) uses it to compare the raw prediction against the full
// simulation.
func (e *Engine) SpatialPredictPeakC(ctx context.Context, b perf.Benchmark, pl floorplan.Placement, op power.DVFSPoint, p int) (float64, error) {
	fIdx, err := checkEval(op, p)
	if err != nil {
		return 0, err
	}
	k := engineKey{bench: benchKeyOf(b), ek: evalKey{pl: keyOf(pl), fIdx: fIdx, cores: p}}
	var st EvalStats
	pred, _, ok, err := e.spatialPeakC(ctx, b, pl, op, p, k, &st)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("org: placement class %d not covered by the spatial surrogate", pl.NumChiplets())
	}
	return pred, nil
}
