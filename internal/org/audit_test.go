package org

import "testing"

// TestAuditNotify pins the live-observer contract the SSE streaming layer
// depends on: every recorded event reaches the callback after stamping, in
// order, and the ring retains them regardless.
func TestAuditNotify(t *testing.T) {
	var got []AuditEvent
	l := NewAuditLog(4).WithNotify(func(ev AuditEvent) { got = append(got, ev) })
	l.Add(AuditEvent{Kind: AuditRestartSeeded, Restart: 1})
	l.Add(AuditEvent{Kind: AuditEval})
	if len(got) != 2 {
		t.Fatalf("notify observed %d events, want 2", len(got))
	}
	if got[0].Kind != AuditRestartSeeded || got[1].Kind != AuditEval {
		t.Errorf("event kinds = %s, %s", got[0].Kind, got[1].Kind)
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Errorf("events reached notify unstamped: seqs %d, %d", got[0].Seq, got[1].Seq)
	}
	if l.Len() != 2 {
		t.Errorf("ring retained %d events, want 2 (notify must not consume)", l.Len())
	}
}

// TestAuditNotifyNilSafe: the disabled path (nil log) stays disabled through
// WithNotify chaining, and a log without an observer records normally.
func TestAuditNotifyNilSafe(t *testing.T) {
	var nilLog *AuditLog
	if nilLog.WithNotify(func(AuditEvent) {}) != nil {
		t.Error("WithNotify on a nil log must return nil")
	}
	nilLog.Add(AuditEvent{Kind: AuditEval}) // must not panic

	l := NewAuditLog(2) // no observer installed
	l.Add(AuditEvent{Kind: AuditEval})
	if l.Len() != 1 {
		t.Errorf("observer-less log retained %d events, want 1", l.Len())
	}
}
