package org

import (
	"math"
	"math/rand"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/power"
)

// Simulated-annealing placement search: an alternative to the paper's
// multi-start greedy for escaping local minima in the (s1, s2) spacing
// landscape. The walk minimizes peak temperature, accepting uphill moves
// with probability exp(-ΔT/temperature) under a geometric cooling schedule,
// and stops as soon as any visited placement meets the threshold (the
// optimizer only needs feasibility, exactly like the greedy). Exposed for
// the search-strategy ablation.

// AnnealParams tunes the annealing search.
type AnnealParams struct {
	// InitialTempC is the initial acceptance temperature in °C of peak
	// difference.
	InitialTempC float64
	// Cooling is the geometric cooling factor per move.
	Cooling float64
	// MaxEvals bounds peak-temperature evaluations per search.
	MaxEvals int
	// Restarts is the number of independent chains.
	Restarts int
}

// DefaultAnnealParams returns a budget comparable to the 10-start greedy.
func DefaultAnnealParams() AnnealParams {
	return AnnealParams{InitialTempC: 6, Cooling: 0.92, MaxEvals: 160, Restarts: 3}
}

// FindPlacementAnnealing searches for a feasible placement at a fixed
// (n, edge, op, p) with simulated annealing. Same contract as
// FindPlacement.
func (s *Searcher) FindPlacementAnnealing(n int, edgeMM float64, op power.DVFSPoint, p int, ap AnnealParams) (floorplan.Placement, float64, bool, error) {
	if n == 4 {
		return s.FindPlacement(4, edgeMM, op, p)
	}
	sp, ok := newSpacingSpace(edgeMM)
	if !ok {
		return floorplan.Placement{}, 0, false, nil
	}
	if ap.MaxEvals <= 0 {
		ap = DefaultAnnealParams()
	}
	visited := make(map[spacePoint]float64)
	evals := 0
	eval := func(pt spacePoint) (float64, error) {
		if v, seen := visited[pt]; seen {
			return v, nil
		}
		pl, valid := sp.placementAt(pt)
		if !valid {
			visited[pt] = math.Inf(1)
			return math.Inf(1), nil
		}
		evals++
		peak, err := s.PeakC(pl, op, p)
		if err != nil {
			return 0, err
		}
		visited[pt] = peak
		return peak, nil
	}
	edgeHM := int(math.Round(edgeMM * 2))
	fIdx := fIdxOf(op)
	for chain := 0; chain < max(1, ap.Restarts); chain++ {
		// Each chain draws from its own RNG stream derived from the root
		// seed and the chain coordinates, same scheme as the greedy
		// restarts, so annealing results do not depend on call order.
		rng := rand.New(rand.NewSource(deriveSeed(s.cfg.Seed, saltAnneal, n, edgeHM, fIdx, p, chain)))
		cur := spacePoint{i1: rng.Intn(sp.max1 + 1), i2: rng.Intn(sp.max2 + 1)}
		curPeak, err := eval(cur)
		if err != nil {
			return floorplan.Placement{}, 0, false, err
		}
		if curPeak <= s.cfg.ThresholdC {
			pl, _ := sp.placementAt(cur)
			return pl, curPeak, true, nil
		}
		temp := ap.InitialTempC
		// attempts bounds the loop even when most moves fall outside the
		// design space (tiny spacing spans can make every move invalid).
		for attempts := 0; evals < ap.MaxEvals && temp > 0.05 && attempts < 4*ap.MaxEvals; attempts++ {
			mv := neighborMoves[rng.Intn(len(neighborMoves))]
			nb := spacePoint{i1: cur.i1 + mv.i1, i2: cur.i2 + mv.i2}
			if !sp.contains(nb) {
				temp *= ap.Cooling
				continue
			}
			peak, err := eval(nb)
			if err != nil {
				return floorplan.Placement{}, 0, false, err
			}
			if peak <= s.cfg.ThresholdC {
				pl, _ := sp.placementAt(nb)
				return pl, peak, true, nil
			}
			delta := peak - curPeak
			if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
				cur, curPeak = nb, peak
			}
			temp *= ap.Cooling
		}
		if evals >= ap.MaxEvals {
			break
		}
	}
	return floorplan.Placement{}, 0, false, nil
}

// OptimizeAnnealing runs the full optimization with the annealing placement
// search instead of the greedy.
func (s *Searcher) OptimizeAnnealing(ap AnnealParams) (Result, error) {
	return s.optimize(func(n int, edgeMM float64, op power.DVFSPoint, p int) (floorplan.Placement, float64, bool, error) {
		return s.FindPlacementAnnealing(n, edgeMM, op, p, ap)
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
