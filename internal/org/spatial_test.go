package org

import (
	"context"
	"math"
	"testing"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/power"
	"chiplet25d/internal/surrogate"
)

// freshPoint is an evaluation point deliberately absent from the DoE plan,
// used to probe the calibrated model's generalization.
type freshPoint struct {
	n          int
	s1, s2, s3 float64
	fIdx, p    int
}

func (q freshPoint) placement(t testing.TB) floorplan.Placement {
	t.Helper()
	if q.n == 1 {
		return floorplan.SingleChip()
	}
	pl, err := floorplan.PaperOrg(q.n, q.s1, q.s2, q.s3)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// freshPoints spans all three classes with geometries, DVFS points, and
// core counts not in the DoE plan (spatialDoE).
var freshPoints = []freshPoint{
	{n: 1, fIdx: 1, p: 224},
	{n: 1, fIdx: 3, p: 160},
	{n: 4, s3: 2, fIdx: 1, p: 128},
	{n: 4, s3: 4.5, fIdx: 3, p: 224},
	{n: 4, s3: 0.5, fIdx: 0, p: 192},
	{n: 16, s1: 0.5, s2: 1, s3: 1.5, fIdx: 1, p: 128},
	{n: 16, s1: 1.5, s2: 0.5, s3: 3, fIdx: 3, p: 224},
	{n: 16, s1: 0.5, s2: 0.5, s3: 0.5, fIdx: 0, p: 32},
}

func TestSpatialCalibrationRecord(t *testing.T) {
	cfg := fastConfig(t, "cholesky")
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, n := range []int{1, 4, 16} {
		cal, err := eng.SpatialCalibration(ctx, cfg.Benchmark, n)
		if err != nil {
			t.Fatal(err)
		}
		if cal.Samples <= 0 || cal.HoldoutSamples <= 0 {
			t.Errorf("class %d: partition %d train / %d holdout, want both positive",
				n, cal.Samples, cal.HoldoutSamples)
		}
		if cal.Params.Chiplets() != n {
			t.Errorf("class %d: fitted %d chiplet parameters", n, cal.Params.Chiplets())
		}
		if cal.WorstCaseErrC < surrogate.SafetyPadC {
			t.Errorf("class %d: worst-case bound %g below the safety pad", n, cal.WorstCaseErrC)
		}
		// The bound is the safety-inflated end-to-end peak error, which is
		// deliberately tighter than the per-chiplet kernel errors (a cold
		// chiplet's misprediction never moves the peak); it must still be a
		// real measurement, not a degenerate zero.
		if cal.RMSFitErrC <= 0 || cal.WorstFitErrC <= 0 {
			t.Errorf("class %d: kernel fit errors (%g, %g) look degenerate",
				n, cal.RMSFitErrC, cal.WorstFitErrC)
		}
	}
	if _, err := eng.SpatialCalibration(ctx, cfg.Benchmark, 9); err == nil {
		t.Error("class 9: want an error for an unmodeled chiplet count")
	}
	st := eng.Stats()
	if st.Calibrations != 1 {
		t.Errorf("calibrations counter = %d, want 1", st.Calibrations)
	}
	if st.CalWorstErrC <= 0 {
		t.Errorf("calibration-error gauge = %g, want positive", st.CalWorstErrC)
	}
}

// TestSpatialPredictWithinBound replays fresh, non-DoE evaluation points
// through the spatial surrogate and checks every prediction lands within
// the class's recorded worst-case bound of the full simulation — the same
// property the verify drift tier re-checks continuously.
func TestSpatialPredictWithinBound(t *testing.T) {
	cfg := fastConfig(t, "streamcluster")
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, q := range freshPoints {
		pl := q.placement(t)
		op := power.FrequencySet[q.fIdx]
		pred, err := eng.SpatialPredictPeakC(ctx, cfg.Benchmark, pl, op, q.p)
		if err != nil {
			t.Fatal(err)
		}
		rec, _, err := eng.Simulate(ctx, cfg.Benchmark, pl, op, q.p)
		if err != nil {
			t.Fatal(err)
		}
		cal, err := eng.SpatialCalibration(ctx, cfg.Benchmark, q.n)
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(pred - rec.PeakC); e > cal.WorstCaseErrC {
			t.Errorf("point %+v: |%.2f - %.2f| = %.2f °C exceeds the recorded bound %.2f",
				q, pred, rec.PeakC, e, cal.WorstCaseErrC)
		}
	}
}

// TestSpatialTierEscalatesNearThreshold pins the escalation contract: a
// prediction inside the margin must fall through to the exact full-path
// value, and one clearly outside must be answered spatially.
func TestSpatialTierEscalatesNearThreshold(t *testing.T) {
	cfg := fastConfig(t, "cholesky")
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pl, err := floorplan.PaperOrg(4, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	op := power.FrequencySet[1]
	const p = 128
	full, _, err := eng.Simulate(ctx, cfg.Benchmark, pl, op, p)
	if err != nil {
		t.Fatal(err)
	}

	// Threshold right at the simulated peak: the spatial (and scalar)
	// tiers must escalate, returning the bit-exact full value.
	near := EvalPolicy{ThresholdC: full.PeakC, ScalarMarginC: cfg.SurrogateMarginC, SpatialMarginC: cfg.SpatialMarginC, Spatial: true}
	peak, st, err := eng.PeakCPolicy(ctx, cfg.Benchmark, pl, op, p, near)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fidelity != FidelityFull || peak != full.PeakC {
		t.Fatalf("near-threshold eval answered by %v with %.4f, want full fidelity %.4f",
			st.Fidelity, peak, full.PeakC)
	}

	// Threshold far above every achievable temperature: the spatial tier
	// must answer without simulating.
	far := near
	far.ThresholdC = 200
	peak, st, err = eng.PeakCPolicy(ctx, cfg.Benchmark, pl, op, p, far)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fidelity != FidelitySpatial {
		t.Fatalf("far-threshold eval answered by %v, want spatial", st.Fidelity)
	}
	cal, err := eng.SpatialCalibration(ctx, cfg.Benchmark, pl.NumChiplets())
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(peak - full.PeakC); e > cal.WorstCaseErrC {
		t.Fatalf("spatial answer %.2f is %.2f °C from the simulation %.2f, beyond the bound %.2f",
			peak, e, full.PeakC, cal.WorstCaseErrC)
	}
	if eng.Stats().SpatialHits == 0 {
		t.Fatal("spatial hit not counted in engine stats")
	}
}

// TestSpatialSearchAgreesWithFullFidelity is the golden-corpus parity
// property from the fidelity-tier design: enabling the spatial tier must
// not change the search winner, only the work spent finding it.
func TestSpatialSearchAgreesWithFullFidelity(t *testing.T) {
	spatial := fastConfig(t, "streamcluster")
	spatial.SpatialSurrogate = true
	full := spatial
	full.SpatialSurrogate = false
	full.SurrogateMarginC = -1

	ss, err := NewSearcher(spatial)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ss.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	sf, err := NewSearcher(full)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := sf.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Best.Op != rf.Best.Op || rs.Best.ActiveCores != rf.Best.ActiveCores ||
		rs.Best.N != rf.Best.N || math.Abs(rs.Best.InterposerMM-rf.Best.InterposerMM) > 1e-9 {
		t.Fatalf("spatial tier changed the optimum: %+v vs %+v", rs.Best, rf.Best)
	}
	if rs.SpatialSurrogateHits == 0 {
		t.Error("spatial search never used the spatial tier")
	}
	if rs.SurrogateHits != rs.SpatialSurrogateHits+rs.ScalarSurrogateHits {
		t.Errorf("surrogate hit total %d != scalar %d + spatial %d",
			rs.SurrogateHits, rs.ScalarSurrogateHits, rs.SpatialSurrogateHits)
	}
	if ss.ThermalSims() >= sf.ThermalSims() {
		t.Errorf("spatial tier did not save simulations: %d vs %d (DoE included)",
			ss.ThermalSims(), sf.ThermalSims())
	}
}

func TestChipletActiveCounts(t *testing.T) {
	for _, r := range []int{1, 2, 4} {
		for _, p := range []int{1, 32, 96, 256} {
			counts, err := chipletActiveCounts(r, p)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0
			for i := 0; i < r*r; i++ {
				sum += counts[i]
			}
			if sum != p {
				t.Errorf("r=%d p=%d: counts sum to %d", r, p, sum)
			}
			for i := r * r; i < maxSpatialChiplets; i++ {
				if counts[i] != 0 {
					t.Errorf("r=%d p=%d: count %d spilled past the chiplet grid", r, p, counts[i])
				}
			}
		}
	}
	if _, err := chipletActiveCounts(3, 64); err == nil {
		t.Error("r=3: want an error (16 % 3 != 0)")
	}
	if _, err := chipletActiveCounts(5, 64); err == nil {
		t.Error("r=5: want an error (25 chiplets exceed the class ceiling)")
	}
}

// TestSpatialPredictZeroAllocWarm checks the steady-state promise: once the
// model is calibrated and the placement's kernel matrix cached, a
// prediction allocates nothing.
func TestSpatialPredictZeroAllocWarm(t *testing.T) {
	cfg := fastConfig(t, "cholesky")
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pl, err := floorplan.PaperOrg(16, 1, 1, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	op := power.FrequencySet[2]
	if _, err := eng.SpatialPredictPeakC(ctx, cfg.Benchmark, pl, op, 160); err != nil {
		t.Fatal(err)
	}
	model, err := eng.spatialFor(ctx, cfg.Benchmark, &EvalStats{})
	if err != nil {
		t.Fatal(err)
	}
	cls := model.classes[16]
	k := engineKey{bench: benchKeyOf(cfg.Benchmark), ek: evalKey{pl: keyOf(pl), fIdx: 2, cores: 160}}
	nocW, err := eng.nocPower(cfg.Benchmark, pl, op, 160, k)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := cls.predictPeakC(eng, cfg.Benchmark, pl, op, 160, nocW); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm spatial prediction allocates %.1f objects per run, want 0", allocs)
	}
}
