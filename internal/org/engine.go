package org

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/noc"
	"chiplet25d/internal/obs"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
	"chiplet25d/internal/thermal"
)

// Engine is the concurrency-safe evaluation core under every search: a
// sharded, mutex-striped memo of full leakage-coupled thermal simulations
// with singleflight deduplication, so concurrent greedy restarts, multi-app
// mixes, and concurrent chipletd requests evaluating the same
// (benchmark, placement, f, p) share one simulation instead of repeating it.
//
// Every memoized value is a pure function of its key and the engine's
// physics profile — never of arrival order. Two rules make that hold under
// arbitrary concurrency:
//
//   - full simulations are deterministic, so the singleflight winner's
//     result equals what any loser would have computed;
//   - the scalar surrogate is calibrated at a canonical DVFS point
//     (FrequencySet[0]) rather than at whichever point happened to be
//     simulated first, so the effective thermal resistance rEff(b, pl, p) —
//     and hence every surrogate estimate — is order-independent.
//
// This purity is the determinism contract the parallel multi-start search
// relies on: parallel and serial searches observe bit-identical evaluation
// values regardless of interleaving.
//
// An Engine is safe for concurrent use by any number of goroutines. It is
// keyed by a physics fingerprint (Fingerprint); searchers may share an
// engine only when their configurations agree on that fingerprint.
type Engine struct {
	phys   physProfile
	fp     string
	fpHash string // content address of fp (sharding identity; see memo.go)

	// peerFetch, when installed, is consulted on every memo miss before a
	// local simulation runs (see memo.go). peerHits counts misses answered
	// by a peer's memo instead of a local simulation.
	peerFetch atomic.Pointer[PeerFetchFunc]
	peerHits  atomic.Int64

	shards [engineShards]engineShard

	// Telemetry, all atomic. hits/misses/dedupWaits describe the sim memo
	// (the expensive tier); thermalSims/surrogateEvals/spatialEvals/
	// cgIterations mirror the Searcher's classic counters process-wide.
	hits           atomic.Int64
	misses         atomic.Int64
	dedupWaits     atomic.Int64
	thermalSims    atomic.Int64
	surrogateEvals atomic.Int64 // evaluations decided by the scalar tier
	spatialEvals   atomic.Int64 // evaluations decided by the spatial tier
	cgIterations   atomic.Int64
	// calibrations counts completed spatial calibrations; calWorstErrBits
	// holds the float64 bits of the worst calibration error bound seen
	// (monotonic max), exported as a gauge by chipletd.
	calibrations    atomic.Int64
	calWorstErrBits atomic.Uint64

	// warmSeeds counts full simulations whose first CG solve was seeded
	// from a retained neighbor field (warm != nil and a candidate matched).
	warmSeeds atomic.Int64

	// warm retains recent converged temperature fields for cross-evaluation
	// CG warm starts (nil unless Config.WarmStart; see warm.go).
	warm *warmCache

	// models retains assembled thermal models by placement geometry so the
	// many evaluations of one placement share its assembly (always on:
	// reuse is bit-exact; see modelcache.go). modelReuses counts sims that
	// skipped assembly.
	models      *modelCache
	modelReuses atomic.Int64

	// spatials memoizes the per-benchmark spatial surrogate calibrations
	// (singleflight; see spatial.go).
	spatialMu sync.Mutex
	spatials  map[benchKey]*calEntry
}

const (
	// defaultWarmStartCache is the retained-field count when Config.WarmStart
	// is set without an explicit Config.WarmStartCache. A full 64x64 field is
	// 8 sheets x 4096 cells x 8 bytes = 256 KiB, so the default ring tops out
	// at 8 MiB.
	defaultWarmStartCache = 32

	engineShards = 64
	// engineShardCap bounds each shard's completed-entry count so a
	// long-lived process-wide engine cannot grow without bound; on overflow
	// the shard drops its completed entries (in-flight singleflight entries
	// survive — their waiters hold direct references). Purity makes
	// eviction safe: a re-computed value is bit-identical.
	engineShardCap = 4096
)

// canonicalFIdx is the DVFS point at which the surrogate's effective
// thermal resistance is calibrated for every (benchmark, placement, p).
// Fixing it (rather than using the first-simulated point) keeps surrogate
// estimates order-independent under concurrency.
const canonicalFIdx = 0

// physProfile is the physics substrate an engine evaluates on: every
// configuration input that changes a simulation result. Search-level knobs
// (seed, starts, workers, objective, cost, interposer sweep) are absent by
// construction, and the benchmark is a per-call parameter.
type physProfile struct {
	Thermal thermal.Config
	Leakage power.LeakageModel
	SimOpts power.SimOptions
	Link    noc.LinkParams
	Router  noc.RouterParams
}

// benchKey is the thermally relevant identity of a benchmark: only name,
// per-core reference power, and NoC traffic enter a simulation.
type benchKey struct {
	name     string
	refCoreW float64
	traffic  float64
}

func benchKeyOf(b perf.Benchmark) benchKey {
	return benchKey{name: b.Name, refCoreW: b.RefCoreW, traffic: b.Traffic}
}

// engineKey identifies one full simulation.
type engineKey struct {
	bench benchKey
	ek    evalKey
}

// SimRecord is the memoized outcome of one full leakage-coupled simulation
// — the scalar results a search or a solve endpoint needs, without the
// per-node temperature field (which would pin large arrays in the memo).
type SimRecord struct {
	PeakC             float64
	TotalPowerW       float64
	MeshPowerW        float64
	LeakageIterations int
	CGIterations      int
}

// simEntry is a singleflight slot: the first goroutine to claim a key
// computes; later arrivals wait on done and read the shared record.
type simEntry struct {
	done chan struct{}
	rec  SimRecord
	err  error
}

type engineShard struct {
	mu   sync.Mutex
	sims map[engineKey]*simEntry
	nocs map[engineKey]float64
	// hashes indexes successfully completed entries by their canonical
	// content-address hash, so peers can fetch by hash without knowing the
	// engineKey encoding (see memo.go).
	hashes map[string]engineKey
}

// EvalStats reports what one evaluation call did, so callers (Searcher,
// chipletd handlers) can attribute engine work to their own request.
type EvalStats struct {
	// Sims is the number of full simulations this call computed itself.
	Sims int
	// CGIterations and LeakageIterations sum over those simulations.
	CGIterations      int
	LeakageIterations int
	// MemoHits counts sim-memo lookups answered from a completed entry.
	MemoHits int
	// DedupWaits counts lookups that joined an in-flight computation.
	DedupWaits int
	// PeerFetches counts memo misses answered by a peer node's memo over
	// the sharding layer instead of a local simulation.
	PeerFetches int
	// Fidelity reports which tier of the evaluation ladder decided the
	// call: FidelityFull (the zero value) when the memoized full
	// simulation answered, FidelityScalar or FidelitySpatial when a
	// surrogate decided without simulating the requested point.
	Fidelity Fidelity
	// Escalation audit, filled by PeakCPolicy: which surrogate tiers were
	// consulted, what they predicted, and why the ladder stopped where it
	// did (the audit trail's per-decision record).
	SpatialConsulted bool
	SpatialPredC     float64 // spatial tier's predicted peak (°C)
	SpatialBoundC    float64 // calibration worst-case error bound (°C)
	SpatialMarginC   float64 // |prediction - threshold| (°C)
	ScalarConsulted  bool
	ScalarEstC       float64 // scalar tier's estimate (°C)
	// Reason explains the deciding tier ("spatial_decisive",
	// "scalar_decisive") or, for full simulations, the comma-joined chain
	// of tiers that declined ("spatial_within_bound,scalar_within_margin",
	// "canonical_point", "surrogates_disabled").
	Reason string
}

func (s *EvalStats) add(o EvalStats) {
	s.Sims += o.Sims
	s.CGIterations += o.CGIterations
	s.LeakageIterations += o.LeakageIterations
	s.MemoHits += o.MemoHits
	s.DedupWaits += o.DedupWaits
	s.PeerFetches += o.PeerFetches
}

// EngineStats is an engine's cumulative telemetry snapshot. SurrogateHits
// remains the total across surrogate tiers for backward compatibility;
// ScalarHits and SpatialHits break it down by fidelity.
type EngineStats struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	DedupWaits int64 `json:"dedup_waits"`
	// PeerHits counts memo misses answered by a peer node's memo (the
	// sharding layer's fetch hook) instead of a local simulation.
	PeerHits      int64 `json:"peer_hits"`
	ThermalSims   int64 `json:"thermal_sims"`
	SurrogateHits int64 `json:"surrogate_hits"`
	ScalarHits    int64 `json:"scalar_hits"`
	SpatialHits   int64 `json:"spatial_hits"`
	CGIterations  int64 `json:"cg_iterations"`
	// WarmSeeds counts full simulations whose first CG solve started from a
	// retained neighbor field rather than ambient (0 unless WarmStart).
	WarmSeeds int64 `json:"warm_seeds"`
	// ModelReuses counts full simulations that reused a cached thermal
	// model instead of reassembling it (see modelcache.go).
	ModelReuses int64 `json:"model_reuses"`
	// Calibrations counts completed spatial-surrogate calibrations;
	// CalWorstErrC is the worst calibration error bound (°C) across them,
	// 0 until the first calibration completes.
	Calibrations int64   `json:"calibrations"`
	CalWorstErrC float64 `json:"cal_worst_err_c"`
}

// NewEngine builds an evaluation engine from a configuration's physics
// fields. The worker-budget hierarchy is applied here: when the
// configuration enables restart- or scan-level parallelism
// (SearchWorkers > 1 or ParallelWorkers > 1) and no explicit KernelThreads
// is set, thermal kernels are pinned serial so the two levels of
// parallelism do not oversubscribe the machine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Thermal.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Leakage.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Link.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Router.Validate(); err != nil {
		return nil, err
	}
	phys := physProfile{
		Thermal: cfg.Thermal,
		Leakage: cfg.Leakage,
		SimOpts: cfg.SimOpts,
		Link:    cfg.Link,
		Router:  cfg.Router,
	}
	if (cfg.SearchWorkers > 1 || cfg.ParallelWorkers > 1) && phys.Thermal.KernelThreads == 0 {
		phys.Thermal.KernelThreads = 1
	}
	fp := physFingerprint(cfg)
	e := &Engine{phys: phys, fp: fp, fpHash: hashFingerprint(fp), spatials: make(map[benchKey]*calEntry)}
	if cfg.WarmStart {
		capacity := cfg.WarmStartCache
		if capacity == 0 {
			capacity = defaultWarmStartCache
		}
		e.warm = newWarmCache(capacity)
	}
	e.models = newModelCache(defaultModelCache)
	for i := range e.shards {
		e.shards[i].sims = make(map[engineKey]*simEntry)
		e.shards[i].nocs = make(map[engineKey]float64)
		e.shards[i].hashes = make(map[string]engineKey)
	}
	return e, nil
}

// physFingerprint canonicalizes the physics substrate of a configuration.
// KernelThreads is excluded: it is a wall-clock knob with bit-identical
// results (thermal's determinism contract), so it must not fork engine
// identity. Preconditioner is excluded by the same rule, one notch weaker:
// the multigrid and IC(0) solves converge to the same tolerance (verify's
// differential/mg-ic0 check pins them ≤1e-6 °C apart node-for-node), so
// the knob changes wall-clock, not answers, and must not fork the memo.
// Config.WarmStart/WarmStartCache are likewise absent (they are not part
// of the physics substrate at all).
func physFingerprint(cfg Config) string {
	tc := cfg.Thermal
	tc.KernelThreads = 0
	tc.Preconditioner = ""
	return fmt.Sprintf("%#v|%#v|%#v|%#v|%#v", tc, cfg.Leakage, cfg.SimOpts, cfg.Link, cfg.Router)
}

// Fingerprint identifies the engine's physics substrate; a Searcher may
// share this engine only when its configuration fingerprints identically.
func (e *Engine) Fingerprint() string { return e.fp }

// Stats returns the engine's cumulative telemetry.
func (e *Engine) Stats() EngineStats {
	scalar := e.surrogateEvals.Load()
	spatial := e.spatialEvals.Load()
	return EngineStats{
		Hits:          e.hits.Load(),
		Misses:        e.misses.Load(),
		DedupWaits:    e.dedupWaits.Load(),
		PeerHits:      e.peerHits.Load(),
		ThermalSims:   e.thermalSims.Load(),
		SurrogateHits: scalar + spatial,
		ScalarHits:    scalar,
		SpatialHits:   spatial,
		CGIterations:  e.cgIterations.Load(),
		WarmSeeds:     e.warmSeeds.Load(),
		ModelReuses:   e.modelReuses.Load(),
		Calibrations:  e.calibrations.Load(),
		CalWorstErrC:  math.Float64frombits(e.calWorstErrBits.Load()),
	}
}

// MemoLen returns the number of completed simulations resident in the memo.
func (e *Engine) MemoLen() int {
	n := 0
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		n += len(sh.sims)
		sh.mu.Unlock()
	}
	return n
}

func (e *Engine) shardOf(k engineKey) *engineShard {
	h := fnv.New32a()
	fmt.Fprintf(h, "%s|%g|%g|%d|%d|%d|%d|%d|%d",
		k.bench.name, k.bench.refCoreW, k.bench.traffic,
		k.ek.pl.n, k.ek.pl.edge2, k.ek.pl.s12, k.ek.pl.s22, k.ek.fIdx, k.ek.cores)
	return &e.shards[h.Sum32()%engineShards]
}

// checkEval validates the evaluation coordinates shared by every entry
// point.
func checkEval(op power.DVFSPoint, p int) (int, error) {
	fIdx := fIdxOf(op)
	if fIdx < 0 {
		return 0, fmt.Errorf("org: operating point %+v not in the DVFS table", op)
	}
	if p <= 0 || p > floorplan.NumCores {
		return 0, fmt.Errorf("org: active core count %d out of range", p)
	}
	return fIdx, nil
}

// nocPower returns the memoized mesh power for one evaluation key.
func (e *Engine) nocPower(b perf.Benchmark, pl floorplan.Placement, op power.DVFSPoint, p int, k engineKey) (float64, error) {
	sh := e.shardOf(k)
	sh.mu.Lock()
	if w, ok := sh.nocs[k]; ok {
		sh.mu.Unlock()
		return w, nil
	}
	sh.mu.Unlock()
	mesh, err := noc.MeshPower(pl, op, p, b.Traffic, e.phys.Link, e.phys.Router)
	if err != nil {
		return 0, err
	}
	w := mesh.TotalW()
	sh.mu.Lock()
	if len(sh.nocs) >= engineShardCap {
		sh.nocs = make(map[engineKey]float64)
	}
	sh.nocs[k] = w
	sh.mu.Unlock()
	return w, nil
}

// Simulate runs (or joins, or recalls) the full leakage-coupled simulation
// for an evaluation key. This is the always-simulate entry point: the
// surrogate never stands in, so the record carries converged power and
// iteration counts — what the chipletd solve endpoint reports.
func (e *Engine) Simulate(ctx context.Context, b perf.Benchmark, pl floorplan.Placement, op power.DVFSPoint, p int) (SimRecord, EvalStats, error) {
	var st EvalStats
	fIdx, err := checkEval(op, p)
	if err != nil {
		return SimRecord{}, st, err
	}
	k := engineKey{bench: benchKeyOf(b), ek: evalKey{pl: keyOf(pl), fIdx: fIdx, cores: p}}
	rec, err := e.sim(ctx, b, pl, op, p, k, &st, nil)
	return rec, st, err
}

// escalation carries the fidelity ladder's decision record down to the full
// simulation's engine.sim span, so ?trace=1 shows why a CG solve ran.
type escalation struct {
	spatialConsulted bool
	spatialPredC     float64
	spatialBoundC    float64
	spatialMarginC   float64
	scalarConsulted  bool
	scalarEstC       float64
	reason           string
}

// sim is the singleflight-deduplicated simulation lookup. Errors are never
// memoized: a failed or canceled computation removes its entry so later
// callers (whose contexts may still be live) retry, and waiters that
// observe a context-shaped error re-enter the lookup under their own
// context.
func (e *Engine) sim(ctx context.Context, b perf.Benchmark, pl floorplan.Placement, op power.DVFSPoint, p int, k engineKey, st *EvalStats, esc *escalation) (SimRecord, error) {
	sh := e.shardOf(k)
	for {
		if err := ctx.Err(); err != nil {
			return SimRecord{}, fmt.Errorf("org: search canceled: %w", err)
		}
		sh.mu.Lock()
		if ent, ok := sh.sims[k]; ok {
			select {
			case <-ent.done:
				// Completed entry: a memo hit.
				sh.mu.Unlock()
				e.hits.Add(1)
				st.MemoHits++
				return ent.rec, ent.err
			default:
			}
			sh.mu.Unlock()
			// In-flight: join the computation.
			e.dedupWaits.Add(1)
			st.DedupWaits++
			select {
			case <-ent.done:
			case <-ctx.Done():
				return SimRecord{}, fmt.Errorf("org: search canceled: %w", ctx.Err())
			}
			if ent.err == nil {
				return ent.rec, nil
			}
			if ctx.Err() == nil && ctxErrLike(ent.err) {
				// The computing goroutine was canceled but this caller is
				// live: retry (the failed entry has been removed).
				continue
			}
			return SimRecord{}, ent.err
		}
		// Miss: claim the key and compute (or pull from the owning peer).
		ent := &simEntry{done: make(chan struct{})}
		if len(sh.sims) >= engineShardCap {
			e.evictCompletedLocked(sh)
		}
		sh.sims[k] = ent
		sh.mu.Unlock()
		e.misses.Add(1)

		kh := memoKeyHash(k)
		if pf := e.peerFetch.Load(); pf != nil {
			// A fetched record is bit-identical to a local simulation (memo
			// purity), so it is published exactly like one — waiters already
			// parked on ent observe no difference. Any fetch failure falls
			// through to the local simulation below.
			if rec, ok := (*pf)(ctx, e.fpHash, kh); ok {
				ent.rec = rec
				close(ent.done)
				e.indexMemoKey(sh, k, kh)
				e.peerHits.Add(1)
				st.PeerFetches++
				return rec, nil
			}
		}

		rec, err := e.runSim(ctx, b, pl, op, p, k, esc)
		ent.rec, ent.err = rec, err
		if err != nil {
			// Never memoize failures; purity only covers successes.
			sh.mu.Lock()
			if sh.sims[k] == ent {
				delete(sh.sims, k)
			}
			sh.mu.Unlock()
		}
		close(ent.done)
		if err == nil {
			e.indexMemoKey(sh, k, kh)
			st.Sims++
			st.CGIterations += rec.CGIterations
			st.LeakageIterations += rec.LeakageIterations
			e.thermalSims.Add(1)
			e.cgIterations.Add(int64(rec.CGIterations))
		}
		return rec, err
	}
}

// ctxErrLike reports whether err is (or wraps) a context cancellation or
// deadline error — the class of failures that are caller-specific and must
// not be handed to unrelated singleflight waiters.
func ctxErrLike(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// evictCompletedLocked drops completed entries from a full shard (callers
// hold sh.mu). In-flight entries are kept: their waiters hold references
// and the computation is about to deliver a fresh, still-wanted value.
func (e *Engine) evictCompletedLocked(sh *engineShard) {
	for k, ent := range sh.sims {
		select {
		case <-ent.done:
			delete(sh.sims, k)
		default:
		}
	}
	// Prune the hash index of evicted entries so peer fetches never resolve
	// a hash to a key the memo no longer holds.
	for h, k := range sh.hashes {
		if _, ok := sh.sims[k]; !ok {
			delete(sh.hashes, h)
		}
	}
}

// runSim executes one full leakage-coupled simulation (no memo interaction).
// esc, when non-nil, is the fidelity ladder's decision record; its fields
// land on the engine.sim span so a trace shows why this CG solve ran.
func (e *Engine) runSim(ctx context.Context, b perf.Benchmark, pl floorplan.Placement, op power.DVFSPoint, p int, k engineKey, esc *escalation) (SimRecord, error) {
	ctx, esp := obs.Start(ctx, "engine.sim")
	esp.SetAttr("bench", b.Name)
	esp.SetAttr("freq_mhz", op.FreqMHz)
	esp.SetAttr("active_cores", p)
	esp.SetAttr("fidelity", FidelityFull.String())
	if esc != nil {
		esp.SetAttr("escalation", esc.reason)
		if esc.spatialConsulted {
			esp.SetAttr("spatial_pred_c", esc.spatialPredC)
			esp.SetAttr("spatial_bound_c", esc.spatialBoundC)
			esp.SetAttr("spatial_margin_c", esc.spatialMarginC)
		}
		if esc.scalarConsulted {
			esp.SetAttr("scalar_est_c", esc.scalarEstC)
		}
	}
	defer esp.End()
	_, nsp := obs.Start(ctx, "noc.mesh")
	nocW, err := e.nocPower(b, pl, op, p, k)
	nsp.End()
	if err != nil {
		return SimRecord{}, err
	}
	_, fsp := obs.Start(ctx, "floorplan.build")
	fsp.SetAttr("chiplets", pl.NumChiplets())
	fsp.SetAttr("interposer_mm", pl.W)
	cores, err := pl.Cores()
	fsp.End()
	if err != nil {
		return SimRecord{}, err
	}
	_, msp := obs.Start(ctx, "thermal.model")
	msp.SetAttr("grid_n", e.phys.Thermal.Nx)
	model, reused, err := e.model(pl, k.ek.pl)
	msp.SetAttr("reused", reused)
	msp.End()
	if err != nil {
		return SimRecord{}, err
	}
	if reused {
		e.modelReuses.Add(1)
	}
	active, err := power.MintempActive(p)
	if err != nil {
		return SimRecord{}, err
	}
	w := power.Workload{
		RefCoreW: b.RefCoreW,
		Op:       op,
		Active:   active,
		NoCW:     nocW,
		Leakage:  e.phys.Leakage,
	}
	// Cross-evaluation warm start: seed the first solve of the leakage loop
	// from the nearest retained same-operator field (see warm.go). The seed
	// only changes how fast CG converges, never what it converges to.
	warmSource := "ambient"
	seed := e.warm.nearest(k)
	if seed != nil {
		warmSource = "neighbor"
		e.warmSeeds.Add(1)
	}
	esp.SetAttr("warm_source", warmSource)
	res, err := power.SimulateSeededCtx(ctx, model, cores, w, e.phys.SimOpts, seed)
	if err != nil {
		return SimRecord{}, err
	}
	if e.warm != nil && res.Thermal != nil {
		e.warm.put(k, res.Thermal.T)
		// The field has been copied into the ring; hand the result's buffer
		// back to the model's solution pool.
		res.Thermal.Recycle()
	}
	return SimRecord{
		PeakC:             res.PeakC,
		TotalPowerW:       res.TotalPowerW,
		MeshPowerW:        nocW,
		LeakageIterations: res.Iterations,
		CGIterations:      res.CGIterations,
	}, nil
}

// estimate solves the scalar leakage fixed point: peak temperature and
// total power of p active cores when the silicon sits at the temperature
// implied by effective thermal resistance rEff.
func (e *Engine) estimate(b perf.Benchmark, op power.DVFSPoint, p int, nocW, rEff float64) (totalW, peakC float64) {
	lm := e.phys.Leakage
	dyn := float64(p)*b.RefCoreW*(1-lm.FracAtRef)*power.DynScale(op) + nocW
	l0 := float64(p) * b.RefCoreW * lm.FracAtRef * power.LeakScale(op)
	amb := e.phys.Thermal.AmbientC
	kk := lm.TempCoeff
	den := 1 - rEff*l0*kk
	if den <= 0.05 {
		den = 0.05 // thermal-runaway guard; the estimate saturates high
	}
	peakC = (amb + rEff*(dyn+l0*(1-kk*lm.RefC))) / den
	totalW = dyn + l0*lm.Factor(peakC)
	return totalW, peakC
}

// PeakC evaluates the peak temperature of (benchmark, placement, op, p)
// under the classic two-tier policy: scalar surrogate with margin marginC,
// escalating to the full simulation. It is PeakCPolicy without the spatial
// tier, kept for callers that predate the fidelity ladder.
func (e *Engine) PeakC(ctx context.Context, b perf.Benchmark, pl floorplan.Placement, op power.DVFSPoint, p int, thresholdC, marginC float64) (float64, EvalStats, error) {
	return e.PeakCPolicy(ctx, b, pl, op, p, EvalPolicy{ThresholdC: thresholdC, ScalarMarginC: marginC})
}

// PeakCPolicy evaluates the peak temperature of (benchmark, placement, op,
// p) under an escalation policy — the fidelity ladder:
//
//  1. spatial tier (when pol.Spatial): the calibrated compact model
//     predicts the per-chiplet peak vector; its hottest entry decides the
//     evaluation when it lands farther than
//     max(pol.SpatialMarginC, calibration worst-case error) from
//     pol.ThresholdC. First use calibrates the benchmark's model from the
//     fixed DoE simulations (memoized per engine).
//  2. scalar tier (when pol.ScalarMarginC >= 0 and op is not the canonical
//     calibration point): the scalar surrogate, calibrated from the
//     memoized canonical simulation of the same placement and core count,
//     decides when its estimate sits farther than pol.ScalarMarginC from
//     pol.ThresholdC.
//  3. the full leakage-coupled simulation (memoized).
//
// The returned value is a pure function of the arguments, the policy, and
// the engine's physics — independent of evaluation order and concurrency.
func (e *Engine) PeakCPolicy(ctx context.Context, b perf.Benchmark, pl floorplan.Placement, op power.DVFSPoint, p int, pol EvalPolicy) (float64, EvalStats, error) {
	var st EvalStats
	fIdx, err := checkEval(op, p)
	if err != nil {
		return 0, st, err
	}
	if err := ctx.Err(); err != nil {
		return 0, st, fmt.Errorf("org: search canceled: %w", err)
	}
	bk := benchKeyOf(b)
	pk := keyOf(pl)
	k := engineKey{bench: bk, ek: evalKey{pl: pk, fIdx: fIdx, cores: p}}
	esc := escalation{}
	if pol.Spatial {
		pred, bound, ok, err := e.spatialPeakC(ctx, b, pl, op, p, k, &st)
		if err != nil {
			return 0, st, err
		}
		if ok {
			margin := math.Abs(pred - pol.ThresholdC)
			esc.spatialConsulted = true
			esc.spatialPredC, esc.spatialBoundC, esc.spatialMarginC = pred, bound, margin
			st.SpatialConsulted = true
			st.SpatialPredC, st.SpatialBoundC, st.SpatialMarginC = pred, bound, margin
			if margin > math.Max(pol.SpatialMarginC, bound) {
				st.Fidelity = FidelitySpatial
				st.Reason = "spatial_decisive"
				e.spatialEvals.Add(1)
				return pred, st, nil
			}
			esc.reason = "spatial_within_bound"
		} else {
			esc.reason = "spatial_uncovered"
		}
	}
	if pol.ScalarMarginC >= 0 && fIdx != canonicalFIdx {
		// Calibrate at the canonical point (memoized; usually already
		// simulated, since the search's objective ordering visits the
		// canonical frequency early).
		ck := engineKey{bench: bk, ek: evalKey{pl: pk, fIdx: canonicalFIdx, cores: p}}
		var cst EvalStats
		cref, err := e.sim(ctx, b, pl, power.FrequencySet[canonicalFIdx], p, ck, &cst, nil)
		st.add(cst)
		if err != nil {
			return 0, st, err
		}
		if cref.TotalPowerW > 0 {
			rEff := (cref.PeakC - e.phys.Thermal.AmbientC) / cref.TotalPowerW
			nocW, err := e.nocPower(b, pl, op, p, k)
			if err != nil {
				return 0, st, err
			}
			_, est := e.estimate(b, op, p, nocW, rEff)
			esc.scalarConsulted = true
			esc.scalarEstC = est
			st.ScalarConsulted = true
			st.ScalarEstC = est
			if math.Abs(est-pol.ThresholdC) > pol.ScalarMarginC {
				st.Fidelity = FidelityScalar
				st.Reason = "scalar_decisive"
				e.surrogateEvals.Add(1)
				return est, st, nil
			}
			esc.reason = joinReason(esc.reason, "scalar_within_margin")
		} else {
			esc.reason = joinReason(esc.reason, "scalar_uncalibratable")
		}
	} else if pol.ScalarMarginC >= 0 {
		esc.reason = joinReason(esc.reason, "canonical_point")
	}
	if esc.reason == "" {
		esc.reason = "surrogates_disabled"
	}
	st.Reason = esc.reason
	var sst EvalStats
	rec, err := e.sim(ctx, b, pl, op, p, k, &sst, &esc)
	st.add(sst)
	if err != nil {
		return 0, st, err
	}
	return rec.PeakC, st, nil
}

// joinReason appends one escalation reason to a comma-joined chain.
func joinReason(chain, r string) string {
	if chain == "" {
		return r
	}
	return chain + "," + r
}
