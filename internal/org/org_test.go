package org

import (
	"math"
	"testing"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
)

// fastConfig returns a coarse, quick configuration for tests: 16x16 thermal
// grid and a 2 mm interposer step.
func fastConfig(t *testing.T, benchName string) Config {
	t.Helper()
	b, err := perf.ByName(benchName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(b)
	cfg.Thermal.Nx, cfg.Thermal.Ny = 16, 16
	cfg.InterposerStepMM = 2
	cfg.Starts = 5
	return cfg
}

func TestConfigValidate(t *testing.T) {
	cfg := fastConfig(t, "cholesky")
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Objective = Objective{}
	if err := bad.Validate(); err == nil {
		t.Errorf("expected error for zero objective weights")
	}
	bad = cfg
	bad.ThresholdC = 40
	if err := bad.Validate(); err == nil {
		t.Errorf("expected error for threshold below ambient")
	}
	bad = cfg
	bad.ChipletCounts = []int{9}
	if err := bad.Validate(); err == nil {
		t.Errorf("expected error for unsupported chiplet count")
	}
	bad = cfg
	bad.InterposerMinMM = 60
	if err := bad.Validate(); err == nil {
		t.Errorf("expected error for interposer range beyond Eq. (7)")
	}
	bad = cfg
	bad.Starts = 0
	if err := bad.Validate(); err == nil {
		t.Errorf("expected error for zero starts")
	}
}

func TestObjectiveValidate(t *testing.T) {
	if err := (Objective{Alpha: -1, Beta: 1}).Validate(); err == nil {
		t.Errorf("expected error for negative alpha")
	}
	if err := (Objective{Alpha: 0.5, Beta: 0.5}).Validate(); err != nil {
		t.Errorf("balanced objective should validate: %v", err)
	}
}

func TestBaselineHighPowerIsThermallyLimited(t *testing.T) {
	s, err := NewSearcher(fastConfig(t, "shock"))
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if !base.Feasible {
		t.Fatal("shock baseline should have some feasible configuration")
	}
	// The single chip cannot run shock with all cores at 1 GHz (that is
	// the dark-silicon premise).
	full := power.FrequencySet[0]
	if base.Op == full && base.ActiveCores == 256 {
		t.Fatalf("shock baseline at full throttle contradicts the dark-silicon premise")
	}
	if base.PeakC > s.cfg.ThresholdC {
		t.Fatalf("baseline best config violates its own threshold: %.1f", base.PeakC)
	}
	if base.BestIPS >= s.cfg.Benchmark.IPS(full, 256) {
		t.Fatalf("baseline IPS should be below the unconstrained maximum")
	}
}

func TestBaselineMemoized(t *testing.T) {
	s, err := NewSearcher(fastConfig(t, "lu.cont"))
	if err != nil {
		t.Fatal(err)
	}
	b1, err := s.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	sims := s.ThermalSims()
	b2, err := s.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if s.ThermalSims() != sims {
		t.Errorf("second Baseline() call re-ran simulations")
	}
	if b1 != b2 {
		t.Errorf("baseline not stable: %+v vs %+v", b1, b2)
	}
}

func TestFindPlacementFeasibleCase(t *testing.T) {
	s, err := NewSearcher(fastConfig(t, "canneal"))
	if err != nil {
		t.Fatal(err)
	}
	// Low-power benchmark, few cores, large interposer: must find easily.
	pl, peak, found, err := s.FindPlacement(16, 40, power.FrequencySet[2], 96)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("expected a feasible placement for a cool workload on a 40 mm interposer")
	}
	if peak > s.cfg.ThresholdC {
		t.Fatalf("returned placement violates the threshold: %.1f", peak)
	}
	if err := pl.Validate(); err != nil {
		t.Fatalf("returned placement invalid: %v", err)
	}
	if math.Abs(pl.W-40) > 1e-9 {
		t.Fatalf("placement edge %.1f, want the requested 40 mm", pl.W)
	}
}

func TestFindPlacementInfeasibleCase(t *testing.T) {
	s, err := NewSearcher(fastConfig(t, "shock"))
	if err != nil {
		t.Fatal(err)
	}
	// All 256 cores at 1 GHz on a minimal 20 mm interposer: hopeless.
	_, _, found, err := s.FindPlacement(16, 20, power.FrequencySet[0], 256)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("shock at full throttle on a minimal interposer should be infeasible")
	}
	// An edge too small to even fit the chiplets is not an error, just
	// "no placement".
	_, _, found, err = s.FindPlacement(4, 19, power.FrequencySet[4], 32)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("19 mm interposer cannot fit 18 mm of silicon plus guard bands")
	}
}

func TestOptimizeCholeskyBeatsBaseline(t *testing.T) {
	s, err := NewSearcher(fastConfig(t, "cholesky"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("cholesky optimization should find a feasible organization")
	}
	best := res.Best
	if best.PeakC > s.cfg.ThresholdC {
		t.Fatalf("chosen organization violates Eq. (6): %.1f °C", best.PeakC)
	}
	if best.InterposerMM > floorplan.MaxInterposerEdgeMM+1e-9 {
		t.Fatalf("chosen organization violates Eq. (7): %.1f mm", best.InterposerMM)
	}
	// With α=1, β=0 the optimizer maximizes performance: a thermally
	// limited high-power benchmark must gain substantially from 2.5D.
	if best.NormPerf < 1.2 {
		t.Fatalf("cholesky 2.5D should beat the baseline clearly, got %.2fx", best.NormPerf)
	}
	if err := best.Placement.Validate(); err != nil {
		t.Fatalf("best placement invalid: %v", err)
	}
	if res.ThermalSims == 0 || res.CombosTried == 0 {
		t.Fatalf("bookkeeping missing: %+v", res)
	}
}

func TestOptimizeCostOnlyFindsCheapOrganization(t *testing.T) {
	cfg := fastConfig(t, "lu.cont")
	cfg.Objective = Objective{Alpha: 0, Beta: 1}
	s, err := NewSearcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("cost-only optimization should find a feasible organization")
	}
	// The paper: at the minimal interposer size 2.5D costs ~36% less.
	if res.Best.NormCost > 0.75 {
		t.Fatalf("cost-optimal organization should be much cheaper than the chip, got %.2fx", res.Best.NormCost)
	}
	// Cost-only optimum sits at (or near) the smallest feasible interposer.
	if res.Best.InterposerMM > 30 {
		t.Fatalf("cost-optimal interposer %.1f mm suspiciously large", res.Best.InterposerMM)
	}
}

func TestOptimizeRespectsThresholdSensitivity(t *testing.T) {
	// A higher temperature threshold can only improve (or match) the
	// optimal normalized performance... and the baseline improves too, so
	// here we just check both thresholds produce valid results.
	for _, th := range []float64{85, 105} {
		cfg := fastConfig(t, "hpccg")
		cfg.ThresholdC = th
		s, err := NewSearcher(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Fatalf("threshold %.0f: expected feasible result", th)
		}
		if res.Best.PeakC > th {
			t.Fatalf("threshold %.0f violated: %.1f", th, res.Best.PeakC)
		}
	}
}

func TestGreedyMatchesExhaustive(t *testing.T) {
	// The paper validates the greedy against exhaustive search (99%
	// agreement). On a coarse grid the two must pick the same (f, p, n,
	// interposer) here.
	for _, name := range []string{"canneal", "cholesky"} {
		g, err := NewSearcher(fastConfig(t, name))
		if err != nil {
			t.Fatal(err)
		}
		gr, err := g.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewSearcher(fastConfig(t, name))
		if err != nil {
			t.Fatal(err)
		}
		ex, err := e.OptimizeExhaustive()
		if err != nil {
			t.Fatal(err)
		}
		if gr.Feasible != ex.Feasible {
			t.Fatalf("%s: greedy feasible=%v, exhaustive=%v", name, gr.Feasible, ex.Feasible)
		}
		if !gr.Feasible {
			continue
		}
		if gr.Best.Op != ex.Best.Op || gr.Best.ActiveCores != ex.Best.ActiveCores ||
			gr.Best.N != ex.Best.N || math.Abs(gr.Best.InterposerMM-ex.Best.InterposerMM) > 1e-9 {
			t.Fatalf("%s: greedy %+v != exhaustive %+v", name, gr.Best, ex.Best)
		}
		if g.ThermalSims() > e.ThermalSims() {
			t.Errorf("%s: greedy used more sims (%d) than exhaustive (%d)",
				name, g.ThermalSims(), e.ThermalSims())
		}
	}
}

func TestMaxIPSAtEdgeMonotone(t *testing.T) {
	s, err := NewSearcher(fastConfig(t, "swaptions"))
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, edge := range []float64{22, 30, 40, 50} {
		o, found, err := s.MaxIPSAtEdge(edge)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("edge %.0f: no feasible organization for a low-power benchmark", edge)
		}
		if o.IPS < prev-1e-9 {
			t.Fatalf("max IPS decreased with interposer size at %.0f mm", edge)
		}
		prev = o.IPS
	}
}

func TestMinObjectiveAtEdge(t *testing.T) {
	cfg := fastConfig(t, "canneal")
	cfg.Objective = Objective{Alpha: 0.5, Beta: 0.5}
	s, err := NewSearcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obj, o, found, err := s.MinObjectiveAtEdge(30)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("expected a feasible organization at 30 mm")
	}
	want := 0.5/o.NormPerf + 0.5*o.NormCost
	if math.Abs(obj-want) > 1e-9 {
		t.Fatalf("objective value %.4f inconsistent with organization %.4f", obj, want)
	}
}

func TestSurrogateAgreesWithFullSimulation(t *testing.T) {
	with := fastConfig(t, "streamcluster")
	without := with
	without.SurrogateMarginC = -1
	sw, err := NewSearcher(with)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := sw.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	so, err := NewSearcher(without)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := so.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if rw.Best.Op != ro.Best.Op || rw.Best.ActiveCores != ro.Best.ActiveCores ||
		rw.Best.N != ro.Best.N || math.Abs(rw.Best.InterposerMM-ro.Best.InterposerMM) > 1e-9 {
		t.Fatalf("surrogate changed the optimum: %+v vs %+v", rw.Best, ro.Best)
	}
	if sw.ThermalSims() >= so.ThermalSims() {
		t.Errorf("surrogate did not save simulations: %d vs %d", sw.ThermalSims(), so.ThermalSims())
	}
}

func TestPeakCRejectsBadInputs(t *testing.T) {
	s, err := NewSearcher(fastConfig(t, "canneal"))
	if err != nil {
		t.Fatal(err)
	}
	chip := floorplan.SingleChip()
	if _, err := s.PeakC(chip, power.DVFSPoint{FreqMHz: 123, VoltageV: 1}, 64); err == nil {
		t.Errorf("expected error for off-table operating point")
	}
	if _, err := s.PeakC(chip, power.NominalPoint, 0); err == nil {
		t.Errorf("expected error for zero active cores")
	}
	if _, err := s.PeakC(chip, power.NominalPoint, 300); err == nil {
		t.Errorf("expected error for too many active cores")
	}
}

func TestNeighborPolicyString(t *testing.T) {
	if RandomNeighbor.String() != "random" || SteepestDescent.String() != "steepest" {
		t.Errorf("neighbor policy strings wrong")
	}
}

// Both neighbor policies must find the same optimum on a coarse instance.
func TestSteepestDescentMatchesRandom(t *testing.T) {
	cfg := fastConfig(t, "cholesky")
	r, err := NewSearcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := r.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.NeighborPolicy = SteepestDescent
	s, err := NewSearcher(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := s.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if rr.Feasible != sr.Feasible {
		t.Fatalf("feasibility disagreement between neighbor policies")
	}
	if rr.Feasible && (rr.Best.Op != sr.Best.Op || rr.Best.ActiveCores != sr.Best.ActiveCores ||
		rr.Best.N != sr.Best.N) {
		t.Fatalf("policies disagree: %+v vs %+v", rr.Best, sr.Best)
	}
}
