package org

import (
	"sync"
	"time"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/power"
)

// Search convergence audit trail: a bounded, per-request event log of what
// the search machinery actually did — which restart was seeded from what,
// which moves the greedy walk accepted or rejected, which fidelity tier
// decided each evaluation and by what margin, and how the engine memo
// answered. The aggregate counters (ThermalSims, SurrogateHits, ...) say
// how much work a search did; the audit trail says why. It is opt-in and
// bounded (drop-oldest), so an enabled trail costs one ring slot per event
// and a disabled one (nil *AuditLog) costs a nil check.

// Audit event kinds.
const (
	AuditRestartSeeded = "restart_seeded"
	AuditMoveAccepted  = "move_accepted"
	AuditMoveRejected  = "move_rejected"
	AuditFeasibleFound = "feasible_found"
	AuditEval          = "eval"
	// AuditTCOEval is one server TCO elaboration (recorded by serving
	// layers that answer /v1/cost/tco, not by the search itself).
	AuditTCOEval = "tco_eval"
)

// AuditEvent is one entry of the search audit trail. Fields are a union
// over event kinds; unused ones are omitted from JSON.
type AuditEvent struct {
	Seq  uint64  `json:"seq"`
	AtMS float64 `json:"at_ms"` // since the log was created (request start)
	Kind string  `json:"kind"`

	// Search coordinates.
	Restart int     `json:"restart,omitempty"`
	Step    int     `json:"step,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	N       int     `json:"n,omitempty"`
	EdgeMM  float64 `json:"edge_mm,omitempty"`
	S1MM    float64 `json:"s1_mm,omitempty"`
	S2MM    float64 `json:"s2_mm,omitempty"`
	FreqMHz float64 `json:"freq_mhz,omitempty"`
	Cores   int     `json:"active_cores,omitempty"`

	// Evaluation outcome.
	Fidelity string  `json:"fidelity,omitempty"`
	PeakC    float64 `json:"peak_c,omitempty"`
	PredC    float64 `json:"pred_c,omitempty"`
	BoundC   float64 `json:"bound_c,omitempty"`
	MarginC  float64 `json:"margin_c,omitempty"`
	Reason   string  `json:"reason,omitempty"`
	MemoHits int     `json:"memo_hits,omitempty"`
	Dedup    int     `json:"dedup_waits,omitempty"`
	Sims     int     `json:"sims,omitempty"`
	Err      string  `json:"err,omitempty"`
}

// AuditLog is a bounded, concurrency-safe event ring. The zero capacity and
// the nil receiver both disable recording, so call sites need no guards.
type AuditLog struct {
	mu      sync.Mutex
	start   time.Time
	events  []AuditEvent // ring storage
	head    int          // index of the oldest event when full
	size    int
	seq     uint64
	dropped uint64
	// notify, when set, observes every recorded event after it is stamped
	// (outside the lock). Live consumers — the SSE streaming layer — use it
	// to forward restart/incumbent updates as they land.
	notify func(AuditEvent)
}

// NewAuditLog builds a log holding the most recent capacity events;
// capacity <= 0 returns nil (recording disabled).
func NewAuditLog(capacity int) *AuditLog {
	if capacity <= 0 {
		return nil
	}
	return &AuditLog{start: time.Now(), events: make([]AuditEvent, capacity)}
}

// WithNotify installs a live observer called with every recorded event
// (after stamping, outside the ring lock). The callback must be fast and
// non-blocking — it runs on the search's evaluation path. Nil-safe: on a
// nil log it is a no-op returning nil, so the disabled path stays disabled.
func (l *AuditLog) WithNotify(fn func(AuditEvent)) *AuditLog {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	l.notify = fn
	l.mu.Unlock()
	return l
}

// Add records one event, evicting the oldest when full. No-op on nil.
func (l *AuditLog) Add(ev AuditEvent) {
	if l == nil {
		return
	}
	now := time.Now()
	l.mu.Lock()
	l.seq++
	ev.Seq = l.seq
	ev.AtMS = float64(now.Sub(l.start)) / float64(time.Millisecond)
	if l.size < len(l.events) {
		l.events[(l.head+l.size)%len(l.events)] = ev
		l.size++
	} else {
		l.events[l.head] = ev
		l.head = (l.head + 1) % len(l.events)
		l.dropped++
	}
	notify := l.notify
	l.mu.Unlock()
	if notify != nil {
		notify(ev)
	}
}

// Events returns the retained events oldest-first. Nil-safe (returns nil).
func (l *AuditLog) Events() []AuditEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]AuditEvent, 0, l.size)
	for i := 0; i < l.size; i++ {
		out = append(out, l.events[(l.head+i)%len(l.events)])
	}
	return out
}

// Len returns the number of retained events; Dropped the number evicted.
func (l *AuditLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Dropped returns how many events were evicted from a full ring.
func (l *AuditLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// AuditTrail is the serialized form: the retained events plus how many the
// ring evicted, so a truncated trail is distinguishable from a complete one.
type AuditTrail struct {
	Events  []AuditEvent `json:"events"`
	Dropped uint64       `json:"dropped,omitempty"`
}

// Trail snapshots the log into its serialized form. Nil-safe (returns nil).
func (l *AuditLog) Trail() *AuditTrail {
	if l == nil {
		return nil
	}
	return &AuditTrail{Events: l.Events(), Dropped: l.Dropped()}
}

// evalEvent records one evaluation outcome (kind "eval"). Called on the
// searcher's evaluation path; nil-safe so the disabled path costs only the
// receiver check.
func (l *AuditLog) evalEvent(pl floorplan.Placement, op power.DVFSPoint, p int, peak float64, st EvalStats, err error) {
	if l == nil {
		return
	}
	ev := AuditEvent{
		Kind:     AuditEval,
		N:        pl.NumChiplets(),
		EdgeMM:   pl.W,
		S1MM:     pl.S1,
		S2MM:     pl.S2,
		FreqMHz:  op.FreqMHz,
		Cores:    p,
		Fidelity: st.Fidelity.String(),
		PeakC:    peak,
		Reason:   st.Reason,
		MemoHits: st.MemoHits,
		Dedup:    st.DedupWaits,
		Sims:     st.Sims,
	}
	if st.SpatialConsulted {
		ev.PredC = st.SpatialPredC
		ev.BoundC = st.SpatialBoundC
		ev.MarginC = st.SpatialMarginC
	}
	if err != nil {
		ev.Err = err.Error()
	}
	l.Add(ev)
}
