package org

import (
	"context"
	"testing"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/power"
)

// memoPoint is one simulation operating point shared by the memo tests.
func memoPoint(t *testing.T) (floorplan.Placement, power.DVFSPoint, int) {
	t.Helper()
	pl, err := floorplan.UniformGrid(2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return pl, power.FrequencySet[2], 128
}

func TestMemoFetchRoundTrip(t *testing.T) {
	cfg := fastConfig(t, "cholesky")
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl, op, p := memoPoint(t)
	rec, st, err := eng.Simulate(context.Background(), cfg.Benchmark, pl, op, p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sims != 1 {
		t.Fatalf("sims = %d, want 1 fresh simulation", st.Sims)
	}
	hashes := eng.MemoKeyHashes(8)
	if len(hashes) != 1 {
		t.Fatalf("memo key hashes = %v, want exactly one", hashes)
	}
	got, ok := eng.MemoFetch(hashes[0])
	if !ok || got != rec {
		t.Fatalf("MemoFetch = %+v (ok=%v), want the simulated record %+v", got, ok, rec)
	}
	if _, ok := eng.MemoFetch("no-such-hash"); ok {
		t.Error("MemoFetch answered an unknown key hash")
	}
}

func TestPeerFetchServesMemoMiss(t *testing.T) {
	cfg := fastConfig(t, "cholesky")
	a, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FingerprintHash() != b.FingerprintHash() {
		t.Fatal("same config produced different fingerprint hashes")
	}
	pl, op, p := memoPoint(t)
	want, _, err := a.Simulate(context.Background(), cfg.Benchmark, pl, op, p)
	if err != nil {
		t.Fatal(err)
	}

	calls := 0
	b.SetPeerFetch(func(_ context.Context, fpHash, keyHash string) (SimRecord, bool) {
		calls++
		if fpHash != a.FingerprintHash() {
			t.Errorf("hook fingerprint = %s, want %s", fpHash, a.FingerprintHash())
		}
		return a.MemoFetch(keyHash)
	})
	got, st, err := b.Simulate(context.Background(), cfg.Benchmark, pl, op, p)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("peer-fetched record %+v != owner's %+v", got, want)
	}
	if st.Sims != 0 || st.PeerFetches != 1 {
		t.Errorf("stats = %+v, want zero local sims and one peer fetch", st)
	}
	if calls != 1 {
		t.Errorf("hook called %d times, want 1", calls)
	}
	if hits := b.Stats().PeerHits; hits != 1 {
		t.Errorf("engine peer hits = %d, want 1", hits)
	}

	// The fetched record is now resident: the next lookup is a plain memo
	// hit, not another network round trip.
	_, st, err = b.Simulate(context.Background(), cfg.Benchmark, pl, op, p)
	if err != nil {
		t.Fatal(err)
	}
	if st.MemoHits != 1 || calls != 1 {
		t.Errorf("second lookup: stats %+v with %d hook calls, want a local memo hit", st, calls)
	}
}

func TestPeerFetchMissFallsBackToLocalSim(t *testing.T) {
	cfg := fastConfig(t, "cholesky")
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	eng.SetPeerFetch(func(context.Context, string, string) (SimRecord, bool) {
		calls++
		return SimRecord{}, false
	})
	pl, op, p := memoPoint(t)
	rec, st, err := eng.Simulate(context.Background(), cfg.Benchmark, pl, op, p)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || st.Sims != 1 || st.PeerFetches != 0 {
		t.Errorf("miss fallback: %d hook calls, stats %+v; want one consult then a local sim", calls, st)
	}
	if rec.PeakC <= 0 {
		t.Errorf("fallback record = %+v, want a completed simulation", rec)
	}
	if hits := eng.Stats().PeerHits; hits != 0 {
		t.Errorf("peer hits = %d after a miss, want 0", hits)
	}
}

func TestSetPeerFetchNilIsNoop(t *testing.T) {
	cfg := fastConfig(t, "cholesky")
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetPeerFetch(nil) // must not install a nil hook (or panic later)
	pl, op, p := memoPoint(t)
	if _, st, err := eng.Simulate(context.Background(), cfg.Benchmark, pl, op, p); err != nil || st.Sims != 1 {
		t.Fatalf("simulate after nil hook: stats %+v, err %v", st, err)
	}
}
