// Package org implements the paper's primary contribution: thermally-aware
// chiplet organization. It formulates the optimization of Eq. (5) —
// minimize α·IPS_2D/IPS_2.5D(f, p) + β·C_2.5D(n, s1, s2, s3)/C_2D — subject
// to the peak-temperature constraint (Eq. (6)), the interposer size limit
// (Eq. (7)), the geometry equations (Eqs. (8)-(9)) and the center-chiplet
// non-overlap constraint (Eq. (10)), and solves it with the paper's
// three-step multi-start greedy approach:
//
//  1. compute IPS for all 40 (f, p) pairs and C_2.5D for both chiplet
//     counts over discretized interposer sizes;
//  2. sort all (f, p, C_2.5D) combinations by ascending objective value;
//  3. walk the sorted list; for each combination run an m-start greedy
//     search over the spacing design space (s1, s2, s3) at the fixed
//     interposer size, accepting the first placement whose simulated peak
//     temperature meets the threshold.
//
// An exhaustive placement search is provided for validating the greedy
// (the paper reports 99% agreement with ~400x fewer thermal simulations).
package org

import (
	"fmt"

	"chiplet25d/internal/cost"
	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/noc"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
	"chiplet25d/internal/thermal"
)

// NeighborPolicy selects the greedy walk's neighbor-visiting strategy.
type NeighborPolicy int

const (
	// RandomNeighbor visits the six neighbors in random order and moves to
	// the first cooler one (the paper's policy, footnote 2).
	RandomNeighbor NeighborPolicy = iota
	// SteepestDescent evaluates all six neighbors and moves to the coolest.
	SteepestDescent
)

// String implements fmt.Stringer.
func (p NeighborPolicy) String() string {
	if p == SteepestDescent {
		return "steepest"
	}
	return "random"
}

// Objective holds the user-specified weight factors of Eq. (5).
type Objective struct {
	Alpha float64 // weight on (inverse) normalized performance
	Beta  float64 // weight on normalized cost
}

// Validate checks the weights.
func (o Objective) Validate() error {
	if o.Alpha < 0 || o.Beta < 0 {
		return fmt.Errorf("org: objective weights must be non-negative, got α=%g β=%g", o.Alpha, o.Beta)
	}
	if o.Alpha == 0 && o.Beta == 0 {
		return fmt.Errorf("org: objective weights must not both be zero")
	}
	return nil
}

// Objective-mode names for Config.ObjectiveMode.
const (
	// ObjectiveEq5 ranks combinations by the paper's Eq. (5) weighted sum
	// (the default; the empty string aliases it).
	ObjectiveEq5 = "eq5"
	// ObjectiveTCO ranks combinations by annual datacenter dollars per
	// sustained GIPS from the cost.TCOParams server elaboration, with the
	// heatsink capacity as an additional feasibility filter. The thermal
	// constraint (Eq. (6)) still gates every candidate.
	ObjectiveTCO = "tco"
)

// Config parameterizes one optimization run.
type Config struct {
	// Benchmark is the workload being optimized for.
	Benchmark perf.Benchmark
	// Objective holds α and β.
	Objective Objective
	// ObjectiveMode selects how combinations are ranked: ObjectiveEq5
	// (default) or ObjectiveTCO. Unlike wall-clock knobs, the mode — and
	// every TCO constant below — changes which organization wins, so both
	// are part of a search's cache identity (see serve.searchKey).
	ObjectiveMode string
	// TCO parameterizes the datacenter elaboration when ObjectiveMode is
	// ObjectiveTCO: tech node, heatsink feasibility, lane packing, PUE,
	// energy price, depreciation. Lane power for the ranking is the
	// a-priori nominal draw (power.TotalNominal) — deterministic and
	// temperature-independent — while thermal feasibility stays with the
	// engine's evaluation ladder.
	TCO cost.TCOParams
	// ThresholdC is T_threshold of Eq. (6) (the paper's default is 85 °C).
	ThresholdC float64
	// ChipletCounts lists the chiplet counts to consider (paper: {4, 16}).
	ChipletCounts []int
	// InterposerMinMM, InterposerMaxMM, InterposerStepMM discretize the
	// interposer edge (paper: 20 to 50 mm at 0.5 mm).
	InterposerMinMM, InterposerMaxMM, InterposerStepMM float64
	// Starts is the multi-start count m (paper: 10).
	Starts int
	// Seed makes the random start/neighbor choices reproducible.
	Seed int64
	// NeighborPolicy selects how the greedy walk visits neighbors. The
	// paper picks a random neighbor (footnote 2: the coolest neighbor does
	// not necessarily lead to a local minimum, and a fixed order would
	// bias the walk); SteepestDescent is provided for the ablation.
	NeighborPolicy NeighborPolicy
	// ParallelWorkers bounds the concurrent thermal simulations the
	// exhaustive placement scan may run (0 or 1 = serial). Each greedy
	// restart is inherently sequential and ignores this.
	ParallelWorkers int
	// SearchWorkers bounds how many greedy restarts run concurrently
	// (0 or 1 = serial). Results are bit-identical to the serial search for
	// a fixed Seed: each restart draws from its own RNG stream derived from
	// the root seed and the winner is selected by restart index, so worker
	// count only changes wall-clock time. When either SearchWorkers or
	// ParallelWorkers exceeds 1, the thermal kernel is pinned to a single
	// thread unless Thermal.KernelThreads is set explicitly — the worker
	// budget composes as serve pool → search workers → kernel threads, and
	// only one level should fan out by default.
	SearchWorkers int
	// MaxNormCost, when positive, restricts the search to organizations
	// whose cost is at most this multiple of the single-chip cost (the
	// paper's headline improvements are quoted "at the same manufacturing
	// cost", i.e. MaxNormCost = 1).
	MaxNormCost float64
	// SurrogateMarginC enables the verified scalar-surrogate accelerator:
	// peak-temperature estimates farther than this margin from the
	// threshold are decided without a full thermal simulation (the map
	// shape for a fixed placement and active-core count is identical across
	// DVFS points, so one reference simulation calibrates the rest).
	// Set negative to always simulate.
	SurrogateMarginC float64
	// SpatialSurrogate enables the spatial compact-model fidelity tier:
	// a per-benchmark surrogate (internal/surrogate) calibrated against a
	// fixed design-of-experiments set of full simulations predicts the
	// per-chiplet peak vector and decides evaluations that land clearly
	// away from the threshold, before the scalar tier is even consulted.
	// Escalation is conservative (see SpatialMarginC), so every decided
	// evaluation agrees with the full simulation on which side of the
	// threshold it falls; the verify drift tier pins winner parity against
	// the full-fidelity search on the golden corpus. Off by default.
	SpatialSurrogate bool
	// WarmStart enables cross-evaluation CG warm starts: the engine retains
	// the converged temperature fields of recent full simulations (a bounded
	// ring of WarmStartCache fields) and seeds the first solve of an
	// escalated simulation from the nearest retained field that shares its
	// thermal operator — the same placement geometry at another DVFS point
	// or active-core count. The seed changes how fast CG converges, never
	// what it converges to, but it does perturb the exact floating-point
	// path: with WarmStart on, evaluation values match the cold search to
	// the solver tolerance (~1e-6 °C) instead of bit-exactly. Off by
	// default so the bit-exact parallel≡serial contract holds unless
	// explicitly traded for speed; verify's differential/warm-start check
	// pins winner parity on the golden corpus with it on.
	WarmStart bool
	// WarmStartCache bounds the retained temperature fields when WarmStart
	// is set (0 = the default of 32; each 64x64 field is 256 KiB).
	WarmStartCache int
	// SpatialMarginC is the spatial tier's escalation margin: a spatial
	// prediction decides an evaluation only when it lands farther than
	// max(SpatialMarginC, calibration worst-case error) from the
	// threshold. Larger is safer and slower; the calibration bound is the
	// floor, so the default of 0 never trusts the model beyond its
	// recorded worst-case error.
	SpatialMarginC float64

	// Substrate configuration.
	Thermal    thermal.Config
	CostParams cost.Params
	Leakage    power.LeakageModel
	SimOpts    power.SimOptions
	Link       noc.LinkParams
	Router     noc.RouterParams
}

// DefaultConfig returns the paper's evaluation setup for a benchmark, with
// a 32x32 thermal grid as the search default (the grid is configurable; the
// figures in EXPERIMENTS.md note the grid they used).
func DefaultConfig(b perf.Benchmark) Config {
	tc := thermal.DefaultConfig()
	tc.Nx, tc.Ny = 32, 32
	return Config{
		Benchmark:        b,
		Objective:        Objective{Alpha: 1, Beta: 0},
		ThresholdC:       85,
		ChipletCounts:    []int{4, 16},
		InterposerMinMM:  20,
		InterposerMaxMM:  floorplan.MaxInterposerEdgeMM,
		InterposerStepMM: 0.5,
		Starts:           10,
		Seed:             1,
		TCO:              cost.DefaultTCOParams(),
		SurrogateMarginC: 3,
		SpatialMarginC:   0,
		Thermal:          tc,
		CostParams:       cost.DefaultParams(),
		Leakage:          power.DefaultLeakage(),
		SimOpts:          power.DefaultSimOptions(),
		Link:             noc.DefaultLinkParams(),
		Router:           noc.DefaultRouterParams(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Benchmark.Validate(); err != nil {
		return err
	}
	if err := c.Objective.Validate(); err != nil {
		return err
	}
	switch c.ObjectiveMode {
	case "", ObjectiveEq5:
	case ObjectiveTCO:
		if err := c.TCO.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("org: unknown objective mode %q (want %q or %q)", c.ObjectiveMode, ObjectiveEq5, ObjectiveTCO)
	}
	if c.ThresholdC <= c.Thermal.AmbientC {
		return fmt.Errorf("org: threshold %.1f °C must exceed ambient %.1f °C", c.ThresholdC, c.Thermal.AmbientC)
	}
	if len(c.ChipletCounts) == 0 {
		return fmt.Errorf("org: no chiplet counts configured")
	}
	for _, n := range c.ChipletCounts {
		if n != 4 && n != 16 {
			return fmt.Errorf("org: unsupported chiplet count %d (paper organizations support 4 and 16)", n)
		}
	}
	if c.InterposerMinMM <= 0 || c.InterposerMaxMM > floorplan.MaxInterposerEdgeMM ||
		c.InterposerMinMM > c.InterposerMaxMM {
		return fmt.Errorf("org: interposer range [%g, %g] invalid", c.InterposerMinMM, c.InterposerMaxMM)
	}
	if c.InterposerStepMM <= 0 {
		return fmt.Errorf("org: interposer step must be positive")
	}
	if c.Starts < 1 {
		return fmt.Errorf("org: need at least one greedy start")
	}
	if c.SearchWorkers < 0 {
		return fmt.Errorf("org: search workers must be non-negative, got %d", c.SearchWorkers)
	}
	if c.ParallelWorkers < 0 {
		return fmt.Errorf("org: parallel workers must be non-negative, got %d", c.ParallelWorkers)
	}
	if c.WarmStartCache < 0 {
		return fmt.Errorf("org: warm-start cache size must be non-negative, got %d", c.WarmStartCache)
	}
	if err := c.Thermal.Validate(); err != nil {
		return err
	}
	if err := c.CostParams.Validate(); err != nil {
		return err
	}
	if err := c.Leakage.Validate(); err != nil {
		return err
	}
	if err := c.Link.Validate(); err != nil {
		return err
	}
	return c.Router.Validate()
}

// Organization is a concrete solution: the chiplet organization plus its
// operating point and evaluated metrics.
type Organization struct {
	// N is the chiplet count (1 for the 2D baseline).
	N int
	// S1, S2, S3 are the chosen spacings (mm).
	S1, S2, S3 float64
	// InterposerMM is the square interposer edge (chip edge for 2D).
	InterposerMM float64
	// Op and ActiveCores are the chosen operating point and p.
	Op          power.DVFSPoint
	ActiveCores int
	// PeakC is the simulated peak temperature.
	PeakC float64
	// IPS is the benchmark performance (GIPS) at (Op, ActiveCores).
	IPS float64
	// CostUSD is the manufacturing cost.
	CostUSD float64
	// NormPerf is IPS / IPS_2D; NormCost is Cost / C_2D.
	NormPerf, NormCost float64
	// ObjValue is the configured objective's value: Eq. (5) under
	// ObjectiveEq5, annual $/GIPS under ObjectiveTCO.
	ObjValue float64
	// TCO is the full server elaboration behind ObjValue when the search
	// ran under ObjectiveTCO; nil otherwise.
	TCO *cost.ServerElab `json:",omitempty"`
	// Placement is the concrete geometry.
	Placement floorplan.Placement
}

// Baseline captures the 2D single-chip reference: its best feasible
// operating point under the threshold and its cost.
type Baseline struct {
	// Feasible reports whether any (f, p) pair meets the threshold.
	Feasible bool
	// BestIPS is the maximum feasible IPS (GIPS).
	BestIPS float64
	// Op and ActiveCores achieve BestIPS.
	Op          power.DVFSPoint
	ActiveCores int
	// PeakC is the simulated peak temperature of the best configuration.
	PeakC float64
	// CostUSD is C_2D.
	CostUSD float64
}

// Result is the outcome of an optimization run.
type Result struct {
	// Feasible reports whether any 2.5D combination met the threshold.
	Feasible bool
	// Best is the chosen organization (zero if infeasible).
	Best Organization
	// Baseline is the 2D reference used for normalization.
	Baseline Baseline
	// ThermalSims counts full thermal simulations run.
	ThermalSims int
	// SurrogateHits counts evaluations decided by a surrogate tier without
	// a full simulation (scalar + spatial; kept as the total for backward
	// compatibility).
	SurrogateHits int
	// ScalarSurrogateHits and SpatialSurrogateHits break SurrogateHits
	// down by fidelity tier.
	ScalarSurrogateHits  int
	SpatialSurrogateHits int
	// CombosTried counts (f, p, C) combinations examined before success.
	CombosTried int
}
