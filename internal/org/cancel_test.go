package org

import (
	"context"
	"errors"
	"testing"
	"time"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
)

func cancelTestConfig(t *testing.T) Config {
	t.Helper()
	b, err := perf.ByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(b)
	cfg.Thermal.Nx, cfg.Thermal.Ny = 16, 16
	return cfg
}

// TestPeakCCanceled verifies a searcher whose context is already done
// refuses evaluations with the context's error.
func TestPeakCCanceled(t *testing.T) {
	s, err := NewSearcher(cancelTestConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.WithContext(ctx)
	pl, err := floorplan.PaperOrgForInterposer(16, 36, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PeakC(pl, power.NominalPoint, 224); !errors.Is(err, context.Canceled) {
		t.Fatalf("PeakC with canceled context: got %v, want context.Canceled", err)
	}
	if s.ThermalSims() != 0 {
		t.Fatalf("canceled searcher ran %d thermal sims", s.ThermalSims())
	}
}

// TestExhaustiveScanCanceled verifies the parallel exhaustive scan drains
// its workers and returns promptly when the context is canceled mid-run.
func TestExhaustiveScanCanceled(t *testing.T) {
	cfg := cancelTestConfig(t)
	cfg.ParallelWorkers = 4
	cfg.SurrogateMarginC = -1 // force full simulations so the scan has real work
	s, err := NewSearcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.WithContext(ctx)
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, _, err = s.FindPlacementExhaustive(16, 40, power.NominalPoint, 256)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("exhaustive scan: got %v, want context.Canceled", err)
	}
	// The full 81-point scan takes many seconds; cancellation must cut it
	// to roughly the in-flight solves.
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("canceled scan still took %v", d)
	}
}

// TestOptimizeDeadline verifies a deadline aborts the full optimization
// loop through the PeakC check.
func TestOptimizeDeadline(t *testing.T) {
	cfg := cancelTestConfig(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	s, err := NewSearcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.WithContext(ctx)
	// Wait out the deadline: on a fast machine the reduced-scale optimize
	// can legitimately finish inside 50 ms, making a mid-flight race flaky.
	// Mid-flight cancellation is covered by TestExhaustiveScanCanceled.
	<-ctx.Done()
	if _, err := s.Optimize(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Optimize past deadline: got %v, want context.DeadlineExceeded", err)
	}
}
