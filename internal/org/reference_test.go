package org

import (
	"context"
	"testing"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/power"
)

// TestReferenceSimulateMatchesEngine holds the memoized, deduplicated,
// surrogate-accelerated Engine to the unmemoized single-threaded reference
// path, bit for bit, across placements and operating points — and checks
// that a repeated Engine lookup (now a memo hit) returns the identical
// record.
func TestReferenceSimulateMatchesEngine(t *testing.T) {
	cfg := fastConfig(t, "cholesky")
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl4, err := floorplan.PaperOrg(4, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		pl   floorplan.Placement
		fIdx int
		p    int
	}{
		{"2d-f0-256", floorplan.SingleChip(), 0, 256},
		{"4c-f2-128", pl4, 2, 128},
		{"4c-f4-256", pl4, 4, 256},
	}
	for _, tc := range cases {
		op := power.FrequencySet[tc.fIdx]
		want, err := ReferenceSimulate(cfg, cfg.Benchmark, tc.pl, op, tc.p)
		if err != nil {
			t.Fatalf("%s: reference: %v", tc.name, err)
		}
		got, _, err := eng.Simulate(context.Background(), cfg.Benchmark, tc.pl, op, tc.p)
		if err != nil {
			t.Fatalf("%s: engine: %v", tc.name, err)
		}
		if got != want {
			t.Errorf("%s: engine record %+v != reference %+v", tc.name, got, want)
		}
		again, st, err := eng.Simulate(context.Background(), cfg.Benchmark, tc.pl, op, tc.p)
		if err != nil {
			t.Fatalf("%s: memo hit: %v", tc.name, err)
		}
		if st.MemoHits != 1 || again != want {
			t.Errorf("%s: memo replay got %+v (hits=%d), want %+v (hits=1)", tc.name, again, st.MemoHits, want)
		}
	}
}
