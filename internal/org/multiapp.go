package org

import (
	"fmt"
	"math"
	"sort"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
)

// The paper evaluates single-application workloads but sketches the
// multi-application extension in Sec. IV: a designer picks one chiplet
// organization for a mix of applications by minimizing the weighted
// objective
//
//	α · Σ_i u_i · IPS_2D^i / IPS_2.5D^i  +  β · C_2.5D / C_2D
//
// where u_i is how often application i runs. Each application then runs at
// its own best feasible (f, p) on the shared organization. This file
// implements that extension.

// AppMix is one application and its usage weight in the mix.
type AppMix struct {
	Benchmark perf.Benchmark
	Weight    float64
}

// AppOperating records how one application runs on the chosen organization.
type AppOperating struct {
	Name        string
	Op          power.DVFSPoint
	ActiveCores int
	IPS         float64
	// NormPerf is IPS over the application's own 2D-baseline best.
	NormPerf float64
	PeakC    float64
}

// MultiAppResult is the outcome of a multi-application organization search.
type MultiAppResult struct {
	Feasible bool
	// Organization geometry (operating point fields are per-app below).
	N            int
	S1, S2, S3   float64
	InterposerMM float64
	Placement    floorplan.Placement
	// PerApp holds each application's chosen operating point on the shared
	// organization.
	PerApp []AppOperating
	// ObjValue is the weighted Eq. (5) value; CostUSD/NormCost the
	// organization's manufacturing cost.
	ObjValue float64
	CostUSD  float64
	NormCost float64
	// ThermalSims counts full simulations across the search.
	ThermalSims int
}

// bestFeasible returns the highest-IPS feasible (f, p) for a benchmark on a
// fixed placement. Evaluations go through the shared engine, which memoizes
// per (benchmark, placement, f, p) and calibrates each benchmark's surrogate
// at the canonical DVFS point — the effective thermal resistance of a
// (placement, active-core-count) pair is a pure map-shape property (every
// active core carries equal power), so one reference simulation per
// benchmark and placement covers the rest of the DVFS table.
func (s *Searcher) bestFeasible(b perf.Benchmark, pl floorplan.Placement) (AppOperating, bool, error) {
	type cand struct {
		op  power.DVFSPoint
		p   int
		ips float64
	}
	var cands []cand
	for _, op := range power.FrequencySet {
		for _, p := range power.ActiveCoreCounts {
			cands = append(cands, cand{op, p, b.IPS(op, p)})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ips > cands[j].ips })
	for _, c := range cands {
		peak, err := s.PeakCWith(b, pl, c.op, c.p)
		if err != nil {
			return AppOperating{}, false, err
		}
		if peak <= s.cfg.ThresholdC {
			return AppOperating{Name: b.Name, Op: c.op, ActiveCores: c.p, IPS: c.ips, PeakC: peak}, true, nil
		}
	}
	return AppOperating{}, false, nil
}

// candidatePlacements returns the symmetric spacing candidates examined per
// (n, edge) bucket: the 4-chiplet bucket has a single derived placement;
// the 16-chiplet bucket samples s1 in {0, S/3, S/2} x s2 in {0, S/4, S/2}
// (snapped to the 0.5 mm grid, deduplicated). This is a documented
// simplification versus the full per-(f, p) greedy of the single-app flow:
// the multi-app objective couples all applications to one placement, so the
// search samples a small symmetric design-space basis instead.
func candidatePlacements(n int, edge float64) []floorplan.Placement {
	if n == 4 {
		pl, err := floorplan.PaperOrgForInterposer(4, edge, 0, 0)
		if err != nil || pl.Validate() != nil {
			return nil
		}
		return []floorplan.Placement{pl}
	}
	span := floorplan.SpacingSpan(16, edge)
	if span < 0 {
		return nil
	}
	var out []floorplan.Placement
	seen := make(map[plKey]bool)
	for _, s1 := range []float64{0, floorplan.SnapToStep(span / 3), floorplan.SnapToStep(span / 2)} {
		for _, s2 := range []float64{0, floorplan.SnapToStep(span / 4), floorplan.SnapToStep(span / 2)} {
			pl, err := floorplan.PaperOrgForInterposer(16, edge, s1, s2)
			if err != nil || pl.Validate() != nil {
				continue
			}
			k := keyOf(pl)
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, pl)
		}
	}
	return out
}

// OptimizeMultiApp selects one chiplet organization for a weighted
// application mix under the configured threshold and objective weights,
// using each application's own single-chip baseline for normalization. The
// Benchmark field of cfg is ignored (the mix provides the workloads).
func OptimizeMultiApp(cfg Config, mix []AppMix) (MultiAppResult, error) {
	if len(mix) == 0 {
		return MultiAppResult{}, fmt.Errorf("org: empty application mix")
	}
	totalWeight := 0.0
	for _, m := range mix {
		if err := m.Benchmark.Validate(); err != nil {
			return MultiAppResult{}, err
		}
		if m.Weight < 0 {
			return MultiAppResult{}, fmt.Errorf("org: negative weight for %s", m.Benchmark.Name)
		}
		totalWeight += m.Weight
	}
	if totalWeight <= 0 {
		return MultiAppResult{}, fmt.Errorf("org: application weights sum to zero")
	}
	cfg.Benchmark = mix[0].Benchmark // satisfies validation; per-app models are explicit below
	s, err := NewSearcher(cfg)
	if err != nil {
		return MultiAppResult{}, err
	}

	// Per-application 2D baselines on the shared single chip.
	chip := floorplan.SingleChip()
	baseIPS := make(map[string]float64, len(mix))
	for _, m := range mix {
		best, found, err := s.bestFeasible(m.Benchmark, chip)
		if err != nil {
			return MultiAppResult{}, err
		}
		if !found {
			return MultiAppResult{}, fmt.Errorf("org: %s has no feasible single-chip configuration under %.1f °C",
				m.Benchmark.Name, cfg.ThresholdC)
		}
		baseIPS[m.Benchmark.Name] = best.IPS
	}
	c2d := cfg.CostParams.PlacementCost(chip)

	best := MultiAppResult{ObjValue: math.Inf(1)}
	for _, n := range cfg.ChipletCounts {
		for edge := cfg.InterposerMinMM; edge <= cfg.InterposerMaxMM+1e-9; edge += cfg.InterposerStepMM {
			cost := cfg.CostParams.Cost25DForInterposer(n, edge)
			if cfg.MaxNormCost > 0 && cost/c2d > cfg.MaxNormCost {
				continue
			}
			// Lower bound on the objective for this bucket: every app at
			// its unconstrained best. Skip buckets that cannot beat the
			// incumbent.
			lb := cfg.Objective.Beta * cost / c2d
			for _, m := range mix {
				bestIPS := 0.0
				for _, op := range power.FrequencySet {
					for _, p := range power.ActiveCoreCounts {
						if v := m.Benchmark.IPS(op, p); v > bestIPS {
							bestIPS = v
						}
					}
				}
				lb += cfg.Objective.Alpha * (m.Weight / totalWeight) * baseIPS[m.Benchmark.Name] / bestIPS
			}
			if lb >= best.ObjValue {
				continue
			}
			for _, pl := range candidatePlacements(n, edge) {
				obj := cfg.Objective.Beta * cost / c2d
				perApp := make([]AppOperating, 0, len(mix))
				ok := true
				for _, m := range mix {
					ao, found, err := s.bestFeasible(m.Benchmark, pl)
					if err != nil {
						return MultiAppResult{}, err
					}
					if !found {
						ok = false
						break
					}
					ao.NormPerf = ao.IPS / baseIPS[m.Benchmark.Name]
					perApp = append(perApp, ao)
					obj += cfg.Objective.Alpha * (m.Weight / totalWeight) / ao.NormPerf
					if obj >= best.ObjValue {
						// Even before the remaining apps, this placement
						// already loses; finish scoring only if needed.
						continue
					}
				}
				if !ok || obj >= best.ObjValue {
					continue
				}
				best = MultiAppResult{
					Feasible: true,
					N:        n, S1: pl.S1, S2: pl.S2, S3: pl.S3,
					InterposerMM: pl.W, Placement: pl,
					PerApp:   perApp,
					ObjValue: obj,
					CostUSD:  cost,
					NormCost: cost / c2d,
				}
			}
		}
	}
	best.ThermalSims = s.ThermalSims()
	if !best.Feasible {
		return best, nil
	}
	return best, nil
}
