package org

import (
	"sync"
)

// EngineCache is a small, bounded registry of evaluation engines keyed by
// physics fingerprint, so a long-lived process (chipletd) can back every
// request that shares a physics substrate — whatever its search-level knobs
// — with one process-wide engine and its memo. Eviction is LRU by Get
// order; evicting an engine only drops its memo (in-flight evaluations keep
// their references and finish normally).
type EngineCache struct {
	mu      sync.Mutex
	max     int
	engines map[string]*Engine
	order   []string // LRU: order[0] is the least recently used fingerprint
}

// NewEngineCache builds a cache bounded to max engines (min 1).
func NewEngineCache(max int) *EngineCache {
	if max < 1 {
		max = 1
	}
	return &EngineCache{max: max, engines: make(map[string]*Engine)}
}

// Get returns the engine for cfg's physics fingerprint, constructing (and
// caching) one on first use. The configuration must already be validated.
func (c *EngineCache) Get(cfg Config) (*Engine, error) {
	fp := physFingerprint(cfg)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.engines[fp]; ok {
		c.touch(fp)
		return e, nil
	}
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if len(c.engines) >= c.max {
		evict := c.order[0]
		c.order = c.order[1:]
		delete(c.engines, evict)
	}
	c.engines[fp] = e
	c.order = append(c.order, fp)
	return e, nil
}

// Lookup returns the resident engine whose fingerprint hash matches, or
// nil. This is the peer-fetch endpoint's entry point: peers address engines
// by FingerprintHash, never by the raw fingerprint. A hit counts as use for
// LRU purposes — an engine serving peers is an engine worth keeping.
func (c *EngineCache) Lookup(fpHash string) *Engine {
	c.mu.Lock()
	defer c.mu.Unlock()
	for fp, e := range c.engines {
		if e.FingerprintHash() == fpHash {
			c.touch(fp)
			return e
		}
	}
	return nil
}

// Resident snapshots the resident engines in LRU order (least recently
// used first), for debug/ownership listings.
func (c *EngineCache) Resident() []*Engine {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Engine, 0, len(c.engines))
	for _, fp := range c.order {
		out = append(out, c.engines[fp])
	}
	return out
}

// touch moves fp to the most-recently-used position (c.mu held).
func (c *EngineCache) touch(fp string) {
	for i, f := range c.order {
		if f == fp {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), fp)
			return
		}
	}
}

// Len returns the number of resident engines.
func (c *EngineCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.engines)
}

// Stats sums telemetry across all resident engines. Counters from evicted
// engines are lost with them; the aggregate is therefore a lower bound over
// the process lifetime, which is the honest reading for memo telemetry (an
// evicted memo's hits are gone too).
func (c *EngineCache) Stats() EngineStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out EngineStats
	for _, e := range c.engines {
		s := e.Stats()
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.DedupWaits += s.DedupWaits
		out.PeerHits += s.PeerHits
		out.ThermalSims += s.ThermalSims
		out.SurrogateHits += s.SurrogateHits
		out.ScalarHits += s.ScalarHits
		out.SpatialHits += s.SpatialHits
		out.CGIterations += s.CGIterations
		out.WarmSeeds += s.WarmSeeds
		out.ModelReuses += s.ModelReuses
		out.Calibrations += s.Calibrations
		if s.CalWorstErrC > out.CalWorstErrC {
			out.CalWorstErrC = s.CalWorstErrC
		}
	}
	return out
}

// MemoLen sums resident completed simulations across all engines.
func (c *EngineCache) MemoLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.engines {
		n += e.MemoLen()
	}
	return n
}
