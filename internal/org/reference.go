package org

import (
	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/noc"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
	"chiplet25d/internal/thermal"
)

// ReferenceSimulate is the dumb-but-obviously-correct evaluation path: one
// full leakage-coupled simulation with none of the production machinery —
// no memo, no singleflight, no surrogate, no spans, no shard hashing, and a
// serial thermal kernel. It composes the underlying packages in the plain
// reading order of the pipeline (NoC power, stack, cores, model, active
// mask, leakage fixed point).
//
// Because every stage is deterministic, the result must be bit-identical to
// Engine.Simulate for the same configuration: internal/verify's
// differential checks hold the Engine (and its memo, under arbitrary
// lookup orders) to this reference.
func ReferenceSimulate(cfg Config, b perf.Benchmark, pl floorplan.Placement, op power.DVFSPoint, p int) (SimRecord, error) {
	if _, err := checkEval(op, p); err != nil {
		return SimRecord{}, err
	}
	mesh, err := noc.MeshPower(pl, op, p, b.Traffic, cfg.Link, cfg.Router)
	if err != nil {
		return SimRecord{}, err
	}
	nocW := mesh.TotalW()
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		return SimRecord{}, err
	}
	cores, err := pl.Cores()
	if err != nil {
		return SimRecord{}, err
	}
	tc := cfg.Thermal
	tc.KernelThreads = 1 // wall-clock knob only; pinned serial for a minimal path
	model, err := thermal.NewModel(stack, tc)
	if err != nil {
		return SimRecord{}, err
	}
	active, err := power.MintempActive(p)
	if err != nil {
		return SimRecord{}, err
	}
	w := power.Workload{
		RefCoreW: b.RefCoreW,
		Op:       op,
		Active:   active,
		NoCW:     nocW,
		Leakage:  cfg.Leakage,
	}
	res, err := power.Simulate(model, cores, w, cfg.SimOpts)
	if err != nil {
		return SimRecord{}, err
	}
	return SimRecord{
		PeakC:             res.PeakC,
		TotalPowerW:       res.TotalPowerW,
		MeshPowerW:        nocW,
		LeakageIterations: res.Iterations,
		CGIterations:      res.CGIterations,
	}, nil
}
