package org

// Fidelity identifies which tier of the evaluation ladder answered a
// peak-temperature query. The ladder is ordered cheapest-first: the spatial
// compact model (sub-microsecond, zero-alloc once calibrated), the scalar
// surrogate (one memoized canonical simulation per placement/core count),
// and the full leakage-coupled CG simulation. Lower tiers answer only when
// their prediction lands outside a conservative margin of the decision
// threshold, so escalation — not the cheap model — is what guarantees
// search results match full fidelity.
type Fidelity int

const (
	// FidelityFull is the memoized full leakage-coupled thermal simulation.
	// It is the zero value: an evaluation that never consulted a surrogate
	// was answered at full fidelity.
	FidelityFull Fidelity = iota
	// FidelityScalar is the scalar surrogate calibrated at the canonical
	// DVFS point for the same placement and active-core count.
	FidelityScalar
	// FidelitySpatial is the spatial compact model (internal/surrogate):
	// per-chiplet peak rises from fitted four-term heat-spread kernels.
	FidelitySpatial
)

// String implements fmt.Stringer with the wire names used in obs span
// attributes and serve responses.
func (f Fidelity) String() string {
	switch f {
	case FidelityScalar:
		return "scalar"
	case FidelitySpatial:
		return "spatial"
	default:
		return "full"
	}
}

// EvalPolicy bundles the escalation knobs of one peak-temperature
// evaluation: the feasibility threshold the search decides against and the
// margins below which each surrogate tier must defer upward. It is a
// per-call parameter — engines stay policy-free so searches with different
// policies share one memo and one calibration.
type EvalPolicy struct {
	// ThresholdC is the feasibility threshold the evaluation is decided
	// against (Eq. (6)).
	ThresholdC float64
	// ScalarMarginC gates the scalar surrogate: estimates within this
	// margin of ThresholdC escalate to the full simulation. Negative
	// disables the scalar tier.
	ScalarMarginC float64
	// SpatialMarginC gates the spatial tier; the effective margin is
	// max(SpatialMarginC, the class calibration's worst-case error), so a
	// poorly fitting calibration escalates more, never less.
	SpatialMarginC float64
	// Spatial enables the spatial tier (calibrating the benchmark's model
	// on first use).
	Spatial bool
}

// evalPolicy derives the evaluation policy from a search configuration.
func (c Config) evalPolicy() EvalPolicy {
	return EvalPolicy{
		ThresholdC:     c.ThresholdC,
		ScalarMarginC:  c.SurrogateMarginC,
		SpatialMarginC: c.SpatialMarginC,
		Spatial:        c.SpatialSurrogate,
	}
}
