package org

import (
	"fmt"
	"math"
	"sync"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/power"
)

// spacePoint is a point in the 16-chiplet spacing design space at a fixed
// interposer edge, in half-millimeter units: s1 = i1 * 0.5, s2 = i2 * 0.5,
// s3 derived from Eq. (9).
type spacePoint struct{ i1, i2 int }

// spacingSpace describes the discrete feasible (s1, s2) grid at one edge.
type spacingSpace struct {
	edge   float64
	spanHM int // S = 2*s1 + s3 in half-millimeters
	max1   int // s1 ≤ S/2
	max2   int // Eq. (10) at fixed edge: s2 ≤ S/2
}

func newSpacingSpace(edge float64) (spacingSpace, bool) {
	span := floorplan.SpacingSpan(16, edge)
	if span < -1e-9 {
		return spacingSpace{}, false
	}
	hm := int(math.Floor(span/floorplan.SpacingStepMM + 1e-9))
	return spacingSpace{edge: edge, spanHM: hm, max1: hm / 2, max2: hm / 2}, true
}

func (sp spacingSpace) contains(p spacePoint) bool {
	return p.i1 >= 0 && p.i1 <= sp.max1 && p.i2 >= 0 && p.i2 <= sp.max2
}

// placementAt materializes the placement for a design-space point; ok is
// false when the point is geometrically invalid.
func (sp spacingSpace) placementAt(p spacePoint) (floorplan.Placement, bool) {
	s1 := float64(p.i1) * floorplan.SpacingStepMM
	s2 := float64(p.i2) * floorplan.SpacingStepMM
	pl, err := floorplan.PaperOrgForInterposer(16, sp.edge, s1, s2)
	if err != nil {
		return floorplan.Placement{}, false
	}
	if err := pl.Validate(); err != nil {
		return floorplan.Placement{}, false
	}
	return pl, true
}

// neighborMoves are the six moves of the constrained greedy walk: varying
// s1 by ±0.5 mm (with s3 absorbing ∓1.0 mm to hold the interposer size and
// hence the cost bucket fixed), varying s2 by ±0.5 mm, and the two
// diagonal combinations.
var neighborMoves = [6]spacePoint{
	{+1, 0}, {-1, 0}, {0, +1}, {0, -1}, {+1, +1}, {-1, -1},
}

// FindPlacement searches for any placement of n chiplets on a square
// interposer of the given edge meeting the temperature threshold at
// (op, p), using the paper's multi-start greedy (Sec. III-D). It returns
// the placement, its peak temperature, and whether one was found.
func (s *Searcher) FindPlacement(n int, edgeMM float64, op power.DVFSPoint, p int) (outPl floorplan.Placement, outPeak float64, outFound bool, outErr error) {
	fsp, end := s.startSpan("org.find_placement")
	fsp.SetAttr("n", n)
	fsp.SetAttr("edge_mm", edgeMM)
	fsp.SetAttr("freq_mhz", op.FreqMHz)
	fsp.SetAttr("active_cores", p)
	defer func() {
		fsp.SetAttr("found", outFound)
		end()
	}()
	if n == 4 {
		pl, err := floorplan.PaperOrgForInterposer(4, edgeMM, 0, 0)
		if err != nil {
			return floorplan.Placement{}, 0, false, nil // edge too small: no placement exists
		}
		if err := pl.Validate(); err != nil {
			return floorplan.Placement{}, 0, false, nil
		}
		ok, peak, err := s.Feasible(pl, op, p)
		if err != nil {
			return floorplan.Placement{}, 0, false, err
		}
		return pl, peak, ok, nil
	}
	sp, ok := newSpacingSpace(edgeMM)
	if !ok {
		return floorplan.Placement{}, 0, false, nil
	}
	visited := make(map[spacePoint]float64)
	eval := func(pt spacePoint) (float64, bool, error) {
		if v, seen := visited[pt]; seen {
			return v, true, nil
		}
		pl, valid := sp.placementAt(pt)
		if !valid {
			visited[pt] = math.Inf(1)
			return math.Inf(1), true, nil
		}
		peak, err := s.PeakC(pl, op, p)
		if err != nil {
			return 0, false, err
		}
		visited[pt] = peak
		return peak, true, nil
	}

	// runRestart walks one greedy descent from a random start; found is
	// true when it reached a feasible placement.
	const maxWalk = 256
	runRestart := func(restart int) (pl floorplan.Placement, peak float64, found bool, err error) {
		rsp, rend := s.startSpan("org.restart")
		rsp.SetAttr("restart", restart)
		steps, moves := 0, 0
		defer func() {
			rsp.SetAttr("steps", steps)
			rsp.SetAttr("moves_evaluated", moves)
			rsp.SetAttr("found", found)
			rend()
		}()
		cur := spacePoint{i1: s.rng.Intn(sp.max1 + 1), i2: s.rng.Intn(sp.max2 + 1)}
		curPeak, _, err := eval(cur)
		if err != nil {
			return floorplan.Placement{}, 0, false, err
		}
		if curPeak <= s.cfg.ThresholdC {
			pl, _ := sp.placementAt(cur)
			return pl, curPeak, true, nil
		}
		for ; steps < maxWalk; steps++ {
			// Visit the six neighbors per the configured policy: in random
			// order moving to the first cooler one (the paper's policy,
			// avoiding fixed-order bias), or steepest-descent for the
			// ablation. Either way, accept immediately on feasibility.
			perm := s.rng.Perm(len(neighborMoves))
			moved := false
			bestNb, bestPeak := cur, curPeak
			for _, mi := range perm {
				mv := neighborMoves[mi]
				nb := spacePoint{i1: cur.i1 + mv.i1, i2: cur.i2 + mv.i2}
				if !sp.contains(nb) {
					continue
				}
				moves++
				peak, _, err := eval(nb)
				if err != nil {
					return floorplan.Placement{}, 0, false, err
				}
				if peak <= s.cfg.ThresholdC {
					pl, _ := sp.placementAt(nb)
					return pl, peak, true, nil
				}
				if peak < bestPeak {
					bestNb, bestPeak = nb, peak
					if s.cfg.NeighborPolicy == RandomNeighbor {
						break
					}
				}
			}
			if bestPeak < curPeak {
				cur, curPeak = bestNb, bestPeak
				moved = true
			}
			if !moved {
				break // local minimum: next random start
			}
		}
		return floorplan.Placement{}, curPeak, false, nil
	}
	for start := 0; start < s.cfg.Starts; start++ {
		pl, peak, found, err := runRestart(start)
		if err != nil {
			return floorplan.Placement{}, 0, false, err
		}
		if found {
			return pl, peak, true, nil
		}
	}
	return floorplan.Placement{}, 0, false, nil
}

// FindPlacementExhaustive scans the full (s1, s2) grid at the given edge
// and returns the feasible placement with the lowest peak temperature, for
// validating the greedy search. For n == 4 the space is the single derived
// placement. With Config.ParallelWorkers > 1 the un-memoized grid points
// are simulated concurrently.
func (s *Searcher) FindPlacementExhaustive(n int, edgeMM float64, op power.DVFSPoint, p int) (outPl floorplan.Placement, outPeak float64, outFound bool, outErr error) {
	if n == 4 {
		return s.FindPlacement(4, edgeMM, op, p)
	}
	sp, ok := newSpacingSpace(edgeMM)
	if !ok {
		return floorplan.Placement{}, 0, false, nil
	}
	esp, end := s.startSpan("org.exhaustive_scan")
	esp.SetAttr("n", n)
	esp.SetAttr("edge_mm", edgeMM)
	esp.SetAttr("grid_points", (sp.max1+1)*(sp.max2+1))
	defer func() {
		esp.SetAttr("found", outFound)
		end()
	}()
	if s.cfg.ParallelWorkers > 1 {
		if err := s.prefetchGrid(sp, op, p); err != nil {
			return floorplan.Placement{}, 0, false, err
		}
	}
	bestPeak := math.Inf(1)
	var bestPl floorplan.Placement
	found := false
	for i1 := 0; i1 <= sp.max1; i1++ {
		for i2 := 0; i2 <= sp.max2; i2++ {
			pl, valid := sp.placementAt(spacePoint{i1, i2})
			if !valid {
				continue
			}
			peak, err := s.PeakC(pl, op, p)
			if err != nil {
				return floorplan.Placement{}, 0, false, err
			}
			if peak <= s.cfg.ThresholdC && peak < bestPeak {
				bestPeak, bestPl, found = peak, pl, true
			}
		}
	}
	return bestPl, bestPeak, found, nil
}

// prefetchGrid evaluates the grid points missing from the memo with a
// bounded worker pool. Each worker runs pure simulations only; the memo,
// surrogate calibration and counters are merged on the single caller
// goroutine afterward, so the Searcher itself stays free of locks. The
// searcher's context cancels the scan: the feeder stops handing out jobs,
// workers drain and exit, and in-flight CG solves abort, so an abandoned
// HTTP request stops burning CPU instead of running the grid to completion.
func (s *Searcher) prefetchGrid(sp spacingSpace, op power.DVFSPoint, p int) error {
	s.beginUse()
	defer s.endUse()
	fIdx := fIdxOf(op)
	type job struct {
		pl   floorplan.Placement
		pk   plKey
		ek   evalKey
		nocW float64
		// ref snapshots the surrogate calibration (if any) at scan start,
		// so workers never touch the Searcher's maps.
		ref    refPoint
		hasRef bool
	}
	type outcome struct {
		job  job
		res  *power.SimResult
		est  float64
		surr bool
		err  error
	}
	var jobs []job
	for i1 := 0; i1 <= sp.max1; i1++ {
		for i2 := 0; i2 <= sp.max2; i2++ {
			pl, valid := sp.placementAt(spacePoint{i1, i2})
			if !valid {
				continue
			}
			pk := keyOf(pl)
			ek := evalKey{pl: pk, fIdx: fIdx, cores: p}
			if _, ok := s.peakMemo[ek]; ok {
				continue
			}
			nocW, err := s.nocPower(pl, op, p)
			if err != nil {
				return err
			}
			j := job{pl: pl, pk: pk, ek: ek, nocW: nocW}
			if byP, ok := s.refMemo[pk]; ok {
				if ref, ok := byP[p]; ok {
					j.ref, j.hasRef = ref, true
				}
			}
			jobs = append(jobs, j)
		}
	}
	if len(jobs) == 0 {
		return nil
	}
	workers := s.cfg.ParallelWorkers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	ctx := s.ctx
	jobCh := make(chan job)
	outCh := make(chan outcome, len(jobs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				if ctx.Err() != nil {
					return
				}
				// Surrogate check against the snapshot taken at scan start.
				if s.cfg.SurrogateMarginC >= 0 && j.hasRef {
					_, est := s.totalPowerAt(op, p, j.nocW, j.ref.rEff)
					if absf(est-s.cfg.ThresholdC) > s.cfg.SurrogateMarginC {
						outCh <- outcome{job: j, est: est, surr: true}
						continue
					}
				}
				res, err := s.simulatePure(j.pl, op, p, j.nocW)
				outCh <- outcome{job: j, res: res, err: err}
			}
		}()
	}
	go func() {
		defer close(jobCh)
		for _, j := range jobs {
			select {
			case jobCh <- j:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(outCh)
	}()
	var firstErr error
	for o := range outCh {
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		if o.surr {
			s.surrogateHits++
			s.peakMemo[o.job.ek] = o.est
			continue
		}
		s.thermalSims++
		s.cgIterations += int64(o.res.CGIterations)
		s.peakMemo[o.job.ek] = o.res.PeakC
		if o.res.TotalPowerW > 0 {
			byP := s.refMemo[o.job.pk]
			if byP == nil {
				byP = make(map[int]refPoint)
				s.refMemo[o.job.pk] = byP
			}
			if _, ok := byP[p]; !ok {
				byP[p] = refPoint{rEff: (o.res.PeakC - s.cfg.Thermal.AmbientC) / o.res.TotalPowerW}
			}
		}
	}
	if firstErr == nil && ctx.Err() != nil {
		firstErr = fmt.Errorf("org: exhaustive scan canceled: %w", ctx.Err())
	}
	return firstErr
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
