package org

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/obs"
	"chiplet25d/internal/power"
)

// spacePoint is a point in the 16-chiplet spacing design space at a fixed
// interposer edge, in half-millimeter units: s1 = i1 * 0.5, s2 = i2 * 0.5,
// s3 derived from Eq. (9).
type spacePoint struct{ i1, i2 int }

// spacingSpace describes the discrete feasible (s1, s2) grid at one edge.
type spacingSpace struct {
	edge   float64
	spanHM int // S = 2*s1 + s3 in half-millimeters
	max1   int // s1 ≤ S/2
	max2   int // Eq. (10) at fixed edge: s2 ≤ S/2
}

func newSpacingSpace(edge float64) (spacingSpace, bool) {
	span := floorplan.SpacingSpan(16, edge)
	if span < -1e-9 {
		return spacingSpace{}, false
	}
	hm := int(math.Floor(span/floorplan.SpacingStepMM + 1e-9))
	return spacingSpace{edge: edge, spanHM: hm, max1: hm / 2, max2: hm / 2}, true
}

func (sp spacingSpace) contains(p spacePoint) bool {
	return p.i1 >= 0 && p.i1 <= sp.max1 && p.i2 >= 0 && p.i2 <= sp.max2
}

// placementAt materializes the placement for a design-space point; ok is
// false when the point is geometrically invalid.
func (sp spacingSpace) placementAt(p spacePoint) (floorplan.Placement, bool) {
	s1 := float64(p.i1) * floorplan.SpacingStepMM
	s2 := float64(p.i2) * floorplan.SpacingStepMM
	pl, err := floorplan.PaperOrgForInterposer(16, sp.edge, s1, s2)
	if err != nil {
		return floorplan.Placement{}, false
	}
	if err := pl.Validate(); err != nil {
		return floorplan.Placement{}, false
	}
	return pl, true
}

// neighborMoves are the six moves of the constrained greedy walk: varying
// s1 by ±0.5 mm (with s3 absorbing ∓1.0 mm to hold the interposer size and
// hence the cost bucket fixed), varying s2 by ±0.5 mm, and the two
// diagonal combinations.
var neighborMoves = [6]spacePoint{
	{+1, 0}, {-1, 0}, {0, +1}, {0, -1}, {+1, +1}, {-1, -1},
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// well-mixed 64-bit hash used to derive independent RNG streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Salts separating the RNG stream families drawn from one root seed.
const (
	saltGreedy = 0x67726565 // "gree"
	saltAnneal = 0x616e6e65 // "anne"
)

// deriveSeed mixes the root seed with the coordinates of one search unit
// (salt, chiplet count, interposer edge in half-mm, DVFS index, active
// cores, restart index) into an independent RNG seed. Deriving per-restart
// streams — instead of sharing one sequential generator — is what makes the
// parallel multi-start search bit-identical to the serial one: restart r
// draws the same numbers no matter which worker runs it, or when.
func deriveSeed(root int64, salt, n, edgeHM, fIdx, p, restart int) int64 {
	h := splitmix64(uint64(root))
	for _, v := range [...]int{salt, n, edgeHM, fIdx, p, restart} {
		h = splitmix64(h ^ uint64(int64(v)))
	}
	return int64(h >> 1) // non-negative
}

// restartResult is one restart's outcome in the parallel multi-start driver.
type restartResult struct {
	pl    floorplan.Placement
	peak  float64
	found bool
	err   error
	ran   bool
}

// terminal reports whether a serial search would have stopped at this
// restart (success or error).
func (r restartResult) terminal() bool { return r.found || r.err != nil }

// FindPlacement searches for any placement of n chiplets on a square
// interposer of the given edge meeting the temperature threshold at
// (op, p), using the paper's multi-start greedy (Sec. III-D). It returns
// the placement, its peak temperature, and whether one was found.
//
// With Config.SearchWorkers > 1 the restarts run concurrently over the
// shared engine memo; the result is bit-identical to the serial search
// (see the Searcher determinism contract).
func (s *Searcher) FindPlacement(n int, edgeMM float64, op power.DVFSPoint, p int) (floorplan.Placement, float64, bool, error) {
	return s.findPlacement(s.ctx, n, edgeMM, op, p)
}

func (s *Searcher) findPlacement(ctx context.Context, n int, edgeMM float64, op power.DVFSPoint, p int) (outPl floorplan.Placement, outPeak float64, outFound bool, outErr error) {
	ctx, fsp := obs.Start(ctx, "org.find_placement")
	fsp.SetAttr("n", n)
	fsp.SetAttr("edge_mm", edgeMM)
	fsp.SetAttr("freq_mhz", op.FreqMHz)
	fsp.SetAttr("active_cores", p)
	defer func() {
		fsp.SetAttr("found", outFound)
		fsp.End()
	}()
	if n == 4 {
		pl, err := floorplan.PaperOrgForInterposer(4, edgeMM, 0, 0)
		if err != nil {
			return floorplan.Placement{}, 0, false, nil // edge too small: no placement exists
		}
		if err := pl.Validate(); err != nil {
			return floorplan.Placement{}, 0, false, nil
		}
		peak, err := s.peakCtx(ctx, s.cfg.Benchmark, pl, op, p)
		if err != nil {
			return floorplan.Placement{}, 0, false, err
		}
		return pl, peak, peak <= s.cfg.ThresholdC, nil
	}
	sp, ok := newSpacingSpace(edgeMM)
	if !ok {
		return floorplan.Placement{}, 0, false, nil
	}
	edgeHM := int(math.Round(edgeMM * 2))
	fIdx := fIdxOf(op)
	starts := s.cfg.Starts

	runOne := func(restart int) restartResult {
		seed := deriveSeed(s.cfg.Seed, saltGreedy, n, edgeHM, fIdx, p, restart)
		s.audit.Add(AuditEvent{
			Kind: AuditRestartSeeded, Restart: restart, Seed: seed,
			N: n, EdgeMM: edgeMM, FreqMHz: op.FreqMHz, Cores: p,
		})
		rng := rand.New(rand.NewSource(seed))
		pl, peak, found, err := s.runRestart(ctx, sp, op, p, rng, restart)
		return restartResult{pl: pl, peak: peak, found: found, err: err, ran: true}
	}

	workers := s.cfg.SearchWorkers
	if workers > starts {
		workers = starts
	}
	if workers <= 1 {
		for restart := 0; restart < starts; restart++ {
			r := runOne(restart)
			if r.err != nil {
				return floorplan.Placement{}, 0, false, r.err
			}
			if r.found {
				return r.pl, r.peak, true, nil
			}
		}
		return floorplan.Placement{}, 0, false, nil
	}

	// Parallel multi-start. Serial semantics stop at the first terminal
	// restart (found or error), so the winner is the minimum terminal index;
	// restarts above the current minimum can no longer affect the outcome
	// and are skipped. Every skipped index is strictly above some terminal
	// index, so the ascending scan below always reaches the true winner
	// before any skipped slot.
	results := make([]restartResult, starts)
	var next atomic.Int64
	var stopAt atomic.Int64
	stopAt.Store(int64(starts))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				restart := int(next.Add(1) - 1)
				if restart >= starts {
					return
				}
				if int64(restart) > stopAt.Load() {
					continue // cannot beat an earlier terminal restart
				}
				r := runOne(restart)
				results[restart] = r
				if r.terminal() {
					for {
						cur := stopAt.Load()
						if int64(restart) >= cur || stopAt.CompareAndSwap(cur, int64(restart)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	for restart := 0; restart < starts; restart++ {
		r := results[restart]
		if !r.ran {
			continue
		}
		if r.err != nil {
			return floorplan.Placement{}, 0, false, r.err
		}
		if r.found {
			return r.pl, r.peak, true, nil
		}
	}
	return floorplan.Placement{}, 0, false, nil
}

// runRestart walks one greedy descent from its derived random start; found
// is true when it reached a feasible placement. The visited map is restart-
// local (a trajectory cache); cross-restart and cross-caller sharing happens
// in the engine memo, which all evaluations go through.
func (s *Searcher) runRestart(ctx context.Context, sp spacingSpace, op power.DVFSPoint, p int, rng *rand.Rand, restart int) (outPl floorplan.Placement, outPeak float64, outFound bool, outErr error) {
	_, rsp := obs.Start(ctx, "org.restart")
	rsp.SetAttr("restart", restart)
	steps, moves := 0, 0
	defer func() {
		rsp.SetAttr("steps", steps)
		rsp.SetAttr("moves_evaluated", moves)
		rsp.SetAttr("found", outFound)
		rsp.End()
	}()
	visited := make(map[spacePoint]float64)
	eval := func(pt spacePoint) (float64, error) {
		if v, seen := visited[pt]; seen {
			return v, nil
		}
		pl, valid := sp.placementAt(pt)
		if !valid {
			visited[pt] = math.Inf(1)
			return math.Inf(1), nil
		}
		peak, err := s.peakCtx(ctx, s.cfg.Benchmark, pl, op, p)
		if err != nil {
			return 0, err
		}
		visited[pt] = peak
		return peak, nil
	}
	auditPoint := func(kind string, step int, pt spacePoint, peak float64, reason string) {
		s.audit.Add(AuditEvent{
			Kind: kind, Restart: restart, Step: step,
			S1MM:  float64(pt.i1) * floorplan.SpacingStepMM,
			S2MM:  float64(pt.i2) * floorplan.SpacingStepMM,
			PeakC: peak, Reason: reason,
		})
	}
	const maxWalk = 256
	cur := spacePoint{i1: rng.Intn(sp.max1 + 1), i2: rng.Intn(sp.max2 + 1)}
	curPeak, err := eval(cur)
	if err != nil {
		return floorplan.Placement{}, 0, false, err
	}
	if curPeak <= s.cfg.ThresholdC {
		pl, _ := sp.placementAt(cur)
		auditPoint(AuditFeasibleFound, 0, cur, curPeak, "start_point_feasible")
		return pl, curPeak, true, nil
	}
	for ; steps < maxWalk; steps++ {
		// Visit the six neighbors per the configured policy: in random
		// order moving to the first cooler one (the paper's policy,
		// avoiding fixed-order bias), or steepest-descent for the
		// ablation. Either way, accept immediately on feasibility.
		perm := rng.Perm(len(neighborMoves))
		moved := false
		bestNb, bestPeak := cur, curPeak
		for _, mi := range perm {
			mv := neighborMoves[mi]
			nb := spacePoint{i1: cur.i1 + mv.i1, i2: cur.i2 + mv.i2}
			if !sp.contains(nb) {
				continue
			}
			moves++
			peak, err := eval(nb)
			if err != nil {
				return floorplan.Placement{}, 0, false, err
			}
			if peak <= s.cfg.ThresholdC {
				pl, _ := sp.placementAt(nb)
				auditPoint(AuditFeasibleFound, steps, nb, peak, "neighbor_feasible")
				return pl, peak, true, nil
			}
			if peak < bestPeak {
				bestNb, bestPeak = nb, peak
				if s.cfg.NeighborPolicy == RandomNeighbor {
					break
				}
			}
		}
		if bestPeak < curPeak {
			cur, curPeak = bestNb, bestPeak
			moved = true
			auditPoint(AuditMoveAccepted, steps, cur, curPeak, "")
		}
		if !moved {
			auditPoint(AuditMoveRejected, steps, cur, curPeak, "local_minimum")
			break // local minimum: next random start
		}
	}
	return floorplan.Placement{}, curPeak, false, nil
}

// FindPlacementExhaustive scans the full (s1, s2) grid at the given edge
// and returns the feasible placement with the lowest peak temperature, for
// validating the greedy search. For n == 4 the space is the single derived
// placement. With Config.ParallelWorkers > 1 the grid points are evaluated
// concurrently over the engine (which deduplicates and memoizes); the
// reduction is a serial ascending scan, so the chosen placement is
// independent of worker count.
func (s *Searcher) FindPlacementExhaustive(n int, edgeMM float64, op power.DVFSPoint, p int) (outPl floorplan.Placement, outPeak float64, outFound bool, outErr error) {
	if n == 4 {
		return s.FindPlacement(4, edgeMM, op, p)
	}
	sp, ok := newSpacingSpace(edgeMM)
	if !ok {
		return floorplan.Placement{}, 0, false, nil
	}
	ctx, esp := obs.Start(s.ctx, "org.exhaustive_scan")
	esp.SetAttr("n", n)
	esp.SetAttr("edge_mm", edgeMM)
	esp.SetAttr("grid_points", (sp.max1+1)*(sp.max2+1))
	defer func() {
		esp.SetAttr("found", outFound)
		esp.End()
	}()
	var pls []floorplan.Placement
	for i1 := 0; i1 <= sp.max1; i1++ {
		for i2 := 0; i2 <= sp.max2; i2++ {
			if pl, valid := sp.placementAt(spacePoint{i1, i2}); valid {
				pls = append(pls, pl)
			}
		}
	}
	peaks := make([]float64, len(pls))
	errs := make([]error, len(pls))
	workers := s.cfg.ParallelWorkers
	if workers > len(pls) {
		workers = len(pls)
	}
	if workers <= 1 {
		for i, pl := range pls {
			peaks[i], errs[i] = s.peakCtx(ctx, s.cfg.Benchmark, pl, op, p)
			if errs[i] != nil {
				return floorplan.Placement{}, 0, false, errs[i]
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1) - 1)
					if i >= len(pls) {
						return
					}
					peaks[i], errs[i] = s.peakCtx(ctx, s.cfg.Benchmark, pls[i], op, p)
				}
			}()
		}
		wg.Wait()
	}
	bestPeak := math.Inf(1)
	var bestPl floorplan.Placement
	found := false
	for i, pl := range pls {
		if errs[i] != nil {
			return floorplan.Placement{}, 0, false, errs[i]
		}
		if peaks[i] <= s.cfg.ThresholdC && peaks[i] < bestPeak {
			bestPeak, bestPl, found = peaks[i], pl, true
		}
	}
	return bestPl, bestPeak, found, nil
}
