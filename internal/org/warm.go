package org

import "sync"

// warmCache is the engine's bounded ring of recently converged temperature
// fields, used to seed the first CG solve of an escalated full simulation
// from a neighboring search point's field instead of ambient.
//
// Seeding discipline: a seed only pays when it shares the thermal operator
// with the solve it seeds — the same placement geometry (plKey), so the
// conductance matrix is identical and only the power map differs (another
// DVFS point or active-core count). A field from a perturbed geometry is
// measurably counterproductive: its error concentrates in the solver's
// slowest mode, CG loses its superlinear phase, and the seeded solve takes
// slightly MORE iterations than the ambient cold start (~10% in our
// benchmarks). nearest therefore requires an exact placement match and
// ranks the remaining candidates by integer distance over the search
// coordinates the greedy walk actually moves, (fIdx, cores). In practice
// the big winner is the surrogate-calibration pattern: the scalar tier
// simulates every placement at the canonical DVFS point first, so an
// escalated evaluation at any other point almost always finds a
// same-operator seed already retained.
//
// Memory discipline: the ring holds at most its configured capacity of
// fields and each slot's buffer is reused across generations, so a
// long-lived engine does no steady-state warm-cache allocation. Reads copy
// under the lock: a retained buffer may be overwritten by a concurrent put,
// and the solver must never observe a torn seed.
//
// Purity note: a seed never changes what a simulation converges to beyond
// the CG tolerance, but it does change the exact floating-point path. With
// warm starts enabled the engine's memo purity is therefore
// tolerance-bounded (|ΔT| ≤ solver tolerance, ~1e-6 °C) rather than
// bit-exact; winner parity on the golden corpus is pinned by verify's
// differential/warm-start check. WarmStart is a Config knob, default off,
// so searches that want the bit-exact contract keep it.
type warmCache struct {
	mu    sync.Mutex
	slots []warmSlot
	next  int // slot the next put overwrites (oldest entry)
}

type warmSlot struct {
	used bool
	key  engineKey
	t    []float64
}

// newWarmCache builds a ring of the given capacity (nil when non-positive,
// which disables warm starts).
func newWarmCache(capacity int) *warmCache {
	if capacity <= 0 {
		return nil
	}
	return &warmCache{slots: make([]warmSlot, capacity)}
}

// put retains a copy of field t for key k, overwriting the oldest slot.
func (c *warmCache) put(k engineKey, t []float64) {
	if c == nil || len(t) == 0 {
		return
	}
	c.mu.Lock()
	s := &c.slots[c.next]
	s.used = true
	s.key = k
	if cap(s.t) < len(t) {
		s.t = make([]float64, len(t))
	}
	s.t = s.t[:len(t)]
	copy(s.t, t)
	c.next = (c.next + 1) % len(c.slots)
	c.mu.Unlock()
}

// nearest returns a copy of the retained field nearest to key k, or nil
// when no same-operator candidate is resident. Candidates must match k's
// benchmark and placement geometry exactly (the seed must share the thermal
// operator; see the type comment); among them the smallest
// |Δfidx| + |Δcores| wins, ties resolving to the most recently retained.
func (c *warmCache) nearest(k engineKey) []float64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	best, bestD := -1, int(^uint(0)>>1)
	n := len(c.slots)
	for i := 0; i < n; i++ {
		// Scan newest-first so distance ties resolve to the most recent.
		idx := ((c.next-1-i)%n + n) % n
		s := &c.slots[idx]
		if !s.used || s.key.bench != k.bench || s.key.ek.pl != k.ek.pl {
			continue
		}
		d := absInt(s.key.ek.fIdx-k.ek.fIdx) + absInt(s.key.ek.cores-k.ek.cores)
		if d < bestD {
			best, bestD = idx, d
		}
	}
	if best < 0 {
		return nil
	}
	out := make([]float64, len(c.slots[best].t))
	copy(out, c.slots[best].t)
	return out
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
