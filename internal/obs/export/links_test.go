package export

import (
	"encoding/json"
	"testing"

	"chiplet25d/internal/obs"
)

// TestEncodeTracesSpanLinks: the peer-fetch client records the owner node's
// span identity as link.trace_id/link.span_id attrs; the encoder must lift
// the pair into a proper OTLP span link and strip the raw attrs.
func TestEncodeTracesSpanLinks(t *testing.T) {
	tr := testTrace("req-link")
	tr.Spans = append(tr.Spans,
		&obs.SpanJSON{
			Name: "peer.fetch", StartMS: 3, DurationMS: 2,
			Attrs: map[string]any{
				"peer":          "http://owner:8080",
				"result":        "hit",
				"link.trace_id": "4bf92f3577b34da6a3ce929d0e0e4736",
				"link.span_id":  "00f067aa0ba902b7",
			},
		},
		&obs.SpanJSON{
			// A half-set pair is not a link; it must survive as a plain attr.
			Name: "peer.fetch.partial", StartMS: 6, DurationMS: 1,
			Attrs: map[string]any{"link.trace_id": "4bf92f3577b34da6a3ce929d0e0e4736"},
		})

	body, _ := EncodeTraces("chipletd", []*obs.TraceJSON{tr})
	var payload struct {
		ResourceSpans []struct {
			ScopeSpans []struct {
				Spans []struct {
					Name       string `json:"name"`
					Attributes []struct {
						Key   string `json:"key"`
						Value struct {
							String *string `json:"stringValue"`
						} `json:"value"`
					} `json:"attributes"`
					Links []struct {
						TraceID string `json:"traceId"`
						SpanID  string `json:"spanId"`
					} `json:"links"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	spans := payload.ResourceSpans[0].ScopeSpans[0].Spans
	for i, sp := range spans {
		byName[sp.Name] = i
	}

	fetch := spans[byName["peer.fetch"]]
	if len(fetch.Links) != 1 ||
		fetch.Links[0].TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" ||
		fetch.Links[0].SpanID != "00f067aa0ba902b7" {
		t.Fatalf("peer.fetch links = %+v, want the owner span lifted into one link", fetch.Links)
	}
	keys := map[string]bool{}
	for _, a := range fetch.Attributes {
		keys[a.Key] = true
	}
	if keys["link.trace_id"] || keys["link.span_id"] {
		t.Errorf("raw link attrs leaked into attributes: %v", keys)
	}
	if !keys["peer"] || !keys["result"] {
		t.Errorf("ordinary attrs lost during link extraction: %v", keys)
	}

	partial := spans[byName["peer.fetch.partial"]]
	if len(partial.Links) != 0 {
		t.Errorf("half-set pair produced links: %+v", partial.Links)
	}
	found := false
	for _, a := range partial.Attributes {
		if a.Key == "link.trace_id" {
			found = true
		}
	}
	if !found {
		t.Error("half-set link.trace_id attr was dropped instead of kept")
	}
}
