// Package export is chipletd's dependency-free telemetry egress: it encodes
// the obs layer's request traces and the metrics registry's families as
// OTLP/JSON (the OpenTelemetry protocol's proto3-JSON mapping, stable since
// OTLP 1.0) and ships them over plain HTTP to a collector's /v1/traces and
// /v1/metrics endpoints. No OpenTelemetry SDK is linked: the subset of the
// schema chipletd emits — resource/scope envelopes, spans with attributes
// and status, sums, gauges, and explicit-bounds histograms — is small
// enough to hand-roll, which keeps the solve path free of third-party
// instrumentation costs and the module free of new dependencies.
//
// The exporter itself (exporter.go) is a bounded async batch queue with
// tail-based sampling: slow and failed traces always export, the rest are
// probabilistically sampled, and under backpressure the oldest queued trace
// is dropped so the serve path never blocks on telemetry.
package export

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"time"

	"chiplet25d/internal/obs"
)

// otlpAttr is the OTLP common.v1.KeyValue JSON shape.
type otlpAttr struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

// otlpValue is common.v1.AnyValue restricted to the types obs attributes
// actually carry.
type otlpValue struct {
	String *string  `json:"stringValue,omitempty"`
	Bool   *bool    `json:"boolValue,omitempty"`
	Int    *string  `json:"intValue,omitempty"` // proto3 JSON: int64 as string
	Double *float64 `json:"doubleValue,omitempty"`
}

// anyValue maps a Go attribute value onto the OTLP AnyValue union.
func anyValue(v any) otlpValue {
	switch x := v.(type) {
	case string:
		return otlpValue{String: &x}
	case bool:
		return otlpValue{Bool: &x}
	case int:
		s := strconv.FormatInt(int64(x), 10)
		return otlpValue{Int: &s}
	case int64:
		s := strconv.FormatInt(x, 10)
		return otlpValue{Int: &s}
	case float64:
		return otlpValue{Double: &x}
	default:
		s := fmt.Sprint(v)
		return otlpValue{String: &s}
	}
}

func attrList(m map[string]any, keys []string) []otlpAttr {
	if len(keys) == 0 {
		return nil
	}
	out := make([]otlpAttr, 0, len(keys))
	for _, k := range keys {
		out = append(out, otlpAttr{Key: k, Value: anyValue(m[k])})
	}
	return out
}

// sortedKeys returns the map's keys in deterministic (sorted) order so
// encoded payloads are byte-stable for a given trace.
func sortedKeys(m map[string]any) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort: attr maps are tiny
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// otlpSpan is trace.v1.Span in proto3-JSON form.
type otlpSpan struct {
	TraceID      string      `json:"traceId"`
	SpanID       string      `json:"spanId"`
	ParentSpanID string      `json:"parentSpanId,omitempty"`
	Name         string      `json:"name"`
	Kind         int         `json:"kind"`
	Start        string      `json:"startTimeUnixNano"`
	End          string      `json:"endTimeUnixNano"`
	Attributes   []otlpAttr  `json:"attributes,omitempty"`
	Status       *otlpStatus `json:"status,omitempty"`
	Links        []otlpLink  `json:"links,omitempty"`
}

// otlpLink is trace.v1.Span.Link: a causal reference to a span in another
// trace. The obs layer records links as link.trace_id/link.span_id string
// attributes (it has no link type of its own); the encoder lifts them here
// so backends render peer-fetch hops as proper cross-trace links.
type otlpLink struct {
	TraceID string `json:"traceId"`
	SpanID  string `json:"spanId"`
}

// extractLink pulls the link.* attribute pair out of a span's attributes,
// returning the remaining attribute keys and the link (nil when absent or
// incomplete — a half-set pair stays an ordinary attribute for debugging).
func extractLink(attrs map[string]any, keys []string) ([]string, []otlpLink) {
	tid, okT := attrs["link.trace_id"].(string)
	sid, okS := attrs["link.span_id"].(string)
	if !okT || !okS || tid == "" || sid == "" {
		return keys, nil
	}
	kept := keys[:0:len(keys)]
	for _, k := range keys {
		if k != "link.trace_id" && k != "link.span_id" {
			kept = append(kept, k)
		}
	}
	return kept, []otlpLink{{TraceID: tid, SpanID: sid}}
}

type otlpStatus struct {
	Code    int    `json:"code"` // 0 unset, 1 ok, 2 error
	Message string `json:"message,omitempty"`
}

const (
	spanKindInternal = 1
	spanKindServer   = 2
)

type otlpScope struct {
	Name    string `json:"name"`
	Version string `json:"version,omitempty"`
}

type otlpResource struct {
	Attributes []otlpAttr `json:"attributes,omitempty"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

// tracePayload is the POST /v1/traces body
// (trace.v1.ExportTraceServiceRequest).
type tracePayload struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

const scopeName = "chiplet25d/internal/obs"

func resourceFor(serviceName string) otlpResource {
	return otlpResource{Attributes: []otlpAttr{
		{Key: "service.name", Value: anyValue(serviceName)},
	}}
}

// deriveSpanID deterministically derives a child span ID from the trace's
// root span ID and the span's visit index, via the SplitMix64 finalizer.
// Exported IDs must be unique within the trace and stable for a given
// snapshot; they need no cryptographic randomness beyond the root's.
func deriveSpanID(rootSpanID string, index int) string {
	seed := uint64(0x9e3779b97f4a7c15)
	if b, err := hex.DecodeString(rootSpanID); err == nil && len(b) == 8 {
		seed = uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
			uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
	}
	x := seed ^ (uint64(index+1) * 0xbf58476d1ce4e5b9)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	var out [8]byte
	for i := 0; i < 8; i++ {
		out[i] = byte(x >> (56 - 8*i))
	}
	id := hex.EncodeToString(out[:])
	if allZeroHex(id) {
		return "0000000000000001"
	}
	return id
}

func allZeroHex(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

func unixNano(t time.Time, offsetMS float64) string {
	return strconv.FormatInt(t.UnixNano()+int64(offsetMS*float64(time.Millisecond)), 10)
}

// EncodeTraces encodes completed request traces as one OTLP/JSON
// ExportTraceServiceRequest. Each trace becomes a SERVER root span named
// after its route (parented on the propagated remote span, when any)
// carrying the request-level attributes, with the obs span tree below it as
// INTERNAL spans. Traces without a trace ID (pre-propagation snapshots fed
// directly by tests) are skipped.
func EncodeTraces(serviceName string, traces []*obs.TraceJSON) ([]byte, int) {
	var spans []otlpSpan
	for _, t := range traces {
		if t == nil || t.TraceID == "" || t.SpanID == "" {
			continue
		}
		root := otlpSpan{
			TraceID:      t.TraceID,
			SpanID:       t.SpanID,
			ParentSpanID: t.ParentSpanID,
			Name:         t.Route,
			Kind:         spanKindServer,
			Start:        unixNano(t.Start, 0),
			End:          unixNano(t.Start, t.DurationMS),
			Attributes: append(attrList(t.Attrs, sortedKeys(t.Attrs)),
				otlpAttr{Key: "request.id", Value: anyValue(t.RequestID)}),
		}
		if code, ok := statusCode(t.Attrs); ok {
			st := &otlpStatus{Code: 1}
			if code >= 500 {
				st = &otlpStatus{Code: 2, Message: fmt.Sprintf("HTTP %d", code)}
			}
			root.Status = st
		}
		spans = append(spans, root)
		idx := 0
		var walk func(parent string, ns []*obs.SpanJSON)
		walk = func(parent string, ns []*obs.SpanJSON) {
			for _, n := range ns {
				id := deriveSpanID(t.SpanID, idx)
				idx++
				keys, links := extractLink(n.Attrs, sortedKeys(n.Attrs))
				spans = append(spans, otlpSpan{
					TraceID:      t.TraceID,
					SpanID:       id,
					ParentSpanID: parent,
					Name:         n.Name,
					Kind:         spanKindInternal,
					Start:        unixNano(t.Start, n.StartMS),
					End:          unixNano(t.Start, n.StartMS+n.DurationMS),
					Attributes:   attrList(n.Attrs, keys),
					Links:        links,
				})
				walk(id, n.Children)
			}
		}
		walk(t.SpanID, t.Spans)
	}
	if len(spans) == 0 {
		return nil, 0
	}
	payload := tracePayload{ResourceSpans: []otlpResourceSpans{{
		Resource:   resourceFor(serviceName),
		ScopeSpans: []otlpScopeSpans{{Scope: otlpScope{Name: scopeName}, Spans: spans}},
	}}}
	b, err := json.Marshal(payload)
	if err != nil { // unreachable: the payload is plain data
		return nil, 0
	}
	return b, len(spans)
}

// statusCode extracts the HTTP status a trace's middleware recorded.
func statusCode(attrs map[string]any) (int, bool) {
	v, ok := attrs["status"]
	if !ok {
		return 0, false
	}
	switch x := v.(type) {
	case int:
		return x, true
	case int64:
		return int(x), true
	case float64:
		return int(x), true
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// Metrics

// MetricType tags a metric family snapshot for OTLP mapping.
type MetricType int

const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

// HistPoint is one histogram data point: per-bucket (non-cumulative) counts
// under ascending explicit bounds, with the +Inf bucket last.
type HistPoint struct {
	Bounds []float64 // explicit upper bounds, +Inf implicit
	Counts []uint64  // len(Bounds)+1: per-bound counts then the +Inf count
	Sum    float64
	Count  uint64
}

// Point is one data point of a metric family snapshot.
type Point struct {
	Attrs [][2]string // label name/value pairs, deterministic order
	Value float64     // counter or gauge value
	Hist  *HistPoint  // set for histogram families
}

// Metric is one family snapshot, the exporter's metrics input. The serve
// layer adapts its registry snapshot into this shape so export stays free
// of serve dependencies.
type Metric struct {
	Name        string
	Description string
	Type        MetricType
	Points      []Point
}

type otlpNumberPoint struct {
	Attributes []otlpAttr `json:"attributes,omitempty"`
	TimeNano   string     `json:"timeUnixNano"`
	AsDouble   float64    `json:"asDouble"`
}

type otlpHistPoint struct {
	Attributes   []otlpAttr `json:"attributes,omitempty"`
	TimeNano     string     `json:"timeUnixNano"`
	Count        string     `json:"count"`
	Sum          float64    `json:"sum"`
	BucketCounts []string   `json:"bucketCounts"`
	Bounds       []float64  `json:"explicitBounds"`
}

type otlpSum struct {
	DataPoints  []otlpNumberPoint `json:"dataPoints"`
	Temporality int               `json:"aggregationTemporality"` // 2 = cumulative
	IsMonotonic bool              `json:"isMonotonic"`
}

type otlpGauge struct {
	DataPoints []otlpNumberPoint `json:"dataPoints"`
}

type otlpHistogram struct {
	DataPoints  []otlpHistPoint `json:"dataPoints"`
	Temporality int             `json:"aggregationTemporality"`
}

type otlpMetric struct {
	Name        string         `json:"name"`
	Description string         `json:"description,omitempty"`
	Sum         *otlpSum       `json:"sum,omitempty"`
	Gauge       *otlpGauge     `json:"gauge,omitempty"`
	Histogram   *otlpHistogram `json:"histogram,omitempty"`
}

type otlpScopeMetrics struct {
	Scope   otlpScope    `json:"scope"`
	Metrics []otlpMetric `json:"metrics"`
}

type otlpResourceMetrics struct {
	Resource     otlpResource       `json:"resource"`
	ScopeMetrics []otlpScopeMetrics `json:"scopeMetrics"`
}

// metricsPayload is the POST /v1/metrics body
// (metrics.v1.ExportMetricsServiceRequest).
type metricsPayload struct {
	ResourceMetrics []otlpResourceMetrics `json:"resourceMetrics"`
}

const temporalityCumulative = 2

func pairAttrs(pairs [][2]string) []otlpAttr {
	if len(pairs) == 0 {
		return nil
	}
	out := make([]otlpAttr, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, otlpAttr{Key: p[0], Value: anyValue(p[1])})
	}
	return out
}

// EncodeMetrics encodes one registry snapshot as an OTLP/JSON
// ExportMetricsServiceRequest taken at time now.
func EncodeMetrics(serviceName string, ms []Metric, now time.Time) []byte {
	ts := strconv.FormatInt(now.UnixNano(), 10)
	out := make([]otlpMetric, 0, len(ms))
	for _, m := range ms {
		om := otlpMetric{Name: m.Name, Description: m.Description}
		switch m.Type {
		case TypeHistogram:
			pts := make([]otlpHistPoint, 0, len(m.Points))
			for _, p := range m.Points {
				if p.Hist == nil {
					continue
				}
				bc := make([]string, 0, len(p.Hist.Counts))
				for _, c := range p.Hist.Counts {
					bc = append(bc, strconv.FormatUint(c, 10))
				}
				sum := p.Hist.Sum
				if math.IsNaN(sum) || math.IsInf(sum, 0) {
					sum = 0
				}
				pts = append(pts, otlpHistPoint{
					Attributes:   pairAttrs(p.Attrs),
					TimeNano:     ts,
					Count:        strconv.FormatUint(p.Hist.Count, 10),
					Sum:          sum,
					BucketCounts: bc,
					Bounds:       p.Hist.Bounds,
				})
			}
			om.Histogram = &otlpHistogram{DataPoints: pts, Temporality: temporalityCumulative}
		case TypeCounter:
			pts := make([]otlpNumberPoint, 0, len(m.Points))
			for _, p := range m.Points {
				pts = append(pts, otlpNumberPoint{Attributes: pairAttrs(p.Attrs), TimeNano: ts, AsDouble: p.Value})
			}
			om.Sum = &otlpSum{DataPoints: pts, Temporality: temporalityCumulative, IsMonotonic: true}
		default:
			pts := make([]otlpNumberPoint, 0, len(m.Points))
			for _, p := range m.Points {
				pts = append(pts, otlpNumberPoint{Attributes: pairAttrs(p.Attrs), TimeNano: ts, AsDouble: p.Value})
			}
			om.Gauge = &otlpGauge{DataPoints: pts}
		}
		out = append(out, om)
	}
	payload := metricsPayload{ResourceMetrics: []otlpResourceMetrics{{
		Resource:     resourceFor(serviceName),
		ScopeMetrics: []otlpScopeMetrics{{Scope: otlpScope{Name: scopeName}, Metrics: out}},
	}}}
	b, err := json.Marshal(payload)
	if err != nil { // unreachable: plain data
		return nil
	}
	return b
}
