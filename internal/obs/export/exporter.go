package export

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"chiplet25d/internal/obs"
)

// Options configures an Exporter. The zero value is not usable; fill
// Endpoint and pass through New, which applies defaults.
type Options struct {
	// Endpoint is the collector base URL (e.g. http://otel:4318). Traces
	// POST to Endpoint+"/v1/traces", metrics to Endpoint+"/v1/metrics".
	Endpoint string
	// ServiceName becomes the OTLP resource service.name attribute.
	ServiceName string
	// QueueSize bounds the trace queue; the oldest queued trace is dropped
	// when a new one arrives at a full queue. Default 256.
	QueueSize int
	// BatchSize caps traces per export POST. Default 64.
	BatchSize int
	// FlushInterval is the max age of a queued trace before the worker
	// exports a partial batch. Default 2s.
	FlushInterval time.Duration
	// MetricsInterval is the period between metric snapshot exports; 0
	// disables metric export. Default 10s when MetricsSource is set.
	MetricsInterval time.Duration
	// Sampler decides which completed traces to export; nil exports all.
	Sampler *TailSampler
	// MetricsSource supplies the metric families to export each interval.
	MetricsSource func() []Metric
	// HTTPClient overrides the POST client (tests). Default: 5s timeout.
	HTTPClient *http.Client
	// Logger receives export errors (throttled); nil discards.
	Logger *slog.Logger
}

// Stats is a snapshot of the exporter's lifetime counters.
type Stats struct {
	Enqueued       uint64 // traces accepted into the queue
	Sampled        uint64 // traces the sampler dropped (never queued)
	Dropped        uint64 // traces evicted from a full queue
	Exported       uint64 // traces successfully POSTed
	Batches        uint64 // trace POSTs attempted
	Errors         uint64 // failed POSTs (trace or metric)
	MetricExports  uint64 // metric POSTs attempted
	SpansExported  uint64 // spans inside successful trace POSTs
	QueueDepth     int    // traces currently queued
	QueueHighWater int    // max observed queue depth
}

// Exporter ships completed request traces and metric snapshots to an OTLP
// HTTP collector from a single background goroutine. A nil *Exporter is a
// valid no-op receiver — the disabled path is one nil check, no allocation
// — matching the repo-wide nil-telemetry idiom (obs.Span, obs.Recorder).
type Exporter struct {
	opts   Options
	client *http.Client

	mu        sync.Mutex
	queue     []*obs.TraceJSON // FIFO; index 0 oldest
	highWater int
	closed    bool

	notify chan struct{} // 1-buffered wake signal for the worker
	stop   chan struct{}
	done   chan struct{}

	flushMu  sync.Mutex // serializes Flush with the worker's export step
	enqueued atomic.Uint64
	sampled  atomic.Uint64
	dropped  atomic.Uint64
	exported atomic.Uint64
	batches  atomic.Uint64
	errs     atomic.Uint64
	mexports atomic.Uint64
	spans    atomic.Uint64

	lastErrLog atomic.Int64 // unix nanos of last logged export error
}

// New starts an exporter and its background worker. Returns nil (the no-op
// exporter) when opts.Endpoint is empty, so callers can wire the result
// unconditionally.
func New(opts Options) *Exporter {
	if opts.Endpoint == "" {
		return nil
	}
	if opts.ServiceName == "" {
		opts.ServiceName = "chipletd"
	}
	if opts.QueueSize <= 0 {
		opts.QueueSize = 256
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 64
	}
	if opts.BatchSize > opts.QueueSize {
		opts.BatchSize = opts.QueueSize
	}
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = 2 * time.Second
	}
	if opts.MetricsInterval <= 0 && opts.MetricsSource != nil {
		opts.MetricsInterval = 10 * time.Second
	}
	client := opts.HTTPClient
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	e := &Exporter{
		opts:   opts,
		client: client,
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go e.run()
	return e
}

// Enqueue offers a completed trace for export. It never blocks: the sampler
// may drop it, and a full queue evicts its oldest entry. Safe on nil and
// after Shutdown (both no-ops).
func (e *Exporter) Enqueue(t *obs.TraceJSON) {
	if e == nil || t == nil {
		return
	}
	if s := e.opts.Sampler; s != nil && !s.Sample(t) {
		e.sampled.Add(1)
		return
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	if len(e.queue) >= e.opts.QueueSize {
		// Drop-oldest: recent traces are the ones an operator is debugging.
		copy(e.queue, e.queue[1:])
		e.queue = e.queue[:len(e.queue)-1]
		e.dropped.Add(1)
	}
	e.queue = append(e.queue, t)
	if len(e.queue) > e.highWater {
		e.highWater = len(e.queue)
	}
	full := len(e.queue) >= e.opts.BatchSize
	e.mu.Unlock()
	e.enqueued.Add(1)
	if full {
		select {
		case e.notify <- struct{}{}:
		default:
		}
	}
}

// Stats returns a snapshot of the exporter's counters (zero Stats on nil).
func (e *Exporter) Stats() Stats {
	if e == nil {
		return Stats{}
	}
	e.mu.Lock()
	depth, hw := len(e.queue), e.highWater
	e.mu.Unlock()
	return Stats{
		Enqueued:       e.enqueued.Load(),
		Sampled:        e.sampled.Load(),
		Dropped:        e.dropped.Load(),
		Exported:       e.exported.Load(),
		Batches:        e.batches.Load(),
		Errors:         e.errs.Load(),
		MetricExports:  e.mexports.Load(),
		SpansExported:  e.spans.Load(),
		QueueDepth:     depth,
		QueueHighWater: hw,
	}
}

// Flush synchronously exports everything queued right now, plus one metric
// snapshot when a MetricsSource is configured. Bounded by ctx. No-op on nil.
func (e *Exporter) Flush(ctx context.Context) error {
	if e == nil {
		return nil
	}
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		batch := e.take(e.opts.BatchSize)
		if len(batch) == 0 {
			break
		}
		e.exportBatch(ctx, batch)
	}
	if e.opts.MetricsSource != nil {
		e.exportMetrics(ctx)
	}
	return ctx.Err()
}

// Shutdown flushes and stops the worker, bounded by ctx. The exporter
// accepts no traces afterwards. Safe on nil and when called twice.
func (e *Exporter) Shutdown(ctx context.Context) error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	already := e.closed
	e.closed = true
	e.mu.Unlock()
	if !already {
		close(e.stop)
	}
	select {
	case <-e.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	return e.Flush(ctx)
}

// take removes up to n traces from the head of the queue.
func (e *Exporter) take(n int) []*obs.TraceJSON {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.queue) == 0 {
		return nil
	}
	if n > len(e.queue) {
		n = len(e.queue)
	}
	batch := make([]*obs.TraceJSON, n)
	copy(batch, e.queue)
	rest := copy(e.queue, e.queue[n:])
	for i := rest; i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	e.queue = e.queue[:rest]
	return batch
}

// run is the background worker: it exports a batch when the queue reaches
// BatchSize, when FlushInterval elapses with traces pending, and metric
// snapshots every MetricsInterval.
func (e *Exporter) run() {
	defer close(e.done)
	flush := time.NewTicker(e.opts.FlushInterval)
	defer flush.Stop()
	var metricsC <-chan time.Time
	if e.opts.MetricsSource != nil && e.opts.MetricsInterval > 0 {
		mt := time.NewTicker(e.opts.MetricsInterval)
		defer mt.Stop()
		metricsC = mt.C
	}
	ctx := context.Background()
	for {
		select {
		case <-e.stop:
			return // Shutdown flushes the remainder
		case <-e.notify:
			e.drain(ctx)
		case <-flush.C:
			e.drain(ctx)
		case <-metricsC:
			e.flushMu.Lock()
			e.exportMetrics(ctx)
			e.flushMu.Unlock()
		}
	}
}

// drain exports full batches until the queue is below BatchSize, then one
// partial batch (the interval tick's job is emptying stragglers).
func (e *Exporter) drain(ctx context.Context) {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	for {
		batch := e.take(e.opts.BatchSize)
		if len(batch) == 0 {
			return
		}
		e.exportBatch(ctx, batch)
		if len(batch) < e.opts.BatchSize {
			return
		}
	}
}

func (e *Exporter) exportBatch(ctx context.Context, batch []*obs.TraceJSON) {
	body, spanCount := EncodeTraces(e.opts.ServiceName, batch)
	if body == nil {
		return
	}
	e.batches.Add(1)
	if e.post(ctx, e.opts.Endpoint+"/v1/traces", body) {
		e.exported.Add(uint64(len(batch)))
		e.spans.Add(uint64(spanCount))
	}
}

func (e *Exporter) exportMetrics(ctx context.Context) {
	src := e.opts.MetricsSource
	if src == nil {
		return
	}
	ms := src()
	if len(ms) == 0 {
		return
	}
	body := EncodeMetrics(e.opts.ServiceName, ms, time.Now())
	if body == nil {
		return
	}
	e.mexports.Add(1)
	e.post(ctx, e.opts.Endpoint+"/v1/metrics", body)
}

// post sends one OTLP/JSON payload; failures count and log (throttled to
// one line per 10s so a dead collector cannot spam the daemon log).
func (e *Exporter) post(ctx context.Context, url string, body []byte) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		e.fail(url, err)
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := e.client.Do(req)
	if err != nil {
		e.fail(url, err)
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		e.errs.Add(1)
		e.logThrottled("otlp export rejected", "url", url, "status", resp.StatusCode)
		return false
	}
	return true
}

func (e *Exporter) fail(url string, err error) {
	e.errs.Add(1)
	e.logThrottled("otlp export failed", "url", url, "err", err.Error())
}

func (e *Exporter) logThrottled(msg string, args ...any) {
	if e.opts.Logger == nil {
		return
	}
	now := time.Now().UnixNano()
	last := e.lastErrLog.Load()
	if now-last < int64(10*time.Second) || !e.lastErrLog.CompareAndSwap(last, now) {
		return
	}
	e.opts.Logger.Warn(msg, args...)
}

// ---------------------------------------------------------------------------
// Tail sampling

// TailSampler makes the export decision after a request completes, when its
// duration and status are known: slow traces and server errors always
// export, the rest are sampled at Rate. This keeps export volume flat under
// load while guaranteeing the traces worth debugging are never dropped.
type TailSampler struct {
	slow time.Duration // traces at least this slow always export
	rate float64       // probability for the unremarkable rest

	mu  sync.Mutex
	rng *rand.Rand
}

// NewTailSampler builds a sampler. rate is clamped to [0,1]; slow <= 0
// disables the slow-trace bypass; seed makes the probabilistic stream
// deterministic (tests) — use time-derived seeds in production wiring.
func NewTailSampler(rate float64, slow time.Duration, seed int64) *TailSampler {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &TailSampler{slow: slow, rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Sample reports whether the trace should be exported. Nil sampler exports
// everything.
func (s *TailSampler) Sample(t *obs.TraceJSON) bool {
	if s == nil {
		return true
	}
	if s.slow > 0 && time.Duration(t.DurationMS*float64(time.Millisecond)) >= s.slow {
		return true
	}
	if code, ok := statusCode(t.Attrs); ok && code >= 500 {
		return true
	}
	if s.rate >= 1 {
		return true
	}
	if s.rate <= 0 {
		return false
	}
	s.mu.Lock()
	v := s.rng.Float64()
	s.mu.Unlock()
	return v < s.rate
}
