package export

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chiplet25d/internal/obs"
)

// testTrace builds a minimal valid exporter input.
func testTrace(id string) *obs.TraceJSON {
	return &obs.TraceJSON{
		RequestID:  id,
		Route:      "thermal_solve",
		TraceID:    "0af7651916cd43dd8448eb211c80319c",
		SpanID:     "b7ad6b7169203331",
		Start:      time.Unix(1700000000, 0),
		DurationMS: 12.5,
		Attrs:      map[string]any{"status": 200, "cache": "miss"},
		Spans: []*obs.SpanJSON{{
			Name: "engine.sim", StartMS: 1, DurationMS: 10,
			Attrs: map[string]any{"fidelity": "full"},
			Children: []*obs.SpanJSON{
				{Name: "thermal.cg", StartMS: 2, DurationMS: 8},
			},
		}},
	}
}

// otlpSink is an httptest collector that records decoded trace POSTs.
type otlpSink struct {
	mu      sync.Mutex
	bodies  [][]byte
	traces  int // root (SERVER) spans seen
	spans   int // all spans seen
	reqIDs  []string
	srv     *httptest.Server
	metrics atomic.Int64
}

func newOTLPSink(t *testing.T) *otlpSink {
	t.Helper()
	s := &otlpSink{}
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		switch r.URL.Path {
		case "/v1/metrics":
			s.metrics.Add(1)
			return
		case "/v1/traces":
		default:
			t.Errorf("unexpected OTLP path %q", r.URL.Path)
			return
		}
		var payload struct {
			ResourceSpans []struct {
				ScopeSpans []struct {
					Spans []struct {
						Kind       int `json:"kind"`
						Attributes []struct {
							Key   string `json:"key"`
							Value struct {
								String *string `json:"stringValue"`
							} `json:"value"`
						} `json:"attributes"`
					} `json:"spans"`
				} `json:"scopeSpans"`
			} `json:"resourceSpans"`
		}
		if err := json.Unmarshal(body, &payload); err != nil {
			t.Errorf("sink received invalid JSON: %v", err)
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		s.bodies = append(s.bodies, body)
		for _, rs := range payload.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				for _, sp := range ss.Spans {
					s.spans++
					if sp.Kind == 2 {
						s.traces++
						for _, a := range sp.Attributes {
							if a.Key == "request.id" && a.Value.String != nil {
								s.reqIDs = append(s.reqIDs, *a.Value.String)
							}
						}
					}
				}
			}
		}
	}))
	t.Cleanup(s.srv.Close)
	return s
}

func (s *otlpSink) counts() (traces, spans int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.traces, s.spans
}

func (s *otlpSink) requestIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.reqIDs...)
}

// TestQueueDropOldest verifies the backpressure contract on a quiescent
// exporter (no worker goroutine): a full queue evicts its oldest entry and
// Flush exports the survivors in FIFO order.
func TestQueueDropOldest(t *testing.T) {
	sink := newOTLPSink(t)
	e := &Exporter{
		opts: Options{
			Endpoint:  sink.srv.URL,
			QueueSize: 4,
			BatchSize: 2,
		},
		client: sink.srv.Client(),
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for i := 0; i < 7; i++ {
		e.Enqueue(testTrace(fmt.Sprintf("req-%d", i)))
	}
	st := e.Stats()
	if st.Enqueued != 7 {
		t.Errorf("Enqueued = %d, want 7", st.Enqueued)
	}
	if st.Dropped != 3 {
		t.Errorf("Dropped = %d, want 3 (queue size 4, 7 offered)", st.Dropped)
	}
	if st.QueueDepth != 4 || st.QueueHighWater != 4 {
		t.Errorf("depth/highwater = %d/%d, want 4/4", st.QueueDepth, st.QueueHighWater)
	}
	if err := e.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Exported != 4 || st.QueueDepth != 0 {
		t.Errorf("after flush: Exported = %d (want 4), depth = %d (want 0)", st.Exported, st.QueueDepth)
	}
	// The three oldest were evicted; survivors arrive oldest-first.
	want := []string{"req-3", "req-4", "req-5", "req-6"}
	got := sink.requestIDs()
	if len(got) != len(want) {
		t.Fatalf("sink request ids = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sink order[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestExporterConcurrentStress hammers one live exporter from many
// goroutines (designed to run under -race): concurrent Enqueue, Flush, and
// Stats, then a Shutdown that must leave every accepted trace accounted for
// as exported or dropped, with the sink's receive count matching Exported.
func TestExporterConcurrentStress(t *testing.T) {
	sink := newOTLPSink(t)
	e := New(Options{
		Endpoint:      sink.srv.URL,
		QueueSize:     64,
		BatchSize:     8,
		FlushInterval: 5 * time.Millisecond,
		HTTPClient:    sink.srv.Client(),
	})
	const (
		workers = 8
		perW    = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				e.Enqueue(testTrace(fmt.Sprintf("w%d-%d", w, i)))
				if i%16 == 0 {
					_ = e.Flush(context.Background())
				}
				_ = e.Stats()
			}
		}(w)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	st := e.Stats()
	if st.Enqueued != workers*perW {
		t.Errorf("Enqueued = %d, want %d", st.Enqueued, workers*perW)
	}
	if st.Exported+st.Dropped != st.Enqueued {
		t.Errorf("Exported(%d) + Dropped(%d) != Enqueued(%d)", st.Exported, st.Dropped, st.Enqueued)
	}
	if st.QueueDepth != 0 {
		t.Errorf("queue not empty after shutdown: %d", st.QueueDepth)
	}
	traces, spans := sink.counts()
	if uint64(traces) != st.Exported {
		t.Errorf("sink saw %d traces, exporter counted %d exported", traces, st.Exported)
	}
	if uint64(spans) != st.SpansExported {
		t.Errorf("sink saw %d spans, exporter counted %d", spans, st.SpansExported)
	}
	// Shutdown is terminal: later enqueues are silently refused.
	e.Enqueue(testTrace("late"))
	if got := e.Stats().QueueDepth; got != 0 {
		t.Errorf("enqueue after shutdown queued a trace (depth %d)", got)
	}
}

// TestShutdownFlushesPartialBatch: traces below BatchSize (so the worker
// had no reason to export) must still reach the sink on Shutdown — the
// drain-flush contract the daemon relies on at SIGTERM.
func TestShutdownFlushesPartialBatch(t *testing.T) {
	sink := newOTLPSink(t)
	e := New(Options{
		Endpoint:      sink.srv.URL,
		QueueSize:     64,
		BatchSize:     32,
		FlushInterval: time.Hour, // the ticker never fires during the test
		HTTPClient:    sink.srv.Client(),
	})
	for i := 0; i < 5; i++ {
		e.Enqueue(testTrace(fmt.Sprintf("pending-%d", i)))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if traces, _ := sink.counts(); traces != 5 {
		t.Errorf("sink saw %d traces after shutdown, want 5", traces)
	}
}

// TestTailSamplerDeterminism: two samplers with one seed make identical
// decisions, slow traces and 5xx traces always export regardless of rate,
// and the clamped rates behave as all-or-nothing.
func TestTailSamplerDeterminism(t *testing.T) {
	mk := func(d float64, status int) *obs.TraceJSON {
		return &obs.TraceJSON{DurationMS: d, Attrs: map[string]any{"status": status}}
	}
	a := NewTailSampler(0.3, 100*time.Millisecond, 42)
	b := NewTailSampler(0.3, 100*time.Millisecond, 42)
	var kept int
	for i := 0; i < 1000; i++ {
		tr := mk(float64(i%90), 200)
		da, db := a.Sample(tr), b.Sample(tr)
		if da != db {
			t.Fatalf("seeded samplers diverged at trace %d: %v vs %v", i, da, db)
		}
		if da {
			kept++
		}
	}
	if kept < 200 || kept > 400 {
		t.Errorf("rate 0.3 kept %d/1000, outside [200, 400]", kept)
	}
	zero := NewTailSampler(-1, 100*time.Millisecond, 1) // clamps to 0
	if zero.Sample(mk(50, 200)) {
		t.Error("rate 0 sampled an unremarkable trace")
	}
	if !zero.Sample(mk(150, 200)) {
		t.Error("slow trace not exported at rate 0")
	}
	if !zero.Sample(mk(1, 503)) {
		t.Error("5xx trace not exported at rate 0")
	}
	all := NewTailSampler(7, 0, 1) // clamps to 1
	if !all.Sample(mk(0, 200)) {
		t.Error("rate 1 dropped a trace")
	}
	var nilSampler *TailSampler
	if !nilSampler.Sample(mk(0, 200)) {
		t.Error("nil sampler must export everything")
	}
}

// TestEncodeTracesShape decodes the OTLP/JSON payload and checks the parts
// a collector depends on: resource/scope envelopes, ID propagation, span
// kinds, parent linkage, attribute mapping, and error status.
func TestEncodeTracesShape(t *testing.T) {
	tr := testTrace("req-1")
	tr.ParentSpanID = "00f067aa0ba902b7" // joined a remote trace
	body, n := EncodeTraces("chipletd", []*obs.TraceJSON{tr})
	if n != 3 {
		t.Fatalf("span count = %d, want 3 (root + 2 obs spans)", n)
	}
	var payload struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []struct {
					Key   string `json:"key"`
					Value struct {
						String *string `json:"stringValue"`
					} `json:"value"`
				} `json:"attributes"`
			} `json:"resource"`
			ScopeSpans []struct {
				Scope struct {
					Name string `json:"name"`
				} `json:"scope"`
				Spans []struct {
					TraceID  string `json:"traceId"`
					SpanID   string `json:"spanId"`
					ParentID string `json:"parentSpanId"`
					Name     string `json:"name"`
					Kind     int    `json:"kind"`
					Start    string `json:"startTimeUnixNano"`
					End      string `json:"endTimeUnixNano"`
					Status   *struct {
						Code int `json:"code"`
					} `json:"status"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("payload not valid JSON: %v", err)
	}
	if len(payload.ResourceSpans) != 1 || len(payload.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatalf("envelope shape wrong: %s", body)
	}
	res := payload.ResourceSpans[0]
	foundService := false
	for _, a := range res.Resource.Attributes {
		if a.Key == "service.name" && a.Value.String != nil && *a.Value.String == "chipletd" {
			foundService = true
		}
	}
	if !foundService {
		t.Error("resource missing service.name=chipletd")
	}
	spans := res.ScopeSpans[0].Spans
	if len(spans) != 3 {
		t.Fatalf("len(spans) = %d, want 3", len(spans))
	}
	root := spans[0]
	if root.Kind != 2 || root.Name != "thermal_solve" {
		t.Errorf("root span kind/name = %d/%q", root.Kind, root.Name)
	}
	if root.TraceID != tr.TraceID || root.SpanID != tr.SpanID || root.ParentID != tr.ParentSpanID {
		t.Errorf("root IDs not propagated: %+v", root)
	}
	if root.Status == nil || root.Status.Code != 1 {
		t.Errorf("root status = %+v, want OK (1) for HTTP 200", root.Status)
	}
	sim, cg := spans[1], spans[2]
	if sim.Kind != 1 || sim.ParentID != tr.SpanID {
		t.Errorf("engine.sim span not parented on root: %+v", sim)
	}
	if cg.ParentID != sim.SpanID {
		t.Errorf("thermal.cg span not parented on engine.sim: parent %q, sim id %q", cg.ParentID, sim.SpanID)
	}
	if sim.TraceID != tr.TraceID || cg.TraceID != tr.TraceID {
		t.Error("child spans carry a different trace ID")
	}
	if sim.SpanID == cg.SpanID || sim.SpanID == tr.SpanID {
		t.Error("derived span IDs collide")
	}

	// 5xx maps to status ERROR.
	errTr := testTrace("req-err")
	errTr.Attrs["status"] = 503
	body, _ = EncodeTraces("chipletd", []*obs.TraceJSON{errTr})
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatal(err)
	}
	if st := payload.ResourceSpans[0].ScopeSpans[0].Spans[0].Status; st == nil || st.Code != 2 {
		t.Errorf("503 root status = %+v, want ERROR (2)", st)
	}

	// Traces without propagation identity are skipped, not mis-encoded.
	if b, n := EncodeTraces("chipletd", []*obs.TraceJSON{{Route: "x"}}); b != nil || n != 0 {
		t.Errorf("identity-less trace encoded: %s", b)
	}
}

// TestEncodeMetricsShape checks the three family mappings.
func TestEncodeMetricsShape(t *testing.T) {
	ms := []Metric{
		{Name: "chipletd_requests_total", Type: TypeCounter, Points: []Point{
			{Attrs: [][2]string{{"endpoint", "thermal_solve"}, {"code", "200"}}, Value: 12},
		}},
		{Name: "chipletd_queue_depth", Type: TypeGauge, Points: []Point{{Value: 3}}},
		{Name: "chipletd_solve_latency_seconds", Type: TypeHistogram, Points: []Point{
			{Hist: &HistPoint{Bounds: []float64{0.1, 1}, Counts: []uint64{5, 2, 1}, Sum: 3.5, Count: 8}},
		}},
	}
	body := EncodeMetrics("chipletd", ms, time.Unix(1700000000, 0))
	var payload struct {
		ResourceMetrics []struct {
			ScopeMetrics []struct {
				Metrics []struct {
					Name string `json:"name"`
					Sum  *struct {
						Temporality int  `json:"aggregationTemporality"`
						IsMonotonic bool `json:"isMonotonic"`
						DataPoints  []struct {
							AsDouble float64 `json:"asDouble"`
						} `json:"dataPoints"`
					} `json:"sum"`
					Gauge *struct {
						DataPoints []struct {
							AsDouble float64 `json:"asDouble"`
						} `json:"dataPoints"`
					} `json:"gauge"`
					Histogram *struct {
						DataPoints []struct {
							Count        string    `json:"count"`
							Sum          float64   `json:"sum"`
							BucketCounts []string  `json:"bucketCounts"`
							Bounds       []float64 `json:"explicitBounds"`
						} `json:"dataPoints"`
					} `json:"histogram"`
				} `json:"metrics"`
			} `json:"scopeMetrics"`
		} `json:"resourceMetrics"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("metrics payload not valid JSON: %v", err)
	}
	metrics := payload.ResourceMetrics[0].ScopeMetrics[0].Metrics
	if len(metrics) != 3 {
		t.Fatalf("len(metrics) = %d, want 3", len(metrics))
	}
	if s := metrics[0].Sum; s == nil || !s.IsMonotonic || s.Temporality != 2 || s.DataPoints[0].AsDouble != 12 {
		t.Errorf("counter mapping wrong: %+v", metrics[0])
	}
	if g := metrics[1].Gauge; g == nil || g.DataPoints[0].AsDouble != 3 {
		t.Errorf("gauge mapping wrong: %+v", metrics[1])
	}
	h := metrics[2].Histogram
	if h == nil || len(h.DataPoints) != 1 {
		t.Fatalf("histogram mapping wrong: %+v", metrics[2])
	}
	dp := h.DataPoints[0]
	if dp.Count != "8" || dp.Sum != 3.5 || len(dp.BucketCounts) != 3 || len(dp.Bounds) != 2 {
		t.Errorf("histogram point wrong: %+v", dp)
	}
}

// TestDisabledExporterZeroAlloc pins the acceptance bound: with export
// disabled (nil exporter — the Endpoint=="" wiring), the per-request
// telemetry calls must not allocate at all.
func TestDisabledExporterZeroAlloc(t *testing.T) {
	var e *Exporter
	tr := testTrace("req")
	if allocs := testing.AllocsPerRun(100, func() {
		e.Enqueue(tr)
		_ = e.Stats()
	}); allocs != 0 {
		t.Errorf("disabled exporter allocates %v objects per request", allocs)
	}
	if err := e.Flush(context.Background()); err != nil {
		t.Errorf("nil Flush: %v", err)
	}
	if err := e.Shutdown(context.Background()); err != nil {
		t.Errorf("nil Shutdown: %v", err)
	}
}

// TestExportErrorsCounted: a rejecting collector increments Errors, the
// exporter keeps running, and nothing is retried into a tight loop.
func TestExportErrorsCounted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusInternalServerError)
	}))
	defer srv.Close()
	e := New(Options{Endpoint: srv.URL, HTTPClient: srv.Client()})
	e.Enqueue(testTrace("req"))
	if err := e.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Errors == 0 {
		t.Error("rejected POST not counted in Errors")
	}
	if st.Exported != 0 {
		t.Errorf("Exported = %d after a rejected POST", st.Exported)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = e.Shutdown(ctx)
}
