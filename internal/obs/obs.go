// Package obs is chipletd's dependency-free, request-scoped observability
// layer: a lightweight span tracer carried via context.Context, a flight
// recorder holding the last N completed request traces, and context plumbing
// for request IDs and request-scoped structured loggers.
//
// Everything is nil-safe by design: code deep in the solve path (thermal CG
// iterations, the leakage fixed point, the greedy search) calls Start
// unconditionally; when the context carries no trace — library callers, the
// one-shot CLIs, benchmarks of the untraced path — Start returns a nil
// *Span whose methods are no-ops, so instrumentation costs one context
// lookup and nothing else.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
)

type ctxKey int

const (
	traceKey ctxKey = iota
	spanKey
	requestIDKey
	loggerKey
)

// NewRequestID returns a fresh 16-hex-character request identifier.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a fixed fallback
		// keeps the daemon serving rather than panicking.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID stores a request identifier in the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the context's request identifier, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// WithLogger stores a request-scoped structured logger in the context.
func WithLogger(ctx context.Context, lg *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey, lg)
}

// Logger returns the context's request-scoped logger, falling back to
// slog.Default so components (pool, cache) can log unconditionally.
func Logger(ctx context.Context) *slog.Logger {
	if lg, ok := ctx.Value(loggerKey).(*slog.Logger); ok && lg != nil {
		return lg
	}
	return slog.Default()
}

// WithTrace stores a trace in the context; spans started from the returned
// context attach to it.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey, tr)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey).(*Trace)
	return tr
}

// spanFrom returns the context's current span, or nil.
func spanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey).(*Span)
	return sp
}

// Reattach copies the observability values (trace, current span, request
// ID, logger) from src into base. chipletd's cache deliberately runs
// computations on a context detached from the first caller's request (the
// computation's lifetime is refcounted across all waiters); Reattach lets
// the leader's closure restore tracing across that boundary.
func Reattach(base, src context.Context) context.Context {
	if tr := TraceFrom(src); tr != nil {
		base = WithTrace(base, tr)
	}
	if sp := spanFrom(src); sp != nil {
		base = context.WithValue(base, spanKey, sp)
	}
	if id := RequestID(src); id != "" {
		base = WithRequestID(base, id)
	}
	if lg, ok := src.Value(loggerKey).(*slog.Logger); ok && lg != nil {
		base = WithLogger(base, lg)
	}
	return base
}
