package obs

import (
	"sync"
	"time"
)

// Recorder is the flight recorder: a fixed-size ring of the most recent
// completed request traces, plus a second ring that retains only the
// requests slower than a threshold so an occasional pathological solve is
// still inspectable after the recent ring has cycled past it.
type Recorder struct {
	mu            sync.Mutex
	recent        ring
	slow          ring
	slowThreshold time.Duration
}

// NewRecorder returns a recorder keeping the last n traces (and the last n
// slow ones). n < 1 is treated as 1.
func NewRecorder(n int, slowThreshold time.Duration) *Recorder {
	if n < 1 {
		n = 1
	}
	return &Recorder{
		recent:        ring{buf: make([]*TraceJSON, n)},
		slow:          ring{buf: make([]*TraceJSON, n)},
		slowThreshold: slowThreshold,
	}
}

// SlowThreshold returns the slow-trace retention threshold.
func (r *Recorder) SlowThreshold() time.Duration { return r.slowThreshold }

// Record adds a completed trace.
func (r *Recorder) Record(t *TraceJSON) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recent.push(t)
	if r.slowThreshold > 0 && t.DurationMS >= float64(r.slowThreshold)/float64(time.Millisecond) {
		r.slow.push(t)
	}
}

// Recent returns the retained traces, newest first.
func (r *Recorder) Recent() []*TraceJSON {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recent.newestFirst()
}

// Slow returns the retained slow traces, newest first.
func (r *Recorder) Slow() []*TraceJSON {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.slow.newestFirst()
}

// ring is a fixed-capacity overwrite-oldest buffer.
type ring struct {
	buf  []*TraceJSON
	next int // index the next push writes to
	full bool
}

func (g *ring) push(t *TraceJSON) {
	g.buf[g.next] = t
	g.next++
	if g.next == len(g.buf) {
		g.next = 0
		g.full = true
	}
}

func (g *ring) newestFirst() []*TraceJSON {
	n := g.next
	if g.full {
		n = len(g.buf)
	}
	out := make([]*TraceJSON, 0, n)
	for i := 0; i < n; i++ {
		idx := g.next - 1 - i
		if idx < 0 {
			idx += len(g.buf)
		}
		out = append(out, g.buf[idx])
	}
	return out
}
