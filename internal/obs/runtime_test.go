package obs

import (
	"context"
	"io"
	"log/slog"
	"math"
	"runtime/metrics"
	"testing"
	"time"
)

func TestRuntimeCollectorStats(t *testing.T) {
	c := NewRuntimeCollector(0) // default ttl
	s := c.Stats()
	if s.Goroutines < 1 {
		t.Errorf("Goroutines = %v, want >= 1", s.Goroutines)
	}
	if s.HeapBytes <= 0 {
		t.Errorf("HeapBytes = %v, want > 0", s.HeapBytes)
	}
	if got := len(s.GCPause.Counts); got != len(s.GCPause.Bounds)+1 {
		t.Errorf("GCPause has %d counts for %d bounds", got, len(s.GCPause.Bounds))
	}
	// A second call inside the ttl must serve the cached snapshot.
	if s2 := c.Stats(); s2.Goroutines != s.Goroutines || s2.GCCycles != s.GCCycles {
		t.Error("second Stats call within ttl returned a fresh read")
	}
}

func TestRuntimeCollectorUnknownMetrics(t *testing.T) {
	// A collector whose resolved index is empty (as if every runtime metric
	// were renamed) must degrade to zeros, not panic.
	c := NewRuntimeCollector(time.Nanosecond)
	c.idx = map[string]int{}
	s := c.Stats()
	if s.Goroutines != 0 || s.GCPause.Count != 0 {
		t.Errorf("unknown metrics should read as zero, got %+v", s)
	}
}

func TestRebucket(t *testing.T) {
	if got := rebucket(nil); got.Count != 0 {
		t.Errorf("rebucket(nil).Count = %d", got.Count)
	}
	h := &metrics.Float64Histogram{
		Counts:  []uint64{3, 0, 2, 1},
		Buckets: []float64{math.Inf(-1), 1e-6, 1e-5, 2e-4, math.Inf(+1)},
	}
	out := rebucket(h)
	if out.Count != 6 {
		t.Fatalf("Count = %d, want 6", out.Count)
	}
	// [−Inf,1e-6) lands at the 1e-6 bound (slot 0); [1e-5,2e-4) has upper
	// edge 2e-4 → first bound >= it is 2.5e-4 (slot 7); [2e-4,+Inf) is
	// overflow.
	if out.Counts[0] != 3 || out.Counts[7] != 2 || out.Counts[len(out.Counts)-1] != 1 {
		t.Errorf("counts misbucketed: %v", out.Counts)
	}
	// Infinite-edged buckets contribute their finite edge to Sum, not NaN.
	if math.IsNaN(out.Sum) || math.IsInf(out.Sum, 0) || out.Sum <= 0 {
		t.Errorf("Sum = %v", out.Sum)
	}
}

func TestContextLogger(t *testing.T) {
	if Logger(context.Background()) != slog.Default() {
		t.Error("Logger without a context value should fall back to slog.Default")
	}
	lg := slog.New(slog.NewTextHandler(io.Discard, nil))
	ctx := WithLogger(context.Background(), lg)
	if Logger(ctx) != lg {
		t.Error("Logger did not return the context-scoped logger")
	}
}
