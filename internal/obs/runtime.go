package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// Runtime health collection via the runtime/metrics package: goroutine
// count, heap size, GC activity, and the two latency distributions that
// matter for a compute daemon — GC pause time (stop-the-world stalls inside
// a CG solve) and scheduler latency (queue delay before a worker goroutine
// runs). The runtime's native histograms use dynamic bucket layouts, so the
// collector rebuckets them into fixed bounds the exposition layer can
// render stably.

// RuntimeHist is one rebucketed runtime distribution: per-bound counts with
// the overflow count last. Sum is midpoint-approximated (the runtime does
// not expose exact sums for its histograms).
type RuntimeHist struct {
	Bounds []float64
	Counts []uint64 // len(Bounds)+1
	Sum    float64
	Count  uint64
}

// RuntimeStats is one snapshot of Go runtime health.
type RuntimeStats struct {
	Goroutines   float64
	HeapBytes    float64
	HeapObjects  float64
	GCCycles     float64
	GCPause      RuntimeHist
	SchedLatency RuntimeHist
}

// runtimeHistBounds are the fixed upper bounds (seconds) both latency
// histograms rebucket into: 1µs .. 100ms decades with a 2.5/5 split.
var runtimeHistBounds = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1,
}

// Names read from runtime/metrics; resolved against All() at construction
// so a renamed metric degrades to zero rather than panicking on Read.
const (
	nameGoroutines  = "/sched/goroutines:goroutines"
	nameHeapBytes   = "/memory/classes/heap/objects:bytes"
	nameHeapObjects = "/gc/heap/objects:objects"
	nameGCCycles    = "/gc/cycles/total:gc-cycles"
	nameGCPause     = "/gc/pauses:seconds"
	nameSchedLat    = "/sched/latencies:seconds"
)

// RuntimeCollector reads runtime/metrics with a short cache so concurrent
// scrapes (Prometheus + the OTLP metrics ticker) cost one runtime read per
// interval, not one per caller.
type RuntimeCollector struct {
	samples []metrics.Sample
	idx     map[string]int // name → samples index, only names the runtime knows

	mu    sync.Mutex
	last  time.Time
	stats RuntimeStats
	ttl   time.Duration
}

// NewRuntimeCollector builds a collector caching reads for ttl (default
// 1s when ttl <= 0).
func NewRuntimeCollector(ttl time.Duration) *RuntimeCollector {
	if ttl <= 0 {
		ttl = time.Second
	}
	known := make(map[string]bool)
	for _, d := range metrics.All() {
		known[d.Name] = true
	}
	c := &RuntimeCollector{idx: make(map[string]int), ttl: ttl}
	for _, name := range []string{
		nameGoroutines, nameHeapBytes, nameHeapObjects,
		nameGCCycles, nameGCPause, nameSchedLat,
	} {
		if known[name] {
			c.idx[name] = len(c.samples)
			c.samples = append(c.samples, metrics.Sample{Name: name})
		}
	}
	return c
}

// Stats returns the current runtime snapshot, reading the runtime at most
// once per ttl.
func (c *RuntimeCollector) Stats() RuntimeStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	if now.Sub(c.last) < c.ttl && !c.last.IsZero() {
		return c.stats
	}
	metrics.Read(c.samples)
	c.stats = RuntimeStats{
		Goroutines:   c.scalar(nameGoroutines),
		HeapBytes:    c.scalar(nameHeapBytes),
		HeapObjects:  c.scalar(nameHeapObjects),
		GCCycles:     c.scalar(nameGCCycles),
		GCPause:      c.hist(nameGCPause),
		SchedLatency: c.hist(nameSchedLat),
	}
	c.last = now
	return c.stats
}

func (c *RuntimeCollector) scalar(name string) float64 {
	i, ok := c.idx[name]
	if !ok {
		return 0
	}
	switch v := c.samples[i].Value; v.Kind() {
	case metrics.KindUint64:
		return float64(v.Uint64())
	case metrics.KindFloat64:
		return v.Float64()
	}
	return 0
}

func (c *RuntimeCollector) hist(name string) RuntimeHist {
	out := RuntimeHist{Bounds: runtimeHistBounds, Counts: make([]uint64, len(runtimeHistBounds)+1)}
	i, ok := c.idx[name]
	if !ok {
		return out
	}
	v := c.samples[i].Value
	if v.Kind() != metrics.KindFloat64Histogram {
		return out
	}
	return rebucket(v.Float64Histogram())
}

// rebucket folds a runtime Float64Histogram (counts[i] covers
// [buckets[i], buckets[i+1])) into the fixed bounds. Each source bucket is
// assigned by its upper edge — conservative: a stall never lands in a
// smaller fixed bucket than it belongs to.
func rebucket(h *metrics.Float64Histogram) RuntimeHist {
	out := RuntimeHist{Bounds: runtimeHistBounds, Counts: make([]uint64, len(runtimeHistBounds)+1)}
	if h == nil {
		return out
	}
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		slot := len(runtimeHistBounds) // overflow by default
		for j, b := range runtimeHistBounds {
			if hi <= b {
				slot = j
				break
			}
		}
		out.Counts[slot] += n
		out.Count += n
		mid := (lo + hi) / 2
		if math.IsInf(hi, +1) {
			mid = lo
		}
		if math.IsInf(lo, -1) {
			mid = hi
		}
		if !math.IsInf(mid, 0) && !math.IsNaN(mid) {
			out.Sum += mid * float64(n)
		}
	}
	return out
}
