package obs

import (
	"crypto/rand"
	"encoding/hex"
	"strings"
)

// W3C Trace Context (https://www.w3.org/TR/trace-context/) propagation:
// chipletd joins an incoming distributed trace by parsing the request's
// traceparent header, and stamps its own identity on the response so the
// caller (a future shard router, a load generator, an upstream gateway) can
// line up its spans with the daemon's exported ones. Everything here is
// dependency-free string handling; the OTLP wire format lives in
// internal/obs/export.

// NewTraceID returns a fresh random 16-byte trace ID as 32 lowercase hex
// characters, never all-zero (the invalid value in the spec).
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a fixed non-zero
		// fallback keeps the daemon serving rather than panicking.
		return "00000000000000000000000000000001"
	}
	return hex.EncodeToString(b[:])
}

// NewSpanID returns a fresh random 8-byte span ID as 16 lowercase hex
// characters, never all-zero.
func NewSpanID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000001"
	}
	return hex.EncodeToString(b[:])
}

// isLowerHex reports whether s is exactly n lowercase hex characters.
func isLowerHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < n; i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// allZero reports whether s consists only of '0' characters.
func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// ParseTraceparent parses a W3C traceparent header value into its trace ID,
// parent span ID, and sampled flag. ok is false for malformed values —
// wrong field count or width, uppercase hex, the forbidden version 0xff, or
// all-zero IDs — in which case the caller should start a fresh trace rather
// than propagate garbage. Versions other than 00 are accepted per the
// spec's forward-compatibility rule (parse the known prefix, ignore extra
// fields).
func ParseTraceparent(h string) (traceID, parentID string, sampled bool, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 {
		return "", "", false, false
	}
	ver, tid, pid, flags := parts[0], parts[1], parts[2], parts[3]
	if !isLowerHex(ver, 2) || ver == "ff" {
		return "", "", false, false
	}
	if ver == "00" && len(parts) != 4 {
		return "", "", false, false
	}
	if !isLowerHex(tid, 32) || allZero(tid) {
		return "", "", false, false
	}
	if !isLowerHex(pid, 16) || allZero(pid) {
		return "", "", false, false
	}
	if !isLowerHex(flags, 2) {
		return "", "", false, false
	}
	fb, _ := hex.DecodeString(flags)
	return tid, pid, fb[0]&0x01 != 0, true
}

// FormatTraceparent renders a version-00 traceparent header value.
func FormatTraceparent(traceID, spanID string, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + traceID + "-" + spanID + "-" + flags
}
