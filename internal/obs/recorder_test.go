package obs

import (
	"fmt"
	"testing"
	"time"
)

func mkTrace(id string, durMS float64) *TraceJSON {
	return &TraceJSON{RequestID: id, Route: "thermal_solve", DurationMS: durMS}
}

// TestRecorderEvictionOrder fills the ring past capacity and asserts the
// oldest entries are evicted and the snapshot is newest-first.
func TestRecorderEvictionOrder(t *testing.T) {
	r := NewRecorder(3, 0)
	for i := 0; i < 5; i++ {
		r.Record(mkTrace(fmt.Sprintf("req-%d", i), 1))
	}
	got := r.Recent()
	if len(got) != 3 {
		t.Fatalf("recent len = %d, want 3", len(got))
	}
	for i, want := range []string{"req-4", "req-3", "req-2"} {
		if got[i].RequestID != want {
			t.Errorf("recent[%d] = %s, want %s (newest first, oldest evicted)", i, got[i].RequestID, want)
		}
	}
}

func TestRecorderPartialFill(t *testing.T) {
	r := NewRecorder(4, 0)
	r.Record(mkTrace("a", 1))
	r.Record(mkTrace("b", 1))
	got := r.Recent()
	if len(got) != 2 || got[0].RequestID != "b" || got[1].RequestID != "a" {
		t.Fatalf("partial ring = %v", got)
	}
	if n := len(r.Slow()); n != 0 {
		t.Errorf("slow ring has %d entries with threshold 0 (disabled)", n)
	}
}

// TestRecorderSlowRetention: slow traces survive the recent ring cycling.
func TestRecorderSlowRetention(t *testing.T) {
	r := NewRecorder(2, 100*time.Millisecond)
	r.Record(mkTrace("slow-1", 250))
	for i := 0; i < 10; i++ {
		r.Record(mkTrace(fmt.Sprintf("fast-%d", i), 1))
	}
	recent := r.Recent()
	for _, tr := range recent {
		if tr.RequestID == "slow-1" {
			t.Error("slow-1 should have cycled out of the recent ring")
		}
	}
	slow := r.Slow()
	if len(slow) != 1 || slow[0].RequestID != "slow-1" {
		t.Fatalf("slow ring = %v, want [slow-1]", slow)
	}
}

func TestRecorderMinCapacity(t *testing.T) {
	r := NewRecorder(0, 0)
	r.Record(mkTrace("a", 1))
	r.Record(mkTrace("b", 1))
	got := r.Recent()
	if len(got) != 1 || got[0].RequestID != "b" {
		t.Fatalf("capacity-clamped ring = %v, want [b]", got)
	}
}
