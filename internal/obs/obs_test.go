package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestUntracedNoop: instrumented code on a bare context must see nil spans
// and pay no further cost; nil receivers must not panic.
func TestUntracedNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "anything")
	if sp != nil {
		t.Fatal("Start on an untraced context returned a non-nil span")
	}
	if ctx2 != ctx {
		t.Error("Start on an untraced context should return ctx unchanged")
	}
	sp.SetAttr("k", 1) // must not panic
	sp.End()
	AddSpan(ctx, "retro", time.Now(), time.Millisecond)
	if TraceFrom(ctx) != nil || RequestID(ctx) != "" {
		t.Error("bare context unexpectedly carries observability values")
	}
	if Logger(ctx) == nil {
		t.Error("Logger must fall back to slog.Default")
	}
}

func TestSpanTreeAssembly(t *testing.T) {
	tr := NewTrace("req-1", "thermal_solve")
	ctx := WithTrace(context.Background(), tr)

	ctx1, root := Start(ctx, "solve")
	ctx2, child := Start(ctx1, "thermal.cg")
	child.SetAttr("iterations", 42)
	child.End()
	_, child2 := Start(ctx1, "power.leakage_loop")
	child2.End()
	_, grand := Start(ctx2, "never-tree") // parented under ended child: still valid
	_ = grand
	root.End()
	tr.SetAttr("cache", "miss")
	tr.Finish()

	js := tr.Snapshot()
	if js.RequestID != "req-1" || js.Route != "thermal_solve" {
		t.Fatalf("trace identity = %q/%q", js.RequestID, js.Route)
	}
	if js.Attrs["cache"] != "miss" {
		t.Errorf("trace attrs = %v", js.Attrs)
	}
	if len(js.Spans) != 1 || js.Spans[0].Name != "solve" {
		t.Fatalf("roots = %+v, want single 'solve'", js.Spans)
	}
	kids := js.Spans[0].Children
	if len(kids) != 2 || kids[0].Name != "thermal.cg" || kids[1].Name != "power.leakage_loop" {
		t.Fatalf("children = %+v", kids)
	}
	if got := kids[0].Attrs["iterations"]; got != 42 {
		t.Errorf("iterations attr = %v, want 42", got)
	}
	if len(kids[0].Children) != 1 {
		t.Errorf("grandchild missing under thermal.cg: %+v", kids[0])
	}
	if js.InProgress {
		t.Error("finished trace marked in progress")
	}
}

// TestConcurrentChildSpans hammers one trace from many goroutines (the
// exhaustive-scan worker shape); run under -race. The tree must contain
// every span exactly once with correct parents.
func TestConcurrentChildSpans(t *testing.T) {
	tr := NewTrace("req-c", "org_search")
	ctx := WithTrace(context.Background(), tr)
	ctx, root := Start(ctx, "search")

	const workers, perWorker = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				wctx, sp := Start(ctx, fmt.Sprintf("sim-%d", w))
				sp.SetAttr("i", i)
				_, inner := Start(wctx, "thermal.cg")
				inner.SetAttr("iterations", i)
				inner.End()
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	tr.Finish()

	js := tr.Snapshot()
	if len(js.Spans) != 1 {
		t.Fatalf("roots = %d, want 1", len(js.Spans))
	}
	sims := js.Spans[0].Children
	if len(sims) != workers*perWorker {
		t.Fatalf("sim spans = %d, want %d", len(sims), workers*perWorker)
	}
	for _, sim := range sims {
		if len(sim.Children) != 1 || sim.Children[0].Name != "thermal.cg" {
			t.Fatalf("sim %q children = %+v, want one thermal.cg", sim.Name, sim.Children)
		}
		if sim.InProgress {
			t.Errorf("sim %q still in progress", sim.Name)
		}
	}
}

// TestSpanCap: a runaway search must saturate at the cap, not grow the
// trace unboundedly; drops are counted.
func TestSpanCap(t *testing.T) {
	tr := NewTrace("req-cap", "org_search")
	ctx := WithTrace(context.Background(), tr)
	for i := 0; i < maxSpansPerTrace+100; i++ {
		_, sp := Start(ctx, "s")
		sp.End()
	}
	AddSpan(ctx, "late", time.Now(), time.Millisecond)
	js := tr.Snapshot()
	if len(js.Spans) != maxSpansPerTrace {
		t.Errorf("spans = %d, want cap %d", len(js.Spans), maxSpansPerTrace)
	}
	if js.SpansDropped != 101 {
		t.Errorf("dropped = %d, want 101", js.SpansDropped)
	}
}

// TestSnapshotWhileRunning: the ?trace=1 path snapshots before Finish.
func TestSnapshotWhileRunning(t *testing.T) {
	tr := NewTrace("req-r", "thermal_solve")
	ctx := WithTrace(context.Background(), tr)
	_, sp := Start(ctx, "open")
	js := tr.Snapshot()
	if !js.InProgress {
		t.Error("unfinished trace not marked in progress")
	}
	if len(js.Spans) != 1 || !js.Spans[0].InProgress {
		t.Errorf("open span not marked in progress: %+v", js.Spans)
	}
	if js.Spans[0].DurationMS < 0 {
		t.Errorf("negative duration %g", js.Spans[0].DurationMS)
	}
	sp.End()
}

func TestAddSpanRetroactive(t *testing.T) {
	tr := NewTrace("req-q", "thermal_solve")
	ctx := WithTrace(context.Background(), tr)
	ctx, root := Start(ctx, "solve")
	start := time.Now().Add(-50 * time.Millisecond)
	AddSpan(ctx, "pool.queue_wait", start, 50*time.Millisecond, Attr{"queue_depth", 3})
	root.End()
	js := tr.Snapshot()
	kids := js.Spans[0].Children
	if len(kids) != 1 || kids[0].Name != "pool.queue_wait" {
		t.Fatalf("children = %+v", kids)
	}
	if d := kids[0].DurationMS; d < 49 || d > 51 {
		t.Errorf("retroactive duration = %g ms, want ~50", d)
	}
	if kids[0].Attrs["queue_depth"] != 3 {
		t.Errorf("attrs = %v", kids[0].Attrs)
	}
	if kids[0].InProgress {
		t.Error("retroactive span marked in progress")
	}
}

func TestWalk(t *testing.T) {
	tr := NewTrace("w", "r")
	ctx := WithTrace(context.Background(), tr)
	ctx, a := Start(ctx, "a")
	_, b := Start(ctx, "b")
	b.End()
	a.End()
	var names []string
	tr.Snapshot().Walk(func(sp *SpanJSON) { names = append(names, sp.Name) })
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("walk order = %v", names)
	}
}

func TestReattach(t *testing.T) {
	tr := NewTrace("req-x", "r")
	src := WithTrace(context.Background(), tr)
	src = WithRequestID(src, "req-x")
	src, sp := Start(src, "outer")
	dst := Reattach(context.Background(), src)
	if TraceFrom(dst) != tr || RequestID(dst) != "req-x" {
		t.Fatal("Reattach lost trace or request id")
	}
	_, child := Start(dst, "inner")
	child.End()
	sp.End()
	js := tr.Snapshot()
	if len(js.Spans) != 1 || len(js.Spans[0].Children) != 1 {
		t.Fatalf("inner span not parented under outer: %+v", js.Spans)
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Errorf("request ids %q, %q: want 16 hex chars, distinct", a, b)
	}
}
