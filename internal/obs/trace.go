package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// maxSpansPerTrace bounds one request's span count so a huge organization
// search cannot balloon the flight recorder; spans beyond the cap are
// dropped and counted.
const maxSpansPerTrace = 2048

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed operation inside a trace. A nil *Span is a valid no-op
// receiver, which is what Start returns on an untraced context.
type Span struct {
	tr     *Trace
	id     int
	parent int // parent span id, -1 for roots
	name   string
	start  time.Time
	end    time.Time // zero while in progress
	attrs  []Attr
}

// SetAttr records an attribute on the span (no-op on nil).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, value})
	s.tr.mu.Unlock()
}

// End marks the span complete (no-op on nil; later Ends are ignored).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.tr.mu.Unlock()
}

// Trace collects the spans of one request. Spans may be started and ended
// concurrently from multiple goroutines (the exhaustive-scan workers do);
// all mutation is serialized on one mutex.
type Trace struct {
	ID    string // request ID
	Route string

	mu      sync.Mutex
	begin   time.Time
	finish  time.Time // zero while the request is in flight
	spans   []*Span
	attrs   []Attr
	dropped int

	// W3C trace-context identity. traceID/spanID identify this request's
	// root ("server") span in the distributed trace; remoteParent is the
	// caller's span ID when the request carried a valid traceparent header,
	// "" when this process started the trace. sampled mirrors the incoming
	// sampled flag (true for locally started traces — the tail sampler makes
	// the final export decision after the request completes).
	traceID      string
	spanID       string
	remoteParent string
	sampled      bool
}

// NewTrace starts a trace for one request with a fresh W3C trace identity.
func NewTrace(id, route string) *Trace {
	return &Trace{
		ID: id, Route: route, begin: time.Now(),
		traceID: NewTraceID(), spanID: NewSpanID(), sampled: true,
	}
}

// SetRemoteParent joins this trace to an incoming distributed trace: the
// request-level span keeps its own span ID but adopts the caller's trace ID
// and records the caller's span as its parent. Must be called before spans
// are exported (in practice: in the middleware, before the handler runs).
func (t *Trace) SetRemoteParent(traceID, parentSpanID string, sampled bool) {
	t.mu.Lock()
	t.traceID = traceID
	t.remoteParent = parentSpanID
	t.sampled = sampled
	t.mu.Unlock()
}

// Traceparent renders the outgoing traceparent header value for this
// request: the (possibly adopted) trace ID and this request's root span ID.
func (t *Trace) Traceparent() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return FormatTraceparent(t.traceID, t.spanID, t.sampled)
}

// SetAttr records a request-level attribute (cache outcome, status code).
func (t *Trace) SetAttr(key string, value any) {
	t.mu.Lock()
	t.attrs = append(t.attrs, Attr{key, value})
	t.mu.Unlock()
}

// Finish marks the request complete and returns its total duration.
func (t *Trace) Finish() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finish.IsZero() {
		t.finish = time.Now()
	}
	return t.finish.Sub(t.begin)
}

// newSpan allocates a span; nil when the trace is at its span cap.
func (t *Trace) newSpan(name string, parent int, start time.Time) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpansPerTrace {
		t.dropped++
		return nil
	}
	sp := &Span{tr: t, id: len(t.spans), parent: parent, name: name, start: start}
	t.spans = append(t.spans, sp)
	return sp
}

// Start begins a span named name under the context's current span (or at
// the trace root) and returns a context carrying the new span for child
// parenting. On an untraced context it returns ctx unchanged and a nil
// span; every Span method tolerates nil, so call sites need no guard.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	tr := TraceFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	parent := -1
	if ps := spanFrom(ctx); ps != nil {
		parent = ps.id
	}
	sp := tr.newSpan(name, parent, time.Now())
	if sp == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey, sp), sp
}

// AddSpan records an already-completed span (e.g. a queue wait measured
// retroactively once the task starts executing) under the context's current
// span. No-op on an untraced context.
func AddSpan(ctx context.Context, name string, start time.Time, d time.Duration, attrs ...Attr) {
	tr := TraceFrom(ctx)
	if tr == nil {
		return
	}
	parent := -1
	if ps := spanFrom(ctx); ps != nil {
		parent = ps.id
	}
	sp := tr.newSpan(name, parent, start)
	if sp == nil {
		return
	}
	tr.mu.Lock()
	sp.end = start.Add(d)
	sp.attrs = append(sp.attrs, attrs...)
	tr.mu.Unlock()
}

// SpanJSON is one node of the serialized span tree. Times are offsets from
// the trace start in milliseconds.
type SpanJSON struct {
	Name       string         `json:"name"`
	StartMS    float64        `json:"start_ms"`
	DurationMS float64        `json:"duration_ms"`
	InProgress bool           `json:"in_progress,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*SpanJSON    `json:"children,omitempty"`
}

// TraceJSON is the serialized form of one request trace: the flight
// recorder entry, the ?trace=1 response payload, and the exporter's input.
// TraceID/SpanID/ParentSpanID carry the W3C trace-context identity (hex;
// ParentSpanID only when the request joined a remote trace).
type TraceJSON struct {
	RequestID    string         `json:"request_id"`
	Route        string         `json:"route"`
	TraceID      string         `json:"trace_id,omitempty"`
	SpanID       string         `json:"span_id,omitempty"`
	ParentSpanID string         `json:"parent_span_id,omitempty"`
	Sampled      bool           `json:"sampled,omitempty"`
	Start        time.Time      `json:"start"`
	DurationMS   float64        `json:"duration_ms"`
	InProgress   bool           `json:"in_progress,omitempty"`
	SpansDropped int            `json:"spans_dropped,omitempty"`
	Attrs        map[string]any `json:"attrs,omitempty"`
	Spans        []*SpanJSON    `json:"spans"`
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// Snapshot assembles the span tree. It is safe to call while spans are
// still being produced (the ?trace=1 path snapshots before the root span's
// HTTP write completes); in-progress spans are marked and measured up to
// now.
func (t *Trace) Snapshot() *TraceJSON {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	end := t.finish
	if end.IsZero() {
		end = now
	}
	out := &TraceJSON{
		RequestID:    t.ID,
		Route:        t.Route,
		TraceID:      t.traceID,
		SpanID:       t.spanID,
		ParentSpanID: t.remoteParent,
		Sampled:      t.sampled,
		Start:        t.begin,
		DurationMS:   float64(end.Sub(t.begin)) / float64(time.Millisecond),
		InProgress:   t.finish.IsZero(),
		SpansDropped: t.dropped,
		Attrs:        attrMap(t.attrs),
	}
	nodes := make([]*SpanJSON, len(t.spans))
	for i, sp := range t.spans {
		e := sp.end
		js := &SpanJSON{
			Name:       sp.name,
			StartMS:    float64(sp.start.Sub(t.begin)) / float64(time.Millisecond),
			InProgress: e.IsZero(),
			Attrs:      attrMap(sp.attrs),
		}
		if e.IsZero() {
			e = now
		}
		js.DurationMS = float64(e.Sub(sp.start)) / float64(time.Millisecond)
		nodes[i] = js
	}
	for i, sp := range t.spans {
		if sp.parent >= 0 {
			nodes[sp.parent].Children = append(nodes[sp.parent].Children, nodes[i])
		} else {
			out.Spans = append(out.Spans, nodes[i])
		}
	}
	// Creation order already sorts siblings by id; sort by start time so
	// retroactive AddSpan entries (queue waits) land where they happened.
	var sortTree func(ns []*SpanJSON)
	sortTree = func(ns []*SpanJSON) {
		sort.SliceStable(ns, func(i, j int) bool { return ns[i].StartMS < ns[j].StartMS })
		for _, n := range ns {
			sortTree(n.Children)
		}
	}
	sortTree(out.Spans)
	return out
}

// Walk visits every span of a snapshot depth-first (parents before
// children); the serve layer uses it to feed per-stage duration histograms.
func (t *TraceJSON) Walk(fn func(sp *SpanJSON)) {
	var rec func(ns []*SpanJSON)
	rec = func(ns []*SpanJSON) {
		for _, n := range ns {
			fn(n)
			rec(n.Children)
		}
	}
	rec(t.Spans)
}
