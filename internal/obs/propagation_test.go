package obs

import (
	"strings"
	"testing"
)

func TestParseTraceparent(t *testing.T) {
	const (
		tid = "0af7651916cd43dd8448eb211c80319c"
		sid = "00f067aa0ba902b7"
	)
	valid := []struct {
		header  string
		sampled bool
	}{
		{"00-" + tid + "-" + sid + "-01", true},
		{"00-" + tid + "-" + sid + "-00", false},
		{"00-" + tid + "-" + sid + "-03", true},       // other flag bits set
		{"01-" + tid + "-" + sid + "-01-extra", true}, // future version, extra field
		{"cc-" + tid + "-" + sid + "-01", true},       // any non-ff version
	}
	for _, tc := range valid {
		gotT, gotS, sampled, ok := ParseTraceparent(tc.header)
		if !ok {
			t.Errorf("ParseTraceparent(%q) rejected a valid header", tc.header)
			continue
		}
		if gotT != tid || gotS != sid || sampled != tc.sampled {
			t.Errorf("ParseTraceparent(%q) = (%q, %q, %v)", tc.header, gotT, gotS, sampled)
		}
	}

	invalid := []string{
		"",
		"00",
		"00-" + tid + "-" + sid,               // missing flags
		"00-" + tid + "-" + sid + "-01-extra", // version 00 forbids extras
		"ff-" + tid + "-" + sid + "-01",       // version ff forbidden
		"00-" + strings.ToUpper(tid) + "-" + sid + "-01",    // uppercase hex
		"00-" + tid[:31] + "-" + sid + "-01",                // short trace id
		"00-" + tid + "-" + sid[:15] + "-01",                // short span id
		"00-" + strings.Repeat("0", 32) + "-" + sid + "-01", // all-zero trace id
		"00-" + tid + "-" + strings.Repeat("0", 16) + "-01", // all-zero span id
		"00-" + tid + "-" + sid + "-0x",                     // bad flags
		"0-" + tid + "-" + sid + "-01",                      // short version
	}
	for _, h := range invalid {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted an invalid header", h)
		}
	}
}

func TestFormatTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	h := FormatTraceparent(tid, sid, true)
	gotT, gotS, sampled, ok := ParseTraceparent(h)
	if !ok || gotT != tid || gotS != sid || !sampled {
		t.Fatalf("round trip failed: %q -> (%q, %q, %v, %v)", h, gotT, gotS, sampled, ok)
	}
	h = FormatTraceparent(tid, sid, false)
	if _, _, sampled, ok := ParseTraceparent(h); !ok || sampled {
		t.Fatalf("unsampled round trip failed: %q", h)
	}
}

func TestNewIDsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		tid, sid := NewTraceID(), NewSpanID()
		if len(tid) != 32 || len(sid) != 16 {
			t.Fatalf("id lengths = %d/%d", len(tid), len(sid))
		}
		if !isLowerHex(tid, 32) || !isLowerHex(sid, 16) {
			t.Fatalf("ids not lowercase hex: %q %q", tid, sid)
		}
		if allZero(tid) || allZero(sid) {
			t.Fatal("generated an all-zero id")
		}
		if seen[tid] {
			t.Fatalf("trace id collision: %q", tid)
		}
		seen[tid] = true
	}
}

// TestTraceRemoteParent: adopting a caller's trace context keeps the local
// span ID but joins the caller's trace, and the outgoing header carries the
// local span as the new parent.
func TestTraceRemoteParent(t *testing.T) {
	tr := NewTrace("req", "route")
	own := tr.Snapshot()
	if own.TraceID == "" || own.SpanID == "" || !own.Sampled {
		t.Fatalf("fresh trace missing identity: %+v", own)
	}
	if own.ParentSpanID != "" {
		t.Errorf("fresh trace has a parent: %q", own.ParentSpanID)
	}

	const (
		remoteT = "0af7651916cd43dd8448eb211c80319c"
		remoteS = "00f067aa0ba902b7"
	)
	tr.SetRemoteParent(remoteT, remoteS, true)
	snap := tr.Snapshot()
	if snap.TraceID != remoteT {
		t.Errorf("TraceID = %q, want adopted %q", snap.TraceID, remoteT)
	}
	if snap.ParentSpanID != remoteS {
		t.Errorf("ParentSpanID = %q, want %q", snap.ParentSpanID, remoteS)
	}
	if snap.SpanID != own.SpanID {
		t.Errorf("SpanID changed on adoption: %q -> %q", own.SpanID, snap.SpanID)
	}
	header := tr.Traceparent()
	gotT, gotS, _, ok := ParseTraceparent(header)
	if !ok || gotT != remoteT || gotS != snap.SpanID {
		t.Errorf("outgoing traceparent %q, want trace %s parented on %s", header, remoteT, snap.SpanID)
	}
}
