package hotspotio

import (
	"fmt"
	"io"
	"strings"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/geom"
)

// ExportBundle is the set of files describing one stack for HotSpot's grid
// model: the layer configuration file plus one floorplan file per layer.
type ExportBundle struct {
	// LCF is the layer configuration file content.
	LCF string
	// Floorplans maps file names (referenced from the LCF) to .flp content.
	Floorplans map[string]string
	// LayerOrder lists floorplan file names bottom-up.
	LayerOrder []string
}

// ExportStack converts a floorplan.Stack into HotSpot grid-model input
// files. Power-dissipating layers (the CMOS layer) get per-core blocks; the
// other layers get their material blocks with explicit filler so every
// layer tiles the footprint, as HotSpot requires.
func ExportStack(stack floorplan.Stack) (*ExportBundle, error) {
	if err := stack.Validate(); err != nil {
		return nil, err
	}
	bundle := &ExportBundle{Floorplans: make(map[string]string)}
	var lcf strings.Builder
	fmt.Fprintf(&lcf, "# HotSpot 6.0 layer configuration exported by chiplet25d\n")
	fmt.Fprintf(&lcf, "# footprint: %.3f x %.3f mm\n\n", stack.W, stack.H)
	for i, layer := range stack.Layers {
		var blocks []Block
		switch {
		case i == stack.ChipLayer && stack.Placement.CoreMapSupported():
			cb, err := CoreBlocks(stack.Placement)
			if err != nil {
				return nil, err
			}
			blocks = ToFilledLayer(cb, stack.W, stack.H, "fill_")
		case len(layer.Blocks) > 0:
			named := make([]Block, len(layer.Blocks))
			for j, b := range layer.Blocks {
				named[j] = Block{Name: fmt.Sprintf("%s_blk%d", layer.Name, j), Rect: b.Rect}
			}
			blocks = ToFilledLayer(named, stack.W, stack.H, layer.Name+"_fill_")
		default:
			blocks = []Block{{Name: layer.Name + "_full", Rect: geom.Rect{W: stack.W, H: stack.H}}}
		}
		var flp strings.Builder
		if err := WriteFLP(&flp, blocks); err != nil {
			return nil, err
		}
		fname := fmt.Sprintf("layer%d_%s.flp", i, layer.Name)
		bundle.Floorplans[fname] = flp.String()
		bundle.LayerOrder = append(bundle.LayerOrder, fname)

		// HotSpot LCF stanza: number, lateral heat flow, power dissipation,
		// specific heat, resistivity, thickness, floorplan file.
		dissipates := "N"
		if i == stack.ChipLayer {
			dissipates = "Y"
		}
		fmt.Fprintf(&lcf, "# layer %d: %s\n%d\nY\n%s\n%.6e\n%.6e\n%.6e\n%s\n\n",
			i, layer.Name, i, dissipates,
			layer.Background.VolHeatCap,
			1/layer.Background.VertK, // resistivity in (m·K)/W
			layer.ThicknessM,
			fname)
	}
	bundle.LCF = lcf.String()
	return bundle, nil
}

// WriteBundle writes the LCF to w and reports the floorplan files that must
// accompany it (the caller persists them; this keeps the package free of
// filesystem policy).
func (b *ExportBundle) WriteBundle(w io.Writer) error {
	if _, err := io.WriteString(w, b.LCF); err != nil {
		return err
	}
	return nil
}
