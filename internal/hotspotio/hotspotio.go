// Package hotspotio reads and writes the file formats of the HotSpot
// thermal simulator (the paper's thermal tool), so organizations built with
// this library can be cross-validated against real HotSpot runs and vice
// versa:
//
//   - .flp floorplan files: one block per line,
//     "<name> <width_m> <height_m> <left_x_m> <bottom_y_m>", '#' comments;
//   - .ptrace power traces: a header line of block names followed by rows
//     of per-block power samples in watts;
//   - .lcf layer configuration files for HotSpot's grid model: for each
//     layer, the layer number, lateral heat flow flag, power dissipation
//     flag, specific heat (J/(m³·K)), resistivity (m·K/W), thickness (m)
//     and floorplan file.
//
// Geometry converts between this library's millimeters and HotSpot's
// meters.
package hotspotio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/geom"
)

// Block is one named floorplan rectangle (HotSpot "unit").
type Block struct {
	Name string
	Rect geom.Rect // millimeters
}

// WriteFLP writes blocks in HotSpot .flp format (meters).
func WriteFLP(w io.Writer, blocks []Block) error {
	if _, err := fmt.Fprintln(w, "# Floorplan exported by chiplet25d (units: meters)"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "# <unit-name> <width> <height> <left-x> <bottom-y>"); err != nil {
		return err
	}
	for _, b := range blocks {
		if strings.ContainsAny(b.Name, " \t\n") || b.Name == "" {
			return fmt.Errorf("hotspotio: invalid block name %q", b.Name)
		}
		if b.Rect.Empty() {
			return fmt.Errorf("hotspotio: block %q has empty rectangle", b.Name)
		}
		if _, err := fmt.Fprintf(w, "%s\t%.6e\t%.6e\t%.6e\t%.6e\n",
			b.Name, b.Rect.W*1e-3, b.Rect.H*1e-3, b.Rect.X*1e-3, b.Rect.Y*1e-3); err != nil {
			return err
		}
	}
	return nil
}

// ReadFLP parses a HotSpot .flp file into blocks (converted to mm).
func ReadFLP(r io.Reader) ([]Block, error) {
	var out []Block
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 5 {
			return nil, fmt.Errorf("hotspotio: line %d: want 5 fields, got %d", lineNo, len(fields))
		}
		vals := make([]float64, 4)
		for i := 0; i < 4; i++ {
			v, err := strconv.ParseFloat(fields[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("hotspotio: line %d: %v", lineNo, err)
			}
			vals[i] = v * 1e3 // meters -> mm
		}
		out = append(out, Block{
			Name: fields[0],
			Rect: geom.Rect{W: vals[0], H: vals[1], X: vals[2], Y: vals[3]},
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("hotspotio: no blocks in floorplan")
	}
	return out, nil
}

// CoreBlocks converts a placement's 256 core tiles into named blocks
// ("core_<row>_<col>"), the granularity the paper feeds HotSpot.
func CoreBlocks(pl floorplan.Placement) ([]Block, error) {
	cores, err := pl.Cores()
	if err != nil {
		return nil, err
	}
	blocks := make([]Block, len(cores))
	for i, c := range cores {
		blocks[i] = Block{Name: fmt.Sprintf("core_%d_%d", c.Row, c.Col), Rect: c.Rect}
	}
	return blocks, nil
}

// ChipletLayerBlocks converts a 2.5D placement's chiplet layer into blocks:
// one silicon block per chiplet plus the epoxy fill is left implicit (real
// HotSpot floorplans fill gaps with explicit blocks; ToFilledLayer adds
// them).
func ChipletLayerBlocks(pl floorplan.Placement) []Block {
	blocks := make([]Block, len(pl.Chiplets))
	for i, c := range pl.Chiplets {
		blocks[i] = Block{Name: fmt.Sprintf("chiplet_%d", i), Rect: c}
	}
	return blocks
}

// ToFilledLayer pads a block list with filler blocks so the layer tiles the
// full w x h footprint, as HotSpot requires. The fill is computed by
// fracturing the free space into maximal horizontal strips per occupied
// row interval (simple scanline fracturing over the blocks' y edges).
func ToFilledLayer(blocks []Block, w, h float64, fillPrefix string) []Block {
	// Collect y edges.
	ys := []float64{0, h}
	for _, b := range blocks {
		ys = append(ys, b.Rect.Y, b.Rect.MaxY())
	}
	sort.Float64s(ys)
	ys = dedup(ys)
	out := append([]Block(nil), blocks...)
	fillCount := 0
	for i := 0; i+1 < len(ys); i++ {
		y0, y1 := ys[i], ys[i+1]
		if y1-y0 < geom.Eps {
			continue
		}
		// X intervals covered by blocks intersecting this strip.
		type span struct{ x0, x1 float64 }
		var spans []span
		for _, b := range blocks {
			if b.Rect.Y <= y0+geom.Eps && b.Rect.MaxY() >= y1-geom.Eps {
				spans = append(spans, span{b.Rect.X, b.Rect.MaxX()})
			}
		}
		sort.Slice(spans, func(a, b int) bool { return spans[a].x0 < spans[b].x0 })
		x := 0.0
		for _, s := range spans {
			if s.x0 > x+geom.Eps {
				out = append(out, Block{
					Name: fmt.Sprintf("%s%d", fillPrefix, fillCount),
					Rect: geom.Rect{X: x, Y: y0, W: s.x0 - x, H: y1 - y0},
				})
				fillCount++
			}
			if s.x1 > x {
				x = s.x1
			}
		}
		if x < w-geom.Eps {
			out = append(out, Block{
				Name: fmt.Sprintf("%s%d", fillPrefix, fillCount),
				Rect: geom.Rect{X: x, Y: y0, W: w - x, H: y1 - y0},
			})
			fillCount++
		}
	}
	return out
}

func dedup(v []float64) []float64 {
	out := v[:0]
	for i, x := range v {
		if i == 0 || x-out[len(out)-1] > geom.Eps {
			out = append(out, x)
		}
	}
	return out
}

// WritePTrace writes a HotSpot .ptrace file: a header of block names and
// one row per sample of per-block watts.
func WritePTrace(w io.Writer, names []string, rows [][]float64) error {
	if len(names) == 0 {
		return fmt.Errorf("hotspotio: no block names")
	}
	if _, err := fmt.Fprintln(w, strings.Join(names, "\t")); err != nil {
		return err
	}
	for i, row := range rows {
		if len(row) != len(names) {
			return fmt.Errorf("hotspotio: row %d has %d values, want %d", i, len(row), len(names))
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = strconv.FormatFloat(v, 'g', 6, 64)
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// ReadPTrace parses a .ptrace file.
func ReadPTrace(r io.Reader) (names []string, rows [][]float64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if names == nil {
			names = fields
			continue
		}
		if len(fields) != len(names) {
			return nil, nil, fmt.Errorf("hotspotio: line %d has %d values, want %d", lineNo, len(fields), len(names))
		}
		row := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("hotspotio: line %d: %v", lineNo, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if names == nil {
		return nil, nil, fmt.Errorf("hotspotio: empty power trace")
	}
	return names, rows, nil
}
