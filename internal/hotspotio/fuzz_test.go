package hotspotio

import (
	"strings"
	"testing"
)

// FuzzReadFLP exercises the floorplan parser with arbitrary input: it must
// never panic, and anything it accepts must survive a write/re-read round
// trip.
func FuzzReadFLP(f *testing.F) {
	f.Add("core\t1e-3\t1e-3\t0\t0\n")
	f.Add("# comment only\n")
	f.Add("a 1 2 3 4\nb 5 6 7 8\n")
	f.Add("bad line\n")
	f.Fuzz(func(t *testing.T, input string) {
		blocks, err := ReadFLP(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf strings.Builder
		if werr := WriteFLP(&buf, blocks); werr != nil {
			return // degenerate geometry is allowed to be unwritable
		}
		again, rerr := ReadFLP(strings.NewReader(buf.String()))
		if rerr != nil {
			t.Fatalf("round trip failed: %v", rerr)
		}
		if len(again) != len(blocks) {
			t.Fatalf("round trip changed block count: %d vs %d", len(again), len(blocks))
		}
	})
}

// FuzzReadPTrace exercises the power-trace parser the same way.
func FuzzReadPTrace(f *testing.F) {
	f.Add("a b\n1 2\n")
	f.Add("")
	f.Add("x\nnot-a-number\n")
	f.Fuzz(func(t *testing.T, input string) {
		names, rows, err := ReadPTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf strings.Builder
		if werr := WritePTrace(&buf, names, rows); werr != nil {
			t.Fatalf("accepted trace failed to write: %v", werr)
		}
	})
}
