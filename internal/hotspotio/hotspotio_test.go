package hotspotio

import (
	"math"
	"strings"
	"testing"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/geom"
)

func TestFLPRoundTrip(t *testing.T) {
	in := []Block{
		{Name: "core_0_0", Rect: geom.Rect{X: 0, Y: 0, W: 1.125, H: 1.125}},
		{Name: "l2", Rect: geom.Rect{X: 1.125, Y: 0, W: 0.5, H: 1.125}},
	}
	var buf strings.Builder
	if err := WriteFLP(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFLP(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost blocks: %d vs %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Name != in[i].Name {
			t.Errorf("block %d name %q != %q", i, out[i].Name, in[i].Name)
		}
		if math.Abs(out[i].Rect.W-in[i].Rect.W) > 1e-9 || math.Abs(out[i].Rect.X-in[i].Rect.X) > 1e-9 {
			t.Errorf("block %d geometry drifted: %v vs %v", i, out[i].Rect, in[i].Rect)
		}
	}
}

func TestWriteFLPRejectsBadBlocks(t *testing.T) {
	var buf strings.Builder
	if err := WriteFLP(&buf, []Block{{Name: "has space", Rect: geom.Rect{W: 1, H: 1}}}); err == nil {
		t.Errorf("expected error for name with space")
	}
	if err := WriteFLP(&buf, []Block{{Name: "empty", Rect: geom.Rect{}}}); err == nil {
		t.Errorf("expected error for empty rectangle")
	}
}

func TestReadFLPErrors(t *testing.T) {
	if _, err := ReadFLP(strings.NewReader("# only comments\n")); err == nil {
		t.Errorf("expected error for empty floorplan")
	}
	if _, err := ReadFLP(strings.NewReader("blk 1 2 3\n")); err == nil {
		t.Errorf("expected error for short line")
	}
	if _, err := ReadFLP(strings.NewReader("blk a b c d\n")); err == nil {
		t.Errorf("expected error for non-numeric fields")
	}
}

func TestCoreBlocks(t *testing.T) {
	blocks, err := CoreBlocks(floorplan.SingleChip())
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 256 {
		t.Fatalf("core blocks = %d", len(blocks))
	}
	seen := map[string]bool{}
	for _, b := range blocks {
		if seen[b.Name] {
			t.Fatalf("duplicate block name %s", b.Name)
		}
		seen[b.Name] = true
	}
}

func TestToFilledLayerTilesFootprint(t *testing.T) {
	pl, err := floorplan.PaperOrg(16, 1, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	blocks := ToFilledLayer(ChipletLayerBlocks(pl), pl.W, pl.H, "fill_")
	// Filled layer must cover exactly the footprint area with no overlap.
	area := 0.0
	rects := make([]geom.Rect, len(blocks))
	for i, b := range blocks {
		area += b.Rect.Area()
		rects[i] = b.Rect
	}
	if math.Abs(area-pl.W*pl.H) > 1e-6 {
		t.Fatalf("filled layer area %.6f != footprint %.6f", area, pl.W*pl.H)
	}
	if i, j, ov := geom.AnyOverlap(rects); ov {
		t.Fatalf("filled layer blocks %d and %d overlap: %v %v", i, j, rects[i], rects[j])
	}
}

func TestToFilledLayerSingleBlock(t *testing.T) {
	blocks := ToFilledLayer(
		[]Block{{Name: "b", Rect: geom.Rect{X: 2, Y: 2, W: 2, H: 2}}}, 10, 10, "f_")
	area := 0.0
	for _, b := range blocks {
		area += b.Rect.Area()
	}
	if math.Abs(area-100) > 1e-9 {
		t.Fatalf("area %.3f != 100", area)
	}
}

func TestPTraceRoundTrip(t *testing.T) {
	names := []string{"core_0_0", "core_0_1"}
	rows := [][]float64{{1.5, 0}, {1.75, 0.25}}
	var buf strings.Builder
	if err := WritePTrace(&buf, names, rows); err != nil {
		t.Fatal(err)
	}
	gotNames, gotRows, err := ReadPTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotNames) != 2 || gotNames[0] != "core_0_0" {
		t.Fatalf("names = %v", gotNames)
	}
	if len(gotRows) != 2 || gotRows[1][0] != 1.75 {
		t.Fatalf("rows = %v", gotRows)
	}
}

func TestPTraceErrors(t *testing.T) {
	var buf strings.Builder
	if err := WritePTrace(&buf, nil, nil); err == nil {
		t.Errorf("expected error for empty names")
	}
	if err := WritePTrace(&buf, []string{"a"}, [][]float64{{1, 2}}); err == nil {
		t.Errorf("expected error for ragged row")
	}
	if _, _, err := ReadPTrace(strings.NewReader("")); err == nil {
		t.Errorf("expected error for empty trace")
	}
	if _, _, err := ReadPTrace(strings.NewReader("a b\n1\n")); err == nil {
		t.Errorf("expected error for short row")
	}
	if _, _, err := ReadPTrace(strings.NewReader("a\nx\n")); err == nil {
		t.Errorf("expected error for non-numeric value")
	}
}

func TestExportStack25D(t *testing.T) {
	pl, err := floorplan.PaperOrg(16, 1, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := ExportStack(stack)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundle.LayerOrder) != len(stack.Layers) {
		t.Fatalf("exported %d layers, want %d", len(bundle.LayerOrder), len(stack.Layers))
	}
	// The chip layer floorplan must contain 256 core blocks and parse back.
	chipFLP := bundle.Floorplans[bundle.LayerOrder[stack.ChipLayer]]
	blocks, err := ReadFLP(strings.NewReader(chipFLP))
	if err != nil {
		t.Fatal(err)
	}
	coreCount := 0
	for _, b := range blocks {
		if strings.HasPrefix(b.Name, "core_") {
			coreCount++
		}
	}
	if coreCount != 256 {
		t.Fatalf("chip layer has %d core blocks, want 256", coreCount)
	}
	// LCF mentions every floorplan file and marks exactly one layer as
	// power dissipating.
	if got := strings.Count(bundle.LCF, ".flp"); got < len(stack.Layers) {
		t.Errorf("LCF references %d floorplan files, want >= %d", got, len(stack.Layers))
	}
	if got := strings.Count(bundle.LCF, "\nY\n%!"); got != 0 {
		t.Errorf("formatting artifact in LCF")
	}
	var out strings.Builder
	if err := bundle.WriteBundle(&out); err != nil {
		t.Fatal(err)
	}
	if out.String() != bundle.LCF {
		t.Errorf("WriteBundle mismatch")
	}
}

func TestExportStack2D(t *testing.T) {
	stack, err := floorplan.BuildStack(floorplan.SingleChip())
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := ExportStack(stack)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundle.LayerOrder) != 4 {
		t.Fatalf("2D stack exported %d layers", len(bundle.LayerOrder))
	}
	// Every exported floorplan must tile the footprint exactly.
	for name, content := range bundle.Floorplans {
		blocks, err := ReadFLP(strings.NewReader(content))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		area := 0.0
		for _, b := range blocks {
			area += b.Rect.Area()
		}
		if math.Abs(area-stack.W*stack.H) > 1e-3 {
			t.Errorf("%s area %.4f != footprint %.4f", name, area, stack.W*stack.H)
		}
	}
}
