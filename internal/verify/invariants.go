package verify

// Physics invariants as properties: facts that hold for every valid
// floorplan and power map, checked over randomized seeded cases so no
// hand-picked geometry can hide a bug. The generator draws paper
// organizations (4- and 16-chiplet, random spacings on the 0.5 mm grid)
// and block-structured power maps; everything derives from caseSeed so a
// failure reproduces exactly.

import (
	"math"
	"math/rand"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/thermal"
)

// caseSeed roots every randomized invariant case. Fixed, not time-derived:
// the suite is a regression gate, not a fuzzer — new coverage comes from
// raising caseCount under -long, and any failure reproduces byte-for-byte.
const caseSeed = 20260805

// invariantGridN keeps invariant solves quick; the properties hold at every
// resolution, so a coarse grid loses no generality.
const invariantGridN = 16

// invariantCases is the per-check random case count (doubled under -long).
const invariantCases = 3

func caseCount(ctx *Context) int {
	if ctx != nil && ctx.Long {
		return 2 * invariantCases
	}
	return invariantCases
}

// randPlacement draws a valid paper organization: n ∈ {4, 16} with random
// spacings on the placement grid, retried until the geometry validates
// (Eq. (9) sizing, Eq. (10) non-overlap, interposer limit).
func randPlacement(rng *rand.Rand) floorplan.Placement {
	for {
		var (
			pl  floorplan.Placement
			err error
		)
		if rng.Intn(2) == 0 {
			s3 := floorplan.SpacingStepMM * float64(1+rng.Intn(8))
			pl, err = floorplan.PaperOrg(4, 0, 0, s3)
		} else {
			s1 := floorplan.SpacingStepMM * float64(rng.Intn(5))
			s2 := floorplan.SpacingStepMM * float64(rng.Intn(5))
			s3 := floorplan.SpacingStepMM * float64(1+rng.Intn(6))
			pl, err = floorplan.PaperOrg(16, s1, s2, s3)
		}
		if err != nil {
			continue
		}
		if pl.Validate() == nil {
			return pl
		}
	}
}

// randModel assembles a verification-tolerance model for a random placement.
func randModel(rng *rand.Rand) (*thermal.Model, floorplan.Placement, error) {
	pl := randPlacement(rng)
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		return nil, pl, err
	}
	cfg := thermal.DefaultConfig()
	cfg.Nx, cfg.Ny = invariantGridN, invariantGridN
	cfg.Tolerance = VerifyCGTol
	cfg.MaxIterations = 200000
	m, err := thermal.NewModel(stack, cfg)
	return m, pl, err
}

// randPowerMap rasterizes random per-chiplet power (5–30 W each, a random
// subset active) onto the model grid and returns the map plus its total.
func randPowerMap(rng *rand.Rand, m *thermal.Model, pl floorplan.Placement) ([]float64, float64) {
	g := m.Grid()
	pmap := make([]float64, g.NumCells())
	total := 0.0
	for {
		for _, rect := range pl.Chiplets {
			if rng.Intn(3) == 0 {
				continue // this chiplet idles
			}
			w := 5 + 25*rng.Float64()
			g.RasterizeAdd(pmap, rect, w)
			total += w
		}
		if total > 0 {
			return pmap, total
		}
	}
}

// checkEnergyBalance: at steady state every injected watt must leave
// through the convection boundary; the residual imbalance is bounded by
// the CG tolerance.
func checkEnergyBalance(ctx *Context) error {
	rng := rand.New(rand.NewSource(caseSeed))
	worst := 0.0
	for i := 0; i < caseCount(ctx); i++ {
		m, pl, err := randModel(rng)
		if err != nil {
			return err
		}
		pmap, total := randPowerMap(rng, m, pl)
		res, err := m.Solve(pmap)
		if err != nil {
			return err
		}
		rel := math.Abs(res.HeatOutW()-total) / total
		if rel > worst {
			worst = rel
		}
		if rel > EnergyBalanceRelTol {
			return failf("energy balance: case %d (n=%d, %.1f W in, %.4f W out): relative imbalance %.2e > %g",
				i, pl.NumChiplets(), total, res.HeatOutW(), rel, EnergyBalanceRelTol)
		}
	}
	ctx.logf("energy balance: worst relative imbalance %.2e over %d cases (tol %g)", worst, caseCount(ctx), EnergyBalanceRelTol)
	return nil
}

// checkMaximumPrinciple: the conductance matrix is an M-matrix whose only
// sources sit on the chip layer, so every source-free node is a convex
// combination of its neighbors (and ambient): the global maximum must be
// attained on the chip layer and no node may fall below ambient.
func checkMaximumPrinciple(ctx *Context) error {
	rng := rand.New(rand.NewSource(caseSeed + 1))
	for i := 0; i < caseCount(ctx); i++ {
		m, pl, err := randModel(rng)
		if err != nil {
			return err
		}
		pmap, _ := randPowerMap(rng, m, pl)
		res, err := m.Solve(pmap)
		if err != nil {
			return err
		}
		chipMax := res.PeakC()
		globalMax, globalMin := math.Inf(-1), math.Inf(1)
		for _, t := range res.T {
			globalMax = math.Max(globalMax, t)
			globalMin = math.Min(globalMin, t)
		}
		if globalMax > chipMax+MaxPrincipleTolC {
			return failf("maximum principle: case %d: global max %.6f °C exceeds chip-layer max %.6f °C by more than %g",
				i, globalMax, chipMax, MaxPrincipleTolC)
		}
		if amb := m.Config().AmbientC; globalMin < amb-MaxPrincipleTolC {
			return failf("maximum principle: case %d: node at %.6f °C below ambient %.1f °C by more than %g",
				i, globalMin, amb, MaxPrincipleTolC)
		}
	}
	ctx.logf("maximum principle: held on %d cases (tol %g °C)", caseCount(ctx), MaxPrincipleTolC)
	return nil
}

// checkSuperposition: the steady-state solve is linear in the power map
// around the ambient solution (the zero-power field is exactly ambient
// everywhere), so T(P1) + T(P2) - ambient = T(P1+P2) node for node.
func checkSuperposition(ctx *Context) error {
	rng := rand.New(rand.NewSource(caseSeed + 2))
	worst := 0.0
	for i := 0; i < caseCount(ctx); i++ {
		m, pl, err := randModel(rng)
		if err != nil {
			return err
		}
		p1, _ := randPowerMap(rng, m, pl)
		p2, _ := randPowerMap(rng, m, pl)
		sum := make([]float64, len(p1))
		for j := range sum {
			sum[j] = p1[j] + p2[j]
		}
		r1, err := m.Solve(p1)
		if err != nil {
			return err
		}
		r2, err := m.Solve(p2)
		if err != nil {
			return err
		}
		r12, err := m.Solve(sum)
		if err != nil {
			return err
		}
		amb := m.Config().AmbientC
		for j := range r12.T {
			d := math.Abs(r1.T[j] + r2.T[j] - amb - r12.T[j])
			if d > worst {
				worst = d
			}
			if d > SuperpositionTolC {
				return failf("superposition: case %d node %d: |T1+T2-amb-T12| = %.2e °C > %g",
					i, j, d, SuperpositionTolC)
			}
		}
	}
	ctx.logf("superposition: worst node error %.2e °C over %d cases (tol %g)", worst, caseCount(ctx), SuperpositionTolC)
	return nil
}

// mirrorIndex returns the cell index of (ix, iy) reflected across the
// vertical centerline of an nx-wide row-major grid.
func mirrorIndex(idx, nx int) int {
	ix, iy := idx%nx, idx/nx
	return iy*nx + (nx - 1 - ix)
}

// checkMirrorSymmetry: paper organizations are mirror-symmetric about the
// interposer centerline (the 16-chiplet frame/inner coordinates reflect
// onto each other, as do the spreader and sink nesting maps), so solving a
// mirrored power map on the same model must produce the mirrored field in
// every layer, spreader and sink included.
func checkMirrorSymmetry(ctx *Context) error {
	rng := rand.New(rand.NewSource(caseSeed + 3))
	worst := 0.0
	for i := 0; i < caseCount(ctx); i++ {
		m, pl, err := randModel(rng)
		if err != nil {
			return err
		}
		pmap, _ := randPowerMap(rng, m, pl)
		nx := m.Grid().Nx
		nc := m.Grid().NumCells()
		mir := make([]float64, nc)
		for j := range pmap {
			mir[mirrorIndex(j, nx)] = pmap[j]
		}
		ra, err := m.Solve(pmap)
		if err != nil {
			return err
		}
		rb, err := m.Solve(mir)
		if err != nil {
			return err
		}
		nLayers := len(ra.T) / nc
		for l := 0; l < nLayers; l++ {
			for c := 0; c < nc; c++ {
				d := math.Abs(ra.T[l*nc+c] - rb.T[l*nc+mirrorIndex(c, nx)])
				if d > worst {
					worst = d
				}
				if d > MirrorTolC {
					return failf("mirror symmetry: case %d layer %d cell %d: |T - mirror(T')| = %.2e °C > %g",
						i, l, c, d, MirrorTolC)
				}
			}
		}
	}
	ctx.logf("mirror symmetry: worst node error %.2e °C over %d cases (tol %g)", worst, caseCount(ctx), MirrorTolC)
	return nil
}
