package verify

// Drift detection for the spatial surrogate tier: the calibration record
// promises |prediction - simulation| <= WorstCaseErrC, and the escalation
// ladder in org leans on that promise to decide evaluations without a full
// CG solve. The promise is a measured quantity, so any change to the
// thermal stack, the power model, the DoE plan, or the fit can silently
// invalidate it. This check re-measures it: it calibrates a fresh engine
// and replays held-out, non-DoE evaluation points — if the recorded bound
// has drifted below reality, the tier would be deciding evaluations on
// stale error bars, and the check fails before the search does.

import (
	"context"
	"math"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/org"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
)

// driftPoint is one probe evaluation, chosen to be absent from the DoE plan
// (org's spatialDoE) so the comparison exercises generalization, not
// memorization.
type driftPoint struct {
	name       string
	n          int
	s1, s2, s3 float64
	fIdx, p    int
}

// driftPoints spans the three chiplet classes. The fast tier runs the
// first three (one per class); -long runs them all.
var driftPoints = []driftPoint{
	{name: "2d-f1-p224", n: 1, fIdx: 1, p: 224},
	{name: "4c-s3=2-f1-p128", n: 4, s3: 2, fIdx: 1, p: 128},
	{name: "16c-f1-p128", n: 16, s1: 0.5, s2: 1, s3: 1.5, fIdx: 1, p: 128},
	{name: "4c-s3=4.5-f3-p224", n: 4, s3: 4.5, fIdx: 3, p: 224},
	{name: "16c-f3-p224", n: 16, s1: 1.5, s2: 0.5, s3: 3, fIdx: 3, p: 224},
	{name: "16c-f0-p32", n: 16, s1: 0.5, s2: 0.5, s3: 0.5, fIdx: 0, p: 32},
}

// checkSpatialCalibration calibrates the spatial surrogate on a small-grid
// engine and checks, point by point, that fresh predictions stay within the
// calibration's own recorded worst-case bound of a full simulation. The
// bound is the contract the fidelity ladder escalates on; there is no
// separate tolerance to tune here — the calibration record itself is the
// tolerance, which is exactly what makes this a drift detector.
func checkSpatialCalibration(ctx *Context) error {
	b, err := perf.ByName("cholesky")
	if err != nil {
		return err
	}
	cfg := org.DefaultConfig(b)
	cfg.Thermal.Nx, cfg.Thermal.Ny = invariantGridN, invariantGridN
	eng, err := org.NewEngine(cfg)
	if err != nil {
		return err
	}
	points := driftPoints[:3]
	if ctx != nil && ctx.Long {
		points = driftPoints
	}
	bg := context.Background()
	for _, q := range points {
		var pl floorplan.Placement
		if q.n == 1 {
			pl = floorplan.SingleChip()
		} else if pl, err = floorplan.PaperOrg(q.n, q.s1, q.s2, q.s3); err != nil {
			return err
		}
		cal, err := eng.SpatialCalibration(bg, b, q.n)
		if err != nil {
			return failf("spatial-calibration: class %d: %v", q.n, err)
		}
		if cal.WorstCaseErrC <= 0 || cal.Samples <= 0 || cal.HoldoutSamples <= 0 {
			return failf("spatial-calibration: class %d: degenerate record (bound %g, %d train, %d holdout)",
				q.n, cal.WorstCaseErrC, cal.Samples, cal.HoldoutSamples)
		}
		pred, err := eng.SpatialPredictPeakC(bg, b, pl, power.FrequencySet[q.fIdx], q.p)
		if err != nil {
			return failf("spatial-calibration: %s: predict: %v", q.name, err)
		}
		rec, _, err := eng.Simulate(bg, b, pl, power.FrequencySet[q.fIdx], q.p)
		if err != nil {
			return failf("spatial-calibration: %s: simulate: %v", q.name, err)
		}
		if e := math.Abs(pred - rec.PeakC); e > cal.WorstCaseErrC {
			return failf("spatial-calibration: %s: |%.3f - %.3f| = %.3f °C exceeds the recorded bound %.3f — the calibration has drifted",
				q.name, pred, rec.PeakC, e, cal.WorstCaseErrC)
		} else {
			ctx.logf("spatial-calibration: %s: predicted %.2f, simulated %.2f, error %.3f °C (bound %.3f)",
				q.name, pred, rec.PeakC, e, cal.WorstCaseErrC)
		}
	}
	return nil
}

// checkSpatialSearchParity replays every golden-corpus search case twice —
// exactly as committed, and with the spatial tier switched on — and
// requires the identical winner. This is the end-to-end consequence of the
// calibration bound: on the validation corpus, conservative escalation
// makes fidelity a pure performance knob, invisible in results. (Parity is
// pinned on the corpus, not claimed universally: surrogate-decided peak
// values steer the greedy walk through the infeasible region, so two
// objective-tied geometries can swap on other configs.)
func checkSpatialSearchParity(ctx *Context) error {
	_, _, searches := corpusCases()
	for _, c := range searches {
		cfg, err := searchConfig(c)
		if err != nil {
			return err
		}
		spatial := cfg
		spatial.SpatialSurrogate = true

		run := func(cfg org.Config) (org.Result, error) {
			s, err := org.NewSearcher(cfg)
			if err != nil {
				return org.Result{}, err
			}
			return s.Optimize()
		}
		rs, err := run(spatial)
		if err != nil {
			return failf("spatial-parity: %s: spatial search: %v", c.Name, err)
		}
		rf, err := run(cfg)
		if err != nil {
			return failf("spatial-parity: %s: corpus search: %v", c.Name, err)
		}
		if rs.Feasible != rf.Feasible {
			return failf("spatial-parity: %s: feasibility diverged: spatial %v, corpus %v", c.Name, rs.Feasible, rf.Feasible)
		}
		if rs.Best.Op != rf.Best.Op || rs.Best.ActiveCores != rf.Best.ActiveCores ||
			rs.Best.N != rf.Best.N || rs.Best.InterposerMM != rf.Best.InterposerMM ||
			rs.Best.S1 != rf.Best.S1 || rs.Best.S2 != rf.Best.S2 || rs.Best.S3 != rf.Best.S3 ||
			rs.Best.ObjValue != rf.Best.ObjValue {
			return failf("spatial-parity: %s: winners diverged:\n  spatial: %+v\n  corpus:  %+v", c.Name, rs.Best, rf.Best)
		}
		if rs.SpatialSurrogateHits == 0 {
			return failf("spatial-parity: %s: the spatial search never used the spatial tier (nothing was verified)", c.Name)
		}
		ctx.logf("spatial-parity: %s: identical winner (n=%d f=%.0f MHz p=%d); spatial tier decided %d evaluations, %d vs %d full sims",
			c.Name, rs.Best.N, rs.Best.Op.FreqMHz, rs.Best.ActiveCores, rs.SpatialSurrogateHits, rs.ThermalSims, rf.ThermalSims)
	}
	return nil
}
