package verify

// Golden regression corpus: committed end-to-end results for seed
// configurations, spanning the three levels of the stack — direct
// steady-state solves (thermal only), full leakage-coupled simulations
// (thermal + power + NoC through the Engine), and reduced search winners
// (the whole optimizer). Everything in the corpus is deterministic, so the
// comparison tolerance only absorbs future last-ulp libm/compiler drift;
// any real change shows up as a diff and is either a bug or a conscious
// `go test ./internal/verify -update` refresh, reviewed like any golden.

import (
	"context"
	"embed"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"chiplet25d/internal/expt"
	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/org"
	"chiplet25d/internal/perf"
	"chiplet25d/internal/power"
	"chiplet25d/internal/thermal"
)

// goldenFS embeds the committed corpus and figure tables so chipletverify
// runs standalone from a bare binary.
//
//go:embed testdata
var goldenFS embed.FS

// CorpusPath is the corpus location inside testdata (and the embed FS).
const CorpusPath = "testdata/corpus.golden.json"

// figGoldens maps the figure checks to their committed reduced-scale CSVs.
var figGoldens = []struct {
	Name string
	Path string
	Run  func(expt.Options) (*expt.Table, error)
}{
	{"fig6", "testdata/fig6_reduced.golden.csv", expt.Fig6},
	{"fig7", "testdata/fig7_reduced.golden.csv", expt.Fig7},
	{"fig8", "testdata/fig8_reduced.golden.csv", expt.Fig8},
}

// SolveCase pins one direct steady-state solve: a placement, a thermal
// grid, and the minimum-temperature active-core power map.
type SolveCase struct {
	Name        string  `json:"name"`
	Chiplets    int     `json:"chiplets"`
	S1          float64 `json:"s1_mm"`
	S2          float64 `json:"s2_mm"`
	S3          float64 `json:"s3_mm"`
	GridN       int     `json:"grid_n"`
	ActiveCores int     `json:"active_cores"`
	CoreW       float64 `json:"core_w"`
}

// SolveGolden is a solve case plus its pinned results.
type SolveGolden struct {
	SolveCase
	PeakC    float64 `json:"peak_c"`
	MeanC    float64 `json:"mean_chip_c"`
	HeatOutW float64 `json:"heat_out_w"`
}

// SimCase pins one full leakage-coupled simulation through the Engine.
type SimCase struct {
	Name        string  `json:"name"`
	Bench       string  `json:"bench"`
	Chiplets    int     `json:"chiplets"`
	S1          float64 `json:"s1_mm"`
	S2          float64 `json:"s2_mm"`
	S3          float64 `json:"s3_mm"`
	GridN       int     `json:"grid_n"`
	FreqMHz     float64 `json:"freq_mhz"`
	ActiveCores int     `json:"active_cores"`
}

// SimGolden is a sim case plus its pinned results. CG iteration counts are
// deliberately absent: they may legitimately change with solver tuning,
// while the physics below must not.
type SimGolden struct {
	SimCase
	PeakC             float64 `json:"peak_c"`
	TotalPowerW       float64 `json:"total_power_w"`
	MeshPowerW        float64 `json:"mesh_power_w"`
	LeakageIterations int     `json:"leakage_iterations"`
}

// SearchCase pins one reduced optimization run end to end.
type SearchCase struct {
	Name             string  `json:"name"`
	Bench            string  `json:"bench"`
	GridN            int     `json:"grid_n"`
	Starts           int     `json:"starts"`
	Seed             int64   `json:"seed"`
	InterposerStepMM float64 `json:"interposer_step_mm"`
	MaxNormCost      float64 `json:"max_norm_cost"`
}

// SearchGolden is a search case plus its pinned winner.
type SearchGolden struct {
	SearchCase
	Feasible     bool    `json:"feasible"`
	N            int     `json:"n"`
	S1           float64 `json:"winner_s1_mm"`
	S2           float64 `json:"winner_s2_mm"`
	S3           float64 `json:"winner_s3_mm"`
	InterposerMM float64 `json:"interposer_mm"`
	FreqMHz      float64 `json:"winner_freq_mhz"`
	ActiveCores  int     `json:"winner_active_cores"`
	PeakC        float64 `json:"peak_c"`
	ObjValue     float64 `json:"obj_value"`
}

// Corpus is the committed golden file.
type Corpus struct {
	Note     string         `json:"note"`
	Solves   []SolveGolden  `json:"solves"`
	Sims     []SimGolden    `json:"sims"`
	Searches []SearchGolden `json:"searches"`
}

// corpusCases returns the seed configurations the corpus pins. Adding a
// case here and running `go test ./internal/verify -update` extends the
// corpus.
func corpusCases() ([]SolveCase, []SimCase, []SearchCase) {
	solves := []SolveCase{
		{Name: "2d-256c", Chiplets: 1, GridN: 16, ActiveCores: 256, CoreW: 0.4},
		{Name: "4c-s3=2-128c", Chiplets: 4, S3: 2, GridN: 16, ActiveCores: 128, CoreW: 0.5},
		{Name: "16c-paper-256c", Chiplets: 16, S1: 0.5, S2: 1, S3: 1, GridN: 16, ActiveCores: 256, CoreW: 0.35},
	}
	sims := []SimCase{
		{Name: "2d-cholesky-f0", Bench: "cholesky", Chiplets: 1, GridN: 16, FreqMHz: power.FrequencySet[0].FreqMHz, ActiveCores: 256},
		{Name: "4c-canneal-f2", Bench: "canneal", Chiplets: 4, S3: 2, GridN: 16, FreqMHz: power.FrequencySet[2].FreqMHz, ActiveCores: 192},
		{Name: "16c-hpccg-f4", Bench: "hpccg", Chiplets: 16, S1: 0.5, S2: 1, S3: 1, GridN: 16, FreqMHz: power.FrequencySet[4].FreqMHz, ActiveCores: 256},
	}
	searches := []SearchCase{
		{Name: "canneal-reduced", Bench: "canneal", GridN: 16, Starts: 2, Seed: 1, InterposerStepMM: 10, MaxNormCost: 0},
	}
	return solves, sims, searches
}

// casePlacement materializes a corpus case's geometry.
func casePlacement(chiplets int, s1, s2, s3 float64) (floorplan.Placement, error) {
	if chiplets == 1 {
		return floorplan.SingleChip(), nil
	}
	return floorplan.PaperOrg(chiplets, s1, s2, s3)
}

// solveModel assembles the production-tolerance model for a solve case.
// Exposed to the mutation check, which needs the same model perturbed.
func solveModel(c SolveCase) (*thermal.Model, []float64, float64, error) {
	pl, err := casePlacement(c.Chiplets, c.S1, c.S2, c.S3)
	if err != nil {
		return nil, nil, 0, err
	}
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		return nil, nil, 0, err
	}
	cfg := thermal.DefaultConfig()
	cfg.Nx, cfg.Ny = c.GridN, c.GridN
	m, err := thermal.NewModel(stack, cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	active, err := power.MintempActive(c.ActiveCores)
	if err != nil {
		return nil, nil, 0, err
	}
	cores, err := pl.Cores()
	if err != nil {
		return nil, nil, 0, err
	}
	pmap := make([]float64, c.GridN*c.GridN)
	total := 0.0
	for _, core := range cores {
		id := core.Row*floorplan.CoresPerEdge + core.Col
		if !active[id] {
			continue
		}
		m.Grid().RasterizeAdd(pmap, core.Rect, c.CoreW)
		total += c.CoreW
	}
	return m, pmap, total, nil
}

func computeSolve(c SolveCase) (SolveGolden, error) {
	m, pmap, _, err := solveModel(c)
	if err != nil {
		return SolveGolden{}, err
	}
	res, err := m.Solve(pmap)
	if err != nil {
		return SolveGolden{}, err
	}
	mean := 0.0
	for _, t := range res.ChipT() {
		mean += t
	}
	mean /= float64(len(res.ChipT()))
	return SolveGolden{SolveCase: c, PeakC: res.PeakC(), MeanC: mean, HeatOutW: res.HeatOutW()}, nil
}

func computeSim(c SimCase) (SimGolden, error) {
	b, err := perf.ByName(c.Bench)
	if err != nil {
		return SimGolden{}, err
	}
	pl, err := casePlacement(c.Chiplets, c.S1, c.S2, c.S3)
	if err != nil {
		return SimGolden{}, err
	}
	var op power.DVFSPoint
	found := false
	for _, p := range power.FrequencySet {
		if p.FreqMHz == c.FreqMHz {
			op, found = p, true
			break
		}
	}
	if !found {
		return SimGolden{}, fmt.Errorf("verify: freq %g MHz not in the DVFS table", c.FreqMHz)
	}
	cfg := org.DefaultConfig(b)
	cfg.Thermal.Nx, cfg.Thermal.Ny = c.GridN, c.GridN
	eng, err := org.NewEngine(cfg)
	if err != nil {
		return SimGolden{}, err
	}
	rec, _, err := eng.Simulate(context.Background(), b, pl, op, c.ActiveCores)
	if err != nil {
		return SimGolden{}, err
	}
	return SimGolden{
		SimCase:           c,
		PeakC:             rec.PeakC,
		TotalPowerW:       rec.TotalPowerW,
		MeshPowerW:        rec.MeshPowerW,
		LeakageIterations: rec.LeakageIterations,
	}, nil
}

func searchConfig(c SearchCase) (org.Config, error) {
	b, err := perf.ByName(c.Bench)
	if err != nil {
		return org.Config{}, err
	}
	cfg := org.DefaultConfig(b)
	cfg.Thermal.Nx, cfg.Thermal.Ny = c.GridN, c.GridN
	cfg.Starts = c.Starts
	cfg.Seed = c.Seed
	cfg.InterposerStepMM = c.InterposerStepMM
	cfg.MaxNormCost = c.MaxNormCost
	return cfg, nil
}

func computeSearch(c SearchCase) (SearchGolden, error) {
	cfg, err := searchConfig(c)
	if err != nil {
		return SearchGolden{}, err
	}
	s, err := org.NewSearcher(cfg)
	if err != nil {
		return SearchGolden{}, err
	}
	res, err := s.Optimize()
	if err != nil {
		return SearchGolden{}, err
	}
	g := SearchGolden{SearchCase: c, Feasible: res.Feasible}
	if res.Feasible {
		g.N = res.Best.N
		g.S1, g.S2, g.S3 = res.Best.S1, res.Best.S2, res.Best.S3
		g.InterposerMM = res.Best.InterposerMM
		g.FreqMHz = res.Best.Op.FreqMHz
		g.ActiveCores = res.Best.ActiveCores
		g.PeakC = res.Best.PeakC
		g.ObjValue = res.Best.ObjValue
	}
	return g, nil
}

// BuildCorpus recomputes every corpus case from the current code.
func BuildCorpus() (Corpus, error) {
	solves, sims, searches := corpusCases()
	c := Corpus{
		Note: "Generated by `go test ./internal/verify -update`. Do not edit by hand; " +
			"review diffs like code — a changed value is a changed physical result.",
	}
	for _, sc := range solves {
		g, err := computeSolve(sc)
		if err != nil {
			return Corpus{}, fmt.Errorf("verify: solve case %s: %w", sc.Name, err)
		}
		c.Solves = append(c.Solves, g)
	}
	for _, sc := range sims {
		g, err := computeSim(sc)
		if err != nil {
			return Corpus{}, fmt.Errorf("verify: sim case %s: %w", sc.Name, err)
		}
		c.Sims = append(c.Sims, g)
	}
	for _, sc := range searches {
		g, err := computeSearch(sc)
		if err != nil {
			return Corpus{}, fmt.Errorf("verify: search case %s: %w", sc.Name, err)
		}
		c.Searches = append(c.Searches, g)
	}
	return c, nil
}

// LoadEmbeddedCorpus parses the committed corpus baked into the package.
func LoadEmbeddedCorpus() (Corpus, error) {
	data, err := goldenFS.ReadFile(CorpusPath)
	if err != nil {
		return Corpus{}, fmt.Errorf("verify: embedded corpus: %w", err)
	}
	var c Corpus
	if err := json.Unmarshal(data, &c); err != nil {
		return Corpus{}, fmt.Errorf("verify: embedded corpus: %w", err)
	}
	return c, nil
}

// MarshalCorpus renders a corpus the way the update flow writes it.
func MarshalCorpus(c Corpus) ([]byte, error) {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// nearly compares a recomputed value against a golden one: absolute slack
// GoldenTolC plus the same relative slack for large magnitudes (powers,
// objective values).
func nearly(got, want float64) bool {
	return math.Abs(got-want) <= GoldenTolC+GoldenTolC*math.Abs(want)
}

// CompareCorpus differences a recomputed corpus against the committed one,
// returning one message per mismatch (nil means identical within
// GoldenTolC).
func CompareCorpus(got, want Corpus) []string {
	var diffs []string
	diff := func(format string, args ...any) { diffs = append(diffs, fmt.Sprintf(format, args...)) }
	if len(got.Solves) != len(want.Solves) || len(got.Sims) != len(want.Sims) || len(got.Searches) != len(want.Searches) {
		diff("corpus shape changed: %d/%d/%d cases recomputed vs %d/%d/%d committed (run -update)",
			len(got.Solves), len(got.Sims), len(got.Searches), len(want.Solves), len(want.Sims), len(want.Searches))
		return diffs
	}
	for i, w := range want.Solves {
		g := got.Solves[i]
		if g.SolveCase != w.SolveCase {
			diff("solve %s: case definition changed", w.Name)
			continue
		}
		if !nearly(g.PeakC, w.PeakC) || !nearly(g.MeanC, w.MeanC) || !nearly(g.HeatOutW, w.HeatOutW) {
			diff("solve %s: got peak=%.9g mean=%.9g out=%.9g, want peak=%.9g mean=%.9g out=%.9g",
				w.Name, g.PeakC, g.MeanC, g.HeatOutW, w.PeakC, w.MeanC, w.HeatOutW)
		}
	}
	for i, w := range want.Sims {
		g := got.Sims[i]
		if g.SimCase != w.SimCase {
			diff("sim %s: case definition changed", w.Name)
			continue
		}
		if !nearly(g.PeakC, w.PeakC) || !nearly(g.TotalPowerW, w.TotalPowerW) ||
			!nearly(g.MeshPowerW, w.MeshPowerW) || g.LeakageIterations != w.LeakageIterations {
			diff("sim %s: got peak=%.9g total=%.9g mesh=%.9g iters=%d, want peak=%.9g total=%.9g mesh=%.9g iters=%d",
				w.Name, g.PeakC, g.TotalPowerW, g.MeshPowerW, g.LeakageIterations,
				w.PeakC, w.TotalPowerW, w.MeshPowerW, w.LeakageIterations)
		}
	}
	for i, w := range want.Searches {
		g := got.Searches[i]
		if g.SearchCase != w.SearchCase {
			diff("search %s: case definition changed", w.Name)
			continue
		}
		if g.Feasible != w.Feasible || g.N != w.N || g.S1 != w.S1 || g.S2 != w.S2 || g.S3 != w.S3 ||
			g.InterposerMM != w.InterposerMM || g.FreqMHz != w.FreqMHz || g.ActiveCores != w.ActiveCores ||
			!nearly(g.PeakC, w.PeakC) || !nearly(g.ObjValue, w.ObjValue) {
			diff("search %s: got %+v, want %+v", w.Name, g, w)
		}
	}
	return diffs
}

// checkGoldenCorpus recomputes the corpus and differences it against the
// committed file.
func checkGoldenCorpus(ctx *Context) error {
	want, err := LoadEmbeddedCorpus()
	if err != nil {
		return err
	}
	got, err := BuildCorpus()
	if err != nil {
		return err
	}
	if diffs := CompareCorpus(got, want); len(diffs) > 0 {
		return failf("golden corpus drifted (%d diffs; rerun with -update if intentional):\n  %s",
			len(diffs), strings.Join(diffs, "\n  "))
	}
	ctx.logf("golden corpus: %d solves, %d sims, %d searches match (tol %g)",
		len(want.Solves), len(want.Sims), len(want.Searches), GoldenTolC)
	return nil
}

// figOptions is the pinned configuration for the figure goldens.
func figOptions() expt.Options {
	return expt.Options{Scale: expt.Reduced, Seed: 1, ThermalGridN: 16}
}

// checkGoldenFigures re-runs the reduced fig6/7/8 sweeps and compares the
// CSVs byte for byte (the tables format through fixed-precision verbs, so
// byte equality is the right strictness).
func checkGoldenFigures(ctx *Context) error {
	for _, fg := range figGoldens {
		want, err := goldenFS.ReadFile(fg.Path)
		if err != nil {
			return failf("golden figures: %s: %v", fg.Name, err)
		}
		tb, err := fg.Run(figOptions())
		if err != nil {
			return failf("golden figures: %s: %v", fg.Name, err)
		}
		var got strings.Builder
		if err := tb.WriteCSV(&got); err != nil {
			return err
		}
		if got.String() != string(want) {
			return failf("golden figures: %s drifted (rerun with -update -long if intentional):\n--- got ---\n%s--- want ---\n%s",
				fg.Name, got.String(), want)
		}
		ctx.logf("golden figures: %s matches (%d bytes)", fg.Name, len(want))
	}
	return nil
}
