package verify

// Mutation smoke test: a verification harness is only as good as its
// ability to fail. This check seeds a ~1% perturbation into the assembled
// conductance network (thermal.PerturbLinksForVerify) and demands that at
// least two INDEPENDENT detection channels trip on it:
//
//  1. the energy-balance invariant — perturbing off-diagonals without
//     updating the diagonal breaks the row-sum telescoping, creating a
//     phantom ground that leaks heat past the convection boundary; and
//  2. the golden corpus — the peak temperature of a committed solve case
//     moves by orders of magnitude more than GoldenTolC.
//
// If either channel fails to notice, the harness itself is broken (dead
// assertion, tolerance wide enough to hide real physics changes) and the
// check fails loudly. The same clean model must pass both channels first,
// so a trivially-always-failing detector cannot sneak through either.

import "math"

// mutationSeed and mutationFrac pin the perturbation so a failure
// reproduces exactly. 1% is the ISSUE-mandated sensitivity target.
const (
	mutationSeed = 20260805
	mutationFrac = 0.01
)

func checkMutationSmoke(ctx *Context) error {
	corpus, err := LoadEmbeddedCorpus()
	if err != nil {
		return err
	}
	if len(corpus.Solves) == 0 {
		return failf("mutation smoke: embedded corpus has no solve cases")
	}
	sc := corpus.Solves[0]

	// Clean pass: both channels must accept the unperturbed model, proving
	// the detectors are calibrated, not hair-triggered.
	m, pmap, total, err := solveModel(sc.SolveCase)
	if err != nil {
		return err
	}
	res, err := m.Solve(pmap)
	if err != nil {
		return err
	}
	cleanImbalance := math.Abs(res.HeatOutW()-total) / total
	if cleanImbalance > EnergyBalanceRelTol {
		return failf("mutation smoke: clean model already violates energy balance (%.2e > %g) — detector miscalibrated",
			cleanImbalance, EnergyBalanceRelTol)
	}
	if d := math.Abs(res.PeakC() - sc.PeakC); d > GoldenTolC+GoldenTolC*math.Abs(sc.PeakC) {
		return failf("mutation smoke: clean model already off the golden peak (|Δ|=%.2e °C) — regenerate the corpus first",
			d)
	}

	// Mutated pass: same case, conductances perturbed ~1%, both channels
	// must trip.
	mm, pmapM, totalM, err := solveModel(sc.SolveCase)
	if err != nil {
		return err
	}
	mm.PerturbLinksForVerify(mutationSeed, mutationFrac)
	resM, err := mm.Solve(pmapM)
	if err != nil {
		return err
	}
	imbalance := math.Abs(resM.HeatOutW()-totalM) / totalM
	peakShift := math.Abs(resM.PeakC() - sc.PeakC)

	energyTripped := imbalance > EnergyBalanceRelTol
	goldenTripped := peakShift > GoldenTolC+GoldenTolC*math.Abs(sc.PeakC)
	if !energyTripped || !goldenTripped {
		return failf("mutation smoke: %.0f%% conductance perturbation escaped detection "+
			"(energy balance tripped=%v at %.2e rel, golden tripped=%v at %.4g °C shift) — the harness cannot be trusted",
			100*mutationFrac, energyTripped, imbalance, goldenTripped, peakShift)
	}
	ctx.logf("mutation smoke: %.0f%% perturbation caught twice — energy imbalance %.2e (clean %.2e, tol %g), peak shift %.4g °C (tol %g)",
		100*mutationFrac, imbalance, cleanImbalance, EnergyBalanceRelTol, peakShift, GoldenTolC)
	return nil
}
