package verify

// Analytic oracles: configurations engineered so the discrete network has a
// closed-form solution the production solver must reproduce — independent
// ground truth, not a second run of the same code.
//
// The slab and columnar oracles exploit the isothermal limit: raising the
// spreader/sink conductivity to isoK makes both plates equipotential, so
// the network reduces to per-column series resistances feeding one lumped
// convection boundary (h · 16 · A_package — the sink is 4x the package
// footprint on each edge). In that limit the discrete solution is exact at
// every mesh size, so the comparison needs no discretization slack. The
// convergence oracle then checks the opposite regime: with realistic copper
// plates the solution is mesh-dependent, and refinement must converge.

import (
	"math"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/thermal"
)

// isoK is the plate conductivity used for the isothermal-limit oracles:
// 2.5e4 times copper, which shrinks the lateral spreading ΔT (a few °C at
// copper) to ~1e-4 °C — far below SlabOracleTolC.
const isoK = 1e7

// uniformLayer builds a homogeneous (block-free) layer.
func uniformLayer(name string, thicknessM, vertK, latK float64) floorplan.Layer {
	return floorplan.Layer{
		Name:       name,
		ThicknessM: thicknessM,
		Background: floorplan.LayerProps{VertK: vertK, LatK: latK, VolHeatCap: 1.5e6},
	}
}

// slabStack is a three-layer uniform slab on the paper's 18 mm footprint:
// an FR4-like substrate below the heat-bearing silicon layer (it must end
// up isothermal with the chip — the bottom is adiabatic), and TIM above.
func slabStack(latShrink float64) floorplan.Stack {
	return floorplan.Stack{
		W: floorplan.ChipEdgeMM, H: floorplan.ChipEdgeMM,
		Layers: []floorplan.Layer{
			uniformLayer("substrate", floorplan.SubstrateThicknessM, 0.3, 0.3*latShrink),
			uniformLayer("chip", floorplan.ChipThicknessM, 150, 150*latShrink),
			uniformLayer("tim", floorplan.TIMThicknessM, 4, 4*latShrink),
		},
		ChipLayer: 1,
	}
}

// isoConfig is the solver configuration for the isothermal-limit oracles.
func isoConfig(n int) thermal.Config {
	cfg := thermal.DefaultConfig()
	cfg.Nx, cfg.Ny = n, n
	cfg.SpreaderK, cfg.SinkK = isoK, isoK
	cfg.Tolerance = VerifyCGTol
	cfg.MaxIterations = 200000
	return cfg
}

// slabSeriesResistance returns the total series resistance (K/W) from the
// chip layer to ambient for a uniform slab of footprint area aM2 (m²) in
// the isothermal limit: chip→…→top-layer half-cell chains, top layer to
// spreader, spreader to sink (over the 4x plate area), and the lumped
// convection boundary h·16·A.
func slabSeriesResistance(cfg thermal.Config, stack floorplan.Stack, aM2 float64) float64 {
	r := 1 / (cfg.HeatTransferCoeff * 16 * aM2)
	for l := stack.ChipLayer; l+1 < len(stack.Layers); l++ {
		r += 0.5*stack.Layers[l].ThicknessM/(stack.Layers[l].Background.VertK*aM2) +
			0.5*stack.Layers[l+1].ThicknessM/(stack.Layers[l+1].Background.VertK*aM2)
	}
	top := stack.Layers[len(stack.Layers)-1]
	r += 0.5*top.ThicknessM/(top.Background.VertK*aM2) +
		0.5*floorplan.SpreaderThicknessM/(cfg.SpreaderK*aM2)
	r += 0.5*floorplan.SpreaderThicknessM/(cfg.SpreaderK*4*aM2) +
		0.5*floorplan.SinkThicknessM/(cfg.SinkK*4*aM2)
	return r
}

// checkSlabOracle solves the uniform slab under uniform heating at several
// mesh sizes and compares the whole chip layer — and the (flux-free,
// therefore chip-temperature) substrate layer — against the closed form
// T = ambient + Q · R_series, which is mesh-independent in the isothermal
// limit.
func checkSlabOracle(ctx *Context) error {
	const totalW = 120.0
	stack := slabStack(1)
	aM2 := stack.W * stack.H * 1e-6
	worst := 0.0
	for _, n := range []int{8, 16, 32} {
		cfg := isoConfig(n)
		want := cfg.AmbientC + totalW*slabSeriesResistance(cfg, stack, aM2)
		m, err := thermal.NewModel(stack, cfg)
		if err != nil {
			return err
		}
		pmap := make([]float64, n*n)
		for i := range pmap {
			pmap[i] = totalW / float64(len(pmap))
		}
		res, err := m.Solve(pmap)
		if err != nil {
			return err
		}
		for _, t := range res.ChipT() {
			if d := math.Abs(t - want); d > worst {
				worst = d
			}
		}
		sub, err := res.LayerT(0)
		if err != nil {
			return err
		}
		for _, t := range sub {
			if d := math.Abs(t - want); d > worst {
				worst = d
			}
		}
		if d := math.Abs(res.PeakC() - want); d > SlabOracleTolC {
			return failf("slab oracle: grid %d peak %.6f °C vs closed form %.6f °C (|Δ|=%.2e > %g)",
				n, res.PeakC(), want, d, SlabOracleTolC)
		}
	}
	if worst > SlabOracleTolC {
		return failf("slab oracle: worst field error %.2e °C exceeds %g", worst, SlabOracleTolC)
	}
	ctx.logf("slab oracle: worst field error %.2e °C (tol %g)", worst, SlabOracleTolC)
	return nil
}

// checkColumnarOracle heats the slab non-uniformly with near-zero lateral
// conductivity in the package layers, decoupling the columns: each column c
// carrying p_c watts must sit at
// T_c = T_plate + p_c · r_column, with T_plate set by the total power
// through the lumped convection boundary. This catches per-cell assembly
// bugs (wrong cell indexing, wrong vertical conductances) that any
// uniform-heating oracle would average away.
func checkColumnarOracle(ctx *Context) error {
	const n = 16
	const totalW = 100.0
	// Lateral conductivity 1e-9 of vertical: column cross-talk is far below
	// the tolerance while keeping the matrix connected and SPD.
	stack := slabStack(1e-9)
	cfg := isoConfig(n)
	m, err := thermal.NewModel(stack, cfg)
	if err != nil {
		return err
	}
	nc := n * n
	pmap := make([]float64, nc)
	sum := 0.0
	for i := range pmap {
		pmap[i] = float64(1 + i%7) // deterministic non-uniform pattern
		sum += pmap[i]
	}
	for i := range pmap {
		pmap[i] *= totalW / sum
	}
	res, err := m.Solve(pmap)
	if err != nil {
		return err
	}

	aM2 := stack.W * stack.H * 1e-6
	cellA := aM2 / float64(nc)
	// Plate temperature: ambient + convection + spreader→sink half-cells.
	plate := cfg.AmbientC + totalW*(1/(cfg.HeatTransferCoeff*16*aM2)+
		0.5*floorplan.SpreaderThicknessM/(cfg.SpreaderK*4*aM2)+
		0.5*floorplan.SinkThicknessM/(cfg.SinkK*4*aM2))
	// Per-column resistance from the chip layer up into the spreader.
	rCol := 0.0
	for l := stack.ChipLayer; l+1 < len(stack.Layers); l++ {
		rCol += 0.5*stack.Layers[l].ThicknessM/(stack.Layers[l].Background.VertK*cellA) +
			0.5*stack.Layers[l+1].ThicknessM/(stack.Layers[l+1].Background.VertK*cellA)
	}
	top := stack.Layers[len(stack.Layers)-1]
	rCol += 0.5*top.ThicknessM/(top.Background.VertK*cellA) +
		0.5*floorplan.SpreaderThicknessM/(cfg.SpreaderK*cellA)

	worst := 0.0
	chip := res.ChipT()
	for c, p := range pmap {
		want := plate + p*rCol
		if d := math.Abs(chip[c] - want); d > worst {
			worst = d
		}
	}
	if worst > SlabOracleTolC {
		return failf("columnar oracle: worst per-column error %.2e °C exceeds %g", worst, SlabOracleTolC)
	}
	ctx.logf("columnar oracle: worst per-column error %.2e °C over %d columns (tol %g)", worst, nc, SlabOracleTolC)
	return nil
}

// checkMeshConvergence leaves the isothermal limit: with realistic copper
// plates the discrete solution is mesh-dependent, and refining the grid
// must converge — successive peak-temperature deltas shrink, and the
// observed order p = log2(Δ_coarse/Δ_fine) is reported. The full tier adds
// the paper's 64-grid.
func checkMeshConvergence(ctx *Context) error {
	stack, err := floorplan.BuildStack(floorplan.SingleChip())
	if err != nil {
		return err
	}
	grids := []int{8, 16, 32}
	if ctx != nil && ctx.Long {
		grids = append(grids, 64)
	}
	const totalW = 80.0
	peaks := make([]float64, len(grids))
	for i, n := range grids {
		cfg := thermal.DefaultConfig()
		cfg.Nx, cfg.Ny = n, n
		cfg.Tolerance = VerifyCGTol
		cfg.MaxIterations = 200000
		m, err := thermal.NewModel(stack, cfg)
		if err != nil {
			return err
		}
		pmap := make([]float64, n*n)
		for j := range pmap {
			pmap[j] = totalW / float64(len(pmap))
		}
		res, err := m.Solve(pmap)
		if err != nil {
			return err
		}
		peaks[i] = res.PeakC()
	}
	for i := 1; i+1 < len(peaks); i++ {
		dCoarse := math.Abs(peaks[i] - peaks[i-1])
		dFine := math.Abs(peaks[i+1] - peaks[i])
		if dFine >= dCoarse {
			return failf("mesh convergence: refinement %d→%d moved the peak by %.4g °C, not less than the previous %.4g °C (peaks %v at grids %v)",
				grids[i], grids[i+1], dFine, dCoarse, peaks, grids)
		}
		order := math.Log2(dCoarse / dFine)
		ctx.logf("mesh convergence: grids %d→%d→%d deltas %.4g → %.4g °C, observed order %.2f",
			grids[i-1], grids[i], grids[i+1], dCoarse, dFine, order)
	}
	return nil
}
