package verify

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var (
	update   = flag.Bool("update", false, "regenerate the golden corpus and figure CSVs from the current code")
	longTier = flag.Bool("long", false, "run the full verification tier (paper-scale grids, figure goldens)")
)

// TestChecks runs the verification registry at the tier the flags select:
// `go test -short` runs the Quick gate, the default run adds the heavier
// differential checks, and `-long` adds the paper-scale grids and figure
// goldens.
func TestChecks(t *testing.T) {
	if *update {
		t.Skip("regenerating goldens; checks would compare against the files being rewritten")
	}
	for _, c := range Checks() {
		t.Run(strings.ReplaceAll(c.Name, "/", "_"), func(t *testing.T) {
			if c.Long && !*longTier {
				t.Skip("long tier only (run with -long)")
			}
			if testing.Short() && !c.Quick {
				t.Skip("skipped under -short")
			}
			ctx := &Context{Long: *longTier, Logf: t.Logf}
			if err := c.Run(ctx); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestUpdateGoldens regenerates testdata/ when invoked with -update:
//
//	go test ./internal/verify -run TestUpdateGoldens -update        # corpus
//	go test ./internal/verify -run TestUpdateGoldens -update -long  # + figures
//
// The figure sweeps take minutes, so they only regenerate under -long.
func TestUpdateGoldens(t *testing.T) {
	if !*update {
		t.Skip("run with -update to regenerate goldens")
	}
	c, err := BuildCorpus()
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalCorpus(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.FromSlash(CorpusPath), data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d solves, %d sims, %d searches", CorpusPath, len(c.Solves), len(c.Sims), len(c.Searches))
	if !*longTier {
		t.Log("figure goldens unchanged (add -long to regenerate)")
		return
	}
	for _, fg := range figGoldens {
		tb, err := fg.Run(figOptions())
		if err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		if err := tb.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.FromSlash(fg.Path), []byte(buf.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", fg.Path, buf.Len())
	}
}
