// Package verify is the physics verification harness: it validates the
// optimized thermal/power/search stack against independent ground truth
// rather than against itself, so the determinism contracts elsewhere in the
// repo (serial ≡ parallel, memo ≡ recompute) cannot hide a bug both paths
// share. Five tiers:
//
//   - Analytic oracles (oracle.go): closed-form layered-slab solutions the
//     grid solver must reproduce within documented tolerances, plus a
//     mesh-refinement study that reports the observed convergence order.
//   - Physics invariants (invariants.go): energy balance, the discrete
//     maximum principle, superposition of the linear solve, and mirror
//     symmetry — each property-tested over randomized floorplans and power
//     maps from a seeded generator.
//   - Differential references (reference.go): an independently assembled
//     Gauss-Seidel solver cross-checked against the CSR/CG kernel, and
//     org.ReferenceSimulate (the unmemoized, single-threaded evaluator)
//     cross-checked against the Engine memo.
//   - Drift detection (drift.go): the spatial surrogate's calibration bound
//     re-measured against fresh, non-DoE simulations, and the spatial-tier
//     search differenced winner-for-winner against the full-fidelity search.
//   - Golden regression corpus (golden.go): committed end-to-end results —
//     direct solves, leakage-coupled simulations, search winners, and the
//     fig6/7/8 reduced tables — compared at documented tolerances, with a
//     `go test ./internal/verify -update` refresh flow.
//
// A mutation smoke test (mutation.go) proves the net is live: a seeded 1%
// conductivity perturbation must be caught by at least two independent
// checks (energy balance and the golden corpus), otherwise the harness
// itself fails.
//
// Two entry points share the Checks registry: `go test ./internal/verify`
// (the CI fast tier; add -long for the full tier) and the cmd/chipletverify
// binary, which embeds the golden corpus so it runs standalone.
package verify

import "fmt"

// Tolerances, in one place so the docs and the checks cannot drift apart.
// Each constant documents why its magnitude is safe: the oracle tolerances
// bound the isothermal-limit modeling error, the invariant tolerances bound
// the CG residual's reach, and the golden tolerance bounds nothing — the
// corpus values are deterministic, so it only absorbs future last-ulp
// libm/compiler drift.
const (
	// SlabOracleTolC bounds |solver - closed form| for the isothermal-limit
	// slab oracles. With the spreader/sink conductivity raised to 1e7
	// W/(m·K) the lateral spreading resistance is ~2.5e4 times smaller than
	// at copper, leaving a modeling error of order (spreading ΔT at
	// copper) * 4e-5 ≈ 1e-4 °C; observed errors sit near 1e-5 °C.
	SlabOracleTolC = 5e-3

	// EnergyBalanceRelTol bounds |Σ P_in - heat_out| / Σ P_in. At the
	// verification solves' CG tolerance of 1e-10 the residual's energy
	// reach is below 1e-8 of the injected power; observed imbalances sit
	// near 1e-12.
	EnergyBalanceRelTol = 1e-6

	// MaxPrincipleTolC is the slack on the discrete maximum principle
	// (global max on the source layer, global min at ambient): exact for
	// the true solution of the M-matrix system, so only CG error remains.
	MaxPrincipleTolC = 1e-6

	// SuperpositionTolC bounds |T(P1+P2) - T(P1) - T(P2) + ambient| per
	// node. Superposition is exact for the linear system; three CG solves
	// at tolerance 1e-10 leave errors near 1e-8 °C.
	SuperpositionTolC = 1e-5

	// MirrorTolC bounds |T(P) - mirror(T(mirror(P)))| per node on a
	// mirror-symmetric floorplan. Rasterization of mirrored geometry is
	// bit-exact on the shared grid, so again only CG error remains.
	MirrorTolC = 1e-5

	// GaussSeidelTolC bounds |T_CG - T_GS| per node between the production
	// kernel and the dense-assembled Gauss-Seidel reference, both iterated
	// to relative residual 1e-10. The conductance matrix's condition
	// number amplifies residual into error; observed gaps stay below
	// 1e-6 °C on the verification grids.
	GaussSeidelTolC = 1e-4

	// GoldenTolC is the absolute tolerance on corpus temperatures and the
	// relative tolerance on corpus powers/objective values.
	GoldenTolC = 1e-6

	// VerifyCGTol is the CG relative-residual target used for the oracle,
	// invariant, and differential solves (tighter than the production
	// default of 1e-7, so solver error stays far from every tolerance
	// above).
	VerifyCGTol = 1e-10
)

// Check is one verification: a named, self-contained pass/fail property
// with its tolerance documented where it is asserted.
type Check struct {
	// Name is the stable identifier, "tier/property" (e.g.
	// "invariant/energy-balance"), used by chipletverify -run.
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Long marks checks that only run in the full tier (`-long`): finer
	// meshes, more random cases, and the figure goldens.
	Long bool
	// Quick marks checks cheap enough to keep under `go test -short`.
	Quick bool
	// Run executes the check; a nil error is a pass. Detail lines (observed
	// errors, convergence orders) go through ctx.Logf.
	Run func(ctx *Context) error
}

// Context carries the execution mode and a sink for observed-value logging.
type Context struct {
	// Long enables the full tier inside checks that scale their own work
	// (e.g. the convergence study adds its finest mesh).
	Long bool
	// Logf receives human-readable observations (may be nil).
	Logf func(format string, args ...any)
}

func (c *Context) logf(format string, args ...any) {
	if c != nil && c.Logf != nil {
		c.Logf(format, args...)
	}
}

// failf formats a check failure.
func failf(format string, args ...any) error { return fmt.Errorf(format, args...) }

// Checks returns the registry in execution order: oracles first (they
// validate the solver the later tiers lean on), then invariants,
// differentials, goldens, and finally the mutation smoke test that proves
// the preceding checks can fail.
func Checks() []Check {
	return []Check{
		{
			Name:        "oracle/slab-isothermal",
			Description: "uniform slab against the closed-form series-resistance solution (mesh-exact in the isothermal limit)",
			Quick:       true,
			Run:         checkSlabOracle,
		},
		{
			Name:        "oracle/columnar",
			Description: "non-uniform heating with decoupled columns against per-column closed forms",
			Quick:       true,
			Run:         checkColumnarOracle,
		},
		{
			Name:        "oracle/mesh-convergence",
			Description: "peak temperature under mesh refinement: deltas must shrink; observed order reported",
			Run:         checkMeshConvergence,
		},
		{
			Name:        "invariant/energy-balance",
			Description: "Σ power in = heat out through the convection boundary, on randomized floorplans",
			Quick:       true,
			Run:         checkEnergyBalance,
		},
		{
			Name:        "invariant/maximum-principle",
			Description: "global max on the source layer, global min at ambient, on randomized floorplans",
			Quick:       true,
			Run:         checkMaximumPrinciple,
		},
		{
			Name:        "invariant/superposition",
			Description: "solve(P1)+solve(P2) = solve(P1+P2)+ambient on the linear system, on randomized power maps",
			Quick:       true,
			Run:         checkSuperposition,
		},
		{
			Name:        "invariant/mirror-symmetry",
			Description: "mirrored power on a mirror-symmetric floorplan yields the mirrored field",
			Quick:       true,
			Run:         checkMirrorSymmetry,
		},
		{
			Name:        "differential/gauss-seidel",
			Description: "CSR/CG kernel against an independently assembled dense Gauss-Seidel solve",
			Run:         checkGaussSeidel,
		},
		{
			Name:        "differential/mg-ic0",
			Description: "multigrid-preconditioned solves against IC(0) node-for-node, plus bit-equality across kernel threads",
			Quick:       true,
			Run:         checkMGIC0Differential,
		},
		{
			Name:        "differential/warm-start",
			Description: "warm-started solves converge to the cold fixed point; corpus search with mg+warm picks the identical winner",
			Run:         checkWarmStartFixpoint,
		},
		{
			Name:        "differential/reference-evaluator",
			Description: "Engine memo against the unmemoized single-threaded evaluator, bit for bit and order-independent",
			Run:         checkReferenceEvaluator,
		},
		{
			Name:        "differential/sharded-batch",
			Description: "two-node sharded /v1/batch (memo peer-fetch) against standalone sequential requests, bit for bit, including with the peer unreachable",
			Run:         checkShardedBatch,
		},
		{
			Name:        "drift/spatial-calibration",
			Description: "spatial-surrogate predictions at non-DoE points stay within the calibration's own recorded worst-case bound",
			Quick:       true,
			Run:         checkSpatialCalibration,
		},
		{
			Name:        "drift/spatial-parity",
			Description: "spatial-tier search and full-fidelity search pick the identical winner",
			Run:         checkSpatialSearchParity,
		},
		{
			Name:        "cost/monotonicity",
			Description: "economic monotonicity laws (yield, die cost, heatsink capacity, TCO knob directions) on seeded random parameter draws",
			Quick:       true,
			Run:         checkCostMonotonicity,
		},
		{
			Name:        "cost/interior-optimum",
			Description: "base-node $/GIPS-year sweep is minimized at an interior chiplet count, with the monolithic baseline heatsink-starved",
			Quick:       true,
			Run:         checkCostInteriorOptimum,
		},
		{
			Name:        "cost/golden-elaboration",
			Description: "one full server elaboration pinned at 12 significant digits, every intermediate asserted",
			Quick:       true,
			Run:         checkCostGoldenElaboration,
		},
		{
			Name:        "cost/tco-batch-differential",
			Description: "1000-candidate fleet sweep via /v1/batch against sequential /v1/cost/tco calls, bit for bit",
			Run:         checkTCOBatchDifferential,
		},
		{
			Name:        "golden/corpus",
			Description: "committed end-to-end results: direct solves, leakage-coupled sims, search winners",
			Run:         checkGoldenCorpus,
		},
		{
			Name:        "golden/figures",
			Description: "fig6/7/8 reduced tables, byte-exact against committed CSVs",
			Long:        true,
			Run:         checkGoldenFigures,
		},
		{
			Name:        "mutation/smoke",
			Description: "a seeded 1% conductivity perturbation must trip energy balance AND the golden corpus",
			Quick:       true,
			Run:         checkMutationSmoke,
		},
	}
}

// ByName returns the named check.
func ByName(name string) (Check, error) {
	for _, c := range Checks() {
		if c.Name == name {
			return c, nil
		}
	}
	return Check{}, fmt.Errorf("verify: unknown check %q", name)
}
