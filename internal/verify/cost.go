package verify

import (
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"time"

	"chiplet25d/internal/cost"
	"chiplet25d/internal/serve"
)

// Cost/TCO oracle suite: the server elaboration is pure arithmetic, so it
// admits the strongest checks in the harness — dense goldens pinned at
// 12 significant digits and economic monotonicity laws property-tested over
// seeded random parameter draws. A separate differential proves the serving
// layer transparent: a 1000-candidate fleet sweep through /v1/batch must be
// bit-identical to the same candidates posted one at a time.

// relClose reports |got-want| <= tol * max(1, |want|) — an absolute floor of
// tol for near-zero values, relative above one.
func relClose(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Max(1, math.Abs(want))
}

// cost/monotonicity: economic laws the elaboration must obey for every
// parameter draw. Each is a direction the paper's argument leans on: yield
// falls with die area and defect density (why chiplets are cheap), heatsink
// capacity grows with chiplet count at fixed total silicon (why chiplets
// reclaim dark silicon), and TCO moves the right way when energy gets
// cheaper or hardware amortizes longer.
func checkCostMonotonicity(ctx *Context) error {
	rng := rand.New(rand.NewSource(1))
	cases := 200
	if ctx != nil && ctx.Long {
		cases = 2000
	}
	for i := 0; i < cases; i++ {
		p := cost.DefaultParams()
		p.D0PerCM2 = 0.05 + 0.6*rng.Float64()
		p.BondCost = 0.05 + rng.Float64()

		// Yield non-increasing, die cost non-decreasing in area.
		a1 := 20 + 280*rng.Float64()
		a2 := a1 * (1 + rng.Float64())
		if p.CMOSYield(a2) > p.CMOSYield(a1)+1e-12 {
			return failf("case %d: yield increased with area: Y(%.1f)=%.6g > Y(%.1f)=%.6g",
				i, a2, p.CMOSYield(a2), a1, p.CMOSYield(a1))
		}
		if p.CMOSDieCost(a2) < p.CMOSDieCost(a1)-1e-9 {
			return failf("case %d: die cost decreased with area: C(%.1f)=%.6g < C(%.1f)=%.6g",
				i, a2, p.CMOSDieCost(a2), a1, p.CMOSDieCost(a1))
		}
		// Yield non-increasing in defect density at fixed area.
		hi := p
		hi.D0PerCM2 = p.D0PerCM2 * (1 + rng.Float64())
		if hi.CMOSYield(a1) > p.CMOSYield(a1)+1e-12 {
			return failf("case %d: yield increased with defect density", i)
		}

		// Heatsink capacity non-decreasing in chiplet count at fixed total
		// area (more spread area per watt — the dark-silicon reclamation).
		hs := cost.DefaultHeatsink()
		total := 100 + 300*rng.Float64()
		prev := math.Inf(-1)
		for _, n := range []int{1, 4, 9, 16, 25, 36, 64} {
			cap := hs.MaxLanePowerW(n, total/float64(n))
			if cap < prev-1e-9 {
				return failf("case %d: heatsink capacity fell from %.6g to %.6g W going to %d chiplets (total %.0f mm²)",
					i, prev, cap, n, total)
			}
			prev = cap
		}

		// TCO direction under datacenter knob moves, on a feasible design.
		tp := cost.DefaultTCOParams()
		lane := cost.LaneDesign{Chiplets: 4, LanePowerW: 150 + 100*rng.Float64(), LaneGIPS: 100 + 150*rng.Float64()}
		base, err := tp.ElaborateServer(p, lane)
		if err != nil {
			return failf("case %d: elaborate: %v", i, err)
		}
		if !base.Feasible {
			continue
		}
		cheap := tp
		cheap.EnergyUSDPerKWH = tp.EnergyUSDPerKWH * rng.Float64()
		ce, err := cheap.ElaborateServer(p, lane)
		if err != nil {
			return failf("case %d: cheap-energy elaborate: %v", i, err)
		}
		if ce.TCOPerGIPSYear > base.TCOPerGIPSYear+1e-12 {
			return failf("case %d: cheaper energy raised TCO/GIPS: %.9g > %.9g", i, ce.TCOPerGIPSYear, base.TCOPerGIPSYear)
		}
		long := tp
		long.DepreciationYears = tp.DepreciationYears * (1 + rng.Float64())
		le, err := long.ElaborateServer(p, lane)
		if err != nil {
			return failf("case %d: long-depreciation elaborate: %v", i, err)
		}
		if le.TCOPerGIPSYear > base.TCOPerGIPSYear+1e-12 {
			return failf("case %d: longer depreciation raised TCO/GIPS: %.9g > %.9g", i, le.TCOPerGIPSYear, base.TCOPerGIPSYear)
		}
	}
	ctx.logf("%d random parameter draws satisfied all monotonicity laws", cases)
	return nil
}

// cost/interior-optimum: at the base node the $/GIPS-year sweep must be
// minimized at an interior chiplet count — neither the monolithic baseline
// (heatsink-starved) nor the finest split (interposer/bonding-dominated).
// This is the TCO restatement of the paper's thesis; a model change that
// flattens the curve into a boundary optimum is a bug even if every
// individual equation still holds.
func checkCostInteriorOptimum(ctx *Context) error {
	counts := []int{1, 4, 9, 16, 25, 36, 64}
	tp := cost.DefaultTCOParams()
	lane := cost.LaneDesign{LanePowerW: 220, LaneGIPS: 180}
	elabs, err := tp.SweepChiplets(cost.DefaultParams(), lane, counts)
	if err != nil {
		return err
	}
	best := -1
	for i, e := range elabs {
		if e.Feasible && (best < 0 || e.TCOPerGIPSYear < elabs[best].TCOPerGIPSYear) {
			best = i
		}
	}
	if best < 0 {
		return failf("no feasible design in the base-node sweep")
	}
	if best == 0 || best == len(counts)-1 {
		return failf("optimum at boundary chiplet count %d (want interior); sweep minimum %.6g $/GIPS-year",
			counts[best], elabs[best].TCOPerGIPSYear)
	}
	// Dark-silicon reclamation: a 300 W lane exceeds every coarse
	// organization's heatsink capacity and only becomes coolable once the
	// silicon is split finely enough — heatsink-rejected monolithically,
	// feasible at some higher count.
	hot := lane
	hot.LanePowerW = 300
	hotElabs, err := tp.SweepChiplets(cost.DefaultParams(), hot, counts)
	if err != nil {
		return err
	}
	if hotElabs[0].Feasible || hotElabs[0].Reason != cost.ReasonHeatsink {
		return failf("300 W monolithic lane not heatsink-rejected (reason %q, cap %.1f W)",
			hotElabs[0].Reason, hotElabs[0].MaxLanePowerW)
	}
	reclaimed := -1
	for i, e := range hotElabs {
		if e.Feasible {
			reclaimed = i
			break
		}
	}
	if reclaimed <= 0 {
		return failf("300 W lane never became feasible across the sweep; heatsink capacity is not growing with chiplet count")
	}
	ctx.logf("optimum at %d chiplets: %.6g $/GIPS-year; 300 W lane reclaimed at %d chiplets (monolithic cap %.1f W)",
		counts[best], elabs[best].TCOPerGIPSYear, counts[reclaimed], hotElabs[0].MaxLanePowerW)
	return nil
}

// cost/golden-elaboration: one full server elaboration pinned densely at 12
// significant digits — defaults, 45nm, 4 chiplets on the 20 mm minimum
// interposer, a 220 W / 180 GIPS lane. Every intermediate is asserted, not
// just the objective, so a compensating pair of errors cannot pass.
func checkCostGoldenElaboration(ctx *Context) error {
	tp := cost.DefaultTCOParams()
	lane := cost.LaneDesign{Chiplets: 4, InterposerEdgeMM: 20, LanePowerW: 220, LaneGIPS: 180}
	e, err := tp.ElaborateServer(cost.DefaultParams(), lane)
	if err != nil {
		return err
	}
	if !e.Feasible || e.Reason != cost.ReasonOK || e.LanesPerServer != 8 {
		return failf("golden design no longer feasible with 8 lanes: feasible=%v reason=%q lanes=%d",
			e.Feasible, e.Reason, e.LanesPerServer)
	}
	// 12-significant-digit pins; the 1e-11 relative tolerance absorbs only
	// the quoting precision itself plus last-ulp libm drift.
	const tol = 1e-11
	for _, g := range []struct {
		name string
		got  float64
		want float64
	}{
		{"SiliconUSD", e.SiliconUSD, 36.2511106702},
		{"MaxLanePowerW", e.MaxLanePowerW, 282.433422917},
		{"HeatsinkUSD", e.HeatsinkUSD, 24.1216711459},
		{"LanePowerW", e.LanePowerW, 220},
		{"ServerPowerW", e.ServerPowerW, 1820},
		{"ServerUSD", e.ServerUSD, 1955.98225453},
		{"CapexUSDPerYear", e.CapexUSDPerYear, 651.994084843},
		{"EnergyUSDPerYear", e.EnergyUSDPerYear, 1994.265},
		{"TCOUSDPerYear", e.TCOUSDPerYear, 2646.25908484},
		{"ServerGIPS", e.ServerGIPS, 1440},
		{"TCOPerGIPSYear", e.TCOPerGIPSYear, 1.83767992003},
	} {
		if !relClose(g.got, g.want, tol) {
			return failf("golden %s drifted: got %.12g, want %.12g", g.name, g.got, g.want)
		}
	}
	ctx.logf("all 11 pinned fields within %.0e relative of the 12-digit golden", tol)
	return nil
}

// cost/tco-batch-differential: a 1000-candidate fleet-design sweep executed
// as one /v1/batch (coalesced, memoized, pooled) against a second node that
// answers the same candidates one POST /v1/cost/tco at a time, item for
// item bit-identical — Elab comparison is ==, not a tolerance. The batch's
// item order comes from the exported SweepTemplate.Expand, so the expansion
// itself is under test too.
func checkTCOBatchDifferential(ctx *Context) error {
	opts := serve.Options{
		Workers:       2,
		KernelThreads: 1,
		SearchWorkers: 1,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	client := &http.Client{Timeout: 2 * time.Minute}

	// 4 nodes x 5 chiplet counts x 10 interposer edges x 5 lane caps = 1000
	// candidates, under the /v1/batch 1024-item ceiling. Edges 20-47 mm are
	// valid at every node and count (the largest minimum edge is 20 mm, for
	// the 45nm organizations), and the n=1 items canonicalize their edge
	// away — the batch must coalesce them without changing a single bit.
	sweep := `{
	  "sweep": {
	    "tco": {"chiplets": 1, "lane_power_w": 220, "lane_gips": 180},
	    "tech_nodes": ["45nm", "28nm", "16nm", "7nm"],
	    "chiplets_per_lane": [1, 4, 16, 64, 100],
	    "interposer_mm": [20, 23, 26, 29, 32, 35, 38, 41, 44, 47],
	    "lanes_per_server": [1, 2, 4, 8, 10]
	  }
	}`

	batchTS := httptest.NewServer(serve.New(opts).Handler())
	defer batchTS.Close()
	var br serve.BatchResponse
	if err := postJSON(client, batchTS.URL+"/v1/batch", sweep, &br); err != nil {
		return failf("batch: %v", err)
	}
	if br.Total != 1000 {
		return failf("batch expanded to %d items, want 1000", br.Total)
	}
	if br.Coalesced == 0 || br.UniqueKeys >= br.Total {
		return failf("batch did no coalescing (%d unique keys of %d items); the n=1 edge canonicalization is broken",
			br.UniqueKeys, br.Total)
	}

	// Reference: a fresh node, one endpoint call per candidate, expanded
	// client-side through the same template type.
	var body struct {
		Sweep *serve.SweepTemplate `json:"sweep"`
	}
	if err := json.Unmarshal([]byte(sweep), &body); err != nil {
		return err
	}
	items, err := body.Sweep.Expand()
	if err != nil {
		return failf("client-side expand: %v", err)
	}
	if len(items) != br.Total {
		return failf("client-side expansion has %d items, batch ran %d", len(items), br.Total)
	}
	refTS := httptest.NewServer(serve.New(opts).Handler())
	defer refTS.Close()
	for i, it := range items {
		if it.TCO == nil {
			return failf("expanded item %d is not a tco item", i)
		}
		raw, _ := json.Marshal(it.TCO)
		var seq serve.TCOResponse
		if err := postJSON(client, refTS.URL+"/v1/cost/tco", string(raw), &seq); err != nil {
			return failf("sequential tco %d: %v", i, err)
		}
		b := br.Items[i]
		if b.Status != 200 || b.TCO == nil {
			return failf("batch item %d: status %d (%s)", i, b.Status, b.Error)
		}
		if b.TCO.Elab != seq.Elab {
			return failf("item %d diverged: batch %+v, sequential %+v", i, b.TCO.Elab, seq.Elab)
		}
		if b.TCO.CacheKey != seq.CacheKey {
			return failf("item %d cache keys diverged: batch %s, sequential %s", i, b.TCO.CacheKey, seq.CacheKey)
		}
		if b.TCO.Fidelity != seq.Fidelity {
			return failf("item %d fidelity diverged: batch %s, sequential %s", i, b.TCO.Fidelity, seq.Fidelity)
		}
	}
	ctx.logf("1000 candidates bit-identical; batch coalesced %d items onto %d unique keys",
		br.Coalesced, br.UniqueKeys)
	return nil
}
