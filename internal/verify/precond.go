package verify

import (
	"math"
	"math/rand"

	"chiplet25d/internal/floorplan"
	"chiplet25d/internal/org"
	"chiplet25d/internal/thermal"
)

// Tolerances for the preconditioner and warm-start differentials. Both
// solver paths iterate to the same relative-residual target, so the gaps
// below are bounded by how far a 1e-10 residual can reach through the
// conductance matrix's condition number — the same argument as
// GaussSeidelTolC, and observed gaps sit orders of magnitude inside them.
const (
	// MGIC0TolC bounds |T_mg - T_ic0| per node: two CG solves of the same
	// system to relative residual VerifyCGTol, differing only in
	// preconditioner. Observed gaps stay below 1e-8 °C.
	MGIC0TolC = 1e-6

	// WarmFixpointRelTol bounds the relative per-node gap between a
	// warm-started solve and the cold solve of the same system. A seed at
	// the solution already satisfies the residual test and is returned
	// untouched (gap exactly zero); the bound leaves room for last-ulp
	// drift in the residual evaluation.
	WarmFixpointRelTol = 1e-9

	// WarmNeighborTolC bounds |T_seeded - T_cold| per node when the seed is
	// a converged field of the same operator under a perturbed power map —
	// the org engine's cross-evaluation warm start. Both solves hit
	// VerifyCGTol, so only CG error remains.
	WarmNeighborTolC = 1e-6
)

// precondModel assembles a verification-tolerance model for placement pl at
// grid n×n with the given preconditioner and kernel thread count.
func precondModel(pl floorplan.Placement, n int, precond string, threads int) (*thermal.Model, error) {
	stack, err := floorplan.BuildStack(pl)
	if err != nil {
		return nil, err
	}
	cfg := thermal.DefaultConfig()
	cfg.Nx, cfg.Ny = n, n
	cfg.Tolerance = VerifyCGTol
	cfg.MaxIterations = 200000
	cfg.Preconditioner = precond
	cfg.KernelThreads = threads
	return thermal.NewModel(stack, cfg)
}

// checkMGIC0Differential solves seeded random floorplans with both
// preconditioners and requires node-for-node agreement: the multigrid path
// must change how fast CG converges, never what it converges to. It also
// pins the multigrid path's determinism contract — serial and parallel
// kernels produce bit-identical fields — since the striped reductions that
// guarantee it for IC(0) now also run inside the V-cycle.
func checkMGIC0Differential(ctx *Context) error {
	rng := rand.New(rand.NewSource(caseSeed + 5))
	cases := 3
	grids := []int{invariantGridN, 2 * invariantGridN}
	if ctx != nil && ctx.Long {
		cases = 6
	}
	for c := 0; c < cases; c++ {
		pl := randPlacement(rng)
		for _, n := range grids {
			ic0, err := precondModel(pl, n, thermal.PrecondIC0, 1)
			if err != nil {
				return failf("mg-ic0: case %d grid %d: ic0 model: %v", c, n, err)
			}
			mg, err := precondModel(pl, n, thermal.PrecondMG, 1)
			if err != nil {
				return failf("mg-ic0: case %d grid %d: mg model: %v", c, n, err)
			}
			if got := mg.PreconditionerName(); got != thermal.PrecondMG {
				return failf("mg-ic0: case %d grid %d: model configured for multigrid reports preconditioner %q — the mg path silently fell back", c, n, got)
			}
			pmap, _ := randPowerMap(rng, mg, pl)
			ri, err := ic0.Solve(pmap)
			if err != nil {
				return failf("mg-ic0: case %d grid %d: ic0 solve: %v", c, n, err)
			}
			rm, err := mg.Solve(pmap)
			if err != nil {
				return failf("mg-ic0: case %d grid %d: mg solve: %v", c, n, err)
			}
			worst := 0.0
			for i := range ri.T {
				if d := math.Abs(ri.T[i] - rm.T[i]); d > worst {
					worst = d
				}
			}
			if worst > MGIC0TolC {
				return failf("mg-ic0: case %d grid %d: worst node gap %.3g °C exceeds %.0e (ic0 %d iters, mg %d iters)",
					c, n, worst, MGIC0TolC, ri.Iterations, rm.Iterations)
			}
			ctx.logf("mg-ic0: case %d grid %d: worst node gap %.3g °C; iterations ic0 %d, mg %d",
				c, n, worst, ri.Iterations, rm.Iterations)
		}
	}

	// Determinism: the multigrid solve must be bit-identical at every
	// kernel thread count (the same contract the IC(0) path carries).
	pl := randPlacement(rng)
	n := 2 * invariantGridN
	var ref []float64
	for _, threads := range []int{1, 2, 4} {
		m, err := precondModel(pl, n, thermal.PrecondMG, threads)
		if err != nil {
			return failf("mg-ic0: determinism model (threads %d): %v", threads, err)
		}
		pmapRng := rand.New(rand.NewSource(caseSeed + 6))
		pmap, _ := randPowerMap(pmapRng, m, pl)
		res, err := m.Solve(pmap)
		if err != nil {
			return failf("mg-ic0: determinism solve (threads %d): %v", threads, err)
		}
		if ref == nil {
			ref = append([]float64(nil), res.T...)
			continue
		}
		for i := range ref {
			if res.T[i] != ref[i] {
				return failf("mg-ic0: multigrid solve with %d kernel threads diverges bitwise from serial at node %d: %v vs %v",
					threads, i, res.T[i], ref[i])
			}
		}
	}
	ctx.logf("mg-ic0: multigrid fields bit-identical across kernel threads {1,2,4} on grid %d", n)
	return nil
}

// checkWarmStartFixpoint pins the warm-start contract at both layers. At
// the solver layer: a solve seeded with its own solution returns that fixed
// point (relative gap ≤ WarmFixpointRelTol), and a solve seeded with a
// same-operator neighbor's field — the org engine's cross-evaluation warm
// start — lands within WarmNeighborTolC of the cold solve. At the search
// layer: the golden-corpus search replayed with multigrid + warm starts
// must pick the identical winner, so the retained-field cache is a pure
// performance knob on the corpus, invisible in results.
func checkWarmStartFixpoint(ctx *Context) error {
	rng := rand.New(rand.NewSource(caseSeed + 7))
	for c := 0; c < 3; c++ {
		pl := randPlacement(rng)
		m, err := precondModel(pl, invariantGridN, thermal.PrecondMG, 1)
		if err != nil {
			return failf("warm-start: case %d: model: %v", c, err)
		}
		pmap, _ := randPowerMap(rng, m, pl)
		cold, err := m.Solve(pmap)
		if err != nil {
			return failf("warm-start: case %d: cold solve: %v", c, err)
		}
		// Own-solution seed: already at the fixed point, so the solve must
		// return it (0 iterations of drift at most).
		self, err := m.SolveSeeded(pmap, cold.T)
		if err != nil {
			return failf("warm-start: case %d: self-seeded solve: %v", c, err)
		}
		scale := 0.0
		for _, t := range cold.T {
			if a := math.Abs(t); a > scale {
				scale = a
			}
		}
		worstRel := 0.0
		for i := range cold.T {
			if d := math.Abs(self.T[i]-cold.T[i]) / scale; d > worstRel {
				worstRel = d
			}
		}
		if worstRel > WarmFixpointRelTol {
			return failf("warm-start: case %d: self-seeded solve drifted from its own fixed point by rel %.3g (> %.0e)",
				c, worstRel, WarmFixpointRelTol)
		}
		// Neighbor seed: a converged field of the same operator under a
		// perturbed power map, as the engine's warm cache serves.
		pmap2 := make([]float64, len(pmap))
		for i, p := range pmap {
			pmap2[i] = p * (1 + 0.05*float64(i%3))
		}
		coldN, err := m.Solve(pmap2)
		if err != nil {
			return failf("warm-start: case %d: neighbor cold solve: %v", c, err)
		}
		warmN, err := m.SolveSeeded(pmap2, cold.T)
		if err != nil {
			return failf("warm-start: case %d: neighbor-seeded solve: %v", c, err)
		}
		worst := 0.0
		for i := range coldN.T {
			if d := math.Abs(warmN.T[i] - coldN.T[i]); d > worst {
				worst = d
			}
		}
		if worst > WarmNeighborTolC {
			return failf("warm-start: case %d: neighbor-seeded solve off by %.3g °C (> %.0e) from cold", c, worst, WarmNeighborTolC)
		}
		ctx.logf("warm-start: case %d: self-seed rel gap %.3g, neighbor-seed gap %.3g °C (cold %d iters, seeded %d)",
			c, worstRel, worst, coldN.Iterations, warmN.Iterations)
	}

	// End-to-end: replay the golden-corpus search with the full PR
	// configuration (multigrid + warm starts) and require the identical
	// winner. Same structure as drift/spatial-parity: parity is pinned on
	// the corpus, not claimed universally.
	_, _, searches := corpusCases()
	for _, c := range searches {
		cfg, err := searchConfig(c)
		if err != nil {
			return err
		}
		warm := cfg
		warm.Thermal.Preconditioner = thermal.PrecondMG
		warm.WarmStart = true

		run := func(cfg org.Config) (org.Result, error) {
			s, err := org.NewSearcher(cfg)
			if err != nil {
				return org.Result{}, err
			}
			return s.Optimize()
		}
		rw, err := run(warm)
		if err != nil {
			return failf("warm-start: %s: warm search: %v", c.Name, err)
		}
		rf, err := run(cfg)
		if err != nil {
			return failf("warm-start: %s: corpus search: %v", c.Name, err)
		}
		if rw.Feasible != rf.Feasible {
			return failf("warm-start: %s: feasibility diverged: warm %v, corpus %v", c.Name, rw.Feasible, rf.Feasible)
		}
		b, w := rw.Best, rf.Best
		if b.Op != w.Op || b.ActiveCores != w.ActiveCores || b.N != w.N ||
			b.InterposerMM != w.InterposerMM || b.S1 != w.S1 || b.S2 != w.S2 || b.S3 != w.S3 {
			return failf("warm-start: %s: winners diverged:\n  warm:   %+v\n  corpus: %+v", c.Name, b, w)
		}
		if d := math.Abs(b.PeakC - w.PeakC); d > GoldenTolC {
			return failf("warm-start: %s: winner peak temperature differs by %.3g °C (> %.0e)", c.Name, d, GoldenTolC)
		}
		ctx.logf("warm-start: %s: identical winner (n=%d f=%.0f MHz p=%d), peak gap %.3g °C",
			c.Name, b.N, b.Op.FreqMHz, b.ActiveCores, math.Abs(b.PeakC-w.PeakC))
	}
	return nil
}
