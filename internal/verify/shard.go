package verify

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"chiplet25d/internal/serve"
)

// differential/sharded-batch: the horizontal scale-out layer must be
// invisible in the numbers. A sweep executed as one /v1/batch against a
// two-node sharded deployment — where the non-owner answers every memo miss
// by fetching the owner's records over HTTP — must produce results
// bit-identical to the same requests run sequentially against a standalone
// node, search winners included. And the degraded mode must stay correct:
// a node whose only peer is unreachable falls back to local computation
// and still matches the reference bit for bit (correct-but-cold, never
// wrong). This leans on the determinism contracts the earlier differential
// tiers pin (bit-equal kernels across thread counts, order-independent
// memo) plus one new fact: a SimRecord's float64 fields survive a JSON
// round trip exactly (Go encodes shortest-representation, parses exactly),
// so a fetched record is the record.

// shardCheckGrid is the thermal grid for the check: coarse enough that the
// dozens of simulations behind the sweep and search stay fast, fine enough
// to exercise the real CG path.
const shardCheckGrid = 8

// shardOpts are the serve options shared by every node in the check; fully
// pinned (workers, kernel threads, search workers) so the only variable
// across deployments is the sharding topology itself.
func shardOpts() serve.Options {
	return serve.Options{
		Workers:       2,
		KernelThreads: 1,
		SearchWorkers: 1,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
}

// shardSweep is the batch body: a 12-candidate solve sweep (3 spacings x 2
// frequencies x 2 cores on the 4-chiplet organization) plus one small
// greedy search, all on one physics fingerprint so the two-node deployment
// routes every memo exchange through a single owner.
func shardSweep() string {
	return `{
	  "items": [
	    {"search": {"benchmark": "cholesky", "chiplet_counts": [4], "starts": 1,
	                "seed": 7, "thermal_grid_n": ` + strconv.Itoa(shardCheckGrid) + `}}
	  ],
	  "sweep": {
	    "solve": {"placement": {"chiplets": 4, "spacing_mm": 1}, "benchmark": "cholesky",
	              "freq_mhz": 533, "cores": 128, "grid_n": ` + strconv.Itoa(shardCheckGrid) + `},
	    "spacing_mm": [1, 2, 3],
	    "freq_mhz": [533, 800],
	    "cores": [128, 256]
	  }
	}`
}

func postJSON(client *http.Client, url string, body string, out any) error {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, bytes.TrimSpace(raw))
	}
	return json.Unmarshal(raw, out)
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(out)
}

// runBatch posts the check sweep to one node.
func runBatch(client *http.Client, base string) (serve.BatchResponse, error) {
	var br serve.BatchResponse
	err := postJSON(client, base+"/v1/batch", shardSweep(), &br)
	return br, err
}

// compareBatches asserts bit-identical results item by item. Solve items
// compare every scalar field; search items compare the winner, feasibility,
// and baseline — not the work counters (thermal_sims etc.), which
// legitimately differ when evaluations are answered by a peer instead of
// computed.
func compareBatches(label string, got, want serve.BatchResponse) error {
	if got.Total != want.Total {
		return failf("%s: %d items, reference has %d", label, got.Total, want.Total)
	}
	for i := range want.Items {
		g, w := got.Items[i], want.Items[i]
		if g.Status != w.Status {
			return failf("%s item %d: status %d (%s), reference %d", label, i, g.Status, g.Error, w.Status)
		}
		switch {
		case w.Solve != nil:
			if g.Solve == nil {
				return failf("%s item %d: missing solve payload", label, i)
			}
			if g.Solve.PeakC != w.Solve.PeakC || g.Solve.TotalPowerW != w.Solve.TotalPowerW ||
				g.Solve.MeshPowerW != w.Solve.MeshPowerW ||
				g.Solve.LeakageIterations != w.Solve.LeakageIterations ||
				g.Solve.CGIterations != w.Solve.CGIterations {
				return failf("%s item %d: solve diverged: got peak=%v power=%v iters=%d/%d, want peak=%v power=%v iters=%d/%d",
					label, i, g.Solve.PeakC, g.Solve.TotalPowerW, g.Solve.LeakageIterations, g.Solve.CGIterations,
					w.Solve.PeakC, w.Solve.TotalPowerW, w.Solve.LeakageIterations, w.Solve.CGIterations)
			}
		case w.Search != nil:
			if g.Search == nil {
				return failf("%s item %d: missing search payload", label, i)
			}
			if g.Search.Feasible != w.Search.Feasible {
				return failf("%s item %d: feasible=%v, reference %v", label, i, g.Search.Feasible, w.Search.Feasible)
			}
			gb, wb := g.Search.Best, w.Search.Best
			if (gb == nil) != (wb == nil) {
				return failf("%s item %d: winner presence diverged", label, i)
			}
			if gb != nil && *gb != *wb {
				return failf("%s item %d: winner diverged: got %+v, want %+v", label, i, *gb, *wb)
			}
			if g.Search.Baseline != w.Search.Baseline {
				return failf("%s item %d: baseline diverged: got %+v, want %+v", label, i, g.Search.Baseline, w.Search.Baseline)
			}
		}
	}
	return nil
}

// shardView mirrors GET /debug/shard.
type shardView struct {
	Enabled bool     `json:"enabled"`
	Self    string   `json:"self"`
	Nodes   []string `json:"nodes"`
	Engines []struct {
		FingerprintHash string `json:"fingerprint_hash"`
		Owner           string `json:"owner"`
		Owned           bool   `json:"owned"`
	} `json:"engines"`
}

// metricValue scrapes one un-labeled counter from Prometheus text.
func metricValue(client *http.Client, base, name string) (float64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name)), 64)
		}
	}
	return 0, fmt.Errorf("metric %s not found on %s", name, base)
}

// proxyServer starts an httptest server whose handler is swappable after
// the fact, breaking the cycle between a node's URL (needed to configure
// its peers) and its construction (which needs the peers' URLs).
func proxyServer() (*httptest.Server, *atomic.Value) {
	var h atomic.Value // http.Handler
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.Load().(http.Handler).ServeHTTP(w, r)
	}))
	return ts, &h
}

func checkShardedBatch(ctx *Context) error {
	client := &http.Client{Timeout: 2 * time.Minute}

	// Reference: a standalone node runs the same requests sequentially —
	// each item its own HTTP call, no batch, no peers.
	ref := serve.New(shardOpts())
	refTS := httptest.NewServer(ref.Handler())
	defer refTS.Close()
	var want serve.BatchResponse
	{
		var body struct {
			Items []serve.BatchItem    `json:"items"`
			Sweep *serve.SweepTemplate `json:"sweep"`
		}
		if err := json.Unmarshal([]byte(shardSweep()), &body); err != nil {
			return err
		}
		// The reference expands the sweep client-side through the same
		// template type and posts each item to the corresponding single
		// endpoint, so the batch path itself is under test too.
		expanded, err := expandForReference(body.Sweep)
		if err != nil {
			return err
		}
		items := append(body.Items, expanded...)
		for i, it := range items {
			res := serve.BatchItemResult{Index: i, Status: http.StatusOK}
			switch {
			case it.Solve != nil:
				raw, _ := json.Marshal(it.Solve)
				var sr serve.SolveResponse
				if err := postJSON(client, refTS.URL+"/v1/thermal/solve", string(raw), &sr); err != nil {
					return failf("reference solve %d: %v", i, err)
				}
				res.Solve = &sr
			case it.Search != nil:
				raw, _ := json.Marshal(it.Search)
				var sr serve.SearchResponse
				if err := postJSON(client, refTS.URL+"/v1/org/search", string(raw), &sr); err != nil {
					return failf("reference search %d: %v", i, err)
				}
				res.Search = &sr
			}
			want.Items = append(want.Items, res)
		}
		want.Total = len(items)
	}
	ctx.logf("reference: %d sequential requests against a standalone node", want.Total)

	// Two-node deployment: A and B are mutual peers behind swappable
	// handlers (each needs the other's URL before it exists).
	tsA, hA := proxyServer()
	defer tsA.Close()
	tsB, hB := proxyServer()
	defer tsB.Close()
	optsA := shardOpts()
	optsA.SelfURL, optsA.Peers = tsA.URL, []string{tsB.URL}
	optsB := shardOpts()
	optsB.SelfURL, optsB.Peers = tsB.URL, []string{tsA.URL}
	hA.Store(serve.New(optsA).Handler())
	hB.Store(serve.New(optsB).Handler())

	// Probe one solve through A to materialize the engine, then read which
	// node rendezvous hashing made the owner of its fingerprint.
	probe := `{"placement": {"chiplets": 4, "spacing_mm": 1}, "benchmark": "cholesky",
	           "freq_mhz": 533, "cores": 128, "grid_n": ` + strconv.Itoa(shardCheckGrid) + `}`
	var probeResp serve.SolveResponse
	if err := postJSON(client, tsA.URL+"/v1/thermal/solve", probe, &probeResp); err != nil {
		return failf("probe solve: %v", err)
	}
	var sv shardView
	if err := getJSON(client, tsA.URL+"/debug/shard", &sv); err != nil {
		return failf("debug/shard: %v", err)
	}
	if !sv.Enabled || len(sv.Engines) == 0 {
		return failf("sharding not enabled or no resident engine on node A: %+v", sv)
	}
	owner, nonOwner := tsA.URL, tsB.URL
	if sv.Engines[0].Owner == tsB.URL {
		owner, nonOwner = tsB.URL, tsA.URL
	}
	ctx.logf("fingerprint %.12s owned by %s", sv.Engines[0].FingerprintHash, owner)

	// The owner computes the batch locally; the non-owner then answers its
	// memo misses by fetching the owner's records — deterministically, since
	// nothing has warmed the non-owner's engine.
	gotOwner, err := runBatch(client, owner)
	if err != nil {
		return failf("batch via owner: %v", err)
	}
	if err := compareBatches("owner batch", gotOwner, want); err != nil {
		return err
	}
	gotPeer, err := runBatch(client, nonOwner)
	if err != nil {
		return failf("batch via non-owner: %v", err)
	}
	if err := compareBatches("non-owner batch", gotPeer, want); err != nil {
		return err
	}
	hits, err := metricValue(client, nonOwner, "chipletd_eval_peer_hits_total")
	if err != nil {
		return err
	}
	if hits < 1 {
		return failf("non-owner ran the batch without a single peer-fetch hit (got %g)", hits)
	}
	ctx.logf("non-owner answered %g memo misses from the owner's memo", hits)

	// Degraded mode: a node whose only peer is unreachable must fall back
	// to local computation and still match the reference. Candidate self
	// names are tried until rendezvous hashing assigns the fingerprint to
	// the dead peer, so the fallback path is actually exercised.
	const deadPeer = "http://127.0.0.1:9" // discard port: connection refused
	for cand := 0; ; cand++ {
		if cand >= 8 {
			return failf("no candidate self URL yielded dead-peer ownership in 8 tries")
		}
		opts := shardOpts()
		opts.SelfURL = fmt.Sprintf("http://shard-check-self-%d.invalid", cand)
		opts.Peers = []string{deadPeer}
		opts.PeerTimeout = 100 * time.Millisecond
		deg := serve.New(opts)
		degTS := httptest.NewServer(deg.Handler())
		var pr serve.SolveResponse
		if err := postJSON(client, degTS.URL+"/v1/thermal/solve", probe, &pr); err != nil {
			degTS.Close()
			return failf("degraded probe (candidate %d): %v", cand, err)
		}
		var dv shardView
		if err := getJSON(client, degTS.URL+"/debug/shard", &dv); err != nil {
			degTS.Close()
			return failf("degraded debug/shard: %v", err)
		}
		if len(dv.Engines) == 0 || dv.Engines[0].Owned {
			degTS.Close() // this self name owns the fingerprint; try another
			continue
		}
		gotDead, err := runBatch(client, degTS.URL)
		degTS.Close()
		if err != nil {
			return failf("batch with dead peer: %v", err)
		}
		if err := compareBatches("dead-peer batch", gotDead, want); err != nil {
			return err
		}
		ctx.logf("dead-peer fallback matched the reference (self candidate %d)", cand)
		return nil
	}
}

// expandForReference re-expands the sweep template exactly as the server
// does, via the exported type's own expansion — keeping the reference's
// item order aligned with the batch's.
func expandForReference(t *serve.SweepTemplate) ([]serve.BatchItem, error) {
	if t == nil {
		return nil, nil
	}
	return t.Expand()
}
